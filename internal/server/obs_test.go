package server

import (
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"hostprof/internal/obs"
)

func get(t *testing.T, url string) (int, string, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body), resp.Header
}

// sampleLine matches one non-comment line of the text exposition format.
var sampleLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\\n])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\\n])*")*\})? (NaN|[+-]?Inf|[+-]?[0-9].*)$`)

// TestObservabilityEndpoints drives the full report → retrain → report →
// feedback flow and then scrapes /metrics, /varz and /healthz,
// asserting the exposition is well-formed and covers every subsystem.
func TestObservabilityEndpoints(t *testing.T) {
	fx := newBackendFixture(t)

	// Liveness holds from the first request; readiness flips only once
	// the model is trained.
	if code, body, _ := get(t, fx.srv.URL+"/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("healthz (liveness) before training: %d %q", code, body)
	}
	if code, body, _ := get(t, fx.srv.URL+"/readyz"); code != http.StatusServiceUnavailable ||
		!strings.Contains(body, `"trained":false`) {
		t.Fatalf("readyz before training: %d %q", code, body)
	}

	fx.feedVisits(t)
	ext := &Extension{BaseURL: fx.srv.URL, User: 0}
	if err := ext.Retrain(); err != nil {
		t.Fatal(err)
	}
	if code, body, _ := get(t, fx.srv.URL+"/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("healthz after training: %d %q", code, body)
	}
	code, body, _ := get(t, fx.srv.URL+"/readyz")
	if code != http.StatusOK {
		t.Fatalf("readyz after training: %d %q", code, body)
	}
	var rd Readiness
	if err := json.Unmarshal([]byte(body), &rd); err != nil {
		t.Fatalf("readyz body: %v", err)
	}
	if !rd.Ready || !rd.Trained || rd.StoreDegraded || rd.ModelVersion == "" || rd.Visits == 0 {
		t.Fatalf("readyz body after training: %+v", rd)
	}
	fx.feedVisits(t) // now served by a trained model → profiles run
	if err := ext.Feedback(1, "eavesdropper", true); err != nil {
		t.Fatal(err)
	}
	if err := ext.Feedback(2, "original", false); err != nil {
		t.Fatal(err)
	}

	code, body, hdr := get(t, fx.srv.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics status %d", code)
	}
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content-type %q", ct)
	}
	for _, line := range strings.Split(strings.TrimSuffix(body, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !sampleLine.MatchString(line) {
			t.Fatalf("invalid exposition line %q", line)
		}
	}
	// One metric per wired subsystem: HTTP layer, ingest, retrain,
	// profiling, campaign, store.
	for _, want := range []string{
		`hostprof_http_requests_total{code="200",endpoint="report"}`,
		`hostprof_http_requests_total{code="204",endpoint="retrain"}`,
		`hostprof_http_request_seconds_bucket{endpoint="report",le="+Inf"}`,
		"hostprof_reports_total",
		"hostprof_report_hosts_total",
		"hostprof_retrain_total 1",
		"hostprof_train_epochs_total 4",
		"hostprof_train_epoch_loss",
		"hostprof_profile_seconds_count",
		`hostprof_campaign_impressions{source="eavesdropper"} 1`,
		`hostprof_campaign_clicks{source="eavesdropper"} 1`,
		`hostprof_campaign_impressions{source="original"} 1`,
		"hostprof_store_visits",
		"hostprof_model_trained 1",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q in:\n%s", want, body)
		}
	}

	// Histogram bucket series must be monotone and end at +Inf == count.
	bucketRE := regexp.MustCompile(`hostprof_http_request_seconds_bucket\{endpoint="report",le="([^"]+)"\} (\d+)`)
	prev := int64(-1)
	n := 0
	for _, m := range bucketRE.FindAllStringSubmatch(body, -1) {
		c, _ := strconv.ParseInt(m[2], 10, 64)
		if c < prev {
			t.Fatalf("bucket counts decreased: %s", m[0])
		}
		prev = c
		n++
	}
	if n < 2 || prev == 0 {
		t.Fatalf("report latency histogram empty or truncated (%d buckets, last %d)", n, prev)
	}

	code, body, hdr = get(t, fx.srv.URL+"/varz")
	if code != http.StatusOK || hdr.Get("Content-Type") != "application/json" {
		t.Fatalf("varz: %d %q", code, hdr.Get("Content-Type"))
	}
	var snap []obs.MetricSnapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("varz not valid JSON: %v", err)
	}
	found := false
	for _, m := range snap {
		if m.Name == "hostprof_retrain_seconds" && m.Kind == "histogram" && m.Count == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("varz missing retrain histogram: %s", body)
	}
}

// TestCampaignStatsAccessor checks the typed snapshot matches what the
// HTTP stats endpoint reports, without going through HTTP.
func TestCampaignStatsAccessor(t *testing.T) {
	fx := newBackendFixture(t)
	for i := 0; i < 4; i++ {
		fx.b.observeImpression("eavesdropper", i%2 == 0)
	}
	fx.b.observeImpression("original", false)
	cs := fx.b.CampaignStats()
	if cs.Impressions["eavesdropper"] != 4 || cs.Clicks["eavesdropper"] != 2 {
		t.Fatalf("campaign stats: %+v", cs)
	}
	if cs.CTRPercent["eavesdropper"] != 50 {
		t.Fatalf("ctr: %+v", cs.CTRPercent)
	}
	if cs.Impressions["original"] != 1 || cs.Clicks["original"] != 0 {
		t.Fatalf("campaign stats: %+v", cs)
	}
	// The typed snapshot and the wire Stats must agree.
	ws := fx.b.CurrentStats()
	if ws.Impressions["eavesdropper"] != cs.Impressions["eavesdropper"] ||
		ws.CTRPercent["eavesdropper"] != cs.CTRPercent["eavesdropper"] {
		t.Fatalf("CurrentStats diverges: %+v vs %+v", ws, cs)
	}
	// Mutating the snapshot must not touch backend state.
	cs.Impressions["eavesdropper"] = 99
	if fx.b.CampaignStats().Impressions["eavesdropper"] != 4 {
		t.Fatal("snapshot aliases backend maps")
	}
}

// TestSharedRegistryAcrossLayers wires one registry through both an
// observer-facing config and the backend, as hostprof serve does, and
// checks both export into it without colliding.
func TestSharedRegistryAcrossLayers(t *testing.T) {
	reg := obs.NewRegistry()
	fx := newBackendFixtureWith(t, reg)
	fx.feedVisits(t)
	ext := &Extension{BaseURL: fx.srv.URL, User: 0}
	if err := ext.Retrain(); err != nil {
		t.Fatal(err)
	}
	if got := fx.b.Metrics(); got != reg {
		t.Fatal("Metrics() must return the configured registry")
	}
	if reg.Counter("hostprof_retrain_total").Value() != 1 {
		t.Fatal("retrain not visible in shared registry")
	}
}
