package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hostprof/internal/obs"
	"hostprof/internal/obs/prof"
	"hostprof/internal/obs/tracer"
)

// Config assembles a Gateway.
type Config struct {
	// Backends lists the shard base URLs (e.g. "http://127.0.0.1:8421").
	// Order matters for one thing only: the designated training node is
	// the first healthy backend in this order. Placement comes from the
	// ring, which is order-independent.
	Backends []string
	// VirtualNodes per backend on the ring (default
	// DefaultVirtualNodes).
	VirtualNodes int
	// ShardTimeout bounds every proxied shard request (report,
	// feedback, one batch chunk, health probe). Default 5s. A shard
	// past its deadline degrades that request only — scatter-gather
	// returns the other shards' results.
	ShardTimeout time.Duration
	// RetrainTimeout bounds the synchronous retrain forward plus model
	// distribution. Default 10m.
	RetrainTimeout time.Duration
	// HealthInterval is the readiness-poll cadence. <= 0 disables the
	// background loop; CheckHealth can still be driven manually.
	HealthInterval time.Duration
	// ShardRetries re-sends a shard request the shard shed (429, or 503
	// with Retry-After) before giving up, reusing the extension
	// client's backoff schedule (server.RetryDelay). Default 2;
	// negative disables.
	ShardRetries int
	// RetryBase/RetryMax bound the backoff (defaults 50ms / 1s).
	RetryBase, RetryMax time.Duration
	// MaxSessionsPerBatch caps a gateway batch (default 2048). The
	// gateway re-chunks below every shard's own limit, so its cap can
	// exceed a single backend's.
	MaxSessionsPerBatch int
	// ShardBatchLimit is the largest chunk sent to one shard in one
	// request (default 256, the backend's MaxSessionsPerBatch default).
	ShardBatchLimit int
	// MigrationChunk is the visit-record count per export/import call
	// while a resize migration copies a user's history (default 4096).
	MigrationChunk int
	// MigrationThrottle, when positive, sleeps between migration copy
	// chunks. Production resizes leave it zero; tests use it to hold
	// the double-write window open deterministically.
	MigrationThrottle time.Duration
	// MigrationWorkers bounds concurrently copying key ranges during a
	// resize (default 4).
	MigrationWorkers int
	// MigrationAttempts bounds freeze→copy→verify rounds per range
	// before the range is rolled back to its old owner (default 3).
	MigrationAttempts int
	// NoAutoSync disables the health loop's model anti-entropy: by
	// default, when a polled shard serves a different model version
	// than the designated node (a restarted shard that recovered an
	// old generation, a node that missed a distribution), the gateway
	// re-ships the artifact.
	NoAutoSync bool
	// SLOTargets maps endpoint names ("report", "profile_batch") to
	// latency SLO targets, exported as hostprof_gateway_slo_* gauges
	// over a sliding window (SLOWindow). Empty disables gateway SLOs —
	// the per-request cost collapses to a nil check.
	SLOTargets map[string]time.Duration
	// SLOWindow is the SLO sliding window (default 5 minutes).
	SLOWindow time.Duration
	// SlowRequest, when positive, logs one structured warning per
	// gateway request slower than this, records it on /debug/statusz,
	// and (with a Profiler) captures goroutine+mutex profiles tagged
	// with the request's trace ID.
	SlowRequest time.Duration
	// Profiler, when non-nil, backs slow-request trigger captures and
	// mounts /debug/prof/ on the gateway.
	Profiler *prof.Profiler
	// EventBuffer is the cluster timeline capacity (default 512
	// events).
	EventBuffer int
	// FederationTTL bounds how stale the cached shard /varz scrapes
	// behind /v1/cluster/metrics may get before a read re-scrapes
	// (default 2s).
	FederationTTL time.Duration
	// Metrics, when non-nil, is the registry the gateway exports into
	// (hostprof_gateway_* names). Nil creates a private registry.
	Metrics *obs.Registry
	// Tracer, when non-nil, traces every gateway request; proxied shard
	// calls carry the gateway span's traceparent, so one trace covers
	// client → gateway → shard.
	Tracer *tracer.Tracer
	// Logger receives structured logs. Nil selects slog.Default().
	Logger *slog.Logger
	// HTTPClient overrides the shard transport (tests). Nil builds one
	// with sane pooling.
	HTTPClient *http.Client
}

func (c Config) withDefaults() Config {
	if c.VirtualNodes <= 0 {
		c.VirtualNodes = DefaultVirtualNodes
	}
	if c.ShardTimeout <= 0 {
		c.ShardTimeout = 5 * time.Second
	}
	if c.RetrainTimeout <= 0 {
		c.RetrainTimeout = 10 * time.Minute
	}
	if c.ShardRetries == 0 {
		c.ShardRetries = 2
	}
	if c.ShardRetries < 0 {
		c.ShardRetries = 0
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 50 * time.Millisecond
	}
	if c.RetryMax <= 0 {
		c.RetryMax = time.Second
	}
	if c.MaxSessionsPerBatch <= 0 {
		c.MaxSessionsPerBatch = 2048
	}
	if c.MigrationChunk <= 0 {
		c.MigrationChunk = 4096
	}
	if c.MigrationWorkers <= 0 {
		c.MigrationWorkers = 4
	}
	if c.MigrationAttempts <= 0 {
		c.MigrationAttempts = 3
	}
	if c.ShardBatchLimit <= 0 {
		c.ShardBatchLimit = 256
	}
	if c.EventBuffer <= 0 {
		c.EventBuffer = 512
	}
	if c.FederationTTL <= 0 {
		c.FederationTTL = 2 * time.Second
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	return c
}

// Gateway is the cluster's stateless router. All methods are safe for
// concurrent use.
type Gateway struct {
	cfg    Config
	reg    *obs.Registry
	met    gatewayMetrics
	tr     *tracer.Tracer
	log    *slog.Logger
	client *http.Client

	// observability plane: the cluster event timeline, the federated
	// shard-metrics cache, the gateway's own SLOs / slow-request log /
	// statusz page, and the slow-capture profiler.
	events  *eventLog
	fed     *federator
	slos    *prof.SLOTracker
	slowlog *prof.SlowLog
	profz   *prof.Profiler
	statusz *prof.Statusz

	ringMu sync.Mutex
	ring   *Ring

	// migration is the installed resize operation, nil when idle. The
	// pointer is read lock-free on every routed request; migBarrier
	// gives installation a drain point: forwarders hold it shared for a
	// write's duration, so after install takes (and releases) it
	// exclusively, every in-flight write predating the migration has
	// finished and all later writes see it. resizeMu serializes
	// Resize/SetBackends calls against each other.
	migration  atomic.Pointer[Migration]
	migBarrier sync.RWMutex
	resizeMu   sync.Mutex

	mu     sync.Mutex
	shards map[string]*shardState
	// backends is the live membership — cfg.Backends at build time,
	// replaced when a migration completes or SetBackends swaps the
	// ring. trainNode and model anti-entropy iterate this, not the
	// frozen config.
	backends      []string
	lastMigration *MigrationStatus
	// modelVersion/modelData cache the last artifact the gateway pulled,
	// so distribution and anti-entropy re-GET a shard's model only when
	// the version actually changed (If-None-Match → 304).
	modelVersion string
	modelData    []byte

	stop      chan struct{}
	wg        sync.WaitGroup
	startOnce sync.Once
	closeOnce sync.Once
}

// gatewayMetrics caches the gateway's registry handles.
type gatewayMetrics struct {
	shed         *obs.Counter
	retries      *obs.Counter
	rebalances   *obs.Counter
	batchPartial *obs.Counter
	modelPushes  *obs.Counter
	pushErrors   *obs.Counter

	// migration lifecycle
	migStarts        *obs.Counter
	migResumes       *obs.Counter
	migDone          *obs.Counter
	migFailed        *obs.Counter
	migRangesDone    *obs.Counter
	migRangesAborted *obs.Counter
	migRecords       *obs.Counter
	doubleWrites     *obs.Counter
	doubleWriteErrs  *obs.Counter
}

func newGatewayMetrics(reg *obs.Registry) gatewayMetrics {
	reg.Describe("hostprof_gateway_requests_total", "gateway requests, by endpoint and status code")
	reg.Describe("hostprof_gateway_request_seconds", "gateway request latency, by endpoint")
	reg.Describe("hostprof_gateway_shard_requests_total", "proxied shard requests, by backend and status code")
	reg.Describe("hostprof_gateway_shard_request_seconds", "proxied shard request latency, by backend")
	reg.Describe("hostprof_gateway_shard_errors_total", "shard transport failures, by backend")
	reg.Describe("hostprof_gateway_shard_up", "1 when the shard answered its last health probe, by backend")
	reg.Describe("hostprof_gateway_shard_ready", "1 when the shard reported ready, by backend")
	reg.Describe("hostprof_gateway_model_version", "numeric prefix of the shard's model version (0 = untrained), by backend")
	reg.Describe("hostprof_gateway_shed_total", "requests refused because the owning shard is down (its keyspace is shed)")
	reg.Describe("hostprof_gateway_retries_total", "shard requests re-sent after a shed answer")
	reg.Describe("hostprof_gateway_ring_rebalance_total", "ring rebuilds from membership changes")
	reg.Describe("hostprof_gateway_batch_partial_total", "scatter-gather batches answered with partial results")
	reg.Describe("hostprof_gateway_model_pushes_total", "model artifacts pushed to shards")
	reg.Describe("hostprof_gateway_events_total", "cluster timeline events recorded, by type")
	reg.Describe("hostprof_gateway_worst_shard_burn_rate", "largest hostprof_slo_burn_rate any shard reported in the cached federation view")
	return gatewayMetrics{
		shed:         reg.Counter("hostprof_gateway_shed_total"),
		retries:      reg.Counter("hostprof_gateway_retries_total"),
		rebalances:   reg.Counter("hostprof_gateway_ring_rebalance_total"),
		batchPartial: reg.Counter("hostprof_gateway_batch_partial_total"),
		modelPushes:  reg.Counter("hostprof_gateway_model_pushes_total", obs.L("outcome", "ok")),
		pushErrors:   reg.Counter("hostprof_gateway_model_pushes_total", obs.L("outcome", "error")),

		migStarts:        reg.Counter("hostprof_gateway_migrations_total", obs.L("outcome", "started")),
		migResumes:       reg.Counter("hostprof_gateway_migrations_total", obs.L("outcome", "resumed")),
		migDone:          reg.Counter("hostprof_gateway_migrations_total", obs.L("outcome", "done")),
		migFailed:        reg.Counter("hostprof_gateway_migrations_total", obs.L("outcome", "failed")),
		migRangesDone:    reg.Counter("hostprof_gateway_migration_ranges_total", obs.L("outcome", "done")),
		migRangesAborted: reg.Counter("hostprof_gateway_migration_ranges_total", obs.L("outcome", "aborted")),
		migRecords:       reg.Counter("hostprof_gateway_migration_records_total"),
		doubleWrites:     reg.Counter("hostprof_gateway_migration_double_writes_total", obs.L("outcome", "ok")),
		doubleWriteErrs:  reg.Counter("hostprof_gateway_migration_double_writes_total", obs.L("outcome", "error")),
	}
}

// New validates cfg and builds a gateway. The ring is built immediately
// (placement needs no I/O); every shard starts unknown-dead until the
// first health probe, so call Start (or CheckHealth) before serving.
func New(cfg Config) (*Gateway, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Backends) == 0 {
		return nil, errors.New("cluster: gateway needs at least one backend")
	}
	ring, err := NewRing(cfg.Backends, cfg.VirtualNodes)
	if err != nil {
		return nil, err
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	client := cfg.HTTPClient
	if client == nil {
		client = &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost: 64,
			IdleConnTimeout:     90 * time.Second,
		}}
	}
	g := &Gateway{
		cfg:      cfg,
		reg:      reg,
		met:      newGatewayMetrics(reg),
		tr:       cfg.Tracer,
		log:      cfg.Logger,
		client:   client,
		events:   newEventLog(cfg.EventBuffer),
		fed:      &federator{ttl: cfg.FederationTTL},
		profz:    cfg.Profiler,
		ring:     ring,
		shards:   make(map[string]*shardState, len(cfg.Backends)),
		backends: append([]string(nil), cfg.Backends...),
		stop:     make(chan struct{}),
	}
	if len(cfg.SLOTargets) > 0 {
		g.slos = prof.NewNamedSLOTracker("hostprof_gateway_slo", cfg.SLOWindow, reg)
		for endpoint, target := range cfg.SLOTargets {
			g.slos.Register(endpoint, target)
		}
	}
	if cfg.SlowRequest > 0 {
		g.slowlog = prof.NewSlowLog(32)
	}
	for _, b := range cfg.Backends {
		g.shards[b] = &shardState{name: b}
		g.wireShardGauges(b)
	}
	g.registerMigrationMetrics()
	reg.GaugeFunc("hostprof_gateway_worst_shard_burn_rate", g.worstShardBurnRate)
	g.statusz = g.buildStatusz()
	return g, nil
}

// buildStatusz assembles the gateway's /debug/statusz: the cluster
// view, gateway SLOs, the newest timeline events, the federation
// scrape ledger and the slow-request log — the one-pager an operator
// opens first.
func (g *Gateway) buildStatusz() *prof.Statusz {
	sz := prof.NewStatusz()
	sz.Section("cluster", func() any { return g.ClusterStatus() })
	sz.Section("slo", func() any { return g.slos.Status() })
	sz.Section("events", func() any { return g.events.last(50) })
	sz.Section("federation", func() any { return scrapeStatuses(g.fed.cached()) })
	sz.Section("slow_requests", func() any { return g.slowlog.Snapshot() })
	return sz
}

// Metrics returns the registry the gateway exports into.
func (g *Gateway) Metrics() *obs.Registry { return g.reg }

// Ring returns the current placement ring.
func (g *Gateway) Ring() *Ring {
	g.ringMu.Lock()
	defer g.ringMu.Unlock()
	return g.ring
}

// SetBackends rebuilds the ring over a new member set WITHOUT migrating
// any data — the raw swap behind a data-free topology change (all-new
// cluster, test fixtures). A resize that must preserve users' histories
// goes through Resize instead, which refuses to coexist with this:
// SetBackends errors while a migration is installed. Counted in
// hostprof_gateway_ring_rebalance_total.
func (g *Gateway) SetBackends(backends []string) error {
	ring, err := NewRing(backends, g.cfg.VirtualNodes)
	if err != nil {
		return err
	}
	if m := g.migration.Load(); m != nil {
		return fmt.Errorf("cluster: cannot swap backends while a migration is installed (state %s)", m.Status().State)
	}
	g.ringMu.Lock()
	changed := !g.ring.Equal(backends)
	g.ring = ring
	g.ringMu.Unlock()
	if !changed {
		return nil
	}
	g.met.rebalances.Inc()
	g.mu.Lock()
	g.backends = append([]string(nil), backends...)
	for _, b := range backends {
		if g.shards[b] == nil {
			g.shards[b] = &shardState{name: b}
			g.wireShardGauges(b)
		}
	}
	keep := make(map[string]bool, len(backends))
	for _, b := range backends {
		keep[b] = true
	}
	for name := range g.shards {
		if !keep[name] {
			delete(g.shards, name)
		}
	}
	g.mu.Unlock()
	g.event(EventRingRebalance, "", "ring rebalanced over new membership",
		"backends", strconv.Itoa(len(backends)))
	g.log.Info("gateway ring rebalanced", slog.Int("backends", len(backends)))
	return nil
}

// Start launches the health loop (when HealthInterval > 0) after one
// synchronous probe pass, so the first proxied request already knows
// which shards are up.
func (g *Gateway) Start(ctx context.Context) {
	g.startOnce.Do(func() {
		g.CheckHealth(ctx)
		if g.cfg.HealthInterval > 0 {
			g.wg.Add(1)
			go g.healthLoop()
		}
	})
}

// Close stops the health loop.
func (g *Gateway) Close() {
	g.closeOnce.Do(func() {
		close(g.stop)
		g.wg.Wait()
	})
}

func (g *Gateway) healthLoop() {
	defer g.wg.Done()
	t := time.NewTicker(g.cfg.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			ctx, cancel := context.WithTimeout(context.Background(), g.cfg.ShardTimeout)
			g.CheckHealth(ctx)
			if !g.cfg.NoAutoSync {
				g.SyncModels(ctx)
			}
			cancel()
		case <-g.stop:
			return
		}
	}
}

// Handler returns the gateway's HTTP API — wire-compatible with a
// single backend for everything a client uses, so pointing an
// Extension at a gateway instead of a backend changes nothing:
//
//	POST /v1/report         → forwarded to the user's owning shard
//	POST /v1/feedback       → forwarded to the user's owning shard
//	POST /v1/profile/batch  → scatter-gather across ready shards
//	POST /v1/retrain        → designated shard trains, model distributed
//	GET  /v1/stats          → aggregated across live shards
//	GET  /v1/cluster        → ring, shard health, model versions, migration
//	POST /v1/cluster/resize → start/resume/join a keyspace migration
//	GET  /v1/cluster/metrics→ federated shard metrics, merged (partial on scrape failures)
//	GET  /v1/cluster/events → the cluster event timeline (?since=<id> cursor)
//	GET  /metrics           → gateway metrics + shard="<name>"-labelled federated series
//	GET  /varz              → gateway metrics (JSON)
//	GET  /healthz           → gateway liveness
//	GET  /readyz            → 200 when ≥1 shard is alive ("degraded" mid-migration)
//	GET  /debug/traces      → distributed traces (gateway spans + shard-pushed spans)
//	GET  /debug/statusz     → cluster one-pager (health, SLOs, events, federation)
//	GET  /debug/prof/       → profile capture ring, when a Profiler is wired
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/report", g.instrument("report", g.handleReport))
	mux.HandleFunc("POST /v1/feedback", g.instrument("feedback", g.handleFeedback))
	mux.HandleFunc("POST /v1/profile/batch", g.instrument("profile_batch", g.handleProfileBatch))
	mux.HandleFunc("POST /v1/retrain", g.instrument("retrain", g.handleRetrain))
	mux.HandleFunc("GET /v1/stats", g.instrument("stats", g.handleStats))
	mux.HandleFunc("GET /v1/cluster", g.instrument("cluster", g.handleCluster))
	mux.HandleFunc("POST /v1/cluster/resize", g.instrument("cluster_resize", g.handleResize))
	mux.HandleFunc("GET /v1/cluster/metrics", g.instrument("cluster_metrics", g.handleClusterMetrics))
	mux.HandleFunc("GET /v1/cluster/events", g.instrument("cluster_events", g.handleEvents))
	mux.Handle("GET /metrics", g.federatedMetricsHandler())
	mux.Handle("GET /varz", g.reg.VarzHandler())
	mux.Handle("GET /healthz", obs.HealthzHandler(nil))
	mux.HandleFunc("GET /readyz", g.handleReadyz)
	mux.Handle("GET /debug/statusz", g.statusz.Handler())
	if g.tr.Enabled() {
		mux.Handle("/debug/traces", g.tr.Handler())
	}
	if g.profz.Enabled() {
		mux.Handle("/debug/prof/", g.profz.Handler())
	}
	return mux
}

// instrument wraps a gateway endpoint with tracing, latency and
// request-count metrics, mirroring the backend's contract: the handler
// span joins an incoming W3C traceparent, so a traced client, this
// gateway and the shards it fans out to share one trace ID.
func (g *Gateway) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	lat := g.reg.Histogram("hostprof_gateway_request_seconds", nil, obs.L("endpoint", endpoint))
	// The SLO handle is resolved once per endpoint at wrap time; per
	// request it is one nil-safe Observe. Endpoints without a
	// configured target get a nil handle — zero cost.
	slo := g.slos.Get(endpoint)
	return func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		start := time.Now()
		var span *tracer.Span
		if g.tr.Enabled() {
			ctx := r.Context()
			if sc, ok := tracer.ParseTraceparent(r.Header.Get("traceparent")); ok {
				ctx = tracer.ContextWithRemote(ctx, sc)
			}
			ctx, span = g.tr.StartSpan(ctx, "gw."+endpoint)
			span.SetAttr("endpoint", endpoint)
			r = r.WithContext(ctx)
		}
		defer func() {
			d := time.Since(start)
			if rec.code >= 500 {
				span.Error(fmt.Errorf("HTTP %d", rec.code))
			}
			slow := g.cfg.SlowRequest > 0 && d >= g.cfg.SlowRequest
			var capIDs []uint64
			if slow {
				// Snapshot goroutine+mutex profiles tagged with this
				// trace before the span closes, so the /debug/traces
				// entry links to the evidence. The profiler rate-limits
				// trigger captures internally; nil profiler = no-op.
				capIDs = g.profz.CaptureSlow(span.TraceIDString())
			}
			span.SetAttr("code", strconv.Itoa(rec.code))
			span.End()
			lat.ObserveExemplar(d.Seconds(), span.TraceIDString())
			slo.Observe(d.Seconds())
			g.reg.Counter("hostprof_gateway_requests_total",
				obs.L("endpoint", endpoint),
				obs.L("code", strconv.Itoa(rec.code))).Inc()
			if slow {
				g.slowlog.Add(prof.SlowEntry{
					Endpoint:   endpoint,
					Code:       rec.code,
					Seconds:    d.Seconds(),
					TraceID:    span.TraceIDString(),
					CaptureIDs: capIDs,
				})
				g.log.LogAttrs(r.Context(), slog.LevelWarn, "slow gateway request",
					slog.String("endpoint", endpoint),
					slog.Int("code", rec.code),
					slog.Duration("elapsed", d),
					slog.String("stages", formatStages(span.Stages())))
			}
		}()
		h(rec, r)
	}
}

// formatStages renders a span's per-stage breakdown for the slow-log
// line: "shard.report=12ms shard.retry=3ms".
func formatStages(stages []tracer.Stage) string {
	if len(stages) == 0 {
		return "-"
	}
	var b strings.Builder
	for i, st := range stages {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(st.Name)
		b.WriteByte('=')
		b.WriteString(st.Duration.Round(time.Microsecond).String())
	}
	return b.String()
}

// statusRecorder captures the response code a handler wrote.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (w *statusRecorder) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// writeJSON sends a JSON response.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// writeError sends the backend's JSON error envelope, so clients parse
// gateway and shard errors identically.
func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
