package index

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"
)

// queryState is the pooled scratch of one in-flight query: the packed
// query vector, one bounded heap per scanner slot, and the atomics
// coordinating block claims. It is reused across queries via the
// index's sync.Pool, so the steady-state query allocates nothing.
type queryState struct {
	ix      *Index
	q       []float32
	k       int
	exclude int32

	// epoch is odd while a query is active. Helpers receive (state,
	// epoch) tokens from the process-wide channel; a token whose epoch
	// no longer matches is stale — from a query that already finished —
	// and the helper bounces off without touching anything.
	epoch atomic.Uint64
	// active counts helpers inside help(); the query owner waits for it
	// to drain after the epoch flip before reading the heaps.
	active atomic.Int32
	// next is the index of the next unclaimed scan block.
	next atomic.Int32
	// slots hands out heap slots 1..len(heaps)-1 to helpers; slot 0
	// belongs to the calling goroutine.
	slots atomic.Int32

	wg    sync.WaitGroup
	heaps []topk
	out   topk
}

func newQueryState(ix *Index) *queryState {
	return &queryState{
		ix:    ix,
		q:     make([]float32, ix.dim),
		heaps: make([]topk, 1+helperCount()),
	}
}

// setQuery normalizes query into the packed float32 buffer, reporting
// false for a zero vector (no defined neighbourhood).
func (qs *queryState) setQuery(query []float64) bool {
	var norm float64
	for _, x := range query {
		norm += x * x
	}
	if norm == 0 {
		return false
	}
	inv := 1 / math.Sqrt(norm)
	for i, x := range query {
		qs.q[i] = float32(x * inv)
	}
	return true
}

// scan claims blocks until none remain. The caller owns heap slot 0; a
// helper acquires its slot only after winning its first block claim —
// a successful claim means the query owner is still blocked in wg.Wait,
// so resetting the slot's heap cannot race with the merge.
func (qs *queryState) scan(caller bool) {
	var h *topk
	if caller {
		h = &qs.heaps[0]
		h.reset(qs.k)
	}
	for {
		b := int(qs.next.Add(1)) - 1
		if b >= qs.ix.blocks {
			return
		}
		if h == nil {
			h = &qs.heaps[qs.slots.Add(1)]
			h.reset(qs.k)
		}
		qs.ix.scanBlock(qs.q, b, qs.exclude, h)
		qs.wg.Done()
	}
}

// help is a helper's entry point for one token.
func (qs *queryState) help(epoch uint64) {
	qs.active.Add(1)
	if qs.epoch.Load() == epoch {
		qs.scan(false)
	}
	qs.active.Add(-1)
}

// merge folds every used heap into the output heap and appends the
// final ranking to dst, best first.
func (qs *queryState) merge(dst []Result) []Result {
	used := int(qs.slots.Load())
	qs.out.reset(qs.k)
	for s := 0; s <= used; s++ {
		for _, e := range qs.heaps[s].e {
			qs.out.offer(e)
		}
	}
	n := len(qs.out.e)
	base := len(dst)
	for i := 0; i < n; i++ {
		dst = append(dst, Result{})
	}
	// Popping a min-heap of the kept set yields worst-first: fill from
	// the back.
	ids := qs.ix.ids
	for i := n - 1; i >= 0; i-- {
		e := qs.out.pop()
		id := e.row
		if ids != nil {
			id = ids[id]
		}
		dst[base+i] = Result{ID: id, Score: e.score}
	}
	return dst
}

// --- scanner helper pool ------------------------------------------------

// token hands a live query to an idle helper.
type token struct {
	qs    *queryState
	epoch uint64
}

var helperPool struct {
	once sync.Once
	ch   chan token
	n    int
}

// helperCount returns the number of persistent helper goroutines,
// starting them on first use. Helpers are process-wide and shared by
// every index, so model retrains never leak scanner goroutines.
func helperCount() int {
	helperPool.once.Do(func() {
		n := runtime.GOMAXPROCS(0) - 1
		if n < 1 {
			n = 1
		}
		if n > 32 {
			n = 32
		}
		helperPool.n = n
		helperPool.ch = make(chan token, 2*n)
		for i := 0; i < n; i++ {
			go func() {
				for t := range helperPool.ch {
					t.qs.help(t.epoch)
				}
			}()
		}
	})
	return helperPool.n
}

// offerHelp invites up to n helpers to the query without blocking: if
// the pool is saturated the caller simply scans more blocks itself.
func offerHelp(qs *queryState, epoch uint64, n int) {
	helperCount()
	for i := 0; i < n; i++ {
		select {
		case helperPool.ch <- token{qs: qs, epoch: epoch}:
		default:
			return
		}
	}
}

// --- bounded top-k heap -------------------------------------------------

// entry is one scored row.
type entry struct {
	score float32
	row   int32
}

// worse reports whether a ranks strictly below b in the total result
// order: lower score, or equal score and higher row. Using a total
// order at every comparison makes the kept set — not just its final
// sort — independent of the block partition.
func worse(a, b entry) bool {
	return a.score < b.score || (a.score == b.score && a.row > b.row)
}

// topk is a bounded min-heap of the best k entries seen, rooted at the
// worst kept entry.
type topk struct {
	e []entry
	k int
}

func (h *topk) reset(k int) {
	h.k = k
	if cap(h.e) < k {
		h.e = make([]entry, 0, k)
	} else {
		h.e = h.e[:0]
	}
}

// offer inserts e if it ranks above the current worst kept entry.
func (h *topk) offer(e entry) {
	if len(h.e) < h.k {
		h.e = append(h.e, e)
		i := len(h.e) - 1
		for i > 0 {
			p := (i - 1) / 2
			if !worse(h.e[i], h.e[p]) {
				break
			}
			h.e[p], h.e[i] = h.e[i], h.e[p]
			i = p
		}
		return
	}
	if !worse(h.e[0], e) {
		return
	}
	h.e[0] = e
	h.siftDown(0)
}

// pop removes and returns the worst kept entry.
func (h *topk) pop() entry {
	root := h.e[0]
	n := len(h.e) - 1
	h.e[0] = h.e[n]
	h.e = h.e[:n]
	h.siftDown(0)
	return root
}

func (h *topk) siftDown(i int) {
	n := len(h.e)
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < n && worse(h.e[l], h.e[s]) {
			s = l
		}
		if r < n && worse(h.e[r], h.e[s]) {
			s = r
		}
		if s == i {
			return
		}
		h.e[i], h.e[s] = h.e[s], h.e[i]
		i = s
	}
}
