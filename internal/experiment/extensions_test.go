package experiment

import (
	"testing"

	"hostprof/internal/sniffer"
)

func TestExtensionSNIBaseline(t *testing.T) {
	s := testSetup(t)
	r, err := RunExtension(s, ExtConfig{
		Wire: sniffer.WireConfig{Channel: sniffer.ChannelTLS, Seed: 301},
		Seed: 303,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Profiled == 0 {
		t.Fatal("nobody profiled")
	}
	if r.FallbackShare != 0 {
		t.Fatalf("fallback share %v with plain TLS", r.FallbackShare)
	}
	if r.MatchRate() < 0.5 {
		t.Fatalf("SNI baseline match rate %.2f, want >= 0.5", r.MatchRate())
	}
}

func TestExtensionPartialECHStillProfiles(t *testing.T) {
	// 40% of TLS flows hide their SNI behind ECH; the observer's IP
	// fallback plus resolved labels keep profiling functional.
	s := testSetup(t)
	r, err := RunExtension(s, ExtConfig{
		Wire:       sniffer.WireConfig{Channel: sniffer.ChannelTLS, ECHProb: 0.4, Seed: 305},
		ResolveIPs: true,
		Seed:       307,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.FallbackShare < 0.2 || r.FallbackShare > 0.6 {
		t.Fatalf("fallback share %.2f, want ~0.4", r.FallbackShare)
	}
	if r.MatchRate() < 0.35 {
		t.Fatalf("partial-ECH match rate %.2f, want >= 0.35", r.MatchRate())
	}
}

func TestExtensionFullECH(t *testing.T) {
	// With every hello encrypted the observer sees only IPs; profiling
	// must still beat chance thanks to resolved labelled addresses.
	s := testSetup(t)
	r, err := RunExtension(s, ExtConfig{
		Wire:       sniffer.WireConfig{Channel: sniffer.ChannelECH, Seed: 309},
		ResolveIPs: true,
		Seed:       311,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.FallbackShare < 0.95 {
		t.Fatalf("fallback share %.2f under full ECH", r.FallbackShare)
	}
	// Chance of hitting one of the ~2-6 window topics among 34 is well
	// under 0.2; require better.
	if r.MatchRate() < 0.2 {
		t.Fatalf("full-ECH match rate %.2f, want >= 0.2 (IPs still profile)", r.MatchRate())
	}
}

func TestExtensionNATDegradesAttribution(t *testing.T) {
	s := testSetup(t)
	solo, err := RunExtension(s, ExtConfig{
		Wire: sniffer.WireConfig{Channel: sniffer.ChannelTLS, Seed: 313},
		Seed: 315,
	})
	if err != nil {
		t.Fatal(err)
	}
	nat, err := RunExtension(s, ExtConfig{
		Wire: sniffer.WireConfig{Channel: sniffer.ChannelTLS, NATSize: 5, Seed: 313},
		Seed: 315,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Households collapse: fewer wire identities than users.
	if nat.Profiled >= solo.Profiled {
		t.Fatalf("NAT did not merge identities: %d vs %d", nat.Profiled, solo.Profiled)
	}
	// NAT profiles can still match *some* member's browsing, so the
	// match rate need not collapse, but the observer now profiles
	// households, not people — verify the identity loss is real.
	if nat.ObservedVisits == 0 {
		t.Fatal("NAT run observed nothing")
	}
}

func TestExtensionMatchesBeatChanceConsistently(t *testing.T) {
	// Guard: the match metric itself is not trivially satisfiable —
	// chance level for hitting one of the window topics is bounded by
	// (#window topics)/34, typically < 0.25 at this scale.
	s := testSetup(t)
	r, err := RunExtension(s, ExtConfig{
		Wire: sniffer.WireConfig{Channel: sniffer.ChannelTLS, Seed: 317},
		Seed: 319,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.MatchRate() <= 0.25 {
		t.Fatalf("match rate %.2f does not beat the chance bound", r.MatchRate())
	}
}
