package hostprof

import (
	"context"
	"fmt"
	"sync"
	"time"

	"hostprof/internal/core"
	"hostprof/internal/flight"
	"hostprof/internal/obs"
	"hostprof/internal/obs/tracer"
	"hostprof/internal/sniffer"
	"hostprof/internal/store"
)

// PipelineConfig assembles a complete network-observer pipeline.
type PipelineConfig struct {
	// Observer configures packet decoding and user attribution.
	Observer ObserverConfig
	// Train configures embedding training; zero values select paper
	// defaults.
	Train TrainConfig
	// Profile configures session profiling; zero N selects the paper's
	// 1000.
	Profile ProfilerConfig
	// SessionWindow is the profiling window T in seconds (paper: 20
	// minutes). Zero selects 1200.
	SessionWindow int64
	// Blocklist, when non-nil, filters tracker hostnames before both
	// training and profiling, as Section 5.4 prescribes.
	Blocklist *Blocklist
	// Ontology supplies the labelled subset H_L.
	Ontology *Ontology
	// Metrics, when non-nil, is the registry every pipeline stage
	// exports into (hostprof_* names; see internal/obs). Nil creates a
	// private registry, retrievable via Pipeline.Metrics, so the
	// pipeline is always instrumented.
	Metrics *obs.Registry
	// Store, when non-nil, is the visit store the pipeline ingests
	// into — open a durable one with OpenStore to survive restarts.
	// Nil creates a private in-memory sharded store.
	Store *store.Store
	// RetrainTimeout bounds each retrain run; past the deadline training
	// is cancelled at the next epoch boundary and the retrain fails with
	// context.DeadlineExceeded. Zero means no deadline.
	RetrainTimeout time.Duration
	// Tracer, when non-nil and enabled, records retrain and profiling
	// spans; a span carried by the caller's context becomes their
	// parent. Nil costs a nil check per operation.
	Tracer *tracer.Tracer
}

// Pipeline is the end-to-end eavesdropper: packets in, profiles and ads
// out. All exported methods are safe for concurrent use: visits land in
// a sharded store (per-shard locks), packet decoding serializes only on
// the observer's flow state, and model swaps take a separate lock.
type Pipeline struct {
	cfg PipelineConfig
	reg *obs.Registry
	met pipelineMetrics

	store *store.Store

	// retrains coalesces concurrent retrain calls into one training run
	// (the paper retrained daily; overlapping triggers must not fit two
	// models over the same corpus).
	retrains flight.Group

	// obsMu serializes packet decoding, which mutates the observer's
	// flow-reassembly state. It is intentionally separate from mu so
	// profiling and retraining never stall packet capture.
	obsMu    sync.Mutex
	observer *Observer

	mu       sync.Mutex
	model    *Model
	profiler *Profiler
}

// pipelineMetrics caches the pipeline's registry handles.
type pipelineMetrics struct {
	frames         *obs.Counter
	visits         *obs.Counter
	blocked        *obs.Counter
	storeErrors    *obs.Counter
	retrains       *obs.Counter
	retrainErrors  *obs.Counter
	retrainSeconds *obs.Histogram
	epochs         *obs.Counter
	epochSeconds   *obs.Histogram
	epochLoss      *obs.Gauge
	profileSeconds *obs.Histogram
	profileErrors  *obs.Counter
}

// retrainBuckets spans sub-second toy corpora to multi-hour production
// retrains.
var retrainBuckets = obs.ExpBuckets(0.01, 4, 10)

func newPipelineMetrics(reg *obs.Registry) pipelineMetrics {
	reg.Describe("hostprof_ingest_visits_total", "visits recorded into the trace store")
	reg.Describe("hostprof_retrain_seconds", "wall time of full model retrains")
	reg.Describe("hostprof_train_epoch_loss", "mean negative-sampling loss of the last epoch")
	return pipelineMetrics{
		frames:         reg.Counter("hostprof_ingest_frames_total"),
		visits:         reg.Counter("hostprof_ingest_visits_total"),
		blocked:        reg.Counter("hostprof_ingest_blocklist_drops_total"),
		storeErrors:    reg.Counter("hostprof_ingest_store_errors_total"),
		retrains:       reg.Counter("hostprof_retrain_total"),
		retrainErrors:  reg.Counter("hostprof_retrain_errors_total"),
		retrainSeconds: reg.Histogram("hostprof_retrain_seconds", retrainBuckets),
		epochs:         reg.Counter("hostprof_train_epochs_total"),
		epochSeconds:   reg.Histogram("hostprof_train_epoch_seconds", retrainBuckets),
		epochLoss:      reg.Gauge("hostprof_train_epoch_loss"),
		profileSeconds: reg.Histogram("hostprof_profile_seconds", nil),
		profileErrors:  reg.Counter("hostprof_profile_errors_total"),
	}
}

// NewPipeline validates cfg and returns an empty pipeline.
func NewPipeline(cfg PipelineConfig) (*Pipeline, error) {
	if cfg.Ontology == nil {
		return nil, fmt.Errorf("hostprof: pipeline requires an ontology")
	}
	if cfg.SessionWindow <= 0 {
		cfg.SessionWindow = 20 * 60
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	if cfg.Observer.Metrics == nil {
		cfg.Observer.Metrics = reg
	}
	if cfg.Profile.Metrics == nil {
		cfg.Profile.Metrics = reg
	}
	if cfg.Profile.Tracer == nil {
		cfg.Profile.Tracer = cfg.Tracer
	}
	st := cfg.Store
	if st == nil {
		var err error
		st, err = store.Open(store.Config{Metrics: reg})
		if err != nil {
			return nil, fmt.Errorf("hostprof: opening visit store: %w", err)
		}
	}
	p := &Pipeline{
		cfg:      cfg,
		reg:      reg,
		met:      newPipelineMetrics(reg),
		observer: sniffer.NewObserver(cfg.Observer),
		store:    st,
	}
	// A durable store restored from snapshot carries the trained model:
	// start warm instead of waiting for the first retrain.
	if m := st.Model(); m != nil {
		p.model = m
		p.profiler = core.NewProfiler(m, cfg.Ontology, cfg.Profile)
	}
	return p, nil
}

// Metrics returns the registry the pipeline exports into — the
// configured one, or the private registry created when none was given.
func (p *Pipeline) Metrics() *obs.Registry { return p.reg }

// Ingest feeds one captured Ethernet frame taken at ts (seconds) to the
// observer; any extracted visit is recorded (unless blocklisted).
// It reports whether a hostname was extracted and stored. Only packet
// decoding holds the observer lock; the visit lands in the sharded
// store, so ingestion never contends with profiling or retraining.
func (p *Pipeline) Ingest(frame []byte, ts int64) bool {
	p.met.frames.Inc()
	p.obsMu.Lock()
	v, ok := p.observer.ProcessPacket(frame, ts)
	p.obsMu.Unlock()
	if !ok {
		return false
	}
	return p.record(v)
}

// IngestVisit records an already-extracted visit (e.g. replayed from a
// stored trace), subject to blocklist filtering. It takes no pipeline-
// wide lock: concurrent callers contend only on the visit's shard.
func (p *Pipeline) IngestVisit(v Visit) bool {
	return p.record(v)
}

// record filters and stores one visit.
func (p *Pipeline) record(v Visit) bool {
	if p.cfg.Blocklist != nil && p.cfg.Blocklist.Contains(v.Host) {
		p.met.blocked.Inc()
		return false
	}
	if err := p.store.Append(v); err != nil {
		p.met.storeErrors.Inc()
		return false
	}
	p.met.visits.Inc()
	return true
}

// Trace returns a point-in-time copy of the accumulated visit trace.
// The copy shares nothing with the store, so callers may window and
// mutate it freely while ingestion continues.
func (p *Pipeline) Trace() *Trace {
	return p.store.SnapshotTrace()
}

// Store returns the pipeline's visit store — the configured one, or the
// private in-memory store created when none was given. Use it for
// durability operations (Flush, Snapshot, Close) and recovery stats.
func (p *Pipeline) Store() *store.Store { return p.store }

// trainConfig returns the configured TrainConfig with the pipeline's
// epoch instrumentation chained in front of any caller-supplied
// Progress hook.
func (p *Pipeline) trainConfig() core.TrainConfig {
	tc := p.cfg.Train
	user := tc.Progress
	tc.Progress = func(e core.EpochStats) {
		p.met.epochs.Inc()
		p.met.epochSeconds.Observe(e.Duration.Seconds())
		p.met.epochLoss.Set(e.Loss)
		if user != nil {
			user(e)
		}
	}
	return tc
}

// retrain coalesces concurrent retrain calls (the corpus is gathered
// inside the run, so a joiner doesn't fit yesterday's snapshot), fits a
// model and swaps it in, recording retrain duration and outcome. The
// duration histogram observes failed retrains too — a retrain that dies
// after an hour must show up in hostprof_retrain_seconds, not vanish.
func (p *Pipeline) retrain(ctx context.Context, corpus func() [][]string, label string) error {
	_, err := p.retrains.Do(ctx, ctx, func(runCtx context.Context) error {
		if p.cfg.RetrainTimeout > 0 {
			var cancel context.CancelFunc
			runCtx, cancel = context.WithTimeout(runCtx, p.cfg.RetrainTimeout)
			defer cancel()
		}
		runCtx, tsp := p.cfg.Tracer.StartSpan(runCtx, "train.retrain")
		tsp.SetAttr("label", label)
		defer tsp.End()
		sp := obs.StartSpan(p.met.retrainSeconds)
		model, err := core.TrainContext(runCtx, corpus(), p.trainConfig())
		sp.End()
		if err != nil {
			p.met.retrainErrors.Inc()
			tsp.Error(err)
			return fmt.Errorf("hostprof: %s: %w", label, err)
		}
		p.met.retrains.Inc()
		profiler := core.NewProfiler(model, p.cfg.Ontology, p.cfg.Profile)

		p.store.SetModel(model)
		p.mu.Lock()
		p.model = model
		p.profiler = profiler
		p.mu.Unlock()
		return nil
	})
	return err
}

// Retrain fits a fresh embedding on every per-user-day sequence observed
// so far and swaps it in, mirroring the paper's daily retraining
// (Section 5.4). Equivalent to RetrainContext(context.Background()).
func (p *Pipeline) Retrain() error {
	return p.RetrainContext(context.Background())
}

// RetrainContext is Retrain with cancellation: cancel ctx (or let its
// deadline pass) and training stops at the next epoch boundary with the
// old model still in place. Concurrent retrain calls coalesce into one
// training run; joiners whose ctx expires stop waiting without aborting
// the run for the callers still attached.
func (p *Pipeline) RetrainContext(ctx context.Context) error {
	return p.retrain(ctx, p.store.AllSequences, "retraining")
}

// RetrainOnDay fits the embedding on a single day's sequences (the
// paper's "previous whole day") instead of the full history.
func (p *Pipeline) RetrainOnDay(day int) error {
	return p.RetrainOnDayContext(context.Background(), day)
}

// RetrainOnDayContext is RetrainOnDay with cancellation, with the same
// coalescing semantics as RetrainContext.
func (p *Pipeline) RetrainOnDayContext(ctx context.Context, day int) error {
	return p.retrain(ctx, func() [][]string { return p.store.DailySequences(day) },
		fmt.Sprintf("retraining on day %d", day))
}

// RetrainRunning reports whether a retrain is in flight.
func (p *Pipeline) RetrainRunning() bool { return p.retrains.Running() }

// ErrNotTrained is returned by profiling before the first Retrain.
var ErrNotTrained = fmt.Errorf("hostprof: pipeline model not trained yet")

// Model returns the current embedding model, or nil before training.
func (p *Pipeline) Model() *Model {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.model
}

// Ready reports whether the pipeline has a trained model, i.e. whether
// profiling can succeed (a readiness probe).
func (p *Pipeline) Ready() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.profiler != nil
}

// profile runs one session through the profiler, timing it and counting
// failures.
func (p *Pipeline) profile(profiler *Profiler, hosts []string) (Vector, error) {
	if profiler == nil {
		return nil, ErrNotTrained
	}
	sp := obs.StartSpan(p.met.profileSeconds)
	v, err := profiler.ProfileSession(hosts)
	sp.End()
	if err != nil {
		p.met.profileErrors.Inc()
		return nil, err
	}
	return v, nil
}

// ProfileUser profiles the hostnames user requested in the window
// (now-T, now].
func (p *Pipeline) ProfileUser(user int, now int64) (Vector, error) {
	p.mu.Lock()
	profiler := p.profiler
	p.mu.Unlock()
	session := p.store.Session(user, now, p.cfg.SessionWindow)
	return p.profile(profiler, session)
}

// ProfileSession profiles an explicit hostname sequence.
func (p *Pipeline) ProfileSession(hosts []string) (Vector, error) {
	p.mu.Lock()
	profiler := p.profiler
	p.mu.Unlock()
	return p.profile(profiler, hosts)
}

// ProfileSessions profiles many sessions in one call, fanning them out
// over the profiler's worker budget. Results and errors are positional:
// errs[i] belongs to sessions[i]. Equivalent to
// ProfileSessionsContext(context.Background(), sessions).
func (p *Pipeline) ProfileSessions(sessions [][]string) ([]Vector, []error, error) {
	return p.ProfileSessionsContext(context.Background(), sessions)
}

// ProfileSessionsContext is ProfileSessions under a caller context: a
// span carried by ctx parents the batch span, and cancellation stops
// the fan-out between sessions.
func (p *Pipeline) ProfileSessionsContext(ctx context.Context, sessions [][]string) ([]Vector, []error, error) {
	p.mu.Lock()
	profiler := p.profiler
	p.mu.Unlock()
	if profiler == nil {
		return nil, nil, ErrNotTrained
	}
	sp := obs.StartSpan(p.met.profileSeconds)
	vecs, errs := profiler.ProfileSessions(ctx, sessions)
	sp.End()
	for _, err := range errs {
		if err != nil {
			p.met.profileErrors.Inc()
		}
	}
	return vecs, errs, nil
}

// ObserverStats returns packet-level counters. The snapshot is built
// from the observer's atomic counters, so it is safe even while another
// goroutine is inside Ingest; the same guarantee holds for
// Observer.Stats when a sniffer.Observer is used directly.
func (p *Pipeline) ObserverStats() sniffer.ObserverStats {
	return p.observer.Stats()
}
