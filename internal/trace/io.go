package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// WriteJSONL streams the trace to w as one JSON object per line:
// {"user":1,"time":123,"host":"a.example"}.
func (t *Trace) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, v := range t.Visits() {
		if err := enc.Encode(v); err != nil {
			return fmt.Errorf("trace: encoding visit: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("trace: flushing: %w", err)
	}
	return nil
}

// ReadJSONL parses a trace written by WriteJSONL.
func ReadJSONL(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
	var visits []Visit
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var v Visit
		if err := json.Unmarshal(sc.Bytes(), &v); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		visits = append(visits, v)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: reading: %w", err)
	}
	return New(visits), nil
}
