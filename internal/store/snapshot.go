package store

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"hostprof/internal/core"
	"hostprof/internal/trace"
)

// snapshotVersion guards the gob schema of snapshot files.
const snapshotVersion = 1

// snapshotWire is the on-disk representation of a snapshot: the full
// visit set at the cut point plus the trained model (serialized with
// core.Model.Save), if any. Seq is the WAL cut sequence: segments with
// seq <= Seq are folded into this snapshot and must be skipped (and may
// be deleted) once it exists.
type snapshotWire struct {
	Version int
	Seq     uint64
	Visits  []trace.Visit
	Model   []byte
}

func snapPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%016d%s", snapPrefix, seq, snapSuffix))
}

// writeSnapshot persists visits and model atomically: encode to a temp
// file, fsync it, rename into place, fsync the directory. A crash at any
// point leaves either the previous snapshot or the new one, never a
// partially visible file.
func writeSnapshot(dir string, seq uint64, visits []trace.Visit, model *core.Model) error {
	wire := snapshotWire{Version: snapshotVersion, Seq: seq, Visits: visits}
	if model != nil {
		var mb bytes.Buffer
		if err := model.Save(&mb); err != nil {
			return fmt.Errorf("store: serializing model for snapshot: %w", err)
		}
		wire.Model = mb.Bytes()
	}
	tmp, err := os.CreateTemp(dir, snapPrefix+"*.tmp")
	if err != nil {
		return fmt.Errorf("store: creating snapshot temp: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := gob.NewEncoder(tmp).Encode(&wire); err != nil {
		tmp.Close()
		return fmt.Errorf("store: encoding snapshot: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: fsyncing snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: closing snapshot: %w", err)
	}
	if err := os.Rename(tmp.Name(), snapPath(dir, seq)); err != nil {
		return fmt.Errorf("store: publishing snapshot: %w", err)
	}
	return syncDir(dir)
}

// loadSnapshot decodes and validates one snapshot file.
func loadSnapshot(path string) (snapshotWire, *core.Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return snapshotWire{}, nil, err
	}
	defer f.Close()
	var wire snapshotWire
	if err := gob.NewDecoder(f).Decode(&wire); err != nil {
		return snapshotWire{}, nil, fmt.Errorf("store: decoding snapshot: %w", err)
	}
	if wire.Version != snapshotVersion {
		return snapshotWire{}, nil, fmt.Errorf("store: unsupported snapshot version %d", wire.Version)
	}
	var model *core.Model
	if len(wire.Model) > 0 {
		model, err = core.Load(bytes.NewReader(wire.Model))
		if err != nil {
			return snapshotWire{}, nil, fmt.Errorf("store: snapshot model: %w", err)
		}
	}
	return wire, model, nil
}

// newestSnapshot finds the newest loadable snapshot under dir, skipping
// any that fail validation (e.g. written by a newer version or damaged
// by the storage layer). ok is false when no usable snapshot exists.
func newestSnapshot(dir string) (wire snapshotWire, model *core.Model, ok bool, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return snapshotWire{}, nil, false, fmt.Errorf("store: listing snapshots: %w", err)
	}
	var seqs []uint64
	for _, e := range entries {
		if seq, isSnap := parseSeq(e.Name(), snapPrefix, snapSuffix); isSnap {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] > seqs[j] })
	for _, seq := range seqs {
		w, m, lerr := loadSnapshot(snapPath(dir, seq))
		if lerr != nil {
			continue
		}
		return w, m, true, nil
	}
	return snapshotWire{}, nil, false, nil
}

// removeObsolete deletes snapshots older than keepSnap and WAL segments
// with seq <= cutSeq. Removal failures are ignored: leftovers are
// harmless (recovery skips covered segments and older snapshots) and are
// retried at the next snapshot.
func removeObsolete(dir string, keepSnap, cutSeq uint64) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		if seq, ok := parseSeq(e.Name(), snapPrefix, snapSuffix); ok && seq < keepSnap {
			os.Remove(filepath.Join(dir, e.Name()))
		}
		if seq, ok := parseSeq(e.Name(), walPrefix, walSuffix); ok && seq <= cutSeq {
			os.Remove(filepath.Join(dir, e.Name()))
		}
	}
	syncDir(dir)
}

// syncDir fsyncs a directory so renames and removals within it are
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("store: opening dir for fsync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("store: fsyncing dir: %w", err)
	}
	return nil
}
