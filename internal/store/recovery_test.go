package store

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"hostprof/internal/obs"
	"hostprof/internal/trace"
)

// sortedVisits returns the store contents in canonical order for
// equality checks.
func sortedVisits(s *Store) []trace.Visit {
	vs := s.copyVisits()
	sort.Slice(vs, func(i, j int) bool {
		if vs[i].Time != vs[j].Time {
			return vs[i].Time < vs[j].Time
		}
		return vs[i].User < vs[j].User
	})
	return vs
}

// crash simulates SIGKILL: the store is abandoned with no Close, no
// flush, no snapshot. Because Append writes the WAL record before
// returning, every acknowledged visit is in the OS file and must survive
// a process kill (fsync only matters for power loss).
func crash(s *Store) {
	// Intentionally nothing.
}

func TestRecoveryFromWALOnly(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{Dir: dir, Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	var want []trace.Visit
	for i := 0; i < 100; i++ {
		v := visit(i%7, int64(i), fmt.Sprintf("host%d.example", i%13))
		want = append(want, v)
		if err := s.Append(v); err != nil {
			t.Fatal(err)
		}
	}
	pre := sortedVisits(s)
	crash(s)

	reg := obs.NewRegistry()
	s2 := mustOpen(t, Config{Dir: dir, Metrics: reg})
	if got := sortedVisits(s2); !reflect.DeepEqual(got, pre) {
		t.Fatalf("recovered %d visits != pre-crash %d", len(got), len(pre))
	}
	if got := s2.Recovery().ReplayedRecords; got != len(want) {
		t.Fatalf("ReplayedRecords = %d, want %d", got, len(want))
	}
	if got := s2.met.recoveryRecords.Value(); got != int64(len(want)) {
		t.Fatalf("hostprof_store_recovery_records_total = %d, want %d", got, len(want))
	}
}

// TestRecoveryTornTail is the kill-after-partial-write test: the final
// WAL segment is truncated mid-record and recovery must return every
// complete record, drop the torn one, and repair the segment so a second
// recovery sees a clean log.
func TestRecoveryTornTail(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{Dir: dir, Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	const n = 50
	for i := 0; i < n; i++ {
		if err := s.Append(visit(i, int64(i), "torn.example")); err != nil {
			t.Fatal(err)
		}
	}
	crash(s)

	// Tear the last record: chop 3 bytes off the only segment.
	segs, err := listSegments(dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("segments: %v %v", segs, err)
	}
	last := segs[len(segs)-1].path
	fi, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(last, fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, Config{Dir: dir})
	rec := s2.Recovery()
	if rec.ReplayedRecords != n-1 {
		t.Fatalf("ReplayedRecords = %d, want %d", rec.ReplayedRecords, n-1)
	}
	if !rec.TornTail {
		t.Fatal("TornTail not reported")
	}
	if got := s2.Len(); got != n-1 {
		t.Fatalf("Len = %d, want %d", got, n-1)
	}
	// The torn suffix must have been truncated away on disk.
	fi2, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if fi2.Size() >= fi.Size()-3 {
		t.Fatalf("torn tail not repaired: %d >= %d", fi2.Size(), fi.Size()-3)
	}
	// A third open (after the repairing one crashed too) replays cleanly
	// with no torn tail.
	crash(s2)
	s3 := mustOpen(t, Config{Dir: dir})
	if s3.Recovery().TornTail {
		t.Fatal("repaired segment still reports a torn tail")
	}
	if got := s3.Recovery().ReplayedRecords; got != n-1 {
		t.Fatalf("second recovery ReplayedRecords = %d, want %d", got, n-1)
	}
}

// TestRecoverySnapshotPlusWALTail: crash after a snapshot and further
// appends must restore snapshot + tail exactly.
func TestRecoverySnapshotPlusWALTail(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{Dir: dir, Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		s.Append(visit(i, int64(i), "pre.example"))
	}
	if err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	for i := 30; i < 45; i++ {
		s.Append(visit(i, int64(i), "post.example"))
	}
	pre := sortedVisits(s)
	crash(s)

	s2 := mustOpen(t, Config{Dir: dir})
	if got := sortedVisits(s2); !reflect.DeepEqual(got, pre) {
		t.Fatalf("recovered store diverges: %d vs %d visits", len(got), len(pre))
	}
	rec := s2.Recovery()
	if rec.SnapshotVisits != 30 || rec.ReplayedRecords != 15 {
		t.Fatalf("recovery stats = %+v, want 30 snapshot + 15 replayed", rec)
	}
}

// TestRecoverySkipsCoveredSegments: a crash between snapshot publish and
// segment cleanup leaves WAL segments the snapshot already covers; they
// must be skipped, never double-applied.
func TestRecoverySkipsCoveredSegments(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{Dir: dir, Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		s.Append(visit(i, int64(i), "dup.example"))
	}
	pre := sortedVisits(s)
	if err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	crash(s)

	// Resurrect a covered segment, as if cleanup never ran: write the
	// same 10 visits into a segment numbered below the snapshot cut.
	var buf []byte
	for i := 0; i < 10; i++ {
		buf, err = appendRecord(buf, visit(i, int64(i), "dup.example"))
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(walPath(dir, 1), buf, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, Config{Dir: dir})
	if got := sortedVisits(s2); !reflect.DeepEqual(got, pre) {
		t.Fatalf("covered segment double-applied: %d visits, want %d", len(got), len(pre))
	}
	if s2.Recovery().ReplayedRecords != 0 {
		t.Fatalf("ReplayedRecords = %d, want 0", s2.Recovery().ReplayedRecords)
	}
}

// TestRecoveryFallsBackToOlderSnapshot: an unreadable newest snapshot
// must not lose the store — recovery falls back to the previous one and
// the WAL segments after *its* cut.
func TestRecoveryFallsBackToOlderSnapshot(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{Dir: dir, Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		s.Append(visit(i, int64(i), "old.example"))
	}
	if err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	crash(s)
	// Forge a newer, corrupt snapshot.
	if err := os.WriteFile(snapPath(dir, 99), []byte("not a gob"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Keep a WAL segment alive after the good snapshot's cut.
	buf, _ := appendRecord(nil, visit(9, 9, "tail.example"))
	segs, _ := listSegments(dir)
	var next uint64 = 1
	if len(segs) > 0 {
		next = segs[len(segs)-1].seq + 1
	}
	if err := os.WriteFile(walPath(dir, next), buf, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, Config{Dir: dir})
	if got := s2.Len(); got != 6 {
		t.Fatalf("Len = %d, want 5 snapshot + 1 tail", got)
	}
}

func TestCorruptMiddleSegmentFailsOpen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{Dir: dir, Fsync: FsyncNever, SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		s.Append(visit(i, int64(i), "corrupt.example"))
	}
	crash(s)
	segs, err := listSegments(dir)
	if err != nil || len(segs) < 3 {
		t.Fatalf("want >=3 segments, got %d (%v)", len(segs), err)
	}
	// Flip a payload byte in a middle segment: real corruption, not a
	// crash artefact — refuse to open rather than silently drop data.
	mid := segs[1].path
	data, err := os.ReadFile(mid)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(mid, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Config{Dir: dir}); err == nil {
		t.Fatal("Open succeeded over corrupt middle segment")
	}
}

func TestOpenOnMissingDirCreatesIt(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nested", "data")
	s := mustOpen(t, Config{Dir: dir})
	if err := s.Append(visit(1, 1, "mk.example")); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(dir); err != nil {
		t.Fatal(err)
	}
}
