package benchfmt

import (
	"fmt"
	"io"
	"sort"
)

// DiffConfig controls what counts as a regression.
type DiffConfig struct {
	// Metric is the compared metric name. Empty selects "ns/op".
	Metric string
	// Tolerance is the allowed relative growth: a head value above
	// base*(1+Tolerance) is a regression. Zero selects 0.25; single-shot
	// CI benchmarks are noisy, so gates should be generous and catch
	// order-of-magnitude cliffs, not 5% drift.
	Tolerance float64
	// Floor skips comparisons whose base value is below this, in the
	// metric's unit — sub-microsecond benches jitter far beyond any
	// sane tolerance. Zero selects 1000 (1µs for ns/op); negative
	// compares everything.
	Floor float64
}

// A Delta is one benchmark compared across two runs.
type Delta struct {
	Key        string  `json:"key"`
	Base       float64 `json:"base"`
	Head       float64 `json:"head"`
	Ratio      float64 `json:"ratio"` // head/base; >1 is slower
	Regression bool    `json:"regression"`
	// Skipped marks comparisons under the noise floor.
	Skipped bool `json:"skipped,omitempty"`
}

// A DiffReport is the outcome of comparing two benchmark runs.
type DiffReport struct {
	Metric      string
	Tolerance   float64
	Deltas      []Delta  // sorted by key
	OnlyBase    []string // benchmarks that disappeared
	OnlyHead    []string // benchmarks that are new
	Regressions int
	// ProcsMismatches flags benchmarks whose base and head runs were
	// captured at different GOMAXPROCS. Keys embed the procs suffix, so
	// such pairs silently land in OnlyBase/OnlyHead and the gate would
	// pass without comparing anything — exactly the machine-changed
	// scenario an operator must see called out.
	ProcsMismatches []ProcsMismatch
}

// ProcsMismatch is one benchmark name present on both sides but
// captured at differing GOMAXPROCS, so no value comparison happened.
type ProcsMismatch struct {
	Name      string `json:"name"`
	BaseProcs []int  `json:"base_procs"`
	HeadProcs []int  `json:"head_procs"`
}

// Diff compares head against base benchmark results. Benchmarks
// present on only one side are reported but are never regressions:
// renames and new benches must not break the gate.
func Diff(base, head []Result, cfg DiffConfig) DiffReport {
	if cfg.Metric == "" {
		cfg.Metric = "ns/op"
	}
	if cfg.Tolerance == 0 {
		cfg.Tolerance = 0.25
	}
	if cfg.Floor == 0 {
		cfg.Floor = 1000
	}
	rep := DiffReport{Metric: cfg.Metric, Tolerance: cfg.Tolerance}
	baseBy := make(map[string]Result, len(base))
	for _, r := range base {
		baseBy[r.Key()] = r
	}
	headSeen := make(map[string]bool, len(head))
	for _, h := range head {
		key := h.Key()
		headSeen[key] = true
		b, ok := baseBy[key]
		if !ok {
			rep.OnlyHead = append(rep.OnlyHead, key)
			continue
		}
		bv, bok := b.Metrics[cfg.Metric]
		hv, hok := h.Metrics[cfg.Metric]
		if !bok || !hok {
			continue
		}
		d := Delta{Key: key, Base: bv, Head: hv}
		if bv > 0 {
			d.Ratio = hv / bv
		}
		if bv < cfg.Floor {
			d.Skipped = true
		} else if hv > bv*(1+cfg.Tolerance) {
			d.Regression = true
			rep.Regressions++
		}
		rep.Deltas = append(rep.Deltas, d)
	}
	for key := range baseBy {
		if !headSeen[key] {
			rep.OnlyBase = append(rep.OnlyBase, key)
		}
	}
	sort.Slice(rep.Deltas, func(i, j int) bool { return rep.Deltas[i].Key < rep.Deltas[j].Key })
	sort.Strings(rep.OnlyBase)
	sort.Strings(rep.OnlyHead)
	rep.ProcsMismatches = procsMismatches(base, head)
	return rep
}

// procsMismatches finds benchmark names that ran on both sides but at
// different GOMAXPROCS sets.
func procsMismatches(base, head []Result) []ProcsMismatch {
	byName := func(rs []Result) map[string]map[int]bool {
		m := make(map[string]map[int]bool)
		for _, r := range rs {
			if m[r.Name] == nil {
				m[r.Name] = make(map[int]bool)
			}
			m[r.Name][r.Procs] = true
		}
		return m
	}
	bn, hn := byName(base), byName(head)
	var out []ProcsMismatch
	for name, bp := range bn {
		hp, ok := hn[name]
		if !ok {
			continue
		}
		if procsEqual(bp, hp) {
			continue
		}
		out = append(out, ProcsMismatch{
			Name:      name,
			BaseProcs: sortedProcs(bp),
			HeadProcs: sortedProcs(hp),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func procsEqual(a, b map[int]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for p := range a {
		if !b[p] {
			return false
		}
	}
	return true
}

func sortedProcs(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for p := range m {
		out = append(out, p)
	}
	sort.Ints(out)
	return out
}

// Write renders the report as an aligned table, flagging regressions.
func (rep DiffReport) Write(w io.Writer) {
	width := 0
	for _, d := range rep.Deltas {
		if len(d.Key) > width {
			width = len(d.Key)
		}
	}
	fmt.Fprintf(w, "%-*s  %14s  %14s  %7s\n", width, "benchmark", "base "+rep.Metric, "head "+rep.Metric, "ratio")
	for _, d := range rep.Deltas {
		note := ""
		switch {
		case d.Skipped:
			note = "  (below noise floor)"
		case d.Regression:
			note = fmt.Sprintf("  REGRESSION (>%+.0f%%)", rep.Tolerance*100)
		}
		fmt.Fprintf(w, "%-*s  %14.1f  %14.1f  %6.2fx%s\n", width, d.Key, d.Base, d.Head, d.Ratio, note)
	}
	for _, key := range rep.OnlyBase {
		fmt.Fprintf(w, "%-*s  only in base\n", width, key)
	}
	for _, key := range rep.OnlyHead {
		fmt.Fprintf(w, "%-*s  only in head\n", width, key)
	}
	for _, m := range rep.ProcsMismatches {
		fmt.Fprintf(w, "WARNING: %s ran at GOMAXPROCS %v in base but %v in head — values were NOT compared; re-capture both runs on the same machine\n",
			m.Name, m.BaseProcs, m.HeadProcs)
	}
}
