package sniffer

import (
	"errors"
	"fmt"

	"hostprof/internal/obs"
	"hostprof/internal/trace"
)

// FlowKey identifies a unidirectional transport flow.
type FlowKey struct {
	Src, Dst         [16]byte
	SrcPort, DstPort uint16
	Proto            byte
}

// flowState buffers the beginning of a TCP client stream until an SNI has
// been extracted or the flow is declared uninteresting.
type flowState struct {
	asm      *streamAssembler
	done     bool
	lastSeen int64
}

// maxFlowBuffer bounds per-flow buffering: a ClientHello that has not
// completed within this many bytes never will.
const maxFlowBuffer = 16 * 1024

// ObserverConfig tunes the passive observer.
type ObserverConfig struct {
	// UserOf maps a client source address to a user ID; the default
	// uses the low bytes of the address, matching the synthesizer's
	// 10.(u>>8).(u&0xff).1 layout. Real observers key on MAC, IMSI or
	// subscriber line (paper Section 7.2).
	UserOf func(addr [16]byte) int
	// FlowTimeout evicts idle flows after this many seconds. Default 60.
	FlowTimeout int64
	// Ports considered TLS; default {443}.
	TLSPorts []uint16
	// Ports considered QUIC; default {443}.
	QUICPorts []uint16
	// Ports considered DNS; default {53}.
	DNSPorts []uint16
	// IPFallback, when true, emits a pseudo-hostname ("ip-a.b.c.d")
	// derived from the destination address for TLS flows whose
	// ClientHello carries no readable SNI (encrypted ClientHello).
	// Paper Section 7.2: "encrypted SNI ... do not hide the IP address
	// that may be used by the profiling algorithm".
	IPFallback bool
	// Metrics, when non-nil, is the registry the observer exports its
	// counters into under hostprof_sniffer_* names (see internal/obs).
	// Nil keeps the counters private to the observer; they remain
	// readable through Stats either way.
	Metrics *obs.Registry
}

func (c ObserverConfig) withDefaults() ObserverConfig {
	if c.UserOf == nil {
		c.UserOf = func(a [16]byte) int {
			return int(a[1])<<8 | int(a[2])
		}
	}
	if c.FlowTimeout <= 0 {
		c.FlowTimeout = 60
	}
	if len(c.TLSPorts) == 0 {
		c.TLSPorts = []uint16{443}
	}
	if len(c.QUICPorts) == 0 {
		c.QUICPorts = []uint16{443}
	}
	if len(c.DNSPorts) == 0 {
		c.DNSPorts = []uint16{53}
	}
	return c
}

// Observer is the passive network eavesdropper: packets in, hostname
// visits out. It understands TLS-over-TCP (SNI), QUIC v1 Initials and DNS
// queries — every channel that leaks the hostname despite encryption
// (paper Section 7.2).
type Observer struct {
	cfg   ObserverConfig
	flows map[FlowKey]*flowState
	pkt   Packet
	// ipToHost maps server addresses to hostnames learned from DNS
	// responses flowing past the observer; used to resolve SNI-less
	// (ECH) flows to real hostnames instead of raw IP tokens.
	ipToHost map[[16]byte]string

	met observerMetrics
}

// ObserverStats is a point-in-time snapshot of the observer's counters,
// as returned by Stats.
type ObserverStats struct {
	Packets           int64
	Undecodable       int64
	TLSVisits         int64
	QUICVisits        int64
	DNSVisits         int64
	IPFallbacks       int64
	ResolvedFallbacks int64
	DNSMappings       int64
	FlowsTracked      int64
	FlowsEvicted      int64
}

// observerMetrics holds the observer's registry handles, resolved once
// at construction so the per-packet path pays exactly one atomic add.
type observerMetrics struct {
	packets           *obs.Counter
	undecodable       *obs.Counter
	tlsVisits         *obs.Counter
	quicVisits        *obs.Counter
	dnsVisits         *obs.Counter
	ipFallbacks       *obs.Counter
	resolvedFallbacks *obs.Counter
	dnsMappings       *obs.Counter
	flowsTracked      *obs.Counter
	flowsEvicted      *obs.Counter
	flowsActive       *obs.Gauge
}

func newObserverMetrics(reg *obs.Registry) observerMetrics {
	visits := func(channel string) *obs.Counter {
		return reg.Counter("hostprof_sniffer_visits_total", obs.L("channel", channel))
	}
	reg.Describe("hostprof_sniffer_visits_total", "hostname visits extracted, by leak channel")
	reg.Describe("hostprof_sniffer_packets_total", "Ethernet frames offered to the observer")
	reg.Describe("hostprof_sniffer_flows_active", "TCP flows currently buffered awaiting an SNI")
	return observerMetrics{
		packets:           reg.Counter("hostprof_sniffer_packets_total"),
		undecodable:       reg.Counter("hostprof_sniffer_undecodable_total"),
		tlsVisits:         visits("tls"),
		quicVisits:        visits("quic"),
		dnsVisits:         visits("dns"),
		ipFallbacks:       visits("ip_fallback"),
		resolvedFallbacks: reg.Counter("hostprof_sniffer_resolved_fallbacks_total"),
		dnsMappings:       reg.Counter("hostprof_sniffer_dns_mappings_total"),
		flowsTracked:      reg.Counter("hostprof_sniffer_flows_opened_total"),
		flowsEvicted:      reg.Counter("hostprof_sniffer_flows_evicted_total"),
		flowsActive:       reg.Gauge("hostprof_sniffer_flows_active"),
	}
}

// NewObserver returns an observer with the given configuration.
func NewObserver(cfg ObserverConfig) *Observer {
	cfg = cfg.withDefaults()
	reg := cfg.Metrics
	if reg == nil {
		// A private registry keeps the counters atomic (and Stats safe)
		// without exporting anything.
		reg = obs.NewRegistry()
	}
	return &Observer{
		cfg:      cfg,
		flows:    make(map[FlowKey]*flowState),
		ipToHost: make(map[[16]byte]string),
		met:      newObserverMetrics(reg),
	}
}

// Stats snapshots the observer's counters. Unlike ProcessPacket — which
// must stay on a single goroutine — Stats is safe to call concurrently
// with packet processing: every counter is read atomically. The snapshot
// is per-counter consistent, not globally consistent (a visit counted
// mid-snapshot may show in one field and not another).
func (o *Observer) Stats() ObserverStats {
	return ObserverStats{
		Packets:           o.met.packets.Value(),
		Undecodable:       o.met.undecodable.Value(),
		TLSVisits:         o.met.tlsVisits.Value(),
		QUICVisits:        o.met.quicVisits.Value(),
		DNSVisits:         o.met.dnsVisits.Value(),
		IPFallbacks:       o.met.ipFallbacks.Value(),
		ResolvedFallbacks: o.met.resolvedFallbacks.Value(),
		DNSMappings:       o.met.dnsMappings.Value(),
		FlowsTracked:      o.met.flowsTracked.Value(),
		FlowsEvicted:      o.met.flowsEvicted.Value(),
	}
}

// portIn reports whether p is in ports.
func portIn(p uint16, ports []uint16) bool {
	for _, q := range ports {
		if p == q {
			return true
		}
	}
	return false
}

// ProcessPacket inspects one captured Ethernet frame taken at time ts
// (seconds). When the packet completes a hostname observation, the
// corresponding visit is returned with ok = true.
func (o *Observer) ProcessPacket(data []byte, ts int64) (v trace.Visit, ok bool) {
	o.met.packets.Inc()
	if err := DecodePacket(data, &o.pkt); err != nil {
		o.met.undecodable.Inc()
		return trace.Visit{}, false
	}
	p := &o.pkt
	switch p.Transport {
	case ProtoUDP:
		switch {
		case portIn(p.UDP.SrcPort, o.cfg.DNSPorts):
			// Resolver → client: learn address→hostname mappings from
			// A/AAAA answers for later ECH resolution.
			o.learnDNSResponse(p.Payload)
			return trace.Visit{}, false
		case portIn(p.UDP.DstPort, o.cfg.DNSPorts):
			host, err := ParseDNSQueryName(p.Payload)
			if err != nil {
				return trace.Visit{}, false
			}
			o.met.dnsVisits.Inc()
			return trace.Visit{User: o.cfg.UserOf(p.SrcAddr()), Time: ts, Host: host}, true
		case portIn(p.UDP.DstPort, o.cfg.QUICPorts):
			host, err := ParseQUICInitialSNI(p.Payload)
			if err != nil {
				return trace.Visit{}, false
			}
			o.met.quicVisits.Inc()
			return trace.Visit{User: o.cfg.UserOf(p.SrcAddr()), Time: ts, Host: host}, true
		}
	case ProtoTCP:
		if !portIn(p.TCP.DstPort, o.cfg.TLSPorts) {
			return trace.Visit{}, false // only client→server direction
		}
		return o.processTCP(ts)
	}
	return trace.Visit{}, false
}

// processTCP handles client→server TCP segments, buffering stream bytes
// until a ClientHello SNI parses.
func (o *Observer) processTCP(ts int64) (trace.Visit, bool) {
	p := &o.pkt
	key := FlowKey{
		Src: p.SrcAddr(), Dst: p.DstAddr(),
		SrcPort: p.TCP.SrcPort, DstPort: p.TCP.DstPort,
		Proto: ProtoTCP,
	}
	st := o.flows[key]
	if st == nil {
		st = &flowState{asm: newStreamAssembler()}
		o.flows[key] = st
		o.met.flowsTracked.Inc()
		o.maybeEvict(ts)
		o.met.flowsActive.Set(float64(len(o.flows)))
	}
	st.lastSeen = ts
	if st.done {
		return trace.Visit{}, false
	}
	if p.TCP.Flags&TCPFlagSYN != 0 {
		st.asm.SYN(p.TCP.Seq)
	}
	if len(p.Payload) == 0 {
		return trace.Visit{}, false
	}
	// Sequence-aware reassembly: reordered, duplicated or overlapping
	// segments are spliced back into the in-order stream prefix.
	if !st.asm.Add(p.TCP.Seq, p.Payload) {
		st.done = true
		st.asm.Release()
		return trace.Visit{}, false
	}
	host, err := ParseSNI(st.asm.Bytes())
	switch {
	case err == nil:
		st.done = true
		st.asm.Release()
		o.met.tlsVisits.Inc()
		return trace.Visit{User: o.cfg.UserOf(p.SrcAddr()), Time: ts, Host: host}, true
	case errors.Is(err, ErrNeedMore):
		return trace.Visit{}, false
	case errors.Is(err, ErrNoSNI):
		st.done = true
		st.asm.Release()
		if o.cfg.IPFallback {
			// ECH or SNI-less hello: fall back to the destination
			// address, or a hostname learned from DNS responses.
			o.met.ipFallbacks.Inc()
			return trace.Visit{User: o.cfg.UserOf(p.SrcAddr()), Time: ts, Host: o.hostForAddr(p.DstAddr())}, true
		}
		return trace.Visit{}, false
	default:
		// Not a ClientHello (or hopeless): stop buffering this flow.
		st.done = true
		st.asm.Release()
		return trace.Visit{}, false
	}
}

// hostForAddr resolves a destination address to a hostname learned from
// observed DNS responses, falling back to the raw IP token.
func (o *Observer) hostForAddr(addr [16]byte) string {
	if h, ok := o.ipToHost[addr]; ok {
		o.met.resolvedFallbacks.Inc()
		return h
	}
	return IPToken(addr)
}

// IPToken renders an address (in Packet encoding) as the pseudo-hostname
// used when no SNI is readable.
func IPToken(a [16]byte) string {
	if a[15] == 4 {
		return fmt.Sprintf("ip-%d.%d.%d.%d", a[0], a[1], a[2], a[3])
	}
	return fmt.Sprintf("ip6-%x", a)
}

// learnDNSResponse records the answer addresses of a DNS response.
func (o *Observer) learnDNSResponse(datagram []byte) {
	host, addrs, err := ParseDNSResponse(datagram)
	if err != nil {
		return
	}
	for _, a := range addrs {
		o.ipToHost[a] = host
		o.met.dnsMappings.Inc()
	}
}

// maybeEvict drops flows idle longer than the timeout; called on flow
// creation so the map stays bounded by concurrent-flow count.
func (o *Observer) maybeEvict(now int64) {
	if len(o.flows)%1024 != 0 {
		return
	}
	for k, st := range o.flows {
		if now-st.lastSeen > o.cfg.FlowTimeout {
			delete(o.flows, k)
			o.met.flowsEvicted.Inc()
		}
	}
}

// ActiveFlows returns the number of tracked flows (diagnostics).
func (o *Observer) ActiveFlows() int { return len(o.flows) }

// ObserveAll runs every (packet, timestamp) pair through the observer and
// collects the extracted visits into a trace.
func (o *Observer) ObserveAll(packets [][]byte, times []int64) *trace.Trace {
	tr := trace.New(nil)
	for i, pkt := range packets {
		var ts int64
		if i < len(times) {
			ts = times[i]
		}
		if v, ok := o.ProcessPacket(pkt, ts); ok {
			tr.Append(v)
		}
	}
	return tr
}
