package main

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"

	"hostprof/internal/pcap"
	"hostprof/internal/sniffer"
	"hostprof/internal/trace"
)

// cmdSniff reads a pcap capture and writes the extracted hostname trace.
func cmdSniff(args []string) error {
	fs := flag.NewFlagSet("sniff", flag.ExitOnError)
	in := fs.String("pcap", "", "input pcap file (required)")
	out := fs.String("out", "-", "output trace JSONL ('-' for stdout)")
	stats := fs.Bool("stats", true, "log observer statistics after extraction")
	logf := addLogFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := logf.setup(); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("-pcap is required")
	}

	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := pcap.NewReader(f)
	if err != nil {
		return err
	}

	obs := sniffer.NewObserver(sniffer.ObserverConfig{})
	tr := trace.New(nil)
	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		if v, ok := obs.ProcessPacket(rec.Data, int64(rec.TimeSec)); ok {
			tr.Append(v)
		}
	}

	var w io.Writer = os.Stdout
	if *out != "-" {
		of, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer of.Close()
		w = of
	}
	if err := tr.WriteJSONL(w); err != nil {
		return err
	}
	if *stats {
		st := obs.Stats()
		slog.Info("observer statistics",
			slog.Int64("packets", st.Packets),
			slog.Int64("tls", st.TLSVisits),
			slog.Int64("quic", st.QUICVisits),
			slog.Int64("dns", st.DNSVisits),
			slog.Int64("undecodable", st.Undecodable),
			slog.Int64("flows", st.FlowsTracked))
	}
	return nil
}
