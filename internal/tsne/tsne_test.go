package tsne

import (
	"errors"
	"math"
	"testing"

	"hostprof/internal/stats"
)

// gaussianClusters builds k well-separated clusters in dim dimensions.
func gaussianClusters(rng *stats.RNG, k, perCluster, dim int, sep float64) (points [][]float64, labels []int) {
	for c := 0; c < k; c++ {
		centre := make([]float64, dim)
		for d := range centre {
			centre[d] = sep * float64(c) * math.Pow(-1, float64(d%2+c%2))
		}
		centre[c%dim] += sep * float64(c+1)
		for i := 0; i < perCluster; i++ {
			p := make([]float64, dim)
			for d := range p {
				p[d] = centre[d] + 0.3*rng.NormFloat64()
			}
			points = append(points, p)
			labels = append(labels, c)
		}
	}
	return points, labels
}

func TestEmbedPreservesClusters(t *testing.T) {
	rng := stats.NewRNG(3)
	points, labels := gaussianClusters(rng, 3, 20, 10, 8)
	y, err := Embed(points, Config{Iterations: 250, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(y) != len(points) || len(y[0]) != 2 {
		t.Fatalf("output shape %dx%d", len(y), len(y[0]))
	}
	purity := NeighbourPurity(y, labels, 5)
	if purity < 0.8 {
		t.Fatalf("2-D purity = %.3f, want >= 0.8 for well-separated clusters", purity)
	}
}

func TestEmbedDeterministic(t *testing.T) {
	rng := stats.NewRNG(7)
	points, _ := gaussianClusters(rng, 2, 10, 5, 6)
	a, err := Embed(points, Config{Iterations: 60, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Embed(points, Config{Iterations: 60, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		for d := range a[i] {
			if a[i][d] != b[i][d] {
				t.Fatal("embedding not deterministic")
			}
		}
	}
}

func TestEmbedOutputCentred(t *testing.T) {
	rng := stats.NewRNG(11)
	points, _ := gaussianClusters(rng, 2, 12, 6, 5)
	y, err := Embed(points, Config{Iterations: 80, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	var mx, my float64
	for _, p := range y {
		mx += p[0]
		my += p[1]
	}
	mx /= float64(len(y))
	my /= float64(len(y))
	if math.Abs(mx) > 1e-6 || math.Abs(my) > 1e-6 {
		t.Fatalf("embedding not centred: (%v, %v)", mx, my)
	}
}

func TestEmbedNoNaNs(t *testing.T) {
	rng := stats.NewRNG(17)
	points, _ := gaussianClusters(rng, 4, 8, 4, 3)
	// Include duplicate points (zero distances) to stress numerics.
	points = append(points, append([]float64(nil), points[0]...))
	y, err := Embed(points, Config{Iterations: 120, Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range y {
		for _, v := range p {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("point %d is %v", i, p)
			}
		}
	}
}

func TestEmbedErrors(t *testing.T) {
	if _, err := Embed(nil, Config{}); !errors.Is(err, ErrTooFewPoints) {
		t.Fatalf("err = %v", err)
	}
	if _, err := Embed([][]float64{{1}, {2}, {3}}, Config{}); !errors.Is(err, ErrTooFewPoints) {
		t.Fatalf("err = %v", err)
	}
	bad := [][]float64{{1, 2}, {1}, {3, 4}, {5, 6}}
	if _, err := Embed(bad, Config{}); err == nil {
		t.Fatal("expected dim mismatch error")
	}
}

func TestEmbedCustomDims(t *testing.T) {
	rng := stats.NewRNG(23)
	points, _ := gaussianClusters(rng, 2, 8, 5, 4)
	y, err := Embed(points, Config{Iterations: 40, OutDims: 3, Seed: 25})
	if err != nil {
		t.Fatal(err)
	}
	if len(y[0]) != 3 {
		t.Fatalf("out dims = %d", len(y[0]))
	}
}

func TestCondProbabilitiesRowsSumToOne(t *testing.T) {
	rng := stats.NewRNG(29)
	points, _ := gaussianClusters(rng, 2, 10, 4, 5)
	d2 := squaredDistances(points)
	p := condProbabilities(d2, 5)
	for i, row := range p {
		var s float64
		for j, v := range row {
			if j == i && v != 0 {
				t.Fatal("self-probability non-zero")
			}
			if v < 0 {
				t.Fatal("negative probability")
			}
			s += v
		}
		if math.Abs(s-1) > 1e-6 {
			t.Fatalf("row %d sums to %v", i, s)
		}
	}
}

func TestNeighbourPurityPerfectAndRandom(t *testing.T) {
	// Two tight clusters: purity ~1. Interleaved labels: purity low.
	points := [][]float64{
		{0, 0}, {0.1, 0}, {0, 0.1},
		{10, 10}, {10.1, 10}, {10, 10.1},
	}
	labels := []int{0, 0, 0, 1, 1, 1}
	if p := NeighbourPurity(points, labels, 2); p != 1 {
		t.Fatalf("tight-cluster purity = %v", p)
	}
	mixed := []int{0, 1, 0, 1, 0, 1}
	if p := NeighbourPurity(points, mixed, 2); p >= 0.8 {
		t.Fatalf("mixed purity = %v, should be low", p)
	}
}

func TestNeighbourPurityExcludesUnlabelled(t *testing.T) {
	points := [][]float64{{0, 0}, {0.1, 0}, {0.05, 0.05}, {9, 9}}
	labels := []int{0, 0, -1, 0} // point 2 unlabelled
	p := NeighbourPurity(points, labels, 1)
	if p != 1 {
		t.Fatalf("purity = %v, unlabelled point should be excluded", p)
	}
}

func TestNeighbourPurityDegenerate(t *testing.T) {
	if NeighbourPurity(nil, nil, 3) != 0 {
		t.Fatal("empty input should give 0")
	}
	if NeighbourPurity([][]float64{{1}}, []int{0}, 3) != 0 {
		t.Fatal("single point should give 0")
	}
	if NeighbourPurity([][]float64{{1}, {2}}, []int{0, 0}, 0) != 0 {
		t.Fatal("k=0 should give 0")
	}
}

func TestDivergenceLowerForTrainedEmbedding(t *testing.T) {
	rng := stats.NewRNG(31)
	points, _ := gaussianClusters(rng, 3, 12, 8, 6)
	good, err := Embed(points, Config{Iterations: 200, Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	// Random layout of the same size.
	random := make([][]float64, len(points))
	for i := range random {
		random[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
	}
	klGood, err := Divergence(points, good, 0)
	if err != nil {
		t.Fatal(err)
	}
	klRand, err := Divergence(points, random, 0)
	if err != nil {
		t.Fatal(err)
	}
	if klGood >= klRand {
		t.Fatalf("trained KL %.3f >= random KL %.3f", klGood, klRand)
	}
	if klGood < 0 {
		t.Fatalf("negative KL %.3f", klGood)
	}
}

func TestDivergenceErrors(t *testing.T) {
	if _, err := Divergence(nil, nil, 30); err == nil {
		t.Fatal("expected error for empty input")
	}
	x := [][]float64{{1}, {2}, {3}, {4}}
	if _, err := Divergence(x, x[:3], 30); err == nil {
		t.Fatal("expected error for length mismatch")
	}
}
