GO ?= go

.PHONY: all build test vet race chaos bench bench-json bench-diff fuzz cover ci experiments experiments-small examples trace-demo clean

all: vet test build

build:
	$(GO) build ./...

vet:
	gofmt -l . && $(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Fault-injection and crash-recovery tests (see internal/fault) under
# the race detector: SIGKILL recovery, WAL degradation, retrain
# coordination, live cluster-resize migration under traffic.
chaos:
	$(GO) test -race -run 'Chaos|Degraded|Retrain|Shed|Panic|Fault' ./...

# The 470Kx128 ANN graph build alone runs ~15 min on one core, so the
# suite needs an explicit -timeout past go test's 10m default.
bench:
	$(GO) test -bench=. -benchmem -benchtime 1x -timeout 60m .

# Machine-readable benchmark trajectory for perf PRs.
# go test runs first, alone, so a bench failure or timeout fails the
# target instead of vanishing into the pipe.
bench-json:
	$(GO) test -bench=. -benchmem -benchtime 1x -timeout 60m -run '^$$' . > /tmp/bench-raw.txt
	$(GO) run ./cmd/benchjson < /tmp/bench-raw.txt > BENCH_results.json
	@echo wrote BENCH_results.json

# Perf-regression gate: rerun the benchmarks and diff against the
# committed baseline. Single-shot runs are noisy, so the tolerance is
# generous — this catches order-of-magnitude cliffs, not drift. CI runs
# the same (see the perf-gate job).
BENCH_TOLERANCE ?= 2.0
bench-diff:
	$(GO) test -bench=. -benchmem -benchtime 1x -timeout 60m -run '^$$' . > /tmp/bench-raw.txt
	$(GO) run ./cmd/benchjson < /tmp/bench-raw.txt > /tmp/bench-head.json
	$(GO) run ./cmd/hostprof bench-diff -tolerance $(BENCH_TOLERANCE) BENCH_results.json /tmp/bench-head.json

# Statement-coverage floor over the profiling core and the serving
# index (the equivalence harness is the main consumer). CI runs the
# same; raise COVER_FLOOR as the suites grow.
COVER_FLOOR ?= 85.0
cover:
	$(GO) test -coverprofile=coverage.out ./internal/core ./internal/index
	@total="$$($(GO) tool cover -func=coverage.out | awk '/^total:/ {sub(/%/, "", $$3); print $$3}')"; \
	echo "coverage: $$total% (floor $(COVER_FLOOR)%)"; \
	awk -v t="$$total" -v f="$(COVER_FLOOR)" 'BEGIN { exit (t+0 < f+0) ? 1 : 0 }' || \
		{ echo "coverage $$total% fell below $(COVER_FLOOR)%"; exit 1; }

# Short fuzz smoke over the WAL record decoder (CI runs the same).
fuzz:
	$(GO) test ./internal/store -run '^$$' -fuzz '^FuzzWALRecord$$' -fuzztime 10s
	$(GO) test ./internal/index -run '^$$' -fuzz '^FuzzANNBuild$$' -fuzztime 10s

# Mirrors .github/workflows/ci.yml.
ci:
	@fmt="$$(gofmt -l .)"; if [ -n "$$fmt" ]; then echo "gofmt needed: $$fmt"; exit 1; fi
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test ./...
	$(GO) test -race ./...
	$(GO) test ./internal/store -run '^$$' -fuzz '^FuzzWALRecord$$' -fuzztime 10s
	$(GO) test ./internal/index -run '^$$' -fuzz '^FuzzANNBuild$$' -fuzztime 10s

# End-to-end distributed-tracing demo: serve a small synthetic world,
# post one traced report (triggering a retrain), and print the merged
# client+server trace captured at /debug/traces.
trace-demo:
	$(GO) build -o /tmp/hostprof-demo ./cmd/hostprof
	/tmp/hostprof-demo gen -out /tmp/trace-demo-world -sites 120 -users 10 -days 2 -pcap=false
	/tmp/hostprof-demo serve -addr 127.0.0.1:8423 -ontology /tmp/trace-demo-world/ontology.jsonl \
		-trace-sample 1 -slow-request 1ms & echo $$! > /tmp/trace-demo.pid; \
	sleep 1; \
	/tmp/hostprof-demo report -addr http://127.0.0.1:8423 -trace /tmp/trace-demo-world/trace.jsonl \
		-user 3 -seed -retrain -print-trace; status=$$?; \
	echo "--- /debug/traces (server view) ---"; \
	curl -s http://127.0.0.1:8423/debug/traces | head -c 2000; echo; \
	kill $$(cat /tmp/trace-demo.pid); rm -f /tmp/trace-demo.pid; exit $$status

experiments:
	$(GO) run ./cmd/experiments -verbose -data-dir data

experiments-small:
	$(GO) run ./cmd/experiments -small -verbose

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/isp_observer
	$(GO) run ./examples/ad_campaign
	$(GO) run ./examples/streaming_detection
	$(GO) run ./examples/countermeasures

clean:
	$(GO) clean ./...
