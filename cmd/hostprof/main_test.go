package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestCLIPipelineEndToEnd drives every subcommand over a temp dir:
// gen → sniff → train → profile → similar → export.
func TestCLIPipelineEndToEnd(t *testing.T) {
	dir := t.TempDir()

	if err := cmdGen([]string{
		"-out", dir, "-sites", "80", "-users", "8", "-days", "2", "-seed", "5",
	}); err != nil {
		t.Fatalf("gen: %v", err)
	}
	for _, f := range []string{"trace.jsonl", "ontology.jsonl", "blocklist.hosts", "capture.pcap"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Fatalf("gen did not write %s: %v", f, err)
		}
	}

	sniffed := filepath.Join(dir, "sniffed.jsonl")
	if err := cmdSniff([]string{
		"-pcap", filepath.Join(dir, "capture.pcap"), "-out", sniffed, "-stats=false",
	}); err != nil {
		t.Fatalf("sniff: %v", err)
	}
	// The observer's reconstruction must match the generated trace.
	orig, err := os.ReadFile(filepath.Join(dir, "trace.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(sniffed)
	if err != nil {
		t.Fatal(err)
	}
	if string(orig) != string(got) {
		t.Fatalf("sniffed trace differs from ground truth (%d vs %d bytes)", len(got), len(orig))
	}

	model := filepath.Join(dir, "model.bin")
	if err := cmdTrain([]string{
		"-trace", sniffed, "-blocklist", filepath.Join(dir, "blocklist.hosts"),
		"-model", model, "-dim", "12", "-epochs", "2", "-mincount", "2",
		"-sample", "-1", "-workers", "1", "-seed", "3",
	}); err != nil {
		t.Fatalf("train: %v", err)
	}
	if _, err := os.Stat(model); err != nil {
		t.Fatalf("train wrote no model: %v", err)
	}

	if err := cmdProfile([]string{
		"-model", model, "-ontology", filepath.Join(dir, "ontology.jsonl"),
		"-trace", sniffed, "-user", "1", "-n", "20", "-top", "3",
	}); err != nil {
		t.Fatalf("profile: %v", err)
	}

	// similar needs an in-vocabulary host: pull one from the ontology.
	ontBytes, err := os.ReadFile(filepath.Join(dir, "ontology.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	line := strings.SplitN(string(ontBytes), "\n", 2)[0]
	host := strings.SplitN(strings.SplitN(line, `"host":"`, 2)[1], `"`, 2)[0]
	if err := cmdSimilar([]string{"-model", model, "-host", host, "-k", "3"}); err != nil {
		// The labelled host may have been pruned by mincount; that is
		// an acceptable CLI error, not a crash.
		if !strings.Contains(err.Error(), "not in vocabulary") {
			t.Fatalf("similar: %v", err)
		}
	}

	vecs := filepath.Join(dir, "vectors.txt")
	if err := cmdExport([]string{"-model", model, "-out", vecs}); err != nil {
		t.Fatalf("export: %v", err)
	}
	data, err := os.ReadFile(vecs)
	if err != nil || len(data) == 0 {
		t.Fatalf("export produced nothing: %v", err)
	}
}

func TestCLIMissingFlags(t *testing.T) {
	if err := cmdSniff(nil); err == nil {
		t.Fatal("sniff without -pcap should fail")
	}
	if err := cmdTrain(nil); err == nil {
		t.Fatal("train without -trace should fail")
	}
	if err := cmdProfile(nil); err == nil {
		t.Fatal("profile without flags should fail")
	}
	if err := cmdSimilar(nil); err == nil {
		t.Fatal("similar without flags should fail")
	}
	if err := cmdExport(nil); err == nil {
		t.Fatal("export without -model should fail")
	}
}

func TestParseChannel(t *testing.T) {
	for _, s := range []string{"tls", "quic", "dns", "mixed"} {
		if _, err := parseChannel(s); err != nil {
			t.Errorf("parseChannel(%q): %v", s, err)
		}
	}
	if _, err := parseChannel("bogus"); err == nil {
		t.Fatal("bogus channel accepted")
	}
}
