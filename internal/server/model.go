package server

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"

	"hostprof/internal/core"
	"hostprof/internal/store"
)

// Model distribution: a trained model is exported as a versioned
// artifact (GET /v1/model) and installed from one (PUT /v1/model), so a
// cluster can train on a designated node and ship the result to every
// shard. The version is a content address (see store.ModelArtifact), so
// "same version" means "byte-identical model" with no coordination.

// ModelVersionHeader carries the artifact's content version on /v1/model
// exchanges and on /readyz, so peers negotiate transfers by version
// instead of shipping megabytes to find out nothing changed.
const ModelVersionHeader = "X-Hostprof-Model-Version"

// maxModelBytes bounds a PUT /v1/model body. Artifacts scale with
// vocab×dim×16 bytes; 1 GiB covers the paper's 470K-host universe at
// dim 128 with an order of magnitude to spare.
const maxModelBytes = 1 << 30

// ModelVersion returns the content version of the currently served
// model, or "" before the first train/import.
func (b *Backend) ModelVersion() string { return b.store.ModelVersion() }

// ModelArtifact exports the current model as a transferable artifact.
// ok is false before the first train/import.
func (b *Backend) ModelArtifact() (store.ModelArtifact, bool, error) {
	return b.store.ModelArtifact()
}

// ImportModel installs a serialized model received from a peer: the
// bytes are validated by loading them, a fresh profiler (and empty
// profile cache) is swapped in exactly as a local retrain would, and the
// store snapshots so a crash recovers the imported generation. Returns
// the installed artifact version.
func (b *Backend) ImportModel(data []byte) (string, error) {
	model, err := core.Load(bytes.NewReader(data))
	if err != nil {
		return "", fmt.Errorf("server: importing model: %w", err)
	}
	prof := core.NewProfiler(model, b.cfg.Ontology, b.cfg.Profile)
	pc := newProfileCache(b.cfg.ProfileCache, b.reg)
	b.mu.Lock()
	b.profiler = prof
	b.pcache = pc
	b.mu.Unlock()
	b.store.InstallModel(model, data)
	version := b.store.ModelVersion()
	b.met.modelImports.Inc()
	// Snapshot failures must not undo a successful import; they are
	// visible in hostprof_store_snapshot_errors_total.
	b.store.Snapshot()
	b.log.LogAttrs(context.Background(), slog.LevelInfo, "model imported",
		slog.String("version", version),
		slog.Int("vocab", model.Vocab().Len()),
		slog.Int("bytes", len(data)))
	return version, nil
}

// etagOf renders a version as a strong ETag, the If-None-Match spelling
// of /v1/model's version negotiation.
func etagOf(version string) string { return `"` + version + `"` }

// matchesETag reports whether an If-None-Match header value matches the
// current version ("*" matches any extant model, per RFC 9110).
func matchesETag(header, version string) bool {
	if header == "" || version == "" {
		return false
	}
	for _, part := range strings.Split(header, ",") {
		part = strings.TrimSpace(part)
		part = strings.TrimPrefix(part, "W/")
		if part == "*" || part == etagOf(version) || strings.Trim(part, `"`) == version {
			return true
		}
	}
	return false
}

// handleModelGet serves the current model artifact. Version negotiation:
// a client that already holds a version sends it as If-None-Match and
// gets 304 with the version header instead of the bytes. 404 before the
// first train/import.
func (b *Backend) handleModelGet(w http.ResponseWriter, r *http.Request) {
	art, ok, err := b.store.ModelArtifact()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	if !ok {
		writeError(w, http.StatusNotFound, "no model trained yet")
		return
	}
	w.Header().Set(ModelVersionHeader, art.Version)
	w.Header().Set("ETag", etagOf(art.Version))
	if matchesETag(r.Header.Get("If-None-Match"), art.Version) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", fmt.Sprint(len(art.Data)))
	if r.Method == http.MethodHead {
		return
	}
	w.Write(art.Data)
}

// handleModelPut installs a pushed model artifact. A push carrying the
// version the node already serves is acknowledged without reloading
// (204, version header) — idempotent distribution. A push whose
// X-Hostprof-Model-Version disagrees with the body's content hash is
// rejected: the artifact was corrupted in flight.
func (b *Backend) handleModelPut(w http.ResponseWriter, r *http.Request) {
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxModelBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("model exceeds %d bytes", tooBig.Limit))
			return
		}
		writeError(w, http.StatusBadRequest, fmt.Sprintf("reading model: %v", err))
		return
	}
	if len(data) == 0 {
		writeError(w, http.StatusBadRequest, "empty model body")
		return
	}
	version := store.ArtifactVersion(data)
	if want := r.Header.Get(ModelVersionHeader); want != "" && want != version {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("model version mismatch: header %s, body hashes to %s", want, version))
		return
	}
	if b.ModelVersion() == version {
		w.Header().Set(ModelVersionHeader, version)
		w.WriteHeader(http.StatusNoContent)
		return
	}
	installed, err := b.ImportModel(data)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	w.Header().Set(ModelVersionHeader, installed)
	w.WriteHeader(http.StatusNoContent)
}

// Readiness is the /readyz body: everything a gateway or load balancer
// needs to decide whether (and how) to route to this shard.
type Readiness struct {
	// Ready is the overall verdict: trained and fully durable.
	Ready bool `json:"ready"`
	// Trained reports whether a model is being served.
	Trained bool `json:"trained"`
	// StoreDegraded reports WAL-detached memory-only operation: the
	// shard still serves, but acknowledged reports are not durable.
	StoreDegraded bool `json:"store_degraded"`
	// ModelVersion is the served model's content version ("" untrained).
	ModelVersion string `json:"model_version"`
	// Visits is the store size, a cheap freshness signal.
	Visits int `json:"visits"`
}

// Readiness snapshots the backend's readiness state.
func (b *Backend) Readiness() Readiness {
	trained := b.Ready()
	degraded := b.store.Degraded()
	return Readiness{
		Ready:         trained && !degraded,
		Trained:       trained,
		StoreDegraded: degraded,
		ModelVersion:  b.ModelVersion(),
		Visits:        b.store.Len(),
	}
}
