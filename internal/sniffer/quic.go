package sniffer

import (
	"crypto/aes"
	"crypto/cipher"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"hostprof/internal/stats"
)

// QUIC v1 constants (RFC 9000 / RFC 9001).
var quicV1InitialSalt = []byte{
	0x38, 0x76, 0x2c, 0xf7, 0xf5, 0x59, 0x34, 0xb3,
	0x4d, 0x17, 0x9a, 0xe6, 0xa4, 0xc8, 0x0c, 0xad,
	0xcc, 0xbb, 0x7f, 0x0a,
}

const (
	quicVersion1      = 0x00000001
	quicMinInitialUDP = 1200
	frameTypePadding  = 0x00
	frameTypePing     = 0x01
	frameTypeCrypto   = 0x06
)

// QUIC errors.
var (
	// ErrNotQUICInitial marks a datagram that is not a QUIC v1 client
	// Initial packet.
	ErrNotQUICInitial = errors.New("sniffer: not a QUIC v1 Initial packet")
	// ErrQUICDecrypt marks an Initial whose payload failed AEAD
	// verification.
	ErrQUICDecrypt = errors.New("sniffer: QUIC Initial decryption failed")
)

// appendVarint encodes v as a QUIC variable-length integer (RFC 9000 §16).
func appendVarint(buf []byte, v uint64) []byte {
	switch {
	case v < 1<<6:
		return append(buf, byte(v))
	case v < 1<<14:
		return append(buf, byte(v>>8)|0x40, byte(v))
	case v < 1<<30:
		return append(buf, byte(v>>24)|0x80, byte(v>>16), byte(v>>8), byte(v))
	default:
		return append(buf,
			byte(v>>56)|0xc0, byte(v>>48), byte(v>>40), byte(v>>32),
			byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
	}
}

// readVarint decodes a QUIC varint, returning the value and bytes used.
func readVarint(b []byte) (uint64, int, error) {
	if len(b) == 0 {
		return 0, 0, ErrTruncated
	}
	n := 1 << (b[0] >> 6)
	if len(b) < n {
		return 0, 0, ErrTruncated
	}
	v := uint64(b[0] & 0x3f)
	for i := 1; i < n; i++ {
		v = v<<8 | uint64(b[i])
	}
	return v, n, nil
}

// initialKeys holds the derived client Initial protection material.
type initialKeys struct {
	key, iv, hp []byte
}

// deriveClientInitialKeys derives the client-side Initial keys from the
// Destination Connection ID, per RFC 9001 Section 5.2.
func deriveClientInitialKeys(dcid []byte) initialKeys {
	initial := hkdfExtract(quicV1InitialSalt, dcid)
	client := hkdfExpandLabel(initial, "client in", nil, 32)
	return initialKeys{
		key: hkdfExpandLabel(client, "quic key", nil, 16),
		iv:  hkdfExpandLabel(client, "quic iv", nil, 12),
		hp:  hkdfExpandLabel(client, "quic hp", nil, 16),
	}
}

// aeadSeal encrypts plaintext with AES-128-GCM using nonce = iv XOR pn.
func (k initialKeys) aeadSeal(pn uint64, header, plaintext []byte) ([]byte, error) {
	block, err := aes.NewCipher(k.key)
	if err != nil {
		return nil, err
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, err
	}
	nonce := k.nonce(pn)
	return aead.Seal(nil, nonce, plaintext, header), nil
}

// aeadOpen decrypts ciphertext produced by aeadSeal.
func (k initialKeys) aeadOpen(pn uint64, header, ciphertext []byte) ([]byte, error) {
	block, err := aes.NewCipher(k.key)
	if err != nil {
		return nil, err
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, err
	}
	pt, err := aead.Open(nil, k.nonce(pn), ciphertext, header)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrQUICDecrypt, err)
	}
	return pt, nil
}

func (k initialKeys) nonce(pn uint64) []byte {
	nonce := append([]byte(nil), k.iv...)
	var pnb [8]byte
	binary.BigEndian.PutUint64(pnb[:], pn)
	for i := 0; i < 8; i++ {
		nonce[len(nonce)-8+i] ^= pnb[i]
	}
	return nonce
}

// hpMask computes the 5-byte header-protection mask from a 16-byte
// ciphertext sample (RFC 9001 Section 5.4.3, AES-based).
func (k initialKeys) hpMask(sample []byte) ([5]byte, error) {
	var mask [5]byte
	block, err := aes.NewCipher(k.hp)
	if err != nil {
		return mask, err
	}
	var out [16]byte
	block.Encrypt(out[:], sample[:16])
	copy(mask[:], out[:5])
	return mask, nil
}

// BuildQUICInitial renders a protected QUIC v1 client Initial datagram
// whose CRYPTO frames carry the TLS ClientHello for sni. The datagram is
// padded to the 1200-byte minimum. rng supplies connection IDs and the
// client random.
func BuildQUICInitial(sni string, rng *stats.RNG) ([]byte, error) {
	// Connection IDs.
	dcid := make([]byte, 8)
	scid := make([]byte, 8)
	binary.BigEndian.PutUint64(dcid, rng.Uint64())
	binary.BigEndian.PutUint64(scid, rng.Uint64())

	// ClientHello as a raw handshake message (QUIC carries no TLS
	// record layer): strip the 5-byte record header.
	rec := BuildClientHello(sni, rng)
	hello := rec[5:]

	// CRYPTO frame.
	payload := make([]byte, 0, quicMinInitialUDP)
	payload = append(payload, frameTypeCrypto)
	payload = appendVarint(payload, 0)
	payload = appendVarint(payload, uint64(len(hello)))
	payload = append(payload, hello...)

	const pnLen = 2
	pn := uint64(rng.Intn(1 << 15))

	// Compute header size to pad the plaintext so the final datagram
	// reaches the UDP minimum.
	headerLen := func(plainLen int) int {
		h := 1 + 4 + 1 + len(dcid) + 1 + len(scid) + 1 // first, version, cids, token len
		lenField := len(appendVarint(nil, uint64(pnLen+plainLen+16)))
		return h + lenField + pnLen
	}
	for headerLen(len(payload))+len(payload)+16 < quicMinInitialUDP {
		payload = append(payload, frameTypePadding)
	}

	// Unprotected header.
	hdr := make([]byte, 0, 64)
	first := byte(0xc0 | (pnLen - 1)) // long header, Initial, pn length bits
	hdr = append(hdr, first)
	hdr = binary.BigEndian.AppendUint32(hdr, quicVersion1)
	hdr = append(hdr, byte(len(dcid)))
	hdr = append(hdr, dcid...)
	hdr = append(hdr, byte(len(scid)))
	hdr = append(hdr, scid...)
	hdr = appendVarint(hdr, 0) // token length
	hdr = appendVarint(hdr, uint64(pnLen+len(payload)+16))
	pnOffset := len(hdr)
	hdr = binary.BigEndian.AppendUint16(hdr, uint16(pn))

	keys := deriveClientInitialKeys(dcid)
	ct, err := keys.aeadSeal(pn, hdr, payload)
	if err != nil {
		return nil, fmt.Errorf("sniffer: sealing Initial: %w", err)
	}
	pkt := append(hdr, ct...)

	// Header protection.
	sample := pkt[pnOffset+4 : pnOffset+20]
	mask, err := keys.hpMask(sample)
	if err != nil {
		return nil, err
	}
	pkt[0] ^= mask[0] & 0x0f
	for i := 0; i < pnLen; i++ {
		pkt[pnOffset+i] ^= mask[1+i]
	}
	return pkt, nil
}

// ParseQUICInitialSNI recovers the SNI from a protected QUIC v1 client
// Initial datagram: it derives the Initial keys from the DCID, removes
// header protection, decrypts the payload, reassembles the CRYPTO stream
// and parses the ClientHello — exactly what an on-path observer does.
func ParseQUICInitialSNI(datagram []byte) (string, error) {
	if len(datagram) < 7 {
		return "", fmt.Errorf("%w: short datagram", ErrNotQUICInitial)
	}
	first := datagram[0]
	if first&0x80 == 0 {
		return "", fmt.Errorf("%w: short header", ErrNotQUICInitial)
	}
	if v := binary.BigEndian.Uint32(datagram[1:5]); v != quicVersion1 {
		return "", fmt.Errorf("%w: version %#08x", ErrNotQUICInitial, v)
	}
	if (first>>4)&0x03 != 0 { // long packet type must be Initial (00)
		return "", fmt.Errorf("%w: long header type %d", ErrNotQUICInitial, (first>>4)&0x03)
	}
	off := 5
	if off >= len(datagram) {
		return "", fmt.Errorf("%w: dcid", ErrTruncated)
	}
	dcidLen := int(datagram[off])
	off++
	if off+dcidLen > len(datagram) {
		return "", fmt.Errorf("%w: dcid", ErrTruncated)
	}
	dcid := datagram[off : off+dcidLen]
	off += dcidLen
	if off >= len(datagram) {
		return "", fmt.Errorf("%w: scid", ErrTruncated)
	}
	scidLen := int(datagram[off])
	off++
	if off+scidLen > len(datagram) {
		return "", fmt.Errorf("%w: scid", ErrTruncated)
	}
	off += scidLen
	tokenLen, n, err := readVarint(datagram[off:])
	if err != nil {
		return "", err
	}
	off += n + int(tokenLen)
	if off > len(datagram) {
		return "", fmt.Errorf("%w: token", ErrTruncated)
	}
	length, n, err := readVarint(datagram[off:])
	if err != nil {
		return "", err
	}
	off += n
	pnOffset := off
	if pnOffset+20 > len(datagram) {
		return "", fmt.Errorf("%w: too short for header protection sample", ErrTruncated)
	}

	keys := deriveClientInitialKeys(dcid)
	sample := datagram[pnOffset+4 : pnOffset+20]
	mask, err := keys.hpMask(sample)
	if err != nil {
		return "", err
	}
	// Work on a copy: the observer must not mutate captured bytes.
	pkt := append([]byte(nil), datagram...)
	pkt[0] ^= mask[0] & 0x0f
	pnLen := int(pkt[0]&0x03) + 1
	var pn uint64
	for i := 0; i < pnLen; i++ {
		pkt[pnOffset+i] ^= mask[1+i]
		pn = pn<<8 | uint64(pkt[pnOffset+i])
	}
	payloadStart := pnOffset + pnLen
	payloadEnd := pnOffset + int(length)
	if payloadEnd > len(pkt) || payloadStart >= payloadEnd {
		return "", fmt.Errorf("%w: length field", ErrTruncated)
	}
	header := pkt[:payloadStart]
	plaintext, err := keys.aeadOpen(pn, header, pkt[payloadStart:payloadEnd])
	if err != nil {
		return "", err
	}

	crypto, err := reassembleCrypto(plaintext)
	if err != nil {
		return "", err
	}
	return parseClientHelloSNI(crypto)
}

// cryptoChunk is one CRYPTO frame's data at its stream offset.
type cryptoChunk struct {
	off  uint64
	data []byte
}

// reassembleCrypto walks the frames of a decrypted Initial payload and
// concatenates the CRYPTO stream.
func reassembleCrypto(payload []byte) ([]byte, error) {
	var chunks []cryptoChunk
	for len(payload) > 0 {
		switch payload[0] {
		case frameTypePadding, frameTypePing:
			payload = payload[1:]
		case frameTypeCrypto:
			payload = payload[1:]
			off, n, err := readVarint(payload)
			if err != nil {
				return nil, err
			}
			payload = payload[n:]
			l, n, err := readVarint(payload)
			if err != nil {
				return nil, err
			}
			payload = payload[n:]
			if uint64(len(payload)) < l {
				return nil, fmt.Errorf("%w: crypto frame", ErrTruncated)
			}
			chunks = append(chunks, cryptoChunk{off: off, data: payload[:l]})
			payload = payload[l:]
		default:
			// Unknown frame type in an Initial we synthesized —
			// treat as corrupt rather than guessing lengths.
			return nil, fmt.Errorf("%w: frame type %#02x", ErrNotQUICInitial, payload[0])
		}
	}
	if len(chunks) == 0 {
		return nil, fmt.Errorf("%w: no CRYPTO frames", ErrNotQUICInitial)
	}
	sort.Slice(chunks, func(i, j int) bool { return chunks[i].off < chunks[j].off })
	var out []byte
	for _, c := range chunks {
		if uint64(len(out)) != c.off {
			return nil, fmt.Errorf("%w: CRYPTO stream gap at %d", ErrTruncated, c.off)
		}
		out = append(out, c.data...)
	}
	return out, nil
}
