package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDot(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Fatalf("Dot = %v", got)
	}
}

func TestNorm(t *testing.T) {
	if got := Norm([]float64{3, 4}); got != 5 {
		t.Fatalf("Norm = %v", got)
	}
}

func TestCosine(t *testing.T) {
	if got := Cosine([]float64{1, 0}, []float64{0, 1}); got != 0 {
		t.Fatalf("orthogonal cosine = %v", got)
	}
	if got := Cosine([]float64{1, 2}, []float64{2, 4}); !almostEq(got, 1, 1e-12) {
		t.Fatalf("parallel cosine = %v", got)
	}
	if got := Cosine([]float64{1, 1}, []float64{-1, -1}); !almostEq(got, -1, 1e-12) {
		t.Fatalf("antiparallel cosine = %v", got)
	}
	if got := Cosine([]float64{0, 0}, []float64{1, 1}); got != 0 {
		t.Fatalf("zero-vector cosine = %v", got)
	}
}

func TestEuclidean(t *testing.T) {
	if got := Euclidean([]float64{0, 0}, []float64{3, 4}); got != 5 {
		t.Fatalf("Euclidean = %v", got)
	}
}

func TestAXPYAndScale(t *testing.T) {
	y := []float64{1, 1}
	AXPY(2, []float64{3, 4}, y)
	if y[0] != 7 || y[1] != 9 {
		t.Fatalf("AXPY result %v", y)
	}
	Scale(0.5, y)
	if y[0] != 3.5 || y[1] != 4.5 {
		t.Fatalf("Scale result %v", y)
	}
}

func TestNormalize(t *testing.T) {
	x := []float64{3, 4}
	n := Normalize(x)
	if n != 5 {
		t.Fatalf("returned norm %v", n)
	}
	if !almostEq(Norm(x), 1, 1e-12) {
		t.Fatalf("normalized norm %v", Norm(x))
	}
	z := []float64{0, 0}
	if Normalize(z) != 0 {
		t.Fatal("zero vector should return 0")
	}
}

func TestSigmoid(t *testing.T) {
	if got := Sigmoid(0); got != 0.5 {
		t.Fatalf("Sigmoid(0) = %v", got)
	}
	if got := Sigmoid(100); !almostEq(got, 1, 1e-9) {
		t.Fatalf("Sigmoid(100) = %v", got)
	}
	if got := Sigmoid(-100); !almostEq(got, 0, 1e-9) {
		t.Fatalf("Sigmoid(-100) = %v", got)
	}
	// Stability: no NaN at extremes.
	for _, x := range []float64{-745, 745, -1e6, 1e6} {
		if math.IsNaN(Sigmoid(x)) {
			t.Fatalf("Sigmoid(%v) is NaN", x)
		}
	}
}

func TestSigmoidSymmetryQuick(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		x = math.Mod(x, 50)
		return almostEq(Sigmoid(x)+Sigmoid(-x), 1, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestArgMax(t *testing.T) {
	if got := ArgMax([]float64{1, 5, 3}); got != 1 {
		t.Fatalf("ArgMax = %d", got)
	}
	if got := ArgMax(nil); got != -1 {
		t.Fatalf("ArgMax(nil) = %d", got)
	}
	if got := ArgMax([]float64{2, 2}); got != 0 {
		t.Fatalf("tie ArgMax = %d", got)
	}
}

func TestSumPositive(t *testing.T) {
	if SumPositive(-3) != 0 || SumPositive(3) != 3 || SumPositive(0) != 0 {
		t.Fatal("SumPositive wrong")
	}
}

// Property: Cauchy-Schwarz |cos| <= 1 for arbitrary vectors.
func TestCosineBoundedQuick(t *testing.T) {
	f := func(a, b [8]int8) bool {
		x := make([]float64, 8)
		y := make([]float64, 8)
		for i := 0; i < 8; i++ {
			x[i] = float64(a[i])
			y[i] = float64(b[i])
		}
		c := Cosine(x, y)
		return c <= 1+1e-9 && c >= -1-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Euclidean distance satisfies the triangle inequality.
func TestTriangleInequalityQuick(t *testing.T) {
	f := func(a, b, c [4]int8) bool {
		x := make([]float64, 4)
		y := make([]float64, 4)
		z := make([]float64, 4)
		for i := 0; i < 4; i++ {
			x[i], y[i], z[i] = float64(a[i]), float64(b[i]), float64(c[i])
		}
		return Euclidean(x, z) <= Euclidean(x, y)+Euclidean(y, z)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
