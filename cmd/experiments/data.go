package main

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"hostprof/internal/experiment"
	"hostprof/internal/stats"
)

// writeDataDir dumps every figure's raw series as CSV so the plots can be
// regenerated with any tooling.
func writeDataDir(s *experiment.Setup, all *experiment.AllResults, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	writers := []struct {
		name  string
		write func(w *csv.Writer) error
	}{
		{"fig2_ccdf.csv", func(w *csv.Writer) error { return writeDiversityCCDF(w, all.Fig2) }},
		{"fig3_ccdf.csv", func(w *csv.Writer) error { return writeDiversityCCDF(w, all.Fig3) }},
		{"fig4_points.csv", func(w *csv.Writer) error { return writeFig4Points(w, s, all.Fig4) }},
		{"fig5_purity.csv", func(w *csv.Writer) error { return writeFig5Purity(w, all.Fig5) }},
		{"fig6_topics.csv", func(w *csv.Writer) error { return writeFig6Topics(w, s, all.Campaign) }},
		{"ctr_per_user.csv", func(w *csv.Writer) error { return writeCTRPairs(w, all.Campaign) }},
	}
	for _, spec := range writers {
		f, err := os.Create(filepath.Join(dir, spec.name))
		if err != nil {
			return err
		}
		w := csv.NewWriter(f)
		if err := spec.write(w); err != nil {
			f.Close()
			return fmt.Errorf("writing %s: %w", spec.name, err)
		}
		w.Flush()
		if err := w.Error(); err != nil {
			f.Close()
			return fmt.Errorf("flushing %s: %w", spec.name, err)
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

func writeDiversityCCDF(w *csv.Writer, r experiment.DiversityResult) error {
	if err := w.Write([]string{"series", "x", "frac"}); err != nil {
		return err
	}
	emit := func(series string, pts []stats.CCDFPoint) error {
		for _, p := range pts {
			if err := w.Write([]string{
				series,
				strconv.FormatFloat(p.X, 'g', -1, 64),
				strconv.FormatFloat(p.Frac, 'g', -1, 64),
			}); err != nil {
				return err
			}
		}
		return nil
	}
	if err := emit("all", r.TotalCCDF); err != nil {
		return err
	}
	for i, pts := range r.OutsideCCDF {
		level := []string{"outside-core-80", "outside-core-60", "outside-core-40", "outside-core-20"}[i]
		if err := emit(level, pts); err != nil {
			return err
		}
	}
	return nil
}

func writeFig4Points(w *csv.Writer, s *experiment.Setup, r experiment.Fig4Result) error {
	if err := w.Write([]string{"host", "topic", "x", "y"}); err != nil {
		return err
	}
	for _, p := range r.Points {
		topic := ""
		if p.Topic >= 0 {
			topic = s.Universe.Tax.TopName(p.Topic)
		}
		if err := w.Write([]string{
			p.Host, topic,
			strconv.FormatFloat(p.X, 'g', 6, 64),
			strconv.FormatFloat(p.Y, 'g', 6, 64),
		}); err != nil {
			return err
		}
	}
	return nil
}

func writeFig5Purity(w *csv.Writer, r experiment.Fig5Result) error {
	if err := w.Write([]string{"topic", "purity"}); err != nil {
		return err
	}
	for topic, p := range r.PurityByTopic {
		if err := w.Write([]string{topic, strconv.FormatFloat(p, 'g', 4, 64)}); err != nil {
			return err
		}
	}
	return w.Write([]string{"__chance__", strconv.FormatFloat(r.Chance, 'g', 4, 64)})
}

func writeFig6Topics(w *csv.Writer, s *experiment.Setup, r experiment.CampaignResult) error {
	if err := w.Write([]string{"day", "topic", "web", "adnet", "eaves"}); err != nil {
		return err
	}
	for d := 0; d < r.Days; d++ {
		for ti := range r.WebsiteTopics[d] {
			if r.WebsiteTopics[d][ti] == 0 && r.AdNetTopics[d][ti] == 0 && r.EavesTopics[d][ti] == 0 {
				continue
			}
			if err := w.Write([]string{
				strconv.Itoa(d),
				s.Universe.Tax.TopName(ti),
				strconv.FormatFloat(r.WebsiteTopics[d][ti], 'g', 5, 64),
				strconv.FormatFloat(r.AdNetTopics[d][ti], 'g', 5, 64),
				strconv.FormatFloat(r.EavesTopics[d][ti], 'g', 5, 64),
			}); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeCTRPairs(w *csv.Writer, r experiment.CampaignResult) error {
	if err := w.Write([]string{"user", "eaves_ctr", "adnet_ctr"}); err != nil {
		return err
	}
	for i := range r.PerUserEaves {
		if err := w.Write([]string{
			strconv.Itoa(i),
			strconv.FormatFloat(r.PerUserEaves[i], 'g', 6, 64),
			strconv.FormatFloat(r.PerUserAdNet[i], 'g', 6, 64),
		}); err != nil {
			return err
		}
	}
	return nil
}
