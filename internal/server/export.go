// Export/import surface: the shard-to-shard data plane behind keyspace
// migration. A gateway rebalancing the cluster streams users' visit
// records out of the old owner (GET /v1/export, chunked and resumable
// via a per-user offset watermark), loads them into the new owner
// (POST /v1/import), and verifies the copy with an order-insensitive
// content digest (GET /v1/export/digest) before cutting routing over.
//
// The endpoints are deliberately dumb — offset reads, blind appends, a
// whole-user reset — so every invariant the migration needs (exactness,
// idempotent resume, rollback) lives in one place, the gateway's
// migration state machine, and a half-finished copy can always be
// repaired by reset + recopy.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"hostprof/internal/obs"
	"hostprof/internal/trace"
)

// exportMaxRecords caps the visits one export call returns across all
// requested users, bounding response size however large a chunk the
// caller asks for.
const exportMaxRecords = 65536

// exportDefaultLimit is the per-user chunk size when the caller does not
// pass one.
const exportDefaultLimit = 4096

// maxImportBody caps one import call's body. Larger than the general
// JSON cap: an import chunk carries thousands of visit records.
const maxImportBody = 8 << 20

// WireVisit is one visit on the export/import wire.
type WireVisit struct {
	User int    `json:"user"`
	Time int64  `json:"t"`
	Host string `json:"h"`
}

// ExportUserChunk is one user's slice of an export response: visits
// [From, From+len(Visits)) of the user's stored subsequence, plus the
// subsequence's total length at read time so the caller knows how far
// its watermark still has to travel.
type ExportUserChunk struct {
	User   int         `json:"user"`
	From   int         `json:"from"`
	Total  int         `json:"total"`
	Visits []WireVisit `json:"visits"`
}

// ExportResponse carries one chunk per requested user.
type ExportResponse struct {
	Users []ExportUserChunk `json:"users"`
}

// ExportUsersResponse lists the distinct user IDs stored on this shard.
type ExportUsersResponse struct {
	Users []int `json:"users"`
}

// UserDigestWire is one user's migration handshake digest: record count
// plus the order-insensitive content-hash sum (hex; see
// store.VisitHash).
type UserDigestWire struct {
	Count int    `json:"count"`
	Sum   string `json:"sum"`
}

// DigestResponse maps requested user IDs (decimal strings — JSON object
// keys) to their digests.
type DigestResponse struct {
	Digests map[string]UserDigestWire `json:"digests"`
}

// ImportRequest loads migrated records into this shard: Reset drops the
// listed users' existing visits first (the migration's recopy path),
// then Visits are appended in order. Either field may be empty.
type ImportRequest struct {
	Reset  []int       `json:"reset,omitempty"`
	Visits []WireVisit `json:"visits,omitempty"`
}

// ImportResponse reports what an import applied.
type ImportResponse struct {
	Appended int `json:"appended"`
	Dropped  int `json:"dropped"`
}

// parseUserList parses the comma-separated users query parameter.
func parseUserList(raw string) ([]int, error) {
	if raw == "" {
		return nil, errors.New("missing users parameter")
	}
	parts := strings.Split(raw, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		u, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || u < 0 {
			return nil, fmt.Errorf("bad user %q", p)
		}
		out = append(out, u)
	}
	return out, nil
}

func (b *Backend) handleExportUsers(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(ExportUsersResponse{Users: b.store.Users()})
}

// handleExport streams visit records: ?users=1,2,3&from=N&limit=M reads
// each listed user's subsequence starting at offset from (the caller's
// watermark), at most limit visits per user and exportMaxRecords per
// call. Offsets are stable across calls and restarts (see
// store.UserVisits), so a copy interrupted anywhere resumes exactly.
func (b *Backend) handleExport(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	users, err := parseUserList(q.Get("users"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	from := 0
	if s := q.Get("from"); s != "" {
		if from, err = strconv.Atoi(s); err != nil || from < 0 {
			writeError(w, http.StatusBadRequest, "bad from offset")
			return
		}
	}
	limit := exportDefaultLimit
	if s := q.Get("limit"); s != "" {
		if limit, err = strconv.Atoi(s); err != nil || limit <= 0 {
			writeError(w, http.StatusBadRequest, "bad limit")
			return
		}
	}
	resp := ExportResponse{Users: make([]ExportUserChunk, 0, len(users))}
	exported, budget := 0, exportMaxRecords
	for _, u := range users {
		lim := limit
		if lim > budget {
			lim = budget
		}
		visits, total := b.store.UserVisits(u, from, lim)
		chunk := ExportUserChunk{User: u, From: from, Total: total, Visits: make([]WireVisit, len(visits))}
		for i, v := range visits {
			chunk.Visits[i] = WireVisit{User: v.User, Time: v.Time, Host: v.Host}
		}
		resp.Users = append(resp.Users, chunk)
		exported += len(visits)
		budget -= len(visits)
		if budget <= 0 {
			break
		}
	}
	b.reg.Counter("hostprof_export_records_total").Add(int64(exported))
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// handleExportDigest answers the migration's checksum handshake:
// ?users=... returns each user's record count and content-digest sum.
func (b *Backend) handleExportDigest(w http.ResponseWriter, r *http.Request) {
	users, err := parseUserList(r.URL.Query().Get("users"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	resp := DigestResponse{Digests: make(map[string]UserDigestWire, len(users))}
	for _, u := range users {
		count, sum := b.store.UserDigest(u)
		resp.Digests[strconv.Itoa(u)] = UserDigestWire{Count: count, Sum: strconv.FormatUint(sum, 16)}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// handleImport applies one migration chunk: reset listed users, then
// append visits. Appends go through the normal ingest path (WAL-first,
// blocklist-filtered), so an imported record is exactly as durable as a
// reported one and a double-written raw report is filtered identically
// to how the source filtered it — the digest handshake depends on that.
// The reset is memory-only until the next snapshot; the migration's
// verify pass catches a crash-resurrected reset and simply recopies.
func (b *Backend) handleImport(w http.ResponseWriter, r *http.Request) {
	var req ImportRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxImportBody))
	if err := dec.Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, fmt.Sprintf("body exceeds %d bytes", tooBig.Limit))
			return
		}
		writeError(w, http.StatusBadRequest, "bad request: "+err.Error())
		return
	}
	for _, v := range req.Visits {
		if v.User < 0 || v.Time < 0 || v.Host == "" {
			writeError(w, http.StatusBadRequest, "import visit needs non-negative user/time and a host")
			return
		}
	}
	resp := ImportResponse{Dropped: b.store.DropUsers(req.Reset)}
	var appendErr error
	for _, v := range req.Visits {
		if b.cfg.Blocklist != nil && b.cfg.Blocklist.Contains(v.Host) {
			continue
		}
		if err := b.store.Append(trace.Visit{User: v.User, Time: v.Time, Host: v.Host}); err != nil {
			appendErr = err
			break
		}
		resp.Appended++
	}
	b.reg.Counter("hostprof_import_records_total").Add(int64(resp.Appended))
	if len(req.Reset) > 0 {
		b.reg.Counter("hostprof_import_resets_total",
			obs.L("outcome", "ok")).Add(int64(len(req.Reset)))
	}
	if appendErr != nil {
		writeError(w, http.StatusInternalServerError, "import: "+appendErr.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}
