package main

import (
	"flag"
	"fmt"
	"os"

	"hostprof/internal/core"
	"hostprof/internal/ontology"
	"hostprof/internal/trace"
)

// cmdTrain trains hostname embeddings from a JSONL trace.
func cmdTrain(args []string) error {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	tracePath := fs.String("trace", "", "input trace JSONL (required)")
	modelPath := fs.String("model", "model.bin", "output model path")
	blocklist := fs.String("blocklist", "", "optional hosts-format blocklist to filter first")
	day := fs.Int("day", -1, "train on a single day only (-1 = all days)")
	dim := fs.Int("dim", 100, "embedding dimensionality d")
	window := fs.Int("window", 2, "half window m (window length 2m+1)")
	negative := fs.Int("negative", 5, "negative samples K")
	epochs := fs.Int("epochs", 5, "training epochs")
	minCount := fs.Int("mincount", 5, "minimum hostname frequency")
	sample := fs.Float64("sample", 1e-3, "frequent-host subsampling threshold (<=0 disables)")
	workers := fs.Int("workers", 0, "trainer goroutines (0 = GOMAXPROCS)")
	seed := fs.Uint64("seed", 1, "training seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *tracePath == "" {
		return fmt.Errorf("-trace is required")
	}

	tf, err := os.Open(*tracePath)
	if err != nil {
		return err
	}
	tr, err := trace.ReadJSONL(tf)
	tf.Close()
	if err != nil {
		return err
	}

	if *blocklist != "" {
		bf, err := os.Open(*blocklist)
		if err != nil {
			return err
		}
		bl := ontology.NewBlocklist()
		if _, err := bl.ParseHostsFile(bf); err != nil {
			bf.Close()
			return err
		}
		bf.Close()
		before := tr.Len()
		tr = tr.FilterHosts(func(h string) bool { return !bl.Contains(h) })
		fmt.Printf("blocklist removed %d of %d visits\n", before-tr.Len(), before)
	}

	var corpus [][]string
	if *day >= 0 {
		corpus = tr.DailySequences(*day)
	} else {
		corpus = tr.AllSequences()
	}
	fmt.Printf("training on %d sequences (%d visits)...\n", len(corpus), tr.Len())

	sub := *sample
	if sub <= 0 {
		sub = -1
	}
	model, err := core.Train(corpus, core.TrainConfig{
		Dim: *dim, Window: *window, Negative: *negative,
		Epochs: *epochs, MinCount: *minCount, Subsample: sub,
		Workers: *workers, Seed: *seed,
	})
	if err != nil {
		return err
	}
	if err := model.SaveFile(*modelPath); err != nil {
		return err
	}
	fmt.Printf("model: %d hostnames x %d dims -> %s\n",
		model.Vocab().Len(), model.Dim(), *modelPath)
	return nil
}
