// Package hostprof is a reproduction of "User Profiling by Network
// Observers" (Gonzalez et al., CoNEXT 2021): a library that shows how a
// passive network observer — an ISP, VPN exit, or WiFi provider — can
// build advertising-grade interest profiles of users from nothing but the
// hostnames leaked by encrypted traffic (TLS SNI, QUIC Initials, DNS).
//
// The pipeline has four stages, each usable on its own:
//
//  1. Observe: parse raw packets, extract (user, time, hostname) visits
//     (NewObserver; see also BuildClientHello / ParseSNI and friends for
//     the codec layer).
//  2. Learn: train SKIPGRAM hostname embeddings on request sequences
//     (Train), so hostnames that are co-requested — a site and its API
//     endpoints, sites of the same interest topic — end up close in
//     vector space.
//  3. Profile: turn a user's recent hostname session into a category
//     vector by transferring ontology labels from the embedding
//     neighbourhood (NewProfiler).
//  4. Monetize: select relevant ads for a profile by nearest-neighbour
//     search in category space (NewAdSelector).
//
// Everything is deterministic under explicit seeds, uses only the
// standard library, and ships with a synthetic web/population generator
// (see internal/synth via the cmd/hostprof tool) that reproduces the
// paper's evaluation end to end.
package hostprof

import (
	"context"
	"io"

	"hostprof/internal/ads"
	"hostprof/internal/core"
	"hostprof/internal/index"
	"hostprof/internal/obs"
	"hostprof/internal/ontology"
	"hostprof/internal/sniffer"
	"hostprof/internal/store"
	"hostprof/internal/trace"
)

// Re-exported core types. These aliases are the public names; the
// internal packages are implementation layout.
type (
	// Model holds trained hostname embeddings.
	Model = core.Model
	// TrainConfig tunes SKIPGRAM training; zero values select the
	// gensim-compatible defaults the paper used (d=100, window 5, K=5).
	TrainConfig = core.TrainConfig
	// Vocab maps hostnames to embedding indices.
	Vocab = core.Vocab
	// Neighbour is a nearest-neighbour query result.
	Neighbour = core.Neighbour
	// Profiler converts hostname sessions to category vectors
	// (Equations 3 and 4 of the paper).
	Profiler = core.Profiler
	// ProfilerConfig tunes session profiling (N, aggregation, dedup).
	ProfilerConfig = core.ProfilerConfig
	// Aggregation selects the session-vector fold (mean/sum/idf).
	Aggregation = core.Aggregation
	// EpochStats is the per-epoch training report delivered to
	// TrainConfig.Progress.
	EpochStats = core.EpochStats

	// SimilarityIndex is the packed parallel top-k cosine index every
	// trained Model builds lazily (Model.SimilarityIndex); the profiler
	// queries it instead of the serial scan.
	SimilarityIndex = index.Index
	// IndexResult is one SimilarityIndex hit (vocabulary ID + cosine).
	IndexResult = index.Result

	// MetricsRegistry collects operational metrics (counters, gauges,
	// histograms) with Prometheus text and JSON exposition; share one
	// across components via the Metrics config fields.
	MetricsRegistry = obs.Registry

	// Taxonomy is the two-level category hierarchy (34 topics, 328
	// categories, mirroring the paper's Adwords cut).
	Taxonomy = ontology.Taxonomy
	// Vector is a per-host or per-session category weight vector.
	Vector = ontology.Vector
	// Ontology maps hostnames to category vectors (partial coverage).
	Ontology = ontology.Ontology
	// Blocklist filters advertising/tracking hostnames.
	Blocklist = ontology.Blocklist

	// Visit is one observed hostname request.
	Visit = trace.Visit
	// Trace is a time-ordered visit collection with session windowing.
	Trace = trace.Trace

	// VisitStore is the sharded visit store with optional WAL + snapshot
	// durability (see internal/store); wire one into PipelineConfig.Store
	// to survive restarts.
	VisitStore = store.Store
	// StoreConfig assembles a VisitStore (directory, shards, fsync
	// policy, snapshot cadence).
	StoreConfig = store.Config
	// FsyncPolicy selects when WAL writes reach stable storage.
	FsyncPolicy = store.FsyncPolicy
	// StoreRecoveryStats reports what startup recovery found.
	StoreRecoveryStats = store.RecoveryStats

	// Observer extracts visits from raw packets.
	Observer = sniffer.Observer
	// ObserverConfig tunes the observer (user mapping, ports).
	ObserverConfig = sniffer.ObserverConfig

	// Ad is one creative with its landing-page categorization.
	Ad = ads.Ad
	// CreativeSize is an ad slot/creative dimension pair.
	CreativeSize = ads.CreativeSize
	// AdDB is the ad inventory.
	AdDB = ads.DB
	// AdSelector implements the paper's 20-NN Euclidean ad selection.
	AdSelector = ads.Selector
	// CTR accumulates click-through rate.
	CTR = ads.CTR
)

// Aggregation constants.
const (
	AggMean = core.AggMean
	AggSum  = core.AggSum
	AggIDF  = core.AggIDF
)

// WAL fsync policies for StoreConfig.Fsync.
const (
	FsyncInterval = store.FsyncInterval
	FsyncAlways   = store.FsyncAlways
	FsyncNever    = store.FsyncNever
)

// OpenStore builds a visit store, recovering durable state from
// cfg.Dir when set. An empty Dir yields a purely in-memory sharded
// store.
func OpenStore(cfg StoreConfig) (*VisitStore, error) { return store.Open(cfg) }

// ParseFsync parses a WAL fsync policy flag ("always", "interval",
// "never").
func ParseFsync(s string) (FsyncPolicy, error) { return store.ParseFsync(s) }

// Errors surfaced by the profiling pipeline.
var (
	// ErrEmptySession marks a session with no usable hostnames.
	ErrEmptySession = core.ErrEmptySession
	// ErrNoLabels marks a session from which no labelled host is
	// reachable, leaving Equation (4) undefined.
	ErrNoLabels = core.ErrNoLabels
	// ErrEmptyCorpus marks a training corpus with nothing to learn
	// from.
	ErrEmptyCorpus = core.ErrEmptyCorpus
)

// Train learns hostname embeddings from request sequences (one sequence
// per user per interval) by skip-gram with negative sampling.
func Train(corpus [][]string, cfg TrainConfig) (*Model, error) {
	return core.Train(corpus, cfg)
}

// TrainContext is Train with cancellation: cancel ctx (or let its
// deadline expire) and training stops at the next epoch boundary,
// returning the context's error instead of a partial model.
func TrainContext(ctx context.Context, corpus [][]string, cfg TrainConfig) (*Model, error) {
	return core.TrainContext(ctx, corpus, cfg)
}

// LoadModel reads a model serialized with Model.Save.
func LoadModel(r io.Reader) (*Model, error) { return core.Load(r) }

// LoadModelFile reads a model from a file path.
func LoadModelFile(path string) (*Model, error) { return core.LoadFile(path) }

// NewTaxonomy returns the default 34-topic / 328-category taxonomy.
func NewTaxonomy() *Taxonomy { return ontology.NewTaxonomy() }

// NewOntology returns an empty hostname categorization service over tax.
func NewOntology(tax *Taxonomy) *Ontology { return ontology.New(tax) }

// NewBlocklist returns an empty tracker blocklist; populate it with
// Blocklist.ParseHostsFile or Blocklist.Add.
func NewBlocklist() *Blocklist { return ontology.NewBlocklist() }

// NewProfiler builds the session profiler of paper Section 4.1 over a
// trained model and a (partial) ontology.
func NewProfiler(m *Model, ont *Ontology, cfg ProfilerConfig) *Profiler {
	return core.NewProfiler(m, ont, cfg)
}

// NewObserver returns a passive packet observer.
func NewObserver(cfg ObserverConfig) *Observer { return sniffer.NewObserver(cfg) }

// NewMetricsRegistry returns an empty metrics registry (see the
// Observability section of the README for the exported families).
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewTrace returns a trace over the given visits.
func NewTrace(visits []Visit) *Trace { return trace.New(visits) }

// ReadTraceJSONL parses a JSONL-encoded trace.
func ReadTraceJSONL(r io.Reader) (*Trace, error) { return trace.ReadJSONL(r) }

// NewAdDB returns an empty ad inventory over tax.
func NewAdDB(tax *Taxonomy) *AdDB { return ads.NewDB(tax) }

// NewAdSelector indexes an inventory for the paper's K-nearest-host ad
// selection (K <= 0 selects the paper's 20).
func NewAdSelector(db *AdDB, ont *Ontology, k int) (*AdSelector, error) {
	return ads.NewSelector(db, ont, k)
}

// ParseSNI extracts the server name from the beginning of a TLS stream
// (ErrNeedMore-aware; see the sniffer documentation).
func ParseSNI(stream []byte) (string, error) { return sniffer.ParseSNI(stream) }

// ParseQUICInitialSNI decrypts a QUIC v1 client Initial datagram (RFC
// 9001 initial protection) and extracts the ClientHello SNI.
func ParseQUICInitialSNI(datagram []byte) (string, error) {
	return sniffer.ParseQUICInitialSNI(datagram)
}

// ParseDNSQueryName extracts the question name from a DNS query.
func ParseDNSQueryName(datagram []byte) (string, error) {
	return sniffer.ParseDNSQueryName(datagram)
}
