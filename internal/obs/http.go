package obs

import (
	"encoding/json"
	"net/http"
	"strings"
)

// MetricsHandler serves the registry in Prometheus text exposition
// format (a /metrics endpoint). Scrapers that accept
// application/openmetrics-text get the OpenMetrics rendering instead,
// which carries per-bucket trace-ID exemplars.
func (r *Registry) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if strings.Contains(req.Header.Get("Accept"), "application/openmetrics-text") {
			w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
			_ = r.WriteOpenMetrics(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// VarzHandler serves the registry as a JSON snapshot array (a /varz
// endpoint).
func (r *Registry) VarzHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		snap := r.Snapshot()
		if snap == nil {
			snap = []MetricSnapshot{}
		}
		_ = json.NewEncoder(w).Encode(snap)
	})
}

// HealthzHandler serves a liveness/health probe: 200 "ok" when ready()
// is true, 503 "not ready" otherwise. A nil ready means always healthy —
// the pure liveness probe ("the process is serving"), which is what
// /healthz should answer; route /readyz to ReadyzHandler for the
// routing decision ("send this node traffic").
func HealthzHandler(ready func() bool) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if ready != nil && !ready() {
			http.Error(w, "not ready", http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte("ok\n"))
	})
}

// ReadyzHandler serves a readiness probe with a structured body: status
// returns the overall verdict plus any JSON-encodable detail (model
// version, degraded state, ...), rendered with 200 when ready and 503
// when not. Load balancers key on the status code; richer clients (a
// cluster gateway) decode the body.
func ReadyzHandler(status func() (ready bool, detail any)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		ready, detail := status()
		w.Header().Set("Content-Type", "application/json")
		if !ready {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		if detail == nil {
			detail = map[string]bool{"ready": ready}
		}
		_ = json.NewEncoder(w).Encode(detail)
	})
}
