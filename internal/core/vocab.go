// Package core implements the paper's primary contribution (Section 4.1):
// SKIPGRAM representation learning over hostname request sequences with
// negative sampling (Equations 1 and 2), and the session-profiling
// algorithm that transfers ontology categories to unlabelled hostnames via
// N-nearest-neighbour search in embedding space (Equations 3 and 4).
package core

import (
	"errors"
	"fmt"
	"sort"
)

// Vocab maps hostnames to dense indices and records corpus frequencies.
// The set of all hosts H in the paper's notation.
type Vocab struct {
	hosts  []string
	index  map[string]int
	counts []int64
	total  int64
}

// BuildVocab scans the corpus and keeps every hostname appearing at least
// minCount times (gensim's default is 5). Hostnames are indexed by
// decreasing frequency (ties broken lexicographically), which keeps the
// negative-sampling CDF cache-friendly.
func BuildVocab(corpus [][]string, minCount int) *Vocab {
	if minCount < 1 {
		minCount = 1
	}
	freq := make(map[string]int64)
	for _, seq := range corpus {
		for _, h := range seq {
			freq[h]++
		}
	}
	type hc struct {
		h string
		c int64
	}
	kept := make([]hc, 0, len(freq))
	for h, c := range freq {
		if c >= int64(minCount) {
			kept = append(kept, hc{h, c})
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		if kept[i].c != kept[j].c {
			return kept[i].c > kept[j].c
		}
		return kept[i].h < kept[j].h
	})
	v := &Vocab{
		hosts:  make([]string, len(kept)),
		index:  make(map[string]int, len(kept)),
		counts: make([]int64, len(kept)),
	}
	for i, e := range kept {
		v.hosts[i] = e.h
		v.index[e.h] = i
		v.counts[i] = e.c
		v.total += e.c
	}
	return v
}

// Len returns the vocabulary size |H|.
func (v *Vocab) Len() int { return len(v.hosts) }

// ID returns the dense index of host and whether it is in vocabulary.
func (v *Vocab) ID(host string) (int, bool) {
	id, ok := v.index[host]
	return id, ok
}

// Host returns the hostname with dense index id.
func (v *Vocab) Host(id int) string { return v.hosts[id] }

// Count returns the corpus frequency of the host with index id.
func (v *Vocab) Count(id int) int64 { return v.counts[id] }

// Total returns the total number of kept tokens in the corpus.
func (v *Vocab) Total() int64 { return v.total }

// Hosts returns the hostname list in index order. Callers must not modify
// the returned slice.
func (v *Vocab) Hosts() []string { return v.hosts }

// validate checks internal consistency; used by Load.
func (v *Vocab) validate() error {
	if len(v.hosts) != len(v.counts) {
		return errors.New("core: vocab hosts/counts length mismatch")
	}
	for i, h := range v.hosts {
		if j, ok := v.index[h]; !ok || j != i {
			return fmt.Errorf("core: vocab index inconsistent at %d (%q)", i, h)
		}
	}
	return nil
}
