package fault

import (
	"errors"
	"testing"
	"time"
)

func TestInjectUnarmedIsNoop(t *testing.T) {
	Reset()
	if err := Inject("nowhere"); err != nil {
		t.Fatalf("unarmed Inject = %v", err)
	}
}

func TestErrorHookFiresAndClears(t *testing.T) {
	t.Cleanup(Reset)
	boom := errors.New("boom")
	Set("p", Error(boom))
	if err := Inject("p"); !errors.Is(err, boom) {
		t.Fatalf("Inject = %v, want boom", err)
	}
	if err := Inject("other"); err != nil {
		t.Fatalf("other point fired: %v", err)
	}
	if Hits("p") != 1 {
		t.Fatalf("Hits = %d, want 1", Hits("p"))
	}
	Clear("p")
	if err := Inject("p"); err != nil {
		t.Fatalf("cleared hook fired: %v", err)
	}
}

func TestSetNBoundsInjections(t *testing.T) {
	t.Cleanup(Reset)
	boom := errors.New("boom")
	SetN("p", 2, Error(boom))
	for i := 0; i < 2; i++ {
		if err := Inject("p"); !errors.Is(err, boom) {
			t.Fatalf("shot %d: %v", i, err)
		}
	}
	if err := Inject("p"); err != nil {
		t.Fatalf("third shot fired: %v", err)
	}
	if Hits("p") != 2 {
		t.Fatalf("Hits = %d, want 2", Hits("p"))
	}
}

func TestLatencyHookSleeps(t *testing.T) {
	t.Cleanup(Reset)
	Set("slow", Latency(20*time.Millisecond))
	start := time.Now()
	if err := Inject("slow"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("latency hook returned after %v", d)
	}
}

func TestPanicHookPanics(t *testing.T) {
	t.Cleanup(Reset)
	Set("p", Panic("kaboom"))
	defer func() {
		if recover() == nil {
			t.Fatal("panic hook did not panic")
		}
	}()
	Inject("p")
}

func TestHTTPPoint(t *testing.T) {
	if got := HTTPPoint("report"); got != "http/report" {
		t.Fatalf("HTTPPoint = %q", got)
	}
}
