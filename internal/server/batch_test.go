package server

import (
	"context"
	"errors"
	"math"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"

	"hostprof/internal/ads"
	"hostprof/internal/core"
	"hostprof/internal/obs"
	"hostprof/internal/synth"
)

// newBatchFixture spins a backend with the profile cache enabled and a
// tight batch limit, so batch validation is reachable with small
// payloads.
func newBatchFixture(t *testing.T, cacheSize int) (*backendFixture, *obs.Registry) {
	t.Helper()
	u := synth.NewUniverse(synth.UniverseConfig{Sites: 100, Trackers: 15, Seed: 3})
	ont := synth.BuildOntology(u, synth.OntologyConfig{Coverage: 0.2, Seed: 5})
	db := ads.BuildFromOntology(ont, ads.BuildConfig{Seed: 7})
	reg := obs.NewRegistry()
	b, err := New(Config{
		Ontology:            ont,
		AdDB:                db,
		Train:               core.TrainConfig{Dim: 16, Epochs: 4, MinCount: 2, Workers: 1, Seed: 11, Subsample: -1},
		Profile:             core.ProfilerConfig{N: 30, Agg: core.AggIDF},
		Metrics:             reg,
		ProfileCache:        cacheSize,
		MaxSessionsPerBatch: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(b.Handler())
	t.Cleanup(srv.Close)
	pop := synth.NewPopulation(u, synth.PopulationConfig{Users: 8, Days: 2, Seed: 13})
	return &backendFixture{b: b, srv: srv, u: u, pop: pop}, reg
}

// profileableSession returns hosts that are in-vocabulary after a
// retrain over the fixture population's browsing.
func profileableSession(fx *backendFixture) []string {
	site := fx.u.Hosts[fx.u.Sites[0].Host].Name
	support := fx.u.Hosts[fx.u.Sites[0].Support[0]].Name
	return []string{site, support}
}

func TestProfileBatchEndpoint(t *testing.T) {
	fx, _ := newBatchFixture(t, 64)
	ext := &Extension{BaseURL: fx.srv.URL, User: 0}

	// Untrained backend answers 503.
	if _, err := ext.ProfileBatch(context.Background(), [][]string{{"a.example"}}); err == nil {
		t.Fatal("batch on untrained backend should fail")
	} else {
		var apiErr *APIError
		if !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable {
			t.Fatalf("err = %v, want 503", err)
		}
	}

	fx.feedVisits(t)
	if err := ext.Retrain(); err != nil {
		t.Fatalf("retrain: %v", err)
	}

	good := profileableSession(fx)
	results, err := ext.ProfileBatch(context.Background(), [][]string{
		good,
		{"never-seen-host.invalid"},
		{},
	})
	if err != nil {
		t.Fatalf("batch: %v", err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results, want 3", len(results))
	}
	if results[0].Error != "" || len(results[0].Categories) == 0 {
		t.Fatalf("profileable session: %+v", results[0])
	}
	for name, v := range results[0].Categories {
		if v <= 0 || v > 1 {
			t.Fatalf("category %q weight %g outside (0,1]", name, v)
		}
	}
	if results[1].Error == "" || len(results[1].Categories) != 0 {
		t.Fatalf("unknown-host session should fail per-result: %+v", results[1])
	}
	if results[2].Error == "" {
		t.Fatalf("empty session should fail per-result: %+v", results[2])
	}
}

func TestProfileBatchValidation(t *testing.T) {
	fx, _ := newBatchFixture(t, 0)
	ext := &Extension{BaseURL: fx.srv.URL, User: 0}

	wantStatus := func(err error, code int, what string) {
		t.Helper()
		var apiErr *APIError
		if !errors.As(err, &apiErr) || apiErr.Status != code {
			t.Fatalf("%s: err = %v, want HTTP %d", what, err, code)
		}
	}
	_, err := ext.ProfileBatch(context.Background(), nil)
	wantStatus(err, http.StatusBadRequest, "empty batch")

	_, err = ext.ProfileBatch(context.Background(), make([][]string, 5)) // fixture limit 4
	wantStatus(err, http.StatusBadRequest, "oversized batch")

	big := make([]string, 1025) // default per-session limit 1024
	for i := range big {
		big[i] = "h.example"
	}
	_, err = ext.ProfileBatch(context.Background(), [][]string{big})
	wantStatus(err, http.StatusBadRequest, "oversized session")
}

func TestProfileCacheHitsAndMetrics(t *testing.T) {
	fx, reg := newBatchFixture(t, 64)
	ext := &Extension{BaseURL: fx.srv.URL, User: 0}
	fx.feedVisits(t)
	if err := ext.Retrain(); err != nil {
		t.Fatalf("retrain: %v", err)
	}

	good := profileableSession(fx)
	first, err := ext.ProfileBatch(context.Background(), [][]string{good})
	if err != nil {
		t.Fatal(err)
	}
	hits0 := reg.Counter("hostprof_profile_cache_hits_total").Value()
	// Same influencing host set, different order plus unknown noise:
	// must hit the cache and return the identical profile.
	again, err := ext.ProfileBatch(context.Background(), [][]string{{good[1], good[0], "noise.invalid"}})
	if err != nil {
		t.Fatal(err)
	}
	if hits := reg.Counter("hostprof_profile_cache_hits_total").Value(); hits != hits0+1 {
		t.Fatalf("cache hits = %d, want %d", hits, hits0+1)
	}
	if !reflect.DeepEqual(first[0].Categories, again[0].Categories) {
		t.Fatal("cached profile differs from computed profile")
	}
	if reg.Counter("hostprof_profile_cache_misses_total").Value() == 0 {
		t.Fatal("first batch should have counted a miss")
	}
}

func TestProfileCacheLRU(t *testing.T) {
	reg := obs.NewRegistry()
	c := newProfileCache(2, reg)
	c.put("a", nil, core.ErrNoLabels)
	c.put("b", nil, core.ErrNoLabels)
	if _, _, ok := c.get("a"); !ok {
		t.Fatal("a should be cached")
	}
	c.put("c", nil, core.ErrNoLabels) // evicts b (a was just used)
	if _, _, ok := c.get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if _, _, ok := c.get("a"); !ok {
		t.Fatal("a should survive (recently used)")
	}
	if got := reg.Counter("hostprof_profile_cache_evictions_total").Value(); got != 1 {
		t.Fatalf("evictions = %d, want 1", got)
	}
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
	if nil2 := newProfileCache(0, reg); nil2 != nil {
		t.Fatal("capacity 0 must disable the cache")
	}
}

// TestProfileCacheNeverStaleAcrossRetrain hammers the cached batch path
// while a retrain swaps the model underneath it, then verifies — against
// a freshly built profiler over the post-swap model — that the cache
// answers with current-model profiles only. Run under -race this also
// exercises the profiler/cache swap for data races.
func TestProfileCacheNeverStaleAcrossRetrain(t *testing.T) {
	u := synth.NewUniverse(synth.UniverseConfig{Sites: 100, Trackers: 15, Seed: 3})
	ont := synth.BuildOntology(u, synth.OntologyConfig{Coverage: 0.2, Seed: 5})
	db := ads.BuildFromOntology(ont, ads.BuildConfig{Seed: 7})
	b, err := New(Config{
		Ontology:     ont,
		AdDB:         db,
		Train:        core.TrainConfig{Dim: 16, Epochs: 4, MinCount: 2, Workers: 1, Seed: 11, Subsample: -1},
		Profile:      core.ProfilerConfig{N: 30, Agg: core.AggIDF},
		ProfileCache: 128,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(b.Handler())
	t.Cleanup(srv.Close)
	fx := &backendFixture{b: b, srv: srv, u: u,
		pop: synth.NewPopulation(u, synth.PopulationConfig{Users: 8, Days: 2, Seed: 13})}
	fx.feedVisits(t)
	if err := b.Retrain(); err != nil {
		t.Fatal(err)
	}

	sessions := [][]string{
		profileableSession(fx),
		{fx.u.Hosts[fx.u.Sites[1].Host].Name},
		{fx.u.Hosts[fx.u.Sites[2].Host].Name, fx.u.Hosts[fx.u.Sites[3].Host].Name},
	}

	// Hammer the cached path while the model is retrained underneath.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, _, err := b.ProfileSessions(context.Background(), sessions); err != nil {
					t.Errorf("batch during retrain: %v", err)
					return
				}
			}
		}()
	}
	// Grow the corpus so the swapped-in model genuinely differs, then
	// retrain concurrently with the hammering.
	fx.pop = synth.NewPopulation(u, synth.PopulationConfig{Users: 8, Days: 2, Seed: 29})
	fx.feedVisits(t)
	if err := b.RetrainContext(context.Background()); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()

	// After the swap, every cached answer must match a profiler built
	// directly on the store's current (post-swap) model.
	fresh := core.NewProfiler(b.Store().Model(), ont, core.ProfilerConfig{N: 30, Agg: core.AggIDF})
	vecs, errs, err := b.ProfileSessions(context.Background(), sessions)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range sessions {
		want, wantErr := fresh.ProfileSession(s)
		if (errs[i] == nil) != (wantErr == nil) {
			t.Fatalf("session %d: err %v, fresh profiler err %v", i, errs[i], wantErr)
		}
		if (vecs[i] == nil) != (want == nil) || len(vecs[i]) != len(want) {
			t.Fatalf("session %d: cached profile does not match the post-swap model", i)
		}
		// Aggregation folds map-ordered contributions, so recomputation
		// wobbles in the last bit; a stale pre-swap profile differs by
		// far more than this.
		for c := range want {
			if d := math.Abs(vecs[i][c] - want[c]); d > 1e-9 {
				t.Fatalf("session %d category %d: cached %g vs post-swap %g",
					i, c, vecs[i][c], want[c])
			}
		}
	}
}

// TestProfileCacheNeverStaleAcrossRetrainANN is the ANN variant of the
// retrain hammer: with the HNSW layer enabled, concurrent batch queries
// during a generation swap must never observe a mixed old-graph /
// new-vectors state. The graph lives inside the Profiler that the swap
// replaces wholesale, so post-swap answers must match a fresh profiler
// built with the same ANN configuration over the current model.
func TestProfileCacheNeverStaleAcrossRetrainANN(t *testing.T) {
	u := synth.NewUniverse(synth.UniverseConfig{Sites: 100, Trackers: 15, Seed: 3})
	ont := synth.BuildOntology(u, synth.OntologyConfig{Coverage: 0.2, Seed: 5})
	db := ads.BuildFromOntology(ont, ads.BuildConfig{Seed: 7})
	// ANNEf is tiny so the graph genuinely answers queries at this
	// vocabulary size instead of falling back to the exact scan.
	profCfg := core.ProfilerConfig{N: 30, Agg: core.AggIDF, ANN: true, ANNEf: 8}
	b, err := New(Config{
		Ontology:     ont,
		AdDB:         db,
		Train:        core.TrainConfig{Dim: 16, Epochs: 4, MinCount: 2, Workers: 1, Seed: 11, Subsample: -1},
		Profile:      profCfg,
		ProfileCache: 128,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(b.Handler())
	t.Cleanup(srv.Close)
	fx := &backendFixture{b: b, srv: srv, u: u,
		pop: synth.NewPopulation(u, synth.PopulationConfig{Users: 8, Days: 2, Seed: 13})}
	fx.feedVisits(t)
	if err := b.Retrain(); err != nil {
		t.Fatal(err)
	}

	sessions := [][]string{
		profileableSession(fx),
		{fx.u.Hosts[fx.u.Sites[1].Host].Name},
		{fx.u.Hosts[fx.u.Sites[2].Host].Name, fx.u.Hosts[fx.u.Sites[3].Host].Name},
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, _, err := b.ProfileSessions(context.Background(), sessions); err != nil {
					t.Errorf("batch during retrain: %v", err)
					return
				}
			}
		}()
	}
	fx.pop = synth.NewPopulation(u, synth.PopulationConfig{Users: 8, Days: 2, Seed: 29})
	fx.feedVisits(t)
	if err := b.RetrainContext(context.Background()); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()

	fresh := core.NewProfiler(b.Store().Model(), ont, profCfg)
	vecs, errs, err := b.ProfileSessions(context.Background(), sessions)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range sessions {
		want, wantErr := fresh.ProfileSession(s)
		if (errs[i] == nil) != (wantErr == nil) {
			t.Fatalf("session %d: err %v, fresh ANN profiler err %v", i, errs[i], wantErr)
		}
		if (vecs[i] == nil) != (want == nil) || len(vecs[i]) != len(want) {
			t.Fatalf("session %d: cached ANN profile does not match the post-swap model", i)
		}
		for c := range want {
			if d := math.Abs(vecs[i][c] - want[c]); d > 1e-9 {
				t.Fatalf("session %d category %d: cached %g vs post-swap %g",
					i, c, vecs[i][c], want[c])
			}
		}
	}
}
