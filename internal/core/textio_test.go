package core

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"testing"

	"hostprof/internal/stats"
)

func TestTextRoundTrip(t *testing.T) {
	rng := stats.NewRNG(81)
	corpus, ta, _ := topicCorpus(rng, 5, 40, 6)
	m, err := Train(corpus, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Dim() != m.Dim() || m2.Vocab().Len() != m.Vocab().Len() {
		t.Fatal("shape mismatch")
	}
	v1, _ := m.Vector(ta[0])
	v2, ok := m2.Vector(ta[0])
	if !ok {
		t.Fatal("host missing after round trip")
	}
	for i := range v1 {
		if math.Abs(v1[i]-v2[i]) > 1e-8 {
			t.Fatalf("dim %d: %v vs %v", i, v1[i], v2[i])
		}
	}
	// Similarity queries still work on the loaded model.
	if _, err := m2.MostSimilar(ta[0], 3); err != nil {
		t.Fatal(err)
	}
}

func TestTextFormatHeader(t *testing.T) {
	rng := stats.NewRNG(83)
	corpus, _, _ := topicCorpus(rng, 3, 20, 5)
	m, err := Train(corpus, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	first := strings.SplitN(buf.String(), "\n", 2)[0]
	var n, d int
	if _, err := fmt.Sscanf(first, "%d %d", &n, &d); err != nil {
		t.Fatalf("header %q: %v", first, err)
	}
	if n != m.Vocab().Len() || d != m.Dim() {
		t.Fatalf("header %q", first)
	}
}

func TestReadTextErrors(t *testing.T) {
	cases := []string{
		"",                        // empty
		"notanumber 4\na 1 2 3 4", // bad count
		"1 0\n",                   // bad dim
		"2 2\na 1 2\n",            // fewer rows than promised
		"1 2\na 1\n",              // wrong field count
		"1 2\na 1 x\n",            // bad float
		"2 2\na 1 2\na 3 4\n",     // duplicate host
	}
	for i, src := range cases {
		if _, err := ReadText(strings.NewReader(src)); err == nil {
			t.Errorf("case %d accepted invalid input", i)
		}
	}
}

func TestReadTextMinimalValid(t *testing.T) {
	m, err := ReadText(strings.NewReader("2 3\nalpha.example 1 0 0\nbeta.example 0 1 0\n"))
	if err != nil {
		t.Fatal(err)
	}
	v, ok := m.Vector("alpha.example")
	if !ok || v[0] != 1 || v[1] != 0 {
		t.Fatalf("vector %v", v)
	}
	sim, err := m.Similarity("alpha.example", "beta.example")
	if err != nil || sim != 0 {
		t.Fatalf("similarity %v %v", sim, err)
	}
}
