package cluster

import (
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"hostprof/internal/ads"
	"hostprof/internal/core"
	"hostprof/internal/obs/tracer"
	"hostprof/internal/server"
	"hostprof/internal/synth"
)

// getJSON fetches url and decodes the body into out.
func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s → %d: %s", url, resp.StatusCode, raw)
	}
	if err := json.Unmarshal(raw, out); err != nil {
		t.Fatalf("GET %s: %v: %s", url, err, raw)
	}
}

// TestTracePushCompletesClusterTrace is the cross-process tracing
// acceptance test: one POST /v1/report through the gateway must yield
// one trace at the gateway's /debug/traces holding both the gateway's
// gw.* spans and the shard's http.report/store.ingest spans under the
// same trace ID — the shard pushes its half via the tracer Sink →
// Pusher → POST /debug/traces path, and Ingest merges by ID.
func TestTracePushCompletesClusterTrace(t *testing.T) {
	u := synth.NewUniverse(synth.UniverseConfig{Sites: 60, Trackers: 10, Seed: 3})
	ont := synth.BuildOntology(u, synth.OntologyConfig{Coverage: 0.2, Seed: 5})
	db := ads.BuildFromOntology(ont, ads.BuildConfig{Seed: 7})
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))

	// The pusher needs the gateway URL, which does not exist until the
	// shards do — the sink closure resolves it lazily, which is also
	// how it stays nil-safe before wiring.
	var pusher atomic.Pointer[tracer.Pusher]
	sink := func(spans []tracer.SpanData) {
		if p := pusher.Load(); p != nil {
			p.Offer(spans)
		}
	}

	var urls []string
	for i := 0; i < 2; i++ {
		trc := tracer.New(tracer.Config{Service: "hostprof-serve", SampleRate: 1, Sink: sink})
		b, err := server.New(server.Config{
			Ontology: ont,
			AdDB:     db,
			Train:    core.TrainConfig{Dim: 16, Epochs: 2, MinCount: 1, Workers: 1, Seed: 11, Subsample: -1},
			Profile:  core.ProfilerConfig{N: 30, Agg: core.AggIDF},
			Tracer:   trc,
			Logger:   quiet,
		})
		if err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(b.Handler())
		t.Cleanup(srv.Close)
		urls = append(urls, srv.URL)
	}

	gw, err := New(Config{
		Backends:       urls,
		HealthInterval: -1,
		Tracer:         tracer.New(tracer.Config{Service: "hostprof-gateway", SampleRate: 1}),
		Logger:         quiet,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(gw.Close)
	gw.CheckHealth(context.Background())
	gwSrv := httptest.NewServer(gw.Handler())
	t.Cleanup(gwSrv.Close)

	p := tracer.NewPusher(tracer.PushConfig{
		URL:           gwSrv.URL + "/debug/traces",
		FlushInterval: 10 * time.Millisecond,
	})
	t.Cleanup(p.Close)
	pusher.Store(p)

	// One report through the gateway; 503 is the ingested-but-untrained
	// answer, which still traces end to end.
	report(t, gwSrv.URL, 1, []string{"news.example", "cdn.example"},
		http.StatusOK, http.StatusServiceUnavailable)

	deadline := time.Now().Add(5 * time.Second)
	for {
		var body struct {
			Traces []tracer.TraceJSON `json:"traces"`
		}
		getJSON(t, gwSrv.URL+"/debug/traces", &body)
		for _, tr := range body.Traces {
			names := make(map[string]bool)
			services := make(map[string]bool)
			for _, sp := range tr.Spans {
				if sp.TraceID != tr.TraceID {
					t.Fatalf("span %s carries trace %s inside trace %s", sp.Name, sp.TraceID, tr.TraceID)
				}
				names[sp.Name] = true
				services[sp.Service] = true
			}
			if names["gw.report"] && names["store.ingest"] {
				if !names["http.report"] {
					t.Fatalf("merged trace missing the shard's root span: %v", names)
				}
				if !services["hostprof-gateway"] || !services["hostprof-serve"] {
					t.Fatalf("merged trace spans one service only: %v", services)
				}
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("no merged gateway+shard trace after 5s; traces: %+v", body.Traces)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// TestClusterMetricsFederationDegrades exercises the federated view:
// all shards answering → every ledger entry ok, counters summed and
// gauges shard-labelled; one shard killed → its entry degrades to
// stale (last good snapshot retained), the endpoint still answers 200,
// and the timeline records the shard_down flap.
func TestClusterMetricsFederationDegrades(t *testing.T) {
	fx := newClusterFixtureCfg(t, 3, 6, func(c *Config) {
		c.FederationTTL = time.Nanosecond // every read re-scrapes
	})
	fx.feedViaGateway(t)

	var cm ClusterMetrics
	getJSON(t, fx.gwSrv.URL+"/v1/cluster/metrics", &cm)
	if len(cm.Shards) != 3 {
		t.Fatalf("ledger has %d shards, want 3: %+v", len(cm.Shards), cm.Shards)
	}
	for _, s := range cm.Shards {
		if s.Status != "ok" || s.Series == 0 {
			t.Fatalf("healthy shard %s scraped as %q (%d series, err %q)", s.Backend, s.Status, s.Series, s.Error)
		}
	}
	var reportsSummed float64
	sawShardGauge := false
	for _, m := range cm.Metrics {
		if m.Name == "hostprof_http_requests_total" && m.Labels["endpoint"] == "report" {
			if m.Labels["shard"] != "" {
				t.Fatalf("summed counter still carries a shard label: %+v", m)
			}
			reportsSummed += m.Value
		}
		if m.Kind == "gauge" && m.Labels["shard"] != "" {
			sawShardGauge = true
		}
	}
	if reportsSummed == 0 {
		t.Fatal("merged view has no summed hostprof_http_requests_total{endpoint=report}")
	}
	if !sawShardGauge {
		t.Fatal("merged view has no shard-labelled gauge")
	}

	// The federated /metrics block re-exposes shard series with a shard
	// label and must keep the text exposition valid: one # TYPE header
	// per family across the local and federated blocks.
	resp, err := http.Get(fx.gwSrv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(text), `shard="`) {
		t.Fatal("/metrics has no federated shard-labelled series")
	}
	typeSeen := make(map[string]bool)
	for _, line := range strings.Split(string(text), "\n") {
		if !strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		fam := strings.Fields(line)[2]
		if typeSeen[fam] {
			t.Fatalf("duplicate # TYPE header for family %s", fam)
		}
		typeSeen[fam] = true
	}

	// Kill one shard: federation degrades that entry, never the
	// endpoint, and the probe records the liveness flap on the timeline.
	victim := fx.shardSrv[0].URL
	fx.shardSrv[0].Close()
	fx.gw.CheckHealth(context.Background())

	getJSON(t, fx.gwSrv.URL+"/v1/cluster/metrics", &cm)
	byBackend := make(map[string]ShardScrapeStatus)
	for _, s := range cm.Shards {
		byBackend[s.Backend] = s
	}
	if got := byBackend[victim]; got.Status != "stale" || got.Error == "" {
		t.Fatalf("dead shard scraped as %q (err %q), want stale with error", got.Status, got.Error)
	}
	ok := 0
	for _, s := range cm.Shards {
		if s.Status == "ok" {
			ok++
		}
	}
	if ok != 2 {
		t.Fatalf("%d shards still ok after one kill, want 2: %+v", ok, cm.Shards)
	}
	if len(cm.Metrics) == 0 {
		t.Fatal("merged view emptied out after a partial scrape")
	}

	var ev struct {
		Events []Event `json:"events"`
		LastID int64   `json:"last_id"`
	}
	getJSON(t, fx.gwSrv.URL+"/v1/cluster/events", &ev)
	found := false
	for _, e := range ev.Events {
		if e.Type == EventShardDown && e.Shard == victim {
			if e.UnixNano <= 0 {
				t.Fatalf("shard_down event without a timestamp: %+v", e)
			}
			found = true
		}
	}
	if !found {
		t.Fatalf("timeline has no shard_down for %s: %+v", victim, ev.Events)
	}
}

// TestFederationMissingShard covers the never-scraped state: a backend
// that has never answered /varz reports missing (no data), while the
// endpoint still serves 200.
func TestFederationMissingShard(t *testing.T) {
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))
	gw, err := New(Config{
		Backends:       []string{"http://127.0.0.1:1"},
		HealthInterval: -1,
		ShardTimeout:   200 * time.Millisecond,
		FederationTTL:  time.Nanosecond,
		Logger:         quiet,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(gw.Close)
	srv := httptest.NewServer(gw.Handler())
	t.Cleanup(srv.Close)

	var cm ClusterMetrics
	getJSON(t, srv.URL+"/v1/cluster/metrics", &cm)
	if len(cm.Shards) != 1 || cm.Shards[0].Status != "missing" || cm.Shards[0].Error == "" {
		t.Fatalf("unreachable shard ledger: %+v", cm.Shards)
	}
}

// TestClusterEventsCursor drives the ?since cursor protocol: the
// initial probe flaps are visible, a read from last_id is empty until
// new events land, and only the new events come back then.
func TestClusterEventsCursor(t *testing.T) {
	fx := newClusterFixture(t, 2, 2)

	type eventsBody struct {
		Events []Event `json:"events"`
		LastID int64   `json:"last_id"`
	}
	var first eventsBody
	getJSON(t, fx.gwSrv.URL+"/v1/cluster/events", &first)
	if len(first.Events) == 0 || first.LastID == 0 {
		t.Fatalf("no events after initial health pass: %+v", first)
	}
	ups := 0
	var prevID int64
	for _, e := range first.Events {
		if e.ID <= prevID {
			t.Fatalf("event IDs not increasing: %+v", first.Events)
		}
		prevID = e.ID
		if e.Type == EventShardUp {
			ups++
		}
	}
	if ups != 2 {
		t.Fatalf("%d shard_up events for a 2-shard cluster, want 2: %+v", ups, first.Events)
	}

	var empty eventsBody
	getJSON(t, fx.gwSrv.URL+"/v1/cluster/events?since="+itoa(first.LastID), &empty)
	if len(empty.Events) != 0 || empty.LastID != first.LastID {
		t.Fatalf("cursor read past the end returned %+v", empty)
	}

	fx.shardSrv[1].Close()
	fx.gw.CheckHealth(context.Background())

	var delta eventsBody
	getJSON(t, fx.gwSrv.URL+"/v1/cluster/events?since="+itoa(first.LastID), &delta)
	if len(delta.Events) == 0 {
		t.Fatal("no new events after a shard died")
	}
	for _, e := range delta.Events {
		if e.ID <= first.LastID {
			t.Fatalf("cursor leaked an old event: %+v", e)
		}
	}
	sawDown := false
	for _, e := range delta.Events {
		if e.Type == EventShardDown && e.Shard == fx.shardSrv[1].URL {
			sawDown = true
		}
	}
	if !sawDown {
		t.Fatalf("delta read missing the shard_down: %+v", delta.Events)
	}

	// Shed window: a request owned by the dead shard opens it (once).
	opened := false
	for uid := 0; uid < 32 && !opened; uid++ {
		if owner, _ := fx.gw.Ring().Owner(uid); owner != fx.shardSrv[1].URL {
			continue
		}
		report(t, fx.gwSrv.URL, uid, []string{"a.example"}, http.StatusServiceUnavailable, http.StatusBadGateway)
		var after eventsBody
		getJSON(t, fx.gwSrv.URL+"/v1/cluster/events?since="+itoa(first.LastID), &after)
		for _, e := range after.Events {
			if e.Type == EventShedOpen && e.Shard == fx.shardSrv[1].URL {
				opened = true
			}
		}
		break
	}
	if !opened {
		t.Fatal("shedding a dead shard's keyspace recorded no shed_open event")
	}

	// Malformed cursor and limit are client errors.
	for _, q := range []string{"?since=abc", "?since=-1", "?limit=x"} {
		resp, err := http.Get(fx.gwSrv.URL + "/v1/cluster/events" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("GET events%s → %d, want 400", q, resp.StatusCode)
		}
	}

	// ?limit keeps the newest.
	var limited eventsBody
	getJSON(t, fx.gwSrv.URL+"/v1/cluster/events?limit=1", &limited)
	if len(limited.Events) != 1 || limited.Events[0].ID != limited.LastID {
		t.Fatalf("limit=1 did not return exactly the newest event: %+v", limited)
	}
}

func itoa(v int64) string { return strconv.FormatInt(v, 10) }

// TestEventLogEviction pins the ring semantics: capacity bounds the
// buffer, eviction drops the oldest, and the cursor stays valid across
// evictions because IDs keep increasing.
func TestEventLogEviction(t *testing.T) {
	l := newEventLog(4)
	for i := 0; i < 10; i++ {
		l.record("t", "", "m", nil)
	}
	evs, last := l.since(0)
	if len(evs) != 4 || last != 10 {
		t.Fatalf("got %d events, last %d; want 4 retained, cursor 10", len(evs), last)
	}
	if evs[0].ID != 7 || evs[3].ID != 10 {
		t.Fatalf("retained window [%d..%d], want [7..10]", evs[0].ID, evs[3].ID)
	}
	evs, _ = l.since(8)
	if len(evs) != 2 {
		t.Fatalf("since(8) → %d events, want 2", len(evs))
	}
	newest := l.last(2)
	if len(newest) != 2 || newest[0].ID != 10 || newest[1].ID != 9 {
		t.Fatalf("last(2) = %+v, want IDs 10,9", newest)
	}
	// Nil log: every method is the disabled no-op.
	var nilLog *eventLog
	nilLog.record("t", "", "m", nil)
	if evs, last := nilLog.since(0); evs != nil || last != 0 {
		t.Fatal("nil eventLog not inert")
	}
}

// TestInstrumentDisabledPathAllocs guards the acceptance criterion
// that the observability plane costs nothing when switched off: with
// no SLO targets, no slow-request threshold, no profiler and no
// tracer, one pass through the gateway's instrument wrapper must not
// allocate beyond the pre-existing recorder + counter-lookup baseline.
func TestInstrumentDisabledPathAllocs(t *testing.T) {
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))
	gw, err := New(Config{
		Backends:       []string{"http://127.0.0.1:1"},
		HealthInterval: -1,
		Logger:         quiet,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(gw.Close)

	h := gw.instrument("report", func(w http.ResponseWriter, r *http.Request) {})
	req := httptest.NewRequest(http.MethodPost, "/v1/report", nil)
	rec := httptest.NewRecorder()
	allocs := testing.AllocsPerRun(500, func() { h(rec, req) })
	// Baseline: statusRecorder, the deferred closure, and the label
	// structs + lookup key for the per-request counter — all of which
	// predate the observability plane. The SLO observe, slow-request
	// check, profiler capture and event hooks must all be free when
	// disabled (nil receivers / zero thresholds), so any rise here
	// means a hook leaked onto the hot path.
	const baseline = 14
	if allocs > baseline {
		t.Fatalf("disabled instrument path allocates %.0f/op, budget %d — an observability hook leaked onto the hot path", allocs, baseline)
	}
}
