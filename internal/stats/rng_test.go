package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical draws", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestRNGFloat64Mean(t *testing.T) {
	r := NewRNG(3)
	var s float64
	const n = 200000
	for i := 0; i < n; i++ {
		s += r.Float64()
	}
	mean := s / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestRNGIntnBounds(t *testing.T) {
	r := NewRNG(9)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Intn(10) covered only %d values", len(seen))
	}
}

func TestRNGIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(11)
	const n = 200000
	var s, s2 float64
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		s += x
		s2 += x * x
	}
	mean := s / n
	varr := s2/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(varr-1) > 0.03 {
		t.Fatalf("normal variance = %v, want ~1", varr)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := NewRNG(13)
	const n = 100000
	var s float64
	for i := 0; i < n; i++ {
		x := r.ExpFloat64()
		if x < 0 {
			t.Fatalf("negative exponential deviate %v", x)
		}
		s += x
	}
	if m := s / n; math.Abs(m-1) > 0.03 {
		t.Fatalf("exp mean = %v, want ~1", m)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(5)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("invalid permutation element %d", v)
		}
		seen[v] = true
	}
}

func TestSplitIndependence(t *testing.T) {
	r := NewRNG(21)
	c1 := r.Split()
	c2 := r.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("split children produced identical first draws")
	}
}

func TestGammaMean(t *testing.T) {
	r := NewRNG(17)
	for _, alpha := range []float64{0.5, 1, 2, 5} {
		const n = 50000
		var s float64
		for i := 0; i < n; i++ {
			g := r.Gamma(alpha)
			if g < 0 {
				t.Fatalf("negative gamma deviate for alpha=%v", alpha)
			}
			s += g
		}
		mean := s / n
		if math.Abs(mean-alpha) > 0.05*alpha+0.02 {
			t.Fatalf("Gamma(%v) mean = %v, want ~%v", alpha, mean, alpha)
		}
	}
}

func TestDirichletSumsToOne(t *testing.T) {
	r := NewRNG(19)
	alpha := []float64{0.5, 1, 2, 0.1}
	out := make([]float64, 4)
	for i := 0; i < 100; i++ {
		r.Dirichlet(alpha, out)
		var s float64
		for _, v := range out {
			if v < 0 {
				t.Fatalf("negative Dirichlet component %v", v)
			}
			s += v
		}
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("Dirichlet sum = %v", s)
		}
	}
}

func TestPoissonMean(t *testing.T) {
	r := NewRNG(23)
	for _, mean := range []float64{0.5, 3, 10, 50} {
		const n = 30000
		var s float64
		for i := 0; i < n; i++ {
			s += float64(r.Poisson(mean))
		}
		got := s / n
		if math.Abs(got-mean) > 0.05*mean+0.05 {
			t.Fatalf("Poisson(%v) mean = %v", mean, got)
		}
	}
}

func TestPoissonNonNegativeQuick(t *testing.T) {
	r := NewRNG(29)
	f := func(m uint8) bool {
		return r.Poisson(float64(m)) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBoolProbability(t *testing.T) {
	r := NewRNG(31)
	const n = 100000
	c := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			c++
		}
	}
	frac := float64(c) / n
	if math.Abs(frac-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) frequency = %v", frac)
	}
}
