package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", L("code", "200"))
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters only go up
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("requests_total", L("code", "200")); again != c {
		t.Fatal("get-or-create returned a different handle")
	}
	if other := r.Counter("requests_total", L("code", "500")); other == c {
		t.Fatal("distinct label values share a handle")
	}

	g := r.Gauge("temperature")
	g.Set(20)
	g.Add(2.5)
	if got := g.Value(); got != 22.5 {
		t.Fatalf("gauge = %v, want 22.5", got)
	}
}

func TestLabelOrderCanonical(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("m", L("x", "1"), L("y", "2"))
	b := r.Counter("m", L("y", "2"), L("x", "1"))
	if a != b {
		t.Fatal("label order changed metric identity")
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Inc()
	g := r.Gauge("y")
	g.Set(1)
	h := r.Histogram("z", nil)
	h.Observe(1)
	r.GaugeFunc("f", func() float64 { return 1 })
	r.Describe("x", "help")
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("nil handles must read as zero")
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil || sb.Len() != 0 {
		t.Fatalf("nil registry exposition: %q err %v", sb.String(), err)
	}
	if snap := r.Snapshot(); len(snap) != 0 {
		t.Fatalf("nil registry snapshot: %v", snap)
	}
	var sp Span
	if sp.End() != 0 {
		t.Fatal("zero span must be a no-op")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge must panic")
		}
	}()
	r.Gauge("m")
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 106 {
		t.Fatalf("sum = %v, want 106", h.Sum())
	}
	// Bucket semantics are le (<=): 1 lands in le=1, 100 only in +Inf.
	want := []int64{2, 3, 4} // cumulative per bound
	var cum int64
	for i := range h.upper {
		cum += h.counts[i].Load()
		if cum != want[i] {
			t.Fatalf("bucket le=%v cumulative = %d, want %d", h.upper[i], cum, want[i])
		}
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(0.001, 10, 4)
	want := []float64{0.001, 0.01, 0.1, 1}
	if len(b) != len(want) {
		t.Fatalf("buckets = %v", b)
	}
	for i := range b {
		if diff := b[i] - want[i]; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("buckets = %v, want %v", b, want)
		}
	}
	if ExpBuckets(0, 10, 4) != nil || ExpBuckets(1, 1, 4) != nil || ExpBuckets(1, 10, 0) != nil {
		t.Fatal("degenerate ExpBuckets inputs must return nil")
	}
}

func TestSpanObserves(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("op_seconds", DefBuckets)
	sp := StartSpan(h)
	time.Sleep(time.Millisecond)
	if d := sp.End(); d <= 0 {
		t.Fatalf("span duration = %v", d)
	}
	Timed(h, func() {})
	if h.Count() != 2 || h.Sum() <= 0 {
		t.Fatalf("histogram after spans: count=%d sum=%v", h.Count(), h.Sum())
	}
}

// TestConcurrentRegistry exercises creation, updates and scraping from
// many goroutines at once; run under -race.
func TestConcurrentRegistry(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("callback", func() float64 {
		// A callback that itself uses the registry must not deadlock
		// (exposition evaluates callbacks outside the registry lock).
		return float64(r.Counter("shared_total").Value())
	})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Counter("shared_total").Inc()
				r.Counter("shared_total", L("worker", string(rune('a'+g)))).Inc()
				r.Gauge("level").Set(float64(i))
				r.Histogram("lat", DefBuckets).Observe(float64(i) / 1000)
				if i%100 == 0 {
					var sb strings.Builder
					if err := r.WritePrometheus(&sb); err != nil {
						t.Error(err)
						return
					}
					r.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	if got := r.Counter("shared_total").Value(); got != 8*500 {
		t.Fatalf("shared counter = %d, want %d", got, 8*500)
	}
	if got := r.Histogram("lat", nil).Count(); got != 8*500 {
		t.Fatalf("histogram count = %d, want %d", got, 8*500)
	}
}
