// Package server implements the experiment back-end of paper Section 5:
// an HTTP service that receives hostname reports from instrumented
// clients (the paper's Chrome extension), maintains the visit store,
// retrains the embedding model on demand (the paper retrained daily),
// profiles the reporting user's last T minutes and answers with a list
// of relevant ads; a second endpoint collects impression/click feedback
// so campaign CTR can be read off the back-end.
//
// The wire format is JSON over HTTP — the paper's extension spoke to its
// back-end over TLS the same way.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"

	"hostprof/internal/ads"
	"hostprof/internal/core"
	"hostprof/internal/ontology"
	"hostprof/internal/trace"
)

// Config assembles a Backend.
type Config struct {
	// Ontology supplies labels (required).
	Ontology *ontology.Ontology
	// AdDB is the replacement-ad inventory (required).
	AdDB *ads.DB
	// Blocklist filters tracker hostnames from reports (optional).
	Blocklist *ontology.Blocklist
	// Train configures (re)training.
	Train core.TrainConfig
	// Profile configures session profiling.
	Profile core.ProfilerConfig
	// SessionWindow is T in seconds (default 1200, the paper's 20 min).
	SessionWindow int64
	// AdsPerReport is how many ads each report answer carries
	// (default 20, paper Section 5.3).
	AdsPerReport int
}

// Backend is the profiling/ad server. All methods are safe for
// concurrent use.
type Backend struct {
	cfg Config

	mu       sync.Mutex
	visits   *trace.Trace
	profiler *core.Profiler
	selector *ads.Selector

	// campaign statistics
	impressions map[string]int64 // by source: "eavesdropper" / "original"
	clicks      map[string]int64
}

// New validates cfg and returns an empty backend. Ads are indexed
// immediately; the model does not exist until the first Retrain.
func New(cfg Config) (*Backend, error) {
	if cfg.Ontology == nil {
		return nil, errors.New("server: config requires an ontology")
	}
	if cfg.AdDB == nil {
		return nil, errors.New("server: config requires an ad inventory")
	}
	if cfg.SessionWindow <= 0 {
		cfg.SessionWindow = 20 * 60
	}
	if cfg.AdsPerReport <= 0 {
		cfg.AdsPerReport = 20
	}
	sel, err := ads.NewSelector(cfg.AdDB, cfg.Ontology, 20)
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	return &Backend{
		cfg:         cfg,
		visits:      trace.New(nil),
		selector:    sel,
		impressions: make(map[string]int64),
		clicks:      make(map[string]int64),
	}, nil
}

// Retrain fits a fresh embedding on every per-user-day sequence stored so
// far and swaps in a new profiler (the paper's daily retraining step).
func (b *Backend) Retrain() error {
	b.mu.Lock()
	corpus := b.visits.AllSequences()
	b.mu.Unlock()
	model, err := core.Train(corpus, b.cfg.Train)
	if err != nil {
		return fmt.Errorf("server: retrain: %w", err)
	}
	prof := core.NewProfiler(model, b.cfg.Ontology, b.cfg.Profile)
	b.mu.Lock()
	b.profiler = prof
	b.mu.Unlock()
	return nil
}

// report ingests one extension report and returns the replacement-ad
// list for the user's current profile.
func (b *Backend) report(userID int, now int64, hosts []string) ([]ads.Ad, error) {
	b.mu.Lock()
	for i, h := range hosts {
		if b.cfg.Blocklist != nil && b.cfg.Blocklist.Contains(h) {
			continue
		}
		// Hosts within one report share the report timestamp; order is
		// preserved by a strictly increasing sub-second offset encoded
		// in visit order (trace sorting is stable).
		b.visits.Append(trace.Visit{User: userID, Time: now, Host: hosts[i]})
	}
	session := b.visits.Session(userID, now, b.cfg.SessionWindow)
	prof := b.profiler
	b.mu.Unlock()

	if prof == nil {
		return nil, errNotTrained
	}
	profile, err := prof.ProfileSession(session)
	if err != nil {
		return nil, err
	}
	b.mu.Lock()
	list := b.selector.Select(profile, b.cfg.AdsPerReport)
	b.mu.Unlock()
	return list, nil
}

var errNotTrained = errors.New("server: model not trained yet")

// observeImpression records one displayed ad.
func (b *Backend) observeImpression(source string, clicked bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.impressions[source]++
	if clicked {
		b.clicks[source]++
	}
}

// Stats is the back-end's aggregate view.
type Stats struct {
	Visits      int                `json:"visits"`
	Users       int                `json:"users"`
	Trained     bool               `json:"trained"`
	VocabSize   int                `json:"vocab_size"`
	Impressions map[string]int64   `json:"impressions"`
	Clicks      map[string]int64   `json:"clicks"`
	CTRPercent  map[string]float64 `json:"ctr_percent"`
}

// CurrentStats snapshots the backend state.
func (b *Backend) CurrentStats() Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	st := Stats{
		Visits:      b.visits.Len(),
		Users:       len(b.visits.Users()),
		Trained:     b.profiler != nil,
		Impressions: make(map[string]int64, len(b.impressions)),
		Clicks:      make(map[string]int64, len(b.clicks)),
		CTRPercent:  make(map[string]float64, len(b.impressions)),
	}
	if b.profiler != nil {
		st.VocabSize = b.profiler.Model().Vocab().Len()
	}
	for k, v := range b.impressions {
		st.Impressions[k] = v
		st.Clicks[k] = b.clicks[k]
		if v > 0 {
			st.CTRPercent[k] = 100 * float64(b.clicks[k]) / float64(v)
		}
	}
	return st
}

// --- HTTP layer ---------------------------------------------------------

// ReportRequest is the extension's periodic hostname report.
type ReportRequest struct {
	User  int      `json:"user"`
	Time  int64    `json:"time"`
	Hosts []string `json:"hosts"`
}

// WireAd is one replacement creative in a report response.
type WireAd struct {
	ID      int    `json:"id"`
	Landing string `json:"landing"`
	W       int    `json:"w"`
	H       int    `json:"h"`
}

// ReportResponse carries the replacement-ad list.
type ReportResponse struct {
	Ads []WireAd `json:"ads"`
}

// FeedbackRequest records an impression or click.
type FeedbackRequest struct {
	User    int    `json:"user"`
	AdID    int    `json:"ad_id"`
	Source  string `json:"source"` // "eavesdropper" or "original"
	Clicked bool   `json:"clicked"`
}

// Handler returns the backend's HTTP API:
//
//	POST /v1/report     ReportRequest  → ReportResponse
//	POST /v1/feedback   FeedbackRequest → 204
//	POST /v1/retrain    (empty)        → 204
//	GET  /v1/stats      → Stats
func (b *Backend) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/report", b.handleReport)
	mux.HandleFunc("POST /v1/feedback", b.handleFeedback)
	mux.HandleFunc("POST /v1/retrain", b.handleRetrain)
	mux.HandleFunc("GET /v1/stats", b.handleStats)
	return mux
}

const maxBodyBytes = 1 << 20

func decodeJSON(w http.ResponseWriter, r *http.Request, dst any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		http.Error(w, fmt.Sprintf("bad request: %v", err), http.StatusBadRequest)
		return false
	}
	return true
}

func (b *Backend) handleReport(w http.ResponseWriter, r *http.Request) {
	var req ReportRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if len(req.Hosts) == 0 {
		http.Error(w, "empty host list", http.StatusBadRequest)
		return
	}
	list, err := b.report(req.User, req.Time, req.Hosts)
	switch {
	case errors.Is(err, errNotTrained):
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	case errors.Is(err, core.ErrNoLabels), errors.Is(err, core.ErrEmptySession):
		// Profiling undefined for this session: legitimate, no ads.
		list = nil
	case err != nil:
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	resp := ReportResponse{Ads: make([]WireAd, 0, len(list))}
	for _, ad := range list {
		resp.Ads = append(resp.Ads, WireAd{
			ID: ad.ID, Landing: ad.LandingHost, W: ad.Size.W, H: ad.Size.H,
		})
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		// Response already committed; nothing safe to do.
		return
	}
}

func (b *Backend) handleFeedback(w http.ResponseWriter, r *http.Request) {
	var req FeedbackRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if req.Source != "eavesdropper" && req.Source != "original" {
		http.Error(w, "source must be eavesdropper or original", http.StatusBadRequest)
		return
	}
	b.observeImpression(req.Source, req.Clicked)
	w.WriteHeader(http.StatusNoContent)
}

func (b *Backend) handleRetrain(w http.ResponseWriter, r *http.Request) {
	if err := b.Retrain(); err != nil {
		if errors.Is(err, core.ErrEmptyCorpus) {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (b *Backend) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(b.CurrentStats()); err != nil {
		return
	}
}
