// Command benchjson converts `go test -bench` output read from stdin
// into a JSON array on stdout, so benchmark trajectories can be tracked
// machine-readably across PRs (see `make bench-json`) and gated with
// `hostprof bench-diff`.
//
// Each benchmark line
//
//	BenchmarkTrain/workers=4-8   10   11131 ns/op   42 B/op   2 allocs/op
//
// becomes
//
//	{"name":"Train/workers=4","procs":8,"iterations":10,
//	 "metrics":{"ns/op":11131,"B/op":42,"allocs/op":2}}
//
// Custom benchmark metrics (b.ReportMetric) are carried through under
// their reported unit names.
package main

import (
	"encoding/json"
	"fmt"
	"os"

	"hostprof/internal/benchfmt"
)

func main() {
	results, err := benchfmt.Parse(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}
