// Package fault is a zero-dependency failure-injection harness for
// chaos testing. Production code calls Inject at named points (store
// writes, training epochs, HTTP handlers); the call is a single atomic
// load unless a test has armed a hook, so the instrumented hot paths
// pay nothing in normal operation.
//
// The package is test-only by contract: nothing in the serving stack
// ever arms a hook, so a production binary can never inject a fault
// into itself. Tests arm hooks with Set/SetN, typically built from the
// Error, Latency and Panic constructors, and must Reset (or Clear) them
// before finishing — hooks are process-global.
package fault

import (
	"sync"
	"sync/atomic"
	"time"
)

// Injection points wired through the serving stack. HTTP handler points
// are derived with HTTPPoint.
const (
	// StoreWALAppend fires before every WAL write and before every
	// degraded-mode re-attach probe, so an armed error keeps the store
	// degraded until cleared.
	StoreWALAppend = "store/wal-append"
	// TrainEpoch fires at the start of every training epoch.
	TrainEpoch = "core/train-epoch"
)

// HTTPPoint names the injection point of one HTTP endpoint handler
// (e.g. HTTPPoint("report") for /v1/report).
func HTTPPoint(endpoint string) string { return "http/" + endpoint }

// entry is one armed hook.
type entry struct {
	fn        func() error
	remaining int // shots left; < 0 means unlimited
	hits      int
}

var (
	armed atomic.Bool
	mu    sync.Mutex
	hooks map[string]*entry
)

// Inject fires the hook armed at point, if any. With no hook armed
// anywhere it is one atomic load and a branch. A non-nil return is the
// injected failure; hooks may also sleep (latency injection) or panic.
func Inject(point string) error {
	if !armed.Load() {
		return nil
	}
	mu.Lock()
	e := hooks[point]
	if e == nil || e.remaining == 0 {
		mu.Unlock()
		return nil
	}
	if e.remaining > 0 {
		e.remaining--
	}
	e.hits++
	fn := e.fn
	mu.Unlock()
	return fn()
}

// Set arms fn at point for an unlimited number of injections.
func Set(point string, fn func() error) { SetN(point, -1, fn) }

// SetN arms fn at point for the next n injections (n < 0 = unlimited);
// after n firings the hook goes dormant but still counts as armed until
// cleared.
func SetN(point string, n int, fn func() error) {
	mu.Lock()
	defer mu.Unlock()
	if hooks == nil {
		hooks = make(map[string]*entry)
	}
	hooks[point] = &entry{fn: fn, remaining: n}
	armed.Store(true)
}

// Clear disarms point; when the last hook is cleared the fast path goes
// back to a single atomic load.
func Clear(point string) {
	mu.Lock()
	defer mu.Unlock()
	delete(hooks, point)
	if len(hooks) == 0 {
		armed.Store(false)
	}
}

// Reset disarms every hook. Tests that arm hooks should register it
// with t.Cleanup.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	hooks = nil
	armed.Store(false)
}

// Hits returns how many times the hook at point has fired since it was
// armed.
func Hits(point string) int {
	mu.Lock()
	defer mu.Unlock()
	if e := hooks[point]; e != nil {
		return e.hits
	}
	return 0
}

// Error returns a hook that fails with err.
func Error(err error) func() error {
	return func() error { return err }
}

// Latency returns a hook that sleeps for d and succeeds — injected slow
// I/O rather than failed I/O.
func Latency(d time.Duration) func() error {
	return func() error { time.Sleep(d); return nil }
}

// Panic returns a hook that panics with msg, for exercising recovery
// paths.
func Panic(msg string) func() error {
	return func() error { panic("fault: " + msg) }
}
