package sniffer

import (
	"strings"
	"sync"
	"testing"

	obspkg "hostprof/internal/obs"
	"hostprof/internal/trace"
)

// An observer wired to a registry must export its counters under
// hostprof_sniffer_* names, matching the Stats snapshot.
func TestObserverExportsMetrics(t *testing.T) {
	tr := makeTrace(
		trace.Visit{User: 1, Time: 100, Host: "alpha.example"},
		trace.Visit{User: 2, Time: 150, Host: "beta.example"},
	)
	syn := NewSynthesizer(WireConfig{Channel: ChannelTLS, Seed: 4})
	cap, err := syn.SynthesizeTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	reg := obspkg.NewRegistry()
	obs := NewObserver(ObserverConfig{Metrics: reg})
	obs.ObserveAll(cap.Packets, cap.Times)

	st := obs.Stats()
	if got := reg.Counter("hostprof_sniffer_visits_total", obspkg.L("channel", "tls")).Value(); got != st.TLSVisits || got != 2 {
		t.Fatalf("tls visits counter = %d, stats = %d, want 2", got, st.TLSVisits)
	}
	if got := reg.Counter("hostprof_sniffer_packets_total").Value(); got != st.Packets || got == 0 {
		t.Fatalf("packets counter = %d, stats = %d", got, st.Packets)
	}
	if got := reg.Gauge("hostprof_sniffer_flows_active").Value(); got != float64(obs.ActiveFlows()) {
		t.Fatalf("flows gauge = %v, active = %d", got, obs.ActiveFlows())
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `hostprof_sniffer_visits_total{channel="tls"} 2`) {
		t.Fatalf("exposition missing sniffer counters:\n%s", sb.String())
	}
}

// Stats must be safe to call while another goroutine is processing
// packets (the serve path scrapes /metrics concurrently with ingest);
// run under -race.
func TestObserverStatsConcurrentWithProcessing(t *testing.T) {
	tr := makeTrace(
		trace.Visit{User: 1, Time: 100, Host: "alpha.example"},
		trace.Visit{User: 2, Time: 150, Host: "beta.example"},
	)
	syn := NewSynthesizer(WireConfig{Channel: ChannelTLS, Seed: 5})
	cap, err := syn.SynthesizeTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	obs := NewObserver(ObserverConfig{})
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
				_ = obs.Stats()
			}
		}
	}()
	for i := 0; i < 200; i++ {
		for j, pkt := range cap.Packets {
			obs.ProcessPacket(pkt, cap.Times[j])
		}
	}
	close(done)
	wg.Wait()
	if obs.Stats().TLSVisits == 0 {
		t.Fatal("no visits observed")
	}
}
