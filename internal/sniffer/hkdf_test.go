package sniffer

import (
	"bytes"
	"encoding/hex"
	"testing"
)

// RFC 5869 Appendix A, Test Case 1 (SHA-256).
func TestHKDFRFC5869Case1(t *testing.T) {
	ikm := mustHex(t, "0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b")
	salt := mustHex(t, "000102030405060708090a0b0c")
	info := mustHex(t, "f0f1f2f3f4f5f6f7f8f9")
	prk := hkdfExtract(salt, ikm)
	wantPRK := mustHex(t, "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5")
	if !bytes.Equal(prk, wantPRK) {
		t.Fatalf("PRK = %x", prk)
	}
	okm := hkdfExpand(prk, info, 42)
	wantOKM := mustHex(t, "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865")
	if !bytes.Equal(okm, wantOKM) {
		t.Fatalf("OKM = %x", okm)
	}
}

// RFC 5869 Appendix A, Test Case 2 (longer inputs/outputs).
func TestHKDFRFC5869Case2(t *testing.T) {
	ikm := mustHex(t, "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f202122232425262728292a2b2c2d2e2f303132333435363738393a3b3c3d3e3f404142434445464748494a4b4c4d4e4f")
	salt := mustHex(t, "606162636465666768696a6b6c6d6e6f707172737475767778797a7b7c7d7e7f808182838485868788898a8b8c8d8e8f909192939495969798999a9b9c9d9e9fa0a1a2a3a4a5a6a7a8a9aaabacadaeaf")
	info := mustHex(t, "b0b1b2b3b4b5b6b7b8b9babbbcbdbebfc0c1c2c3c4c5c6c7c8c9cacbcccdcecfd0d1d2d3d4d5d6d7d8d9dadbdcdddedfe0e1e2e3e4e5e6e7e8e9eaebecedeeeff0f1f2f3f4f5f6f7f8f9fafbfcfdfeff")
	prk := hkdfExtract(salt, ikm)
	okm := hkdfExpand(prk, info, 82)
	want := mustHex(t, "b11e398dc80327a1c8e7f78c596a49344f012eda2d4efad8a050cc4c19afa97c59045a99cac7827271cb41c65e590e09da3275600c2f09b8367793a9aca3db71cc30c58179ec3e87c14c01d5c1f3434f1d87")
	if !bytes.Equal(okm, want) {
		t.Fatalf("OKM = %x", okm)
	}
}

// RFC 5869 Appendix A, Test Case 3 (zero-length salt/info).
func TestHKDFRFC5869Case3(t *testing.T) {
	ikm := mustHex(t, "0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b")
	prk := hkdfExtract(nil, ikm)
	okm := hkdfExpand(prk, nil, 42)
	want := mustHex(t, "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d9d201395faa4b61a96c8")
	if !bytes.Equal(okm, want) {
		t.Fatalf("OKM = %x", okm)
	}
}

func TestHKDFExpandLabelStructure(t *testing.T) {
	secret := mustHex(t, "33ad0a1c607ec03b09e6cd9893680ce210adf300aa1f2660e1b22e10f170f92a")
	// Different labels must give different keys; same inputs identical.
	a := hkdfExpandLabel(secret, "quic key", nil, 16)
	b := hkdfExpandLabel(secret, "quic hp", nil, 16)
	c := hkdfExpandLabel(secret, "quic key", nil, 16)
	if bytes.Equal(a, b) {
		t.Fatal("different labels gave identical output")
	}
	if !bytes.Equal(a, c) {
		t.Fatal("same label not deterministic")
	}
	if len(hkdfExpandLabel(secret, "x", nil, 57)) != 57 {
		t.Fatal("wrong output length")
	}
}

func mustHex(t *testing.T, s string) []byte {
	t.Helper()
	b, err := hex.DecodeString(s)
	if err != nil {
		t.Fatal(err)
	}
	return b
}
