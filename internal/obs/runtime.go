package obs

import (
	"runtime"
	"sync"
	"time"
)

// memStatsSampler caches runtime.ReadMemStats reads so one scrape of
// several heap gauges pays for a single (stop-the-world) collection,
// and back-to-back scrapes within a second share it.
type memStatsSampler struct {
	mu   sync.Mutex
	at   time.Time
	stat runtime.MemStats
}

func (s *memStatsSampler) read() runtime.MemStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	if now := time.Now(); now.Sub(s.at) > time.Second {
		runtime.ReadMemStats(&s.stat)
		s.at = now
	}
	return s.stat
}

// RegisterRuntimeMetrics registers process introspection gauges on r:
// goroutine count, heap in use, cumulative GC pause time, GC cycles and
// GOMAXPROCS. Values are sampled at scrape time; memory statistics are
// cached for a second across gauges. Registering twice (e.g. two
// backends sharing one registry) is safe — the callbacks are simply
// replaced. Safe on a nil *Registry.
func RegisterRuntimeMetrics(r *Registry) {
	if r == nil {
		return
	}
	s := &memStatsSampler{}
	r.Describe("hostprof_go_goroutines", "goroutines currently live in the process")
	r.GaugeFunc("hostprof_go_goroutines", func() float64 {
		return float64(runtime.NumGoroutine())
	})
	r.Describe("hostprof_go_gomaxprocs", "GOMAXPROCS: OS threads usable for Go code")
	r.GaugeFunc("hostprof_go_gomaxprocs", func() float64 {
		return float64(runtime.GOMAXPROCS(0))
	})
	r.Describe("hostprof_go_heap_inuse_bytes", "bytes in in-use heap spans")
	r.GaugeFunc("hostprof_go_heap_inuse_bytes", func() float64 {
		return float64(s.read().HeapInuse)
	})
	r.Describe("hostprof_go_gc_pause_seconds_total", "cumulative stop-the-world GC pause time")
	r.GaugeFunc("hostprof_go_gc_pause_seconds_total", func() float64 {
		return float64(s.read().PauseTotalNs) / 1e9
	})
	r.Describe("hostprof_go_gc_runs_total", "completed GC cycles")
	r.GaugeFunc("hostprof_go_gc_runs_total", func() float64 {
		return float64(s.read().NumGC)
	})
}
