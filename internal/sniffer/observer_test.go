package sniffer

import (
	"testing"

	"hostprof/internal/trace"
)

func makeTrace(visits ...trace.Visit) *trace.Trace { return trace.New(visits) }

func TestObserverRecoversTLSVisits(t *testing.T) {
	tr := makeTrace(
		trace.Visit{User: 1, Time: 100, Host: "alpha.example"},
		trace.Visit{User: 2, Time: 150, Host: "beta.example"},
		trace.Visit{User: 1, Time: 200, Host: "gamma.example"},
	)
	syn := NewSynthesizer(WireConfig{Channel: ChannelTLS, Seed: 1})
	cap, err := syn.SynthesizeTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	obs := NewObserver(ObserverConfig{})
	got := obs.ObserveAll(cap.Packets, cap.Times)
	if got.Len() != 3 {
		t.Fatalf("recovered %d visits, want 3", got.Len())
	}
	want := tr.Visits()
	for i, v := range got.Visits() {
		if v != want[i] {
			t.Fatalf("visit %d = %+v, want %+v", i, v, want[i])
		}
	}
	if obs.Stats().TLSVisits != 3 {
		t.Fatalf("stats: %+v", obs.Stats())
	}
}

func TestObserverRecoversSplitClientHello(t *testing.T) {
	tr := makeTrace(trace.Visit{User: 3, Time: 10, Host: "split.example"})
	syn := NewSynthesizer(WireConfig{Channel: ChannelTLS, SplitProb: 1.0, Seed: 2})
	cap, err := syn.SynthesizeTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	obs := NewObserver(ObserverConfig{})
	got := obs.ObserveAll(cap.Packets, cap.Times)
	if got.Len() != 1 || got.Visits()[0].Host != "split.example" {
		t.Fatalf("recovered %v", got.Visits())
	}
}

func TestObserverRecoversQUIC(t *testing.T) {
	tr := makeTrace(
		trace.Visit{User: 4, Time: 20, Host: "quic1.example"},
		trace.Visit{User: 4, Time: 30, Host: "quic2.example"},
	)
	syn := NewSynthesizer(WireConfig{Channel: ChannelQUIC, Seed: 3})
	cap, err := syn.SynthesizeTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	obs := NewObserver(ObserverConfig{})
	got := obs.ObserveAll(cap.Packets, cap.Times)
	if got.Len() != 2 {
		t.Fatalf("recovered %d visits", got.Len())
	}
	if obs.Stats().QUICVisits != 2 {
		t.Fatalf("stats: %+v", obs.Stats())
	}
}

func TestObserverRecoversDNS(t *testing.T) {
	tr := makeTrace(trace.Visit{User: 5, Time: 40, Host: "dns.example"})
	syn := NewSynthesizer(WireConfig{Channel: ChannelDNS, Seed: 4})
	cap, err := syn.SynthesizeTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	obs := NewObserver(ObserverConfig{})
	got := obs.ObserveAll(cap.Packets, cap.Times)
	if got.Len() != 1 || got.Visits()[0].Host != "dns.example" {
		t.Fatalf("recovered %v", got.Visits())
	}
	if obs.Stats().DNSVisits != 1 {
		t.Fatalf("stats: %+v", obs.Stats())
	}
}

// The paper's key real-world claim (Section 7.2): the observer obtains the
// same hostname sequence whether the client uses HTTPS, QUIC or plain DNS.
func TestObserverChannelEquivalence(t *testing.T) {
	visits := []trace.Visit{
		{User: 7, Time: 10, Host: "one.example"},
		{User: 7, Time: 20, Host: "two.example"},
		{User: 8, Time: 30, Host: "three.example"},
	}
	var got [3][]trace.Visit
	for i, ch := range []Channel{ChannelTLS, ChannelQUIC, ChannelDNS} {
		syn := NewSynthesizer(WireConfig{Channel: ch, Seed: uint64(10 + i)})
		cap, err := syn.SynthesizeTrace(makeTrace(visits...))
		if err != nil {
			t.Fatal(err)
		}
		obs := NewObserver(ObserverConfig{})
		got[i] = obs.ObserveAll(cap.Packets, cap.Times).Visits()
	}
	for i := 1; i < 3; i++ {
		if len(got[i]) != len(got[0]) {
			t.Fatalf("channel %d recovered %d visits, channel 0 %d", i, len(got[i]), len(got[0]))
		}
		for j := range got[0] {
			if got[i][j] != got[0][j] {
				t.Fatalf("channel %d visit %d = %+v, want %+v", i, j, got[i][j], got[0][j])
			}
		}
	}
}

func TestObserverMixedChannel(t *testing.T) {
	var visits []trace.Visit
	for i := 0; i < 60; i++ {
		visits = append(visits, trace.Visit{User: i % 5, Time: int64(i * 10), Host: "mixed.example"})
	}
	syn := NewSynthesizer(WireConfig{Channel: ChannelMixed, Seed: 9})
	cap, err := syn.SynthesizeTrace(makeTrace(visits...))
	if err != nil {
		t.Fatal(err)
	}
	obs := NewObserver(ObserverConfig{})
	got := obs.ObserveAll(cap.Packets, cap.Times)
	if got.Len() != 60 {
		t.Fatalf("recovered %d/60 visits", got.Len())
	}
	if obs.Stats().TLSVisits == 0 || obs.Stats().QUICVisits == 0 || obs.Stats().DNSVisits == 0 {
		t.Fatalf("mixed channel skipped a transport: %+v", obs.Stats())
	}
}

func TestObserverIgnoresGarbageAndServerTraffic(t *testing.T) {
	obs := NewObserver(ObserverConfig{})
	if _, ok := obs.ProcessPacket([]byte{1, 2, 3}, 0); ok {
		t.Fatal("garbage produced a visit")
	}
	if obs.Stats().Undecodable != 1 {
		t.Fatalf("stats: %+v", obs.Stats())
	}
	// Server→client TCP (src port 443) must be ignored.
	pkt := tcpFrame([4]byte{93, 0, 0, 1}, [4]byte{10, 0, 1, 1}, 443, 50000, 1, 1, TCPFlagACK, []byte("x"))
	if _, ok := obs.ProcessPacket(pkt, 0); ok {
		t.Fatal("server-side traffic produced a visit")
	}
	// Non-TLS TCP port ignored.
	pkt = tcpFrame([4]byte{10, 0, 1, 1}, [4]byte{93, 0, 0, 1}, 50000, 80, 1, 1, TCPFlagACK, []byte("GET /"))
	if _, ok := obs.ProcessPacket(pkt, 0); ok {
		t.Fatal("port-80 traffic produced a visit")
	}
}

func TestObserverAbandonsNonTLSFlows(t *testing.T) {
	obs := NewObserver(ObserverConfig{})
	src, dst := [4]byte{10, 0, 1, 1}, [4]byte{93, 0, 0, 1}
	// HTTP bytes on port 443: flow should be marked done, not buffered
	// forever.
	pkt := tcpFrame(src, dst, 50000, 443, 1, 1, TCPFlagACK|TCPFlagPSH, []byte("GET / HTTP/1.1\r\n"))
	if _, ok := obs.ProcessPacket(pkt, 0); ok {
		t.Fatal("HTTP produced a visit")
	}
	if obs.ActiveFlows() != 1 {
		t.Fatalf("flows = %d", obs.ActiveFlows())
	}
	// More data on the same flow is ignored cheaply.
	pkt2 := tcpFrame(src, dst, 50000, 443, 17, 1, TCPFlagACK|TCPFlagPSH, []byte("Host: x\r\n\r\n"))
	if _, ok := obs.ProcessPacket(pkt2, 1); ok {
		t.Fatal("follow-up data produced a visit")
	}
}

func TestObserverCustomUserMapping(t *testing.T) {
	tr := makeTrace(trace.Visit{User: 300, Time: 5, Host: "u.example"})
	syn := NewSynthesizer(WireConfig{Channel: ChannelTLS, Seed: 21})
	cap, err := syn.SynthesizeTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	obs := NewObserver(ObserverConfig{
		UserOf: func(a [16]byte) int { return int(a[1])<<8 | int(a[2]) },
	})
	got := obs.ObserveAll(cap.Packets, cap.Times)
	if got.Len() != 1 || got.Visits()[0].User != 300 {
		t.Fatalf("got %v", got.Visits())
	}
}

func TestUserAddrRoundTrip(t *testing.T) {
	for _, u := range []int{0, 1, 255, 256, 4095, 65535} {
		a := userAddr(u)
		var full [16]byte
		copy(full[:4], a[:])
		full[15] = 4
		got := int(full[1])<<8 | int(full[2])
		if got != u {
			t.Fatalf("user %d round-trips to %d", u, got)
		}
	}
}
