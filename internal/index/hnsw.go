// Approximate nearest-neighbour search over a packed Index: a
// Hierarchical Navigable Small World graph (Malkov & Yashunin, 2018)
// built from the same unit-normalized float32 rows the exact scan
// reads, answering Eq. (3) neighbourhood queries in time roughly
// logarithmic in the vocabulary instead of linear.
//
// Determinism. The exact index promises bit-identical results for any
// worker count; the ANN layer keeps that promise by construction:
//
//   - Node levels are a pure function of (seed, row) — a splitmix64
//     hash fed through the standard exponential level formula — so the
//     layer assignment never depends on timing or insertion order.
//   - The graph is built by inserting rows in ascending row order on a
//     single goroutine; every candidate heap and neighbour-selection
//     pass compares entries under the same (score desc, row asc) total
//     order the exact scan uses, so equal-score choices are stable.
//   - Queries are sequential over the frozen graph; the `workers`
//     argument only parallelizes the exact-scan fallback, which is
//     itself deterministic for any worker count.
//
// Two builds over the same rows therefore produce identical graphs,
// and a query returns bit-identical results however often it is
// repeated and whatever GOMAXPROCS is.
//
// Fallback rules. The graph cannot always meet the recall contract,
// and in each such case the query transparently falls back to the
// exact scan (reported to the caller, counted by the profiler's
// hostprof_index_ann_fallbacks_total):
//
//   - the graph is empty, or k reaches the graph size (the scan is
//     exact at equal cost);
//   - the graph holds no more rows than the search breadth ef (the
//     ANN walk would touch most of them anyway, without a guarantee);
//   - the search returned fewer than k rows (disconnected remnant or
//     over-excluded candidate set);
//   - some rows were rejected at insert (zero or non-finite vectors)
//     and the k-th ANN score is not positive — an unindexed zero row
//     scores exactly 0 in the exact order and could outrank it.
//
// Rows whose packed vector is zero or contains a non-finite value are
// rejected at insert: they have no usable direction to navigate by.
// They remain visible to the exact scan, which the fallback rule above
// accounts for.
package index

import (
	"math"
	"sync"
	"time"
)

// ANNConfig tunes the HNSW graph. The zero value selects defaults
// matching the HNSW paper's recommended operating point.
type ANNConfig struct {
	// M is the maximum neighbour count per node on layers above the
	// base; layer 0 keeps 2M. Default 16.
	M int
	// EfConstruction is the candidate-list breadth while inserting a
	// node. Larger builds a better graph, slower. Default 100.
	EfConstruction int
	// Ef is the default search breadth: the size of the dynamic
	// candidate list per query. Raised to at least k per query.
	// Default 128.
	Ef int
	// Seed feeds the deterministic level assignment. Two builds over
	// the same rows and seed produce identical graphs.
	Seed uint64
}

// maxANNLevel caps node levels; P(level > 24) at M=16 is ~2^-96.
const maxANNLevel = 24

func (c ANNConfig) withDefaults() ANNConfig {
	if c.M <= 1 {
		c.M = 16
	}
	if c.EfConstruction <= 0 {
		c.EfConstruction = 100
	}
	if c.Ef <= 0 {
		c.Ef = 128
	}
	return c
}

// ANN is a frozen HNSW graph over an Index's packed rows. Queries are
// safe for concurrent use; the graph is immutable after BuildANN.
type ANN struct {
	ix  *Index
	cfg ANNConfig
	m0  int     // layer-0 degree cap (2M)
	ml  float64 // level multiplier 1/ln(M)

	entry     int32 // highest-level node, -1 when the graph is empty
	maxLevel  int
	graphRows int // rows inserted into the graph
	unindexed int // rows rejected at insert (zero / non-finite)

	// Flattened adjacency. Row r's layer-l neighbour list lives in
	// nbr[nbrBase[r]+segOff(l) : +cnt[segBase[r]+l]]; capacity is m0
	// for layer 0 and M above. Rows rejected at insert get level -1
	// and zero-width segments.
	levels  []int8
	segBase []int32
	nbrBase []int32
	cnt     []int32
	nbr     []int32

	buildTime time.Duration
	states    sync.Pool // *annState
}

// ANNStats describes a built graph, for metrics and diagnostics.
type ANNStats struct {
	Rows      int // rows in the underlying index
	GraphRows int // rows inserted into the graph
	Unindexed int // rows rejected at insert (zero / non-finite)
	MaxLevel  int // highest populated layer
	Edges     int // directed edges over all layers
	M         int
	Ef        int
	BuildTime time.Duration
}

// BuildANN constructs an HNSW graph over the index's packed rows. The
// build is sequential and deterministic: same rows, same cfg, same
// graph. The index itself is unchanged and keeps serving exact scans.
func (ix *Index) BuildANN(cfg ANNConfig) *ANN {
	start := time.Now()
	cfg = cfg.withDefaults()
	a := &ANN{
		ix:    ix,
		cfg:   cfg,
		m0:    2 * cfg.M,
		ml:    1 / math.Log(float64(cfg.M)),
		entry: -1,
	}
	rows := ix.rows
	a.levels = make([]int8, rows)
	a.segBase = make([]int32, rows+1)
	a.nbrBase = make([]int32, rows+1)
	for r := 0; r < rows; r++ {
		segs, caps := 0, 0
		if a.insertable(int32(r)) {
			l := a.levelFor(r)
			a.levels[r] = int8(l)
			segs, caps = l+1, a.m0+l*cfg.M
		} else {
			a.levels[r] = -1
			a.unindexed++
		}
		a.segBase[r+1] = a.segBase[r] + int32(segs)
		a.nbrBase[r+1] = a.nbrBase[r] + int32(caps)
	}
	a.cnt = make([]int32, a.segBase[rows])
	a.nbr = make([]int32, a.nbrBase[rows])
	st := newAnnState(a)
	for r := 0; r < rows; r++ {
		if a.levels[r] < 0 {
			continue
		}
		a.insert(int32(r), int(a.levels[r]), st)
		a.graphRows++
	}
	a.buildTime = time.Since(start)
	a.states.New = func() any { return newAnnState(a) }
	return a
}

// Stats returns the built graph's shape.
func (a *ANN) Stats() ANNStats {
	edges := 0
	for _, c := range a.cnt {
		edges += int(c)
	}
	return ANNStats{
		Rows:      a.ix.rows,
		GraphRows: a.graphRows,
		Unindexed: a.unindexed,
		MaxLevel:  a.maxLevel,
		Edges:     edges,
		M:         a.cfg.M,
		Ef:        a.cfg.Ef,
		BuildTime: a.buildTime,
	}
}

// Index returns the exact index the graph was built over.
func (a *ANN) Index() *Index { return a.ix }

// insertable reports whether a packed row carries a usable direction:
// finite values, not all zero.
func (a *ANN) insertable(row int32) bool {
	v := a.vec(row)
	nonzero := false
	for _, x := range v {
		if x != 0 {
			nonzero = true
		}
		// NaN and ±Inf both fail the self-subtraction identity.
		if x-x != 0 {
			return false
		}
	}
	return nonzero
}

// levelFor assigns a node level as a pure function of (seed, row):
// splitmix64 output mapped to (0,1], then the exponential level formula
// floor(-ln(u)·mL) of the HNSW paper.
func (a *ANN) levelFor(row int) int {
	z := a.cfg.Seed + (uint64(row)+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	u := (float64(z>>11) + 1) / (1 << 53) // (0, 1]
	l := int(-math.Log(u) * a.ml)
	if l > maxANNLevel {
		l = maxANNLevel
	}
	return l
}

// vec returns row's packed unit vector.
func (a *ANN) vec(row int32) []float32 {
	d := a.ix.dim
	return a.ix.packed[int(row)*d : int(row)*d+d]
}

// capAt returns the neighbour capacity of a segment at layer l.
func (a *ANN) capAt(layer int) int {
	if layer == 0 {
		return a.m0
	}
	return a.cfg.M
}

// segOff returns the offset of layer l's segment within a row's
// neighbour block.
func (a *ANN) segOff(layer int) int32 {
	if layer == 0 {
		return 0
	}
	return int32(a.m0 + (layer-1)*a.cfg.M)
}

// neighborsOf returns row's layer-l neighbour list.
func (a *ANN) neighborsOf(row int32, layer int) []int32 {
	off := a.nbrBase[row] + a.segOff(layer)
	n := a.cnt[a.segBase[row]+int32(layer)]
	return a.nbr[off : off+n]
}

// addLink appends a directed edge from→to at layer l, reporting false
// when the segment is full.
func (a *ANN) addLink(from, to int32, layer int) bool {
	seg := a.segBase[from] + int32(layer)
	c := a.cnt[seg]
	if int(c) >= a.capAt(layer) {
		return false
	}
	a.nbr[a.nbrBase[from]+a.segOff(layer)+c] = to
	a.cnt[seg] = c + 1
	return true
}

// greedy hill-climbs layer l from cur towards the query, following the
// (score desc, row asc) total order so equal-score plateaus resolve
// deterministically and the walk terminates.
func (a *ANN) greedy(q []float32, cur entry, layer int) entry {
	for {
		improved := false
		for _, nb := range a.neighborsOf(cur.row, layer) {
			cand := entry{score: dot32(q, a.vec(nb)), row: nb}
			if worse(cur, cand) {
				cur = cand
				improved = true
			}
		}
		if !improved {
			return cur
		}
	}
}

// searchLayer runs the best-first beam search of the HNSW paper at one
// layer from one entry row, leaving the ef best entries found in
// st.res.
func (a *ANN) searchLayer(q []float32, enter int32, ef, layer int, st *annState) {
	st.seed = st.seed[:0]
	st.seed = append(st.seed, entry{score: dot32(q, a.vec(enter)), row: enter})
	a.searchLayerFrom(q, ef, layer, st)
}

// searchLayerFrom is searchLayer seeded with st.seed — Algorithm 1 of
// the paper hands the whole previous layer's candidate set down as
// entry points while inserting, which matters for recall on corpora
// where the greedy path from a single entry dead-ends early.
func (a *ANN) searchLayerFrom(q []float32, ef, layer int, st *annState) {
	st.nextEpoch()
	st.res.reset(ef)
	st.cand.reset()
	for _, e := range st.seed {
		if st.visited[e.row] == st.epoch {
			continue
		}
		st.visited[e.row] = st.epoch
		st.cand.push(e)
		st.res.offer(e)
	}
	for st.cand.len() > 0 {
		c := st.cand.pop()
		if len(st.res.e) >= ef && worse(c, st.res.e[0]) {
			break // best frontier candidate ranks below the worst kept
		}
		for _, nb := range a.neighborsOf(c.row, layer) {
			if st.visited[nb] == st.epoch {
				continue
			}
			st.visited[nb] = st.epoch
			en := entry{score: dot32(q, a.vec(nb)), row: nb}
			if len(st.res.e) < ef || !worse(en, st.res.e[0]) {
				st.cand.push(en)
				st.res.offer(en)
			}
		}
	}
}

// drainBestFirst empties st.res into st.scratch, best entry first.
func (st *annState) drainBestFirst() []entry {
	n := len(st.res.e)
	if cap(st.scratch) < n {
		st.scratch = make([]entry, n)
	}
	st.scratch = st.scratch[:n]
	for i := n - 1; i >= 0; i-- {
		st.scratch[i] = st.res.pop()
	}
	return st.scratch
}

// selectNeighbors applies the diversity heuristic of HNSW Algorithm 4
// to cands (sorted best-first, scores relative to the node being
// linked): a candidate is kept only if it is closer to the query node
// than to every already-kept neighbour, then remaining slots are filled
// with the pruned candidates in rank order (keepPruned), preserving
// connectivity on uniform data. The result is appended to sel.
func (a *ANN) selectNeighbors(cands []entry, max int, sel []entry) []entry {
	sel = sel[:0]
	if len(cands) <= max {
		return append(sel, cands...)
	}
	for _, c := range cands {
		if len(sel) == max {
			break
		}
		cv := a.vec(c.row)
		diverse := true
		for _, s := range sel {
			if dot32(cv, a.vec(s.row)) > c.score {
				diverse = false
				break
			}
		}
		if diverse {
			sel = append(sel, c)
		}
	}
	for _, c := range cands {
		if len(sel) == max {
			break
		}
		kept := false
		for _, s := range sel {
			if s.row == c.row {
				kept = true
				break
			}
		}
		if !kept {
			sel = append(sel, c)
		}
	}
	return sel
}

// linkBack adds the reverse edge nb→r, pruning nb's neighbour list with
// the same diversity heuristic when it overflows.
func (a *ANN) linkBack(nb, r int32, layer int, st *annState) {
	if a.addLink(nb, r, layer) {
		return
	}
	nv := a.vec(nb)
	st.prune = st.prune[:0]
	for _, o := range a.neighborsOf(nb, layer) {
		st.prune = append(st.prune, entry{score: dot32(nv, a.vec(o)), row: o})
	}
	st.prune = append(st.prune, entry{score: dot32(nv, a.vec(r)), row: r})
	sortEntries(st.prune)
	st.sel2 = a.selectNeighbors(st.prune, a.capAt(layer), st.sel2)
	off := a.nbrBase[nb] + a.segOff(layer)
	for i, e := range st.sel2 {
		a.nbr[off+int32(i)] = e.row
	}
	a.cnt[a.segBase[nb]+int32(layer)] = int32(len(st.sel2))
}

// sortEntries orders a small slice best-first under the shared total
// order (insertion sort: candidate lists are at most m0+1 long).
func sortEntries(e []entry) {
	for i := 1; i < len(e); i++ {
		x := e[i]
		j := i - 1
		for j >= 0 && worse(e[j], x) {
			e[j+1] = e[j]
			j--
		}
		e[j+1] = x
	}
}

// insert adds row r at level lr to the graph (HNSW Algorithm 1).
func (a *ANN) insert(r int32, lr int, st *annState) {
	if a.entry < 0 {
		a.entry = r
		a.maxLevel = lr
		return
	}
	q := a.vec(r)
	cur := entry{score: dot32(q, a.vec(a.entry)), row: a.entry}
	for layer := a.maxLevel; layer > lr; layer-- {
		cur = a.greedy(q, cur, layer)
	}
	top := lr
	if top > a.maxLevel {
		top = a.maxLevel
	}
	st.seed = append(st.seed[:0], cur)
	for layer := top; layer >= 0; layer-- {
		a.searchLayerFrom(q, a.cfg.EfConstruction, layer, st)
		cands := st.drainBestFirst()
		st.sel = a.selectNeighbors(cands, a.capAt(layer), st.sel)
		for _, e := range st.sel {
			a.addLink(r, e.row, layer)
			a.linkBack(e.row, r, layer, st)
		}
		// The whole candidate set seeds the next layer down (Alg. 1).
		st.seed = append(st.seed[:0], cands...)
	}
	if lr > a.maxLevel {
		a.entry = r
		a.maxLevel = lr
	}
}

// Search returns the k rows most similar to query under the ANN graph
// (falling back to the exact scan per the package rules), allocating
// the result slice. Hot paths should use SearchAppend.
func (a *ANN) Search(query []float64, k int) []Result {
	res, _ := a.SearchAppend(nil, query, k, 0, 0, NoExclude)
	return res
}

// SearchAppend appends the approximate top-k rows for query to dst in
// the exact scan's result order — (score desc, ID asc), scores
// bit-identical to the exact index's for the same rows — and reports
// whether the query was answered by the exact-scan fallback. ef
// overrides the configured search breadth (0 keeps the default; always
// raised to at least k). workers bounds exact-fallback parallelism
// only. exclude suppresses one original ID. A zero or non-finite query
// has no defined neighbourhood and returns dst unchanged.
//
// Steady state the ANN path allocates nothing beyond dst growth:
// scratch comes from a pool sized on first use.
func (a *ANN) SearchAppend(dst []Result, query []float64, k, ef, workers int, exclude int32) ([]Result, bool) {
	if k <= 0 || a.ix.rows == 0 {
		return dst, false
	}
	if len(query) != a.ix.dim {
		panic("index: query dimensionality mismatch")
	}
	if ef <= 0 {
		ef = a.cfg.Ef
	}
	if ef < k {
		ef = k
	}
	if exclude != NoExclude && ef < k+1 {
		ef = k + 1 // room to drop the excluded row
	}
	if a.graphRows == 0 || k >= a.graphRows || a.graphRows <= ef {
		return a.ix.SearchAppend(dst, query, k, workers, exclude), true
	}
	st := a.states.Get().(*annState)
	if !st.setQuery(query) {
		a.states.Put(st)
		return dst, false
	}
	cur := entry{score: dot32(st.q, a.vec(a.entry)), row: a.entry}
	for layer := a.maxLevel; layer > 0; layer-- {
		cur = a.greedy(st.q, cur, layer)
	}
	a.searchLayer(st.q, cur.row, ef, 0, st)
	found := st.drainBestFirst()
	exRow := a.ix.rowOf(exclude)
	base := len(dst)
	kept := 0
	for _, e := range found {
		if e.row == exRow {
			continue
		}
		id := e.row
		if a.ix.ids != nil {
			id = a.ix.ids[id]
		}
		dst = append(dst, Result{ID: id, Score: e.score})
		if kept++; kept == k {
			break
		}
	}
	a.states.Put(st)
	if kept < k || (a.unindexed > 0 && dst[len(dst)-1].Score <= 0) {
		// Candidate set too small to meet recall (or an unindexed zero
		// row could outrank the tail): answer exactly instead.
		return a.ix.SearchAppend(dst[:base], query, k, workers, exclude), true
	}
	return dst, false
}

// annState is the pooled scratch of one ANN query or build step.
type annState struct {
	q       []float32
	visited []uint32
	epoch   uint32
	res     topk     // beam of the best ef entries
	cand    frontier // best-first expansion queue
	scratch []entry  // drained beam, best first
	seed    []entry  // entry points handed into searchLayerFrom
	sel     []entry  // forward-link selection
	sel2    []entry  // back-link pruning selection
	prune   []entry  // back-link candidate list
}

func newAnnState(a *ANN) *annState {
	return &annState{
		q:       make([]float32, a.ix.dim),
		visited: make([]uint32, a.ix.rows),
		sel:     make([]entry, 0, a.m0+1),
		sel2:    make([]entry, 0, a.m0+1),
		prune:   make([]entry, 0, a.m0+1),
	}
}

// nextEpoch advances the visited stamp, clearing the array on the
// (effectively unreachable) wraparound.
func (st *annState) nextEpoch() {
	st.epoch++
	if st.epoch == 0 {
		for i := range st.visited {
			st.visited[i] = 0
		}
		st.epoch = 1
	}
}

// setQuery packs query unit-normalized into st.q, mirroring the exact
// scan's normalization bit for bit, and reports false for a zero or
// non-finite query.
func (st *annState) setQuery(query []float64) bool {
	var norm float64
	for _, x := range query {
		norm += x * x
	}
	if norm == 0 || math.IsNaN(norm) || math.IsInf(norm, 0) {
		return false
	}
	inv := 1 / math.Sqrt(norm)
	for i, x := range query {
		st.q[i] = float32(x * inv)
	}
	return true
}

// frontier is a max-heap of entries under the shared total order: pop
// returns the best (highest score, lowest row) entry.
type frontier struct {
	e []entry
}

func (f *frontier) reset()   { f.e = f.e[:0] }
func (f *frontier) len() int { return len(f.e) }

func (f *frontier) push(e entry) {
	f.e = append(f.e, e)
	i := len(f.e) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !worse(f.e[p], f.e[i]) {
			break
		}
		f.e[p], f.e[i] = f.e[i], f.e[p]
		i = p
	}
}

func (f *frontier) pop() entry {
	root := f.e[0]
	n := len(f.e) - 1
	f.e[0] = f.e[n]
	f.e = f.e[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < n && worse(f.e[s], f.e[l]) {
			s = l
		}
		if r < n && worse(f.e[s], f.e[r]) {
			s = r
		}
		if s == i {
			return root
		}
		f.e[i], f.e[s] = f.e[s], f.e[i]
		i = s
	}
}
