package obs_test

import (
	"bytes"
	"context"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hostprof/internal/ads"
	"hostprof/internal/cluster"
	"hostprof/internal/core"
	"hostprof/internal/obs"
	"hostprof/internal/obs/prof"
	"hostprof/internal/obs/tracer"
	"hostprof/internal/server"
	"hostprof/internal/synth"
)

// lintHelp fails on any hostprof_* family exposed without # HELP text
// — the silent-Describe-drift lint. A family shows up in the text
// exposition the moment some code path touches its counter; if nobody
// called Describe for it, dashboards get a bare series with no
// explanation, and nothing else in the build catches that.
func lintHelp(t *testing.T, who string, reg *obs.Registry) {
	t.Helper()
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatalf("%s: write exposition: %v", who, err)
	}
	helped := make(map[string]bool)
	var families []string
	for _, line := range strings.Split(buf.String(), "\n") {
		f := strings.Fields(line)
		if len(f) < 3 {
			continue
		}
		switch f[0] + " " + f[1] {
		case "# HELP":
			helped[f[2]] = true
		case "# TYPE":
			families = append(families, f[2])
		}
	}
	if len(families) == 0 {
		t.Fatalf("%s: exposition is empty; lint exercised nothing", who)
	}
	for _, fam := range families {
		if strings.HasPrefix(fam, "hostprof_") && !helped[fam] {
			t.Errorf("%s exposes %s without # HELP text — add a reg.Describe next to its registration", who, fam)
		}
	}
}

// TestDescribeCoverage builds every metric-producing component on a
// fresh registry, drives enough traffic to materialize the lazily
// created families, and lints each exposition for HELP coverage.
func TestDescribeCoverage(t *testing.T) {
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))
	u := synth.NewUniverse(synth.UniverseConfig{Sites: 60, Trackers: 10, Seed: 3})
	ont := synth.BuildOntology(u, synth.OntologyConfig{Coverage: 0.2, Seed: 5})
	db := ads.BuildFromOntology(ont, ads.BuildConfig{Seed: 7})

	// Backend: tracer, profiler, SLOs and the store all export here.
	breg := obs.NewRegistry()
	profiler := prof.New(prof.Config{Interval: -1, Metrics: breg})
	defer profiler.Stop()
	b, err := server.New(server.Config{
		Ontology:    ont,
		AdDB:        db,
		Train:       core.TrainConfig{Dim: 16, Epochs: 2, MinCount: 1, Workers: 1, Seed: 11, Subsample: -1},
		Profile:     core.ProfilerConfig{N: 30, Agg: core.AggIDF},
		Metrics:     breg,
		Tracer:      tracer.New(tracer.Config{Service: "lint", SampleRate: 1, Metrics: breg}),
		Profiler:    profiler,
		SLOTargets:  map[string]time.Duration{"report": 250 * time.Millisecond},
		SlowRequest: time.Nanosecond, // every request trips the slow path
		Logger:      quiet,
	})
	if err != nil {
		t.Fatal(err)
	}
	bsrv := httptest.NewServer(b.Handler())
	defer bsrv.Close()

	// Shard-side pusher counters ride the same registry.
	pusher := tracer.NewPusher(tracer.PushConfig{
		URL:     bsrv.URL + "/debug/traces",
		Metrics: breg,
		Logger:  quiet,
	})
	pusher.Offer([]tracer.SpanData{{TraceID: "0102030405060708090a0b0c0d0e0f10", SpanID: "0000000000000001", Service: "lint", Name: "x"}})
	defer pusher.Close()

	// Gateway over that backend, with the full observability plane on.
	greg := obs.NewRegistry()
	gw, err := cluster.New(cluster.Config{
		Backends:       []string{bsrv.URL},
		HealthInterval: -1,
		FederationTTL:  time.Nanosecond,
		SLOTargets:     map[string]time.Duration{"report": 250 * time.Millisecond},
		SlowRequest:    time.Nanosecond,
		Metrics:        greg,
		Tracer:         tracer.New(tracer.Config{Service: "lint-gw", SampleRate: 1, Metrics: greg}),
		Logger:         quiet,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()
	gw.CheckHealth(context.Background())
	gsrv := httptest.NewServer(gw.Handler())
	defer gsrv.Close()

	// Traffic through the gateway materializes request counters,
	// latency histograms, SLO gauges, federation and event series on
	// both registries (503 pre-training is fine — it still counts).
	for _, req := range []struct{ method, path, body string }{
		{http.MethodPost, "/v1/report", `{"user":1,"time":1000,"hosts":["a.example","b.example"]}`},
		{http.MethodGet, "/v1/cluster", ""},
		{http.MethodGet, "/v1/cluster/metrics", ""},
		{http.MethodGet, "/v1/cluster/events", ""},
		{http.MethodGet, "/v1/stats", ""},
	} {
		r, err := http.NewRequest(req.method, gsrv.URL+req.path, strings.NewReader(req.body))
		if err != nil {
			t.Fatal(err)
		}
		if req.body != "" {
			r.Header.Set("Content-Type", "application/json")
		}
		resp, err := http.DefaultClient.Do(r)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	lintHelp(t, "backend", breg)
	lintHelp(t, "gateway", greg)
}
