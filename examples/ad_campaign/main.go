// ad_campaign replays the paper's month-long live experiment (Sections 5
// and 6.4) on the synthetic substrate: users browse, the back-end
// profiles each of them every 10 minutes from their last 20 minutes of
// hostnames, a size-matched subset of ad-network ads is replaced by
// "eavesdropper" ads chosen from the profile, and the two systems'
// click-through rates are compared with a paired two-tailed t-test.
package main

import (
	"fmt"
	"log"

	"hostprof/internal/baseline"
	"hostprof/internal/experiment"
)

func main() {
	cfg := experiment.SmallConfig(2026)
	cfg.Population.Users = 60
	cfg.Population.Days = 8

	fmt.Println("building world, browsing, training embeddings...")
	setup, err := experiment.NewSetup(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %d hostnames, %d users, %d visits (%d after tracker filtering)\n",
		len(setup.Universe.Hosts), len(setup.Population.Users),
		setup.Raw.Len(), setup.Filtered.Len())
	fmt.Printf("  ad inventory: %d creatives on %d labelled landing pages\n\n",
		setup.AdDB.Len(), setup.Ontology.Len())

	run := func(name string, prof baseline.SessionProfiler) experiment.CampaignResult {
		r, err := experiment.RunCampaign(setup, prof, experiment.CampaignConfig{Seed: 7})
		if err != nil {
			log.Fatalf("%s campaign: %v", name, err)
		}
		fmt.Printf("%-16s eavesdropper CTR %.3f%% (%6d imp)   ad-network CTR %.3f%% (%6d imp)   mean affinity %.3f vs %.3f\n",
			name,
			r.EavesCTR.Percent(), r.EavesCTR.Impressions,
			r.AdNetCTR.Percent(), r.AdNetCTR.Impressions,
			r.MeanEavesAffinity, r.MeanAdNetAffinity)
		return r
	}

	fmt.Println("profiler        results")
	main_ := run("embedding (§4.1)", setup.Profiler)
	run("ontology-only", baseline.NewOntologyOnly(setup.Ontology))
	run("oracle (OTT)", baseline.NewOracle(setup.Universe))
	run("random", baseline.NewRandom(setup.Universe.Tax, 99))

	fmt.Printf("\npaired t-test (embedding profiler vs ad-network), %d users: t=%.3f, p=%.4f\n",
		main_.TTest.N, main_.TTest.T, main_.TTest.P)
	if main_.TTest.Significant(0.05) {
		fmt.Println("=> CTRs differ significantly at alpha=0.05")
	} else {
		fmt.Println("=> no significant CTR difference — the eavesdropper's profiles are")
		fmt.Println("   statistically as good as the ad-network's (the paper's conclusion,")
		fmt.Println("   which reported p=.113)")
	}
	fmt.Printf("\nreplaced %d of %d impressions (paper: 41K of 270K)\n",
		main_.Replaced, main_.Served)
}
