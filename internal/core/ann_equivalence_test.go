package core

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"hostprof/internal/index"
	"hostprof/internal/obs"
	"hostprof/internal/ontology"
	"hostprof/internal/stats"
)

// metricValue reads one counter/gauge family value off a registry
// snapshot, summing across label sets.
func metricValue(t *testing.T, reg *obs.Registry, name string) float64 {
	t.Helper()
	total, found := 0.0, false
	for _, m := range reg.Snapshot() {
		if m.Name == name {
			total += m.Value
			found = true
		}
	}
	if !found {
		t.Fatalf("metric %s not registered", name)
	}
	return total
}

// TestANNSmallVocabFallsBackIdentical pins the fallback trigger end to
// end: a vocabulary smaller than the search breadth ef means every ANN
// query is answered by the exact scan, so profiles, labelled
// neighbourhoods and session keys are bit-identical to the exact
// profiler's, and the fallback counter matches the query counter.
func TestANNSmallVocabFallsBackIdentical(t *testing.T) {
	fx := newProfilingFixture(t, 0.5) // vocab 24 « default ef 128
	reg := obs.NewRegistry()
	annP := NewProfiler(fx.model, fx.ont, ProfilerConfig{N: 20, ANN: true, Metrics: reg})
	exactP := NewProfiler(fx.model, fx.ont, ProfilerConfig{N: 20})

	sessions := [][]string{fx.ta[:4], fx.tb[:4], {fx.ta[0], fx.tb[0]}}
	for i, s := range sessions {
		a, errA := annP.ProfileSession(s)
		b, errB := exactP.ProfileSession(s)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("session %d: ann err %v, exact err %v", i, errA, errB)
		}
		if !vectorsAlmostEqual(a, b) {
			t.Fatalf("session %d: ann profile differs from exact under full fallback", i)
		}
		ga := annP.NearestLabelled(s, 5)
		gb := exactP.NearestLabelled(s, 5)
		if !reflect.DeepEqual(ga, gb) {
			t.Fatalf("session %d: ann labelled neighbourhood %v != exact %v", i, ga, gb)
		}
	}
	queries := metricValue(t, reg, "hostprof_index_ann_queries_total")
	fallbacks := metricValue(t, reg, "hostprof_index_ann_fallbacks_total")
	if queries == 0 || queries != fallbacks {
		t.Fatalf("queries=%v fallbacks=%v; a small vocabulary must fall back every time", queries, fallbacks)
	}
	if est := metricValue(t, reg, "hostprof_index_ann_recall_estimate"); est != 1 {
		t.Fatalf("recall estimate %v before any graph-answered sample, want 1", est)
	}
}

// TestANNLabelledViewEquivalence drives the labelled-subset graph with
// a breadth small enough to engage it: results must stay inside the
// labelled ID set, in (score desc, ID asc) order, with scores
// bit-equal to the exact labelled view's for the same IDs.
func TestANNLabelledViewEquivalence(t *testing.T) {
	rng := stats.NewRNG(404)
	m := randModel(t, rng, 2000, 16)
	tax := ontology.NewTaxonomy()
	ont := ontology.New(tax)
	labelled := map[int]bool{}
	for id := 0; id < 2000; id += 2 {
		v := tax.NewVector()
		v[id%tax.NumCategories()] = 1
		ont.Add(m.Vocab().Host(id), v)
		labelled[id] = true
	}
	reg := obs.NewRegistry()
	annP := NewProfiler(m, ont, ProfilerConfig{N: 20, ANN: true, ANNEf: 32, Metrics: reg})
	exactP := NewProfiler(m, ont, ProfilerConfig{N: 20})

	for trial := 0; trial < 10; trial++ {
		session := []string{
			m.Vocab().Host(rng.Intn(2000)),
			m.Vocab().Host(rng.Intn(2000)),
			m.Vocab().Host(rng.Intn(2000)),
		}
		got := annP.NearestLabelled(session, 10)
		want := exactP.NearestLabelled(session, len(labelled))
		exactCos := make(map[int]float64, len(want))
		for _, nb := range want {
			exactCos[nb.ID] = nb.Cosine
		}
		prevID, prevCos := -1, math.Inf(1)
		for i, nb := range got {
			if !labelled[nb.ID] {
				t.Fatalf("trial %d rank %d: unlabelled ID %d escaped the labelled view", trial, i, nb.ID)
			}
			cos, ok := exactCos[nb.ID]
			if !ok || cos != nb.Cosine {
				t.Fatalf("trial %d rank %d: ann cosine %v, exact %v for ID %d", trial, i, nb.Cosine, cos, nb.ID)
			}
			if nb.Cosine > prevCos || (nb.Cosine == prevCos && nb.ID <= prevID) {
				t.Fatalf("trial %d: results out of (score desc, ID asc) order at rank %d", trial, i)
			}
			prevID, prevCos = nb.ID, nb.Cosine
		}
	}
	queries := metricValue(t, reg, "hostprof_index_ann_queries_total")
	fallbacks := metricValue(t, reg, "hostprof_index_ann_fallbacks_total")
	if queries == 0 || fallbacks == queries {
		t.Fatalf("queries=%v fallbacks=%v; ef=32 over 1000 labelled rows must engage the graph", queries, fallbacks)
	}
}

// TestANNSelfExclusionTrainedModel checks the exclusion semantics over
// a trained model's index: an ANN query for a host's own vector with
// that host excluded never returns it, under both the graph and the
// fallback, matching the exact index.
func TestANNSelfExclusionTrainedModel(t *testing.T) {
	rng := stats.NewRNG(505)
	m := randModel(t, rng, 1200, 12)
	ix := m.SimilarityIndex()
	ann := ix.BuildANN(index.ANNConfig{Ef: 24})
	for _, id := range []int32{0, 3, 599, 1199} {
		q := m.VectorByID(int(id))
		got, _ := ann.SearchAppend(nil, q, 8, 0, 1, id)
		exact := ix.SearchAppend(nil, q, 8, 1, id)
		for _, r := range got {
			if r.ID == id {
				t.Fatalf("excluded ID %d present in ANN results", id)
			}
		}
		for _, r := range exact {
			if r.ID == id {
				t.Fatalf("excluded ID %d present in exact results", id)
			}
		}
		// Unexcluded, both paths put the host itself first.
		top, _ := ann.SearchAppend(nil, q, 1, 0, 1, index.NoExclude)
		if len(top) != 1 || top[0].ID != id {
			t.Fatalf("ANN top hit for host %d's own vector: %v", id, top)
		}
	}
}

// TestANNErrNoLabelsIdentical pins that both failure modes of Eq. (4)
// surface as ErrNoLabels identically with and without the ANN layer.
func TestANNErrNoLabelsIdentical(t *testing.T) {
	fx := newProfilingFixture(t, 0.5)
	empty := ontology.New(fx.tax)
	for _, tc := range []struct {
		name string
		ont  *ontology.Ontology
	}{{"labelled", fx.ont}, {"empty-ontology", empty}} {
		annP := NewProfiler(fx.model, tc.ont, ProfilerConfig{N: 10, ANN: true})
		exactP := NewProfiler(fx.model, tc.ont, ProfilerConfig{N: 10})
		for _, session := range [][]string{
			{"nope-1.example", "nope-2.example"},
			fx.ta[:3],
			nil,
		} {
			_, errA := annP.ProfileSession(session)
			_, errB := exactP.ProfileSession(session)
			if !errors.Is(errA, errB) && !errors.Is(errB, errA) {
				t.Fatalf("%s session %v: ann err %v, exact err %v", tc.name, session, errA, errB)
			}
		}
	}
}

// TestANNRecallTrainedModel is the trained-vector half of the recall
// harness: embeddings learned from a topical corpus, queried with
// session vectors, must meet the same recall@10 >= 0.95 bar at the
// default search breadth.
func TestANNRecallTrainedModel(t *testing.T) {
	rng := stats.NewRNG(2027)
	corpus, ta, tb := topicCorpus(rng, 1000, 4000, 12)
	m, err := Train(corpus, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if m.Vocab().Len() < 1500 {
		t.Fatalf("corpus produced vocab %d; the graph would fall back", m.Vocab().Len())
	}
	ix := m.SimilarityIndex()
	ann := ix.BuildANN(index.ANNConfig{})

	p := NewProfiler(m, ontology.New(ontology.NewTaxonomy()), ProfilerConfig{N: 10})
	hits, want, fallbacks := 0, 0, 0
	const queries, k = 60, 10
	for qi := 0; qi < queries; qi++ {
		pool := ta
		if qi%2 == 1 {
			pool = tb
		}
		session := make([]string, 6)
		for j := range session {
			session[j] = pool[rng.Intn(len(pool))]
		}
		sVec, inVocab := p.SessionVector(session)
		if inVocab == 0 {
			continue
		}
		exact := ix.SearchAppend(nil, sVec, k, 0, index.NoExclude)
		approx, fb := ann.SearchAppend(nil, sVec, k, 0, 0, index.NoExclude)
		if fb {
			fallbacks++
		}
		hits += index.RecallHits(exact, approx)
		want += len(exact)
	}
	recall := float64(hits) / float64(want)
	t.Logf("trained-model recall@%d = %.4f (%d fallbacks / %d queries)", k, recall, fallbacks, queries)
	if recall < 0.95 {
		t.Fatalf("trained-model recall@%d = %.4f, gate requires >= 0.95", k, recall)
	}
	if fallbacks == queries {
		t.Fatal("every trained-model query fell back; the graph was never exercised")
	}
}
