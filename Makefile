GO ?= go

.PHONY: all build test vet race chaos bench bench-json fuzz ci experiments experiments-small examples clean

all: vet test build

build:
	$(GO) build ./...

vet:
	gofmt -l . && $(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Fault-injection and crash-recovery tests (see internal/fault) under
# the race detector: SIGKILL recovery, WAL degradation, retrain
# coordination.
chaos:
	$(GO) test -race -run 'Chaos|Degraded|Retrain|Shed|Panic|Fault' ./...

bench:
	$(GO) test -bench=. -benchmem -benchtime 1x .

# Machine-readable benchmark trajectory for perf PRs.
bench-json:
	$(GO) test -bench=. -benchmem -benchtime 1x -run '^$$' . | $(GO) run ./cmd/benchjson > BENCH_results.json
	@echo wrote BENCH_results.json

# Short fuzz smoke over the WAL record decoder (CI runs the same).
fuzz:
	$(GO) test ./internal/store -run '^$$' -fuzz '^FuzzWALRecord$$' -fuzztime 10s

# Mirrors .github/workflows/ci.yml.
ci:
	@fmt="$$(gofmt -l .)"; if [ -n "$$fmt" ]; then echo "gofmt needed: $$fmt"; exit 1; fi
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test ./...
	$(GO) test -race ./...
	$(GO) test ./internal/store -run '^$$' -fuzz '^FuzzWALRecord$$' -fuzztime 10s

experiments:
	$(GO) run ./cmd/experiments -verbose -data-dir data

experiments-small:
	$(GO) run ./cmd/experiments -small -verbose

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/isp_observer
	$(GO) run ./examples/ad_campaign
	$(GO) run ./examples/streaming_detection
	$(GO) run ./examples/countermeasures

clean:
	$(GO) clean ./...
