package stats

import (
	"errors"
	"math"
	"sort"
)

// MannWhitneyResult reports the two-sided Mann-Whitney U test (normal
// approximation with tie correction), used as a distribution-free
// robustness check next to the paper's paired t-test: per-user CTRs are
// bounded, skewed proportions for which a rank test is arguably the
// better fit.
type MannWhitneyResult struct {
	U float64 // statistic for the first sample
	Z float64 // normal approximation
	P float64 // two-sided p-value
}

// ErrMannWhitney is returned when the test is undefined for the inputs.
var ErrMannWhitney = errors.New("stats: Mann-Whitney undefined for input")

// MannWhitneyU performs the two-sided Mann-Whitney U test on independent
// samples a and b using average ranks for ties and the tie-corrected
// normal approximation. Both samples need at least 2 observations.
func MannWhitneyU(a, b []float64) (MannWhitneyResult, error) {
	n1, n2 := len(a), len(b)
	if n1 < 2 || n2 < 2 {
		return MannWhitneyResult{}, errors.Join(ErrMannWhitney, errors.New("need >= 2 per sample"))
	}
	type obs struct {
		v     float64
		first bool
	}
	all := make([]obs, 0, n1+n2)
	for _, v := range a {
		all = append(all, obs{v, true})
	}
	for _, v := range b {
		all = append(all, obs{v, false})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].v < all[j].v })

	// Average ranks with tie accounting.
	ranks := make([]float64, len(all))
	var tieTerm float64
	for i := 0; i < len(all); {
		j := i
		for j < len(all) && all[j].v == all[i].v {
			j++
		}
		avg := float64(i+j+1) / 2 // ranks are 1-based: (i+1 + j) / 2
		for k := i; k < j; k++ {
			ranks[k] = avg
		}
		t := float64(j - i)
		tieTerm += t*t*t - t
		i = j
	}
	var r1 float64
	for i, o := range all {
		if o.first {
			r1 += ranks[i]
		}
	}
	u1 := r1 - float64(n1)*float64(n1+1)/2
	n := float64(n1 + n2)
	mu := float64(n1) * float64(n2) / 2
	sigma2 := float64(n1) * float64(n2) / 12 * ((n + 1) - tieTerm/(n*(n-1)))
	if sigma2 <= 0 {
		// All observations tied: no evidence of difference.
		return MannWhitneyResult{U: u1, Z: 0, P: 1}, nil
	}
	// Continuity correction toward the mean.
	diff := u1 - mu
	switch {
	case diff > 0.5:
		diff -= 0.5
	case diff < -0.5:
		diff += 0.5
	default:
		diff = 0
	}
	z := diff / math.Sqrt(sigma2)
	p := 2 * normalSF(math.Abs(z))
	if p > 1 {
		p = 1
	}
	return MannWhitneyResult{U: u1, Z: z, P: p}, nil
}

// Significant reports whether the two-sided p-value falls below alpha.
func (r MannWhitneyResult) Significant(alpha float64) bool { return r.P < alpha }

// normalSF returns P(Z > z) for the standard normal distribution.
func normalSF(z float64) float64 {
	return 0.5 * math.Erfc(z/math.Sqrt2)
}
