package index

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// annIndex builds an exact index plus ANN graph over seeded random
// vectors, with optional zero rows.
func annIndex(rng *rand.Rand, rows, dim int, cfg ANNConfig, zeroRows ...int) (*Index, *ANN, []float64) {
	vecs := randMatrix(rng, rows, dim, zeroRows...)
	ix := New(vecs, rows, dim, Config{BlockRows: 64})
	return ix, ix.BuildANN(cfg), vecs
}

func TestANNBuildDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	vecs := randMatrix(rng, 800, 12)
	ix := New(vecs, 800, 12, Config{})
	a1 := ix.BuildANN(ANNConfig{Seed: 5})
	a2 := ix.BuildANN(ANNConfig{Seed: 5})
	if !reflect.DeepEqual(a1.levels, a2.levels) {
		t.Fatal("level assignment differs across rebuilds")
	}
	if !reflect.DeepEqual(a1.cnt, a2.cnt) || !reflect.DeepEqual(a1.nbr, a2.nbr) {
		t.Fatal("graph adjacency differs across rebuilds")
	}
	if a1.entry != a2.entry || a1.maxLevel != a2.maxLevel {
		t.Fatal("entry point differs across rebuilds")
	}
}

func TestANNSearchDeterministicAcrossWorkersAndRepeats(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	_, ann, _ := annIndex(rng, 1500, 16, ANNConfig{Ef: 64, Seed: 3})
	q := randMatrix(rng, 1, 16)
	want, wantFB := ann.SearchAppend(nil, q, 20, 0, 1, NoExclude)
	for workers := 1; workers <= 6; workers++ {
		for rep := 0; rep < 10; rep++ {
			got, fb := ann.SearchAppend(nil, q, 20, 0, workers, NoExclude)
			if fb != wantFB || !reflect.DeepEqual(got, want) {
				t.Fatalf("workers=%d rep=%d: ANN results diverge", workers, rep)
			}
		}
	}
}

// TestANNScoresBitEqualExact pins that every ID the ANN returns carries
// the exact index's bit-identical float32 score for that row — the ANN
// approximates the candidate set, never the scores.
func TestANNScoresBitEqualExact(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	ix, ann, _ := annIndex(rng, 2000, 16, ANNConfig{Ef: 48, Seed: 9})
	for rep := 0; rep < 20; rep++ {
		q := randMatrix(rng, 1, 16)
		got, _ := ann.SearchAppend(nil, q, 15, 0, 1, NoExclude)
		exact := ix.SearchAppend(nil, q, ix.Rows(), 1, NoExclude)
		byID := make(map[int32]float32, len(exact))
		for _, r := range exact {
			byID[r.ID] = r.Score
		}
		for i, r := range got {
			if s, ok := byID[r.ID]; !ok || s != r.Score {
				t.Fatalf("rep %d rank %d: ANN score %g for ID %d, exact %g", rep, i, r.Score, r.ID, s)
			}
			if i > 0 && worse(entry{score: got[i-1].Score, row: got[i-1].ID}, entry{score: r.Score, row: r.ID}) {
				t.Fatalf("rep %d: results not in (score desc, ID asc) order at rank %d", rep, i)
			}
		}
	}
}

// TestANNSmallGraphFallsBackExact pins the pre-search fallback: when
// the graph holds no more rows than ef (or k reaches the graph), the
// answer is the exact scan's, bit for bit.
func TestANNSmallGraphFallsBackExact(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	ix, ann, _ := annIndex(rng, 100, 8, ANNConfig{Ef: 128, Seed: 1})
	q := randMatrix(rng, 1, 8)
	got, fb := ann.SearchAppend(nil, q, 10, 0, 1, NoExclude)
	if !fb {
		t.Fatal("graph of 100 rows with ef=128 must fall back to the exact scan")
	}
	want := ix.SearchAppend(nil, q, 10, 1, NoExclude)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("fallback results %v != exact %v", got, want)
	}
	// k covering the graph falls back too, whatever ef says.
	got, fb = ann.SearchAppend(nil, q, 100, 4, 1, NoExclude)
	if !fb || !reflect.DeepEqual(got, ix.SearchAppend(nil, q, 100, 1, NoExclude)) {
		t.Fatal("k = rows must fall back to the exact scan")
	}
}

func TestANNSelfExclusion(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	_, ann, vecs := annIndex(rng, 1200, 10, ANNConfig{Ef: 40, Seed: 7})
	for _, row := range []int{0, 17, 600, 1199} {
		q := vecs[row*10 : (row+1)*10]
		got, _ := ann.SearchAppend(nil, q, 10, 0, 1, int32(row))
		for _, r := range got {
			if r.ID == int32(row) {
				t.Fatalf("excluded ID %d present in ANN results", row)
			}
		}
		// Without exclusion the row itself (cosine 1) must surface first.
		top, _ := ann.SearchAppend(nil, q, 1, 0, 1, NoExclude)
		if len(top) != 1 || top[0].ID != int32(row) {
			t.Fatalf("query = row %d vector: top hit %v, want the row itself", row, top)
		}
	}
}

func TestANNSubsetKeepsOriginalIDs(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	rows, dim := 900, 8
	vecs := randMatrix(rng, rows, dim)
	ix := New(vecs, rows, dim, Config{})
	keep := make([]int, 0, rows/2)
	for id := 0; id < rows; id += 2 {
		keep = append(keep, id)
	}
	sub := ix.Subset(keep)
	ann := sub.BuildANN(ANNConfig{Ef: 32, Seed: 2})
	q := randMatrix(rng, 1, dim)
	got, _ := ann.SearchAppend(nil, q, 25, 0, 1, NoExclude)
	if len(got) != 25 {
		t.Fatalf("got %d results, want 25", len(got))
	}
	for _, r := range got {
		if r.ID%2 != 0 {
			t.Fatalf("subset ANN returned ID %d outside the even-ID view", r.ID)
		}
	}
	// Exclusion addresses original IDs through the view.
	ex, _ := ann.SearchAppend(nil, q, 25, 0, 1, got[0].ID)
	for _, r := range ex {
		if r.ID == got[0].ID {
			t.Fatal("excluded original ID present in subset ANN results")
		}
	}
}

// TestANNUnindexedRows pins insert-time rejection: zero and non-finite
// rows never join the graph, and a query whose ANN tail is non-positive
// rescues itself with the exact scan so those rows stay reachable.
func TestANNUnindexedRows(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	rows, dim := 600, 6
	vecs := randMatrix(rng, rows, dim, 10, 20, 30)
	vecs[40*dim] = math.NaN()
	vecs[50*dim+1] = math.Inf(1)
	ix := New(vecs, rows, dim, Config{})
	ann := ix.BuildANN(ANNConfig{Ef: 32, Seed: 4})
	st := ann.Stats()
	if st.Unindexed != 5 {
		t.Fatalf("unindexed = %d, want 5 (3 zero + NaN + Inf rows)", st.Unindexed)
	}
	if st.GraphRows != rows-5 {
		t.Fatalf("graph rows = %d, want %d", st.GraphRows, rows-5)
	}
	for _, bad := range []int{10, 20, 30, 40, 50} {
		if ann.levels[bad] != -1 {
			t.Fatalf("row %d should be unindexed, has level %d", bad, ann.levels[bad])
		}
	}
	// Deep k reaches into negative cosines: the ANN tail is then
	// non-positive and the post-search fallback must fire, because an
	// unindexed zero row (score exactly 0) could outrank that tail.
	q := randMatrix(rng, 1, dim)
	k := 400 // < graph rows, so the pre-search size fallback stays out
	gotDeep, fb := ann.SearchAppend(nil, q, k, 0, 1, NoExclude)
	want := ix.SearchAppend(nil, q, k, 1, NoExclude)
	if !fb {
		t.Fatal("non-positive ANN tail over a graph with unindexed rows must fall back to exact")
	}
	if len(gotDeep) != len(want) {
		t.Fatalf("fallback returned %d results, exact %d", len(gotDeep), len(want))
	}
	for i := range want {
		g, w := gotDeep[i], want[i]
		// NaN-scored rows (the scan keeps them) compare unequal to
		// themselves; match on ID plus same-bits-or-both-NaN score.
		sameNaN := math.IsNaN(float64(g.Score)) && math.IsNaN(float64(w.Score))
		if g.ID != w.ID || (g.Score != w.Score && !sameNaN) {
			t.Fatalf("fallback rank %d: got %v, exact %v", i, g, w)
		}
	}
	zeroSeen := false
	for _, r := range gotDeep {
		if r.ID == 10 || r.ID == 20 || r.ID == 30 {
			if r.Score != 0 {
				t.Fatalf("zero row %d scored %g, want exactly 0", r.ID, r.Score)
			}
			zeroSeen = true
		}
	}
	if !zeroSeen {
		t.Log("no zero row ranked within k; equality check above still holds")
	}
}

func TestANNZeroAndEdgeQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(28))
	_, ann, _ := annIndex(rng, 700, 8, ANNConfig{Ef: 32, Seed: 6})
	if got, fb := ann.SearchAppend(nil, make([]float64, 8), 5, 0, 1, NoExclude); got != nil || fb {
		t.Fatalf("zero query: got %v fb=%v, want nil false", got, fb)
	}
	if got, _ := ann.SearchAppend(nil, randMatrix(rng, 1, 8), 0, 0, 1, NoExclude); got != nil {
		t.Fatalf("k=0: got %v, want nil", got)
	}
	empty := New(nil, 0, 8, Config{})
	ea := empty.BuildANN(ANNConfig{})
	if got, _ := ea.SearchAppend(nil, randMatrix(rng, 1, 8), 3, 0, 1, NoExclude); got != nil {
		t.Fatalf("empty graph: got %v, want nil", got)
	}
	single := New(randMatrix(rng, 1, 8), 1, 8, Config{})
	sa := single.BuildANN(ANNConfig{})
	got, fb := sa.SearchAppend(nil, randMatrix(rng, 1, 8), 3, 0, 1, NoExclude)
	if !fb || len(got) != 1 {
		t.Fatalf("single-row graph: got %v fb=%v, want one exact result", got, fb)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("dim mismatch must panic")
			}
		}()
		ann.SearchAppend(nil, make([]float64, 9), 1, 0, 1, NoExclude)
	}()
}

func TestANNStats(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	ix, ann, _ := annIndex(rng, 1000, 8, ANNConfig{M: 8, Ef: 64, Seed: 12})
	st := ann.Stats()
	if st.Rows != 1000 || st.GraphRows != 1000 || st.Unindexed != 0 {
		t.Fatalf("stats rows: %+v", st)
	}
	if st.M != 8 || st.Ef != 64 {
		t.Fatalf("stats config echo: %+v", st)
	}
	if st.Edges <= 0 || st.BuildTime <= 0 {
		t.Fatalf("stats edges/build time: %+v", st)
	}
	if ann.Index() != ix {
		t.Fatal("Index() must return the underlying exact index")
	}
}

// TestANNSteadyStateZeroAlloc pins the zero-allocation contract of the
// ANN hot path, mirroring the exact index's test.
func TestANNSteadyStateZeroAlloc(t *testing.T) {
	if raceDetectorEnabled {
		t.Skip("race detector instrumentation allocates")
	}
	rng := rand.New(rand.NewSource(30))
	_, ann, _ := annIndex(rng, 4096, 24, ANNConfig{Ef: 64, Seed: 8})
	q := randMatrix(rng, 1, 24)
	var dst []Result
	var fb bool
	for i := 0; i < 10; i++ { // warm the state pool and grow dst
		dst, fb = ann.SearchAppend(dst[:0], q, 20, 0, 1, NoExclude)
	}
	if fb {
		t.Fatal("warm-up fell back to exact; zero-alloc claim would test the wrong path")
	}
	allocs := testing.AllocsPerRun(100, func() {
		dst, _ = ann.SearchAppend(dst[:0], q, 20, 0, 1, NoExclude)
	})
	if allocs != 0 {
		t.Fatalf("steady-state ANN SearchAppend allocates %.1f times per query, want 0", allocs)
	}
}
