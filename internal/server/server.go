// Package server implements the experiment back-end of paper Section 5:
// an HTTP service that receives hostname reports from instrumented
// clients (the paper's Chrome extension), maintains the visit store,
// retrains the embedding model on demand (the paper retrained daily),
// profiles the reporting user's last T minutes and answers with a list
// of relevant ads; a second endpoint collects impression/click feedback
// so campaign CTR can be read off the back-end.
//
// The wire format is JSON over HTTP — the paper's extension spoke to its
// back-end over TLS the same way.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hostprof/internal/ads"
	"hostprof/internal/core"
	"hostprof/internal/fault"
	"hostprof/internal/flight"
	"hostprof/internal/obs"
	"hostprof/internal/obs/prof"
	"hostprof/internal/obs/tracer"
	"hostprof/internal/ontology"
	"hostprof/internal/store"
	"hostprof/internal/trace"
)

// Config assembles a Backend.
type Config struct {
	// Ontology supplies labels (required).
	Ontology *ontology.Ontology
	// AdDB is the replacement-ad inventory (required).
	AdDB *ads.DB
	// Blocklist filters tracker hostnames from reports (optional).
	Blocklist *ontology.Blocklist
	// Train configures (re)training.
	Train core.TrainConfig
	// Profile configures session profiling.
	Profile core.ProfilerConfig
	// SessionWindow is T in seconds (default 1200, the paper's 20 min).
	SessionWindow int64
	// AdsPerReport is how many ads each report answer carries
	// (default 20, paper Section 5.3).
	AdsPerReport int
	// Metrics, when non-nil, is the registry the backend exports into
	// (hostprof_* names; see internal/obs). Nil creates a private
	// registry, retrievable via Backend.Metrics, so /metrics and /varz
	// always have content.
	Metrics *obs.Registry
	// DataDir, when non-empty, makes the visit store durable: every
	// report is written to a WAL under this directory, snapshots
	// (visits + model) are taken after each retrain, and startup
	// recovers both — a killed backend restarts with its store and a
	// warm model.
	DataDir string
	// Fsync selects the WAL flush policy (default store.FsyncInterval).
	Fsync store.FsyncPolicy
	// SnapshotEvery, when positive, snapshots on a timer in addition to
	// the after-retrain and shutdown snapshots.
	SnapshotEvery time.Duration
	// Store, when non-nil, is used directly instead of opening one from
	// DataDir/Fsync/SnapshotEvery — for callers that need store tuning
	// beyond those fields (sharding, WAL re-probe cadence).
	Store *store.Store
	// RetrainTimeout bounds each retrain run; a run past the deadline is
	// cancelled at the next epoch boundary and reported as
	// context.DeadlineExceeded (HTTP 504). Zero means no deadline.
	RetrainTimeout time.Duration
	// MaxInflightReports caps concurrently served /v1/report requests;
	// excess requests are shed with 429 + Retry-After instead of piling
	// onto a saturated backend. Zero means unlimited.
	MaxInflightReports int
	// MaxHostsPerReport rejects reports carrying more hostnames (400),
	// bounding per-request work and WAL amplification. Default 1024.
	MaxHostsPerReport int
	// MaxSessionsPerBatch rejects /v1/profile/batch requests carrying
	// more sessions (400). Default 256.
	MaxSessionsPerBatch int
	// ProfileCache sizes the LRU of session profiles sitting in front of
	// the profile path, in entries; zero or negative disables caching.
	// The cache is keyed by the set of hosts that can influence the
	// profile (see core.Profiler.SessionKey) and swapped wholesale on
	// every retrain, so a hit can never surface a previous model's
	// profile.
	ProfileCache int
	// Tracer, when non-nil, gives every request a span tree: handler
	// spans join incoming W3C traceparent contexts, and store, profile
	// and retrain work become child spans. Completed traces surface at
	// /debug/traces on the backend handler. Nil (or a disabled tracer)
	// costs a nil check per instrumentation point.
	Tracer *tracer.Tracer
	// SlowRequest is the latency past which a request emits one
	// structured warning with its trace ID and stage breakdown.
	// Default 1s; negative disables the slow-request log.
	SlowRequest time.Duration
	// Profiler, when non-nil, is the continuous-profiling layer: slow
	// requests trigger goroutine+mutex captures tagged with their
	// trace ID, and the capture ring is served at /debug/prof/ on the
	// backend handler. The backend does not own the profiler's
	// lifecycle — the caller that built it stops it. Nil costs a nil
	// check on the slow path only.
	Profiler *prof.Profiler
	// SLOTargets maps endpoint names ("report", "profile_batch",
	// "retrain", ...) to latency targets. Each named endpoint gets a
	// sliding-window SLO (99% of requests under target) whose burn
	// rate, breach ratio and latency quantiles are exported as
	// hostprof_slo_* gauges and surfaced on /debug/statusz. Empty
	// disables SLO tracking — zero cost on the request path.
	SLOTargets map[string]time.Duration
	// SLOWindow is the SLO sliding window (default 5 minutes).
	SLOWindow time.Duration
	// Logger receives the backend's structured logs (retrain outcomes,
	// slow requests). Nil selects slog.Default().
	Logger *slog.Logger
}

// Backend is the profiling/ad server. All methods are safe for
// concurrent use.
type Backend struct {
	cfg Config
	reg *obs.Registry
	met backendMetrics
	tr  *tracer.Tracer
	log *slog.Logger

	// Profiling/SLO pillar: trigger captures, per-endpoint SLOs, the
	// recent-slow-request log and the /debug/statusz page.
	profz   *prof.Profiler
	slos    *prof.SLOTracker
	slowlog *prof.SlowLog
	statusz *prof.Statusz

	store *store.Store

	// retrains coalesces concurrent retrain requests into one training
	// run; inflight counts /v1/report requests being served for the
	// admission gate.
	retrains flight.Group
	inflight atomic.Int64

	mu       sync.Mutex
	profiler *core.Profiler
	pcache   *profileCache // one generation per profiler, swapped together
	selector *ads.Selector

	// campaign statistics
	impressions map[string]int64 // by source: "eavesdropper" / "original"
	clicks      map[string]int64
}

// backendMetrics caches the backend's registry handles.
type backendMetrics struct {
	reports        *obs.Counter
	reportHosts    *obs.Counter
	reportDrops    *obs.Counter
	retrains       *obs.Counter
	retrainErrors  *obs.Counter
	retrainSeconds *obs.Histogram
	epochs         *obs.Counter
	epochSeconds   *obs.Histogram
	epochLoss      *obs.Gauge
	profileSeconds *obs.Histogram
	shed           *obs.Counter
	panics         *obs.Counter
	modelImports   *obs.Counter
}

var trainBuckets = obs.ExpBuckets(0.01, 4, 10)

func newBackendMetrics(reg *obs.Registry) backendMetrics {
	reg.Describe("hostprof_reports_total", "extension hostname reports accepted")
	reg.Describe("hostprof_report_hosts_total", "hostnames ingested across accepted reports")
	reg.Describe("hostprof_report_blocklist_drops_total", "reported hostnames dropped by the blocklist before ingest")
	reg.Describe("hostprof_retrain_total", "model retrains attempted")
	reg.Describe("hostprof_retrain_errors_total", "model retrains that failed or were aborted")
	reg.Describe("hostprof_retrain_seconds", "wall time of full model retrains")
	reg.Describe("hostprof_train_epochs_total", "training epochs completed across retrains")
	reg.Describe("hostprof_train_epoch_seconds", "wall time of one training epoch")
	reg.Describe("hostprof_train_epoch_loss", "training loss of the most recent epoch")
	reg.Describe("hostprof_profile_seconds", "per-report session profiling latency")
	reg.Describe("hostprof_campaign_impressions", "ad impressions recorded, by ad source")
	reg.Describe("hostprof_campaign_clicks", "ad clicks recorded, by ad source")
	reg.Describe("hostprof_http_shed_total", "report requests shed by the max-in-flight admission gate")
	reg.Describe("hostprof_http_panics_total", "handler panics recovered into 500s")
	reg.Describe("hostprof_retrain_state", "0 idle, 1 retrain in flight")
	reg.Describe("hostprof_model_imports_total", "models installed via PUT /v1/model (gateway distribution)")
	reg.Describe("hostprof_http_requests_total", "HTTP requests served, by endpoint and status code")
	reg.Describe("hostprof_http_request_seconds", "HTTP request latency, by endpoint")
	reg.Describe("hostprof_profile_cache_size", "entries currently held by the session-profile LRU")
	reg.Describe("hostprof_model_trained", "1 when a trained model is being served, else 0")
	return backendMetrics{
		reports:        reg.Counter("hostprof_reports_total"),
		reportHosts:    reg.Counter("hostprof_report_hosts_total"),
		reportDrops:    reg.Counter("hostprof_report_blocklist_drops_total"),
		retrains:       reg.Counter("hostprof_retrain_total"),
		retrainErrors:  reg.Counter("hostprof_retrain_errors_total"),
		retrainSeconds: reg.Histogram("hostprof_retrain_seconds", trainBuckets),
		epochs:         reg.Counter("hostprof_train_epochs_total"),
		epochSeconds:   reg.Histogram("hostprof_train_epoch_seconds", trainBuckets),
		epochLoss:      reg.Gauge("hostprof_train_epoch_loss"),
		profileSeconds: reg.Histogram("hostprof_profile_seconds", nil),
		shed:           reg.Counter("hostprof_http_shed_total"),
		panics:         reg.Counter("hostprof_http_panics_total"),
		modelImports:   reg.Counter("hostprof_model_imports_total"),
	}
}

// New validates cfg and returns an empty backend. Ads are indexed
// immediately; the model does not exist until the first Retrain.
func New(cfg Config) (*Backend, error) {
	if cfg.Ontology == nil {
		return nil, errors.New("server: config requires an ontology")
	}
	if cfg.AdDB == nil {
		return nil, errors.New("server: config requires an ad inventory")
	}
	if cfg.SessionWindow <= 0 {
		cfg.SessionWindow = 20 * 60
	}
	if cfg.AdsPerReport <= 0 {
		cfg.AdsPerReport = 20
	}
	if cfg.MaxHostsPerReport <= 0 {
		cfg.MaxHostsPerReport = 1024
	}
	if cfg.MaxSessionsPerBatch <= 0 {
		cfg.MaxSessionsPerBatch = 256
	}
	if cfg.SlowRequest == 0 {
		cfg.SlowRequest = time.Second
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	sel, err := ads.NewSelector(cfg.AdDB, cfg.Ontology, 20)
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	obs.RegisterRuntimeMetrics(reg)
	// Profilers inherit the backend's observability plane unless the
	// caller wired their own: the index scan then exports its
	// hostprof_index_* series here and spans under request traces.
	if cfg.Profile.Metrics == nil {
		cfg.Profile.Metrics = reg
	}
	if cfg.Profile.Tracer == nil {
		cfg.Profile.Tracer = cfg.Tracer
	}
	st := cfg.Store
	if st == nil {
		st, err = store.Open(store.Config{
			Dir:           cfg.DataDir,
			Fsync:         cfg.Fsync,
			SnapshotEvery: cfg.SnapshotEvery,
			Metrics:       reg,
		})
		if err != nil {
			return nil, fmt.Errorf("server: %w", err)
		}
	}
	b := &Backend{
		cfg:         cfg,
		reg:         reg,
		met:         newBackendMetrics(reg),
		tr:          cfg.Tracer,
		log:         cfg.Logger,
		store:       st,
		selector:    sel,
		impressions: make(map[string]int64),
		clicks:      make(map[string]int64),
	}
	// A snapshot-restored model means the backend is ready to serve ads
	// immediately, without waiting for the first retrain.
	if m := st.Model(); m != nil {
		b.profiler = core.NewProfiler(m, cfg.Ontology, cfg.Profile)
		b.pcache = newProfileCache(cfg.ProfileCache, reg)
	}
	reg.GaugeFunc("hostprof_profile_cache_size", func() float64 {
		b.mu.Lock()
		c := b.pcache
		b.mu.Unlock()
		return float64(c.len())
	})
	reg.GaugeFunc("hostprof_model_trained", func() float64 {
		if b.Ready() {
			return 1
		}
		return 0
	})
	reg.GaugeFunc("hostprof_retrain_state", func() float64 {
		if b.retrains.Running() {
			return 1
		}
		return 0
	})
	b.profz = cfg.Profiler
	b.slowlog = prof.NewSlowLog(32)
	if len(cfg.SLOTargets) > 0 {
		b.slos = prof.NewSLOTracker(cfg.SLOWindow, reg)
		for endpoint, target := range cfg.SLOTargets {
			b.slos.Register(endpoint, target)
		}
	}
	b.statusz = b.buildStatusz()
	return b, nil
}

// buildStatusz assembles the /debug/statusz page: the operational state
// an on-call needs in one place, each section computed at render time.
func (b *Backend) buildStatusz() *prof.Statusz {
	sz := prof.NewStatusz()
	sz.Section("slo", func() any { return b.slos.Status() })
	sz.Section("store", func() any {
		rec := b.store.Recovery()
		return map[string]any{
			"degraded": b.store.Degraded(),
			"visits":   b.store.Len(),
			"users":    len(b.store.Users()),
			"recovery": rec,
		}
	})
	sz.Section("retrain", func() any {
		st := map[string]any{
			"trained": b.Ready(),
			"running": b.retrains.Running(),
		}
		b.mu.Lock()
		if b.profiler != nil {
			st["vocab"] = b.profiler.Model().Vocab().Len()
		}
		b.mu.Unlock()
		return st
	})
	sz.Section("slow_requests", func() any { return b.slowlog.Snapshot() })
	sz.Section("profile_ring", func() any {
		return map[string]any{
			"captures":    b.profz.Ring().Len(),
			"bytes":       b.profz.Ring().Bytes(),
			"recent":      b.profz.Ring().Snapshot(),
			"enabled":     b.profz.Enabled(),
			"download_at": "/debug/prof/",
		}
	})
	return sz
}

// Store returns the backend's visit store, for durability operations and
// recovery stats.
func (b *Backend) Store() *store.Store { return b.store }

// Close flushes the store, takes a final snapshot (so the next start
// recovers instantly) and releases the WAL. It is the graceful-shutdown
// half of the durability contract; a SIGKILLed backend relies on WAL
// replay instead.
func (b *Backend) Close() error {
	snapErr := b.store.Snapshot()
	if err := b.store.Close(); err != nil {
		return err
	}
	return snapErr
}

// Metrics returns the registry the backend exports into — the
// configured one, or the private registry created when none was given.
func (b *Backend) Metrics() *obs.Registry { return b.reg }

// Ready reports whether the model has been trained, i.e. whether
// /v1/report can serve ads; it feeds the /readyz readiness probe.
func (b *Backend) Ready() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.profiler != nil
}

// Retrain fits a fresh embedding on every per-user-day sequence stored so
// far and swaps in a new profiler (the paper's daily retraining step).
// Equivalent to RetrainContext(context.Background()).
func (b *Backend) Retrain() error {
	return b.RetrainContext(context.Background())
}

// RetrainContext is the backend's retrain coordinator. Concurrent calls
// are coalesced: while a run is in flight, new callers join it and share
// its result instead of starting a second training pass. The run itself
// is bound to the first caller's ctx (plus Config.RetrainTimeout, when
// set); a joiner whose own ctx expires stops waiting and gets its ctx
// error, but the run keeps going for the callers still attached.
// On success the model is handed to the store and a snapshot is taken,
// so a crash after a retrain recovers warm.
func (b *Backend) RetrainContext(ctx context.Context) error {
	_, err := b.retrains.Do(ctx, ctx, b.retrainRun)
	return err
}

// RetrainAsync starts a retrain in the background unless one is already
// running, reporting whether this call started it. The run is bound to
// ctx (use context.Background() to detach it from any request); its
// outcome lands in the retrain metrics and, on success, the swapped-in
// profiler. Poll RetrainRunning or hostprof_retrain_state for progress.
func (b *Backend) RetrainAsync(ctx context.Context) bool {
	return b.retrains.Start(ctx, b.retrainRun)
}

// RetrainRunning reports whether a retrain is in flight.
func (b *Backend) RetrainRunning() bool { return b.retrains.Running() }

// retrainRun is the single-flight body: exactly one instance runs at a
// time, however many HTTP requests or callers are attached to it.
func (b *Backend) retrainRun(ctx context.Context) error {
	if b.cfg.RetrainTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, b.cfg.RetrainTimeout)
		defer cancel()
	}
	// The retrain span is a child of whatever request started the run
	// (flight preserves context values), so a stalled profile request
	// traces through to the epoch that held it up.
	ctx, tsp := b.tr.StartSpan(ctx, "train.retrain")
	defer tsp.End()
	corpus := b.store.AllSequences()
	tsp.SetAttr("sequences", strconv.Itoa(len(corpus)))
	tc := b.cfg.Train
	user := tc.Progress
	tc.Progress = func(e core.EpochStats) {
		b.met.epochs.Inc()
		b.met.epochSeconds.Observe(e.Duration.Seconds())
		b.met.epochLoss.Set(e.Loss)
		tsp.Event(fmt.Sprintf("epoch %d: loss=%.4f dur=%s", e.Epoch, e.Loss, e.Duration.Round(time.Millisecond)))
		if user != nil {
			user(e)
		}
	}
	// The duration histogram observes failed retrains too, so slow
	// failures remain visible in hostprof_retrain_seconds.
	sp := obs.StartSpan(b.met.retrainSeconds)
	model, err := core.TrainContext(ctx, corpus, tc)
	d := sp.End()
	if err != nil {
		b.met.retrainErrors.Inc()
		tsp.Error(err)
		b.log.LogAttrs(ctx, slog.LevelWarn, "retrain failed",
			slog.Int("sequences", len(corpus)),
			slog.Duration("elapsed", d),
			slog.String("error", err.Error()))
		return fmt.Errorf("server: retrain: %w", err)
	}
	b.met.retrains.Inc()
	b.log.LogAttrs(ctx, slog.LevelInfo, "retrain complete",
		slog.Int("sequences", len(corpus)),
		slog.Int("vocab", model.Vocab().Len()),
		slog.Duration("elapsed", d))
	prof := core.NewProfiler(model, b.cfg.Ontology, b.cfg.Profile)
	// The cache swaps atomically with the profiler: a compute that began
	// on the old model inserts into the orphaned old cache, so the new
	// generation can never serve a stale profile.
	pc := newProfileCache(b.cfg.ProfileCache, b.reg)
	b.mu.Lock()
	b.profiler = prof
	b.pcache = pc
	b.mu.Unlock()
	b.store.SetModel(model)
	// Snapshot failures must not undo a successful retrain; they are
	// visible in hostprof_store_snapshot_errors_total.
	b.store.Snapshot()
	return nil
}

// report ingests one extension report and returns the replacement-ad
// list for the user's current profile. Visits go straight into the
// sharded store — concurrent reports from different users contend only
// on the WAL, never on a backend-wide lock.
func (b *Backend) report(ctx context.Context, userID int, now int64, hosts []string) ([]ads.Ad, error) {
	b.met.reports.Inc()
	// Ingest every non-blocklisted host before surfacing any error, so a
	// failure on host N doesn't silently drop hosts N+1..end: the stored
	// prefix+suffix matches what the store accepted, and the client's
	// retry (the whole report) is then a harmless duplicate-free replay
	// of the failed entries only in the degraded-store sense.
	_, isp := b.tr.StartSpan(ctx, "store.ingest")
	isp.SetAttr("hosts", strconv.Itoa(len(hosts)))
	var appendErr error
	for i, h := range hosts {
		if b.cfg.Blocklist != nil && b.cfg.Blocklist.Contains(h) {
			b.met.reportDrops.Inc()
			continue
		}
		// Hosts within one report share the report timestamp; order is
		// preserved because store sessions sort stably by time.
		if err := b.store.Append(trace.Visit{User: userID, Time: now, Host: hosts[i]}); err != nil {
			if appendErr == nil {
				appendErr = fmt.Errorf("server: storing report: %w", err)
			}
			continue
		}
		b.met.reportHosts.Inc()
	}
	isp.Error(appendErr)
	isp.End()
	if appendErr != nil {
		return nil, appendErr
	}
	_, ssp := b.tr.StartSpan(ctx, "store.session")
	session := b.store.Session(userID, now, b.cfg.SessionWindow)
	ssp.SetAttr("session_hosts", strconv.Itoa(len(session)))
	ssp.End()
	pctx, psp := b.tr.StartSpan(ctx, "profile")
	sp := obs.StartSpan(b.met.profileSeconds)
	profile, err := b.profile(pctx, session)
	sp.End()
	if err != nil {
		// Empty or unlabelled sessions are expected outcomes; only
		// genuine failures mark the trace errored in the handler above.
		psp.SetAttr("outcome", err.Error())
		psp.End()
		return nil, err
	}
	psp.End()
	_, asp := b.tr.StartSpan(ctx, "ads.select")
	b.mu.Lock()
	list := b.selector.Select(profile, b.cfg.AdsPerReport)
	b.mu.Unlock()
	asp.SetAttr("ads", strconv.Itoa(len(list)))
	asp.End()
	return list, nil
}

var errNotTrained = errors.New("server: model not trained yet")

// cacheableProfileErr reports whether a profiling outcome is
// deterministic under a fixed profiler — safe to memoise. ErrNoLabels
// depends only on the session's host set, model and ontology;
// ErrEmptySession never reaches the cache (its key is empty).
func cacheableProfileErr(err error) bool {
	return err == nil || errors.Is(err, core.ErrNoLabels)
}

// profile computes one session profile through the LRU cache. Profiler
// and cache are read under one lock acquisition, so the pair is always
// from the same generation.
func (b *Backend) profile(ctx context.Context, session []string) (ontology.Vector, error) {
	b.mu.Lock()
	prof, cache := b.profiler, b.pcache
	b.mu.Unlock()
	if prof == nil {
		return nil, errNotTrained
	}
	var key string
	if cache != nil {
		key = prof.SessionKey(session)
		if key != "" {
			if vec, err, ok := cache.get(key); ok {
				return vec, err
			}
		}
	}
	vec, err := prof.ProfileSessionContext(ctx, session)
	if cache != nil && key != "" && cacheableProfileErr(err) {
		cache.put(key, vec, err)
	}
	return vec, err
}

// ProfileSessions profiles a batch of sessions against the current
// model: cached sessions are answered from the LRU, the rest fan out
// over the profiler's batch workers, and fresh deterministic outcomes
// are memoised. Results align with the input; the error return is
// global (errNotTrained before the first retrain).
func (b *Backend) ProfileSessions(ctx context.Context, sessions [][]string) ([]ontology.Vector, []error, error) {
	b.mu.Lock()
	prof, cache := b.profiler, b.pcache
	b.mu.Unlock()
	if prof == nil {
		return nil, nil, errNotTrained
	}
	vecs := make([]ontology.Vector, len(sessions))
	errs := make([]error, len(sessions))
	keys := make([]string, len(sessions))
	var missIdx []int
	var missSessions [][]string
	for i, s := range sessions {
		if cache != nil {
			keys[i] = prof.SessionKey(s)
			if keys[i] != "" {
				if vec, err, ok := cache.get(keys[i]); ok {
					vecs[i], errs[i] = vec, err
					continue
				}
			}
		}
		missIdx = append(missIdx, i)
		missSessions = append(missSessions, s)
	}
	if len(missIdx) > 0 {
		mv, me := prof.ProfileSessions(ctx, missSessions)
		for j, i := range missIdx {
			vecs[i], errs[i] = mv[j], me[j]
			if cache != nil && keys[i] != "" && cacheableProfileErr(me[j]) {
				cache.put(keys[i], mv[j], me[j])
			}
		}
	}
	return vecs, errs, nil
}

// observeImpression records one displayed ad, mirroring the campaign
// maps into per-source gauges.
func (b *Backend) observeImpression(source string, clicked bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.impressions[source]++
	b.reg.Gauge("hostprof_campaign_impressions", obs.L("source", source)).
		Set(float64(b.impressions[source]))
	if clicked {
		b.clicks[source]++
		b.reg.Gauge("hostprof_campaign_clicks", obs.L("source", source)).
			Set(float64(b.clicks[source]))
	}
}

// CampaignStats is a typed snapshot of the ad-campaign counters, keyed
// by ad source ("eavesdropper" / "original"), so tests and operators
// can read CTR without scraping HTTP.
type CampaignStats struct {
	Impressions map[string]int64   `json:"impressions"`
	Clicks      map[string]int64   `json:"clicks"`
	CTRPercent  map[string]float64 `json:"ctr_percent"`
}

// CampaignStats snapshots the impression/click tallies.
func (b *Backend) CampaignStats() CampaignStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.campaignStatsLocked()
}

func (b *Backend) campaignStatsLocked() CampaignStats {
	cs := CampaignStats{
		Impressions: make(map[string]int64, len(b.impressions)),
		Clicks:      make(map[string]int64, len(b.clicks)),
		CTRPercent:  make(map[string]float64, len(b.impressions)),
	}
	for k, v := range b.impressions {
		cs.Impressions[k] = v
		cs.Clicks[k] = b.clicks[k]
		if v > 0 {
			cs.CTRPercent[k] = 100 * float64(b.clicks[k]) / float64(v)
		}
	}
	return cs
}

// Stats is the back-end's aggregate view.
type Stats struct {
	Visits      int                `json:"visits"`
	Users       int                `json:"users"`
	Trained     bool               `json:"trained"`
	VocabSize   int                `json:"vocab_size"`
	Impressions map[string]int64   `json:"impressions"`
	Clicks      map[string]int64   `json:"clicks"`
	CTRPercent  map[string]float64 `json:"ctr_percent"`
}

// CurrentStats snapshots the backend state.
func (b *Backend) CurrentStats() Stats {
	visits, users := b.store.Len(), len(b.store.Users())
	b.mu.Lock()
	defer b.mu.Unlock()
	cs := b.campaignStatsLocked()
	st := Stats{
		Visits:      visits,
		Users:       users,
		Trained:     b.profiler != nil,
		Impressions: cs.Impressions,
		Clicks:      cs.Clicks,
		CTRPercent:  cs.CTRPercent,
	}
	if b.profiler != nil {
		st.VocabSize = b.profiler.Model().Vocab().Len()
	}
	return st
}

// --- HTTP layer ---------------------------------------------------------

// ReportRequest is the extension's periodic hostname report.
type ReportRequest struct {
	User  int      `json:"user"`
	Time  int64    `json:"time"`
	Hosts []string `json:"hosts"`
}

// WireAd is one replacement creative in a report response.
type WireAd struct {
	ID      int    `json:"id"`
	Landing string `json:"landing"`
	W       int    `json:"w"`
	H       int    `json:"h"`
}

// ReportResponse carries the replacement-ad list.
type ReportResponse struct {
	Ads []WireAd `json:"ads"`
}

// ProfileBatchRequest asks for category profiles of many sessions in
// one round trip — the offline-analysis companion to /v1/report, which
// profiles implicitly while serving ads.
type ProfileBatchRequest struct {
	Sessions [][]string `json:"sessions"`
}

// ProfileResult is one session's outcome: the nonzero categories by
// taxonomy name, or the profiling error (empty session, nothing
// labelled reachable).
type ProfileResult struct {
	Categories map[string]float64 `json:"categories,omitempty"`
	Error      string             `json:"error,omitempty"`
}

// ProfileBatchResponse carries one ProfileResult per requested session,
// in request order.
type ProfileBatchResponse struct {
	Profiles []ProfileResult `json:"profiles"`
}

// FeedbackRequest records an impression or click.
type FeedbackRequest struct {
	User    int    `json:"user"`
	AdID    int    `json:"ad_id"`
	Source  string `json:"source"` // "eavesdropper" or "original"
	Clicked bool   `json:"clicked"`
}

// Handler returns the backend's HTTP API:
//
//	POST /v1/report     ReportRequest  → ReportResponse
//	POST /v1/profile/batch  ProfileBatchRequest → ProfileBatchResponse
//	POST /v1/feedback   FeedbackRequest → 204
//	POST /v1/retrain    (empty)        → 204 (?async=1 → 202)
//	GET  /v1/model      → serialized model (ETag/If-None-Match version negotiation)
//	PUT  /v1/model      → install a model artifact (204 + version header)
//	GET  /v1/export         → chunked visit export (?users=&from=&limit=)
//	GET  /v1/export/users   → distinct stored user IDs
//	GET  /v1/export/digest  → per-user migration digests (?users=)
//	POST /v1/import     → load migrated visits (reset + append)
//	GET  /v1/stats      → Stats
//	GET  /metrics       → Prometheus text exposition
//	GET  /varz          → JSON metrics snapshot
//	GET  /healthz       → liveness (200 while the process serves)
//	GET  /readyz        → readiness JSON (trained, store-degraded, model version)
//	GET  /debug/statusz → single-page operational view (HTML, ?format=json)
//	GET  /debug/prof/   → profile-capture ring (with Config.Profiler)
//
// Error responses from /v1 endpoints carry a JSON body {"error": "..."}.
// Every /v1 endpoint is instrumented with a request counter
// (hostprof_http_requests_total{endpoint,code}) and a latency histogram
// (hostprof_http_request_seconds{endpoint}); /v1/report additionally
// passes the max-in-flight admission gate.
func (b *Backend) Handler() http.Handler {
	mux := http.NewServeMux()
	// Fault hooks sit inside the admission gate so injected latency
	// holds an in-flight slot, the way a slow store would.
	mux.HandleFunc("POST /v1/report", b.instrument("report", b.admit(b.faulty("report", b.handleReport))))
	mux.HandleFunc("POST /v1/profile/batch", b.instrument("profile_batch", b.admit(b.faulty("profile_batch", b.handleProfileBatch))))
	mux.HandleFunc("POST /v1/feedback", b.instrument("feedback", b.faulty("feedback", b.handleFeedback)))
	mux.HandleFunc("POST /v1/retrain", b.instrument("retrain", b.faulty("retrain", b.handleRetrain)))
	mux.HandleFunc("GET /v1/stats", b.instrument("stats", b.handleStats))
	mux.HandleFunc("GET /v1/model", b.instrument("model_get", b.handleModelGet))
	mux.HandleFunc("HEAD /v1/model", b.handleModelGet)
	mux.HandleFunc("PUT /v1/model", b.instrument("model_put", b.faulty("model_put", b.handleModelPut)))
	mux.HandleFunc("GET /v1/export", b.instrument("export", b.handleExport))
	mux.HandleFunc("GET /v1/export/users", b.instrument("export_users", b.handleExportUsers))
	mux.HandleFunc("GET /v1/export/digest", b.instrument("export_digest", b.handleExportDigest))
	mux.HandleFunc("POST /v1/import", b.instrument("import", b.faulty("import", b.handleImport)))
	mux.Handle("GET /metrics", b.reg.MetricsHandler())
	mux.Handle("GET /varz", b.reg.VarzHandler())
	// Liveness and readiness are deliberately split: /healthz answers
	// "is the process up" (always ok while serving — restarting an
	// untrained shard fixes nothing), /readyz answers "route traffic
	// here" and carries the state a gateway needs to route around sick
	// shards.
	mux.Handle("GET /healthz", obs.HealthzHandler(nil))
	mux.Handle("GET /readyz", obs.ReadyzHandler(func() (bool, any) {
		rd := b.Readiness()
		return rd.Ready, rd
	}))
	if b.tr.Enabled() {
		mux.Handle("/debug/traces", b.tr.Handler())
	}
	if b.profz.Enabled() {
		mux.Handle("GET /debug/prof/", b.profz.Handler())
	}
	mux.Handle("GET /debug/statusz", b.statusz.Handler())
	return mux
}

// statusRecorder captures the response code written by a handler and
// whether anything was written, so panic recovery knows if a 500 can
// still be sent.
type statusRecorder struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (w *statusRecorder) WriteHeader(code int) {
	w.code = code
	w.wrote = true
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusRecorder) Write(p []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(p)
}

// instrument wraps an endpoint handler with a per-endpoint latency
// histogram, a per-(endpoint, code) request counter, request tracing
// and panic containment: a panicking handler becomes a 500 (when
// nothing has been written yet) instead of tearing down the connection,
// and is counted in hostprof_http_panics_total.
//
// With tracing enabled the handler span joins an incoming W3C
// traceparent (so a traced client and this server share one trace ID),
// the latency histogram gets a trace-ID exemplar, and requests slower
// than Config.SlowRequest emit one structured warning carrying the
// trace ID and the per-stage breakdown. With tracing disabled all of
// that collapses to nil checks — no allocation on the request path.
func (b *Backend) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	lat := b.reg.Histogram("hostprof_http_request_seconds", nil, obs.L("endpoint", endpoint))
	// The SLO handle is resolved once per endpoint at wrap time; per
	// request it is one nil-safe Observe. Endpoints without a
	// configured target get a nil handle — zero cost.
	slo := b.slos.Get(endpoint)
	return func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		start := time.Now()
		var span *tracer.Span
		if b.tr.Enabled() {
			ctx := r.Context()
			if sc, ok := tracer.ParseTraceparent(r.Header.Get("traceparent")); ok {
				ctx = tracer.ContextWithRemote(ctx, sc)
			}
			ctx, span = b.tr.StartSpan(ctx, "http."+endpoint)
			span.SetAttr("endpoint", endpoint)
			r = r.WithContext(ctx)
		}
		defer func() {
			d := time.Since(start)
			if p := recover(); p != nil {
				b.met.panics.Inc()
				rec.code = http.StatusInternalServerError
				if !rec.wrote {
					writeError(rec, http.StatusInternalServerError, fmt.Sprintf("internal error: %v", p))
				}
				span.Error(fmt.Errorf("panic: %v", p))
			} else if rec.code >= 500 {
				span.Error(fmt.Errorf("HTTP %d", rec.code))
			}
			slow := b.cfg.SlowRequest > 0 && d >= b.cfg.SlowRequest
			var capIDs []uint64
			if slow {
				// Snapshot goroutine+mutex profiles tagged with this
				// trace before the span closes, so the /debug/traces
				// entry carries a link to the evidence. The profiler
				// rate-limits trigger captures internally.
				capIDs = b.profz.CaptureSlow(span.TraceIDString())
				if len(capIDs) > 0 {
					span.SetAttr("profiles", profileRingURL(span.TraceIDString(), capIDs))
				}
			}
			lat.ObserveExemplar(d.Seconds(), span.TraceIDString())
			span.SetAttr("code", strconv.Itoa(rec.code))
			span.End()
			slo.Observe(d.Seconds())
			b.reg.Counter("hostprof_http_requests_total",
				obs.L("endpoint", endpoint),
				obs.L("code", strconv.Itoa(rec.code))).Inc()
			if slow {
				b.slowlog.Add(prof.SlowEntry{
					Endpoint:   endpoint,
					Code:       rec.code,
					Seconds:    d.Seconds(),
					TraceID:    span.TraceIDString(),
					CaptureIDs: capIDs,
				})
				b.log.LogAttrs(r.Context(), slog.LevelWarn, "slow request",
					slog.String("endpoint", endpoint),
					slog.Int("code", rec.code),
					slog.Duration("elapsed", d),
					slog.String("stages", formatStages(span.Stages())),
					slog.String("profiles", profileRingURL(span.TraceIDString(), capIDs)))
			}
		}()
		h(rec, r)
	}
}

// profileRingURL renders the /debug/prof/ link for a slow request's
// trigger captures: the trace-filtered index when the request was
// traced, the capture IDs otherwise, "-" when the trigger was in
// cooldown and nothing was captured.
func profileRingURL(traceID string, capIDs []uint64) string {
	switch {
	case len(capIDs) == 0:
		return "-"
	case traceID != "":
		return "/debug/prof/?trace=" + traceID
	default:
		var sb strings.Builder
		for i, id := range capIDs {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString("/debug/prof/")
			sb.WriteString(strconv.FormatUint(id, 10))
		}
		return sb.String()
	}
}

// formatStages renders a span's child durations as a compact breakdown
// ("store.ingest=1.2ms profile=840ms"); "-" when tracing is off or no
// stage completed.
func formatStages(stages []tracer.Stage) string {
	if len(stages) == 0 {
		return "-"
	}
	var sb strings.Builder
	for i, st := range stages {
		if i > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteString(st.Name)
		sb.WriteByte('=')
		sb.WriteString(st.Duration.Round(time.Microsecond).String())
	}
	return sb.String()
}

// admit is the /v1/report overload gate: beyond MaxInflightReports
// concurrent requests, excess load is shed immediately with 429 +
// Retry-After rather than queueing onto a saturated store or profiler.
func (b *Backend) admit(h http.HandlerFunc) http.HandlerFunc {
	if b.cfg.MaxInflightReports <= 0 {
		return h
	}
	limit := int64(b.cfg.MaxInflightReports)
	return func(w http.ResponseWriter, r *http.Request) {
		if b.inflight.Add(1) > limit {
			b.inflight.Add(-1)
			b.met.shed.Inc()
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, "server overloaded, retry later")
			return
		}
		defer b.inflight.Add(-1)
		h(w, r)
	}
}

// faulty exposes the handler to the test-only fault plane (see
// internal/fault): an armed hook can delay the request, fail it with
// 500, or panic into instrument's recovery. Unarmed, it is one atomic
// load.
func (b *Backend) faulty(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	point := fault.HTTPPoint(endpoint)
	return func(w http.ResponseWriter, r *http.Request) {
		if err := fault.Inject(point); err != nil {
			writeError(w, http.StatusInternalServerError, fmt.Sprintf("injected fault: %v", err))
			return
		}
		h(w, r)
	}
}

const maxBodyBytes = 1 << 20

// errorBody is the JSON error envelope every /v1 endpoint uses.
type errorBody struct {
	Error string `json:"error"`
}

// writeError sends a structured JSON error response.
func writeError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(errorBody{Error: msg})
}

func decodeJSON(w http.ResponseWriter, r *http.Request, dst any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("body exceeds %d bytes", tooBig.Limit))
			return false
		}
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad request: %v", err))
		return false
	}
	return true
}

func (b *Backend) handleReport(w http.ResponseWriter, r *http.Request) {
	var req ReportRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	switch {
	case len(req.Hosts) == 0:
		writeError(w, http.StatusBadRequest, "empty host list")
		return
	case len(req.Hosts) > b.cfg.MaxHostsPerReport:
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("report carries %d hosts, limit %d", len(req.Hosts), b.cfg.MaxHostsPerReport))
		return
	case req.User < 0:
		writeError(w, http.StatusBadRequest, "user must be non-negative")
		return
	case req.Time < 0:
		writeError(w, http.StatusBadRequest, "time must be non-negative")
		return
	}
	list, err := b.report(r.Context(), req.User, req.Time, req.Hosts)
	switch {
	case errors.Is(err, errNotTrained):
		writeError(w, http.StatusServiceUnavailable, err.Error())
		return
	case errors.Is(err, core.ErrNoLabels), errors.Is(err, core.ErrEmptySession):
		// Profiling undefined for this session: legitimate, no ads.
		list = nil
	case err != nil:
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	resp := ReportResponse{Ads: make([]WireAd, 0, len(list))}
	for _, ad := range list {
		resp.Ads = append(resp.Ads, WireAd{
			ID: ad.ID, Landing: ad.LandingHost, W: ad.Size.W, H: ad.Size.H,
		})
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		// Response already committed; nothing safe to do.
		return
	}
}

func (b *Backend) handleProfileBatch(w http.ResponseWriter, r *http.Request) {
	var req ProfileBatchRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	switch {
	case len(req.Sessions) == 0:
		writeError(w, http.StatusBadRequest, "empty session list")
		return
	case len(req.Sessions) > b.cfg.MaxSessionsPerBatch:
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("batch carries %d sessions, limit %d", len(req.Sessions), b.cfg.MaxSessionsPerBatch))
		return
	}
	for i, s := range req.Sessions {
		if len(s) > b.cfg.MaxHostsPerReport {
			writeError(w, http.StatusBadRequest,
				fmt.Sprintf("session %d carries %d hosts, limit %d", i, len(s), b.cfg.MaxHostsPerReport))
			return
		}
	}
	vecs, errs, err := b.ProfileSessions(r.Context(), req.Sessions)
	if errors.Is(err, errNotTrained) {
		writeError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	tax := b.cfg.Ontology.Taxonomy()
	resp := ProfileBatchResponse{Profiles: make([]ProfileResult, len(req.Sessions))}
	for i := range req.Sessions {
		if errs[i] != nil {
			resp.Profiles[i].Error = errs[i].Error()
			continue
		}
		cats := make(map[string]float64)
		for id, v := range vecs[i] {
			if v != 0 {
				cats[tax.Category(id).Name] = v
			}
		}
		resp.Profiles[i].Categories = cats
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		return
	}
}

func (b *Backend) handleFeedback(w http.ResponseWriter, r *http.Request) {
	var req FeedbackRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	// Full validation before touching backend state: a bad request must
	// leave the campaign tallies untouched.
	switch {
	case req.Source != "eavesdropper" && req.Source != "original":
		writeError(w, http.StatusBadRequest, "source must be eavesdropper or original")
		return
	case req.User < 0:
		writeError(w, http.StatusBadRequest, "user must be non-negative")
		return
	case req.AdID < 0:
		writeError(w, http.StatusBadRequest, "ad_id must be non-negative")
		return
	}
	b.observeImpression(req.Source, req.Clicked)
	w.WriteHeader(http.StatusNoContent)
}

func (b *Backend) handleRetrain(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("async") == "1" {
		// Fire-and-poll mode: the run is detached from this request's
		// lifetime; callers watch hostprof_retrain_state (or /v1/stats)
		// for completion. 202 either way — joining an in-flight run is
		// exactly what a second async request means.
		b.RetrainAsync(context.WithoutCancel(r.Context()))
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(map[string]string{"status": "retraining"})
		return
	}
	// Synchronous mode: the wait is bound to the request context (a
	// dropped client stops waiting), but the run itself is detached so a
	// disconnect cannot abort training that other callers joined.
	leader, err := b.retrains.Do(r.Context(), context.WithoutCancel(r.Context()), b.retrainRun)
	if sp := tracer.FromContext(r.Context()); sp != nil {
		// Joiners attached to an in-flight run carry that on their
		// trace: the retrain span lives in the leader's trace.
		sp.SetAttr("retrain_leader", strconv.FormatBool(leader))
	}
	switch {
	case err == nil:
		w.WriteHeader(http.StatusNoContent)
	case errors.Is(err, core.ErrEmptyCorpus):
		writeError(w, http.StatusConflict, err.Error())
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, err.Error())
	case errors.Is(err, context.Canceled):
		writeError(w, http.StatusServiceUnavailable, err.Error())
	default:
		writeError(w, http.StatusInternalServerError, err.Error())
	}
}

func (b *Backend) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(b.CurrentStats()); err != nil {
		return
	}
}
