package experiment

import (
	"fmt"

	"hostprof/internal/baseline"
)

// BaselineStats compares the paper's embedding profiler against the
// bracketing comparators, all run through the identical campaign: the
// ontology-only profiler (what an observer can do without representation
// learning), the oracle (full OTT visibility) and the random profiler.
type BaselineStats struct {
	// Affinity maps profiler name → mean ground-truth affinity of the
	// ads it selected.
	Affinity map[string]float64
	// Failures maps profiler name → sessions it could not profile.
	Failures map[string]int64
	// CTRPercent maps profiler name → realized eavesdropper CTR.
	CTRPercent map[string]float64
}

// baselineNames orders the output.
var baselineNames = []string{"embedding", "ontology-only", "oracle", "random"}

// TableBaselines runs the ad campaign once per profiler.
func TableBaselines(s *Setup) (BaselineStats, error) {
	res := BaselineStats{
		Affinity:   make(map[string]float64),
		Failures:   make(map[string]int64),
		CTRPercent: make(map[string]float64),
	}
	profilers := map[string]baseline.SessionProfiler{
		"embedding":     s.Profiler,
		"ontology-only": baseline.NewOntologyOnly(s.Ontology),
		"oracle":        baseline.NewOracle(s.Universe),
		"random":        baseline.NewRandom(s.Universe.Tax, s.Config.Seed+31),
	}
	for _, name := range baselineNames {
		r, err := RunCampaign(s, profilers[name], CampaignConfig{Seed: s.Config.Seed + 37})
		if err != nil {
			return res, fmt.Errorf("experiment: %s campaign: %w", name, err)
		}
		res.Affinity[name] = r.MeanEavesAffinity
		res.Failures[name] = r.ProfileFailures
		res.CTRPercent[name] = r.EavesCTR.Percent()
	}
	return res, nil
}

// Rows renders the baseline comparison.
func (b BaselineStats) Rows() []Row {
	measured := ""
	for i, n := range baselineNames {
		if i > 0 {
			measured += "; "
		}
		measured += fmt.Sprintf("%s aff=%.3f fail=%d", n, b.Affinity[n], b.Failures[n])
	}
	pass := b.Affinity["embedding"] > b.Affinity["random"] &&
		b.Failures["embedding"] < b.Failures["ontology-only"]
	return []Row{{
		ID:        "BASE",
		Name:      "Profiler comparison (extension)",
		Paper:     "paper compares only against ad-networks; baselines added here to bracket the technique",
		Measured:  measured,
		Criterion: "embedding beats random on affinity and ontology-only on coverage (fewer failed sessions)",
		Pass:      pass,
	}}
}
