package pcap

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	pkts := [][]byte{
		{1, 2, 3, 4},
		{},
		bytes.Repeat([]byte{0xaa}, 1500),
	}
	for i, p := range pkts {
		if err := w.WriteRecord(uint32(100+i), uint32(i), p); err != nil {
			t.Fatal(err)
		}
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.LinkType != LinkTypeEthernet {
		t.Fatalf("link type %d", r.LinkType)
	}
	recs, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(pkts) {
		t.Fatalf("got %d records", len(recs))
	}
	for i, rec := range recs {
		if !bytes.Equal(rec.Data, pkts[i]) {
			t.Fatalf("record %d data mismatch", i)
		}
		if rec.TimeSec != uint32(100+i) || rec.TimeMicro != uint32(i) {
			t.Fatalf("record %d timestamp %d.%d", i, rec.TimeSec, rec.TimeMicro)
		}
		if rec.OrigLen != uint32(len(pkts[i])) {
			t.Fatalf("record %d origlen %d", i, rec.OrigLen)
		}
	}
}

func TestBigEndianRead(t *testing.T) {
	// Hand-craft a big-endian capture with one 3-byte record.
	var buf bytes.Buffer
	be := binary.BigEndian
	hdr := make([]byte, 24)
	be.PutUint32(hdr[0:4], 0xa1b2c3d4)
	be.PutUint16(hdr[4:6], 2)
	be.PutUint16(hdr[6:8], 4)
	be.PutUint32(hdr[16:20], 65535)
	be.PutUint32(hdr[20:24], 1)
	buf.Write(hdr)
	rec := make([]byte, 16)
	be.PutUint32(rec[0:4], 7)
	be.PutUint32(rec[4:8], 8)
	be.PutUint32(rec[8:12], 3)
	be.PutUint32(rec[12:16], 3)
	buf.Write(rec)
	buf.Write([]byte{9, 9, 9})

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if got.TimeSec != 7 || got.TimeMicro != 8 || len(got.Data) != 3 {
		t.Fatalf("record %+v", got)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("err = %v, want EOF", err)
	}
}

func TestBadMagic(t *testing.T) {
	if _, err := NewReader(bytes.NewReader(make([]byte, 24))); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v", err)
	}
}

func TestTruncatedHeader(t *testing.T) {
	if _, err := NewReader(bytes.NewReader(make([]byte, 10))); err == nil {
		t.Fatal("expected error")
	}
}

func TestTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteRecord(1, 2, []byte{1, 2, 3, 4, 5}); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	r, err := NewReader(bytes.NewReader(data[:len(data)-2]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v", err)
	}
}

func TestEmptyCapture(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.writeHeader(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := r.ReadAll()
	if err != nil || len(recs) != 0 {
		t.Fatalf("recs=%v err=%v", recs, err)
	}
}

func TestSnapLenEnforced(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.snapLen = 4
	if err := w.WriteRecord(0, 0, []byte{1, 2, 3, 4, 5, 6}); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Data) != 4 || rec.OrigLen != 6 {
		t.Fatalf("caplen=%d origlen=%d", len(rec.Data), rec.OrigLen)
	}
}
