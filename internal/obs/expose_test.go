package obs

import (
	"encoding/json"
	"math"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// expositionLine matches one sample line of the Prometheus text format:
// a valid metric name, an optional brace-delimited label set, and a
// numeric value.
var expositionLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\\n])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\\n])*")*\})? (NaN|[+-]?Inf|[+-]?[0-9].*)$`)

func scrape(t *testing.T, r *Registry) string {
	t.Helper()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func TestExpositionFormatValid(t *testing.T) {
	r := NewRegistry()
	r.Describe("requests_total", "total requests\nby code")
	r.Counter("requests_total", L("code", "200")).Add(7)
	r.Counter("requests_total", L("code", "500")).Inc()
	r.Gauge("queue_depth").Set(3.5)
	r.GaugeFunc("uptime", func() float64 { return 42 })
	r.Histogram("lat_seconds", []float64{0.1, 1}).Observe(0.05)
	r.Histogram("lat_seconds", nil).Observe(0.5)
	r.Histogram("lat_seconds", nil).Observe(5)

	out := scrape(t, r)
	sawType := map[string]bool{}
	for _, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Fatalf("bad TYPE line: %q", line)
			}
			sawType[f[2]] = true
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			if strings.Contains(line, "\n") {
				t.Fatalf("unescaped newline in HELP: %q", line)
			}
			continue
		}
		if !expositionLine.MatchString(line) {
			t.Fatalf("invalid exposition line: %q", line)
		}
	}
	for _, fam := range []string{"requests_total", "queue_depth", "uptime", "lat_seconds"} {
		if !sawType[fam] {
			t.Fatalf("missing # TYPE for %s in:\n%s", fam, out)
		}
	}
	for _, want := range []string{
		`requests_total{code="200"} 7`,
		`requests_total{code="500"} 1`,
		"queue_depth 3.5",
		"uptime 42",
		`lat_seconds_bucket{le="+Inf"} 3`,
		"lat_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestLabelValueEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", L("path", `a\b"c`+"\n"+`d`)).Inc()
	out := scrape(t, r)
	want := `m{path="a\\b\"c\nd"} 1`
	if !strings.Contains(out, want) {
		t.Fatalf("escaped line %q not found in:\n%s", want, out)
	}
	for _, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		if !strings.HasPrefix(line, "#") && !expositionLine.MatchString(line) {
			t.Fatalf("invalid line after escaping: %q", line)
		}
	}
}

func TestMetricNameSanitized(t *testing.T) {
	r := NewRegistry()
	r.Counter("2bad name-with.dots", L("bad label", "v")).Inc()
	out := scrape(t, r)
	if !strings.Contains(out, `_bad_name_with_dots{bad_label="v"} 1`) {
		t.Fatalf("name not sanitized:\n%s", out)
	}
}

func TestHistogramExpositionMonotone(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []float64{4, 1, 2, 2, math.Inf(1)}) // unsorted + dup + inf
	for i := 0; i < 100; i++ {
		h.Observe(float64(i % 7))
	}
	out := scrape(t, r)
	re := regexp.MustCompile(`h_bucket\{le="([^"]+)"\} (\d+)`)
	var prevLE, prevCount float64 = math.Inf(-1), -1
	n := 0
	for _, m := range re.FindAllStringSubmatch(out, -1) {
		le := math.Inf(1)
		if m[1] != "+Inf" {
			var err error
			le, err = strconv.ParseFloat(m[1], 64)
			if err != nil {
				t.Fatalf("bad le %q: %v", m[1], err)
			}
		}
		count, _ := strconv.ParseFloat(m[2], 64)
		if le <= prevLE {
			t.Fatalf("bucket bounds not increasing: %v after %v", le, prevLE)
		}
		if count < prevCount {
			t.Fatalf("bucket counts not monotone: %v after %v", count, prevCount)
		}
		prevLE, prevCount = le, count
		n++
	}
	if n != 4 { // 1, 2, 4, +Inf
		t.Fatalf("bucket lines = %d, want 4:\n%s", n, out)
	}
	if !strings.Contains(out, `h_bucket{le="+Inf"} 100`) || !strings.Contains(out, "h_count 100") {
		t.Fatalf("+Inf bucket must equal count:\n%s", out)
	}
}

func TestSnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("c", L("k", "v")).Add(3)
	r.Gauge("g").Set(1.5)
	r.Histogram("h", []float64{1, 10}).Observe(0.5)
	r.Histogram("h", nil).Observe(100)

	raw, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var decoded []MetricSnapshot
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatal(err)
	}
	byName := map[string]MetricSnapshot{}
	for _, m := range decoded {
		byName[m.Name] = m
	}
	if c := byName["c"]; c.Kind != "counter" || c.Value != 3 || c.Labels["k"] != "v" {
		t.Fatalf("counter snapshot: %+v", c)
	}
	if g := byName["g"]; g.Kind != "gauge" || g.Value != 1.5 {
		t.Fatalf("gauge snapshot: %+v", g)
	}
	h := byName["h"]
	if h.Kind != "histogram" || h.Count != 2 || h.Sum != 100.5 {
		t.Fatalf("histogram snapshot: %+v", h)
	}
	// 100 exceeds every finite bound: visible via Count, not Buckets.
	if len(h.Buckets) != 2 || h.Buckets[0].Count != 1 || h.Buckets[1].Count != 1 {
		t.Fatalf("histogram buckets: %+v", h.Buckets)
	}
}
