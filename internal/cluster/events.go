package cluster

import (
	"net/http"
	"strconv"
	"sync"
	"time"

	"hostprof/internal/obs"
)

// Event types recorded on the cluster timeline. The set is closed and
// documented here so dashboards and tests can match on it.
const (
	// EventShardUp / EventShardDown are liveness edges: the shard
	// answered a probe after not answering (or vice versa), or an
	// in-band request failure marked it dead.
	EventShardUp   = "shard_up"
	EventShardDown = "shard_down"
	// EventShardReady / EventShardUnready are readiness edges on an
	// alive shard (trained and durable vs. degraded or untrained).
	EventShardReady   = "shard_ready"
	EventShardUnready = "shard_unready"
	// EventModelVersion records a shard starting to serve a different
	// model version — distribution landing, or a restarted shard
	// recovering an old generation.
	EventModelVersion = "model_version"
	// EventRingRebalance records a ring rebuild from a membership
	// change (SetBackends or a completed resize migration).
	EventRingRebalance = "ring_rebalance"
	// EventShedOpen / EventShedClose bracket a shed window: the span
	// between the first request refused because its owning shard was
	// down and that shard answering a probe again.
	EventShedOpen  = "shed_open"
	EventShedClose = "shed_close"
	// EventMigration records a resize migration state-machine
	// transition (planning, copying, cutover, done, failed) with range
	// counts; EventMigrationRange records one range rolled back to its
	// old owner after exhausting its attempts.
	EventMigration      = "migration"
	EventMigrationRange = "migration_range"
)

// An Event is one structured entry on the cluster timeline. IDs are
// monotonically increasing per gateway, so ?since=<last seen id> is a
// stable cursor even as the ring evicts old entries.
type Event struct {
	ID       int64             `json:"id"`
	UnixNano int64             `json:"unix_nano"`
	Type     string            `json:"type"`
	Shard    string            `json:"shard,omitempty"`
	Msg      string            `json:"msg"`
	Attrs    map[string]string `json:"attrs,omitempty"`
}

// eventLog is the bounded timeline ring: fixed capacity, oldest
// evicted. All methods are safe for concurrent use and on nil (the
// disabled state — record becomes a nil check).
type eventLog struct {
	mu     sync.Mutex
	cap    int
	nextID int64
	buf    []Event // oldest first
}

func newEventLog(capacity int) *eventLog {
	if capacity <= 0 {
		capacity = 512
	}
	return &eventLog{cap: capacity}
}

// record appends one event, stamping its ID and timestamp.
func (l *eventLog) record(typ, shard, msg string, attrs map[string]string) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.nextID++
	ev := Event{
		ID:       l.nextID,
		UnixNano: time.Now().UnixNano(),
		Type:     typ,
		Shard:    shard,
		Msg:      msg,
		Attrs:    attrs,
	}
	if len(l.buf) >= l.cap {
		copy(l.buf, l.buf[1:])
		l.buf[len(l.buf)-1] = ev
	} else {
		l.buf = append(l.buf, ev)
	}
	l.mu.Unlock()
}

// since returns the retained events with ID > after, oldest first, and
// the newest assigned ID (the client's next cursor — valid even when
// no events matched).
func (l *eventLog) since(after int64) ([]Event, int64) {
	if l == nil {
		return nil, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	i := 0
	for i < len(l.buf) && l.buf[i].ID <= after {
		i++
	}
	out := make([]Event, len(l.buf)-i)
	copy(out, l.buf[i:])
	return out, l.nextID
}

// last returns up to n most recent events, newest first (the statusz
// rendering order).
func (l *eventLog) last(n int) []Event {
	if l == nil || n <= 0 {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if n > len(l.buf) {
		n = len(l.buf)
	}
	out := make([]Event, n)
	for i := 0; i < n; i++ {
		out[i] = l.buf[len(l.buf)-1-i]
	}
	return out
}

// event records one timeline entry and counts it by type. attrs come
// as alternating key/value pairs.
func (g *Gateway) event(typ, shard, msg string, attrs ...string) {
	var m map[string]string
	if len(attrs) >= 2 {
		m = make(map[string]string, len(attrs)/2)
		for i := 0; i+1 < len(attrs); i += 2 {
			m[attrs[i]] = attrs[i+1]
		}
	}
	g.events.record(typ, shard, msg, m)
	g.reg.Counter("hostprof_gateway_events_total", obs.L("type", typ)).Inc()
}

// handleEvents serves GET /v1/cluster/events: the retained timeline as
// JSON, oldest first, filtered with ?since=<id> (strictly greater) and
// bounded with ?limit=<n>. last_id is the cursor for the next poll.
func (g *Gateway) handleEvents(w http.ResponseWriter, r *http.Request) {
	var after int64
	if s := r.URL.Query().Get("since"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil || v < 0 {
			writeError(w, http.StatusBadRequest, "bad since cursor: "+s)
			return
		}
		after = v
	}
	events, lastID := g.events.since(after)
	if s := r.URL.Query().Get("limit"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "bad limit: "+s)
			return
		}
		if n < len(events) {
			events = events[len(events)-n:] // keep the newest
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"events":  events,
		"last_id": lastID,
	})
}
