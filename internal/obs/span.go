package obs

import "time"

// A Span measures the wall-clock duration of one operation and records
// it, in seconds, into a Histogram when ended. The zero Span and spans
// over nil histograms are valid no-ops, so callers can time
// unconditionally.
type Span struct {
	h     *Histogram
	start time.Time
}

// StartSpan begins timing an operation whose duration will be observed
// into h.
func StartSpan(h *Histogram) Span {
	return Span{h: h, start: time.Now()}
}

// End stops the span, records its duration into the histogram and
// returns the elapsed time. End may be called at most once per span;
// calling it on the zero Span is a no-op returning 0.
func (s Span) End() time.Duration {
	if s.start.IsZero() {
		return 0
	}
	d := time.Since(s.start)
	s.h.Observe(d.Seconds())
	return d
}

// Timed runs f and records its duration into h.
func Timed(h *Histogram, f func()) time.Duration {
	sp := StartSpan(h)
	f()
	return sp.End()
}
