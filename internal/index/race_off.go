//go:build !race

package index

// raceDetectorEnabled reports whether this binary was built with the
// race detector; see race_on.go.
const raceDetectorEnabled = false
