package core

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"os"
)

// modelWire is the on-disk representation of a Model.
type modelWire struct {
	Version int
	Dim     int
	Hosts   []string
	Counts  []int64
	In      []float64
	Out     []float64
}

const modelWireVersion = 1

// Save serializes the model to w in a self-describing binary format.
func (m *Model) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := gob.NewEncoder(bw)
	wire := modelWire{
		Version: modelWireVersion,
		Dim:     m.dim,
		Hosts:   m.vocab.hosts,
		Counts:  m.vocab.counts,
		In:      m.in,
		Out:     m.out,
	}
	if err := enc.Encode(&wire); err != nil {
		return fmt.Errorf("core: encoding model: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("core: flushing model: %w", err)
	}
	return nil
}

// Load deserializes a model previously written by Save.
func Load(r io.Reader) (*Model, error) {
	var wire modelWire
	if err := gob.NewDecoder(bufio.NewReader(r)).Decode(&wire); err != nil {
		return nil, fmt.Errorf("core: decoding model: %w", err)
	}
	if wire.Version != modelWireVersion {
		return nil, fmt.Errorf("core: unsupported model version %d", wire.Version)
	}
	if wire.Dim <= 0 || len(wire.Hosts) != len(wire.Counts) {
		return nil, fmt.Errorf("core: corrupt model header")
	}
	n := len(wire.Hosts) * wire.Dim
	if len(wire.In) != n || len(wire.Out) != n {
		return nil, fmt.Errorf("core: corrupt model weights: have %d/%d, want %d", len(wire.In), len(wire.Out), n)
	}
	v := &Vocab{
		hosts:  wire.Hosts,
		index:  make(map[string]int, len(wire.Hosts)),
		counts: wire.Counts,
	}
	for i, h := range wire.Hosts {
		v.index[h] = i
		v.total += wire.Counts[i]
	}
	if err := v.validate(); err != nil {
		return nil, err
	}
	return &Model{vocab: v, dim: wire.Dim, in: wire.In, out: wire.Out}, nil
}

// SaveFile writes the model to path, creating or truncating it.
func (m *Model) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("core: creating model file: %w", err)
	}
	if err := m.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a model from path.
func LoadFile(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("core: opening model file: %w", err)
	}
	defer f.Close()
	return Load(f)
}
