// Package synth generates the synthetic equivalent of the paper's
// measurement data: a universe of hostnames (first-party sites with
// topical ground truth, attached CDN/API support hosts, shared CDN
// infrastructure, and advertising/tracking hosts) plus a population of
// users whose browsing produces hostname request sequences with the same
// statistical structure the paper's algorithm exploits — topical
// co-browsing, site→support-host co-requests, ubiquitous tracker noise and
// heavy-tailed site popularity.
//
// The paper could not publish its dataset (1329 real users over six
// months); this package replaces it with a generator whose ground truth is
// known, which turns the paper's qualitative claims into testable ones.
package synth

import (
	"fmt"

	"hostprof/internal/stats"
)

// syllables used to assemble plausible, collision-free domain names.
var (
	nameParts = []string{
		"vista", "nova", "terra", "luna", "mundo", "zen", "flux", "byte",
		"net", "media", "press", "daily", "meta", "core", "prime", "alto",
		"rio", "sol", "mar", "blue", "red", "gold", "star", "cloud",
		"viaje", "casa", "foro", "tienda", "juego", "cine", "radio",
		"libro", "salud", "moto", "auto", "banca", "bolsa", "ruta",
	}
	tlds = []string{".com", ".net", ".org", ".es", ".io", ".tv", ".info", ".co"}
)

// nameGen produces unique hostnames deterministically from an RNG.
type nameGen struct {
	rng  *stats.RNG
	used map[string]bool
}

func newNameGen(rng *stats.RNG) *nameGen {
	return &nameGen{rng: rng, used: make(map[string]bool)}
}

// site returns a fresh second-level domain such as "lunapress.es".
func (g *nameGen) site() string {
	for {
		a := nameParts[g.rng.Intn(len(nameParts))]
		b := nameParts[g.rng.Intn(len(nameParts))]
		tld := tlds[g.rng.Intn(len(tlds))]
		name := a + b + tld
		if !g.used[name] {
			g.used[name] = true
			return name
		}
		// Collision: append a numeric disambiguator.
		name = fmt.Sprintf("%s%s%d%s", a, b, g.rng.Intn(1000), tld)
		if !g.used[name] {
			g.used[name] = true
			return name
		}
	}
}

// supportPrefixes label per-site infrastructure hosts; these mimic the
// "api.bkng.azure.com" case from the paper: hostnames that carry no
// ontology label and no downloadable content.
var supportPrefixes = []string{"cdn", "api", "static", "img", "assets", "ws", "media", "edge"}

// support returns a support hostname for the given site domain, e.g.
// "api.lunapress.es".
func (g *nameGen) support(site string, k int) string {
	p := supportPrefixes[k%len(supportPrefixes)]
	name := p + "." + site
	if g.used[name] {
		name = fmt.Sprintf("%s%d.%s", p, k, site)
	}
	g.used[name] = true
	return name
}

// sharedCDN returns a hostname on shared infrastructure, e.g.
// "s3-edge7.cdnwave.net": one provider serves many unrelated sites, so
// these hosts co-occur with everything and carry no topical signal.
func (g *nameGen) sharedCDN(provider, node int) string {
	name := fmt.Sprintf("s%d-edge%d.cdn%s.net", node%9, node, nameParts[provider%len(nameParts)])
	for g.used[name] {
		node++
		name = fmt.Sprintf("s%d-edge%d.cdn%s.net", node%9, node, nameParts[provider%len(nameParts)])
	}
	g.used[name] = true
	return name
}

// tracker returns an advertising/tracking hostname, e.g.
// "px3.adsflux.com". These populate the synthetic blocklists.
func (g *nameGen) tracker(network, k int) string {
	kinds := []string{"px", "beacon", "track", "ads", "sync", "tag"}
	name := fmt.Sprintf("%s%d.ads%s.com", kinds[k%len(kinds)], k, nameParts[network%len(nameParts)])
	for g.used[name] {
		k++
		name = fmt.Sprintf("%s%d.ads%s.com", kinds[k%len(kinds)], k, nameParts[network%len(nameParts)])
	}
	g.used[name] = true
	return name
}
