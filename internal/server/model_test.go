package server

import (
	"bytes"
	"io"
	"net/http"
	"testing"
)

// TestModelExportImportRoundTrip is the model-distribution contract: a
// trained backend exports a versioned artifact over GET /v1/model, a
// second (untrained) backend installs it via PUT /v1/model and becomes
// ready at the same version, and version negotiation (If-None-Match →
// 304, same-version PUT → no-op 204) avoids redundant transfers.
func TestModelExportImportRoundTrip(t *testing.T) {
	src := newBackendFixture(t)
	src.feedVisits(t)
	if err := src.b.Retrain(); err != nil {
		t.Fatalf("retrain: %v", err)
	}
	version := src.b.ModelVersion()
	if version == "" {
		t.Fatal("no model version after retrain")
	}

	// Export.
	resp, err := http.Get(src.srv.URL + "/v1/model")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/model → %d: %s", resp.StatusCode, data)
	}
	if got := resp.Header.Get(ModelVersionHeader); got != version {
		t.Fatalf("export version header %q, want %q", got, version)
	}

	// Conditional export: the version we already hold → 304, no body.
	req, _ := http.NewRequest(http.MethodGet, src.srv.URL+"/v1/model", nil)
	req.Header.Set("If-None-Match", resp.Header.Get("ETag"))
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body2, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotModified || len(body2) != 0 {
		t.Fatalf("conditional GET → %d with %d body bytes, want 304 empty", resp2.StatusCode, len(body2))
	}

	// Import into a fresh backend: it becomes ready at the same version
	// without ever training.
	dst := newBackendFixture(t)
	if dst.b.Ready() {
		t.Fatal("dst ready before import")
	}
	putReq, _ := http.NewRequest(http.MethodPut, dst.srv.URL+"/v1/model", bytes.NewReader(data))
	putReq.Header.Set(ModelVersionHeader, version)
	resp3, err := http.DefaultClient.Do(putReq)
	if err != nil {
		t.Fatal(err)
	}
	msg, _ := io.ReadAll(resp3.Body)
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusNoContent {
		t.Fatalf("PUT /v1/model → %d: %s", resp3.StatusCode, msg)
	}
	if !dst.b.Ready() {
		t.Fatal("dst not ready after import")
	}
	if got := dst.b.ModelVersion(); got != version {
		t.Fatalf("dst version %q, want %q", got, version)
	}

	// Same-version re-push is an acknowledged no-op.
	putReq2, _ := http.NewRequest(http.MethodPut, dst.srv.URL+"/v1/model", bytes.NewReader(data))
	resp4, err := http.DefaultClient.Do(putReq2)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp4.Body)
	resp4.Body.Close()
	if resp4.StatusCode != http.StatusNoContent || resp4.Header.Get(ModelVersionHeader) != version {
		t.Fatalf("idempotent re-push → %d (version %q)", resp4.StatusCode, resp4.Header.Get(ModelVersionHeader))
	}

	// The imported model actually profiles: both backends agree on a
	// session profile.
	site := src.u.Hosts[src.u.Sites[0].Host].Name
	support := src.u.Hosts[src.u.Sites[0].Support[0]].Name
	ext := &Extension{BaseURL: dst.srv.URL, User: 0}
	if _, err := ext.ProfileBatch(t.Context(), [][]string{{site, support}}); err != nil {
		t.Fatalf("profile on imported model: %v", err)
	}
}

// TestModelPutRejectsGarbage: corrupted bytes and mismatched version
// headers must not dislodge the served model.
func TestModelPutRejectsGarbage(t *testing.T) {
	fx := newBackendFixture(t)
	fx.feedVisits(t)
	if err := fx.b.Retrain(); err != nil {
		t.Fatalf("retrain: %v", err)
	}
	version := fx.b.ModelVersion()

	// Garbage body → 400.
	req, _ := http.NewRequest(http.MethodPut, fx.srv.URL+"/v1/model", bytes.NewReader([]byte("not a model")))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage PUT → %d, want 400", resp.StatusCode)
	}

	// Valid bytes, lying version header → 400.
	art, ok, err := fx.b.ModelArtifact()
	if !ok || err != nil {
		t.Fatalf("artifact: ok=%v err=%v", ok, err)
	}
	req2, _ := http.NewRequest(http.MethodPut, fx.srv.URL+"/v1/model", bytes.NewReader(art.Data))
	req2.Header.Set(ModelVersionHeader, "deadbeefdeadbeef")
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("mismatched-version PUT → %d, want 400", resp2.StatusCode)
	}
	if got := fx.b.ModelVersion(); got != version {
		t.Fatalf("served version changed to %q after rejected pushes", got)
	}

	// GET on an untrained backend → 404.
	empty := newBackendFixture(t)
	resp3, err := http.Get(empty.srv.URL + "/v1/model")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp3.Body)
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusNotFound {
		t.Fatalf("GET on untrained → %d, want 404", resp3.StatusCode)
	}
}
