// Package stats provides the deterministic random-number generation,
// sampling, descriptive-statistics, hypothesis-testing and vector-math
// primitives shared by every other hostprof package.
//
// Everything in this package is seeded explicitly: two runs with the same
// seed produce bit-identical results, which makes the paper's experiments
// reproducible and the property-based tests meaningful.
package stats

import "math"

// RNG is a small, fast, seedable pseudo-random generator based on
// splitmix64. It is not cryptographically secure; it exists so that
// simulations do not depend on process-global random state.
//
// The zero value is a valid generator seeded with 0.
type RNG struct {
	state uint64
	// cached spare normal deviate for NormFloat64 (Box-Muller).
	spare    float64
	hasSpare bool
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Seed resets the generator state to seed, discarding any cached values.
func (r *RNG) Seed(seed uint64) {
	r.state = seed
	r.hasSpare = false
}

// Uint64 returns the next pseudo-random 64-bit value.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Split returns a new RNG whose stream is independent of r's future output.
// It is used to hand child components their own deterministic streams.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64())
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn called with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63 returns a non-negative 63-bit value.
func (r *RNG) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}

// NormFloat64 returns a standard normal deviate using the Box-Muller
// transform with caching of the spare value.
func (r *RNG) NormFloat64() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	m := math.Sqrt(-2 * math.Log(s) / s)
	r.spare = v * m
	r.hasSpare = true
	return u * m
}

// ExpFloat64 returns an exponential deviate with rate 1.
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.ShuffleInts(p)
	return p
}

// ShuffleInts shuffles s in place (Fisher-Yates).
func (r *RNG) ShuffleInts(s []int) {
	for i := len(s) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		s[i], s[j] = s[j], s[i]
	}
}

// Shuffle shuffles n elements using the provided swap function.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Gamma returns a deviate from the Gamma distribution with shape alpha and
// scale 1, using the Marsaglia-Tsang method. alpha must be positive.
func (r *RNG) Gamma(alpha float64) float64 {
	if alpha <= 0 {
		panic("stats: Gamma called with non-positive alpha")
	}
	if alpha < 1 {
		// Boost: Gamma(a) = Gamma(a+1) * U^(1/a).
		u := r.Float64()
		for u == 0 {
			u = r.Float64()
		}
		return r.Gamma(alpha+1) * math.Pow(u, 1/alpha)
	}
	d := alpha - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := r.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// Dirichlet fills out with a sample from the Dirichlet distribution whose
// concentration parameters are alpha. out and alpha must have the same
// length. The result sums to 1.
func (r *RNG) Dirichlet(alpha, out []float64) {
	if len(alpha) != len(out) {
		panic("stats: Dirichlet length mismatch")
	}
	var sum float64
	for i, a := range alpha {
		g := r.Gamma(a)
		out[i] = g
		sum += g
	}
	if sum == 0 {
		// Degenerate draw; fall back to uniform.
		for i := range out {
			out[i] = 1 / float64(len(out))
		}
		return
	}
	for i := range out {
		out[i] /= sum
	}
}

// Poisson returns a Poisson deviate with the given mean using Knuth's
// method for small means and a normal approximation above 30.
func (r *RNG) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		n := int(mean + math.Sqrt(mean)*r.NormFloat64() + 0.5)
		if n < 0 {
			return 0
		}
		return n
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}
