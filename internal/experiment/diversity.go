package experiment

import (
	"fmt"
	"sort"

	"hostprof/internal/stats"
)

// coreLevels are the paper's core thresholds (Figures 2 and 3).
var coreLevels = []float64{0.8, 0.6, 0.4, 0.2}

// DiversityResult is the outcome of a Figure-2/3-style core analysis.
type DiversityResult struct {
	// CoreSizes[i] is the number of items (hostnames or categories)
	// shared by at least coreLevels[i] of the users.
	CoreSizes []int
	// CommonToAll is the number of items shared by every user (the
	// paper's "all users are assigned the same 14 categories").
	CommonToAll int
	// TotalCCDF is the CCDF of per-user distinct-item counts.
	TotalCCDF []stats.CCDFPoint
	// OutsideCCDF[i] is the CCDF of per-user counts outside core i.
	OutsideCCDF [][]stats.CCDFPoint
	// ZeroOutsideFrac[i] is the fraction of users with no item outside
	// core i (paper Figure 3: 1.5/5.2/11.1/23.2%).
	ZeroOutsideFrac []float64
	// P25/P75 of the total distinct-item counts (paper Figure 2:
	// 75% of users visit >= 217 hostnames; 25% visit >= 1015).
	P25, P75 float64
}

// coreAnalysis runs the shared core/CCDF machinery over per-user item
// sets.
func coreAnalysis(perUser []map[string]bool) DiversityResult {
	nUsers := len(perUser)
	counts := make(map[string]int)
	for _, set := range perUser {
		for item := range set {
			counts[item]++
		}
	}

	var res DiversityResult
	for _, c := range counts {
		if c == nUsers {
			res.CommonToAll++
		}
	}

	totals := make([]float64, nUsers)
	for i, set := range perUser {
		totals[i] = float64(len(set))
	}
	res.TotalCCDF = stats.CCDF(totals)
	res.P25 = stats.Percentile(totals, 25)
	res.P75 = stats.Percentile(totals, 75)

	for _, level := range coreLevels {
		threshold := int(level * float64(nUsers))
		if threshold < 1 {
			threshold = 1
		}
		core := make(map[string]bool)
		for item, c := range counts {
			if c >= threshold {
				core[item] = true
			}
		}
		res.CoreSizes = append(res.CoreSizes, len(core))

		outside := make([]float64, nUsers)
		zero := 0
		for i, set := range perUser {
			n := 0
			for item := range set {
				if !core[item] {
					n++
				}
			}
			outside[i] = float64(n)
			if n == 0 {
				zero++
			}
		}
		res.OutsideCCDF = append(res.OutsideCCDF, stats.CCDF(outside))
		res.ZeroOutsideFrac = append(res.ZeroOutsideFrac, float64(zero)/float64(nUsers))
	}
	return res
}

// Fig2UserDiversityHostnames reproduces Figure 2: cores of hostnames
// visited by large fractions of users, and the CCDF of per-user visited
// hostnames outside each core. Tracker hosts are filtered first, as in
// the paper's pipeline.
func Fig2UserDiversityHostnames(s *Setup) DiversityResult {
	per := s.Filtered.PerUserVisits()
	users := s.Filtered.Users()
	sets := make([]map[string]bool, 0, len(users))
	for _, u := range users {
		set := make(map[string]bool)
		for _, v := range per[u] {
			set[v.Host] = true
		}
		sets = append(sets, set)
	}
	return coreAnalysis(sets)
}

// categoryAssignmentThreshold: a category counts as assigned to a user
// when some labelled host they visited carries it with at least this
// weight.
const categoryAssignmentThreshold = 0.2

// Fig3UserDiversityCategories reproduces Figure 3: the same core analysis
// after mapping hostnames to ontology categories, which shrinks the item
// space from |H| to 328 and makes cores much denser.
func Fig3UserDiversityCategories(s *Setup) DiversityResult {
	per := s.Filtered.PerUserVisits()
	users := s.Filtered.Users()
	sets := make([]map[string]bool, 0, len(users))
	for _, u := range users {
		set := make(map[string]bool)
		for _, v := range per[u] {
			lv, ok := s.Ontology.Lookup(v.Host)
			if !ok {
				continue
			}
			for ci, w := range lv {
				if w >= categoryAssignmentThreshold {
					set[fmt.Sprintf("c%03d", ci)] = true
				}
			}
		}
		sets = append(sets, set)
	}
	return coreAnalysis(sets)
}

// Fig2Rows renders the figure-2 result for EXPERIMENTS.md.
func (r DiversityResult) Fig2Rows() []Row {
	// Shape criteria: cores exist and shrink as the threshold drops
	// (Core 80 smallest), and the typical user visits many hostnames
	// beyond every core.
	sorted := sort.IntsAreSorted(r.CoreSizes)
	medianOutside80 := ccdfMedian(r.OutsideCCDF[0])
	return []Row{
		{
			ID:    "FIG2",
			Name:  "User diversity (hostnames)",
			Paper: "core sizes 30/120/271/639; P25=217, P75=1015 distinct hostnames",
			Measured: fmt.Sprintf("core sizes %v; P25=%.0f, P75=%.0f",
				r.CoreSizes, r.P25, r.P75),
			Criterion: "cores grow 80→20 and median user visits hosts outside Core 80",
			Pass:      sorted && r.CoreSizes[0] > 0 && medianOutside80 > 0,
		},
	}
}

// Fig3Rows renders the figure-3 result for EXPERIMENTS.md.
func (r DiversityResult) Fig3Rows() []Row {
	sorted := sort.IntsAreSorted(r.CoreSizes)
	increasing := true
	for i := 1; i < len(r.ZeroOutsideFrac); i++ {
		if r.ZeroOutsideFrac[i] < r.ZeroOutsideFrac[i-1] {
			increasing = false
		}
	}
	return []Row{
		{
			ID:    "FIG3",
			Name:  "User diversity (categories)",
			Paper: "core sizes 47/80/124/177; 14 categories common to all; 1.5/5.2/11.1/23.2% users with none outside cores",
			Measured: fmt.Sprintf("core sizes %v; %d common to all; zero-outside %s",
				r.CoreSizes, r.CommonToAll, fmtFracs(r.ZeroOutsideFrac)),
			Criterion: "cores grow 80→20, a non-empty all-user core exists, zero-outside fraction rises with core size",
			Pass:      sorted && r.CommonToAll > 0 && increasing,
		},
	}
}

// ccdfMedian returns the x at which the CCDF crosses 0.5 (the median).
func ccdfMedian(pts []stats.CCDFPoint) float64 {
	med := 0.0
	for _, p := range pts {
		if p.Frac >= 0.5 {
			med = p.X
		}
	}
	return med
}

func fmtFracs(fs []float64) string {
	out := ""
	for i, f := range fs {
		if i > 0 {
			out += "/"
		}
		out += fmt.Sprintf("%.1f%%", 100*f)
	}
	return out
}
