package prof

import (
	"encoding/json"
	"fmt"
	"html"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// Handler serves the capture ring under a /debug/prof/ mount:
//
//	GET <mount>/                 → HTML index of retained captures
//	GET <mount>/?format=json     → {"captures": [Capture...]} (metadata)
//	GET <mount>/?trace=<hex id>  → captures tagged with that trace ID
//	GET <mount>/<id>             → pprof-gzip bytes (feed to `go tool pprof`)
//
// Safe on a nil receiver (serves 404s).
func (p *Profiler) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if p == nil {
			http.Error(w, "profiling disabled", http.StatusNotFound)
			return
		}
		// The final path element selects a capture; bare mount lists.
		rest := r.URL.Path[strings.LastIndexByte(r.URL.Path, '/')+1:]
		if rest != "" {
			id, err := strconv.ParseUint(rest, 10, 64)
			if err != nil {
				http.Error(w, "bad capture id", http.StatusBadRequest)
				return
			}
			c := p.ring.Get(id)
			if c == nil {
				http.Error(w, "no such capture (evicted?)", http.StatusNotFound)
				return
			}
			w.Header().Set("Content-Type", "application/octet-stream")
			w.Header().Set("Content-Disposition",
				fmt.Sprintf(`attachment; filename="%s-%d.pb.gz"`, c.Kind, c.ID))
			w.Write(c.Bytes)
			return
		}
		var captures []*Capture
		if id := r.URL.Query().Get("trace"); id != "" {
			captures = p.ring.ByTrace(id)
		} else {
			captures = p.ring.Snapshot()
		}
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			if captures == nil {
				captures = []*Capture{}
			}
			json.NewEncoder(w).Encode(map[string]any{"captures": captures})
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		writeCaptureIndex(w, r.URL.Path, captures)
	})
}

// writeCaptureIndex renders the ring as a minimal HTML table, newest
// first, with download links.
func writeCaptureIndex(w http.ResponseWriter, mount string, captures []*Capture) {
	fmt.Fprintf(w, "<!DOCTYPE html><html><head><title>hostprof profiles</title></head><body>")
	fmt.Fprintf(w, "<h1>profile ring (%d captures)</h1>", len(captures))
	fmt.Fprintf(w, "<p>Download a capture and inspect it with <code>go tool pprof &lt;file&gt;</code>; diff two snapshots of the same kind with <code>-diff_base</code>.</p>")
	fmt.Fprintf(w, "<table border=1 cellpadding=4><tr><th>id</th><th>kind</th><th>reason</th><th>trace</th><th>time</th><th>size</th></tr>")
	for i := len(captures) - 1; i >= 0; i-- {
		c := captures[i]
		trace := ""
		if c.TraceID != "" {
			trace = fmt.Sprintf(`<a href="/debug/traces?trace=%s">%s</a>`,
				html.EscapeString(c.TraceID), html.EscapeString(c.TraceID))
		}
		fmt.Fprintf(w, `<tr><td><a href="%s%d">%d</a></td><td>%s</td><td>%s</td><td>%s</td><td>%s</td><td>%d</td></tr>`,
			html.EscapeString(mount), c.ID, c.ID,
			html.EscapeString(c.Kind), html.EscapeString(c.Reason), trace,
			time.Unix(0, c.UnixNano).UTC().Format(time.RFC3339), c.Size)
	}
	fmt.Fprintf(w, "</table></body></html>")
}
