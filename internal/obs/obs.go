// Package obs is a dependency-free observability layer: a metrics
// registry of atomic counters, gauges and fixed-bucket histograms with
// Prometheus text-format exposition and a JSON snapshot API, plus a
// lightweight span helper for stage latencies.
//
// Design rules:
//
//   - Hot paths pay one atomic op per update. Metric handles are
//     resolved once (a mutex-guarded map lookup) and then updated
//     lock-free; callers are expected to cache handles in struct
//     fields, not to resolve names per event.
//   - Every update method is safe on a nil receiver, and every
//     Registry method is safe on a nil *Registry (returning nil
//     handles), so instrumentation can be wired unconditionally and
//     disabled by simply not providing a registry.
//   - Exposition never invokes callbacks or reads values while holding
//     the registry lock, so a GaugeFunc may itself take locks that are
//     held around registry calls elsewhere.
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// A Label is one name/value pair attached to a metric.
type Label struct {
	Name, Value string
}

// L is shorthand for constructing a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// A Counter is a monotonically increasing integer metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds one. Safe on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Add adds d (negative deltas are ignored: counters only go up). Safe on
// a nil receiver.
func (c *Counter) Add(d int64) {
	if c == nil || d < 0 {
		return
	}
	c.v.Add(d)
}

// Value returns the current count. Safe on a nil receiver.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// A Gauge is an arbitrary float64 metric that may go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v. Safe on a nil receiver.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds d to the current value. Safe on a nil receiver.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value. Safe on a nil receiver.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// An Exemplar links one histogram observation to the trace that
// produced it, so a slow bucket leads to a concrete request in
// /debug/traces instead of an anonymous count.
type Exemplar struct {
	Value    float64 `json:"value"`
	TraceID  string  `json:"trace_id"`
	UnixNano int64   `json:"unix_nano"`
}

// A Histogram counts observations into fixed cumulative buckets and
// tracks their sum, in the Prometheus histogram model. Buckets are
// stored non-cumulatively and accumulated at exposition time, which
// makes the exposed series monotone by construction. Each bucket
// retains the most recent trace-ID exemplar observed into it.
type Histogram struct {
	upper  []float64 // sorted upper bounds; implicit +Inf bucket follows
	counts []atomic.Int64
	ex     []atomic.Pointer[Exemplar] // one slot per bucket, last write wins
	count  atomic.Int64
	sum    Gauge
}

// Observe records one sample. Safe on a nil receiver.
func (h *Histogram) Observe(v float64) {
	h.ObserveExemplar(v, "")
}

// ObserveExemplar records one sample and, when traceID is non-empty,
// stamps the sample's bucket with a trace exemplar. Safe on a nil
// receiver.
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	if h == nil {
		return
	}
	// First bucket whose upper bound is >= v; len(upper) is +Inf.
	i := sort.SearchFloat64s(h.upper, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	if traceID != "" {
		h.ex[i].Store(&Exemplar{Value: v, TraceID: traceID, UnixNano: time.Now().UnixNano()})
	}
}

// exemplar returns bucket i's retained exemplar, or nil.
func (h *Histogram) exemplar(i int) *Exemplar { return h.ex[i].Load() }

// Count returns the total number of observations. Safe on a nil
// receiver.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values. Safe on a nil receiver.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.Value()
}

// DefBuckets are general-purpose latency buckets in seconds (the
// Prometheus client defaults).
var DefBuckets = []float64{.005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// ExpBuckets returns n exponentially spaced bucket bounds starting at
// start and growing by factor.
func ExpBuckets(start, factor float64, n int) []float64 {
	if n <= 0 || start <= 0 || factor <= 1 {
		return nil
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = start
		start *= factor
	}
	return b
}

type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindHistogram:
		return "histogram"
	default:
		return "gauge"
	}
}

// metric is one registered series: a family name plus a concrete label
// assignment.
type metric struct {
	name   string
	labels []Label // sorted by name
	kind   metricKind

	counter *Counter
	gauge   *Gauge
	fn      func() float64
	hist    *Histogram
}

// A Registry holds named metrics and renders them for scraping. All
// methods are safe for concurrent use; get-or-create methods return the
// same handle for the same (name, labels) every time.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric
	help    map[string]string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		metrics: make(map[string]*metric),
		help:    make(map[string]string),
	}
}

// Default is the process-wide registry used when no explicit registry is
// wired.
var Default = NewRegistry()

// Describe attaches HELP text to a metric family name.
func (r *Registry) Describe(name, help string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.help[sanitizeName(name, true)] = help
}

// Counter returns the counter for (name, labels), creating it on first
// use. Safe on a nil *Registry (returns a nil, no-op handle).
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	m := r.lookup(name, labels, kindCounter, nil)
	if m == nil {
		return nil
	}
	return m.counter
}

// Gauge returns the gauge for (name, labels), creating it on first use.
// Safe on a nil *Registry.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	m := r.lookup(name, labels, kindGauge, nil)
	if m == nil {
		return nil
	}
	return m.gauge
}

// GaugeFunc registers a gauge whose value is computed by fn at scrape
// time. fn is always called without the registry lock held, so it may
// itself use the registry or take caller locks. Re-registering the same
// (name, labels) replaces the callback. Safe on a nil *Registry.
func (r *Registry) GaugeFunc(name string, fn func() float64, labels ...Label) {
	if m := r.lookup(name, labels, kindGaugeFunc, fn); m != nil {
		r.mu.Lock()
		m.fn = fn
		r.mu.Unlock()
	}
}

// Histogram returns the histogram for (name, labels), creating it with
// the given bucket upper bounds on first use (nil selects DefBuckets).
// Later calls ignore buckets and return the existing handle. Safe on a
// nil *Registry.
func (r *Registry) Histogram(name string, buckets []float64, labels ...Label) *Histogram {
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	m := r.lookup(name, labels, kindHistogram, buckets)
	if m == nil {
		return nil
	}
	return m.hist
}

// lookup is the shared get-or-create. arg carries the kind-specific
// construction parameter (histogram buckets or gauge callback).
func (r *Registry) lookup(name string, labels []Label, kind metricKind, arg any) *metric {
	if r == nil {
		return nil
	}
	name = sanitizeName(name, true)
	labels = canonLabels(labels)
	key := metricKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[key]; ok {
		if m.kind != kind {
			panic("obs: metric " + name + " re-registered as " + kind.String() +
				", was " + m.kind.String())
		}
		return m
	}
	m := &metric{name: name, labels: labels, kind: kind}
	switch kind {
	case kindCounter:
		m.counter = new(Counter)
	case kindGauge:
		m.gauge = new(Gauge)
	case kindGaugeFunc:
		m.fn = arg.(func() float64)
	case kindHistogram:
		upper := dedupSorted(arg.([]float64))
		m.hist = &Histogram{
			upper:  upper,
			counts: make([]atomic.Int64, len(upper)+1),
			ex:     make([]atomic.Pointer[Exemplar], len(upper)+1),
		}
	}
	r.metrics[key] = m
	return m
}

// collect snapshots the metric set (pointers, not values) so value reads
// and callbacks happen outside the registry lock, in deterministic
// order: by family name, then by label signature.
func (r *Registry) collect() ([]*metric, map[string]string) {
	if r == nil {
		return nil, nil
	}
	r.mu.Lock()
	ms := make([]*metric, 0, len(r.metrics))
	for _, m := range r.metrics {
		ms = append(ms, m)
	}
	help := make(map[string]string, len(r.help))
	for k, v := range r.help {
		help[k] = v
	}
	r.mu.Unlock()
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].name != ms[j].name {
			return ms[i].name < ms[j].name
		}
		return labelString(ms[i].labels) < labelString(ms[j].labels)
	})
	return ms, help
}

// canonLabels sanitizes label names and sorts pairs by name.
func canonLabels(labels []Label) []Label {
	if len(labels) == 0 {
		return nil
	}
	out := make([]Label, len(labels))
	for i, l := range labels {
		out[i] = Label{Name: sanitizeName(l.Name, false), Value: l.Value}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func metricKey(name string, labels []Label) string {
	return name + "\x00" + labelString(labels)
}

func labelString(labels []Label) string {
	s := ""
	for _, l := range labels {
		s += l.Name + "\x01" + l.Value + "\x00"
	}
	return s
}

// sanitizeName coerces s into a valid Prometheus metric name
// ([a-zA-Z_:][a-zA-Z0-9_:]*) or label name (no colon); invalid runes
// become '_'.
func sanitizeName(s string, allowColon bool) string {
	if s == "" {
		return "_"
	}
	b := []byte(s)
	for i, c := range b {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c == ':' && allowColon:
		case c >= '0' && c <= '9' && i > 0:
		default:
			b[i] = '_'
		}
	}
	return string(b)
}

// dedupSorted sorts bounds ascending and drops duplicates and
// non-finite entries, guaranteeing strictly increasing buckets.
func dedupSorted(bounds []float64) []float64 {
	out := make([]float64, 0, len(bounds))
	for _, b := range bounds {
		if !math.IsInf(b, 0) && !math.IsNaN(b) {
			out = append(out, b)
		}
	}
	sort.Float64s(out)
	n := 0
	for i, b := range out {
		if i == 0 || b != out[n-1] {
			out[n] = b
			n++
		}
	}
	return out[:n]
}
