package hostprof

import (
	"bytes"
	"errors"
	"testing"

	"hostprof/internal/sniffer"
	"hostprof/internal/stats"
	"hostprof/internal/synth"
)

// buildWorld returns a labelled universe, a browsing trace and the wire
// capture of that trace (TLS channel).
func buildWorld(t *testing.T) (*synth.Universe, *Ontology, *Trace, *sniffer.Capture) {
	t.Helper()
	u := synth.NewUniverse(synth.UniverseConfig{Sites: 100, Trackers: 15, Seed: 5})
	ont := synth.BuildOntology(u, synth.OntologyConfig{Coverage: 0.15, Seed: 7})
	pop := synth.NewPopulation(u, synth.PopulationConfig{Users: 12, Days: 3, Seed: 9})
	tr := pop.Browse()
	syn := sniffer.NewSynthesizer(sniffer.WireConfig{Channel: sniffer.ChannelMixed, Seed: 11})
	cap, err := syn.SynthesizeTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	return u, ont, tr, cap
}

func TestPipelineEndToEnd(t *testing.T) {
	u, ont, tr, cap := buildWorld(t)
	bl := synth.BuildBlocklist(u, 1, 13)
	p, err := NewPipeline(PipelineConfig{
		Ontology:  ont,
		Blocklist: bl,
		Train:     TrainConfig{Dim: 16, Epochs: 4, MinCount: 2, Workers: 1, Seed: 3, Subsample: -1},
		Profile:   ProfilerConfig{N: 50},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Profiling before training fails cleanly.
	if _, err := p.ProfileSession([]string{"x.example"}); !errors.Is(err, ErrNotTrained) {
		t.Fatalf("err = %v, want ErrNotTrained", err)
	}

	ingested := 0
	for i, frame := range cap.Packets {
		if p.Ingest(frame, cap.Times[i]) {
			ingested++
		}
	}
	if ingested == 0 {
		t.Fatal("observer extracted nothing")
	}
	// Blocklisted hosts never reach the trace.
	for _, h := range p.Trace().Hosts() {
		if bl.Contains(h) {
			t.Fatalf("tracker %q in pipeline trace", h)
		}
	}
	// The pipeline's trace is the observer's reconstruction of real
	// browsing: spot-check one user's hostname sequence matches (modulo
	// tracker filtering).
	if p.Trace().Len() == 0 {
		t.Fatal("empty pipeline trace")
	}

	if err := p.Retrain(); err != nil {
		t.Fatal(err)
	}
	if p.Model() == nil {
		t.Fatal("model missing after retrain")
	}

	// Profile an active user at their last visit time.
	visits := tr.Visits()
	last := visits[len(visits)-1]
	prof, err := p.ProfileUser(last.User, last.Time)
	if err != nil {
		t.Fatalf("ProfileUser: %v", err)
	}
	if !prof.Valid() || len(prof) != ont.Taxonomy().NumCategories() {
		t.Fatal("invalid profile")
	}
}

func TestPipelineRequiresOntology(t *testing.T) {
	if _, err := NewPipeline(PipelineConfig{}); err == nil {
		t.Fatal("expected error without ontology")
	}
}

func TestPipelineRetrainOnDay(t *testing.T) {
	_, ont, tr, _ := buildWorld(t)
	p, err := NewPipeline(PipelineConfig{
		Ontology: ont,
		Train:    TrainConfig{Dim: 8, Epochs: 2, MinCount: 2, Workers: 1, Seed: 3, Subsample: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range tr.Visits() {
		p.IngestVisit(v)
	}
	if err := p.RetrainOnDay(0); err != nil {
		t.Fatal(err)
	}
	if p.Model().Vocab().Len() == 0 {
		t.Fatal("empty vocab after day-0 training")
	}
	if err := p.RetrainOnDay(99); !errors.Is(err, ErrEmptyCorpus) {
		t.Fatalf("err = %v, want ErrEmptyCorpus", err)
	}
}

func TestFacadeConstructors(t *testing.T) {
	tax := NewTaxonomy()
	if tax.NumCategories() != 328 || tax.NumTops() != 34 {
		t.Fatal("taxonomy shape wrong")
	}
	ont := NewOntology(tax)
	v := tax.NewVector()
	v[0] = 1
	ont.Add("h.example", v)
	if !ont.Covered("h.example") {
		t.Fatal("ontology add/lookup broken")
	}
	bl := NewBlocklist()
	bl.Add("t.example")
	if !bl.Contains("t.example") {
		t.Fatal("blocklist broken")
	}
	db := NewAdDB(tax)
	db.Add("h.example", v, CreativeSize{W: 300, H: 250})
	sel, err := NewAdSelector(db, ont, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sel.K() != 20 {
		t.Fatalf("K = %d", sel.K())
	}
	got := sel.Select(v, 5)
	if len(got) != 1 || got[0].LandingHost != "h.example" {
		t.Fatalf("selected %v", got)
	}
}

func TestFacadeTrainAndPersist(t *testing.T) {
	corpus := [][]string{
		{"a.example", "b.example", "a.example", "b.example"},
		{"c.example", "d.example", "c.example", "d.example"},
	}
	m, err := Train(corpus, TrainConfig{Dim: 8, Epochs: 2, MinCount: 1, Workers: 1, Seed: 1, Subsample: -1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Vocab().Len() != m.Vocab().Len() {
		t.Fatal("round trip lost vocab")
	}
}

func TestFacadeParsers(t *testing.T) {
	rng := stats.NewRNG(1)
	rec := sniffer.BuildClientHello("facade.example", rng)
	if got, err := ParseSNI(rec); err != nil || got != "facade.example" {
		t.Fatalf("ParseSNI: %q %v", got, err)
	}
	q, err := sniffer.BuildDNSQuery("dns.example", 5)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := ParseDNSQueryName(q); err != nil || got != "dns.example" {
		t.Fatalf("ParseDNSQueryName: %q %v", got, err)
	}
	ini, err := sniffer.BuildQUICInitial("quic.example", rng)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := ParseQUICInitialSNI(ini); err != nil || got != "quic.example" {
		t.Fatalf("ParseQUICInitialSNI: %q %v", got, err)
	}
}
