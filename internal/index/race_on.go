//go:build race

package index

// raceDetectorEnabled reports whether this binary was built with the
// race detector. The zero-allocation guard tests skip under -race: the
// detector instruments the pooled scratch path and makes AllocsPerRun
// report detector-internal allocations.
const raceDetectorEnabled = true
