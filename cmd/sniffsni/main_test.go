package main

import (
	"os"
	"path/filepath"
	"testing"

	"hostprof/internal/pcap"
	"hostprof/internal/sniffer"
	"hostprof/internal/trace"
)

func writeCapture(t *testing.T, path string, cfg sniffer.WireConfig, visits []trace.Visit) {
	t.Helper()
	syn := sniffer.NewSynthesizer(cfg)
	cap, err := syn.SynthesizeTrace(trace.New(visits))
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := pcap.NewWriter(f)
	for i, frame := range cap.Packets {
		if err := w.WriteRecord(uint32(cap.Times[i]), 0, frame); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestRunExtractsVisits(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cap.pcap")
	writeCapture(t, path, sniffer.WireConfig{Channel: sniffer.ChannelMixed, Seed: 3}, []trace.Visit{
		{User: 1, Time: 10, Host: "one.example"},
		{User: 2, Time: 20, Host: "two.example"},
	})
	// Redirect stdout to capture the CSV.
	old := os.Stdout
	rf, wf, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = wf
	runErr := run(path, false, false)
	wf.Close()
	os.Stdout = old
	if runErr != nil {
		t.Fatal(runErr)
	}
	buf := make([]byte, 4096)
	n, _ := rf.Read(buf)
	out := string(buf[:n])
	for _, want := range []string{"user,time,host", "1,10,one.example", "2,20,two.example"} {
		if !contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestRunErrors(t *testing.T) {
	if err := run("/nonexistent.pcap", false, false); err == nil {
		t.Fatal("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.pcap")
	if err := os.WriteFile(bad, []byte("not a pcap file at all......"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(bad, false, false); err == nil {
		t.Fatal("bad magic accepted")
	}
}
