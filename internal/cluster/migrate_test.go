package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"strconv"
	"testing"
	"time"

	"hostprof/internal/core"
	"hostprof/internal/server"
)

// digestCount reads one user's record count straight off a shard's
// export surface (0 when the shard holds nothing for the user).
func digestCount(t *testing.T, shardURL string, user int) int {
	t.Helper()
	resp, err := http.Get(shardURL + "/v1/export/digest?users=" + strconv.Itoa(user))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("digest on %s → %d: %s", shardURL, resp.StatusCode, raw)
	}
	var out server.DigestResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out.Digests[strconv.Itoa(user)].Count
}

// reportAt posts one report with an explicit timestamp and returns the
// status code.
func reportAt(t *testing.T, baseURL string, user int, ts int64, hosts []string) int {
	t.Helper()
	resp := postJSON(t, baseURL+"/v1/report", server.ReportRequest{User: user, Time: ts, Hosts: hosts}, nil)
	return resp.StatusCode
}

// assertExactPlacement checks that every shard holds exactly the users
// the ring assigns to it and nothing else — the post-migration
// invariant (sources purged, targets complete).
func assertExactPlacement(t *testing.T, fx *clusterFixture, fed map[int]bool, shardIdx []int) {
	t.Helper()
	want := make(map[string]int)
	for uid := range fed {
		owner, ok := fx.gw.Ring().Owner(uid)
		if !ok {
			t.Fatal("ring empty")
		}
		want[owner]++
	}
	total := 0
	for _, i := range shardIdx {
		st := fx.backends[i].CurrentStats()
		total += st.Users
		if st.Users != want[fx.shardSrv[i].URL] {
			t.Errorf("shard %d holds %d users, ring assigns %d", i, st.Users, want[fx.shardSrv[i].URL])
		}
	}
	if total != len(fed) {
		t.Fatalf("cluster holds %d users total, fed %d — users duplicated or lost", total, len(fed))
	}
}

// TestGatewayResizeGrowShrinkExactPlacement is the migration acceptance
// test in-process: grow 3→4 (programmatic Resize), then shrink 4→3
// (HTTP resize), each time verifying that the data moved exactly — every
// user sits on precisely the shard the new ring names, sources are
// purged, the joiner got the model before taking traffic, and the whole
// shrink is traceable as one plan/copy/cutover span tree.
func TestGatewayResizeGrowShrinkExactPlacement(t *testing.T) {
	if testing.Short() {
		t.Skip("migration integration test skipped in -short")
	}
	fx := newClusterFixtureCfg(t, 3, 400, func(c *Config) { c.VirtualNodes = 8 })
	fed := fx.feedViaGateway(t)
	if len(fed) < 300 {
		t.Fatalf("population produced only %d reporting users", len(fed))
	}
	trained := fx.retrainViaGateway(t)

	three := append([]string(nil), fx.gw.Ring().Nodes()...)
	fourth := fx.addShard(t)
	four := append(append([]string(nil), three...), fourth)

	m, started, err := fx.gw.Resize(context.Background(), four)
	if err != nil || !started || m == nil {
		t.Fatalf("Resize: m=%v started=%v err=%v", m, started, err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := m.Wait(ctx); err != nil {
		t.Fatalf("grow migration: %v (status %+v)", err, m.Status())
	}
	if !fx.gw.Ring().Equal(four) {
		t.Fatalf("ring after grow spans %v, want %v", fx.gw.Ring().Nodes(), four)
	}
	// The joiner was seeded with the cluster model during planning.
	if got := fx.backends[3].ModelVersion(); got != trained.Version {
		t.Fatalf("joiner at model %q, cluster trained %q", got, trained.Version)
	}
	assertExactPlacement(t, fx, fed, []int{0, 1, 2, 3})
	st := fx.gw.ClusterStatus()
	if st.Migration == nil || st.Migration.State != "done" || st.Backends != 4 {
		t.Fatalf("cluster status after grow: %+v", st)
	}
	if st.Migration.RecordsCopied == 0 {
		t.Fatal("grow migration copied zero records")
	}

	// Gateway readiness is back to plain ok once the migration is done.
	resp, err := http.Get(fx.gwSrv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var ready struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ready); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || ready.Status != "ok" {
		t.Fatalf("/readyz after grow → %d %q, want 200 ok", resp.StatusCode, ready.Status)
	}

	// Shrink back over HTTP: shard 3 leaves, its keyspace streams to the
	// survivors.
	var rr ResizeResponse
	resp = postJSON(t, fx.gwSrv.URL+"/v1/cluster/resize", ResizeRequest{Backends: three}, nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("shrink resize → %d, want 202", resp.StatusCode)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		st = fx.gw.ClusterStatus()
		if st.Migration != nil && st.Migration.State == "done" && st.Backends == 3 {
			break
		}
		if st.Migration != nil && st.Migration.State == "failed" {
			t.Fatalf("shrink migration failed: %+v", st.Migration)
		}
		if time.Now().After(deadline) {
			t.Fatalf("shrink never finished: %+v", st.Migration)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !fx.gw.Ring().Equal(three) {
		t.Fatalf("ring after shrink spans %v, want %v", fx.gw.Ring().Nodes(), three)
	}
	assertExactPlacement(t, fx, fed, []int{0, 1, 2})
	_ = rr

	// The shrink ran under the resize request's trace: one trace holds
	// the handler span plus the migration's plan/copy/cutover spans.
	if st.Migration.TraceID == "" {
		t.Fatal("finished migration carries no trace ID")
	}
	tr := fetchTrace(t, fx.gwSrv.URL, st.Migration.TraceID)
	for _, span := range []string{"gw.cluster_resize", "gw.migrate.plan", "gw.migrate.copy", "gw.migrate.cutover"} {
		if !hasSpan(tr, span) {
			t.Errorf("trace %s lacks span %q (has %v)", st.Migration.TraceID, span, spanNames(tr))
		}
	}
}

// TestGatewayResizeDoubleWriteWindow holds the copy window open with a
// throttle and pushes live reports for a migrating user straight through
// it: every acked report must surface on the new owner after cutover
// (the zero-loss property the double-write exists for), and while the
// window is open the gateway's /readyz reports degraded.
func TestGatewayResizeDoubleWriteWindow(t *testing.T) {
	if testing.Short() {
		t.Skip("migration integration test skipped in -short")
	}
	fx := newClusterFixtureCfg(t, 3, 150, func(c *Config) {
		c.VirtualNodes = 8
		c.MigrationThrottle = time.Millisecond
		c.MigrationChunk = 16
		c.MigrationWorkers = 1
	})
	fed := fx.feedViaGateway(t)
	fx.retrainViaGateway(t)

	three := append([]string(nil), fx.gw.Ring().Nodes()...)
	fourth := fx.addShard(t)
	four := append(append([]string(nil), three...), fourth)
	newRing, err := NewRing(four, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Pick a fed user whose owner changes under the new ring.
	mover := -1
	for uid := range fed {
		before, _ := fx.gw.Ring().Owner(uid)
		after, _ := newRing.Owner(uid)
		if before != after {
			mover = uid
			break
		}
	}
	if mover < 0 {
		t.Fatal("no fed user moves under the new ring; test world degenerate")
	}
	oldOwner, _ := fx.gw.Ring().Owner(mover)
	newOwner, _ := newRing.Owner(mover)
	hosts := fx.sessions(1)[0]
	// Calibrate how many records one report of this host list appends
	// (the blocklist may drop some hosts), so acked reports translate to
	// an exact expected record count.
	preReport := digestCount(t, oldOwner, mover)
	if code := reportAt(t, fx.gwSrv.URL, mover, 5_000_000, hosts); code != http.StatusOK {
		t.Fatalf("pre-resize report → %d", code)
	}
	before := digestCount(t, oldOwner, mover)
	perReport := before - preReport
	if perReport == 0 {
		t.Fatal("calibration report appended no records; test world degenerate")
	}

	m, started, err := fx.gw.Resize(context.Background(), four)
	if err != nil || !started {
		t.Fatalf("Resize: started=%v err=%v", started, err)
	}

	// Hammer the mover while the copy crawls — capped so a slow machine
	// doesn't balloon the verification set. Every 200 is an ack the
	// cluster must never lose, whichever side of the cutover it landed.
	const maxReports = 500
	acked, duringCopy, sawDegraded := 0, 0, false
	for i := 0; ; i++ {
		st := m.Status()
		if terminalPhase(st.State) {
			break
		}
		if acked < maxReports {
			if code := reportAt(t, fx.gwSrv.URL, mover, int64(6_000_000+i), hosts); code == http.StatusOK {
				acked++
				if st.State == "copying" || st.State == "draining" {
					duringCopy++
				}
			} else {
				t.Fatalf("report during migration → %d", code)
			}
		} else {
			time.Sleep(5 * time.Millisecond)
		}
		if !sawDegraded {
			resp, err := http.Get(fx.gwSrv.URL + "/readyz")
			if err != nil {
				t.Fatal(err)
			}
			var ready struct {
				Status string `json:"status"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&ready); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if ready.Status == "degraded" && resp.StatusCode == http.StatusOK {
				sawDegraded = true
			}
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := m.Wait(ctx); err != nil {
		t.Fatalf("migration failed under live writes: %v (status %+v)", err, m.Status())
	}
	if duringCopy == 0 {
		t.Skip("copy window closed before any report landed; nothing exercised")
	}
	if !sawDegraded {
		t.Error("/readyz never reported degraded during the migration")
	}

	wantTotal := before + acked*perReport
	if got := digestCount(t, newOwner, mover); got != wantTotal {
		t.Fatalf("new owner holds %d records for mover, want %d (%d acked mid-copy, %d during copy window)",
			got, wantTotal, acked, duringCopy)
	}
	if got := digestCount(t, oldOwner, mover); got != 0 {
		t.Fatalf("old owner still holds %d records for mover after purge", got)
	}
}

// TestGatewayResizeTargetDeathRollbackAndResume kills the joiner
// mid-copy: its ranges roll back to the old owners (which never stopped
// serving), the migration parks as failed, a resize to a different
// membership is refused, and re-POSTing the same membership after the
// joiner returns resumes to completion — even though the restarted
// joiner came back empty.
func TestGatewayResizeTargetDeathRollbackAndResume(t *testing.T) {
	if testing.Short() {
		t.Skip("migration integration test skipped in -short")
	}
	fx := newClusterFixtureCfg(t, 3, 200, func(c *Config) {
		c.VirtualNodes = 8
		c.MigrationThrottle = time.Millisecond
		c.MigrationChunk = 8
		c.MigrationWorkers = 1
	})
	fed := fx.feedViaGateway(t)
	fx.retrainViaGateway(t)
	three := append([]string(nil), fx.gw.Ring().Nodes()...)

	// The joiner runs on a plain listener so the test can kill it and
	// restart a fresh (empty) backend on the same address.
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))
	newBackend := func() *server.Backend {
		b, err := server.New(server.Config{
			Ontology: fx.ont,
			AdDB:     fx.db,
			Train:    core.TrainConfig{Dim: 16, Epochs: 4, MinCount: 2, Workers: 1, Seed: 11, Subsample: -1},
			Profile:  core.ProfilerConfig{N: 30, Agg: core.AggIDF},
			Logger:   quiet,
		})
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	joinerURL := "http://" + addr
	joiner := newBackend()
	srv := &http.Server{Handler: joiner.Handler()}
	go srv.Serve(ln)
	four := append(append([]string(nil), three...), joinerURL)

	m, started, err := fx.gw.Resize(context.Background(), four)
	if err != nil || !started {
		t.Fatalf("Resize: started=%v err=%v", started, err)
	}
	// Wait until the copy has demonstrably begun, then kill the target.
	deadline := time.Now().Add(30 * time.Second)
	for m.Status().RecordsCopied == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("copy never started: %+v", m.Status())
		}
		time.Sleep(5 * time.Millisecond)
	}
	srv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := m.Wait(ctx); err == nil {
		t.Fatalf("migration finished although its only target died: %+v", m.Status())
	}
	st := m.Status()
	if st.State != "failed" || st.RangesAborted == 0 {
		t.Fatalf("after target death: %+v", st)
	}
	// Rollback: routing is unchanged, the old owners still serve every
	// fed user.
	if !fx.gw.Ring().Equal(three) {
		t.Fatalf("ring changed after a failed migration: %v", fx.gw.Ring().Nodes())
	}
	served := 0
	for uid := range fed {
		if code := reportAt(t, fx.gwSrv.URL, uid, 7_000_000, fx.sessions(1)[0]); code != http.StatusOK {
			t.Fatalf("report user %d after rollback → %d", uid, code)
		}
		served++
		if served >= 20 {
			break
		}
	}
	// A different membership is refused while the failed run is parked.
	resp := postJSON(t, fx.gwSrv.URL+"/v1/cluster/resize", ResizeRequest{Backends: three[:2]}, nil)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("conflicting resize → %d, want 409", resp.StatusCode)
	}
	if err := fx.gw.SetBackends(three[:2]); err == nil {
		t.Fatal("SetBackends succeeded across an installed migration")
	}

	// Restart the joiner on the same address — empty, as if its disk was
	// lost — and resume. The reset+recopy protocol must not care.
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	joiner2 := newBackend()
	srv2 := &http.Server{Handler: joiner2.Handler()}
	go srv2.Serve(ln2)
	t.Cleanup(func() { srv2.Close() })
	fx.gw.CheckHealth(context.Background())

	m2, started, err := fx.gw.Resize(context.Background(), four)
	if err != nil || !started || m2 != m {
		t.Fatalf("resume: m2==m %v started=%v err=%v", m2 == m, started, err)
	}
	if err := m2.Wait(ctx); err != nil {
		t.Fatalf("resumed migration: %v (status %+v)", err, m2.Status())
	}
	if got := m2.Status(); got.Resumes != 1 {
		t.Fatalf("resumes = %d, want 1", got.Resumes)
	}
	if !fx.gw.Ring().Equal(four) {
		t.Fatalf("ring after resume spans %v, want %v", fx.gw.Ring().Nodes(), four)
	}
	// Exact placement across fixture shards + the external joiner.
	want := make(map[string]int)
	for uid := range fed {
		owner, _ := fx.gw.Ring().Owner(uid)
		want[owner]++
	}
	total := 0
	for i := 0; i < 3; i++ {
		stats := fx.backends[i].CurrentStats()
		total += stats.Users
		if stats.Users != want[fx.shardSrv[i].URL] {
			t.Errorf("shard %d holds %d users, ring assigns %d", i, stats.Users, want[fx.shardSrv[i].URL])
		}
	}
	jstats := joiner2.CurrentStats()
	total += jstats.Users
	if jstats.Users != want[joinerURL] {
		t.Errorf("joiner holds %d users, ring assigns %d", jstats.Users, want[joinerURL])
	}
	if total != len(fed) {
		t.Fatalf("cluster holds %d users total, fed %d", total, len(fed))
	}
}

// TestResizeValidation: the resize endpoint refuses garbage before any
// migration machinery spins up, and a no-change resize is a clean noop.
func TestResizeValidation(t *testing.T) {
	fx := newClusterFixtureCfg(t, 2, 10, func(c *Config) { c.VirtualNodes = 8 })
	cases := []struct {
		name string
		body any
		want int
	}{
		{"empty body", map[string]any{}, http.StatusBadRequest},
		{"empty list", ResizeRequest{Backends: []string{}}, http.StatusBadRequest},
		{"bad URL", ResizeRequest{Backends: []string{"http://bad host"}}, http.StatusBadRequest},
		{"noop", ResizeRequest{Backends: fx.gw.Ring().Nodes()}, http.StatusOK},
	}
	for _, c := range cases {
		resp := postJSON(t, fx.gwSrv.URL+"/v1/cluster/resize", c.body, nil)
		if resp.StatusCode != c.want {
			t.Errorf("%s → %d, want %d", c.name, resp.StatusCode, c.want)
		}
	}
	var out ResizeResponse
	resp := postJSON(t, fx.gwSrv.URL+"/v1/cluster/resize", ResizeRequest{Backends: fx.gw.Ring().Nodes()}, &out)
	if resp.StatusCode != http.StatusOK || out.Status != "noop" {
		t.Fatalf("noop resize → %d %q", resp.StatusCode, out.Status)
	}
	if fmt.Sprint(fx.gw.ClusterStatus().Backends) != "2" {
		t.Fatalf("membership changed by a noop resize")
	}
}
