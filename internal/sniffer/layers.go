// Package sniffer implements the passive network observer of the paper:
// byte-level decoding of Ethernet/IPv4/IPv6/TCP/UDP frames, extraction of
// requested hostnames from TLS ClientHello SNI, QUIC v1 Initial packets
// (RFC 9001 initial protection included) and DNS queries, and a flow
// tracker that turns raw packets into per-user hostname request streams.
//
// It also contains the matching builders, so the synthetic population's
// browsing can be rendered to real packet bytes: the observer sees exactly
// what an on-path eavesdropper sees, nothing more.
package sniffer

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Common decode errors.
var (
	// ErrTruncated marks a packet shorter than its headers claim.
	ErrTruncated = errors.New("sniffer: truncated packet")
	// ErrUnsupported marks a link/network/transport type the decoder
	// does not handle.
	ErrUnsupported = errors.New("sniffer: unsupported protocol")
)

// EtherType values used by the decoder.
const (
	EtherTypeIPv4 = 0x0800
	EtherTypeIPv6 = 0x86dd
)

// IP protocol numbers.
const (
	ProtoTCP = 6
	ProtoUDP = 17
)

// Ethernet is a decoded Ethernet II header.
type Ethernet struct {
	Dst, Src  [6]byte
	EtherType uint16
}

// Decode parses an Ethernet frame, returning the payload.
func (e *Ethernet) Decode(data []byte) ([]byte, error) {
	if len(data) < 14 {
		return nil, fmt.Errorf("%w: ethernet header", ErrTruncated)
	}
	copy(e.Dst[:], data[0:6])
	copy(e.Src[:], data[6:12])
	e.EtherType = binary.BigEndian.Uint16(data[12:14])
	return data[14:], nil
}

// Append serializes the header followed by payload onto buf.
func (e *Ethernet) Append(buf, payload []byte) []byte {
	buf = append(buf, e.Dst[:]...)
	buf = append(buf, e.Src[:]...)
	buf = binary.BigEndian.AppendUint16(buf, e.EtherType)
	return append(buf, payload...)
}

// IPv4 is a decoded IPv4 header (options are skipped, not retained).
type IPv4 struct {
	TTL      byte
	Protocol byte
	Src, Dst [4]byte
	// HeaderLen is the decoded header length in bytes.
	HeaderLen int
	// TotalLen is the datagram length from the header.
	TotalLen int
}

// Decode parses an IPv4 header, returning the transport payload
// (truncated to TotalLen when the capture includes padding).
func (ip *IPv4) Decode(data []byte) ([]byte, error) {
	if len(data) < 20 {
		return nil, fmt.Errorf("%w: ipv4 header", ErrTruncated)
	}
	if v := data[0] >> 4; v != 4 {
		return nil, fmt.Errorf("%w: ip version %d in ipv4 decoder", ErrUnsupported, v)
	}
	ihl := int(data[0]&0x0f) * 4
	if ihl < 20 || len(data) < ihl {
		return nil, fmt.Errorf("%w: ipv4 options", ErrTruncated)
	}
	ip.HeaderLen = ihl
	ip.TotalLen = int(binary.BigEndian.Uint16(data[2:4]))
	ip.TTL = data[8]
	ip.Protocol = data[9]
	copy(ip.Src[:], data[12:16])
	copy(ip.Dst[:], data[16:20])
	end := ip.TotalLen
	if end > len(data) || end < ihl {
		end = len(data)
	}
	return data[ihl:end], nil
}

// Append serializes the header (fixed 20 bytes, checksum filled in)
// followed by payload onto buf.
func (ip *IPv4) Append(buf, payload []byte) []byte {
	start := len(buf)
	total := 20 + len(payload)
	buf = append(buf,
		0x45, 0, // version+IHL, DSCP
		byte(total>>8), byte(total),
		0, 0, 0x40, 0, // ID, flags (DF), fragment offset
		ip.TTL, ip.Protocol,
		0, 0, // checksum placeholder
	)
	buf = append(buf, ip.Src[:]...)
	buf = append(buf, ip.Dst[:]...)
	cs := headerChecksum(buf[start : start+20])
	binary.BigEndian.PutUint16(buf[start+10:start+12], cs)
	return append(buf, payload...)
}

// IPv6 is a decoded IPv6 fixed header (extension headers other than
// hop-by-hop are not traversed; NextHeader reports what follows).
type IPv6 struct {
	NextHeader byte
	HopLimit   byte
	Src, Dst   [16]byte
	PayloadLen int
}

// Decode parses an IPv6 fixed header, returning the payload.
func (ip *IPv6) Decode(data []byte) ([]byte, error) {
	if len(data) < 40 {
		return nil, fmt.Errorf("%w: ipv6 header", ErrTruncated)
	}
	if v := data[0] >> 4; v != 6 {
		return nil, fmt.Errorf("%w: ip version %d in ipv6 decoder", ErrUnsupported, v)
	}
	ip.PayloadLen = int(binary.BigEndian.Uint16(data[4:6]))
	ip.NextHeader = data[6]
	ip.HopLimit = data[7]
	copy(ip.Src[:], data[8:24])
	copy(ip.Dst[:], data[24:40])
	end := 40 + ip.PayloadLen
	if end > len(data) {
		end = len(data)
	}
	return data[40:end], nil
}

// Append serializes the fixed header followed by payload onto buf.
func (ip *IPv6) Append(buf, payload []byte) []byte {
	buf = append(buf, 0x60, 0, 0, 0)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(payload)))
	buf = append(buf, ip.NextHeader, ip.HopLimit)
	buf = append(buf, ip.Src[:]...)
	buf = append(buf, ip.Dst[:]...)
	return append(buf, payload...)
}

// TCP flag bits.
const (
	TCPFlagFIN = 1 << 0
	TCPFlagSYN = 1 << 1
	TCPFlagRST = 1 << 2
	TCPFlagPSH = 1 << 3
	TCPFlagACK = 1 << 4
)

// TCP is a decoded TCP header.
type TCP struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	Flags            byte
	Window           uint16
	HeaderLen        int
}

// Decode parses a TCP header, returning the segment payload.
func (t *TCP) Decode(data []byte) ([]byte, error) {
	if len(data) < 20 {
		return nil, fmt.Errorf("%w: tcp header", ErrTruncated)
	}
	t.SrcPort = binary.BigEndian.Uint16(data[0:2])
	t.DstPort = binary.BigEndian.Uint16(data[2:4])
	t.Seq = binary.BigEndian.Uint32(data[4:8])
	t.Ack = binary.BigEndian.Uint32(data[8:12])
	doff := int(data[12]>>4) * 4
	if doff < 20 || len(data) < doff {
		return nil, fmt.Errorf("%w: tcp options", ErrTruncated)
	}
	t.HeaderLen = doff
	t.Flags = data[13]
	t.Window = binary.BigEndian.Uint16(data[14:16])
	return data[doff:], nil
}

// Append serializes a 20-byte TCP header plus payload onto buf, computing
// the transport checksum over the given IPv4 pseudo-header addresses.
func (t *TCP) Append(buf []byte, src, dst [4]byte, payload []byte) []byte {
	start := len(buf)
	buf = binary.BigEndian.AppendUint16(buf, t.SrcPort)
	buf = binary.BigEndian.AppendUint16(buf, t.DstPort)
	buf = binary.BigEndian.AppendUint32(buf, t.Seq)
	buf = binary.BigEndian.AppendUint32(buf, t.Ack)
	buf = append(buf, 0x50, t.Flags) // data offset 5 words
	win := t.Window
	if win == 0 {
		win = 65535
	}
	buf = binary.BigEndian.AppendUint16(buf, win)
	buf = append(buf, 0, 0, 0, 0) // checksum, urgent
	buf = append(buf, payload...)
	cs := transportChecksum(src, dst, ProtoTCP, buf[start:])
	binary.BigEndian.PutUint16(buf[start+16:start+18], cs)
	return buf
}

// Append6 serializes a 20-byte TCP header plus payload onto buf with the
// checksum computed over the given IPv6 pseudo-header addresses.
func (t *TCP) Append6(buf []byte, src, dst [16]byte, payload []byte) []byte {
	start := len(buf)
	buf = t.Append(buf, [4]byte{}, [4]byte{}, payload)
	cs := transportChecksum6(src, dst, ProtoTCP, zeroChecksum(buf[start:], 16))
	binary.BigEndian.PutUint16(buf[start+16:start+18], cs)
	return buf
}

// zeroChecksum returns segment with the 2-byte checksum at off cleared;
// it mutates segment in place and returns it for convenience.
func zeroChecksum(segment []byte, off int) []byte {
	segment[off] = 0
	segment[off+1] = 0
	return segment
}

// UDP is a decoded UDP header.
type UDP struct {
	SrcPort, DstPort uint16
	Length           int
}

// Decode parses a UDP header, returning the datagram payload.
func (u *UDP) Decode(data []byte) ([]byte, error) {
	if len(data) < 8 {
		return nil, fmt.Errorf("%w: udp header", ErrTruncated)
	}
	u.SrcPort = binary.BigEndian.Uint16(data[0:2])
	u.DstPort = binary.BigEndian.Uint16(data[2:4])
	u.Length = int(binary.BigEndian.Uint16(data[4:6]))
	end := u.Length
	if end > len(data) || end < 8 {
		end = len(data)
	}
	return data[8:end], nil
}

// Append serializes a UDP header plus payload onto buf, computing the
// checksum over the given IPv4 pseudo-header addresses.
func (u *UDP) Append(buf []byte, src, dst [4]byte, payload []byte) []byte {
	start := len(buf)
	buf = binary.BigEndian.AppendUint16(buf, u.SrcPort)
	buf = binary.BigEndian.AppendUint16(buf, u.DstPort)
	buf = binary.BigEndian.AppendUint16(buf, uint16(8+len(payload)))
	buf = append(buf, 0, 0)
	buf = append(buf, payload...)
	cs := transportChecksum(src, dst, ProtoUDP, buf[start:])
	if cs == 0 {
		cs = 0xffff
	}
	binary.BigEndian.PutUint16(buf[start+6:start+8], cs)
	return buf
}

// Append6 serializes a UDP header plus payload onto buf with the checksum
// computed over the given IPv6 pseudo-header addresses (mandatory for
// IPv6; RFC 8200).
func (u *UDP) Append6(buf []byte, src, dst [16]byte, payload []byte) []byte {
	start := len(buf)
	buf = u.Append(buf, [4]byte{}, [4]byte{}, payload)
	cs := transportChecksum6(src, dst, ProtoUDP, zeroChecksum(buf[start:], 6))
	if cs == 0 {
		cs = 0xffff
	}
	binary.BigEndian.PutUint16(buf[start+6:start+8], cs)
	return buf
}

// headerChecksum computes the RFC 791 ones-complement checksum of an IPv4
// header whose checksum field is zeroed.
func headerChecksum(hdr []byte) uint16 {
	return onesComplement(sum16(hdr, 0))
}

// transportChecksum computes the TCP/UDP checksum including the IPv4
// pseudo-header.
func transportChecksum(src, dst [4]byte, proto byte, segment []byte) uint16 {
	var pseudo [12]byte
	copy(pseudo[0:4], src[:])
	copy(pseudo[4:8], dst[:])
	pseudo[9] = proto
	binary.BigEndian.PutUint16(pseudo[10:12], uint16(len(segment)))
	s := sum16(pseudo[:], 0)
	s = sum16(segment, s)
	return onesComplement(s)
}

// transportChecksum6 computes the TCP/UDP checksum over the IPv6
// pseudo-header (RFC 8200 Section 8.1).
func transportChecksum6(src, dst [16]byte, proto byte, segment []byte) uint16 {
	var pseudo [40]byte
	copy(pseudo[0:16], src[:])
	copy(pseudo[16:32], dst[:])
	binary.BigEndian.PutUint32(pseudo[32:36], uint32(len(segment)))
	pseudo[39] = proto
	s := sum16(pseudo[:], 0)
	s = sum16(segment, s)
	return onesComplement(s)
}

// sum16 accumulates 16-bit big-endian words of data into s, padding odd
// lengths with a zero byte.
func sum16(data []byte, s uint32) uint32 {
	for len(data) >= 2 {
		s += uint32(binary.BigEndian.Uint16(data[:2]))
		data = data[2:]
	}
	if len(data) == 1 {
		s += uint32(data[0]) << 8
	}
	return s
}

func onesComplement(s uint32) uint16 {
	for s>>16 != 0 {
		s = (s & 0xffff) + (s >> 16)
	}
	return ^uint16(s)
}

// VerifyIPv4Checksum recomputes an IPv4 header checksum and reports
// whether it matches (used in tests and diagnostics).
func VerifyIPv4Checksum(hdr []byte) bool {
	if len(hdr) < 20 {
		return false
	}
	return onesComplement(sum16(hdr[:20], 0)) == 0
}

// Packet is the zero-allocation decode target, in the spirit of
// gopacket's DecodingLayerParser: one Packet is reused across calls and
// the slices returned alias the input buffer.
type Packet struct {
	Eth  Ethernet
	IP4  IPv4
	IP6  IPv6
	TCP  TCP
	UDP  UDP
	IsV6 bool
	// Transport is ProtoTCP or ProtoUDP.
	Transport byte
	// Payload is the transport payload.
	Payload []byte
}

// SrcAddr returns the packet's source IP as a 16-byte value (IPv4 mapped
// into the first 4 bytes with a version tag in byte 15).
func (p *Packet) SrcAddr() (a [16]byte) {
	if p.IsV6 {
		return p.IP6.Src
	}
	copy(a[:4], p.IP4.Src[:])
	a[15] = 4
	return a
}

// DstAddr returns the packet's destination IP in the same encoding as
// SrcAddr.
func (p *Packet) DstAddr() (a [16]byte) {
	if p.IsV6 {
		return p.IP6.Dst
	}
	copy(a[:4], p.IP4.Dst[:])
	a[15] = 4
	return a
}

// DecodePacket parses an Ethernet frame down to its TCP/UDP payload into
// p without allocating. Unsupported stacks return ErrUnsupported.
func DecodePacket(data []byte, p *Packet) error {
	rest, err := p.Eth.Decode(data)
	if err != nil {
		return err
	}
	switch p.Eth.EtherType {
	case EtherTypeIPv4:
		p.IsV6 = false
		rest, err = p.IP4.Decode(rest)
		if err != nil {
			return err
		}
		p.Transport = p.IP4.Protocol
	case EtherTypeIPv6:
		p.IsV6 = true
		rest, err = p.IP6.Decode(rest)
		if err != nil {
			return err
		}
		p.Transport = p.IP6.NextHeader
	default:
		return fmt.Errorf("%w: ethertype %#04x", ErrUnsupported, p.Eth.EtherType)
	}
	switch p.Transport {
	case ProtoTCP:
		p.Payload, err = p.TCP.Decode(rest)
	case ProtoUDP:
		p.Payload, err = p.UDP.Decode(rest)
	default:
		return fmt.Errorf("%w: ip protocol %d", ErrUnsupported, p.Transport)
	}
	return err
}
