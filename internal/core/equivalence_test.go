package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"hostprof/internal/ontology"
	"hostprof/internal/stats"
)

// rankCosTol is the documented equivalence tolerance between the serial
// float64 scan and the packed float32 index. Packing a unit vector to
// float32 and taking a float32 dot product perturbs each cosine by at
// most about (d+2)·2⁻²⁴ (< 4e-6 at the d ≤ 48 exercised here); 5e-5
// leaves slack for the index's reassociated four-wide summation. Ranks
// must agree exactly except between candidates whose serial cosines
// differ by no more than this bound — where either order answers
// Eq. (3) equally well.
const rankCosTol = 5e-5

// randModel builds a frozen model over vocab random embeddings, zeroing
// the rows listed in zeroRows.
func randModel(t testing.TB, rng *stats.RNG, vocab, dim int, zeroRows ...int) *Model {
	t.Helper()
	hosts := make([]string, vocab)
	for i := range hosts {
		hosts[i] = fmt.Sprintf("h%04d.example", i)
	}
	in := make([]float64, vocab*dim)
	for i := range in {
		in[i] = rng.Float64()*2 - 1
	}
	for _, r := range zeroRows {
		for i := 0; i < dim; i++ {
			in[r*dim+i] = 0
		}
	}
	m, err := NewModelFromVectors(hosts, dim, in)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// assertIndexMatchesSerial compares the packed index's top-k against the
// serial float64 ranking of the whole vocabulary: lengths must match,
// every rank must carry the same ID — except where the serial cosines
// are within rankCosTol, i.e. a tolerated float32 tie — and returned
// scores must sit within the tolerance of their serial values.
func assertIndexMatchesSerial(t *testing.T, m *Model, query []float64, k int) {
	t.Helper()
	ref := m.NearestToVector(query, m.Vocab().Len(), nil)
	got := m.SimilarityIndex().Search(query, k)

	wantLen := k
	if wantLen > len(ref) {
		wantLen = len(ref)
	}
	if ref == nil {
		// Zero query (or empty model): both paths must return nothing.
		if got != nil {
			t.Fatalf("serial scan returned nil, index returned %d results", len(got))
		}
		return
	}
	if len(got) != wantLen {
		t.Fatalf("index returned %d results, want %d (vocab %d, k %d)", len(got), wantLen, m.Vocab().Len(), k)
	}
	serialCos := make(map[int]float64, len(ref))
	for _, n := range ref {
		serialCos[n.ID] = n.Cosine
	}
	for i, r := range got {
		cos, ok := serialCos[int(r.ID)]
		if !ok {
			t.Fatalf("rank %d: index ID %d missing from serial ranking", i, r.ID)
		}
		if d := math.Abs(float64(r.Score) - cos); d > rankCosTol {
			t.Fatalf("rank %d: index cosine %g vs serial %g for ID %d, diff %g > %g",
				i, r.Score, cos, r.ID, d, rankCosTol)
		}
		if int(r.ID) == ref[i].ID {
			continue
		}
		if d := math.Abs(cos - ref[i].Cosine); d > rankCosTol {
			t.Fatalf("rank %d: index ID %d (serial cos %g) vs serial ID %d (cos %g), diff %g > %g",
				i, r.ID, cos, ref[i].ID, ref[i].Cosine, d, rankCosTol)
		}
	}
}

// TestIndexSerialEquivalenceQuick drives random models through both
// scan paths: random dimensionality, vocabulary size and k (sometimes
// k ≥ vocab), with occasional zero rows and zero queries.
func TestIndexSerialEquivalenceQuick(t *testing.T) {
	property := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		vocab := 3 + rng.Intn(198)
		dim := 1 + rng.Intn(48)
		var zeroRows []int
		for r := 0; r < vocab; r++ {
			if rng.Float64() < 0.05 {
				zeroRows = append(zeroRows, r)
			}
		}
		m := randModel(t, rng, vocab, dim, zeroRows...)

		query := make([]float64, dim)
		if rng.Float64() >= 0.05 { // 5% of trials keep the zero query
			for i := range query {
				query[i] = rng.Float64()*2 - 1
			}
		}
		k := 1 + rng.Intn(vocab+10) // sometimes k > vocab
		assertIndexMatchesSerial(t, m, query, k)
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestIndexSerialEquivalenceTable(t *testing.T) {
	rng := stats.NewRNG(2026)
	for _, tc := range []struct {
		name       string
		vocab, dim int
		k          int
		zeroRows   []int
		zeroQuery  bool
		zeroModel  bool
	}{
		{name: "k beyond vocab", vocab: 7, dim: 5, k: 50},
		{name: "k zero", vocab: 7, dim: 5, k: 0},
		{name: "single host", vocab: 1, dim: 3, k: 1},
		{name: "single dim", vocab: 20, dim: 1, k: 5},
		{name: "zero query", vocab: 20, dim: 4, k: 5, zeroQuery: true},
		{name: "all-zero model", vocab: 16, dim: 6, k: 8, zeroModel: true},
		{name: "sprinkled zero rows", vocab: 40, dim: 9, k: 40, zeroRows: []int{0, 13, 39}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			zero := tc.zeroRows
			if tc.zeroModel {
				zero = zero[:0]
				for r := 0; r < tc.vocab; r++ {
					zero = append(zero, r)
				}
			}
			m := randModel(t, rng, tc.vocab, tc.dim, zero...)
			query := make([]float64, tc.dim)
			if !tc.zeroQuery {
				for i := range query {
					query[i] = rng.Float64()*2 - 1
				}
			}
			assertIndexMatchesSerial(t, m, query, tc.k)
		})
	}
}

// TestIndexSerialTieBreak plants exact duplicate vectors: both paths
// must order the resulting exact ties by ascending vocabulary ID, so
// the comparison is bit-for-bit, not merely within tolerance.
func TestIndexSerialTieBreak(t *testing.T) {
	rng := stats.NewRNG(77)
	dim := 6
	m := randModel(t, rng, 15, dim)
	for _, dup := range []int{4, 9, 14} {
		copy(m.in[dup*dim:(dup+1)*dim], m.in[1*dim:2*dim])
	}
	query := append([]float64(nil), m.in[1*dim:2*dim]...)

	ref := m.NearestToVector(query, 4, nil)
	got := m.SimilarityIndex().Search(query, 4)
	wantIDs := []int{1, 4, 9, 14}
	for i, id := range wantIDs {
		if ref[i].ID != id {
			t.Fatalf("serial rank %d: ID %d, want %d (tie-break by ascending ID)", i, ref[i].ID, id)
		}
		if int(got[i].ID) != id {
			t.Fatalf("index rank %d: ID %d, want %d (tie-break by ascending ID)", i, got[i].ID, id)
		}
	}
}

// TestNearestLabelledMatchesFilteredSerial checks the labelled-candidates
// view against filtering the full serial ranking down to labelled IDs.
func TestNearestLabelledMatchesFilteredSerial(t *testing.T) {
	rng := stats.NewRNG(88)
	m := randModel(t, rng, 60, 8)
	tax := ontology.NewTaxonomy()
	ont := ontology.New(tax)
	for id := 0; id < 60; id += 3 { // label every third host
		v := tax.NewVector()
		v[id%tax.NumCategories()] = 1
		ont.Add(m.Vocab().Host(id), v)
	}
	indexed := NewProfiler(m, ont, ProfilerConfig{N: 10})
	serial := NewProfiler(m, ont, ProfilerConfig{N: 10, SerialScan: true})

	session := []string{m.Vocab().Host(2), m.Vocab().Host(17), m.Vocab().Host(40)}
	got := indexed.NearestLabelled(session, 7)
	want := serial.NearestLabelled(session, 7)
	if len(got) != len(want) {
		t.Fatalf("labelled view returned %d hosts, serial filter %d", len(got), len(want))
	}
	for i := range got {
		if got[i].ID != want[i].ID {
			t.Fatalf("rank %d: labelled view ID %d, serial filter ID %d", i, got[i].ID, want[i].ID)
		}
		if d := math.Abs(got[i].Cosine - want[i].Cosine); d > rankCosTol {
			t.Fatalf("rank %d: cosine diff %g > %g", i, d, rankCosTol)
		}
	}
}

// TestProfileIndexedMatchesSerial profiles real trained-model sessions
// through both scan paths; the resulting category vectors must agree to
// within the neighbourhood tolerance.
func TestProfileIndexedMatchesSerial(t *testing.T) {
	fx := newProfilingFixture(t, 0.5)
	indexed := NewProfiler(fx.model, fx.ont, ProfilerConfig{N: 20})
	serial := NewProfiler(fx.model, fx.ont, ProfilerConfig{N: 20, SerialScan: true})
	sessions := [][]string{
		fx.ta[:4],
		fx.tb[len(fx.tb)-4:],
		{fx.ta[0], fx.tb[0]},
	}
	for i, s := range sessions {
		a, errA := indexed.ProfileSession(s)
		b, errB := serial.ProfileSession(s)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("session %d: indexed err %v, serial err %v", i, errA, errB)
		}
		if errA != nil {
			continue
		}
		for c := range a {
			if d := math.Abs(a[c] - b[c]); d > 1e-4 {
				t.Fatalf("session %d category %d: indexed %g vs serial %g", i, c, a[c], b[c])
			}
		}
	}
}

// vectorsAlmostEqual compares two category vectors to within 1-ulp-ish
// slack: profile aggregation folds map-ordered contributions, so the
// last bit of each weight varies run to run even on identical input.
func vectorsAlmostEqual(a, b ontology.Vector) bool {
	if (a == nil) != (b == nil) || len(a) != len(b) {
		return false
	}
	for c := range a {
		if math.Abs(a[c]-b[c]) > 1e-12 {
			return false
		}
	}
	return true
}

// TestProfileBatchMatchesSequential pins ProfileSessions to the
// per-session outputs of ProfileSession, errors included, in input
// order.
func TestProfileBatchMatchesSequential(t *testing.T) {
	fx := newProfilingFixture(t, 0.5)
	p := NewProfiler(fx.model, fx.ont, ProfilerConfig{N: 20})
	sessions := [][]string{
		fx.ta[:3],
		nil,                    // ErrEmptySession
		{"never-seen.example"}, // ErrNoLabels
		fx.tb[:3],
		{fx.ta[0]},
	}
	vecs, errs := p.ProfileSessions(context.Background(), sessions)
	if len(vecs) != len(sessions) || len(errs) != len(sessions) {
		t.Fatalf("batch sizes %d/%d, want %d", len(vecs), len(errs), len(sessions))
	}
	for i, s := range sessions {
		want, wantErr := p.ProfileSession(s)
		if !errors.Is(errs[i], wantErr) && !errors.Is(wantErr, errs[i]) {
			t.Fatalf("session %d: batch err %v, sequential err %v", i, errs[i], wantErr)
		}
		if !vectorsAlmostEqual(vecs[i], want) {
			t.Fatalf("session %d: batch profile differs from sequential", i)
		}
	}
}

// TestSessionKeyCanonical pins the cache-key contract: order and repeat
// insensitivity (under dedup), sensitivity to the influencing host set,
// inclusion of out-of-vocabulary labelled hosts, and the uncacheable
// empty key for sessions no host of which can influence the profile.
func TestSessionKeyCanonical(t *testing.T) {
	fx := newProfilingFixture(t, 0.5)
	v := fx.tax.NewVector()
	v[3] = 1
	fx.ont.Add("oov-labelled.example", v)
	p := NewProfiler(fx.model, fx.ont, ProfilerConfig{N: 5})

	a, b := fx.ta[0], fx.ta[1]
	k1 := p.SessionKey([]string{a, b, "unknown.example"})
	k2 := p.SessionKey([]string{b, "unknown.example", a, a})
	if k1 == "" || k1 != k2 {
		t.Fatalf("keys differ under permutation/dup/unknown noise: %q vs %q", k1, k2)
	}
	if k3 := p.SessionKey([]string{a}); k3 == k1 {
		t.Fatal("dropping an influencing host must change the key")
	}
	// An out-of-vocab labelled host influences the profile (alpha = 1)
	// and must therefore be part of the key.
	if p.SessionKey([]string{a, "oov-labelled.example"}) == p.SessionKey([]string{a}) {
		t.Fatal("out-of-vocabulary labelled host missing from the key")
	}
	if k := p.SessionKey([]string{"unknown.example"}); k != "" {
		t.Fatalf("all-unknown session key %q, want empty (uncacheable)", k)
	}
	// With SkipDedup, multiplicity shifts the session vector, so the
	// key must distinguish repeat counts.
	pd := NewProfiler(fx.model, fx.ont, ProfilerConfig{N: 5, SkipDedup: true})
	if pd.SessionKey([]string{a, a, b}) == pd.SessionKey([]string{a, b}) {
		t.Fatal("SkipDedup keys must track host multiplicity")
	}
}

// TestProfileSessionErrNoLabelsPinned pins ErrNoLabels for both ways a
// session can fail Eq. (4)'s denominator: every host unknown to model
// and ontology, and an in-vocabulary session whose neighbourhood holds
// no labelled host (empty ontology).
func TestProfileSessionErrNoLabelsPinned(t *testing.T) {
	fx := newProfilingFixture(t, 0.5)
	p := NewProfiler(fx.model, fx.ont, ProfilerConfig{N: 10})
	if _, err := p.ProfileSession([]string{"nope-1.example", "nope-2.example"}); !errors.Is(err, ErrNoLabels) {
		t.Fatalf("all-unknown session: err = %v, want ErrNoLabels", err)
	}
	empty := ontology.New(fx.tax)
	pu := NewProfiler(fx.model, empty, ProfilerConfig{N: 10})
	if _, err := pu.ProfileSession(fx.ta[:3]); !errors.Is(err, ErrNoLabels) {
		t.Fatalf("unlabelled neighbourhood: err = %v, want ErrNoLabels", err)
	}
}
