package server

import (
	"context"
	"errors"
	"reflect"
	"sort"
	"strings"
	"testing"

	"hostprof/internal/ads"
	"hostprof/internal/core"
	"hostprof/internal/obs"
	"hostprof/internal/store"
	"hostprof/internal/synth"
	"hostprof/internal/trace"
)

// newDurableBackend builds a backend over dir with the fixture world.
func newDurableBackend(t *testing.T, dir string, reg *obs.Registry) *Backend {
	t.Helper()
	u := synth.NewUniverse(synth.UniverseConfig{Sites: 100, Trackers: 15, Seed: 3})
	ont := synth.BuildOntology(u, synth.OntologyConfig{Coverage: 0.2, Seed: 5})
	db := ads.BuildFromOntology(ont, ads.BuildConfig{Seed: 7})
	b, err := New(Config{
		Ontology: ont,
		AdDB:     db,
		Train:    core.TrainConfig{Dim: 16, Epochs: 2, MinCount: 2, Workers: 1, Seed: 11, Subsample: -1},
		Profile:  core.ProfilerConfig{N: 30, Agg: core.AggIDF},
		Metrics:  reg,
		DataDir:  dir,
		Fsync:    store.FsyncNever,
	})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func storeContents(b *Backend) []trace.Visit {
	vs := b.store.SnapshotTrace().Visits()
	out := append([]trace.Visit(nil), vs...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Time != out[j].Time {
			return out[i].Time < out[j].Time
		}
		if out[i].User != out[j].User {
			return out[i].User < out[j].User
		}
		return out[i].Host < out[j].Host
	})
	return out
}

// TestBackendCrashRecovery is the acceptance test for the durability
// subsystem at the server layer: a backend with a data dir is killed
// without any shutdown (simulated SIGKILL mid-ingest), and the restarted
// backend must hold the exact pre-crash store contents, be warm (model
// restored from the retrain-time snapshot), and report the replayed
// record count through hostprof_store_recovery_records_total.
func TestBackendCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	b := newDurableBackend(t, dir, nil)

	// Phase 1: ingest two days of one user's browsing, retrain (which
	// snapshots), then keep ingesting so the WAL holds a post-snapshot
	// tail.
	u := synth.NewUniverse(synth.UniverseConfig{Sites: 100, Trackers: 15, Seed: 3})
	pop := synth.NewPopulation(u, synth.PopulationConfig{Users: 4, Days: 2, Seed: 13})
	visits := pop.Browse().Visits()
	half := len(visits) / 2
	for _, v := range visits[:half] {
		if _, err := b.report(context.Background(), v.User, v.Time, []string{v.Host}); err != nil && err != errNotTrained {
			t.Fatalf("report: %v", err)
		}
	}
	if err := b.Retrain(); err != nil {
		t.Fatalf("retrain: %v", err)
	}
	for _, v := range visits[half:] {
		// The visit is appended before profiling, so profiler errors on
		// sparse single-host sessions (no labelled neighbour reachable)
		// still leave the store updated.
		if _, err := b.report(context.Background(), v.User, v.Time, []string{v.Host}); err != nil &&
			!errors.Is(err, core.ErrNoLabels) && !errors.Is(err, core.ErrEmptySession) {
			t.Fatalf("report after retrain: %v", err)
		}
	}
	pre := storeContents(b)
	preStats := b.CurrentStats()
	if !preStats.Trained {
		t.Fatal("backend not trained before crash")
	}
	// Crash: no Close, no flush, no snapshot — the backend object is
	// simply abandoned, as SIGKILL would leave it.

	// Phase 2: restart over the same directory.
	reg := obs.NewRegistry()
	b2 := newDurableBackend(t, dir, reg)
	t.Cleanup(func() { b2.Close() })

	post := storeContents(b2)
	if !reflect.DeepEqual(pre, post) {
		t.Fatalf("store diverged across crash: %d visits before, %d after", len(pre), len(post))
	}
	if !b2.Ready() {
		t.Fatal("restarted backend is cold: model not restored from snapshot")
	}
	rec := b2.Store().Recovery()
	if !rec.ModelRestored {
		t.Fatal("RecoveryStats.ModelRestored = false")
	}
	if rec.ReplayedRecords == 0 {
		t.Fatal("no WAL records replayed although post-snapshot reports were made")
	}

	var exp strings.Builder
	if err := reg.WritePrometheus(&exp); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(exp.String(), "hostprof_store_recovery_records_total") {
		t.Fatal("exposition missing hostprof_store_recovery_records_total")
	}
	for _, m := range reg.Snapshot() {
		if m.Name == "hostprof_store_recovery_records_total" && m.Value != float64(rec.ReplayedRecords) {
			t.Fatalf("recovery_records_total = %v, want %d", m.Value, rec.ReplayedRecords)
		}
	}

	// The warm backend serves reports without a retrain: only
	// errNotTrained would betray a cold start; sparse-session profiler
	// errors are fine.
	v0 := visits[len(visits)-1]
	if _, err := b2.report(context.Background(), v0.User, v0.Time+60, []string{v0.Host}); errors.Is(err, errNotTrained) {
		t.Fatal("warm backend claims not trained")
	}
}

// TestBackendGracefulClose: Close snapshots, so the next start replays
// zero WAL records.
func TestBackendGracefulClose(t *testing.T) {
	dir := t.TempDir()
	b := newDurableBackend(t, dir, nil)
	for i := 0; i < 20; i++ {
		if _, err := b.report(context.Background(), 1, int64(i), []string{"graceful.example"}); err != nil && err != errNotTrained {
			t.Fatal(err)
		}
	}
	if err := b.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	b2 := newDurableBackend(t, dir, nil)
	t.Cleanup(func() { b2.Close() })
	rec := b2.Store().Recovery()
	if rec.ReplayedRecords != 0 {
		t.Fatalf("replayed %d records after graceful close, want 0 (snapshot covers all)", rec.ReplayedRecords)
	}
	if rec.SnapshotVisits != 20 {
		t.Fatalf("SnapshotVisits = %d, want 20", rec.SnapshotVisits)
	}
}
