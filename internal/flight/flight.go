// Package flight coalesces concurrent executions of one logical
// operation into a single run — the retrain coordinator's core. Unlike
// a bare singleflight, joining is context-aware: every caller waits
// under its own context and can abandon the wait without affecting the
// run, while the run itself is bound to the context the starter
// supplied.
package flight

import (
	"context"
	"fmt"
	"sync"
)

// call is one in-flight run.
type call struct {
	done chan struct{}
	err  error
}

// Group coalesces concurrent runs of one operation. The zero Group is
// ready to use. All methods are safe for concurrent use.
type Group struct {
	mu  sync.Mutex
	cur *call
}

// Do executes fn if no run is in flight, otherwise joins the in-flight
// run. The run always executes in its own goroutine under runCtx (so a
// caller that stops waiting never aborts it for other joiners), while
// this caller waits under waitCtx: if waitCtx ends first, Do returns
// waitCtx.Err() and the run continues. leader reports whether this call
// started the run.
func (g *Group) Do(waitCtx, runCtx context.Context, fn func(context.Context) error) (leader bool, err error) {
	g.mu.Lock()
	c := g.cur
	if c == nil {
		c = g.startLocked(runCtx, fn)
		leader = true
	}
	g.mu.Unlock()
	select {
	case <-c.done:
		return leader, c.err
	case <-waitCtx.Done():
		return leader, waitCtx.Err()
	}
}

// Start begins fn under runCtx if the group is idle and returns without
// waiting; it reports whether this call started a run (false means one
// was already in flight).
func (g *Group) Start(runCtx context.Context, fn func(context.Context) error) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.cur != nil {
		return false
	}
	g.startLocked(runCtx, fn)
	return true
}

// startLocked launches fn; the caller holds g.mu.
func (g *Group) startLocked(runCtx context.Context, fn func(context.Context) error) *call {
	c := &call{done: make(chan struct{})}
	g.cur = c
	go func() {
		defer close(c.done)
		defer func() {
			// A panicking run must not wedge the group or crash the
			// process: surface it as the run's error.
			if p := recover(); p != nil {
				c.err = fmt.Errorf("flight: run panicked: %v", p)
			}
			g.mu.Lock()
			g.cur = nil
			g.mu.Unlock()
		}()
		c.err = fn(runCtx)
	}()
	return c
}

// Running reports whether a run is in flight.
func (g *Group) Running() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.cur != nil
}
