// Package baseline provides the comparator profilers the evaluation
// measures the paper's algorithm against:
//
//   - OntologyOnly: what a network observer can do *without* embeddings —
//     only hostnames the ontology covers contribute (the paper's
//     motivation: coverage is ~10%, so most sessions are blind spots).
//   - Oracle: the over-the-top / ad-network view — full ground truth for
//     every first-party page the user loads, the upper bound.
//   - Random: a profiler that knows nothing, the lower bound.
//
// All satisfy the same SessionProfiler interface as core.Profiler.
package baseline

import (
	"hostprof/internal/core"
	"hostprof/internal/ontology"
	"hostprof/internal/stats"
	"hostprof/internal/synth"
)

// SessionProfiler is the common contract: hostname session in, category
// vector out.
type SessionProfiler interface {
	ProfileSession(hosts []string) (ontology.Vector, error)
}

// Interface checks.
var (
	_ SessionProfiler = (*core.Profiler)(nil)
	_ SessionProfiler = (*OntologyOnly)(nil)
	_ SessionProfiler = (*Oracle)(nil)
	_ SessionProfiler = (*Random)(nil)
)

// OntologyOnly averages the ontology vectors of the session's labelled
// hosts; unlabelled hosts (the vast majority under realistic coverage)
// contribute nothing.
type OntologyOnly struct {
	ont *ontology.Ontology
}

// NewOntologyOnly returns the coverage-limited baseline.
func NewOntologyOnly(ont *ontology.Ontology) *OntologyOnly {
	return &OntologyOnly{ont: ont}
}

// ProfileSession implements SessionProfiler. It returns core.ErrNoLabels
// when no session host is covered, and core.ErrEmptySession for empty
// input, matching the main profiler's contract.
func (p *OntologyOnly) ProfileSession(hosts []string) (ontology.Vector, error) {
	if len(hosts) == 0 {
		return nil, core.ErrEmptySession
	}
	out := p.ont.Taxonomy().NewVector()
	seen := make(map[string]bool)
	n := 0
	for _, h := range hosts {
		if seen[h] {
			continue
		}
		seen[h] = true
		v, ok := p.ont.Lookup(h)
		if !ok {
			continue
		}
		for i, x := range v {
			out[i] += x
		}
		n++
	}
	if n == 0 {
		return nil, core.ErrNoLabels
	}
	inv := 1 / float64(n)
	for i := range out {
		out[i] *= inv
	}
	return out, nil
}

// Oracle averages the *ground-truth* categories of every session host
// that belongs to a site (support hosts inherit their site's categories).
// This models the unrestricted view of an OTT provider or the user's own
// browser extension.
type Oracle struct {
	u *synth.Universe
}

// NewOracle returns the full-visibility upper bound.
func NewOracle(u *synth.Universe) *Oracle { return &Oracle{u: u} }

// ProfileSession implements SessionProfiler.
func (p *Oracle) ProfileSession(hosts []string) (ontology.Vector, error) {
	if len(hosts) == 0 {
		return nil, core.ErrEmptySession
	}
	out := p.u.Tax.NewVector()
	seen := make(map[string]bool)
	n := 0
	for _, hn := range hosts {
		if seen[hn] {
			continue
		}
		seen[hn] = true
		h, ok := p.u.HostByName(hn)
		if !ok {
			continue
		}
		truth := p.u.GroundTruthCategories(h.ID)
		if truth == nil {
			continue
		}
		for i, x := range truth {
			out[i] += x
		}
		n++
	}
	if n == 0 {
		return nil, core.ErrNoLabels
	}
	inv := 1 / float64(n)
	for i := range out {
		out[i] *= inv
	}
	return out, nil
}

// Random emits a fresh random category vector per session: the
// no-knowledge lower bound.
type Random struct {
	tax *ontology.Taxonomy
	rng *stats.RNG
	// Sparsity is the expected fraction of non-zero categories.
	Sparsity float64
}

// NewRandom returns the lower-bound profiler.
func NewRandom(tax *ontology.Taxonomy, seed uint64) *Random {
	return &Random{tax: tax, rng: stats.NewRNG(seed ^ 0x4a4d), Sparsity: 0.01}
}

// ProfileSession implements SessionProfiler.
func (p *Random) ProfileSession(hosts []string) (ontology.Vector, error) {
	if len(hosts) == 0 {
		return nil, core.ErrEmptySession
	}
	out := p.tax.NewVector()
	for i := range out {
		if p.rng.Float64() < p.Sparsity {
			out[i] = p.rng.Float64()
		}
	}
	return out, nil
}
