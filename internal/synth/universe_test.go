package synth

import (
	"math"
	"strings"
	"testing"
)

func smallUniverse() *Universe {
	return NewUniverse(UniverseConfig{
		Sites:    120,
		Trackers: 20,
		Seed:     7,
	})
}

func TestUniverseDeterministic(t *testing.T) {
	a := NewUniverse(UniverseConfig{Sites: 50, Seed: 3})
	b := NewUniverse(UniverseConfig{Sites: 50, Seed: 3})
	if len(a.Hosts) != len(b.Hosts) {
		t.Fatal("host counts differ")
	}
	for i := range a.Hosts {
		if a.Hosts[i] != b.Hosts[i] {
			t.Fatalf("host %d differs: %+v vs %+v", i, a.Hosts[i], b.Hosts[i])
		}
	}
}

func TestUniverseSeedMatters(t *testing.T) {
	a := NewUniverse(UniverseConfig{Sites: 50, Seed: 3})
	b := NewUniverse(UniverseConfig{Sites: 50, Seed: 4})
	diff := false
	for i := range a.Hosts {
		if i < len(b.Hosts) && a.Hosts[i].Name != b.Hosts[i].Name {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical universes")
	}
}

func TestUniverseHostNamesUnique(t *testing.T) {
	u := smallUniverse()
	seen := make(map[string]bool)
	for _, h := range u.Hosts {
		if seen[h.Name] {
			t.Fatalf("duplicate hostname %q", h.Name)
		}
		seen[h.Name] = true
	}
}

func TestUniverseStructure(t *testing.T) {
	u := smallUniverse()
	if len(u.Sites) != 120 {
		t.Fatalf("sites = %d", len(u.Sites))
	}
	if len(u.TrackerIDs) != 20 {
		t.Fatalf("trackers = %d", len(u.TrackerIDs))
	}
	for _, s := range u.Sites {
		if u.Hosts[s.Host].Kind != KindSite {
			t.Fatal("site primary host has wrong kind")
		}
		if u.Hosts[s.Host].Site != s.ID {
			t.Fatal("site back-reference wrong")
		}
		if len(s.Support) < 1 {
			t.Fatal("site without support hosts")
		}
		for _, hid := range s.Support {
			h := u.Hosts[hid]
			if h.Kind != KindSupport || h.Site != s.ID {
				t.Fatalf("bad support host %+v", h)
			}
			if !strings.HasSuffix(h.Name, u.Hosts[s.Host].Name) {
				t.Fatalf("support host %q not under site %q", h.Name, u.Hosts[s.Host].Name)
			}
		}
		if !s.Categories.Valid() {
			t.Fatal("site categories out of range")
		}
		var hasCat bool
		for _, c := range u.Tax.SubsOf(s.Top) {
			if s.Categories[c] > 0 {
				hasCat = true
				break
			}
		}
		if !hasCat {
			t.Fatal("site has no category under its dominant topic")
		}
	}
}

func TestUniverseLookupAndGroundTruth(t *testing.T) {
	u := smallUniverse()
	site := u.Sites[0]
	h, ok := u.HostByName(u.Hosts[site.Host].Name)
	if !ok || h.ID != site.Host {
		t.Fatal("HostByName failed")
	}
	if _, ok := u.HostByName("nope.invalid"); ok {
		t.Fatal("phantom host found")
	}
	// Support hosts inherit the owning site's categories.
	gt := u.GroundTruthCategories(site.Support[0])
	if gt == nil {
		t.Fatal("support host has no ground truth")
	}
	for i := range gt {
		if gt[i] != site.Categories[i] {
			t.Fatal("support host categories differ from site")
		}
	}
	// Trackers and shared CDNs have none.
	if u.GroundTruthCategories(u.TrackerIDs[0]) != nil {
		t.Fatal("tracker has ground truth")
	}
	if u.GroundTruthCategories(u.SharedCDNIDs[0]) != nil {
		t.Fatal("shared CDN has ground truth")
	}
}

func TestUniversePopularityIsDistribution(t *testing.T) {
	u := smallUniverse()
	var s float64
	for _, p := range u.Popularity {
		if p < 0 {
			t.Fatal("negative popularity")
		}
		s += p
	}
	if math.Abs(s-1) > 1e-9 {
		t.Fatalf("popularity sums to %v", s)
	}
}

func TestContentlessFractionInPaperRegime(t *testing.T) {
	// Paper Section 4: 67% of hostnames served no content. The default
	// universe shape (1-4 support hosts per site plus CDNs/trackers)
	// must land in the same majority-contentless regime.
	u := NewUniverse(UniverseConfig{Sites: 400, Seed: 11})
	f := u.ContentlessFraction()
	if f < 0.5 || f > 0.85 {
		t.Fatalf("contentless fraction = %.3f, want within [0.5, 0.85]", f)
	}
}

func TestHostNamesOrder(t *testing.T) {
	u := smallUniverse()
	names := u.HostNames()
	if len(names) != len(u.Hosts) {
		t.Fatal("length mismatch")
	}
	for i, n := range names {
		if u.Hosts[i].Name != n {
			t.Fatal("order mismatch")
		}
	}
}

func TestHostKindString(t *testing.T) {
	if KindSite.String() != "site" || KindTracker.String() != "tracker" {
		t.Fatal("kind names wrong")
	}
	if HostKind(99).String() == "" {
		t.Fatal("unknown kind should still stringify")
	}
}
