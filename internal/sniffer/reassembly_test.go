package sniffer

import (
	"bytes"
	"testing"
	"testing/quick"

	"hostprof/internal/stats"
	"hostprof/internal/trace"
)

func TestAssemblerInOrder(t *testing.T) {
	a := newStreamAssembler()
	a.SYN(100)
	if !a.Add(101, []byte("hello ")) || !a.Add(107, []byte("world")) {
		t.Fatal("add failed")
	}
	if string(a.Bytes()) != "hello world" {
		t.Fatalf("assembled %q", a.Bytes())
	}
}

func TestAssemblerOutOfOrder(t *testing.T) {
	a := newStreamAssembler()
	a.SYN(0)
	a.Add(7, []byte("world"))
	if len(a.Bytes()) != 0 {
		t.Fatal("gap data surfaced early")
	}
	a.Add(1, []byte("hello "))
	if string(a.Bytes()) != "hello world" {
		t.Fatalf("assembled %q", a.Bytes())
	}
}

func TestAssemblerDuplicateAndOverlap(t *testing.T) {
	a := newStreamAssembler()
	a.SYN(10)
	a.Add(11, []byte("abcdef"))
	a.Add(11, []byte("abcdef")) // exact retransmit
	a.Add(14, []byte("defghi")) // overlapping extension
	if string(a.Bytes()) != "abcdefghi" {
		t.Fatalf("assembled %q", a.Bytes())
	}
}

func TestAssemblerThreeWayShuffle(t *testing.T) {
	a := newStreamAssembler()
	a.SYN(0)
	a.Add(7, []byte("GHI")) // rel offset 6
	a.Add(1, []byte("ABC"))
	a.Add(4, []byte("DEFXX")[:3]) // "DEF"
	if string(a.Bytes()) != "ABCDEFGHI" {
		t.Fatalf("assembled %q", a.Bytes())
	}
}

func TestAssemblerMidStreamWithoutSYN(t *testing.T) {
	a := newStreamAssembler()
	a.Add(5000, []byte("start"))
	if string(a.Bytes()) != "start" {
		t.Fatalf("mid-stream bootstrap got %q", a.Bytes())
	}
	a.Add(5005, []byte("-more"))
	if string(a.Bytes()) != "start-more" {
		t.Fatalf("assembled %q", a.Bytes())
	}
}

func TestAssemblerBuffersBounded(t *testing.T) {
	a := newStreamAssembler()
	a.SYN(0)
	// A far-future segment beyond the limit must be rejected.
	if a.Add(uint32(assemblerLimit)+100, []byte("x")) {
		t.Fatal("accepted segment beyond the buffer limit")
	}
	// Pending bytes are capped too.
	b := newStreamAssembler()
	b.SYN(0)
	chunk := bytes.Repeat([]byte{1}, 4096)
	ok := true
	for i := 0; i < 8 && ok; i++ {
		ok = b.Add(uint32(2+i*5000), chunk)
	}
	if ok {
		t.Fatal("pending buffer grew without bound")
	}
}

// Property: any segmentation + permutation of a byte stream reassembles
// to a prefix of the original (fully, once all segments are in).
func TestAssemblerPermutationQuick(t *testing.T) {
	rng := stats.NewRNG(99)
	f := func(data []byte, seed uint16) bool {
		if len(data) == 0 || len(data) > 2000 {
			return true
		}
		// Cut into 1-64 byte segments.
		type seg struct {
			off int
			b   []byte
		}
		var segs []seg
		r := stats.NewRNG(uint64(seed))
		for off := 0; off < len(data); {
			n := 1 + r.Intn(64)
			if off+n > len(data) {
				n = len(data) - off
			}
			segs = append(segs, seg{off, data[off : off+n]})
			off += n
		}
		r.Shuffle(len(segs), func(i, j int) { segs[i], segs[j] = segs[j], segs[i] })
		a := newStreamAssembler()
		a.SYN(1000)
		for _, sg := range segs {
			if !a.Add(1001+uint32(sg.off), sg.b) {
				return false
			}
		}
		return bytes.Equal(a.Bytes(), data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
	_ = rng
}

func TestObserverHandlesReorderedClientHello(t *testing.T) {
	tr := trace.New([]trace.Visit{
		{User: 1, Time: 5, Host: "reorder.example"},
		{User: 2, Time: 6, Host: "reorder2.example"},
	})
	syn := NewSynthesizer(WireConfig{
		Channel: ChannelTLS, SplitProb: 1, ReorderProb: 1, Seed: 13,
	})
	cap, err := syn.SynthesizeTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	obs := NewObserver(ObserverConfig{})
	got := obs.ObserveAll(cap.Packets, cap.Times)
	if got.Len() != 2 {
		t.Fatalf("recovered %d/2 reordered visits", got.Len())
	}
	if got.Visits()[0].Host != "reorder.example" {
		t.Fatalf("host %q", got.Visits()[0].Host)
	}
}

func TestDNSResponseRoundTrip(t *testing.T) {
	resp, err := BuildDNSResponse("maps.example", 0x42, [4]byte{93, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	host, addrs, err := ParseDNSResponse(resp)
	if err != nil {
		t.Fatal(err)
	}
	if host != "maps.example" || len(addrs) != 1 {
		t.Fatalf("host=%q addrs=%d", host, len(addrs))
	}
	want := [16]byte{93, 1, 2, 3}
	want[15] = 4
	if addrs[0] != want {
		t.Fatalf("addr %v", addrs[0])
	}
	// Queries are rejected.
	q, _ := BuildDNSQuery("maps.example", 0x42)
	if _, _, err := ParseDNSResponse(q); err == nil {
		t.Fatal("query accepted as response")
	}
}

func TestObserverLearnsDNSAndResolvesECH(t *testing.T) {
	// The observer watches the DNS lookup preceding an ECH connection
	// and recovers the *real hostname* despite the encrypted hello.
	tr := trace.New([]trace.Visit{
		{User: 3, Time: 10, Host: "private.example"},
	})
	syn := NewSynthesizer(WireConfig{
		Channel: ChannelECH, DNSLookupProb: 1, Seed: 17,
	})
	cap, err := syn.SynthesizeTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	obs := NewObserver(ObserverConfig{IPFallback: true})
	got := obs.ObserveAll(cap.Packets, cap.Times)
	// Two visits: the DNS query itself plus the resolved ECH flow.
	if got.Len() != 2 {
		t.Fatalf("recovered %d visits", got.Len())
	}
	for _, v := range got.Visits() {
		if v.Host != "private.example" {
			t.Fatalf("host %q, want real hostname via learned DNS mapping", v.Host)
		}
	}
	if obs.Stats().ResolvedFallbacks != 1 || obs.Stats().DNSMappings == 0 {
		t.Fatalf("stats %+v", obs.Stats())
	}
}

func TestObserverECHWithoutDNSStaysIPToken(t *testing.T) {
	tr := trace.New([]trace.Visit{{User: 3, Time: 10, Host: "private.example"}})
	syn := NewSynthesizer(WireConfig{Channel: ChannelECH, Seed: 19})
	cap, err := syn.SynthesizeTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	obs := NewObserver(ObserverConfig{IPFallback: true})
	got := obs.ObserveAll(cap.Packets, cap.Times)
	if got.Len() != 1 {
		t.Fatalf("recovered %d visits", got.Len())
	}
	if h := got.Visits()[0].Host; h == "private.example" {
		t.Fatal("hostname recovered without any DNS leak — impossible")
	} else if h[:3] != "ip-" {
		t.Fatalf("expected IP token, got %q", h)
	}
}

func TestSkipDNSName(t *testing.T) {
	resp, _ := BuildDNSResponse("a.b.example", 1, [4]byte{1, 2, 3, 4})
	// Answer name is a 2-byte pointer at its position; full question
	// name is labels. Exercise both paths via the parser (already done)
	// plus direct calls.
	n, err := skipDNSName(resp, 12) // question name
	if err != nil {
		t.Fatal(err)
	}
	if n != len("a")+1+len("b")+1+len("example")+1+1 {
		t.Fatalf("skip = %d", n)
	}
	if _, err := skipDNSName([]byte{5, 'a'}, 0); err == nil {
		t.Fatal("unterminated name accepted")
	}
}
