package sniffer

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
)

// DNS errors.
var (
	// ErrNotDNSQuery marks a datagram that is not a plain DNS query.
	ErrNotDNSQuery = errors.New("sniffer: not a DNS query")
	// ErrBadName marks an invalid DNS name encoding.
	ErrBadName = errors.New("sniffer: invalid DNS name")
)

// DNS record constants.
const (
	dnsTypeA    = 1
	dnsTypeAAAA = 28
	dnsClassIN  = 1
)

// ErrNotDNSResponse marks a datagram that is not a DNS response.
var ErrNotDNSResponse = errors.New("sniffer: not a DNS response")

// BuildDNSQuery renders a standard A-record query for host with the given
// transaction ID — what a stub resolver emits on port 53 before every new
// connection (paper Section 7.2: DNS providers see hostnames too).
func BuildDNSQuery(host string, txid uint16) ([]byte, error) {
	var buf []byte
	buf = binary.BigEndian.AppendUint16(buf, txid)
	buf = binary.BigEndian.AppendUint16(buf, 0x0100) // RD
	buf = binary.BigEndian.AppendUint16(buf, 1)      // QDCOUNT
	buf = append(buf, 0, 0, 0, 0, 0, 0)              // AN/NS/AR counts
	name, err := appendDNSName(nil, host)
	if err != nil {
		return nil, err
	}
	buf = append(buf, name...)
	buf = binary.BigEndian.AppendUint16(buf, dnsTypeA)
	buf = binary.BigEndian.AppendUint16(buf, dnsClassIN)
	return buf, nil
}

// appendDNSName encodes host as DNS labels.
func appendDNSName(buf []byte, host string) ([]byte, error) {
	if host == "" {
		return nil, fmt.Errorf("%w: empty name", ErrBadName)
	}
	for _, label := range strings.Split(host, ".") {
		if len(label) == 0 || len(label) > 63 {
			return nil, fmt.Errorf("%w: label %q", ErrBadName, label)
		}
		buf = append(buf, byte(len(label)))
		buf = append(buf, label...)
	}
	return append(buf, 0), nil
}

// ParseDNSQueryName extracts the first question name from a DNS query
// datagram. Responses (QR=1) are rejected: the observer keys on queries.
func ParseDNSQueryName(datagram []byte) (string, error) {
	if len(datagram) < 12 {
		return "", fmt.Errorf("%w: short header", ErrNotDNSQuery)
	}
	flags := binary.BigEndian.Uint16(datagram[2:4])
	if flags&0x8000 != 0 {
		return "", fmt.Errorf("%w: response bit set", ErrNotDNSQuery)
	}
	qd := binary.BigEndian.Uint16(datagram[4:6])
	if qd == 0 {
		return "", fmt.Errorf("%w: no questions", ErrNotDNSQuery)
	}
	name, _, err := readDNSName(datagram[12:])
	if err != nil {
		return "", err
	}
	return name, nil
}

// BuildDNSResponse renders an answer to an A query for host: the
// question section echoed, one A record pointing at addr, standard TTL.
func BuildDNSResponse(host string, txid uint16, addr [4]byte) ([]byte, error) {
	var buf []byte
	buf = binary.BigEndian.AppendUint16(buf, txid)
	buf = binary.BigEndian.AppendUint16(buf, 0x8180) // QR, RD, RA
	buf = binary.BigEndian.AppendUint16(buf, 1)      // QDCOUNT
	buf = binary.BigEndian.AppendUint16(buf, 1)      // ANCOUNT
	buf = append(buf, 0, 0, 0, 0)                    // NS/AR counts
	name, err := appendDNSName(nil, host)
	if err != nil {
		return nil, err
	}
	buf = append(buf, name...)
	buf = binary.BigEndian.AppendUint16(buf, dnsTypeA)
	buf = binary.BigEndian.AppendUint16(buf, dnsClassIN)
	// Answer: compression pointer to the question name at offset 12.
	buf = append(buf, 0xc0, 12)
	buf = binary.BigEndian.AppendUint16(buf, dnsTypeA)
	buf = binary.BigEndian.AppendUint16(buf, dnsClassIN)
	buf = binary.BigEndian.AppendUint32(buf, 300) // TTL
	buf = binary.BigEndian.AppendUint16(buf, 4)   // RDLENGTH
	buf = append(buf, addr[:]...)
	return buf, nil
}

// ParseDNSResponse extracts the question name and every A/AAAA answer
// address (in Packet 16-byte encoding) from a DNS response datagram.
func ParseDNSResponse(datagram []byte) (string, [][16]byte, error) {
	if len(datagram) < 12 {
		return "", nil, fmt.Errorf("%w: short header", ErrNotDNSResponse)
	}
	flags := binary.BigEndian.Uint16(datagram[2:4])
	if flags&0x8000 == 0 {
		return "", nil, fmt.Errorf("%w: response bit clear", ErrNotDNSResponse)
	}
	qd := int(binary.BigEndian.Uint16(datagram[4:6]))
	an := int(binary.BigEndian.Uint16(datagram[6:8]))
	if qd != 1 || an == 0 {
		return "", nil, fmt.Errorf("%w: qd=%d an=%d", ErrNotDNSResponse, qd, an)
	}
	host, n, err := readDNSName(datagram[12:])
	if err != nil {
		return "", nil, err
	}
	off := 12 + n + 4 // skip QTYPE/QCLASS
	var addrs [][16]byte
	for i := 0; i < an; i++ {
		var used int
		used, err = skipDNSName(datagram, off)
		if err != nil {
			return "", nil, err
		}
		off += used
		if off+10 > len(datagram) {
			return "", nil, fmt.Errorf("%w: truncated answer", ErrNotDNSResponse)
		}
		typ := binary.BigEndian.Uint16(datagram[off : off+2])
		rdlen := int(binary.BigEndian.Uint16(datagram[off+8 : off+10]))
		off += 10
		if off+rdlen > len(datagram) {
			return "", nil, fmt.Errorf("%w: truncated rdata", ErrNotDNSResponse)
		}
		switch {
		case typ == dnsTypeA && rdlen == 4:
			var a [16]byte
			copy(a[:4], datagram[off:off+4])
			a[15] = 4
			addrs = append(addrs, a)
		case typ == dnsTypeAAAA && rdlen == 16:
			var a [16]byte
			copy(a[:], datagram[off:off+16])
			addrs = append(addrs, a)
		}
		off += rdlen
	}
	return host, addrs, nil
}

// skipDNSName advances past a (possibly compressed) name at off,
// returning the bytes consumed.
func skipDNSName(msg []byte, off int) (int, error) {
	n := 0
	for {
		if off+n >= len(msg) {
			return 0, fmt.Errorf("%w: unterminated answer name", ErrBadName)
		}
		l := int(msg[off+n])
		switch {
		case l == 0:
			return n + 1, nil
		case l&0xc0 == 0xc0:
			return n + 2, nil // compression pointer terminates the name
		default:
			n += 1 + l
		}
	}
}

// readDNSName decodes an uncompressed DNS name, returning it and the
// bytes consumed. Compression pointers are rejected (queries never need
// them).
func readDNSName(b []byte) (string, int, error) {
	var labels []string
	off := 0
	for {
		if off >= len(b) {
			return "", 0, fmt.Errorf("%w: unterminated", ErrBadName)
		}
		l := int(b[off])
		if l == 0 {
			off++
			break
		}
		if l&0xc0 != 0 {
			return "", 0, fmt.Errorf("%w: compression in query", ErrBadName)
		}
		if off+1+l > len(b) {
			return "", 0, fmt.Errorf("%w: label overflow", ErrBadName)
		}
		labels = append(labels, string(b[off+1:off+1+l]))
		off += 1 + l
	}
	if len(labels) == 0 {
		return "", 0, fmt.Errorf("%w: root-only name", ErrBadName)
	}
	return strings.Join(labels, "."), off, nil
}
