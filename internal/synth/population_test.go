package synth

import (
	"math"
	"testing"
)

func smallPopulation(u *Universe) *Population {
	return NewPopulation(u, PopulationConfig{
		Users: 30,
		Days:  3,
		Seed:  13,
	})
}

func TestPopulationUsersHaveValidInterests(t *testing.T) {
	u := smallUniverse()
	p := smallPopulation(u)
	if len(p.Users) != 30 {
		t.Fatalf("users = %d", len(p.Users))
	}
	for _, usr := range p.Users {
		var s float64
		n := 0
		for _, w := range usr.Interests {
			if w < 0 {
				t.Fatal("negative interest")
			}
			if w > 0 {
				n++
			}
			s += w
		}
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("interests sum to %v", s)
		}
		if n < 2 || n > 5 {
			t.Fatalf("user has %d interests, want 2..5", n)
		}
	}
}

func TestBrowseProducesOrderedTrace(t *testing.T) {
	u := smallUniverse()
	p := smallPopulation(u)
	tr := p.Browse()
	if tr.Len() == 0 {
		t.Fatal("empty trace")
	}
	vs := tr.Visits()
	for i := 1; i < len(vs); i++ {
		if vs[i].Time < vs[i-1].Time {
			t.Fatal("trace not time-ordered")
		}
	}
	if tr.Days() > 3 {
		t.Fatalf("trace spans %d days, want <= 3", tr.Days())
	}
	// All hosts must exist in the universe.
	for _, h := range tr.Hosts() {
		if _, ok := u.HostByName(h); !ok {
			t.Fatalf("trace host %q not in universe", h)
		}
	}
}

func TestBrowseDeterministic(t *testing.T) {
	u := smallUniverse()
	t1 := smallPopulation(u).Browse()
	t2 := smallPopulation(u).Browse()
	if t1.Len() != t2.Len() {
		t.Fatalf("lengths differ: %d vs %d", t1.Len(), t2.Len())
	}
	v1, v2 := t1.Visits(), t2.Visits()
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatalf("visit %d differs", i)
		}
	}
}

func TestBrowseEmitsSupportWithSites(t *testing.T) {
	// Whenever a page is visited, its support hosts should appear right
	// after the site host in the same user's stream.
	u := smallUniverse()
	p := smallPopulation(u)
	tr := p.Browse()
	per := tr.PerUserVisits()
	siteThenSupport := 0
	for _, visits := range per {
		for i := 0; i+1 < len(visits); i++ {
			h1, _ := u.HostByName(visits[i].Host)
			h2, _ := u.HostByName(visits[i+1].Host)
			if h1.Kind == KindSite && h2.Kind == KindSupport && h1.Site == h2.Site {
				siteThenSupport++
			}
		}
	}
	if siteThenSupport == 0 {
		t.Fatal("no site→support co-request pattern found")
	}
}

func TestBrowseTrackerShareNearPaper(t *testing.T) {
	// Paper Section 5.4: tracker hostnames account for >8% of
	// connections. Check the generator produces a meaningful share.
	u := smallUniverse()
	p := smallPopulation(u)
	tr := p.Browse()
	trackers := 0
	for _, v := range tr.Visits() {
		h, _ := u.HostByName(v.Host)
		if h.Kind == KindTracker {
			trackers++
		}
	}
	share := float64(trackers) / float64(tr.Len())
	if share < 0.03 || share > 0.4 {
		t.Fatalf("tracker share = %.3f, want within [0.03, 0.4]", share)
	}
}

func TestBrowseInterestsDriveTopics(t *testing.T) {
	// Users should visit sites of their interest topics far more often
	// than sites of topics they do not care about (beyond the popular
	// core).
	u := NewUniverse(UniverseConfig{Sites: 300, Seed: 21})
	p := NewPopulation(u, PopulationConfig{
		Users: 10, Days: 10, PopularBias: 0.1, Seed: 23,
	})
	tr := p.Browse()
	per := tr.PerUserVisits()
	matches, total := 0, 0
	for _, usr := range p.Users {
		interested := make(map[int]bool)
		for _, ti := range usr.TopInterests() {
			interested[ti] = true
		}
		for _, v := range per[usr.ID] {
			h, _ := u.HostByName(v.Host)
			if h.Kind != KindSite {
				continue
			}
			total++
			if interested[u.Sites[h.Site].Top] {
				matches++
			}
		}
	}
	if total == 0 {
		t.Fatal("no site visits")
	}
	frac := float64(matches) / float64(total)
	if frac < 0.6 {
		t.Fatalf("only %.2f of site visits match interests", frac)
	}
}

func TestAffinityTo(t *testing.T) {
	u := User{Interests: []float64{0.5, 0.5, 0}}
	if got := u.AffinityTo([]float64{1, 0, 0}); got != 0.5 {
		t.Fatalf("affinity = %v", got)
	}
	if got := u.AffinityTo([]float64{0, 0, 1}); got != 0 {
		t.Fatalf("affinity = %v", got)
	}
}

func TestSoftenInterestsZero(t *testing.T) {
	out := softenInterests([]float64{0, 0})
	if out[0] != 1 || out[1] != 1 {
		t.Fatalf("softenInterests zero case = %v", out)
	}
}

func TestLateJoinersStartLater(t *testing.T) {
	u := smallUniverse()
	p := NewPopulation(u, PopulationConfig{
		Users: 40, Days: 8, LateJoinFrac: 0.5, Seed: 99,
	})
	tr := p.Browse()
	firstDay := make(map[int]int)
	for _, v := range tr.Visits() {
		if _, seen := firstDay[v.User]; !seen {
			firstDay[v.User] = v.Day()
		}
	}
	late := 0
	for _, d := range firstDay {
		if d > 0 {
			late++
		}
	}
	// Roughly half the users should join late (Poisson day-0 gaps can
	// shift a few, so accept a broad band).
	if late < 8 || late > 32 {
		t.Fatalf("%d/%d users joined late, want roughly half", late, len(firstDay))
	}
	// Without the knob, (almost) everyone starts on day 0.
	p0 := smallPopulation(u)
	tr0 := p0.Browse()
	first0 := make(map[int]bool)
	for _, v := range tr0.Visits() {
		if v.Day() == 0 {
			first0[v.User] = true
		}
	}
	if len(first0) < 20 {
		t.Fatalf("only %d users active on day 0 without late joiners", len(first0))
	}
}
