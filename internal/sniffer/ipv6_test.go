package sniffer

import (
	"testing"

	"hostprof/internal/trace"
)

func TestTCP6ChecksumRoundTrip(t *testing.T) {
	src := userAddr6(7)
	dst := serverAddr6("six.example")
	tc := TCP{SrcPort: 40000, DstPort: 443, Seq: 1, Ack: 2, Flags: TCPFlagACK}
	wire := tc.Append6(nil, src, dst, []byte("payload"))
	// Verifying: checksum over segment (with checksum field in place)
	// plus pseudo-header must be zero.
	if cs := transportChecksum6(src, dst, ProtoTCP, wire); cs != 0 {
		t.Fatalf("v6 TCP checksum verify = %#04x", cs)
	}
	var d TCP
	rest, err := d.Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if string(rest) != "payload" || d.DstPort != 443 {
		t.Fatalf("decoded %+v %q", d, rest)
	}
}

func TestUDP6ChecksumRoundTrip(t *testing.T) {
	src := userAddr6(3)
	dst := serverAddr6("udp6.example")
	u := UDP{SrcPort: 5555, DstPort: 53}
	wire := u.Append6(nil, src, dst, []byte("q"))
	if cs := transportChecksum6(src, dst, ProtoUDP, wire); cs != 0 {
		t.Fatalf("v6 UDP checksum verify = %#04x", cs)
	}
}

func TestObserverRecoversIPv6Traffic(t *testing.T) {
	visits := []trace.Visit{
		{User: 1, Time: 10, Host: "v6a.example"},
		{User: 2, Time: 20, Host: "v6b.example"},
	}
	for _, ch := range []Channel{ChannelTLS, ChannelQUIC, ChannelDNS} {
		syn := NewSynthesizer(WireConfig{Channel: ch, IPv6Prob: 1, Seed: uint64(ch) + 31})
		cap, err := syn.SynthesizeTrace(trace.New(visits))
		if err != nil {
			t.Fatal(err)
		}
		obs := NewObserver(ObserverConfig{})
		got := obs.ObserveAll(cap.Packets, cap.Times)
		if got.Len() != 2 {
			t.Fatalf("channel %d: recovered %d visits over IPv6", ch, got.Len())
		}
		for i, v := range got.Visits() {
			if v != visits[i] {
				t.Fatalf("channel %d visit %d = %+v, want %+v", ch, i, v, visits[i])
			}
		}
	}
}

func TestObserverRecoversMixedFamilies(t *testing.T) {
	var visits []trace.Visit
	for i := 0; i < 80; i++ {
		visits = append(visits, trace.Visit{User: i % 4, Time: int64(i), Host: "dual.example"})
	}
	syn := NewSynthesizer(WireConfig{Channel: ChannelTLS, IPv6Prob: 0.5, Seed: 41})
	cap, err := syn.SynthesizeTrace(trace.New(visits))
	if err != nil {
		t.Fatal(err)
	}
	obs := NewObserver(ObserverConfig{})
	got := obs.ObserveAll(cap.Packets, cap.Times)
	if got.Len() != 80 {
		t.Fatalf("recovered %d/80 dual-stack visits", got.Len())
	}
	// Both families actually present on the wire.
	var saw4, saw6 bool
	var p Packet
	for _, f := range cap.Packets {
		if DecodePacket(f, &p) == nil {
			if p.IsV6 {
				saw6 = true
			} else {
				saw4 = true
			}
		}
	}
	if !saw4 || !saw6 {
		t.Fatalf("families missing: v4=%v v6=%v", saw4, saw6)
	}
}

func TestUserAddr6RoundTrip(t *testing.T) {
	for _, u := range []int{0, 5, 300, 65535} {
		a := userAddr6(u)
		got := int(a[1])<<8 | int(a[2])
		if got != u {
			t.Fatalf("user %d → %d", u, got)
		}
		if a[0] != 0xfd {
			t.Fatal("not a ULA prefix")
		}
	}
}

func TestServerAddr6Deterministic(t *testing.T) {
	a := serverAddr6("same.example")
	b := serverAddr6("same.example")
	c := serverAddr6("other.example")
	if a != b {
		t.Fatal("not deterministic")
	}
	if a == c {
		t.Fatal("different hosts collide")
	}
	if a[0] != 0x20 || a[1] != 0x01 {
		t.Fatal("not under 2001:db8::/32")
	}
}
