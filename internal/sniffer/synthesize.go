package sniffer

import (
	"fmt"

	"hostprof/internal/stats"
	"hostprof/internal/trace"
)

// Channel selects how a synthesized visit reaches the wire.
type Channel int

// Channels.
const (
	// ChannelTLS renders a TCP handshake plus a ClientHello over port
	// 443, occasionally split across two segments.
	ChannelTLS Channel = iota
	// ChannelQUIC renders a protected QUIC v1 Initial datagram.
	ChannelQUIC
	// ChannelDNS renders a UDP DNS A query.
	ChannelDNS
	// ChannelMixed draws one of the above per visit (70% TLS, 20%
	// QUIC, 10% DNS-only), approximating real client mixes.
	ChannelMixed
	// ChannelECH renders TLS with an encrypted ClientHello and no SNI:
	// the observer can only fall back to destination IPs (paper §7.2).
	ChannelECH
)

// WireConfig controls packet synthesis.
type WireConfig struct {
	// Channel selects the leak channel. Default ChannelTLS.
	Channel Channel
	// SplitProb is the probability a ClientHello is split across two
	// TCP segments, exercising stream reassembly. Default 0.2.
	SplitProb float64
	// ReorderProb delivers a split ClientHello's segments out of order
	// with this probability, exercising sequence-based reassembly.
	ReorderProb float64
	// NATSize groups consecutive users behind one shared client
	// address, modelling households behind a domestic router: with
	// NATSize = 4, users 0-3 share user 0's address, and the observer
	// cannot tell them apart (paper §7.2, "Multiple Users").
	// 0 or 1 disables NAT.
	NATSize int
	// ECHProb upgrades each TLS hello to encrypted ClientHello (no
	// readable SNI) with this probability, modelling partial ECH
	// deployment (paper §7.2: the destination IP still leaks).
	ECHProb float64
	// IPv6Prob carries each visit over IPv6 instead of IPv4 with this
	// probability. The observer decodes both families.
	IPv6Prob float64
	// DNSLookupProb emits a resolver round trip (A query plus response)
	// ahead of the visit with this probability, as real clients do
	// before new connections. The response is what teaches an on-path
	// observer the address→hostname mapping it needs once SNI is
	// encrypted (paper §7.2 on DNS providers).
	DNSLookupProb float64
	// CoHostIPs, when positive, collapses all server addresses onto
	// this many shared front IPs (CDN co-hosting / domain fronting):
	// destination addresses stop identifying sites, defeating
	// IP-fallback profiling. CoHostIPs = 1 models a Tor-style tunnel
	// where every flow targets one relay (paper §7.4).
	CoHostIPs int
	// Seed drives randomness (connection IDs, randoms, ports).
	Seed uint64
}

func (c WireConfig) withDefaults() WireConfig {
	if c.SplitProb == 0 {
		c.SplitProb = 0.2
	}
	return c
}

// Capture is a synthesized packet capture: frames plus capture times.
type Capture struct {
	Packets [][]byte
	Times   []int64
}

// Append adds a frame at time ts.
func (c *Capture) Append(frame []byte, ts int64) {
	c.Packets = append(c.Packets, frame)
	c.Times = append(c.Times, ts)
}

// Len returns the number of captured frames.
func (c *Capture) Len() int { return len(c.Packets) }

// userAddr derives the deterministic client IPv4 address for a user:
// 10.(u>>8).(u&0xff).1 — the layout ObserverConfig's default UserOf
// reverses.
func userAddr(user int) [4]byte {
	return [4]byte{10, byte(user >> 8), byte(user), 1}
}

// ServerAddr returns the deterministic pseudo-server IPv4 address the
// synthesizer uses for a hostname; exported so experiments can model an
// observer that resolves labelled hostnames to addresses offline.
func ServerAddr(host string) [4]byte { return serverAddr(host) }

// serverAddr derives a stable pseudo-server IPv4 address for a hostname.
func serverAddr(host string) [4]byte {
	var h uint32 = 2166136261
	for i := 0; i < len(host); i++ {
		h ^= uint32(host[i])
		h *= 16777619
	}
	return [4]byte{93, byte(h >> 16), byte(h >> 8), byte(h)}
}

// Synthesizer renders trace visits to Ethernet frames.
type Synthesizer struct {
	cfg WireConfig
	rng *stats.RNG
	// ephemeral port counter per user keeps flows distinct.
	nextPort map[int]uint16
}

// NewSynthesizer returns a synthesizer for cfg.
func NewSynthesizer(cfg WireConfig) *Synthesizer {
	return &Synthesizer{
		cfg:      cfg.withDefaults(),
		rng:      stats.NewRNG(cfg.Seed ^ 0x5151e7),
		nextPort: make(map[int]uint16),
	}
}

// SynthesizeTrace renders every visit of tr onto the wire.
func (s *Synthesizer) SynthesizeTrace(tr *trace.Trace) (*Capture, error) {
	cap := &Capture{}
	for _, v := range tr.Visits() {
		if err := s.AppendVisit(cap, v); err != nil {
			return nil, err
		}
	}
	return cap, nil
}

// AppendVisit renders one visit onto the capture.
func (s *Synthesizer) AppendVisit(cap *Capture, v trace.Visit) error {
	ch := s.cfg.Channel
	if ch == ChannelMixed {
		switch r := s.rng.Float64(); {
		case r < 0.7:
			ch = ChannelTLS
		case r < 0.9:
			ch = ChannelQUIC
		default:
			ch = ChannelDNS
		}
	}
	v6 := s.cfg.IPv6Prob > 0 && s.rng.Float64() < s.cfg.IPv6Prob
	if ch != ChannelDNS && s.cfg.DNSLookupProb > 0 && s.rng.Float64() < s.cfg.DNSLookupProb {
		if err := s.appendDNSLookup(cap, v); err != nil {
			return err
		}
	}
	switch ch {
	case ChannelTLS:
		if v6 {
			return s.appendTLS6(cap, v, false)
		}
		return s.appendTLS(cap, v, false)
	case ChannelECH:
		if v6 {
			return s.appendTLS6(cap, v, true)
		}
		return s.appendTLS(cap, v, true)
	case ChannelQUIC:
		return s.appendQUIC(cap, v, v6)
	case ChannelDNS:
		return s.appendDNS(cap, v, v6)
	default:
		return fmt.Errorf("sniffer: unknown channel %d", ch)
	}
}

// wireUser maps a trace user to the client identity on the wire,
// collapsing NAT households onto their first member.
func (s *Synthesizer) wireUser(user int) int {
	if s.cfg.NATSize > 1 {
		return user - user%s.cfg.NATSize
	}
	return user
}

// FrontAddr returns the address host resolves to when servers sit behind
// coHostIPs shared front addresses (0 = every host has its own address).
// Both the synthesizer and experiments modelling observer-side resolution
// use this single mapping.
func FrontAddr(host string, coHostIPs int) [4]byte {
	if coHostIPs > 0 {
		base := serverAddr(host)
		slot := int(base[1])<<16 | int(base[2])<<8 | int(base[3])
		slot %= coHostIPs
		return [4]byte{198, 18, byte(slot >> 8), byte(slot)}
	}
	return serverAddr(host)
}

// dstFor returns the server address a visit's flow targets, honouring
// CDN co-hosting.
func (s *Synthesizer) dstFor(host string) [4]byte {
	return FrontAddr(host, s.cfg.CoHostIPs)
}

// dstFor6 is the IPv6 variant of dstFor.
func (s *Synthesizer) dstFor6(host string) [16]byte {
	if s.cfg.CoHostIPs > 0 {
		v4 := s.dstFor(host)
		var a [16]byte
		a[0], a[1], a[2], a[3] = 0x20, 0x01, 0x0d, 0xb8
		copy(a[12:16], v4[:])
		return a
	}
	return serverAddr6(host)
}

// ephemeralPort hands out client ports 32768..60999 per user.
func (s *Synthesizer) ephemeralPort(user int) uint16 {
	p := s.nextPort[user]
	if p < 32768 || p >= 61000 {
		p = 32768
	}
	s.nextPort[user] = p + 1
	return p
}

// frame wraps an IPv4 packet in Ethernet.
func frame(ipPayload []byte) []byte {
	eth := Ethernet{
		Dst:       [6]byte{0x02, 0, 0, 0, 0, 0x01},
		Src:       [6]byte{0x02, 0, 0, 0, 0, 0x02},
		EtherType: EtherTypeIPv4,
	}
	return eth.Append(nil, ipPayload)
}

// frame6 wraps an IPv6 packet in Ethernet.
func frame6(ipPayload []byte) []byte {
	eth := Ethernet{
		Dst:       [6]byte{0x02, 0, 0, 0, 0, 0x01},
		Src:       [6]byte{0x02, 0, 0, 0, 0, 0x02},
		EtherType: EtherTypeIPv6,
	}
	return eth.Append(nil, ipPayload)
}

// userAddr6 derives the deterministic client IPv6 address for a user,
// placing the user ID in bytes 1-2 so the observer's default UserOf
// recovers it for either family.
func userAddr6(user int) [16]byte {
	var a [16]byte
	a[0] = 0xfd
	a[1], a[2] = byte(user>>8), byte(user)
	a[15] = 1
	return a
}

// serverAddr6 derives a stable pseudo-server IPv6 address for a hostname
// under the 2001:db8::/32 documentation prefix.
func serverAddr6(host string) [16]byte {
	v4 := serverAddr(host)
	var a [16]byte
	a[0], a[1], a[2], a[3] = 0x20, 0x01, 0x0d, 0xb8
	copy(a[12:16], v4[:])
	return a
}

// tcpFrame6 builds Ethernet+IPv6+TCP with payload.
func tcpFrame6(src, dst [16]byte, sport, dport uint16, seq, ack uint32, flags byte, payload []byte) []byte {
	t := TCP{SrcPort: sport, DstPort: dport, Seq: seq, Ack: ack, Flags: flags}
	seg := t.Append6(nil, src, dst, payload)
	ip := IPv6{NextHeader: ProtoTCP, HopLimit: 64, Src: src, Dst: dst}
	return frame6(ip.Append(nil, seg))
}

// udpFrame6 builds Ethernet+IPv6+UDP with payload.
func udpFrame6(src, dst [16]byte, sport, dport uint16, payload []byte) []byte {
	u := UDP{SrcPort: sport, DstPort: dport}
	seg := u.Append6(nil, src, dst, payload)
	ip := IPv6{NextHeader: ProtoUDP, HopLimit: 64, Src: src, Dst: dst}
	return frame6(ip.Append(nil, seg))
}

// tcpFrame builds Ethernet+IPv4+TCP with payload.
func tcpFrame(src, dst [4]byte, sport, dport uint16, seq, ack uint32, flags byte, payload []byte) []byte {
	t := TCP{SrcPort: sport, DstPort: dport, Seq: seq, Ack: ack, Flags: flags}
	seg := t.Append(nil, src, dst, payload)
	ip := IPv4{TTL: 64, Protocol: ProtoTCP, Src: src, Dst: dst}
	return frame(ip.Append(nil, seg))
}

// udpFrame builds Ethernet+IPv4+UDP with payload.
func udpFrame(src, dst [4]byte, sport, dport uint16, payload []byte) []byte {
	u := UDP{SrcPort: sport, DstPort: dport}
	seg := u.Append(nil, src, dst, payload)
	ip := IPv4{TTL: 64, Protocol: ProtoUDP, Src: src, Dst: dst}
	return frame(ip.Append(nil, seg))
}

// appendTLS emits SYN / SYN-ACK / ACK / ClientHello (possibly split).
// With ech set, the hello carries no SNI.
func (s *Synthesizer) appendTLS(cap *Capture, v trace.Visit, ech bool) error {
	src := userAddr(s.wireUser(v.User))
	dst := s.dstFor(v.Host)
	sport := s.ephemeralPort(v.User)
	isn := uint32(s.rng.Uint64())
	sisn := uint32(s.rng.Uint64())

	cap.Append(tcpFrame(src, dst, sport, 443, isn, 0, TCPFlagSYN, nil), v.Time)
	cap.Append(tcpFrame(dst, src, 443, sport, sisn, isn+1, TCPFlagSYN|TCPFlagACK, nil), v.Time)
	cap.Append(tcpFrame(src, dst, sport, 443, isn+1, sisn+1, TCPFlagACK, nil), v.Time)

	if !ech && s.cfg.ECHProb > 0 && s.rng.Float64() < s.cfg.ECHProb {
		ech = true
	}
	var hello []byte
	if ech {
		hello = BuildClientHelloECH(s.rng)
	} else {
		hello = BuildClientHello(v.Host, s.rng)
	}
	if s.rng.Float64() < s.cfg.SplitProb && len(hello) > 16 {
		cut := 8 + s.rng.Intn(len(hello)-16)
		first := tcpFrame(src, dst, sport, 443, isn+1, sisn+1, TCPFlagACK|TCPFlagPSH, hello[:cut])
		second := tcpFrame(src, dst, sport, 443, isn+1+uint32(cut), sisn+1, TCPFlagACK|TCPFlagPSH, hello[cut:])
		if s.cfg.ReorderProb > 0 && s.rng.Float64() < s.cfg.ReorderProb {
			first, second = second, first
		}
		cap.Append(first, v.Time)
		cap.Append(second, v.Time)
	} else {
		cap.Append(tcpFrame(src, dst, sport, 443, isn+1, sisn+1, TCPFlagACK|TCPFlagPSH, hello), v.Time)
	}
	return nil
}

// appendTLS6 is the IPv6 variant of appendTLS.
func (s *Synthesizer) appendTLS6(cap *Capture, v trace.Visit, ech bool) error {
	src := userAddr6(s.wireUser(v.User))
	dst := s.dstFor6(v.Host)
	sport := s.ephemeralPort(v.User)
	isn := uint32(s.rng.Uint64())
	sisn := uint32(s.rng.Uint64())

	cap.Append(tcpFrame6(src, dst, sport, 443, isn, 0, TCPFlagSYN, nil), v.Time)
	cap.Append(tcpFrame6(dst, src, 443, sport, sisn, isn+1, TCPFlagSYN|TCPFlagACK, nil), v.Time)
	cap.Append(tcpFrame6(src, dst, sport, 443, isn+1, sisn+1, TCPFlagACK, nil), v.Time)

	if !ech && s.cfg.ECHProb > 0 && s.rng.Float64() < s.cfg.ECHProb {
		ech = true
	}
	var hello []byte
	if ech {
		hello = BuildClientHelloECH(s.rng)
	} else {
		hello = BuildClientHello(v.Host, s.rng)
	}
	cap.Append(tcpFrame6(src, dst, sport, 443, isn+1, sisn+1, TCPFlagACK|TCPFlagPSH, hello), v.Time)
	return nil
}

// appendQUIC emits a single protected Initial datagram.
func (s *Synthesizer) appendQUIC(cap *Capture, v trace.Visit, v6 bool) error {
	initial, err := BuildQUICInitial(v.Host, s.rng)
	if err != nil {
		return err
	}
	sport := s.ephemeralPort(v.User)
	if v6 {
		cap.Append(udpFrame6(userAddr6(s.wireUser(v.User)), s.dstFor6(v.Host), sport, 443, initial), v.Time)
		return nil
	}
	cap.Append(udpFrame(userAddr(s.wireUser(v.User)), s.dstFor(v.Host), sport, 443, initial), v.Time)
	return nil
}

// appendDNSLookup emits the resolver round trip preceding a connection:
// the client's A query and the resolver's answer carrying the server
// address the subsequent flow will target.
func (s *Synthesizer) appendDNSLookup(cap *Capture, v trace.Visit) error {
	txid := uint16(s.rng.Uint64())
	q, err := BuildDNSQuery(v.Host, txid)
	if err != nil {
		return err
	}
	resp, err := BuildDNSResponse(v.Host, txid, s.dstFor(v.Host))
	if err != nil {
		return err
	}
	src := userAddr(s.wireUser(v.User))
	resolver := [4]byte{10, 0, 0, 53}
	sport := s.ephemeralPort(v.User)
	cap.Append(udpFrame(src, resolver, sport, 53, q), v.Time)
	cap.Append(udpFrame(resolver, src, 53, sport, resp), v.Time)
	return nil
}

// appendDNS emits an A query.
func (s *Synthesizer) appendDNS(cap *Capture, v trace.Visit, v6 bool) error {
	q, err := BuildDNSQuery(v.Host, uint16(s.rng.Uint64()))
	if err != nil {
		return err
	}
	sport := s.ephemeralPort(v.User)
	if v6 {
		var resolver [16]byte
		resolver[0], resolver[15] = 0xfd, 53
		cap.Append(udpFrame6(userAddr6(s.wireUser(v.User)), resolver, sport, 53, q), v.Time)
		return nil
	}
	resolver := [4]byte{10, 0, 0, 53}
	cap.Append(udpFrame(userAddr(s.wireUser(v.User)), resolver, sport, 53, q), v.Time)
	return nil
}
