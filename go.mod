module hostprof

go 1.22
