package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hostprof/internal/experiment"
	"hostprof/internal/stats"
	"hostprof/internal/synth"
)

// fakeResults builds a minimal AllResults for exercising the CSV writers
// without running the (expensive) experiment harness.
func fakeResults() (*experiment.Setup, *experiment.AllResults) {
	s := &experiment.Setup{
		Universe: synth.NewUniverse(synth.UniverseConfig{Sites: 10, Seed: 1}),
	}
	nTops := s.Universe.Tax.NumTops()
	day := make([]float64, nTops)
	day[0], day[3] = 0.75, 0.25
	all := &experiment.AllResults{
		Fig2: experiment.DiversityResult{
			TotalCCDF:   stats.CCDF([]float64{1, 2, 3}),
			OutsideCCDF: [][]stats.CCDFPoint{stats.CCDF([]float64{1}), stats.CCDF([]float64{2}), stats.CCDF([]float64{2}), stats.CCDF([]float64{3})},
		},
		Fig3: experiment.DiversityResult{
			TotalCCDF:   stats.CCDF([]float64{5}),
			OutsideCCDF: [][]stats.CCDFPoint{nil, nil, nil, nil},
		},
		Fig4: experiment.Fig4Result{
			Points: []experiment.EmbeddingPoint{
				{Host: "a.example", Topic: 0, X: 1, Y: 2},
				{Host: "cdn.example", Topic: -1, X: 3, Y: 4},
			},
		},
		Fig5: experiment.Fig5Result{
			PurityByTopic: map[string]float64{"Sports": 0.8},
			Chance:        0.05,
		},
		Campaign: experiment.CampaignResult{
			Days:          1,
			WebsiteTopics: [][]float64{day},
			AdNetTopics:   [][]float64{day},
			EavesTopics:   [][]float64{day},
			PerUserEaves:  []float64{0.01, 0.02},
			PerUserAdNet:  []float64{0.015, 0.01},
		},
	}
	return s, all
}

func TestWriteDataDir(t *testing.T) {
	s, all := fakeResults()
	dir := t.TempDir()
	if err := writeDataDir(s, all, dir); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{
		"fig2_ccdf.csv", "fig3_ccdf.csv", "fig4_points.csv",
		"fig5_purity.csv", "fig6_topics.csv", "ctr_per_user.csv",
	} {
		data, err := os.ReadFile(filepath.Join(dir, f))
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if len(strings.Split(strings.TrimSpace(string(data)), "\n")) < 2 {
			t.Fatalf("%s has no data rows:\n%s", f, data)
		}
	}
	// Spot-check content.
	pts, _ := os.ReadFile(filepath.Join(dir, "fig4_points.csv"))
	if !strings.Contains(string(pts), "a.example") {
		t.Fatalf("fig4 points missing host:\n%s", pts)
	}
	ctr, _ := os.ReadFile(filepath.Join(dir, "ctr_per_user.csv"))
	if !strings.Contains(string(ctr), "0.01,0.015") {
		t.Fatalf("ctr pairs wrong:\n%s", ctr)
	}
}

func TestCCDFSummaryAndTopShare(t *testing.T) {
	if got := ccdfSummary(nil); got != "empty" {
		t.Fatalf("empty summary = %q", got)
	}
	pts := stats.CCDF([]float64{1, 2, 3, 4})
	if got := ccdfSummary(pts); !strings.Contains(got, "max=4") {
		t.Fatalf("summary = %q", got)
	}
	s, _ := fakeResults()
	row := make([]float64, s.Universe.Tax.NumTops())
	row[2] = 0.6
	if got := topShare(s, row); !strings.Contains(got, "60%") {
		t.Fatalf("topShare = %q", got)
	}
	if got := topShare(s, make([]float64, 3)); got != "n/a" {
		t.Fatalf("zero row = %q", got)
	}
}
