package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
)

// Extension is the client side of the experiment: the paper's Chrome
// extension, which reported the user's hostname sequence every 10
// minutes, received replacement ads, and posted back what was displayed
// and clicked.
type Extension struct {
	// BaseURL of the backend, e.g. "http://127.0.0.1:8420".
	BaseURL string
	// User is the random install ID (the paper assigned one per
	// installation and stored nothing else about the user).
	User int
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
}

func (e *Extension) client() *http.Client {
	if e.HTTPClient != nil {
		return e.HTTPClient
	}
	return http.DefaultClient
}

// post sends a JSON body and decodes a JSON response into out (nil out
// accepts 2xx with any body).
func (e *Extension) post(path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return fmt.Errorf("server client: encoding %s: %w", path, err)
	}
	resp, err := e.client().Post(e.BaseURL+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("server client: %s: %w", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		apiErr := &APIError{Status: resp.StatusCode}
		// The backend wraps errors as {"error": "..."}; fall back to the
		// raw body for proxies and older servers.
		var eb errorBody
		if json.Unmarshal(raw, &eb) == nil && eb.Error != "" {
			apiErr.Message = eb.Error
		} else {
			apiErr.Message = string(bytes.TrimSpace(raw))
		}
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			apiErr.RetryAfter = ra
		}
		return apiErr
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("server client: decoding %s: %w", path, err)
	}
	return nil
}

// APIError is a non-2xx backend answer.
type APIError struct {
	Status  int
	Message string
	// RetryAfter echoes the Retry-After header when the backend shed the
	// request (429), so callers can back off as instructed.
	RetryAfter string
}

// Error implements error.
func (e *APIError) Error() string {
	return fmt.Sprintf("server client: HTTP %d: %s", e.Status, e.Message)
}

// Report sends the hostnames observed since the last report and returns
// the backend's replacement-ad list (empty when the backend cannot
// profile the session yet).
func (e *Extension) Report(now int64, hosts []string) ([]WireAd, error) {
	var resp ReportResponse
	err := e.post("/v1/report", ReportRequest{User: e.User, Time: now, Hosts: hosts}, &resp)
	if err != nil {
		return nil, err
	}
	return resp.Ads, nil
}

// Feedback reports one displayed ad and whether it was clicked.
func (e *Extension) Feedback(adID int, source string, clicked bool) error {
	return e.post("/v1/feedback", FeedbackRequest{
		User: e.User, AdID: adID, Source: source, Clicked: clicked,
	}, nil)
}

// Retrain asks the backend to refit its model on everything reported so
// far (operator endpoint; the paper ran this daily). The call blocks
// until the retrain — possibly one already in flight that this request
// joined — finishes.
func (e *Extension) Retrain() error {
	return e.post("/v1/retrain", struct{}{}, nil)
}

// RetrainAsync kicks off a background retrain and returns as soon as the
// backend accepts it (202). Poll Stats().Trained or the
// hostprof_retrain_state gauge for completion.
func (e *Extension) RetrainAsync() error {
	return e.post("/v1/retrain?async=1", struct{}{}, nil)
}

// Stats fetches the backend's aggregate statistics.
func (e *Extension) Stats() (Stats, error) {
	resp, err := e.client().Get(e.BaseURL + "/v1/stats")
	if err != nil {
		return Stats{}, fmt.Errorf("server client: stats: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return Stats{}, &APIError{Status: resp.StatusCode}
	}
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return Stats{}, fmt.Errorf("server client: decoding stats: %w", err)
	}
	return st, nil
}
