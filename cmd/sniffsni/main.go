// Command sniffsni is the minimal embodiment of the paper's threat model:
// it reads a pcap capture and prints every hostname an on-path observer
// can extract — TLS SNI (with TCP reassembly), decrypted QUIC v1
// Initials, DNS queries — as CSV (user,time,host) on stdout.
//
//	sniffsni capture.pcap
//	sniffsni -ip-fallback capture.pcap    # also emit ip-a.b.c.d for ECH flows
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"

	"hostprof/internal/pcap"
	"hostprof/internal/sniffer"
)

func main() {
	ipFallback := flag.Bool("ip-fallback", false, "emit destination-IP tokens for SNI-less (ECH) flows")
	stats := flag.Bool("stats", true, "print observer statistics to stderr")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: sniffsni [-ip-fallback] <capture.pcap>")
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *ipFallback, *stats); err != nil {
		fmt.Fprintf(os.Stderr, "sniffsni: %v\n", err)
		os.Exit(1)
	}
}

func run(path string, ipFallback, printStats bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := pcap.NewReader(f)
	if err != nil {
		return err
	}
	obs := sniffer.NewObserver(sniffer.ObserverConfig{IPFallback: ipFallback})
	w := csv.NewWriter(os.Stdout)
	if err := w.Write([]string{"user", "time", "host"}); err != nil {
		return err
	}
	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		if v, ok := obs.ProcessPacket(rec.Data, int64(rec.TimeSec)); ok {
			if err := w.Write([]string{
				strconv.Itoa(v.User),
				strconv.FormatInt(v.Time, 10),
				v.Host,
			}); err != nil {
				return err
			}
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		return err
	}
	if printStats {
		st := obs.Stats()
		fmt.Fprintf(os.Stderr,
			"packets=%d tls=%d quic=%d dns=%d ip-fallbacks=%d resolved=%d undecodable=%d\n",
			st.Packets, st.TLSVisits, st.QUICVisits, st.DNSVisits,
			st.IPFallbacks, st.ResolvedFallbacks, st.Undecodable)
	}
	return nil
}
