package tracer

import "encoding/hex"

// SpanContext is the cross-process half of a span: what a traceparent
// header carries.
type SpanContext struct {
	Trace   TraceID
	Span    SpanID
	Sampled bool
}

// FormatTraceparent renders sc as a W3C Trace Context traceparent
// header value (version 00):
//
//	00-<32 hex trace id>-<16 hex span id>-<2 hex flags>
func FormatTraceparent(sc SpanContext) string {
	b := make([]byte, 0, 55)
	b = append(b, "00-"...)
	b = hex.AppendEncode(b, sc.Trace[:])
	b = append(b, '-')
	b = hex.AppendEncode(b, sc.Span[:])
	if sc.Sampled {
		b = append(b, "-01"...)
	} else {
		b = append(b, "-00"...)
	}
	return string(b)
}

// ParseTraceparent parses a traceparent header value. It accepts any
// non-ff version (per spec, unknown versions are parsed as version 00
// when the tail matches) and rejects all-zero trace or span IDs. The
// boolean result is false for anything malformed — callers should then
// proceed as if no header were present.
func ParseTraceparent(s string) (SpanContext, bool) {
	// version(2) - traceid(32) - spanid(16) - flags(2)
	if len(s) < 55 || s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return SpanContext{}, false
	}
	if len(s) > 55 && s[55] != '-' {
		// Future versions may append fields, but only '-'-separated.
		return SpanContext{}, false
	}
	var ver [1]byte
	if _, err := hex.Decode(ver[:], []byte(s[0:2])); err != nil || ver[0] == 0xff {
		return SpanContext{}, false
	}
	if ver[0] == 0 && len(s) != 55 {
		return SpanContext{}, false
	}
	var sc SpanContext
	if _, err := hex.Decode(sc.Trace[:], []byte(s[3:35])); err != nil {
		return SpanContext{}, false
	}
	if _, err := hex.Decode(sc.Span[:], []byte(s[36:52])); err != nil {
		return SpanContext{}, false
	}
	var flags [1]byte
	if _, err := hex.Decode(flags[:], []byte(s[53:55])); err != nil {
		return SpanContext{}, false
	}
	if sc.Trace.IsZero() || sc.Span.IsZero() {
		return SpanContext{}, false
	}
	sc.Sampled = flags[0]&0x01 != 0
	return sc, true
}
