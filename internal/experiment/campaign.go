package experiment

import (
	"errors"
	"fmt"

	"hostprof/internal/ads"
	"hostprof/internal/baseline"
	"hostprof/internal/core"
	"hostprof/internal/stats"
	"hostprof/internal/synth"
)

// CampaignConfig tunes the one-month ad-replacement experiment of
// Sections 5 and 6.
type CampaignConfig struct {
	// ReplaceProb is the probability the extension attempts to replace
	// a served ad (subject to size match). Default 0.35.
	ReplaceProb float64
	// SlotsPerPageMax bounds ad slots per page (1..max). Default 2.
	SlotsPerPageMax int
	// EavesAdsPerReport is how many ads the back-end sends per report
	// (paper: 20).
	EavesAdsPerReport int
	// DailyRetrain follows the paper's protocol exactly (Section 5.4):
	// each day's profiles are computed with a model trained on the
	// previous day's sequences only, eliminating look-ahead. It only
	// applies when the campaign runs with the setup's own profiler;
	// custom profilers are used as given.
	DailyRetrain bool
	// Seed drives slot and replacement randomness.
	Seed uint64
}

func (c CampaignConfig) withDefaults() CampaignConfig {
	if c.ReplaceProb <= 0 {
		c.ReplaceProb = 0.35
	}
	if c.SlotsPerPageMax <= 0 {
		c.SlotsPerPageMax = 2
	}
	if c.EavesAdsPerReport <= 0 {
		c.EavesAdsPerReport = 20
	}
	return c
}

// CampaignResult aggregates the outcome of the ad-replacement campaign:
// the daily topic mixes of Figure 6 and the CTR comparison of
// Section 6.4.
type CampaignResult struct {
	Days int
	// WebsiteTopics[d][t] is the share of day-d connections to
	// ontology-labelled hosts whose dominant topic is t (Figure 6a).
	WebsiteTopics [][]float64
	// AdNetTopics[d][t] is the share of day-d ad-network impressions
	// with dominant topic t (Figure 6b).
	AdNetTopics [][]float64
	// EavesTopics[d][t] is the same for eavesdropper impressions
	// (Figure 6c).
	EavesTopics [][]float64

	// EavesCTR and AdNetCTR are the overall rates (paper: 0.217% and
	// 0.168%).
	EavesCTR, AdNetCTR ads.CTR
	// PerUserEaves/PerUserAdNet are aligned per-user CTRs for the
	// paired t-test (users who saw both ad types).
	PerUserEaves, PerUserAdNet []float64
	// TTest is the two-tailed paired t-test over the per-user CTRs
	// (the paper's test, Section 6.4).
	TTest stats.TTestResult
	// Wilcoxon is the signed-rank robustness check over the same pairs;
	// per-user CTRs are skewed proportions, so the rank test guards the
	// t-test's normality assumption.
	Wilcoxon stats.WilcoxonResult

	// Replaced counts eavesdropper impressions; Served counts all
	// impressions (paper: 41K replaced of 270K).
	Replaced, Served int64
	// ProfileFailures counts reports where profiling errored (empty
	// session, no labels reachable).
	ProfileFailures int64
	// MeanEavesAffinity / MeanAdNetAffinity are the mean ground-truth
	// user-to-ad affinities of the impressions each system served: the
	// deterministic profile-quality signal underneath the (noisy,
	// binomial) CTR.
	MeanEavesAffinity, MeanAdNetAffinity float64

	eavesAffinitySum, adnetAffinitySum float64
}

// perUserCTR tracks one user's impressions under both systems.
type perUserCTR struct {
	eaves, adnet ads.CTR
}

// RunCampaign replays the profiling month: every ReportEvery seconds of a
// user's activity the back-end profiles their last SessionWindow of
// hostnames with prof and refreshes the replacement-ad list; every page
// they load serves ads from the ad-network, some of which are replaced by
// size-matched eavesdropper ads; every impression runs through the click
// model.
func RunCampaign(s *Setup, prof baseline.SessionProfiler, cfg CampaignConfig) (CampaignResult, error) {
	cfg = cfg.withDefaults()
	rng := stats.NewRNG(cfg.Seed ^ 0xca3b)
	days := s.Filtered.Days()
	nTops := s.Universe.Tax.NumTops()

	// Daily retraining (paper Section 5.4): day d is profiled with a
	// model fitted on day d-1 only; day 0 bootstraps on itself,
	// standing in for the paper's separate data-collection phase.
	var dayProfilers []baseline.SessionProfiler
	if cfg.DailyRetrain {
		dayProfilers = make([]baseline.SessionProfiler, days)
		for d := 0; d < days; d++ {
			src := d - 1
			if src < 0 {
				src = 0
			}
			tc := s.Config.Train
			tc.Seed = s.Config.Train.Seed + 7919*uint64(d+1)
			m, err := core.Train(s.Filtered.DailySequences(src), tc)
			if err != nil {
				continue // day stays nil: profiling falls back to prof
			}
			dayProfilers[d] = core.NewProfiler(m, s.Ontology,
				core.ProfilerConfig{N: s.Config.ProfilerN, Agg: core.AggIDF})
		}
	}
	res := CampaignResult{Days: days}
	res.WebsiteTopics = newDayTopicMatrix(days, nTops)
	res.AdNetTopics = newDayTopicMatrix(days, nTops)
	res.EavesTopics = newDayTopicMatrix(days, nTops)

	perUser := make(map[int]*perUserCTR)
	users := s.Population.Users

	per := s.Filtered.PerUserVisits()
	for _, uid := range s.Filtered.Users() {
		if uid < 0 || uid >= len(users) {
			continue
		}
		user := users[uid]
		uc := &perUserCTR{}
		perUser[uid] = uc

		var lastReport int64 = -1 << 62
		var adList []ads.Ad
		adCursor := 0

		for _, v := range per[uid] {
			day := v.Day()
			if day >= days {
				continue
			}
			// Figure 6a: topic of every labelled connection.
			if lv, ok := s.Ontology.Lookup(v.Host); ok {
				if top := stats.ArgMax(lv.TopLevel(s.Universe.Tax)); top >= 0 {
					res.WebsiteTopics[day][top]++
				}
			}

			// Periodic report → fresh profile → fresh ad list.
			if v.Time-lastReport >= s.Config.ReportEvery {
				lastReport = v.Time
				profiler := prof
				if dayProfilers != nil && dayProfilers[day] != nil {
					profiler = dayProfilers[day]
				}
				session := s.Filtered.Session(uid, v.Time, s.Config.SessionWindow)
				p, err := profiler.ProfileSession(session)
				if err != nil {
					res.ProfileFailures++
				} else {
					adList = s.Selector.Select(p, cfg.EavesAdsPerReport)
					adCursor = 0
				}
			}

			// Only first-party pages carry ad slots.
			h, ok := s.Universe.HostByName(v.Host)
			if !ok || h.Kind != synth.KindSite {
				continue
			}
			site := s.Universe.SiteOfHost(h.ID)
			pageTop := -1
			if site != nil {
				pageTop = site.Top
			}

			slots := 1 + rng.Intn(cfg.SlotsPerPageMax)
			for sl := 0; sl < slots; sl++ {
				original := s.AdNetwork.Serve(user, pageTop, day)
				replacement, found := nextSizeMatch(adList, &adCursor, original.Size)
				if found && rng.Bool(cfg.ReplaceProb) {
					clicked := s.Clicks.Click(user, replacement)
					uc.eaves.Observe(clicked)
					res.EavesCTR.Observe(clicked)
					res.Replaced++
					res.eavesAffinitySum += user.AffinityTo(replacement.TopLevel)
					if top := stats.ArgMax(replacement.TopLevel); top >= 0 {
						res.EavesTopics[day][top]++
					}
				} else {
					clicked := s.Clicks.Click(user, original)
					uc.adnet.Observe(clicked)
					res.AdNetCTR.Observe(clicked)
					res.adnetAffinitySum += user.AffinityTo(original.TopLevel)
					if top := stats.ArgMax(original.TopLevel); top >= 0 {
						res.AdNetTopics[day][top]++
					}
				}
				res.Served++
			}
		}
	}

	// Pair per-user CTRs for users who saw both ad types.
	for _, uid := range s.Filtered.Users() {
		uc, ok := perUser[uid]
		if !ok || uc.eaves.Impressions == 0 || uc.adnet.Impressions == 0 {
			continue
		}
		res.PerUserEaves = append(res.PerUserEaves, uc.eaves.Rate())
		res.PerUserAdNet = append(res.PerUserAdNet, uc.adnet.Rate())
	}
	if len(res.PerUserEaves) >= 2 {
		tt, err := stats.PairedTTest(res.PerUserEaves, res.PerUserAdNet)
		if err != nil {
			return res, fmt.Errorf("experiment: t-test: %w", err)
		}
		res.TTest = tt
		if wr, err := stats.WilcoxonSignedRank(res.PerUserEaves, res.PerUserAdNet); err == nil {
			res.Wilcoxon = wr
		}
	}

	if res.Replaced > 0 {
		res.MeanEavesAffinity = res.eavesAffinitySum / float64(res.Replaced)
	}
	if n := res.Served - res.Replaced; n > 0 {
		res.MeanAdNetAffinity = res.adnetAffinitySum / float64(n)
	}
	normalizeDayTopics(res.WebsiteTopics)
	normalizeDayTopics(res.AdNetTopics)
	normalizeDayTopics(res.EavesTopics)
	return res, nil
}

// nextSizeMatch scans the ad list (starting at *cursor) for a creative
// matching the slot size, advancing the cursor past the pick.
func nextSizeMatch(list []ads.Ad, cursor *int, slot ads.CreativeSize) (ads.Ad, bool) {
	if len(list) == 0 {
		return ads.Ad{}, false
	}
	for i := 0; i < len(list); i++ {
		idx := (*cursor + i) % len(list)
		if ads.SizeMatch(slot, list[idx].Size) {
			*cursor = idx + 1
			return list[idx], true
		}
	}
	return ads.Ad{}, false
}

func newDayTopicMatrix(days, tops int) [][]float64 {
	m := make([][]float64, days)
	for d := range m {
		m[d] = make([]float64, tops)
	}
	return m
}

// normalizeDayTopics converts counts to per-day shares.
func normalizeDayTopics(m [][]float64) {
	for _, row := range m {
		var s float64
		for _, v := range row {
			s += v
		}
		if s == 0 {
			continue
		}
		for i := range row {
			row[i] /= s
		}
	}
}

// ErrNoPairs is returned by CTRRows when too few users saw both ad types.
var ErrNoPairs = errors.New("experiment: too few paired users for t-test")

// CTRRows renders the Section 6.4 comparison.
func (r CampaignResult) CTRRows() []Row {
	ratio := 0.0
	if r.AdNetCTR.Rate() > 0 {
		ratio = r.EavesCTR.Rate() / r.AdNetCTR.Rate()
	}
	pass := r.EavesCTR.Impressions > 0 && r.AdNetCTR.Impressions > 0 &&
		ratio > 0.5 && ratio < 2.0
	return []Row{{
		ID:    "CTR",
		Name:  "Click-through rate comparison",
		Paper: "eavesdropper 0.217% vs ad-network 0.168%; paired t-test p=.113 (no significant difference)",
		Measured: fmt.Sprintf("eavesdropper %.3f%% (%d imp) vs ad-network %.3f%% (%d imp); t=%.2f p=%.3f (Wilcoxon p=%.3f) over %d paired users",
			r.EavesCTR.Percent(), r.EavesCTR.Impressions,
			r.AdNetCTR.Percent(), r.AdNetCTR.Impressions,
			r.TTest.T, r.TTest.P, r.Wilcoxon.P, r.TTest.N),
		Criterion: "eavesdropper CTR within 2x of ad-network CTR (profiles comparable in quality)",
		Pass:      pass,
	}}
}

// Fig6Rows renders the topic-mix comparison of Figure 6.
func (r CampaignResult) Fig6Rows() []Row {
	webTop, webShare := dominantTopic(r.WebsiteTopics)
	adTop, _ := dominantTopic(r.AdNetTopics)
	evTop, _ := dominantTopic(r.EavesTopics)
	stability := topTopicStability(r.WebsiteTopics, webTop)
	l1 := meanL1(r.AdNetTopics, r.EavesTopics)
	return []Row{
		{
			ID:    "FIG6a",
			Name:  "Topics of visited websites per day",
			Paper: "Online Communities / Arts & Entertainment dominate and stay stable over the month",
			Measured: fmt.Sprintf("dominant topic #%d with mean share %.2f, day-to-day stddev %.3f",
				webTop, webShare, stability),
			Criterion: "one topic dominates with share stable across days (stddev < share/2)",
			Pass:      webShare > 0.05 && stability < webShare/2,
		},
		{
			ID:    "FIG6b/c",
			Name:  "Topics of served ads (ad-network vs eavesdropper)",
			Paper: "ad mixes differ from website mix and from each other",
			Measured: fmt.Sprintf("dominant ad topics: ad-network #%d, eavesdropper #%d; mean daily L1 distance %.2f",
				adTop, evTop, l1),
			Criterion: "distributions differ (L1 > 0.2)",
			Pass:      l1 > 0.2,
		},
	}
}

// dominantTopic returns the topic with the highest mean share and that
// share.
func dominantTopic(m [][]float64) (int, float64) {
	if len(m) == 0 {
		return -1, 0
	}
	means := make([]float64, len(m[0]))
	for _, row := range m {
		for i, v := range row {
			means[i] += v
		}
	}
	for i := range means {
		means[i] /= float64(len(m))
	}
	best := stats.ArgMax(means)
	if best < 0 {
		return -1, 0
	}
	return best, means[best]
}

// topTopicStability returns the day-to-day standard deviation of the
// given topic's share.
func topTopicStability(m [][]float64, topic int) float64 {
	if topic < 0 || len(m) == 0 {
		return 0
	}
	xs := make([]float64, len(m))
	for d, row := range m {
		xs[d] = row[topic]
	}
	return stats.StdDev(xs)
}

// meanL1 averages the per-day L1 distance between two day-topic
// matrices.
func meanL1(a, b [][]float64) float64 {
	if len(a) == 0 || len(a) != len(b) {
		return 0
	}
	var total float64
	for d := range a {
		var l1 float64
		for i := range a[d] {
			diff := a[d][i] - b[d][i]
			if diff < 0 {
				diff = -diff
			}
			l1 += diff
		}
		total += l1
	}
	return total / float64(len(a))
}
