// Package store is the profiling pipeline's storage engine: a
// user-sharded in-memory visit store with optional durability through a
// write-ahead log and periodic snapshots.
//
// Scale: the paper's eavesdropper accumulates months of browsing (600M
// connections over six months in Section 3; a live back-end fed by 1329
// users for a month in Section 5), so the visit store is both the
// hottest write path in the system and the one component whose loss
// destroys the observer's accumulated advantage. The design splits the
// two concerns:
//
//   - Concurrency — visits are partitioned into power-of-two shards by
//     user, each behind its own mutex, so concurrent ingestion from
//     many capture threads scales instead of serializing on one lock.
//     Session reads touch exactly one shard.
//   - Durability — when a directory is configured, every append is
//     framed (length + CRC-32C) into an append-only segmented WAL, and
//     snapshots (visits + trained model) are written atomically via
//     temp-file + rename. Recovery loads the newest valid snapshot and
//     replays the WAL tail, tolerating a torn final record.
//
// A Store with no directory is a purely in-memory sharded store with
// identical semantics and zero I/O.
package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"log/slog"
	"math/bits"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hostprof/internal/core"
	"hostprof/internal/obs"
	"hostprof/internal/trace"
)

// FsyncPolicy selects when WAL writes are forced to stable storage.
type FsyncPolicy uint8

const (
	// FsyncInterval (the default) fsyncs from a background ticker every
	// Config.FsyncEvery: bounded data loss on power failure, near-zero
	// per-append cost.
	FsyncInterval FsyncPolicy = iota
	// FsyncAlways fsyncs after every append: zero-loss, slowest.
	FsyncAlways
	// FsyncNever leaves flushing to the OS page cache: complete records
	// still survive process crashes, but not power loss.
	FsyncNever
)

// String returns the flag spelling of the policy.
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncNever:
		return "never"
	default:
		return "interval"
	}
}

// ParseFsync parses a flag spelling ("always", "interval", "never").
func ParseFsync(s string) (FsyncPolicy, error) {
	switch s {
	case "always":
		return FsyncAlways, nil
	case "interval", "":
		return FsyncInterval, nil
	case "never":
		return FsyncNever, nil
	}
	return 0, fmt.Errorf("store: unknown fsync policy %q (want always, interval or never)", s)
}

// Config assembles a Store.
type Config struct {
	// Dir enables durability: WAL segments and snapshots live here.
	// Empty selects a purely in-memory store.
	Dir string
	// Shards is the shard count, rounded up to a power of two.
	// Default 16.
	Shards int
	// Fsync is the WAL flush policy. Default FsyncInterval.
	Fsync FsyncPolicy
	// FsyncEvery is the background flush cadence under FsyncInterval.
	// Default 100ms.
	FsyncEvery time.Duration
	// SegmentBytes rotates WAL segments past this size. Default 64 MiB.
	SegmentBytes int64
	// SnapshotEvery, when positive, snapshots on a background ticker in
	// addition to explicit Snapshot calls.
	SnapshotEvery time.Duration
	// ReprobeMin and ReprobeMax bound the exponential backoff between
	// WAL re-attach probes while the store is degraded (see Append).
	// Defaults 500ms and 30s.
	ReprobeMin, ReprobeMax time.Duration
	// Metrics, when non-nil, is the registry the store exports into
	// (hostprof_store_* names; see internal/obs).
	Metrics *obs.Registry
	// Logger receives the store's structured logs (recovery summary,
	// degraded-mode transitions). Nil selects slog.Default().
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	if c.Shards <= 0 {
		c.Shards = 16
	}
	if c.Shards&(c.Shards-1) != 0 {
		c.Shards = 1 << bits.Len(uint(c.Shards))
	}
	if c.FsyncEvery <= 0 {
		c.FsyncEvery = 100 * time.Millisecond
	}
	if c.SegmentBytes <= 0 {
		c.SegmentBytes = 64 << 20
	}
	if c.ReprobeMin <= 0 {
		c.ReprobeMin = 500 * time.Millisecond
	}
	if c.ReprobeMax < c.ReprobeMin {
		c.ReprobeMax = 30 * time.Second
		if c.ReprobeMax < c.ReprobeMin {
			c.ReprobeMax = c.ReprobeMin
		}
	}
	return c
}

// shard is one visit partition. The padding keeps independently locked
// shards on separate cache lines.
type shard struct {
	mu     sync.Mutex
	visits []trace.Visit
	_      [24]byte
}

// RecoveryStats reports what startup recovery found.
type RecoveryStats struct {
	// SnapshotVisits is the visit count loaded from the snapshot.
	SnapshotVisits int
	// ReplayedRecords is the count of complete WAL records replayed.
	ReplayedRecords int
	// TornTail reports whether the newest segment ended in a torn
	// record (the expected artefact of a crash mid-append).
	TornTail bool
	// ModelRestored reports whether the snapshot carried a trained
	// model.
	ModelRestored bool
}

// Store is the sharded visit store. All methods are safe for concurrent
// use.
type Store struct {
	cfg Config
	met storeMetrics

	// gate serializes snapshot cuts against appends: Append holds it
	// shared (appenders never block each other here), Snapshot holds it
	// exclusively while copying visits and cutting the WAL, so the
	// snapshot plus the post-cut segments always equal the store
	// exactly — no lost and no duplicated visit.
	gate   sync.RWMutex
	shards []shard
	mask   uint64

	wal *walWriter // nil when in-memory

	// degraded flips when a WAL append fails: the store keeps accepting
	// visits memory-only while a background prober re-attaches the WAL
	// with exponential backoff. degradeMu serializes the transition (and
	// prober spawn) against Close.
	degraded  atomic.Bool
	degradeMu sync.Mutex
	closing   bool

	modelMu  sync.Mutex
	model    *core.Model
	artifact *ModelArtifact // cached serialized form; nil until first export

	snapMu sync.Mutex // serializes Snapshot calls
	rec    RecoveryStats

	stop      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once
	closeErr  error
}

// Open builds a store, recovering durable state from cfg.Dir when set:
// the newest valid snapshot is loaded, then every WAL segment after its
// cut point is replayed in order. A torn final record — the signature of
// a crash mid-append — is truncated away and reported in RecoveryStats;
// corruption anywhere else fails the open.
func Open(cfg Config) (*Store, error) {
	cfg = cfg.withDefaults()
	s := &Store{
		cfg:    cfg,
		shards: make([]shard, cfg.Shards),
		mask:   uint64(cfg.Shards - 1),
		stop:   make(chan struct{}),
	}
	s.met = newStoreMetrics(cfg.Metrics, s)
	if cfg.Dir == "" {
		return s, nil
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating data dir: %w", err)
	}
	if err := s.recover(); err != nil {
		return nil, err
	}
	cfg.Logger.Info("store recovered",
		slog.String("dir", cfg.Dir),
		slog.String("fsync", cfg.Fsync.String()),
		slog.Int("snapshot_visits", s.rec.SnapshotVisits),
		slog.Int("wal_records", s.rec.ReplayedRecords),
		slog.Bool("torn_tail", s.rec.TornTail),
		slog.Bool("model_restored", s.rec.ModelRestored))
	if cfg.Fsync == FsyncInterval {
		s.wg.Add(1)
		go s.fsyncLoop()
	}
	if cfg.SnapshotEvery > 0 {
		s.wg.Add(1)
		go s.snapshotLoop()
	}
	return s, nil
}

// recover loads the newest snapshot, replays the WAL tail and opens a
// fresh segment for new appends.
func (s *Store) recover() error {
	wire, model, haveSnap, err := newestSnapshot(s.cfg.Dir)
	if err != nil {
		return err
	}
	var snapSeq uint64
	if haveSnap {
		snapSeq = wire.Seq
		for _, v := range wire.Visits {
			s.applyVisit(v)
		}
		s.model = model
		s.rec.SnapshotVisits = len(wire.Visits)
		s.rec.ModelRestored = model != nil
	}
	segs, err := listSegments(s.cfg.Dir)
	if err != nil {
		return err
	}
	maxSeq := snapSeq
	for i, seg := range segs {
		if seg.seq > maxSeq {
			maxSeq = seg.seq
		}
		if seg.seq <= snapSeq {
			// Covered by the snapshot; left over from a crash between
			// snapshot publish and segment removal.
			continue
		}
		n, torn, err := replaySegment(seg.path, i == len(segs)-1, s.applyVisit)
		if err != nil {
			return err
		}
		s.rec.ReplayedRecords += n
		if torn {
			s.rec.TornTail = true
			s.met.recoveryTorn.Inc()
		}
	}
	s.met.recoveryRecords.Add(int64(s.rec.ReplayedRecords))
	s.wal, err = openWAL(s.cfg.Dir, maxSeq+1, s.cfg.Fsync, s.cfg.SegmentBytes, &s.met)
	return err
}

// applyVisit inserts v without WAL traffic (recovery path).
func (s *Store) applyVisit(v trace.Visit) {
	sh := &s.shards[s.shardOf(v.User)]
	sh.visits = append(sh.visits, v)
}

func (s *Store) shardOf(user int) uint64 {
	h := uint64(user) * 0x9e3779b97f4a7c15
	h ^= h >> 29
	return h & s.mask
}

// Recovery returns what startup recovery found (zero for in-memory or
// first-boot stores).
func (s *Store) Recovery() RecoveryStats { return s.rec }

// Append records one visit: WAL first (when durable), then the user's
// shard. Appends from different users contend only on the WAL's internal
// lock, never on a store-wide mutex.
//
// A WAL write failure does not fail the append: the store degrades to
// memory-only mode (visible as Degraded and the hostprof_store_degraded
// gauge), keeps accepting visits, and re-probes the WAL with bounded
// exponential backoff until it re-attaches. Visits accepted while
// degraded are covered by the snapshot taken on re-attach; only a crash
// during the degraded window can lose them — the price of staying up.
// Append fails only for an unstorable record (oversized hostname).
func (s *Store) Append(v trace.Visit) error {
	if len(v.Host) > maxRecordPayload/2 {
		return fmt.Errorf("store: hostname of %d bytes exceeds record limit", len(v.Host))
	}
	s.gate.RLock()
	defer s.gate.RUnlock()
	if s.wal != nil && !s.degraded.Load() {
		if err := s.wal.Append(v); err != nil {
			s.met.appendErrors.Inc()
			s.degrade()
		}
	}
	sh := &s.shards[s.shardOf(v.User)]
	sh.mu.Lock()
	sh.visits = append(sh.visits, v)
	sh.mu.Unlock()
	s.met.appends.Inc()
	return nil
}

// Degraded reports whether the store is running memory-only after a WAL
// failure, with durability suspended until the prober re-attaches.
func (s *Store) Degraded() bool { return s.degraded.Load() }

// degrade enters memory-only mode and spawns the re-probe loop; only
// the first caller after a healthy period does anything.
func (s *Store) degrade() {
	s.degradeMu.Lock()
	defer s.degradeMu.Unlock()
	if s.closing || s.degraded.Load() {
		return
	}
	s.degraded.Store(true)
	s.cfg.Logger.Warn("store degraded: WAL append failed, serving memory-only until re-attach")
	s.wg.Add(1)
	go s.reprobeLoop()
}

// reprobeLoop tries to re-attach the WAL with exponential backoff
// between cfg.ReprobeMin and cfg.ReprobeMax, then restores durability:
// the post-re-attach snapshot persists everything ingested while the
// WAL was down.
func (s *Store) reprobeLoop() {
	defer s.wg.Done()
	backoff := s.cfg.ReprobeMin
	timer := time.NewTimer(backoff)
	defer timer.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-timer.C:
		}
		if err := s.wal.reattach(); err == nil {
			s.degraded.Store(false)
			s.met.walReattaches.Inc()
			s.cfg.Logger.Info("store WAL re-attached, durability restored")
			s.Snapshot() // best effort; failures count in snapshot_errors_total
			return
		} else {
			s.cfg.Logger.Debug("store WAL re-attach probe failed",
				slog.String("error", err.Error()),
				slog.Duration("next_probe", backoff))
		}
		s.met.appendErrors.Inc()
		s.met.walProbeFailures.Inc()
		backoff *= 2
		if backoff > s.cfg.ReprobeMax {
			backoff = s.cfg.ReprobeMax
		}
		timer.Reset(backoff)
	}
}

// Len returns the number of stored visits.
func (s *Store) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n += len(sh.visits)
		sh.mu.Unlock()
	}
	return n
}

// Users returns the sorted distinct user IDs in the store.
func (s *Store) Users() []int {
	set := make(map[int]bool)
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for _, v := range sh.visits {
			set[v.User] = true
		}
		sh.mu.Unlock()
	}
	out := make([]int, 0, len(set))
	for u := range set {
		out = append(out, u)
	}
	sort.Ints(out)
	return out
}

// copyVisits merges every shard into one fresh slice. Callers that need
// a cut consistent with the WAL must hold the gate exclusively.
func (s *Store) copyVisits() []trace.Visit {
	out := make([]trace.Visit, 0, s.Len())
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		out = append(out, sh.visits...)
		sh.mu.Unlock()
	}
	return out
}

// SnapshotTrace returns a point-in-time copy of the store as a sorted
// trace. The result shares nothing with the store, so callers may window
// and iterate it freely while ingestion continues.
func (s *Store) SnapshotTrace() *trace.Trace {
	return trace.New(s.copyVisits())
}

// Session returns the hostnames user requested in (end-window, end], in
// time order — the paper's s_u^T — touching only the user's shard.
func (s *Store) Session(user int, end, window int64) []string {
	sh := &s.shards[s.shardOf(user)]
	sh.mu.Lock()
	var sel []trace.Visit
	for _, v := range sh.visits {
		if v.User == user && v.Time > end-window && v.Time <= end {
			sel = append(sel, v)
		}
	}
	sh.mu.Unlock()
	sort.SliceStable(sel, func(i, j int) bool { return sel[i].Time < sel[j].Time })
	hosts := make([]string, len(sel))
	for i, v := range sel {
		hosts[i] = v.Host
	}
	return hosts
}

// AllSequences returns one hostname sequence per (user, day) pair — the
// full-history training corpus.
func (s *Store) AllSequences() [][]string {
	return s.SnapshotTrace().AllSequences()
}

// DailySequences returns day d's per-user training sequences.
func (s *Store) DailySequences(d int) [][]string {
	return s.SnapshotTrace().DailySequences(d)
}

// Model returns the store's current trained model, or nil. After a
// durable restart this is the model restored from the newest snapshot —
// a warm start that skips the first retrain.
func (s *Store) Model() *core.Model {
	s.modelMu.Lock()
	defer s.modelMu.Unlock()
	return s.model
}

// SetModel installs a freshly trained model; it is persisted by the next
// Snapshot. Any cached model artifact is invalidated.
func (s *Store) SetModel(m *core.Model) {
	s.modelMu.Lock()
	s.model = m
	s.artifact = nil
	s.modelMu.Unlock()
}

// ModelArtifact is the store's model as a transferable artifact: the
// model serialized with core.Model.Save plus a content-derived version.
// Two nodes holding byte-identical models report the same Version, so a
// cluster can converge on "every shard serves generation X" by comparing
// versions alone.
type ModelArtifact struct {
	// Version is the hex-encoded truncated SHA-256 of Data — a
	// content address, not a sequence number, so it survives restarts
	// and is comparable across nodes with no coordination.
	Version string
	// Data is the serialized model (core.Model.Save wire format).
	Data []byte
}

// ArtifactVersion computes the content version of a serialized model.
func ArtifactVersion(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:8])
}

// ModelArtifact serializes the current model into a versioned artifact.
// The serialized form is cached until the next SetModel/InstallModel, so
// repeated exports (a gateway distributing one generation to N peers)
// pay the encoding cost once. ok is false when no model is trained yet.
func (s *Store) ModelArtifact() (art ModelArtifact, ok bool, err error) {
	s.modelMu.Lock()
	defer s.modelMu.Unlock()
	if s.model == nil {
		return ModelArtifact{}, false, nil
	}
	if s.artifact == nil {
		var buf bytes.Buffer
		if err := s.model.Save(&buf); err != nil {
			return ModelArtifact{}, false, fmt.Errorf("store: exporting model: %w", err)
		}
		s.artifact = &ModelArtifact{
			Version: ArtifactVersion(buf.Bytes()),
			Data:    buf.Bytes(),
		}
	}
	return *s.artifact, true, nil
}

// ModelVersion returns the current model's content version, or "" when
// no model is trained. It shares the artifact cache with ModelArtifact.
func (s *Store) ModelVersion() string {
	art, ok, err := s.ModelArtifact()
	if err != nil || !ok {
		return ""
	}
	return art.Version
}

// InstallModel installs a model received from a peer, priming the
// artifact cache with its already-serialized bytes so re-export (and
// version reads) skip the encode entirely. data must be the serialized
// form of m; it is persisted by the next Snapshot.
func (s *Store) InstallModel(m *core.Model, data []byte) {
	s.modelMu.Lock()
	s.model = m
	s.artifact = &ModelArtifact{Version: ArtifactVersion(data), Data: data}
	s.modelMu.Unlock()
}

// Flush forces buffered WAL writes to stable storage.
func (s *Store) Flush() error {
	if s.wal == nil {
		return nil
	}
	return s.wal.Sync()
}

// ErrDegraded is returned by Snapshot while the WAL is detached: a
// snapshot cut needs a healthy log to retire segments against.
var ErrDegraded = errors.New("store: degraded (WAL detached)")

// Snapshot writes a durable snapshot of the current visits and model,
// then retires the WAL segments it covers. Appends are blocked only for
// the in-memory copy and WAL cut, not for the disk write. No-op for
// in-memory stores; ErrDegraded while the WAL is detached.
func (s *Store) Snapshot() error {
	if s.wal == nil {
		return nil
	}
	if s.degraded.Load() {
		return ErrDegraded
	}
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	sp := obs.StartSpan(s.met.snapshotSeconds)
	s.gate.Lock()
	visits := s.copyVisits()
	cut, err := s.wal.Cut()
	s.gate.Unlock()
	if err != nil {
		s.met.snapshotErrors.Inc()
		return err
	}
	if err := writeSnapshot(s.cfg.Dir, cut, visits, s.Model()); err != nil {
		s.met.snapshotErrors.Inc()
		return err
	}
	removeObsolete(s.cfg.Dir, cut, cut)
	sp.End()
	s.met.snapshots.Inc()
	return nil
}

// Close stops background work, flushes the WAL and closes it. Close does
// not snapshot — the WAL already holds every record — but callers that
// want the fastest possible next recovery (e.g. graceful server
// shutdown) should call Snapshot first.
func (s *Store) Close() error {
	s.closeOnce.Do(func() {
		// Block new degrade transitions so no prober goroutine is
		// spawned between close(stop) and wg.Wait.
		s.degradeMu.Lock()
		s.closing = true
		s.degradeMu.Unlock()
		close(s.stop)
		s.wg.Wait()
		if s.wal != nil {
			s.closeErr = s.wal.Close()
		}
	})
	return s.closeErr
}

func (s *Store) fsyncLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.FsyncEvery)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.wal.Sync()
		case <-s.stop:
			return
		}
	}
}

func (s *Store) snapshotLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.SnapshotEvery)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.Snapshot()
		case <-s.stop:
			return
		}
	}
}
