// Package pcap reads and writes classic libpcap capture files (the
// original pcap format, magic 0xa1b2c3d4), so synthetic captures can be
// persisted, exchanged and fed back to the observer — or inspected with
// standard tooling.
package pcap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// File format constants.
const (
	magicMicros   = 0xa1b2c3d4
	magicMicrosBE = 0xd4c3b2a1
	versionMajor  = 2
	versionMinor  = 4
	// LinkTypeEthernet is the only link type this package produces.
	LinkTypeEthernet = 1
	defaultSnapLen   = 262144
)

// Format errors.
var (
	// ErrBadMagic marks a file that is not classic pcap.
	ErrBadMagic = errors.New("pcap: bad magic")
	// ErrTruncated marks a file cut short mid-record.
	ErrTruncated = errors.New("pcap: truncated file")
)

// Record is one captured packet.
type Record struct {
	// TimeSec and TimeMicro form the capture timestamp.
	TimeSec   uint32
	TimeMicro uint32
	// Data holds the captured bytes (possibly fewer than OrigLen).
	Data []byte
	// OrigLen is the original wire length.
	OrigLen uint32
}

// Writer emits a pcap stream.
type Writer struct {
	w       io.Writer
	snapLen uint32
	started bool
}

// NewWriter returns a Writer targeting w. The global header is emitted on
// the first WriteRecord (or by Flush of an empty capture via writeHeader).
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: w, snapLen: defaultSnapLen}
}

// writeHeader emits the global pcap header once.
func (w *Writer) writeHeader() error {
	if w.started {
		return nil
	}
	var hdr [24]byte
	le := binary.LittleEndian
	le.PutUint32(hdr[0:4], magicMicros)
	le.PutUint16(hdr[4:6], versionMajor)
	le.PutUint16(hdr[6:8], versionMinor)
	// thiszone, sigfigs zero.
	le.PutUint32(hdr[16:20], w.snapLen)
	le.PutUint32(hdr[20:24], LinkTypeEthernet)
	if _, err := w.w.Write(hdr[:]); err != nil {
		return fmt.Errorf("pcap: writing header: %w", err)
	}
	w.started = true
	return nil
}

// WriteRecord appends one packet with the given timestamp (seconds and
// microseconds).
func (w *Writer) WriteRecord(sec, usec uint32, data []byte) error {
	if err := w.writeHeader(); err != nil {
		return err
	}
	capLen := uint32(len(data))
	if capLen > w.snapLen {
		capLen = w.snapLen
	}
	var hdr [16]byte
	le := binary.LittleEndian
	le.PutUint32(hdr[0:4], sec)
	le.PutUint32(hdr[4:8], usec)
	le.PutUint32(hdr[8:12], capLen)
	le.PutUint32(hdr[12:16], uint32(len(data)))
	if _, err := w.w.Write(hdr[:]); err != nil {
		return fmt.Errorf("pcap: writing record header: %w", err)
	}
	if _, err := w.w.Write(data[:capLen]); err != nil {
		return fmt.Errorf("pcap: writing record data: %w", err)
	}
	return nil
}

// Reader parses a pcap stream.
type Reader struct {
	r     io.Reader
	order binary.ByteOrder
	// LinkType is the capture's link type from the global header.
	LinkType uint32
	// SnapLen is the capture's snap length.
	SnapLen uint32
}

// NewReader parses the global header and returns a Reader.
func NewReader(r io.Reader) (*Reader, error) {
	var hdr [24]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("pcap: reading header: %w", err)
	}
	magicLE := binary.LittleEndian.Uint32(hdr[0:4])
	var order binary.ByteOrder
	switch magicLE {
	case magicMicros:
		order = binary.LittleEndian
	case magicMicrosBE:
		order = binary.BigEndian
	default:
		return nil, fmt.Errorf("%w: %#08x", ErrBadMagic, magicLE)
	}
	return &Reader{
		r:        r,
		order:    order,
		SnapLen:  order.Uint32(hdr[16:20]),
		LinkType: order.Uint32(hdr[20:24]),
	}, nil
}

// Next returns the next record, or io.EOF at clean end of file.
func (r *Reader) Next() (Record, error) {
	var hdr [16]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		if err == io.EOF {
			return Record{}, io.EOF
		}
		return Record{}, fmt.Errorf("%w: record header", ErrTruncated)
	}
	rec := Record{
		TimeSec:   r.order.Uint32(hdr[0:4]),
		TimeMicro: r.order.Uint32(hdr[4:8]),
		OrigLen:   r.order.Uint32(hdr[12:16]),
	}
	capLen := r.order.Uint32(hdr[8:12])
	if capLen > r.SnapLen && r.SnapLen > 0 {
		return Record{}, fmt.Errorf("pcap: record claims %d bytes beyond snaplen %d", capLen, r.SnapLen)
	}
	// Guard allocation against hostile headers: no sane link-layer
	// capture carries frames beyond this (jumbo frames are <64 KiB;
	// the classic-format ceiling seen in the wild is 256 KiB).
	const maxRecordBytes = 1 << 24
	if capLen > maxRecordBytes {
		return Record{}, fmt.Errorf("pcap: record claims implausible %d bytes", capLen)
	}
	rec.Data = make([]byte, capLen)
	if _, err := io.ReadFull(r.r, rec.Data); err != nil {
		return Record{}, fmt.Errorf("%w: record body", ErrTruncated)
	}
	return rec, nil
}

// ReadAll consumes every record.
func (r *Reader) ReadAll() ([]Record, error) {
	var out []Record
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, rec)
	}
}
