package tracer

import (
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
)

// TraceJSON is one retained trace as served by /debug/traces.
type TraceJSON struct {
	TraceID string     `json:"trace_id"`
	Sampled bool       `json:"sampled"`
	Errored bool       `json:"errored,omitempty"`
	Spans   []SpanData `json:"spans"`
}

func exportTrace(td *traceData) TraceJSON {
	td.mu.Lock()
	defer td.mu.Unlock()
	spans := make([]SpanData, len(td.spans))
	copy(spans, td.spans)
	return TraceJSON{
		TraceID: td.id.String(),
		Sampled: td.sampled,
		Errored: td.errored,
		Spans:   spans,
	}
}

// Traces snapshots the retained traces, oldest first. Safe on nil.
func (t *Tracer) Traces() []TraceJSON {
	if t == nil {
		return nil
	}
	tds := t.buf.snapshot()
	out := make([]TraceJSON, len(tds))
	for i, td := range tds {
		out[i] = exportTrace(td)
	}
	return out
}

// TraceByID returns one retained trace by its hex ID. Safe on nil.
func (t *Tracer) TraceByID(hexID string) (TraceJSON, bool) {
	if t == nil {
		return TraceJSON{}, false
	}
	var id TraceID
	if n, err := hex.Decode(id[:], []byte(hexID)); err != nil || n != len(id) {
		return TraceJSON{}, false
	}
	td := t.buf.get(id)
	if td == nil {
		return TraceJSON{}, false
	}
	return exportTrace(td), true
}

// Ingest merges externally produced span records into the buffer — the
// cross-process collection path: a CLI client pushes its spans so the
// server's /debug/traces shows the whole distributed trace. Spans with
// malformed trace IDs are skipped; the count of accepted spans is
// returned. Pushed traces are always retained (pushing is an explicit
// keep decision). Safe on nil (returns 0).
func (t *Tracer) Ingest(spans []SpanData) int {
	if t == nil {
		return 0
	}
	groups := make(map[TraceID][]SpanData)
	var order []TraceID
	n := 0
	for _, sd := range spans {
		var id TraceID
		if k, err := hex.Decode(id[:], []byte(sd.TraceID)); err != nil || k != len(id) || id.IsZero() {
			continue
		}
		if _, ok := groups[id]; !ok {
			order = append(order, id)
		}
		groups[id] = append(groups[id], sd)
		n++
	}
	for _, id := range order {
		g := groups[id]
		td := &traceData{id: id, sampled: true, spans: g}
		for _, sd := range g {
			if sd.Error != "" {
				td.errored = true
			}
		}
		t.buf.add(td)
	}
	return n
}

// chromeEvent is one entry of the Chrome trace-event format ("X"
// complete events plus "M" metadata), loadable in Perfetto and
// chrome://tracing.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`            // microseconds
	Dur   float64        `json:"dur,omitempty"` // microseconds
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Args  map[string]any `json:"args,omitempty"`
}

// chromeExport renders traces as a Chrome trace-event JSON object.
// Processes (services) map to pids; each trace gets its own tid so
// concurrent requests render as separate tracks, with span nesting
// expressed by the "X" events' time containment.
func chromeExport(traces []TraceJSON) map[string]any {
	pids := map[string]int{}
	var services []string
	for _, tr := range traces {
		for _, sd := range tr.Spans {
			if _, ok := pids[sd.Service]; !ok {
				pids[sd.Service] = 0
				services = append(services, sd.Service)
			}
		}
	}
	sort.Strings(services)
	events := make([]chromeEvent, 0, len(traces)*4+len(services))
	for i, svc := range services {
		pids[svc] = i + 1
		events = append(events, chromeEvent{
			Name: "process_name", Phase: "M", PID: i + 1, TID: 0,
			Args: map[string]any{"name": svc},
		})
	}
	for ti, tr := range traces {
		for _, sd := range tr.Spans {
			args := map[string]any{
				"trace_id": sd.TraceID,
				"span_id":  sd.SpanID,
			}
			if sd.ParentID != "" {
				args["parent_id"] = sd.ParentID
			}
			for _, a := range sd.Attrs {
				args[a.Key] = a.Value
			}
			if sd.Error != "" {
				args["error"] = sd.Error
			}
			events = append(events, chromeEvent{
				Name:  sd.Name,
				Cat:   "hostprof",
				Phase: "X",
				TS:    float64(sd.Start) / 1e3,
				Dur:   float64(sd.Duration) / 1e3,
				PID:   pids[sd.Service],
				TID:   ti + 1,
				Args:  args,
			})
			for _, ev := range sd.Events {
				events = append(events, chromeEvent{
					Name:  ev.Msg,
					Cat:   "hostprof",
					Phase: "i",
					TS:    float64(ev.UnixNano) / 1e3,
					PID:   pids[sd.Service],
					TID:   ti + 1,
					Args:  map[string]any{"trace_id": sd.TraceID, "span_id": sd.SpanID},
				})
			}
		}
	}
	return map[string]any{"traceEvents": events, "displayTimeUnit": "ms"}
}

// Handler serves the trace buffer:
//
//	GET  /debug/traces                  → {"traces": [TraceJSON...]}
//	GET  /debug/traces?format=chrome    → Chrome trace-event JSON (Perfetto)
//	GET  /debug/traces?trace=<hex id>   → one trace (both formats)
//	POST /debug/traces                  → {"spans": [SpanData...]} merged in
//
// Safe on a nil receiver (serves 404s).
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if t == nil {
			http.Error(w, "tracing disabled", http.StatusNotFound)
			return
		}
		if r.Method == http.MethodPost {
			var body struct {
				Spans []SpanData `json:"spans"`
			}
			if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 4<<20)).Decode(&body); err != nil {
				http.Error(w, fmt.Sprintf("bad span payload: %v", err), http.StatusBadRequest)
				return
			}
			n := t.Ingest(body.Spans)
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(map[string]int{"accepted": n})
			return
		}
		var traces []TraceJSON
		if id := r.URL.Query().Get("trace"); id != "" {
			tr, ok := t.TraceByID(id)
			if !ok {
				http.Error(w, "no such trace", http.StatusNotFound)
				return
			}
			traces = []TraceJSON{tr}
		} else {
			traces = t.Traces()
		}
		w.Header().Set("Content-Type", "application/json")
		if r.URL.Query().Get("format") == "chrome" {
			json.NewEncoder(w).Encode(chromeExport(traces))
			return
		}
		json.NewEncoder(w).Encode(map[string]any{"traces": traces})
	})
}
