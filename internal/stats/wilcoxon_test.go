package stats

import (
	"math"
	"testing"
)

func TestWilcoxonKnownRanks(t *testing.T) {
	// Diffs: a-b = {+1, +2, +3, -4, +5}. |d| ranks are 1..5.
	// W+ = 1+2+3+5 = 11, n = 5, mu = 7.5.
	a := []float64{2, 4, 6, 1, 10}
	b := []float64{1, 2, 3, 5, 5}
	r, err := WilcoxonSignedRank(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if r.W != 11 || r.N != 5 {
		t.Fatalf("W=%v N=%d, want 11/5", r.W, r.N)
	}
	if r.Significant(0.05) {
		t.Fatalf("weak evidence should not be significant: p=%v", r.P)
	}
}

func TestWilcoxonIdenticalPairs(t *testing.T) {
	a := []float64{1, 2, 3}
	r, err := WilcoxonSignedRank(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if r.P != 1 || r.N != 0 {
		t.Fatalf("identical pairs: %+v", r)
	}
}

func TestWilcoxonDetectsConsistentShift(t *testing.T) {
	rng := NewRNG(77)
	n := 50
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		x := rng.NormFloat64()
		a[i] = x + 0.8
		b[i] = x + 0.1*rng.NormFloat64()
	}
	r, err := WilcoxonSignedRank(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Significant(0.01) {
		t.Fatalf("consistent shift not detected: p=%v", r.P)
	}
	if r.Z <= 0 {
		t.Fatalf("Z sign wrong for a > b: %v", r.Z)
	}
}

func TestWilcoxonAntisymmetric(t *testing.T) {
	a := []float64{5, 1, 4, 9, 2, 7}
	b := []float64{3, 2, 2, 5, 4, 1}
	r1, err := WilcoxonSignedRank(a, b)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := WilcoxonSignedRank(b, a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r1.Z+r2.Z) > 1e-12 || math.Abs(r1.P-r2.P) > 1e-12 {
		t.Fatalf("not antisymmetric: %+v vs %+v", r1, r2)
	}
}

func TestWilcoxonErrors(t *testing.T) {
	if _, err := WilcoxonSignedRank([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("expected length error")
	}
	// One non-zero difference is not enough.
	if _, err := WilcoxonSignedRank([]float64{1, 2}, []float64{1, 3}); err == nil {
		t.Fatal("expected too-few error")
	}
}

func TestWilcoxonAgreesWithTTestDirection(t *testing.T) {
	rng := NewRNG(79)
	n := 40
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = rng.Float64()
		b[i] = a[i] + 0.3 + 0.05*rng.NormFloat64()
	}
	wr, err := WilcoxonSignedRank(a, b)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := PairedTTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if (wr.Z < 0) != (tr.T < 0) {
		t.Fatalf("tests disagree on direction: Z=%v T=%v", wr.Z, tr.T)
	}
	if !wr.Significant(0.01) || !tr.Significant(0.01) {
		t.Fatalf("both should detect the shift: p=%v / %v", wr.P, tr.P)
	}
}
