package ontology

import (
	"sort"
)

// Ontology is the lookup service mapping hostnames to category vectors —
// the H_L ⊆ H of paper Section 4.1. Real ontologies cover a small fraction
// of the Web (Adwords labelled 10.6% of the hostnames in the paper's
// dataset), and that partial coverage is the whole reason the embedding
// algorithm exists.
type Ontology struct {
	tax    *Taxonomy
	labels map[string]Vector
}

// New returns an empty ontology over taxonomy tax.
func New(tax *Taxonomy) *Ontology {
	return &Ontology{tax: tax, labels: make(map[string]Vector)}
}

// Taxonomy returns the taxonomy the ontology labels against.
func (o *Ontology) Taxonomy() *Taxonomy { return o.tax }

// Add registers the category vector for host. The vector is clamped into
// [0,1] and stored by reference; callers must not mutate it afterwards.
func (o *Ontology) Add(host string, v Vector) {
	v.Clamp()
	o.labels[host] = v
}

// Lookup returns the category vector for host and whether it is labelled.
// The returned vector must not be modified.
func (o *Ontology) Lookup(host string) (Vector, bool) {
	v, ok := o.labels[host]
	return v, ok
}

// Covered reports whether host is in the labelled subset.
func (o *Ontology) Covered(host string) bool {
	_, ok := o.labels[host]
	return ok
}

// Len returns the number of labelled hosts.
func (o *Ontology) Len() int { return len(o.labels) }

// Coverage returns the fraction of hosts (from the given universe) that
// the ontology labels, i.e. |H_L ∩ universe| / |universe|.
func (o *Ontology) Coverage(universe []string) float64 {
	if len(universe) == 0 {
		return 0
	}
	var c int
	for _, h := range universe {
		if o.Covered(h) {
			c++
		}
	}
	return float64(c) / float64(len(universe))
}

// Hosts returns all labelled hostnames in sorted order.
func (o *Ontology) Hosts() []string {
	hs := make([]string, 0, len(o.labels))
	for h := range o.labels {
		hs = append(hs, h)
	}
	sort.Strings(hs)
	return hs
}

// Labels returns the underlying host → vector map. The map and its vectors
// must be treated as read-only; it is exposed for the profiler's inner
// loops, which iterate over every labelled host.
func (o *Ontology) Labels() map[string]Vector { return o.labels }
