package store

import (
	"errors"
	"testing"
	"time"

	"hostprof/internal/fault"
	"hostprof/internal/obs"
)

// waitFor polls cond for up to 5s.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestChaosWALFaultDegradesAndReattaches is the store-level acceptance
// test for graceful degradation: with the WAL failing, appends keep
// succeeding memory-only and the degraded gauge reads 1; once the fault
// clears, the backoff prober re-attaches the WAL, snapshots the
// degraded-window visits, and a restart recovers every one of them.
func TestChaosWALFaultDegradesAndReattaches(t *testing.T) {
	t.Cleanup(fault.Reset)
	dir := t.TempDir()
	reg := obs.NewRegistry()
	s := mustOpen(t, Config{
		Dir: dir, Fsync: FsyncNever, Metrics: reg,
		ReprobeMin: 5 * time.Millisecond, ReprobeMax: 20 * time.Millisecond,
	})

	for i := 0; i < 10; i++ {
		if err := s.Append(visit(i, int64(i), "healthy.example")); err != nil {
			t.Fatal(err)
		}
	}
	if s.Degraded() {
		t.Fatal("healthy store reports degraded")
	}

	// Break the WAL. The append that observes the failure must still
	// succeed (memory-only), and the store must flip to degraded.
	fault.Set(fault.StoreWALAppend, fault.Error(errors.New("disk on fire")))
	if err := s.Append(visit(99, 100, "degraded.example")); err != nil {
		t.Fatalf("append during WAL failure returned %v, want nil (degrade, don't fail)", err)
	}
	if !s.Degraded() {
		t.Fatal("store not degraded after WAL append failure")
	}
	if got := gaugeValue(t, reg, "hostprof_store_degraded"); got != 1 {
		t.Fatalf("hostprof_store_degraded = %v, want 1", got)
	}
	if s.met.appendErrors.Value() == 0 {
		t.Fatal("append error not counted")
	}

	// Degraded appends bypass the WAL entirely and keep succeeding.
	for i := 0; i < 50; i++ {
		if err := s.Append(visit(i, int64(1000+i), "degraded.example")); err != nil {
			t.Fatalf("degraded append %d: %v", i, err)
		}
	}
	if err := s.Snapshot(); !errors.Is(err, ErrDegraded) {
		t.Fatalf("Snapshot while degraded = %v, want ErrDegraded", err)
	}

	// Probes keep failing while the fault is armed.
	waitFor(t, "a failed probe", func() bool { return s.met.walProbeFailures.Value() > 0 })
	if !s.Degraded() {
		t.Fatal("store re-attached while the fault was still armed")
	}

	// Clear the fault: the prober re-attaches and snapshots, restoring
	// durability for everything ingested during the outage.
	fault.Reset()
	waitFor(t, "WAL re-attach", func() bool { return !s.Degraded() })
	if s.met.walReattaches.Value() != 1 {
		t.Fatalf("reattaches = %d, want 1", s.met.walReattaches.Value())
	}
	waitFor(t, "post-reattach snapshot", func() bool { return s.met.snapshots.Value() >= 1 })
	if got := gaugeValue(t, reg, "hostprof_store_degraded"); got != 0 {
		t.Fatalf("hostprof_store_degraded = %v after re-attach, want 0", got)
	}

	// Appends are durable again.
	if err := s.Append(visit(7, 2000, "recovered.example")); err != nil {
		t.Fatal(err)
	}
	want := s.Len()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// A restart recovers the pre-fault visits, the degraded-window
	// visits (via the re-attach snapshot) and the post-re-attach tail.
	s2 := mustOpen(t, Config{Dir: dir})
	if got := s2.Len(); got != want {
		t.Fatalf("recovered %d visits, want %d", got, want)
	}
}

// TestDegradedStoreCloseRace: closing a store that is mid-degradation
// must not race the prober spawn or deadlock.
func TestDegradedStoreCloseRace(t *testing.T) {
	t.Cleanup(fault.Reset)
	s := mustOpen(t, Config{
		Dir: t.TempDir(), Fsync: FsyncNever,
		ReprobeMin: time.Millisecond, ReprobeMax: 2 * time.Millisecond,
	})
	fault.Set(fault.StoreWALAppend, fault.Error(errors.New("flaky")))
	for i := 0; i < 10; i++ {
		s.Append(visit(i, int64(i), "race.example"))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestAppendRejectsOversizedHost: record-validation errors are the one
// append failure that is the caller's fault and still surfaces.
func TestAppendRejectsOversizedHost(t *testing.T) {
	s := mustOpen(t, Config{})
	big := make([]byte, maxRecordPayload/2+1)
	for i := range big {
		big[i] = 'a'
	}
	if err := s.Append(visit(1, 1, string(big))); err == nil {
		t.Fatal("oversized hostname accepted")
	}
	if s.Len() != 0 {
		t.Fatalf("oversized visit stored: Len = %d", s.Len())
	}
}

// gaugeValue reads one gauge from the registry's JSON snapshot.
func gaugeValue(t *testing.T, reg *obs.Registry, name string) float64 {
	t.Helper()
	for _, m := range reg.Snapshot() {
		if m.Name == name {
			return m.Value
		}
	}
	t.Fatalf("metric %s not found", name)
	return 0
}
