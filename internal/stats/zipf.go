package stats

import (
	"math"
	"sort"
)

// Zipf samples integers in [0, n) with probability proportional to
// 1/(rank+1)^s. It precomputes the cumulative distribution and samples by
// binary search, which is simple, exact and fast enough for simulation
// workloads (O(log n) per draw).
type Zipf struct {
	cdf []float64
	rng *RNG
}

// NewZipf returns a Zipf sampler over [0, n) with exponent s > 0.
func NewZipf(rng *RNG, s float64, n int) *Zipf {
	if n <= 0 {
		panic("stats: NewZipf with non-positive n")
	}
	if s <= 0 {
		panic("stats: NewZipf with non-positive exponent")
	}
	cdf := make([]float64, n)
	var sum float64
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf, rng: rng}
}

// N returns the size of the sampler's support.
func (z *Zipf) N() int { return len(z.cdf) }

// Draw returns the next rank in [0, n), rank 0 being the most popular.
func (z *Zipf) Draw() int {
	u := z.rng.Float64()
	return sort.SearchFloat64s(z.cdf, u)
}

// Prob returns the probability of drawing rank i.
func (z *Zipf) Prob(i int) float64 {
	if i < 0 || i >= len(z.cdf) {
		return 0
	}
	if i == 0 {
		return z.cdf[0]
	}
	return z.cdf[i] - z.cdf[i-1]
}

// Weighted samples indices proportionally to a fixed non-negative weight
// vector, again via a precomputed CDF.
type Weighted struct {
	cdf []float64
	rng *RNG
}

// NewWeighted builds a sampler over len(weights) outcomes. Weights must be
// non-negative with a positive sum.
func NewWeighted(rng *RNG, weights []float64) *Weighted {
	if len(weights) == 0 {
		panic("stats: NewWeighted with empty weights")
	}
	cdf := make([]float64, len(weights))
	var sum float64
	for i, w := range weights {
		if w < 0 {
			panic("stats: NewWeighted with negative weight")
		}
		sum += w
		cdf[i] = sum
	}
	if sum <= 0 {
		panic("stats: NewWeighted with zero total weight")
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Weighted{cdf: cdf, rng: rng}
}

// Draw returns the next sampled index.
func (w *Weighted) Draw() int {
	u := w.rng.Float64()
	i := sort.SearchFloat64s(w.cdf, u)
	if i >= len(w.cdf) {
		i = len(w.cdf) - 1
	}
	return i
}

// N returns the number of outcomes.
func (w *Weighted) N() int { return len(w.cdf) }
