package store

import (
	"bytes"
	"testing"

	"hostprof/internal/trace"
)

// FuzzWALRecord drives the WAL record decoder with arbitrary bytes. The
// decoder sits directly on crash-recovery input, so it must never panic,
// never over-consume, and every visit it accepts must survive an
// encode/decode round trip unchanged.
func FuzzWALRecord(f *testing.F) {
	for _, v := range []trace.Visit{
		{},
		{User: 1, Time: 42, Host: "seed.example"},
		{User: -3, Time: -9, Host: "negative.example"},
		{User: 1 << 40, Time: 1 << 50, Host: "big.example"},
	} {
		b, err := appendRecord(nil, v)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
		// A torn variant of each seed.
		f.Add(b[:len(b)-2])
	}
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0}, 64))
	f.Add([]byte("go test fuzz corpus junk that is not a record"))

	f.Fuzz(func(t *testing.T, data []byte) {
		v, n, err := decodeRecord(data)
		if err != nil {
			if n != 0 {
				t.Fatalf("error %v with non-zero consumed %d", err, n)
			}
			return
		}
		if n < recordHeader || n > len(data) {
			t.Fatalf("consumed %d of %d", n, len(data))
		}
		re, err := appendRecord(nil, v)
		if err != nil {
			t.Fatalf("re-encode of decoded visit %+v: %v", v, err)
		}
		v2, n2, err := decodeRecord(re)
		if err != nil || n2 != len(re) || v2 != v {
			t.Fatalf("round trip diverged: %+v/%d/%v vs %+v", v2, n2, err, v)
		}
	})
}
