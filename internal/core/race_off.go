//go:build !race

package core

// raceDetectorEnabled reports whether this binary was built with the race
// detector; see race_on.go.
const raceDetectorEnabled = false
