package experiment

import (
	"math"
	"strings"
	"sync"
	"testing"

	"hostprof/internal/ads"
	"hostprof/internal/baseline"
	"hostprof/internal/stats"
)

// sharedSetup caches one small end-to-end setup across the package's
// tests (training is the expensive part).
var (
	setupOnce sync.Once
	setupVal  *Setup
	setupErr  error
)

func testSetup(t *testing.T) *Setup {
	t.Helper()
	setupOnce.Do(func() {
		setupVal, setupErr = NewSetup(SmallConfig(1234))
	})
	if setupErr != nil {
		t.Fatal(setupErr)
	}
	return setupVal
}

func TestNewSetupWiring(t *testing.T) {
	s := testSetup(t)
	if s.Raw.Len() == 0 || s.Filtered.Len() == 0 {
		t.Fatal("empty traces")
	}
	if s.Filtered.Len() >= s.Raw.Len() {
		t.Fatal("filtering removed nothing")
	}
	if s.Model.Vocab().Len() == 0 {
		t.Fatal("empty vocabulary")
	}
	// No tracker hostname survives filtering.
	for _, h := range s.Filtered.Hosts() {
		if s.Blocklist.Contains(h) {
			t.Fatalf("tracker %q survived filtering", h)
		}
	}
}

func TestFig2Shapes(t *testing.T) {
	s := testSetup(t)
	r := Fig2UserDiversityHostnames(s)
	if len(r.CoreSizes) != 4 {
		t.Fatalf("core sizes %v", r.CoreSizes)
	}
	// Cores must grow as the threshold drops (80 → 20).
	for i := 1; i < 4; i++ {
		if r.CoreSizes[i] < r.CoreSizes[i-1] {
			t.Fatalf("core sizes not monotone: %v", r.CoreSizes)
		}
	}
	if r.P75 < r.P25 {
		t.Fatalf("P75 %.0f < P25 %.0f", r.P75, r.P25)
	}
	// CCDF of outside counts is dominated by the total CCDF.
	if len(r.OutsideCCDF[0]) == 0 || len(r.TotalCCDF) == 0 {
		t.Fatal("missing CCDFs")
	}
	rows := r.Fig2Rows()
	if len(rows) != 1 || !rows[0].Pass {
		t.Fatalf("fig2 row failed: %+v", rows)
	}
}

func TestFig3Shapes(t *testing.T) {
	s := testSetup(t)
	r := Fig3UserDiversityCategories(s)
	// Category space is much smaller than hostname space.
	if r.CoreSizes[3] > s.Universe.Tax.NumCategories() {
		t.Fatalf("core larger than category space: %v", r.CoreSizes)
	}
	// Zero-outside fractions grow with core size (more users fully
	// inside bigger cores).
	for i := 1; i < 4; i++ {
		if r.ZeroOutsideFrac[i] < r.ZeroOutsideFrac[i-1]-1e-9 {
			t.Fatalf("zero-outside not monotone: %v", r.ZeroOutsideFrac)
		}
	}
	rows := r.Fig3Rows()
	if len(rows) != 1 {
		t.Fatal("missing fig3 row")
	}
}

func TestFig3CoresSmallerThanFig2Tail(t *testing.T) {
	// Mapping to categories shrinks the space: the number of distinct
	// categories any user reaches is bounded by 328.
	s := testSetup(t)
	r := Fig3UserDiversityCategories(s)
	if r.P75 > 328 {
		t.Fatalf("P75 = %.0f exceeds category count", r.P75)
	}
}

func TestFig4TSNE(t *testing.T) {
	s := testSetup(t)
	r, err := Fig4TSNE(s, 0, 60)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) < 10 {
		t.Fatalf("only %d points", len(r.Points))
	}
	labelled := 0
	for _, p := range r.Points {
		if p.Topic >= 0 {
			labelled++
		}
		if math.IsNaN(p.X) || math.IsNaN(p.Y) {
			t.Fatal("NaN coordinates")
		}
		if p.Host != SecondLevelDomain(p.Host) {
			t.Fatalf("point %q not collapsed to 2LD", p.Host)
		}
	}
	if labelled == 0 {
		t.Fatal("no topic-labelled points")
	}
}

func TestSecondLevelDomain(t *testing.T) {
	cases := map[string]string{
		"mail.google.example":    "google.example",
		"ds.aksb.akamaihd.net":   "akamaihd.net",
		"example.com":            "example.com",
		"com":                    "com",
		"a.b.c.d.e.site.example": "site.example",
	}
	for in, want := range cases {
		if got := SecondLevelDomain(in); got != want {
			t.Errorf("SecondLevelDomain(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestFig5PurityBeatsChance(t *testing.T) {
	s := testSetup(t)
	r := Fig5ClusterPurity(s)
	if len(r.PurityByTopic) == 0 {
		t.Fatal("no topics measured")
	}
	if r.MeanPurity <= r.Chance {
		t.Fatalf("purity %.3f <= chance %.3f: embedding learned nothing",
			r.MeanPurity, r.Chance)
	}
	rows := r.Rows()
	if !rows[0].Pass {
		t.Fatalf("fig5 row failed: %+v", rows[0])
	}
}

func TestRunCampaign(t *testing.T) {
	s := testSetup(t)
	r, err := RunCampaign(s, s.Profiler, CampaignConfig{Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	if r.Served == 0 {
		t.Fatal("no impressions served")
	}
	if r.Replaced == 0 {
		t.Fatal("no ads replaced")
	}
	if r.Replaced >= r.Served {
		t.Fatal("every ad replaced — replacement gating broken")
	}
	if r.EavesCTR.Impressions != r.Replaced {
		t.Fatal("eavesdropper impressions != replaced count")
	}
	if r.AdNetCTR.Impressions+r.EavesCTR.Impressions != r.Served {
		t.Fatal("impression accounting broken")
	}
	if len(r.PerUserEaves) != len(r.PerUserAdNet) {
		t.Fatal("per-user pairing broken")
	}
	if len(r.PerUserEaves) < 2 {
		t.Fatal("too few paired users")
	}
	// Topic matrices are per-day distributions.
	for d := range r.WebsiteTopics {
		var sum float64
		for _, v := range r.WebsiteTopics[d] {
			if v < 0 {
				t.Fatal("negative share")
			}
			sum += v
		}
		if sum != 0 && math.Abs(sum-1) > 1e-9 {
			t.Fatalf("day %d website shares sum to %v", d, sum)
		}
	}
}

func TestCampaignCTRComparableToAdNetwork(t *testing.T) {
	// The paper's headline: eavesdropper profiles are as good as the
	// ad-network's. Require the two CTRs within 2x of each other and a
	// random-profile eavesdropper to do no better than the real one.
	s := testSetup(t)
	real, err := RunCampaign(s, s.Profiler, CampaignConfig{Seed: 101})
	if err != nil {
		t.Fatal(err)
	}
	ratio := real.EavesCTR.Rate() / real.AdNetCTR.Rate()
	if ratio < 0.4 || ratio > 2.5 {
		t.Fatalf("CTR ratio %.2f out of band (eaves %.3f%% adnet %.3f%%)",
			ratio, real.EavesCTR.Percent(), real.AdNetCTR.Percent())
	}

	// Click counts are tiny at test scale, so compare the deterministic
	// affinity signal rather than realized clicks.
	rnd, err := RunCampaign(s, baseline.NewRandom(s.Universe.Tax, 7), CampaignConfig{Seed: 101})
	if err != nil {
		t.Fatal(err)
	}
	if rnd.MeanEavesAffinity >= real.MeanEavesAffinity {
		t.Fatalf("random profiles matched learned ones: affinity %.4f >= %.4f",
			rnd.MeanEavesAffinity, real.MeanEavesAffinity)
	}
}

func TestCampaignWithOntologyOnlyBaseline(t *testing.T) {
	s := testSetup(t)
	r, err := RunCampaign(s, baseline.NewOntologyOnly(s.Ontology), CampaignConfig{Seed: 103})
	if err != nil {
		t.Fatal(err)
	}
	// Coverage-limited profiling fails far more often than the
	// embedding profiler.
	full, err := RunCampaign(s, s.Profiler, CampaignConfig{Seed: 103})
	if err != nil {
		t.Fatal(err)
	}
	if r.ProfileFailures <= full.ProfileFailures {
		t.Fatalf("ontology-only failures (%d) should exceed embedding failures (%d)",
			r.ProfileFailures, full.ProfileFailures)
	}
}

func TestTableCoverage(t *testing.T) {
	s := testSetup(t)
	c := TableCoverage(s)
	if c.Hosts == 0 || c.Labelled == 0 {
		t.Fatal("empty coverage stats")
	}
	if math.Abs(c.Coverage-0.106) > 0.05 {
		t.Fatalf("coverage %.3f far from configured 0.106", c.Coverage)
	}
	if !c.Rows()[0].Pass {
		t.Fatalf("coverage row failed: %+v", c.Rows()[0])
	}
}

func TestTableTrackerFilter(t *testing.T) {
	s := testSetup(t)
	tr := TableTrackerFilter(s)
	if tr.TrackerHits == 0 {
		t.Fatal("no tracker hits in raw trace")
	}
	if tr.Share <= 0 || tr.Share >= 1 {
		t.Fatalf("tracker share %v", tr.Share)
	}
	// Filtered trace length must equal raw minus hits.
	if s.Raw.Len()-tr.TrackerHits != s.Filtered.Len() {
		t.Fatal("filter accounting mismatch")
	}
}

func TestRunAllProducesAllRows(t *testing.T) {
	s := testSetup(t)
	all, err := RunAll(s, 40)
	if err != nil {
		t.Fatal(err)
	}
	ids := map[string]bool{}
	for _, r := range all.Rows {
		ids[r.ID] = true
	}
	for _, want := range []string{"FIG2", "FIG3", "FIG4", "FIG5", "FIG6a", "FIG6b/c", "CTR", "COV", "TRK", "BASE", "CM"} {
		if !ids[want] {
			t.Fatalf("missing row %s (have %v)", want, ids)
		}
	}
	md := all.MarkdownReport()
	if len(md) < 100 {
		t.Fatal("markdown report too short")
	}
}

func TestRunCampaignDailyRetrain(t *testing.T) {
	s := testSetup(t)
	r, err := RunCampaign(s, s.Profiler, CampaignConfig{Seed: 401, DailyRetrain: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.Served == 0 || r.Replaced == 0 {
		t.Fatal("daily-retrain campaign served nothing")
	}
	// Without look-ahead the profiles may be somewhat weaker but must
	// remain far better than random selection.
	rnd, err := RunCampaign(s, baseline.NewRandom(s.Universe.Tax, 7), CampaignConfig{Seed: 401})
	if err != nil {
		t.Fatal(err)
	}
	if r.MeanEavesAffinity <= rnd.MeanEavesAffinity {
		t.Fatalf("daily-retrain affinity %.4f not above random %.4f",
			r.MeanEavesAffinity, rnd.MeanEavesAffinity)
	}
}

func TestCampaignConfigDefaults(t *testing.T) {
	c := CampaignConfig{}.withDefaults()
	if c.ReplaceProb != 0.35 || c.SlotsPerPageMax != 2 || c.EavesAdsPerReport != 20 {
		t.Fatalf("defaults %+v", c)
	}
}

func TestNextSizeMatch(t *testing.T) {
	list := []ads.Ad{
		{ID: 0, Size: ads.CreativeSize{W: 728, H: 90}},
		{ID: 1, Size: ads.CreativeSize{W: 300, H: 250}},
		{ID: 2, Size: ads.CreativeSize{W: 300, H: 250}},
	}
	cur := 0
	got, ok := nextSizeMatch(list, &cur, ads.CreativeSize{W: 300, H: 250})
	if !ok || got.ID != 1 {
		t.Fatalf("first match %v %v", got.ID, ok)
	}
	got, ok = nextSizeMatch(list, &cur, ads.CreativeSize{W: 300, H: 250})
	if !ok || got.ID != 2 {
		t.Fatalf("second match %v %v (cursor should advance)", got.ID, ok)
	}
	// Wraps around.
	got, ok = nextSizeMatch(list, &cur, ads.CreativeSize{W: 300, H: 250})
	if !ok || got.ID != 1 {
		t.Fatalf("wrap match %v %v", got.ID, ok)
	}
	if _, ok := nextSizeMatch(list, &cur, ads.CreativeSize{W: 5, H: 5}); ok {
		t.Fatal("impossible size matched")
	}
	if _, ok := nextSizeMatch(nil, &cur, ads.CreativeSize{W: 300, H: 250}); ok {
		t.Fatal("empty list matched")
	}
}

func TestDominantTopicAndL1(t *testing.T) {
	m := [][]float64{{0.2, 0.8}, {0.4, 0.6}}
	top, share := dominantTopic(m)
	if top != 1 || share != 0.7 {
		t.Fatalf("dominant = %d/%v", top, share)
	}
	if top, _ := dominantTopic(nil); top != -1 {
		t.Fatal("empty matrix should give -1")
	}
	a := [][]float64{{1, 0}}
	bm := [][]float64{{0, 1}}
	if got := meanL1(a, bm); got != 2 {
		t.Fatalf("L1 = %v", got)
	}
	if meanL1(a, nil) != 0 {
		t.Fatal("mismatched lengths should give 0")
	}
}

func TestTopTopicStability(t *testing.T) {
	m := [][]float64{{0.5}, {0.5}, {0.5}}
	if got := topTopicStability(m, 0); got != 0 {
		t.Fatalf("constant share stddev = %v", got)
	}
	if topTopicStability(m, -1) != 0 {
		t.Fatal("invalid topic should give 0")
	}
}

func TestRowString(t *testing.T) {
	r := Row{ID: "X", Name: "n", Paper: "p", Measured: "m", Criterion: "c", Pass: true}
	s := r.String()
	if !strings.Contains(s, "| X |") || !strings.Contains(s, "| ok |") {
		t.Fatalf("row = %q", s)
	}
	r.Pass = false
	if !strings.Contains(r.String(), "FAIL") {
		t.Fatal("fail row should say FAIL")
	}
}

func TestCCDFMedian(t *testing.T) {
	pts := stats.CCDF([]float64{1, 2, 3, 4})
	// Frac >= 0.5 holds up to X=3 (frac .5), so median is 3.
	if got := ccdfMedian(pts); got != 3 {
		t.Fatalf("median = %v", got)
	}
	if ccdfMedian(nil) != 0 {
		t.Fatal("empty CCDF median should be 0")
	}
}

func TestConfigsAreRunnable(t *testing.T) {
	small := SmallConfig(1)
	if small.Universe.Sites <= 0 || small.Population.Users <= 0 || small.ProfilerN <= 0 {
		t.Fatalf("bad small config %+v", small)
	}
	def := DefaultConfig(1)
	if def.Universe.Sites <= small.Universe.Sites {
		t.Fatal("default config not larger than small")
	}
	if def.SessionWindow != 1200 || def.ReportEvery != 600 {
		t.Fatalf("paper timing constants wrong: %+v", def)
	}
}

func TestTableBaselines(t *testing.T) {
	s := testSetup(t)
	b, err := TableBaselines(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range baselineNames {
		if _, ok := b.Affinity[n]; !ok {
			t.Fatalf("missing profiler %q", n)
		}
	}
	if b.Affinity["embedding"] <= b.Affinity["random"] {
		t.Fatalf("embedding affinity %.4f <= random %.4f",
			b.Affinity["embedding"], b.Affinity["random"])
	}
	if b.Failures["embedding"] >= b.Failures["ontology-only"] {
		t.Fatalf("embedding failures %d >= ontology-only %d",
			b.Failures["embedding"], b.Failures["ontology-only"])
	}
	if !b.Rows()[0].Pass {
		t.Fatalf("baseline row failed: %+v", b.Rows()[0])
	}
}
