package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased (n-1) sample variance of xs, or 0 when
// fewer than two samples are given.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n-1)
}

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. It returns 0 for an empty slice.
// xs is not modified.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// CCDFPoint is one point of a complementary CDF: the fraction of samples
// with Value >= X.
type CCDFPoint struct {
	X    float64 // threshold
	Frac float64 // fraction of samples >= X, in [0, 1]
}

// CCDF computes the complementary cumulative distribution ("survival
// function") of xs evaluated at every distinct sample value, sorted by X
// ascending. For each returned point, Frac is the fraction of samples whose
// value is >= X — matching the paper's "% of users visiting at least N
// hostnames" axes in Figures 2 and 3.
func CCDF(xs []float64) []CCDFPoint {
	if len(xs) == 0 {
		return nil
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := float64(len(s))
	var out []CCDFPoint
	for i := 0; i < len(s); {
		j := i
		for j < len(s) && s[j] == s[i] {
			j++
		}
		out = append(out, CCDFPoint{X: s[i], Frac: float64(len(s)-i) / n})
		i = j
	}
	return out
}

// CCDFAt evaluates the fraction of samples in xs that are >= x.
func CCDFAt(xs []float64, x float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var c int
	for _, v := range xs {
		if v >= x {
			c++
		}
	}
	return float64(c) / float64(len(xs))
}

// Histogram counts xs into k equal-width bins spanning [min, max]. Values
// outside the range are clamped into the edge bins.
func Histogram(xs []float64, k int, min, max float64) []int {
	if k <= 0 || max <= min {
		return nil
	}
	bins := make([]int, k)
	w := (max - min) / float64(k)
	for _, x := range xs {
		i := int((x - min) / w)
		if i < 0 {
			i = 0
		}
		if i >= k {
			i = k - 1
		}
		bins[i]++
	}
	return bins
}
