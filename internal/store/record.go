package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"hostprof/internal/trace"
)

// WAL record framing. Each record is
//
//	uint32 LE  payload length
//	uint32 LE  CRC-32C (Castagnoli) of the payload
//	payload    varint user | varint time | uvarint len(host) | host bytes
//
// The frame is self-delimiting, so a segment is replayed by repeatedly
// decoding records until the buffer is exhausted. A crash can leave at
// most one torn record at the very end of the newest segment; the
// framing distinguishes "ran out of bytes" (ErrTornRecord — a valid
// crash artefact) from "bytes are wrong" (ErrCorruptRecord).
const (
	recordHeader = 8
	// maxRecordPayload bounds a single record so a corrupt length field
	// cannot make the replayer allocate or skip gigabytes.
	maxRecordPayload = 1 << 20
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

var (
	// ErrTornRecord marks a record whose frame extends past the end of
	// the buffer — the expected shape of a crash mid-append.
	ErrTornRecord = errors.New("store: torn wal record")
	// ErrCorruptRecord marks a record whose frame is complete but whose
	// contents fail validation (CRC mismatch, bad varints, oversized
	// length).
	ErrCorruptRecord = errors.New("store: corrupt wal record")
)

// appendRecord appends the framed encoding of v to dst.
func appendRecord(dst []byte, v trace.Visit) ([]byte, error) {
	if len(v.Host) > maxRecordPayload/2 {
		return dst, fmt.Errorf("store: hostname of %d bytes exceeds record limit", len(v.Host))
	}
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0)
	dst = binary.AppendVarint(dst, int64(v.User))
	dst = binary.AppendVarint(dst, v.Time)
	dst = binary.AppendUvarint(dst, uint64(len(v.Host)))
	dst = append(dst, v.Host...)
	payload := dst[start+recordHeader:]
	binary.LittleEndian.PutUint32(dst[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(dst[start+4:], crc32.Checksum(payload, crcTable))
	return dst, nil
}

// decodeRecord parses one record from the front of b, returning the
// visit and the total number of bytes consumed (header + payload).
func decodeRecord(b []byte) (trace.Visit, int, error) {
	if len(b) < recordHeader {
		return trace.Visit{}, 0, ErrTornRecord
	}
	n := binary.LittleEndian.Uint32(b)
	if n == 0 {
		// A zero length is what a pre-allocated or partially flushed
		// tail of zeroes looks like; treat it as torn, not corrupt.
		return trace.Visit{}, 0, ErrTornRecord
	}
	if n > maxRecordPayload {
		return trace.Visit{}, 0, ErrCorruptRecord
	}
	if len(b) < recordHeader+int(n) {
		return trace.Visit{}, 0, ErrTornRecord
	}
	payload := b[recordHeader : recordHeader+int(n)]
	if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(b[4:]) {
		return trace.Visit{}, 0, ErrCorruptRecord
	}
	user, k := binary.Varint(payload)
	if k <= 0 {
		return trace.Visit{}, 0, ErrCorruptRecord
	}
	payload = payload[k:]
	ts, k := binary.Varint(payload)
	if k <= 0 {
		return trace.Visit{}, 0, ErrCorruptRecord
	}
	payload = payload[k:]
	hostLen, k := binary.Uvarint(payload)
	if k <= 0 || hostLen != uint64(len(payload)-k) {
		return trace.Visit{}, 0, ErrCorruptRecord
	}
	v := trace.Visit{User: int(user), Time: ts, Host: string(payload[k:])}
	return v, recordHeader + int(n), nil
}
