package tracer

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sync"
	"time"

	"hostprof/internal/obs"
)

// PushConfig assembles a Pusher.
type PushConfig struct {
	// URL is the collector endpoint — a gateway's POST /debug/traces.
	URL string
	// Client overrides the HTTP transport (tests). Nil builds one.
	Client *http.Client
	// BatchSpans caps the spans sent in one POST (default 512). Queued
	// traces are coalesced up to this size before each send.
	BatchSpans int
	// QueueTraces bounds the pending-trace queue (default 256). A full
	// queue drops the newest trace rather than blocking the span's End
	// — backpressure becomes a counter, never request latency.
	QueueTraces int
	// FlushInterval is the longest a queued trace waits before being
	// sent even when the batch is not full (default 1s).
	FlushInterval time.Duration
	// Timeout bounds one collector POST (default 5s).
	Timeout time.Duration
	// Metrics, when non-nil, receives push counters
	// (hostprof_trace_push_* names).
	Metrics *obs.Registry
	// Logger receives send-failure warnings. Nil selects slog.Default().
	Logger *slog.Logger
}

// A Pusher forwards completed traces to a remote collector — the shard
// half of cross-process trace completion. Offer never blocks: traces
// queue into a bounded channel and a background loop batches them into
// POST /debug/traces payloads; when the queue is full the trace is
// dropped and counted. All methods are safe for concurrent use and on
// a nil receiver.
type Pusher struct {
	url      string
	client   *http.Client
	batch    int
	interval time.Duration
	timeout  time.Duration
	log      *slog.Logger

	ch        chan []SpanData
	sent      *obs.Counter
	dropped   *obs.Counter
	sendOK    *obs.Counter
	sendErr   *obs.Counter
	wg        sync.WaitGroup
	closeOnce sync.Once
}

// NewPusher builds and starts a pusher. Returns nil (the disabled
// pusher) when cfg.URL is empty.
func NewPusher(cfg PushConfig) *Pusher {
	if cfg.URL == "" {
		return nil
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{}
	}
	if cfg.BatchSpans <= 0 {
		cfg.BatchSpans = 512
	}
	if cfg.QueueTraces <= 0 {
		cfg.QueueTraces = 256
	}
	if cfg.FlushInterval <= 0 {
		cfg.FlushInterval = time.Second
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 5 * time.Second
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	p := &Pusher{
		url:      cfg.URL,
		client:   cfg.Client,
		batch:    cfg.BatchSpans,
		interval: cfg.FlushInterval,
		timeout:  cfg.Timeout,
		log:      cfg.Logger,
		ch:       make(chan []SpanData, cfg.QueueTraces),
	}
	if reg := cfg.Metrics; reg != nil {
		reg.Describe("hostprof_trace_push_spans_total", "spans offered to the trace pusher, by outcome (queued or dropped on backpressure)")
		reg.Describe("hostprof_trace_push_batches_total", "trace-push collector POSTs, by outcome")
		p.sent = reg.Counter("hostprof_trace_push_spans_total", obs.L("outcome", "queued"))
		p.dropped = reg.Counter("hostprof_trace_push_spans_total", obs.L("outcome", "dropped"))
		p.sendOK = reg.Counter("hostprof_trace_push_batches_total", obs.L("outcome", "ok"))
		p.sendErr = reg.Counter("hostprof_trace_push_batches_total", obs.L("outcome", "error"))
	}
	p.wg.Add(1)
	go p.loop()
	return p
}

// Offer enqueues one completed trace's spans without blocking — the
// function handed to Config.Sink. On a full queue the trace is dropped
// and counted in hostprof_trace_push_spans_total{outcome="dropped"}.
// Safe on nil.
func (p *Pusher) Offer(spans []SpanData) {
	if p == nil || len(spans) == 0 {
		return
	}
	select {
	case p.ch <- spans:
		p.sent.Add(int64(len(spans)))
	default:
		p.dropped.Add(int64(len(spans)))
	}
}

// Close drains the queue, sends what remains, and stops the loop. Safe
// on nil and idempotent.
func (p *Pusher) Close() {
	if p == nil {
		return
	}
	p.closeOnce.Do(func() {
		close(p.ch)
		p.wg.Wait()
	})
}

// loop batches queued traces and sends them. A tick flushes a partial
// batch so a quiet shard's traces still arrive within FlushInterval.
func (p *Pusher) loop() {
	defer p.wg.Done()
	t := time.NewTicker(p.interval)
	defer t.Stop()
	var pending []SpanData
	flush := func() {
		if len(pending) > 0 {
			p.send(pending)
			pending = nil
		}
	}
	for {
		select {
		case spans, ok := <-p.ch:
			if !ok {
				flush()
				return
			}
			pending = append(pending, spans...)
			if len(pending) >= p.batch {
				flush()
			}
		case <-t.C:
			flush()
		}
	}
}

// send POSTs one batch to the collector. Failures are counted and
// logged at most once per interval's batch — the traces are gone; the
// pusher never retries (the collector is an observability sink, not a
// durability contract).
func (p *Pusher) send(spans []SpanData) {
	body, err := json.Marshal(map[string][]SpanData{"spans": spans})
	if err != nil {
		p.sendErr.Inc()
		return
	}
	req, err := http.NewRequest(http.MethodPost, p.url, bytes.NewReader(body))
	if err != nil {
		p.sendErr.Inc()
		return
	}
	req.Header.Set("Content-Type", "application/json")
	ctx, cancel := context.WithTimeout(context.Background(), p.timeout)
	defer cancel()
	resp, err := p.client.Do(req.WithContext(ctx))
	if err != nil {
		p.sendErr.Inc()
		p.log.Warn("trace push failed", slog.String("collector", p.url), slog.String("err", err.Error()))
		return
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	if resp.StatusCode >= 300 {
		p.sendErr.Inc()
		p.log.Warn("trace push rejected", slog.String("collector", p.url), slog.String("status", fmt.Sprint(resp.StatusCode)))
		return
	}
	p.sendOK.Inc()
}
