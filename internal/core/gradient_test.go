package core

import (
	"math"
	"testing"

	"hostprof/internal/stats"
)

// fixedModel builds a 3-host, 4-dim model with known weights:
// vocab order (all counts equal, lexicographic): a=0, b=1, c=2.
func fixedModel() *Model {
	m := &Model{vocab: BuildVocab([][]string{{"a", "b", "c"}}, 1), dim: 4}
	m.in = []float64{
		0.10, -0.20, 0.30, 0.05, // u_a
		-0.15, 0.25, 0.10, -0.30, // u_b
		0.20, 0.10, -0.10, 0.15, // u_c
	}
	m.out = []float64{
		0.05, 0.15, -0.20, 0.10, // v_a
		-0.10, 0.05, 0.25, -0.15, // v_b
		0.30, -0.05, 0.10, 0.20, // v_c
	}
	return m
}

// sgnsLoss computes the negative-sampling loss of Equation (2) for one
// (centre, context) pair with the given negative target.
func sgnsLoss(m *Model, centre, ctx, neg int) float64 {
	u := m.in[centre*4 : centre*4+4]
	vp := m.out[ctx*4 : ctx*4+4]
	vn := m.out[neg*4 : neg*4+4]
	return -math.Log(stats.Sigmoid(stats.Dot(u, vp))) -
		math.Log(stats.Sigmoid(-stats.Dot(u, vn)))
}

// newFixedTrainer wires a trainer whose negative sampler always draws
// host c (index 2) and whose window shrink is deterministic (Window=1).
func newFixedTrainer(m *Model) *trainer {
	return &trainer{
		m:     m,
		cfg:   TrainConfig{Window: 1, Negative: 1, Subsample: -1},
		rng:   stats.NewRNG(1),
		noise: stats.NewWeighted(stats.NewRNG(2), []float64{0, 0, 1}),
		neu1e: make([]float64, 4),
	}
}

func TestTrainStepDecreasesLoss(t *testing.T) {
	m := fixedModel()
	tr := newFixedTrainer(m)
	seq := []int32{0, 1} // a then b
	before := sgnsLoss(m, 0, 1, 2) + sgnsLoss(m, 1, 0, 2)
	for i := 0; i < 20; i++ {
		tr.trainSequence(seq, 0.1)
	}
	after := sgnsLoss(m, 0, 1, 2) + sgnsLoss(m, 1, 0, 2)
	if after >= before {
		t.Fatalf("loss did not decrease: %.4f -> %.4f", before, after)
	}
	// The positive pair's similarity must have grown and the negative
	// pair's shrunk.
	if stats.Dot(m.in[0:4], m.out[4:8]) <= 0 {
		t.Fatal("positive score not pushed up")
	}
}

// TestTrainStepMatchesHandComputedUpdate replays a single trainSequence
// call with pencil-and-paper SGD arithmetic derived directly from
// Equation (2): for each (centre, context) pair,
//
//	g_pos = (1 − σ(u·v_ctx))·lr      v_ctx += g_pos·u;  acc += g_pos·v_ctx(old)
//	g_neg = (0 − σ(u·v_neg))·lr      v_neg += g_neg·u;  acc += g_neg·v_neg(old)
//	u += acc
//
// and verifies every weight of the model to 1e-12.
func TestTrainStepMatchesHandComputedUpdate(t *testing.T) {
	const lr = 0.1
	m := fixedModel()
	tr := newFixedTrainer(m)

	// Independent copy for manual computation.
	u := [][]float64{
		append([]float64(nil), m.in[0:4]...),
		append([]float64(nil), m.in[4:8]...),
		append([]float64(nil), m.in[8:12]...),
	}
	v := [][]float64{
		append([]float64(nil), m.out[0:4]...),
		append([]float64(nil), m.out[4:8]...),
		append([]float64(nil), m.out[8:12]...),
	}
	dot := func(a, b []float64) float64 {
		var s float64
		for i := range a {
			s += a[i] * b[i]
		}
		return s
	}
	step := func(centre, ctx, neg int) {
		acc := make([]float64, 4)
		// Positive pair.
		g := (1 - stats.Sigmoid(dot(u[centre], v[ctx]))) * lr
		for i := 0; i < 4; i++ {
			acc[i] += g * v[ctx][i]
			v[ctx][i] += g * u[centre][i]
		}
		// Negative pair (sampler always yields neg).
		g = (0 - stats.Sigmoid(dot(u[centre], v[neg]))) * lr
		for i := 0; i < 4; i++ {
			acc[i] += g * v[neg][i]
			v[neg][i] += g * u[centre][i]
		}
		for i := 0; i < 4; i++ {
			u[centre][i] += acc[i]
		}
	}
	// trainSequence([a b]) visits centre=a (ctx=b) then centre=b (ctx=a).
	step(0, 1, 2)
	step(1, 0, 2)

	tr.trainSequence([]int32{0, 1}, lr)

	for host := 0; host < 3; host++ {
		for d := 0; d < 4; d++ {
			if got, want := m.in[host*4+d], u[host][d]; math.Abs(got-want) > 1e-12 {
				t.Fatalf("in[%d][%d] = %v, want %v", host, d, got, want)
			}
			if got, want := m.out[host*4+d], v[host][d]; math.Abs(got-want) > 1e-12 {
				t.Fatalf("out[%d][%d] = %v, want %v", host, d, got, want)
			}
		}
	}
}

// TestTrainStepSkipsNegativeEqualToContext checks the guard that discards
// a negative draw colliding with the positive context.
func TestTrainStepSkipsNegativeEqualToContext(t *testing.T) {
	m := fixedModel()
	tr := newFixedTrainer(m)
	// Noise distribution concentrated on the context host b (=1).
	tr.noise = stats.NewWeighted(stats.NewRNG(3), []float64{0, 1, 0})
	before := append([]float64(nil), m.out[8:12]...) // v_c untouched
	tr.trainSequence([]int32{0, 1}, 0.1)
	for i, x := range m.out[8:12] {
		if x != before[i] {
			t.Fatal("v_c changed although never sampled")
		}
	}
	// Positive update still applied.
	if stats.Dot(m.in[0:4], m.out[4:8]) <= stats.Dot(fixedModel().in[0:4], fixedModel().out[4:8]) {
		t.Fatal("positive pair not trained")
	}
}

// TestNumericalGradient verifies the analytic gradient of the SGNS loss
// against central finite differences at the initial weights.
func TestNumericalGradient(t *testing.T) {
	m := fixedModel()
	const eps = 1e-6
	// Analytic gradient of L(centre=0, ctx=1, neg=2) wrt u_0:
	// ∂L/∂u = -(1-σ(u·v1))·v1 + σ(u·v2)·v2.
	u := m.in[0:4]
	v1 := m.out[4:8]
	v2 := m.out[8:12]
	for d := 0; d < 4; d++ {
		analytic := -(1-stats.Sigmoid(stats.Dot(u, v1)))*v1[d] +
			stats.Sigmoid(stats.Dot(u, v2))*v2[d]
		orig := u[d]
		u[d] = orig + eps
		lp := sgnsLoss(m, 0, 1, 2)
		u[d] = orig - eps
		lm := sgnsLoss(m, 0, 1, 2)
		u[d] = orig
		numeric := (lp - lm) / (2 * eps)
		if math.Abs(analytic-numeric) > 1e-6 {
			t.Fatalf("dim %d: analytic %v vs numeric %v", d, analytic, numeric)
		}
	}
}
