package ontology

import (
	"testing"
	"testing/quick"
)

func TestTaxonomyShapeMatchesPaper(t *testing.T) {
	tax := NewTaxonomy()
	if got := tax.NumTops(); got != NumTopLevel {
		t.Fatalf("top-level topics = %d, want %d", got, NumTopLevel)
	}
	if got := tax.NumCategories(); got != NumCategories {
		t.Fatalf("second-level categories = %d, want %d", got, NumCategories)
	}
}

func TestTaxonomyDeterministic(t *testing.T) {
	a := NewTaxonomy()
	b := NewTaxonomy()
	for i := 0; i < a.NumCategories(); i++ {
		if a.Category(i) != b.Category(i) {
			t.Fatalf("category %d differs between constructions", i)
		}
	}
}

func TestTaxonomyIDsAreDense(t *testing.T) {
	tax := NewTaxonomy()
	for i := 0; i < tax.NumCategories(); i++ {
		c := tax.Category(i)
		if c.ID != i {
			t.Fatalf("category at %d has ID %d", i, c.ID)
		}
		if c.Top < 0 || c.Top >= tax.NumTops() {
			t.Fatalf("category %d has invalid top %d", i, c.Top)
		}
	}
}

func TestTaxonomyNamesUnique(t *testing.T) {
	tax := NewTaxonomy()
	seen := make(map[string]bool)
	for i := 0; i < tax.NumCategories(); i++ {
		n := tax.Category(i).Name
		if seen[n] {
			t.Fatalf("duplicate category name %q", n)
		}
		seen[n] = true
		id, ok := tax.IDByName(n)
		if !ok || id != i {
			t.Fatalf("IDByName(%q) = %d,%v", n, id, ok)
		}
	}
}

func TestSubsOfPartition(t *testing.T) {
	tax := NewTaxonomy()
	total := 0
	for ti := 0; ti < tax.NumTops(); ti++ {
		for _, id := range tax.SubsOf(ti) {
			if tax.TopOf(id) != ti {
				t.Fatalf("category %d listed under wrong top %d", id, ti)
			}
			total++
		}
	}
	if total != tax.NumCategories() {
		t.Fatalf("SubsOf covers %d categories, want %d", total, tax.NumCategories())
	}
}

func TestTelecomHasTwoSubcategories(t *testing.T) {
	// Paper Section 5.4: "category Telecom only has two subcategories".
	tax := NewTaxonomy()
	for ti, name := range tax.TopNames() {
		if name == "Internet & Telecom" {
			if got := len(tax.SubsOf(ti)); got != 2 {
				t.Fatalf("Internet & Telecom has %d subcategories, want 2", got)
			}
			return
		}
	}
	t.Fatal("Internet & Telecom topic missing")
}

func TestVectorClampAndValid(t *testing.T) {
	v := Vector{-0.5, 0.5, 1.5}
	if v.Valid() {
		t.Fatal("out-of-range vector reported valid")
	}
	v.Clamp()
	if v[0] != 0 || v[1] != 0.5 || v[2] != 1 {
		t.Fatalf("clamp result %v", v)
	}
	if !v.Valid() {
		t.Fatal("clamped vector reported invalid")
	}
}

func TestVectorClone(t *testing.T) {
	v := Vector{0.1, 0.2}
	c := v.Clone()
	c[0] = 0.9
	if v[0] != 0.1 {
		t.Fatal("clone aliases original")
	}
}

func TestVectorTopLevel(t *testing.T) {
	tax := NewTaxonomy()
	v := tax.NewVector()
	subs := tax.SubsOf(3)
	v[subs[0]] = 0.4
	v[subs[1]] = 0.9
	tl := v.TopLevel(tax)
	if tl[3] != 0.9 {
		t.Fatalf("top-level fold = %v, want 0.9", tl[3])
	}
	for ti, x := range tl {
		if ti != 3 && x != 0 {
			t.Fatalf("unexpected weight %v at top %d", x, ti)
		}
	}
}

func TestVectorSupport(t *testing.T) {
	v := Vector{0, 0.3, 0, 0.7}
	s := v.Support(0.1)
	if len(s) != 2 || s[0] != 1 || s[1] != 3 {
		t.Fatalf("support = %v", s)
	}
}

func TestVectorTopLevelBoundedQuick(t *testing.T) {
	tax := NewTaxonomy()
	f := func(seed [16]uint8) bool {
		v := tax.NewVector()
		for i, b := range seed {
			v[(i*17)%len(v)] = float64(b) / 255
		}
		tl := v.TopLevel(tax)
		if len(tl) != tax.NumTops() {
			return false
		}
		for _, x := range tl {
			if x < 0 || x > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
