package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hostprof/internal/ads"
	"hostprof/internal/core"
	"hostprof/internal/fault"
	"hostprof/internal/obs"
	"hostprof/internal/store"
	"hostprof/internal/synth"
)

// newResilienceFixture builds the standard fixture world but lets the
// test mutate the backend config (timeouts, admission limits, injected
// store) before construction.
func newResilienceFixture(t *testing.T, mutate func(*Config)) *backendFixture {
	t.Helper()
	u := synth.NewUniverse(synth.UniverseConfig{Sites: 100, Trackers: 15, Seed: 3})
	ont := synth.BuildOntology(u, synth.OntologyConfig{Coverage: 0.2, Seed: 5})
	db := ads.BuildFromOntology(ont, ads.BuildConfig{Seed: 7})
	cfg := Config{
		Ontology: ont,
		AdDB:     db,
		Train:    core.TrainConfig{Dim: 16, Epochs: 4, MinCount: 1, Workers: 1, Seed: 11, Subsample: -1},
		Profile:  core.ProfilerConfig{N: 30, Agg: core.AggIDF},
	}
	if mutate != nil {
		mutate(&cfg)
	}
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(b.Handler())
	t.Cleanup(srv.Close)
	pop := synth.NewPopulation(u, synth.PopulationConfig{Users: 8, Days: 2, Seed: 13})
	return &backendFixture{b: b, srv: srv, u: u, pop: pop}
}

// seedVisits puts a small trainable corpus straight into the store.
func seedVisits(t *testing.T, fx *backendFixture) {
	t.Helper()
	tr := fx.pop.Browse()
	for _, v := range tr.Visits() {
		if err := fx.b.store.Append(v); err != nil {
			t.Fatal(err)
		}
	}
}

// postJSON sends raw bytes to a /v1 endpoint and returns the response.
func postJSON(t *testing.T, url string, body []byte) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// TestHandlerFailureModes drives every rejection path of the /v1
// endpoints and asserts both the status code and the structured JSON
// error envelope.
func TestHandlerFailureModes(t *testing.T) {
	fx := newResilienceFixture(t, nil) // untrained, empty store

	huge, _ := json.Marshal(ReportRequest{
		User: 1, Time: 1, Hosts: []string{strings.Repeat("a", maxBodyBytes+10)},
	})
	manyHosts, _ := json.Marshal(ReportRequest{
		User: 1, Time: 1, Hosts: make([]string, 1025),
	})

	cases := []struct {
		name     string
		path     string
		body     string
		wantCode int
		wantErr  string // substring of the JSON error field
	}{
		{"report oversized body", "/v1/report", string(huge),
			http.StatusRequestEntityTooLarge, "exceeds"},
		{"report unknown field", "/v1/report", `{"user":1,"time":1,"hosts":["a.com"],"extra":true}`,
			http.StatusBadRequest, "unknown field"},
		{"report malformed json", "/v1/report", `{"user":`,
			http.StatusBadRequest, "bad request"},
		{"report empty hosts", "/v1/report", `{"user":1,"time":1,"hosts":[]}`,
			http.StatusBadRequest, "empty host list"},
		{"report too many hosts", "/v1/report", string(manyHosts),
			http.StatusBadRequest, "limit 1024"},
		{"report negative user", "/v1/report", `{"user":-1,"time":1,"hosts":["a.com"]}`,
			http.StatusBadRequest, "user must be non-negative"},
		{"report negative time", "/v1/report", `{"user":1,"time":-5,"hosts":["a.com"]}`,
			http.StatusBadRequest, "time must be non-negative"},
		{"report before training", "/v1/report", `{"user":1,"time":1,"hosts":["a.com"]}`,
			http.StatusServiceUnavailable, "not trained"},
		{"feedback bad source", "/v1/feedback", `{"user":1,"ad_id":1,"source":"mallory"}`,
			http.StatusBadRequest, "source must be"},
		{"feedback negative user", "/v1/feedback", `{"user":-1,"ad_id":1,"source":"original"}`,
			http.StatusBadRequest, "user must be non-negative"},
		{"feedback negative ad", "/v1/feedback", `{"user":1,"ad_id":-2,"source":"original"}`,
			http.StatusBadRequest, "ad_id must be non-negative"},
		{"retrain empty corpus", "/v1/retrain", `{}`,
			http.StatusConflict, "empty"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := postJSON(t, fx.srv.URL+tc.path, []byte(tc.body))
			if resp.StatusCode != tc.wantCode {
				t.Fatalf("status = %d, want %d", resp.StatusCode, tc.wantCode)
			}
			var eb errorBody
			if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
				t.Fatalf("error body is not JSON: %v", err)
			}
			if !strings.Contains(eb.Error, tc.wantErr) {
				t.Fatalf("error = %q, want substring %q", eb.Error, tc.wantErr)
			}
		})
	}

	// Bad feedback must not have touched the campaign tallies.
	if cs := fx.b.CampaignStats(); len(cs.Impressions) != 0 {
		t.Fatalf("rejected feedback mutated campaign stats: %+v", cs)
	}
}

// TestClientParsesJSONErrors: the Extension surfaces the backend's
// structured error message, not the raw JSON envelope.
func TestClientParsesJSONErrors(t *testing.T) {
	fx := newResilienceFixture(t, nil)
	ext := &Extension{BaseURL: fx.srv.URL, User: 1}
	_, err := ext.Report(1, []string{"a.com"})
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("want APIError, got %v", err)
	}
	if apiErr.Status != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", apiErr.Status)
	}
	if strings.Contains(apiErr.Message, `{"error"`) || !strings.Contains(apiErr.Message, "not trained") {
		t.Fatalf("message %q not parsed from the JSON envelope", apiErr.Message)
	}
}

// TestRetrainSingleflight is the coordinator acceptance test: two
// concurrent /v1/retrain requests must result in exactly one training
// run, with both callers succeeding.
func TestRetrainSingleflight(t *testing.T) {
	t.Cleanup(fault.Reset)
	var starts atomic.Int64
	fx := newResilienceFixture(t, func(cfg *Config) {
		cfg.Train.Progress = func(e core.EpochStats) {
			if e.Epoch == 0 {
				starts.Add(1)
			}
		}
	})
	seedVisits(t, fx)

	// Slow each epoch down so the second request provably lands while
	// the first one's run is still going.
	fault.Set(fault.TrainEpoch, fault.Latency(100*time.Millisecond))

	ext := &Extension{BaseURL: fx.srv.URL, User: 0}
	errs := make(chan error, 2)
	go func() { errs <- ext.Retrain() }()
	// Wait for the first run to actually start before firing the joiner.
	waitForCond(t, "first retrain to start", func() bool { return fault.Hits(fault.TrainEpoch) >= 1 })
	go func() { errs <- ext.Retrain() }()
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("retrain %d: %v", i, err)
		}
	}
	if n := starts.Load(); n != 1 {
		t.Fatalf("training ran %d times for two concurrent requests, want 1", n)
	}
	if !fx.b.Ready() {
		t.Fatal("backend not ready after coalesced retrain")
	}
}

// TestRetrainAsync: ?async=1 answers 202 immediately, the run proceeds
// in the background, and hostprof_retrain_state tracks it.
func TestRetrainAsync(t *testing.T) {
	t.Cleanup(fault.Reset)
	reg := obs.NewRegistry()
	fx := newResilienceFixture(t, func(cfg *Config) { cfg.Metrics = reg })
	seedVisits(t, fx)
	fault.Set(fault.TrainEpoch, fault.Latency(50*time.Millisecond))

	ext := &Extension{BaseURL: fx.srv.URL, User: 0}
	if err := ext.RetrainAsync(); err != nil {
		t.Fatalf("async retrain: %v", err)
	}
	if !fx.b.RetrainRunning() {
		t.Fatal("no retrain in flight right after 202")
	}
	if got := gaugeVal(t, reg, "hostprof_retrain_state"); got != 1 {
		t.Fatalf("hostprof_retrain_state = %v mid-run, want 1", got)
	}
	// A second async request while running also answers 202 (it joins).
	if err := ext.RetrainAsync(); err != nil {
		t.Fatalf("second async retrain: %v", err)
	}
	waitForCond(t, "async retrain to finish", func() bool { return fx.b.Ready() })
	waitForCond(t, "retrain state to clear", func() bool { return !fx.b.RetrainRunning() })
	if got := gaugeVal(t, reg, "hostprof_retrain_state"); got != 0 {
		t.Fatalf("hostprof_retrain_state = %v after run, want 0", got)
	}
}

// TestRetrainContextCancelled: a cancelled context aborts promptly with
// context.Canceled and leaves the backend untrained.
func TestRetrainContextCancelled(t *testing.T) {
	fx := newResilienceFixture(t, nil)
	seedVisits(t, fx)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := fx.b.RetrainContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("retrain with cancelled ctx = %v, want context.Canceled", err)
	}
	if fx.b.Ready() {
		t.Fatal("cancelled retrain still installed a model")
	}
}

// TestRetrainTimeout: Config.RetrainTimeout turns a slow run into a 504.
func TestRetrainTimeout(t *testing.T) {
	t.Cleanup(fault.Reset)
	fx := newResilienceFixture(t, func(cfg *Config) {
		cfg.RetrainTimeout = 30 * time.Millisecond
	})
	seedVisits(t, fx)
	fault.Set(fault.TrainEpoch, fault.Latency(200*time.Millisecond))

	resp := postJSON(t, fx.srv.URL+"/v1/retrain", []byte(`{}`))
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504", resp.StatusCode)
	}
	if err := fx.b.RetrainContext(context.Background()); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("direct retrain = %v, want context.DeadlineExceeded", err)
	}
}

// TestReportShedding: with MaxInflightReports=1 and a slow handler, the
// overflow request is shed with 429 + Retry-After and counted.
func TestReportShedding(t *testing.T) {
	t.Cleanup(fault.Reset)
	reg := obs.NewRegistry()
	fx := newResilienceFixture(t, func(cfg *Config) {
		cfg.Metrics = reg
		cfg.MaxInflightReports = 1
	})
	release := make(chan struct{})
	entered := make(chan struct{}, 8)
	fault.Set(fault.HTTPPoint("report"), func() error {
		entered <- struct{}{}
		<-release
		return nil
	})

	body := []byte(`{"user":1,"time":1,"hosts":["a.com"]}`)
	slow := make(chan int, 1)
	go func() {
		resp, err := http.Post(fx.srv.URL+"/v1/report", "application/json", bytes.NewReader(body))
		if err != nil {
			slow <- -1
			return
		}
		resp.Body.Close()
		slow <- resp.StatusCode
	}()
	<-entered // the slow request holds the only slot

	resp := postJSON(t, fx.srv.URL+"/v1/report", body)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow status = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 missing Retry-After")
	}
	var eb errorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil || eb.Error == "" {
		t.Fatalf("shed response body not a JSON error: %v (%q)", err, eb.Error)
	}
	if got := counterVal(t, reg, "hostprof_http_shed_total"); got != 1 {
		t.Fatalf("hostprof_http_shed_total = %v, want 1", got)
	}

	// The client sees the Retry-After hint on its typed error.
	ext := &Extension{BaseURL: fx.srv.URL, User: 1}
	_, err := ext.Report(1, []string{"a.com"})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusTooManyRequests || apiErr.RetryAfter == "" {
		t.Fatalf("client error = %v, want 429 with RetryAfter", err)
	}

	close(release)
	if code := <-slow; code != http.StatusServiceUnavailable {
		// Untrained backend: the admitted request ends in 503, proving it
		// was served, not shed.
		t.Fatalf("admitted request finished with %d, want 503", code)
	}
}

// TestHandlerPanicRecovery: a panicking handler is contained into a 500
// JSON error, counted, and the server keeps serving.
func TestHandlerPanicRecovery(t *testing.T) {
	t.Cleanup(fault.Reset)
	reg := obs.NewRegistry()
	fx := newResilienceFixture(t, func(cfg *Config) { cfg.Metrics = reg })
	fault.SetN(fault.HTTPPoint("feedback"), 1, fault.Panic("wired to explode"))

	resp := postJSON(t, fx.srv.URL+"/v1/feedback", []byte(`{"user":1,"ad_id":1,"source":"original"}`))
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", resp.StatusCode)
	}
	var eb errorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil || !strings.Contains(eb.Error, "internal error") {
		t.Fatalf("panic response body: %v (%q)", err, eb.Error)
	}
	if got := counterVal(t, reg, "hostprof_http_panics_total"); got != 1 {
		t.Fatalf("hostprof_http_panics_total = %v, want 1", got)
	}
	// The hook was one-shot: the next request goes through normally.
	resp = postJSON(t, fx.srv.URL+"/v1/feedback", []byte(`{"user":1,"ad_id":1,"source":"original"}`))
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("post-panic status = %d, want 204", resp.StatusCode)
	}
}

// TestServerDegradedStoreKeepsServing is the server-level acceptance
// test for graceful degradation: with the WAL failing underneath, the
// backend keeps answering /v1/report with 200 while
// hostprof_store_degraded reads 1, and re-attaches once the fault
// clears.
func TestServerDegradedStoreKeepsServing(t *testing.T) {
	t.Cleanup(fault.Reset)
	reg := obs.NewRegistry()
	st, err := store.Open(store.Config{
		Dir: t.TempDir(), Fsync: store.FsyncNever, Metrics: reg,
		ReprobeMin: 5 * time.Millisecond, ReprobeMax: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Stop the reprobe goroutine before TempDir cleanup: a probe landing
	// mid-RemoveAll recreates WAL files and fails the cleanup.
	t.Cleanup(func() { st.Close() })
	fx := newResilienceFixture(t, func(cfg *Config) {
		cfg.Metrics = reg
		cfg.Store = st
	})
	seedVisits(t, fx)
	if err := fx.b.Retrain(); err != nil {
		t.Fatalf("retrain: %v", err)
	}

	site := fx.u.Hosts[fx.u.Sites[0].Host].Name
	support := fx.u.Hosts[fx.u.Sites[0].Support[0]].Name
	ext := &Extension{BaseURL: fx.srv.URL, User: 0}

	fault.Set(fault.StoreWALAppend, fault.Error(errors.New("disk pulled")))
	for i := 0; i < 5; i++ {
		if _, err := ext.Report(int64(10_000_000+i), []string{site, support}); err != nil {
			t.Fatalf("report %d during WAL outage: %v", i, err)
		}
	}
	if !st.Degraded() {
		t.Fatal("store not degraded after WAL faults")
	}
	if got := gaugeVal(t, reg, "hostprof_store_degraded"); got != 1 {
		t.Fatalf("hostprof_store_degraded = %v, want 1", got)
	}

	fault.Reset()
	waitForCond(t, "WAL re-attach", func() bool { return !st.Degraded() })
	if _, err := ext.Report(10_000_100, []string{site, support}); err != nil {
		t.Fatalf("report after re-attach: %v", err)
	}
}

// TestReportIngestsAllHostsOnError: the report path must not drop the
// suffix of a host list when one append fails mid-loop.
func TestReportIngestsAllHostsOnError(t *testing.T) {
	t.Cleanup(fault.Reset)
	st, err := store.Open(store.Config{
		Dir: t.TempDir(), Fsync: store.FsyncNever,
		ReprobeMin: time.Hour, ReprobeMax: time.Hour, // keep it degraded
	})
	if err != nil {
		t.Fatal(err)
	}
	fx := newResilienceFixture(t, func(cfg *Config) { cfg.Store = st })

	// First append fails (degrades the store), the rest go memory-only;
	// every host must still land.
	fault.SetN(fault.StoreWALAppend, 1, fault.Error(errors.New("transient")))
	hosts := []string{"a.example", "b.example", "c.example", "d.example"}
	// Untrained backend: 503 after ingestion is the expected answer.
	resp := postJSON(t, fx.srv.URL+"/v1/report",
		[]byte(`{"user":3,"time":9,"hosts":["a.example","b.example","c.example","d.example"]}`))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503 (not trained)", resp.StatusCode)
	}
	got := make(map[string]bool)
	for _, v := range st.SnapshotTrace().Visits() {
		got[v.Host] = true
	}
	for _, h := range hosts {
		if !got[h] {
			t.Fatalf("host %s dropped by the failing report (stored: %v)", h, got)
		}
	}
}

// TestConcurrentReportsAndRetrain hammers the full surface at once: the
// coordinator, admission gate and sharded store must hold up under
// concurrent reports, feedback and retrains (run with -race).
func TestConcurrentReportsAndRetrain(t *testing.T) {
	fx := newResilienceFixture(t, func(cfg *Config) {
		cfg.MaxInflightReports = 4
	})
	seedVisits(t, fx)
	if err := fx.b.Retrain(); err != nil {
		t.Fatal(err)
	}
	site := fx.u.Hosts[fx.u.Sites[0].Host].Name

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ext := &Extension{BaseURL: fx.srv.URL, User: w}
			for i := 0; i < 20; i++ {
				_, err := ext.Report(int64(20_000_000+i), []string{site})
				var apiErr *APIError
				if err != nil && (!errors.As(err, &apiErr) || apiErr.Status != http.StatusTooManyRequests) {
					t.Errorf("worker %d report %d: %v", w, i, err)
					return
				}
				if err := ext.Feedback(1, "original", i%3 == 0); err != nil {
					var fbErr *APIError
					if !errors.As(err, &fbErr) || fbErr.Status != http.StatusTooManyRequests {
						t.Errorf("worker %d feedback %d: %v", w, i, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 3; i++ {
			if err := fx.b.Retrain(); err != nil {
				t.Errorf("concurrent retrain %d: %v", i, err)
				return
			}
		}
	}()
	wg.Wait()
}

// waitForCond polls cond for up to 5s.
func waitForCond(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func gaugeVal(t *testing.T, reg *obs.Registry, name string) float64 {
	t.Helper()
	for _, m := range reg.Snapshot() {
		if m.Name == name {
			return m.Value
		}
	}
	t.Fatalf("metric %s not found", name)
	return 0
}

func counterVal(t *testing.T, reg *obs.Registry, name string) float64 {
	return gaugeVal(t, reg, name)
}
