package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"hostprof/internal/ads"
	"hostprof/internal/core"
	"hostprof/internal/obs"
	"hostprof/internal/obs/prof"
	"hostprof/internal/obs/tracer"
	"hostprof/internal/ontology"
	"hostprof/internal/server"
	"hostprof/internal/store"
)

// cmdServe runs the profiling/ad back-end over artefacts produced by
// `hostprof gen` (ontology + blocklist); the ad inventory is built from
// the ontology's labelled hosts, as the paper built its database from
// ads collected on labelled landing pages.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8420", "listen address")
	ontPath := fs.String("ontology", "", "ontology labels JSONL (required)")
	blPath := fs.String("blocklist", "", "optional hosts-format blocklist")
	dim := fs.Int("dim", 64, "embedding dimensionality")
	epochs := fs.Int("epochs", 5, "training epochs per retrain")
	n := fs.Int("n", 40, "profiler neighbourhood size N")
	indexWorkers := fs.Int("index-workers", 0, "goroutines per similarity-index query (0 = GOMAXPROCS)")
	ann := fs.Bool("ann", false, "answer neighbourhood queries with an HNSW graph (sublinear in vocabulary; rebuilt on retrain; falls back to the exact scan when the graph cannot meet recall)")
	annEf := fs.Int("ann-ef", 0, "ANN search breadth ef: larger is more accurate and slower (0 = default 128; only with -ann)")
	annM := fs.Int("ann-m", 0, "ANN graph degree M: neighbours kept per node per layer (0 = default 16; only with -ann)")
	profileCache := fs.Int("profile-cache", 4096, "session-profile LRU entries, invalidated on retrain (0 disables)")
	adsSeed := fs.Uint64("ads-seed", 1, "ad inventory seed")
	withPprof := fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	dataDir := fs.String("data-dir", "", "durable store directory (WAL + snapshots); empty keeps visits in memory only")
	fsync := fs.String("fsync", "interval", "WAL fsync policy: always, interval or never")
	snapEvery := fs.Duration("snapshot-interval", 10*time.Minute, "periodic snapshot cadence with -data-dir (0 disables the timer)")
	retrainTimeout := fs.Duration("retrain-timeout", 0, "abort a retrain past this deadline (0 = unbounded)")
	maxInflight := fs.Int("max-inflight-reports", 1024, "concurrent /v1/report requests before shedding with 429 (0 = unlimited)")
	maxHosts := fs.Int("max-hosts-per-report", 1024, "hostnames accepted per report before rejecting with 400")
	httpTimeout := fs.Duration("http-timeout", time.Minute, "HTTP read/write timeout (idle timeout is 4x this)")
	traceSample := fs.Float64("trace-sample", 1, "request-trace head-sampling rate in [0,1]; errored traces are always kept; 0 disables tracing")
	traceBuffer := fs.Int("trace-buffer", 256, "completed traces retained for /debug/traces")
	tracePush := fs.String("trace-push", "", "gateway base URL to push completed traces to (e.g. http://127.0.0.1:8410), assembling whole-cluster traces at the gateway's /debug/traces; empty disables")
	slowReq := fs.Duration("slow-request", time.Second, "log one structured warning per request slower than this, capture a goroutine+mutex profile tagged with its trace ID (negative disables)")
	profInterval := fs.Duration("prof-interval", time.Minute, "continuous-profiling cadence: each cycle captures cpu/heap/mutex/block/goroutine into the /debug/prof/ ring (0 keeps only slow-request trigger captures)")
	mutexFrac := fs.Int("mutex-profile-fraction", 5, "sample 1/n of mutex contention events (runtime.SetMutexProfileFraction; 0 disables)")
	blockRate := fs.Int("block-profile-rate", 10000, "sample one blocking event per n ns blocked (runtime.SetBlockProfileRate; 0 disables)")
	sloReport := fs.Duration("slo-report", 250*time.Millisecond, "latency SLO target for /v1/report: 99%% of windowed requests under this, burn rate on hostprof_slo_* (0 disables)")
	sloProfile := fs.Duration("slo-profile", 500*time.Millisecond, "latency SLO target for /v1/profile/batch (0 disables)")
	logf := addLogFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := logf.setup(); err != nil {
		return err
	}
	if *ontPath == "" {
		return fmt.Errorf("-ontology is required")
	}
	fsyncPolicy, err := store.ParseFsync(*fsync)
	if err != nil {
		return err
	}
	// Cross-process trace completion: with -trace-push, every kept
	// trace's spans are queued to the gateway's POST /debug/traces
	// collector (batched, bounded, drop-on-backpressure), so one
	// Perfetto export at the gateway shows a report crossing the wire.
	var pusher *tracer.Pusher
	if *tracePush != "" {
		url := strings.TrimSuffix(strings.TrimSpace(*tracePush), "/")
		if !strings.Contains(url, "://") {
			url = "http://" + url
		}
		pusher = tracer.NewPusher(tracer.PushConfig{
			URL:     url + "/debug/traces",
			Metrics: obs.Default,
		})
		defer pusher.Close()
	}
	trcCfg := tracer.Config{
		Service:      "hostprof-serve",
		SampleRate:   *traceSample,
		BufferTraces: *traceBuffer,
		Metrics:      obs.Default,
	}
	if pusher != nil {
		trcCfg.Sink = pusher.Offer
	}
	trc := tracer.New(trcCfg)

	// The continuous profiler is always on: it owns the mutex/block
	// sampling rates and the /debug/prof/ capture ring, and backs the
	// slow-request trigger captures even when the background cadence is
	// disabled with -prof-interval 0.
	mf, br := *mutexFrac, *blockRate
	if mf <= 0 {
		mf = -1
	}
	if br <= 0 {
		br = -1
	}
	interval := *profInterval
	if interval <= 0 {
		interval = -1
	}
	profiler := prof.New(prof.Config{
		Interval:      interval,
		MutexFraction: mf,
		BlockRate:     br,
		Metrics:       obs.Default,
	})
	defer profiler.Stop()

	sloTargets := make(map[string]time.Duration)
	if *sloReport > 0 {
		sloTargets["report"] = *sloReport
	}
	if *sloProfile > 0 {
		sloTargets["profile_batch"] = *sloProfile
	}

	tax := ontology.NewTaxonomy()
	of, err := os.Open(*ontPath)
	if err != nil {
		return err
	}
	ont, err := ontology.ReadJSONL(tax, of)
	of.Close()
	if err != nil {
		return err
	}

	var bl *ontology.Blocklist
	if *blPath != "" {
		bf, err := os.Open(*blPath)
		if err != nil {
			return err
		}
		bl = ontology.NewBlocklist()
		if _, err := bl.ParseHostsFile(bf); err != nil {
			bf.Close()
			return err
		}
		bf.Close()
	}

	db := ads.BuildFromOntology(ont, ads.BuildConfig{Seed: *adsSeed})
	backend, err := server.New(server.Config{
		Ontology:  ont,
		AdDB:      db,
		Blocklist: bl,
		Train:     core.TrainConfig{Dim: *dim, Epochs: *epochs},
		Profile: core.ProfilerConfig{
			N: *n, Agg: core.AggIDF, IndexWorkers: *indexWorkers,
			ANN: *ann, ANNEf: *annEf, ANNM: *annM,
		},
		ProfileCache:  *profileCache,
		Metrics:       obs.Default,
		DataDir:       *dataDir,
		Fsync:         fsyncPolicy,
		SnapshotEvery: *snapEvery,

		RetrainTimeout:     *retrainTimeout,
		MaxInflightReports: *maxInflight,
		MaxHostsPerReport:  *maxHosts,
		Tracer:             trc,
		SlowRequest:        *slowReq,
		Profiler:           profiler,
		SLOTargets:         sloTargets,
	})
	if err != nil {
		return err
	}

	handler := backend.Handler()
	if *withPprof {
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		// Named runtime profiles, mounted explicitly so the on-demand
		// heap/mutex/block/goroutine views work however the outer mux
		// routes; sampling rates come from -mutex-profile-fraction /
		// -block-profile-rate (applied above, with or without -pprof).
		for _, name := range []string{"heap", "allocs", "mutex", "block", "goroutine", "threadcreate"} {
			mux.Handle("/debug/pprof/"+name, pprof.Handler(name))
		}
		handler = mux
	}

	slog.Info("backend listening",
		slog.String("addr", "http://"+*addr),
		slog.Int("labelled_hosts", ont.Len()),
		slog.Int("ads", db.Len()),
		slog.Float64("trace_sample", *traceSample))
	slog.Info("endpoints: POST /v1/report /v1/profile/batch /v1/feedback /v1/retrain[?async=1]; GET/PUT /v1/model; GET /v1/stats /metrics /varz /healthz /readyz /debug/traces /debug/statusz /debug/prof/")
	if *withPprof {
		slog.Info("profiling: GET /debug/pprof/ (incl. heap/allocs/mutex/block/goroutine)")
	}

	// Serve until SIGTERM/SIGINT, then drain in-flight requests and shut
	// the store down cleanly: flush the WAL and snapshot, so the next
	// start recovers instantly instead of replaying the whole log.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	// Slow-client protection: a stalled reader or writer cannot pin a
	// connection (and, on /v1/report, an admission slot) forever.
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadTimeout:       *httpTimeout,
		ReadHeaderTimeout: *httpTimeout,
		WriteTimeout:      *httpTimeout,
		IdleTimeout:       4 * *httpTimeout,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.ListenAndServe() }()
	select {
	case err := <-serveErr:
		backend.Close()
		return err
	case <-ctx.Done():
		slog.Info("shutting down: draining requests, flushing store")
		shCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := srv.Shutdown(shCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			backend.Close()
			return err
		}
		return backend.Close()
	}
}
