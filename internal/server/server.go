// Package server implements the experiment back-end of paper Section 5:
// an HTTP service that receives hostname reports from instrumented
// clients (the paper's Chrome extension), maintains the visit store,
// retrains the embedding model on demand (the paper retrained daily),
// profiles the reporting user's last T minutes and answers with a list
// of relevant ads; a second endpoint collects impression/click feedback
// so campaign CTR can be read off the back-end.
//
// The wire format is JSON over HTTP — the paper's extension spoke to its
// back-end over TLS the same way.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"hostprof/internal/ads"
	"hostprof/internal/core"
	"hostprof/internal/obs"
	"hostprof/internal/ontology"
	"hostprof/internal/store"
	"hostprof/internal/trace"
)

// Config assembles a Backend.
type Config struct {
	// Ontology supplies labels (required).
	Ontology *ontology.Ontology
	// AdDB is the replacement-ad inventory (required).
	AdDB *ads.DB
	// Blocklist filters tracker hostnames from reports (optional).
	Blocklist *ontology.Blocklist
	// Train configures (re)training.
	Train core.TrainConfig
	// Profile configures session profiling.
	Profile core.ProfilerConfig
	// SessionWindow is T in seconds (default 1200, the paper's 20 min).
	SessionWindow int64
	// AdsPerReport is how many ads each report answer carries
	// (default 20, paper Section 5.3).
	AdsPerReport int
	// Metrics, when non-nil, is the registry the backend exports into
	// (hostprof_* names; see internal/obs). Nil creates a private
	// registry, retrievable via Backend.Metrics, so /metrics and /varz
	// always have content.
	Metrics *obs.Registry
	// DataDir, when non-empty, makes the visit store durable: every
	// report is written to a WAL under this directory, snapshots
	// (visits + model) are taken after each retrain, and startup
	// recovers both — a killed backend restarts with its store and a
	// warm model.
	DataDir string
	// Fsync selects the WAL flush policy (default store.FsyncInterval).
	Fsync store.FsyncPolicy
	// SnapshotEvery, when positive, snapshots on a timer in addition to
	// the after-retrain and shutdown snapshots.
	SnapshotEvery time.Duration
}

// Backend is the profiling/ad server. All methods are safe for
// concurrent use.
type Backend struct {
	cfg Config
	reg *obs.Registry
	met backendMetrics

	store *store.Store

	mu       sync.Mutex
	profiler *core.Profiler
	selector *ads.Selector

	// campaign statistics
	impressions map[string]int64 // by source: "eavesdropper" / "original"
	clicks      map[string]int64
}

// backendMetrics caches the backend's registry handles.
type backendMetrics struct {
	reports        *obs.Counter
	reportHosts    *obs.Counter
	reportDrops    *obs.Counter
	retrains       *obs.Counter
	retrainErrors  *obs.Counter
	retrainSeconds *obs.Histogram
	epochs         *obs.Counter
	epochSeconds   *obs.Histogram
	epochLoss      *obs.Gauge
	profileSeconds *obs.Histogram
}

var trainBuckets = obs.ExpBuckets(0.01, 4, 10)

func newBackendMetrics(reg *obs.Registry) backendMetrics {
	reg.Describe("hostprof_reports_total", "extension hostname reports accepted")
	reg.Describe("hostprof_retrain_seconds", "wall time of full model retrains")
	reg.Describe("hostprof_profile_seconds", "per-report session profiling latency")
	reg.Describe("hostprof_campaign_impressions", "ad impressions recorded, by ad source")
	reg.Describe("hostprof_campaign_clicks", "ad clicks recorded, by ad source")
	return backendMetrics{
		reports:        reg.Counter("hostprof_reports_total"),
		reportHosts:    reg.Counter("hostprof_report_hosts_total"),
		reportDrops:    reg.Counter("hostprof_report_blocklist_drops_total"),
		retrains:       reg.Counter("hostprof_retrain_total"),
		retrainErrors:  reg.Counter("hostprof_retrain_errors_total"),
		retrainSeconds: reg.Histogram("hostprof_retrain_seconds", trainBuckets),
		epochs:         reg.Counter("hostprof_train_epochs_total"),
		epochSeconds:   reg.Histogram("hostprof_train_epoch_seconds", trainBuckets),
		epochLoss:      reg.Gauge("hostprof_train_epoch_loss"),
		profileSeconds: reg.Histogram("hostprof_profile_seconds", nil),
	}
}

// New validates cfg and returns an empty backend. Ads are indexed
// immediately; the model does not exist until the first Retrain.
func New(cfg Config) (*Backend, error) {
	if cfg.Ontology == nil {
		return nil, errors.New("server: config requires an ontology")
	}
	if cfg.AdDB == nil {
		return nil, errors.New("server: config requires an ad inventory")
	}
	if cfg.SessionWindow <= 0 {
		cfg.SessionWindow = 20 * 60
	}
	if cfg.AdsPerReport <= 0 {
		cfg.AdsPerReport = 20
	}
	sel, err := ads.NewSelector(cfg.AdDB, cfg.Ontology, 20)
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	st, err := store.Open(store.Config{
		Dir:           cfg.DataDir,
		Fsync:         cfg.Fsync,
		SnapshotEvery: cfg.SnapshotEvery,
		Metrics:       reg,
	})
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	b := &Backend{
		cfg:         cfg,
		reg:         reg,
		met:         newBackendMetrics(reg),
		store:       st,
		selector:    sel,
		impressions: make(map[string]int64),
		clicks:      make(map[string]int64),
	}
	// A snapshot-restored model means the backend is ready to serve ads
	// immediately, without waiting for the first retrain.
	if m := st.Model(); m != nil {
		b.profiler = core.NewProfiler(m, cfg.Ontology, cfg.Profile)
	}
	reg.GaugeFunc("hostprof_model_trained", func() float64 {
		if b.Ready() {
			return 1
		}
		return 0
	})
	return b, nil
}

// Store returns the backend's visit store, for durability operations and
// recovery stats.
func (b *Backend) Store() *store.Store { return b.store }

// Close flushes the store, takes a final snapshot (so the next start
// recovers instantly) and releases the WAL. It is the graceful-shutdown
// half of the durability contract; a SIGKILLed backend relies on WAL
// replay instead.
func (b *Backend) Close() error {
	snapErr := b.store.Snapshot()
	if err := b.store.Close(); err != nil {
		return err
	}
	return snapErr
}

// Metrics returns the registry the backend exports into — the
// configured one, or the private registry created when none was given.
func (b *Backend) Metrics() *obs.Registry { return b.reg }

// Ready reports whether the model has been trained, i.e. whether
// /v1/report can serve ads; it backs the /healthz readiness probe.
func (b *Backend) Ready() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.profiler != nil
}

// Retrain fits a fresh embedding on every per-user-day sequence stored so
// far and swaps in a new profiler (the paper's daily retraining step).
// On success the model is handed to the store and a snapshot is taken,
// so a crash after a retrain recovers warm.
func (b *Backend) Retrain() error {
	corpus := b.store.AllSequences()
	tc := b.cfg.Train
	user := tc.Progress
	tc.Progress = func(e core.EpochStats) {
		b.met.epochs.Inc()
		b.met.epochSeconds.Observe(e.Duration.Seconds())
		b.met.epochLoss.Set(e.Loss)
		if user != nil {
			user(e)
		}
	}
	// The duration histogram observes failed retrains too, so slow
	// failures remain visible in hostprof_retrain_seconds.
	sp := obs.StartSpan(b.met.retrainSeconds)
	model, err := core.Train(corpus, tc)
	sp.End()
	if err != nil {
		b.met.retrainErrors.Inc()
		return fmt.Errorf("server: retrain: %w", err)
	}
	b.met.retrains.Inc()
	prof := core.NewProfiler(model, b.cfg.Ontology, b.cfg.Profile)
	b.mu.Lock()
	b.profiler = prof
	b.mu.Unlock()
	b.store.SetModel(model)
	// Snapshot failures must not undo a successful retrain; they are
	// visible in hostprof_store_snapshot_errors_total.
	b.store.Snapshot()
	return nil
}

// report ingests one extension report and returns the replacement-ad
// list for the user's current profile. Visits go straight into the
// sharded store — concurrent reports from different users contend only
// on the WAL, never on a backend-wide lock.
func (b *Backend) report(userID int, now int64, hosts []string) ([]ads.Ad, error) {
	b.met.reports.Inc()
	for i, h := range hosts {
		if b.cfg.Blocklist != nil && b.cfg.Blocklist.Contains(h) {
			b.met.reportDrops.Inc()
			continue
		}
		// Hosts within one report share the report timestamp; order is
		// preserved because store sessions sort stably by time.
		if err := b.store.Append(trace.Visit{User: userID, Time: now, Host: hosts[i]}); err != nil {
			return nil, fmt.Errorf("server: storing report: %w", err)
		}
		b.met.reportHosts.Inc()
	}
	session := b.store.Session(userID, now, b.cfg.SessionWindow)
	b.mu.Lock()
	prof := b.profiler
	b.mu.Unlock()

	if prof == nil {
		return nil, errNotTrained
	}
	sp := obs.StartSpan(b.met.profileSeconds)
	profile, err := prof.ProfileSession(session)
	if err != nil {
		return nil, err
	}
	sp.End()
	b.mu.Lock()
	list := b.selector.Select(profile, b.cfg.AdsPerReport)
	b.mu.Unlock()
	return list, nil
}

var errNotTrained = errors.New("server: model not trained yet")

// observeImpression records one displayed ad, mirroring the campaign
// maps into per-source gauges.
func (b *Backend) observeImpression(source string, clicked bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.impressions[source]++
	b.reg.Gauge("hostprof_campaign_impressions", obs.L("source", source)).
		Set(float64(b.impressions[source]))
	if clicked {
		b.clicks[source]++
		b.reg.Gauge("hostprof_campaign_clicks", obs.L("source", source)).
			Set(float64(b.clicks[source]))
	}
}

// CampaignStats is a typed snapshot of the ad-campaign counters, keyed
// by ad source ("eavesdropper" / "original"), so tests and operators
// can read CTR without scraping HTTP.
type CampaignStats struct {
	Impressions map[string]int64   `json:"impressions"`
	Clicks      map[string]int64   `json:"clicks"`
	CTRPercent  map[string]float64 `json:"ctr_percent"`
}

// CampaignStats snapshots the impression/click tallies.
func (b *Backend) CampaignStats() CampaignStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.campaignStatsLocked()
}

func (b *Backend) campaignStatsLocked() CampaignStats {
	cs := CampaignStats{
		Impressions: make(map[string]int64, len(b.impressions)),
		Clicks:      make(map[string]int64, len(b.clicks)),
		CTRPercent:  make(map[string]float64, len(b.impressions)),
	}
	for k, v := range b.impressions {
		cs.Impressions[k] = v
		cs.Clicks[k] = b.clicks[k]
		if v > 0 {
			cs.CTRPercent[k] = 100 * float64(b.clicks[k]) / float64(v)
		}
	}
	return cs
}

// Stats is the back-end's aggregate view.
type Stats struct {
	Visits      int                `json:"visits"`
	Users       int                `json:"users"`
	Trained     bool               `json:"trained"`
	VocabSize   int                `json:"vocab_size"`
	Impressions map[string]int64   `json:"impressions"`
	Clicks      map[string]int64   `json:"clicks"`
	CTRPercent  map[string]float64 `json:"ctr_percent"`
}

// CurrentStats snapshots the backend state.
func (b *Backend) CurrentStats() Stats {
	visits, users := b.store.Len(), len(b.store.Users())
	b.mu.Lock()
	defer b.mu.Unlock()
	cs := b.campaignStatsLocked()
	st := Stats{
		Visits:      visits,
		Users:       users,
		Trained:     b.profiler != nil,
		Impressions: cs.Impressions,
		Clicks:      cs.Clicks,
		CTRPercent:  cs.CTRPercent,
	}
	if b.profiler != nil {
		st.VocabSize = b.profiler.Model().Vocab().Len()
	}
	return st
}

// --- HTTP layer ---------------------------------------------------------

// ReportRequest is the extension's periodic hostname report.
type ReportRequest struct {
	User  int      `json:"user"`
	Time  int64    `json:"time"`
	Hosts []string `json:"hosts"`
}

// WireAd is one replacement creative in a report response.
type WireAd struct {
	ID      int    `json:"id"`
	Landing string `json:"landing"`
	W       int    `json:"w"`
	H       int    `json:"h"`
}

// ReportResponse carries the replacement-ad list.
type ReportResponse struct {
	Ads []WireAd `json:"ads"`
}

// FeedbackRequest records an impression or click.
type FeedbackRequest struct {
	User    int    `json:"user"`
	AdID    int    `json:"ad_id"`
	Source  string `json:"source"` // "eavesdropper" or "original"
	Clicked bool   `json:"clicked"`
}

// Handler returns the backend's HTTP API:
//
//	POST /v1/report     ReportRequest  → ReportResponse
//	POST /v1/feedback   FeedbackRequest → 204
//	POST /v1/retrain    (empty)        → 204
//	GET  /v1/stats      → Stats
//	GET  /metrics       → Prometheus text exposition
//	GET  /varz          → JSON metrics snapshot
//	GET  /healthz       → readiness (200 once the model is trained)
//
// Every /v1 endpoint is instrumented with a request counter
// (hostprof_http_requests_total{endpoint,code}) and a latency histogram
// (hostprof_http_request_seconds{endpoint}).
func (b *Backend) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/report", b.instrument("report", b.handleReport))
	mux.HandleFunc("POST /v1/feedback", b.instrument("feedback", b.handleFeedback))
	mux.HandleFunc("POST /v1/retrain", b.instrument("retrain", b.handleRetrain))
	mux.HandleFunc("GET /v1/stats", b.instrument("stats", b.handleStats))
	mux.Handle("GET /metrics", b.reg.MetricsHandler())
	mux.Handle("GET /varz", b.reg.VarzHandler())
	mux.Handle("GET /healthz", obs.HealthzHandler(b.Ready))
	return mux
}

// statusRecorder captures the response code written by a handler.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (w *statusRecorder) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps an endpoint handler with a per-endpoint latency
// histogram and a per-(endpoint, code) request counter.
func (b *Backend) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	lat := b.reg.Histogram("hostprof_http_request_seconds", nil, obs.L("endpoint", endpoint))
	return func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		sp := obs.StartSpan(lat)
		h(rec, r)
		sp.End()
		b.reg.Counter("hostprof_http_requests_total",
			obs.L("endpoint", endpoint),
			obs.L("code", strconv.Itoa(rec.code))).Inc()
	}
}

const maxBodyBytes = 1 << 20

func decodeJSON(w http.ResponseWriter, r *http.Request, dst any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		http.Error(w, fmt.Sprintf("bad request: %v", err), http.StatusBadRequest)
		return false
	}
	return true
}

func (b *Backend) handleReport(w http.ResponseWriter, r *http.Request) {
	var req ReportRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if len(req.Hosts) == 0 {
		http.Error(w, "empty host list", http.StatusBadRequest)
		return
	}
	list, err := b.report(req.User, req.Time, req.Hosts)
	switch {
	case errors.Is(err, errNotTrained):
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	case errors.Is(err, core.ErrNoLabels), errors.Is(err, core.ErrEmptySession):
		// Profiling undefined for this session: legitimate, no ads.
		list = nil
	case err != nil:
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	resp := ReportResponse{Ads: make([]WireAd, 0, len(list))}
	for _, ad := range list {
		resp.Ads = append(resp.Ads, WireAd{
			ID: ad.ID, Landing: ad.LandingHost, W: ad.Size.W, H: ad.Size.H,
		})
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		// Response already committed; nothing safe to do.
		return
	}
}

func (b *Backend) handleFeedback(w http.ResponseWriter, r *http.Request) {
	var req FeedbackRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if req.Source != "eavesdropper" && req.Source != "original" {
		http.Error(w, "source must be eavesdropper or original", http.StatusBadRequest)
		return
	}
	b.observeImpression(req.Source, req.Clicked)
	w.WriteHeader(http.StatusNoContent)
}

func (b *Backend) handleRetrain(w http.ResponseWriter, r *http.Request) {
	if err := b.Retrain(); err != nil {
		if errors.Is(err, core.ErrEmptyCorpus) {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (b *Backend) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(b.CurrentStats()); err != nil {
		return
	}
}
