package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"hostprof/internal/ads"
	"hostprof/internal/core"
	"hostprof/internal/obs"
	"hostprof/internal/synth"
)

// backendFixture spins a backend over a small labelled world plus an
// httptest server.
type backendFixture struct {
	b   *Backend
	srv *httptest.Server
	u   *synth.Universe
	pop *synth.Population
}

func newBackendFixture(t *testing.T) *backendFixture {
	t.Helper()
	return newBackendFixtureWith(t, nil)
}

func newBackendFixtureWith(t *testing.T, reg *obs.Registry) *backendFixture {
	t.Helper()
	u := synth.NewUniverse(synth.UniverseConfig{Sites: 100, Trackers: 15, Seed: 3})
	ont := synth.BuildOntology(u, synth.OntologyConfig{Coverage: 0.2, Seed: 5})
	db := ads.BuildFromOntology(ont, ads.BuildConfig{Seed: 7})
	bl := synth.BuildBlocklist(u, 1, 9)
	b, err := New(Config{
		Ontology:  ont,
		AdDB:      db,
		Blocklist: bl,
		Train:     core.TrainConfig{Dim: 16, Epochs: 4, MinCount: 2, Workers: 1, Seed: 11, Subsample: -1},
		Profile:   core.ProfilerConfig{N: 30, Agg: core.AggIDF},
		Metrics:   reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(b.Handler())
	t.Cleanup(srv.Close)
	pop := synth.NewPopulation(u, synth.PopulationConfig{Users: 8, Days: 2, Seed: 13})
	return &backendFixture{b: b, srv: srv, u: u, pop: pop}
}

// feedVisits replays the population's browsing into the backend via the
// HTTP API, batching per (user, 10-minute bucket) like the extension.
func (fx *backendFixture) feedVisits(t *testing.T) {
	t.Helper()
	tr := fx.pop.Browse()
	per := tr.PerUserVisits()
	for uid, visits := range per {
		ext := &Extension{BaseURL: fx.srv.URL, User: uid}
		var batch []string
		var batchTime int64 = -1
		flush := func() {
			if len(batch) == 0 {
				return
			}
			if _, err := ext.Report(batchTime, batch); err != nil {
				var apiErr *APIError
				// 503 before first training is expected.
				if !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable {
					t.Fatalf("report: %v", err)
				}
			}
			batch = batch[:0]
		}
		for _, v := range visits {
			if batchTime >= 0 && v.Time-batchTime > 600 {
				flush()
				batchTime = -1
			}
			if batchTime < 0 {
				batchTime = v.Time
			}
			batch = append(batch, v.Host)
		}
		flush()
	}
}

func TestBackendEndToEndOverHTTP(t *testing.T) {
	fx := newBackendFixture(t)
	ext := &Extension{BaseURL: fx.srv.URL, User: 0}

	// Before any data, retrain must fail cleanly.
	if err := ext.Retrain(); err == nil {
		t.Fatal("retrain on empty store should fail")
	}

	fx.feedVisits(t)
	st, err := ext.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Visits == 0 || st.Trained {
		t.Fatalf("pre-train stats: %+v", st)
	}

	if err := ext.Retrain(); err != nil {
		t.Fatalf("retrain: %v", err)
	}
	st, err = ext.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if !st.Trained || st.VocabSize == 0 {
		t.Fatalf("post-train stats: %+v", st)
	}

	// A fresh report now yields ads.
	site := fx.u.Hosts[fx.u.Sites[0].Host].Name
	support := fx.u.Hosts[fx.u.Sites[0].Support[0]].Name
	adsList, err := ext.Report(10_000_000, []string{site, support})
	if err != nil {
		t.Fatalf("report: %v", err)
	}
	if len(adsList) == 0 {
		t.Fatal("no ads returned for a profileable session")
	}
	for _, ad := range adsList {
		if ad.Landing == "" || ad.W == 0 {
			t.Fatalf("malformed wire ad %+v", ad)
		}
	}

	// Feedback round trip.
	if err := ext.Feedback(adsList[0].ID, "eavesdropper", true); err != nil {
		t.Fatal(err)
	}
	if err := ext.Feedback(adsList[0].ID, "original", false); err != nil {
		t.Fatal(err)
	}
	st, _ = ext.Stats()
	if st.Impressions["eavesdropper"] != 1 || st.Clicks["eavesdropper"] != 1 {
		t.Fatalf("feedback not counted: %+v", st)
	}
	if st.CTRPercent["eavesdropper"] != 100 {
		t.Fatalf("ctr = %v", st.CTRPercent)
	}
}

func TestBackendRejectsBadRequests(t *testing.T) {
	fx := newBackendFixture(t)
	post := func(path, body string) int {
		resp, err := http.Post(fx.srv.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post("/v1/report", "{not json"); code != http.StatusBadRequest {
		t.Fatalf("bad json → %d", code)
	}
	if code := post("/v1/report", `{"user":1,"time":5,"hosts":[]}`); code != http.StatusBadRequest {
		t.Fatalf("empty hosts → %d", code)
	}
	if code := post("/v1/report", `{"user":1,"time":5,"hosts":["h"],"extra":1}`); code != http.StatusBadRequest {
		t.Fatalf("unknown field → %d", code)
	}
	if code := post("/v1/feedback", `{"user":1,"ad_id":1,"source":"martian","clicked":true}`); code != http.StatusBadRequest {
		t.Fatalf("bad source → %d", code)
	}
	// Wrong method.
	resp, err := http.Get(fx.srv.URL + "/v1/report")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET report → %d", resp.StatusCode)
	}
}

func TestBackendBlocklistFiltersReports(t *testing.T) {
	fx := newBackendFixture(t)
	ext := &Extension{BaseURL: fx.srv.URL, User: 4}
	tracker := fx.u.Hosts[fx.u.TrackerIDs[0]].Name
	_, err := ext.Report(100, []string{tracker, tracker})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable {
		t.Fatalf("expected 503 before training, got %v", err)
	}
	st, _ := ext.Stats()
	if st.Visits != 0 {
		t.Fatalf("tracker visits stored: %+v", st)
	}
}

func TestBackendConcurrentReports(t *testing.T) {
	fx := newBackendFixture(t)
	fx.feedVisits(t)
	if err := (&Extension{BaseURL: fx.srv.URL}).Retrain(); err != nil {
		t.Fatal(err)
	}
	site := fx.u.Hosts[fx.u.Sites[1].Host].Name
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ext := &Extension{BaseURL: fx.srv.URL, User: g}
			for i := 0; i < 10; i++ {
				if _, err := ext.Report(int64(20_000_000+i*700), []string{site}); err != nil {
					errs <- err
					return
				}
				if err := ext.Feedback(1, "original", false); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st, _ := (&Extension{BaseURL: fx.srv.URL}).Stats()
	if st.Impressions["original"] != 80 {
		t.Fatalf("impressions = %d, want 80", st.Impressions["original"])
	}
}

func TestBackendConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	u := synth.NewUniverse(synth.UniverseConfig{Sites: 30, Seed: 1})
	ont := synth.BuildOntology(u, synth.OntologyConfig{Coverage: 0.3, Seed: 2})
	if _, err := New(Config{Ontology: ont}); err == nil {
		t.Fatal("missing ad DB accepted")
	}
	// Inventory with no labelled landing pages fails selector setup.
	empty := ads.NewDB(ont.Taxonomy())
	if _, err := New(Config{Ontology: ont, AdDB: empty}); err == nil {
		t.Fatal("empty inventory accepted")
	}
}

func TestWireAdJSONShape(t *testing.T) {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(WireAd{ID: 3, Landing: "x.example", W: 300, H: 250}); err != nil {
		t.Fatal(err)
	}
	want := `{"id":3,"landing":"x.example","w":300,"h":250}`
	if strings.TrimSpace(buf.String()) != want {
		t.Fatalf("wire shape %q", buf.String())
	}
}
