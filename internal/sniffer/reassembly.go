package sniffer

// streamAssembler reconstructs the in-order prefix of one direction of a
// TCP stream from possibly reordered, duplicated or overlapping segments.
// It tracks the client's initial sequence number (from the SYN) and holds
// out-of-order segments until the gap before them fills.
//
// It is deliberately scoped to what the observer needs — the first few
// kilobytes of the client stream where the ClientHello lives — rather
// than a general reassembler: total buffering is bounded, and the
// assembler is abandoned once the prefix has been consumed.
type streamAssembler struct {
	// isn is the initial sequence number; the first payload byte is
	// isn+1 (the SYN consumes one sequence number).
	isn     uint32
	haveISN bool
	// assembled is the contiguous in-order prefix.
	assembled []byte
	// pending holds out-of-order segments keyed by their relative
	// stream offset.
	pending map[uint32][]byte
	// pendingBytes bounds memory for reordered data.
	pendingBytes int
}

// assemblerLimit bounds the total buffered bytes (in-order plus pending).
const assemblerLimit = maxFlowBuffer

// newStreamAssembler returns an empty assembler.
func newStreamAssembler() *streamAssembler {
	return &streamAssembler{pending: make(map[uint32][]byte)}
}

// SYN records the initial sequence number.
func (a *streamAssembler) SYN(seq uint32) {
	if !a.haveISN {
		a.isn = seq
		a.haveISN = true
	}
}

// Add ingests one segment with absolute sequence number seq. It returns
// false when the assembler has given up (buffer limit exceeded or no ISN
// seen for a mid-stream flow).
func (a *streamAssembler) Add(seq uint32, payload []byte) bool {
	if len(payload) == 0 {
		return true
	}
	if !a.haveISN {
		// Mid-stream capture without the SYN: treat this first
		// segment as the stream start (best effort, as a real
		// observer would).
		a.isn = seq - 1
		a.haveISN = true
	}
	// Relative offset of the first payload byte within the stream.
	rel := seq - (a.isn + 1)
	if rel >= assemblerLimit {
		return false
	}
	cur := uint32(len(a.assembled))
	switch {
	case rel <= cur && rel+uint32(len(payload)) > cur:
		// Extends the contiguous prefix (possibly overlapping it).
		a.assembled = append(a.assembled, payload[cur-rel:]...)
		a.drainPending()
	case rel < cur:
		// Full retransmission of known data: ignore.
	default:
		// Gap: park it.
		if a.pendingBytes+len(payload) > assemblerLimit {
			return false
		}
		if _, dup := a.pending[rel]; !dup {
			a.pending[rel] = append([]byte(nil), payload...)
			a.pendingBytes += len(payload)
		}
	}
	return len(a.assembled) <= assemblerLimit
}

// drainPending repeatedly splices parked segments that now touch the
// contiguous prefix.
func (a *streamAssembler) drainPending() {
	for {
		cur := uint32(len(a.assembled))
		found := false
		for rel, seg := range a.pending {
			if rel <= cur && rel+uint32(len(seg)) > cur {
				a.assembled = append(a.assembled, seg[cur-rel:]...)
				delete(a.pending, rel)
				a.pendingBytes -= len(seg)
				found = true
				break
			}
			if rel+uint32(len(seg)) <= cur {
				// Fully covered by the prefix now.
				delete(a.pending, rel)
				a.pendingBytes -= len(seg)
				found = true
				break
			}
		}
		if !found {
			return
		}
	}
}

// Bytes returns the contiguous in-order prefix assembled so far.
func (a *streamAssembler) Bytes() []byte { return a.assembled }

// Release drops all buffered state.
func (a *streamAssembler) Release() {
	a.assembled = nil
	a.pending = nil
	a.pendingBytes = 0
}
