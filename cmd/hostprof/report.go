package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"hostprof/internal/obs/tracer"
	"hostprof/internal/server"
	"hostprof/internal/trace"
)

// cmdReport plays one round of the paper's extension against a running
// `hostprof serve`: it posts a hostname report, receives the
// replacement-ad answer (the server profiles the session en route) and,
// because the client is traced, the whole exchange — client span, HTTP
// handler, store and profiling stages, and any retrain it triggered —
// shares one W3C trace ID. With -push-trace the client's half of the
// trace is posted to the server's /debug/traces collector, so the
// distributed trace can be read in one place; -print-trace dumps it to
// stdout instead.
func cmdReport(args []string) error {
	fs := flag.NewFlagSet("report", flag.ExitOnError)
	addr := fs.String("addr", "http://127.0.0.1:8420", "backend base URL")
	user := fs.Int("user", 0, "reporting user ID")
	hostsArg := fs.String("hosts", "", "comma-separated hostnames to report")
	tracePath := fs.String("trace", "", "draw the report from this trace JSONL instead of -hosts (the user's last -window seconds)")
	window := fs.Int64("window", 1200, "session window in seconds with -trace")
	at := fs.Int64("time", -1, "report timestamp in trace seconds (-1 = user's last visit with -trace, else wall clock)")
	retrain := fs.Bool("retrain", false, "trigger a synchronous retrain before reporting")
	seed := fs.Bool("seed", false, "with -trace: upload the whole trace as per-user daily reports first, so a fresh backend has a corpus to train on")
	pushTrace := fs.Bool("push-trace", true, "push client spans to the server's /debug/traces so the distributed trace is complete there")
	printTrace := fs.Bool("print-trace", false, "print the client-side trace JSON to stdout")
	logf := addLogFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := logf.setup(); err != nil {
		return err
	}

	now := *at
	var hosts []string
	var tr *trace.Trace
	switch {
	case *hostsArg != "":
		for _, h := range strings.Split(*hostsArg, ",") {
			if h = strings.TrimSpace(h); h != "" {
				hosts = append(hosts, h)
			}
		}
		if now < 0 {
			now = time.Now().Unix()
		}
	case *tracePath != "":
		tf, err := os.Open(*tracePath)
		if err != nil {
			return err
		}
		tr, err = trace.ReadJSONL(tf)
		tf.Close()
		if err != nil {
			return err
		}
		if now < 0 {
			for _, v := range tr.Visits() {
				if v.User == *user {
					now = v.Time
				}
			}
			if now < 0 {
				return fmt.Errorf("user %d has no visits in %s", *user, *tracePath)
			}
		}
		hosts = tr.Session(*user, now, *window)
		if len(hosts) == 0 {
			return fmt.Errorf("user %d has no visits in the %ds window ending at t=%d", *user, *window, now)
		}
	default:
		return fmt.Errorf("one of -hosts or -trace is required")
	}

	if *seed {
		if tr == nil {
			return fmt.Errorf("-seed requires -trace")
		}
		if err := seedBackend(*addr, tr); err != nil {
			return err
		}
	}

	// The CLI is always fully traced: one root span covers the whole
	// invocation, and every backend call beneath it propagates the
	// trace ID over traceparent.
	trc := tracer.New(tracer.Config{Service: "hostprof-cli", SampleRate: 1, BufferTraces: 8})
	ctx, root := trc.StartSpan(context.Background(), "cli.report")
	ext := &server.Extension{BaseURL: *addr, User: *user, Tracer: trc}

	if *retrain {
		slog.InfoContext(ctx, "requesting retrain", slog.String("addr", *addr))
		if err := ext.RetrainContext(ctx); err != nil {
			root.Error(err)
			root.End()
			return err
		}
	}
	slog.InfoContext(ctx, "reporting session",
		slog.Int("user", *user), slog.Int("hosts", len(hosts)), slog.Int64("time", now))
	ads, err := ext.ReportContext(ctx, now, hosts)
	if err != nil {
		root.Error(err)
	}
	root.End()

	traceID := root.TraceIDString()
	if *pushTrace {
		var spans []tracer.SpanData
		for _, tj := range trc.Traces() {
			spans = append(spans, tj.Spans...)
		}
		if perr := ext.PushTrace(context.Background(), spans); perr != nil {
			slog.Warn("trace push failed", slog.String("error", perr.Error()))
		}
	}
	if *printTrace {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if jerr := enc.Encode(trc.Traces()); jerr != nil {
			return jerr
		}
	}
	if err != nil {
		return err
	}

	fmt.Printf("trace %s: %d ads for user %d\n", traceID, len(ads), *user)
	for _, ad := range ads {
		fmt.Printf("  ad %d  %dx%d  %s\n", ad.ID, ad.W, ad.H, ad.Landing)
	}
	fmt.Printf("inspect: %s/debug/traces?trace=%s\n", *addr, traceID)
	return nil
}

// seedBackend replays a trace into the backend as one report per user
// per day, so a fresh server has a corpus before the demo's retrain.
// These uploads are deliberately untraced setup noise, and a 503 from
// the still-untrained model is expected (the visits land regardless).
func seedBackend(addr string, tr *trace.Trace) error {
	type bucket struct {
		user int
		day  int64
	}
	hosts := map[bucket][]string{}
	last := map[bucket]int64{}
	for _, v := range tr.Visits() {
		b := bucket{v.User, v.Time / 86400}
		hosts[b] = append(hosts[b], v.Host)
		if v.Time > last[b] {
			last[b] = v.Time
		}
	}
	keys := make([]bucket, 0, len(hosts))
	for b := range hosts {
		keys = append(keys, b)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].user != keys[j].user {
			return keys[i].user < keys[j].user
		}
		return keys[i].day < keys[j].day
	})
	seeder := &server.Extension{BaseURL: addr}
	reports := 0
	for _, b := range keys {
		seeder.User = b.user
		if _, err := seeder.Report(last[b], hosts[b]); err != nil {
			var apiErr *server.APIError
			if errors.As(err, &apiErr) && apiErr.Status == http.StatusServiceUnavailable {
				reports++
				continue // model not trained yet: visits still ingested
			}
			return fmt.Errorf("seeding user %d day %d: %w", b.user, b.day, err)
		}
		reports++
	}
	slog.Info("seeded backend", slog.Int("reports", reports), slog.Int("visits", tr.Len()))
	return nil
}
