package sniffer

import (
	"bytes"
	"testing"
	"testing/quick"

	"hostprof/internal/pcap"
	"hostprof/internal/stats"
)

// A passive observer parses whatever the network throws at it; none of
// the parsers may panic on arbitrary bytes. Each property simply runs the
// parser and reports success — the panic, if any, fails the test.

func TestDecodePacketNeverPanics(t *testing.T) {
	var p Packet
	f := func(data []byte) bool {
		_ = DecodePacket(data, &p)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestParseSNINeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		_, _ = ParseSNI(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Mutated-but-plausible TLS records are the nastier case: correct outer
// framing with corrupted interiors.
func TestParseSNISurvivesMutations(t *testing.T) {
	rng := stats.NewRNG(1)
	rec := BuildClientHello("mutate.example", rng)
	for trial := 0; trial < 4000; trial++ {
		m := append([]byte(nil), rec...)
		// Flip 1-4 random bytes.
		for k := 0; k < 1+int(rng.Uint64()%4); k++ {
			m[rng.Intn(len(m))] ^= byte(rng.Uint64())
		}
		_, _ = ParseSNI(m) // must not panic
	}
}

func TestParseQUICInitialNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		_, _ = ParseQUICInitialSNI(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestParseQUICInitialSurvivesMutations(t *testing.T) {
	rng := stats.NewRNG(2)
	pkt, err := BuildQUICInitial("mutate.example", rng)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 1000; trial++ {
		m := append([]byte(nil), pkt...)
		for k := 0; k < 1+int(rng.Uint64()%4); k++ {
			m[rng.Intn(len(m))] ^= byte(rng.Uint64())
		}
		_, _ = ParseQUICInitialSNI(m)
	}
}

func TestParseDNSNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		_, _ = ParseDNSQueryName(data)
		_, _, _ = ParseDNSResponse(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestObserverNeverPanicsOnGarbage(t *testing.T) {
	obs := NewObserver(ObserverConfig{IPFallback: true})
	f := func(data []byte, ts int16) bool {
		_, _ = obs.ProcessPacket(data, int64(ts))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Truncations of valid frames exercise every length check.
func TestObserverSurvivesTruncatedFrames(t *testing.T) {
	rng := stats.NewRNG(3)
	hello := BuildClientHello("trunc.example", rng)
	frame := tcpFrame([4]byte{10, 0, 1, 1}, [4]byte{93, 0, 0, 1}, 50000, 443, 1, 2,
		TCPFlagACK|TCPFlagPSH, hello)
	ini, err := BuildQUICInitial("trunc.example", rng)
	if err != nil {
		t.Fatal(err)
	}
	uframe := udpFrame([4]byte{10, 0, 1, 1}, [4]byte{93, 0, 0, 1}, 50001, 443, ini)
	obs := NewObserver(ObserverConfig{})
	for _, full := range [][]byte{frame, uframe} {
		for cut := 0; cut <= len(full); cut++ {
			obs.ProcessPacket(full[:cut], 0)
		}
	}
}

func TestPcapReaderNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		r, err := pcap.NewReader(bytes.NewReader(data))
		if err != nil {
			return true
		}
		for i := 0; i < 100; i++ {
			if _, err := r.Next(); err != nil {
				break
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

// Truncations of a valid capture file.
func TestPcapReaderSurvivesTruncation(t *testing.T) {
	var buf bytes.Buffer
	w := pcap.NewWriter(&buf)
	for i := 0; i < 3; i++ {
		if err := w.WriteRecord(uint32(i), 0, []byte{1, 2, 3, 4, 5}); err != nil {
			t.Fatal(err)
		}
	}
	full := buf.Bytes()
	for cut := 0; cut <= len(full); cut++ {
		r, err := pcap.NewReader(bytes.NewReader(full[:cut]))
		if err != nil {
			continue
		}
		for {
			if _, err := r.Next(); err != nil {
				break
			}
		}
	}
}
