package ontology

import (
	"strings"
	"testing"
)

func TestOntologyAddLookup(t *testing.T) {
	tax := NewTaxonomy()
	o := New(tax)
	v := tax.NewVector()
	v[5] = 0.8
	o.Add("espn.com", v)
	got, ok := o.Lookup("espn.com")
	if !ok || got[5] != 0.8 {
		t.Fatalf("Lookup = %v,%v", got, ok)
	}
	if _, ok := o.Lookup("unknown.example"); ok {
		t.Fatal("unknown host reported labelled")
	}
	if !o.Covered("espn.com") || o.Covered("x.example") {
		t.Fatal("Covered wrong")
	}
}

func TestOntologyAddClamps(t *testing.T) {
	tax := NewTaxonomy()
	o := New(tax)
	v := tax.NewVector()
	v[0] = 4.2
	o.Add("h.example", v)
	got, _ := o.Lookup("h.example")
	if got[0] != 1 {
		t.Fatalf("Add did not clamp: %v", got[0])
	}
}

func TestOntologyCoverage(t *testing.T) {
	tax := NewTaxonomy()
	o := New(tax)
	o.Add("a.example", tax.NewVector())
	universe := []string{"a.example", "b.example", "c.example", "d.example"}
	if got := o.Coverage(universe); got != 0.25 {
		t.Fatalf("coverage = %v, want 0.25", got)
	}
	if got := o.Coverage(nil); got != 0 {
		t.Fatalf("empty-universe coverage = %v", got)
	}
}

func TestOntologyHostsSorted(t *testing.T) {
	tax := NewTaxonomy()
	o := New(tax)
	for _, h := range []string{"z.example", "a.example", "m.example"} {
		o.Add(h, tax.NewVector())
	}
	hs := o.Hosts()
	if len(hs) != 3 || hs[0] != "a.example" || hs[2] != "z.example" {
		t.Fatalf("Hosts = %v", hs)
	}
	if o.Len() != 3 {
		t.Fatalf("Len = %d", o.Len())
	}
}

func TestBlocklistBasic(t *testing.T) {
	b := NewBlocklist()
	b.Add("Ads.Example.COM")
	if !b.Contains("ads.example.com") || !b.Contains("ADS.EXAMPLE.COM") {
		t.Fatal("case-insensitive contains failed")
	}
	if b.Contains("example.com") {
		t.Fatal("false positive")
	}
	if b.Len() != 1 {
		t.Fatalf("Len = %d", b.Len())
	}
}

func TestBlocklistParseHostsFormat(t *testing.T) {
	src := `# AdAway default blocklist
127.0.0.1 localhost
127.0.0.1 ads.example.com
0.0.0.0 tracker.example.net pixel.example.net
# comment
doubleclick.example   # trailing comment

::1 ipv6host.example
`
	b := NewBlocklist()
	n, err := b.ParseHostsFile(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range []string{"ads.example.com", "tracker.example.net", "pixel.example.net", "doubleclick.example", "ipv6host.example"} {
		if !b.Contains(h) {
			t.Errorf("missing %q", h)
		}
	}
	if b.Contains("localhost") || b.Contains("127.0.0.1") {
		t.Fatal("localhost or IP leaked into blocklist")
	}
	if n != 5 {
		t.Fatalf("added = %d, want 5", n)
	}
}

func TestBlocklistParsePlainFormat(t *testing.T) {
	src := "a.ads.example\nb.ads.example\n"
	b := NewBlocklist()
	if _, err := b.ParseHostsFile(strings.NewReader(src)); err != nil {
		t.Fatal(err)
	}
	if !b.Contains("a.ads.example") || !b.Contains("b.ads.example") {
		t.Fatal("plain entries missing")
	}
}

func TestBlocklistMerge(t *testing.T) {
	a := NewBlocklist()
	a.Add("x.example")
	c := NewBlocklist()
	c.Add("y.example")
	a.Merge(c)
	if !a.Contains("x.example") || !a.Contains("y.example") {
		t.Fatal("merge lost entries")
	}
}

func TestBlocklistFilter(t *testing.T) {
	b := NewBlocklist()
	b.Add("tracker.example")
	in := []string{"site.example", "tracker.example", "cdn.example", "tracker.example"}
	kept, removed := b.Filter(in)
	if removed != 2 {
		t.Fatalf("removed = %d", removed)
	}
	if len(kept) != 2 || kept[0] != "site.example" || kept[1] != "cdn.example" {
		t.Fatalf("kept = %v", kept)
	}
}

func TestLooksLikeIP(t *testing.T) {
	cases := map[string]bool{
		"127.0.0.1":       true,
		"0.0.0.0":         true,
		"::1":             true,
		"fe80::1":         true,
		"example.com":     false,
		"1.example.com":   false,
		"123.45.67.89.10": false, // 4 dots
	}
	for s, want := range cases {
		if got := looksLikeIP(s); got != want {
			t.Errorf("looksLikeIP(%q) = %v, want %v", s, got, want)
		}
	}
}
