package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMean(t *testing.T) {
	cases := []struct {
		xs   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{1, 2, 3, 4}, 2.5},
		{[]float64{-1, 1}, 0},
	}
	for _, c := range cases {
		if got := Mean(c.xs); !almostEq(got, c.want, 1e-12) {
			t.Errorf("Mean(%v) = %v, want %v", c.xs, got, c.want)
		}
	}
}

func TestVarianceKnown(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	// population variance 4; sample variance 4*8/7.
	want := 32.0 / 7.0
	if got := Variance(xs); !almostEq(got, want, 1e-12) {
		t.Fatalf("Variance = %v, want %v", got, want)
	}
}

func TestVarianceDegenerate(t *testing.T) {
	if Variance(nil) != 0 || Variance([]float64{3}) != 0 {
		t.Fatal("variance of <2 samples should be 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	cases := []struct {
		p, want float64
	}{
		{0, 15}, {100, 50}, {50, 35}, {25, 20}, {75, 40},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almostEq(got, c.want, 1e-9) {
			t.Errorf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentileInterpolates(t *testing.T) {
	xs := []float64{1, 2}
	if got := Percentile(xs, 50); !almostEq(got, 1.5, 1e-12) {
		t.Fatalf("P50 of {1,2} = %v, want 1.5", got)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Percentile mutated its input")
	}
}

func TestCCDFBasic(t *testing.T) {
	pts := CCDF([]float64{1, 2, 2, 3})
	want := []CCDFPoint{{1, 1}, {2, 0.75}, {3, 0.25}}
	if len(pts) != len(want) {
		t.Fatalf("got %d points, want %d", len(pts), len(want))
	}
	for i, p := range pts {
		if p.X != want[i].X || !almostEq(p.Frac, want[i].Frac, 1e-12) {
			t.Errorf("point %d = %+v, want %+v", i, p, want[i])
		}
	}
}

func TestCCDFEmpty(t *testing.T) {
	if CCDF(nil) != nil {
		t.Fatal("CCDF(nil) should be nil")
	}
}

func TestCCDFMonotonic(t *testing.T) {
	r := NewRNG(123)
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = math.Floor(r.Float64() * 20)
	}
	pts := CCDF(xs)
	for i := 1; i < len(pts); i++ {
		if pts[i].X <= pts[i-1].X {
			t.Fatal("X not strictly increasing")
		}
		if pts[i].Frac >= pts[i-1].Frac {
			t.Fatal("Frac not strictly decreasing")
		}
	}
	if pts[0].Frac != 1 {
		t.Fatalf("first Frac = %v, want 1 (minimum is >= itself)", pts[0].Frac)
	}
}

func TestCCDFAt(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if got := CCDFAt(xs, 3); !almostEq(got, 0.5, 1e-12) {
		t.Fatalf("CCDFAt(3) = %v, want 0.5", got)
	}
	if got := CCDFAt(xs, 0); got != 1 {
		t.Fatalf("CCDFAt(0) = %v, want 1", got)
	}
	if got := CCDFAt(xs, 5); got != 0 {
		t.Fatalf("CCDFAt(5) = %v, want 0", got)
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0, 0.5, 1.5, 2.5, 9.9, -5, 15}
	bins := Histogram(xs, 10, 0, 10)
	if bins[0] != 3 { // 0, 0.5 and clamped -5
		t.Fatalf("bin 0 = %d, want 3", bins[0])
	}
	if bins[9] != 2 { // 9.9 and clamped 15
		t.Fatalf("bin 9 = %d, want 2", bins[9])
	}
	var total int
	for _, b := range bins {
		total += b
	}
	if total != len(xs) {
		t.Fatalf("histogram total %d != %d", total, len(xs))
	}
}

// Property: CCDF evaluated at each output X agrees with CCDFAt.
func TestCCDFConsistencyQuick(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v % 16)
		}
		for _, p := range CCDF(xs) {
			if !almostEq(p.Frac, CCDFAt(xs, p.X), 1e-12) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: percentile is monotone in p and bounded by min/max.
func TestPercentileMonotoneQuick(t *testing.T) {
	f := func(raw []uint8, p1, p2 uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		a := float64(p1 % 101)
		b := float64(p2 % 101)
		if a > b {
			a, b = b, a
		}
		pa := Percentile(xs, a)
		pb := Percentile(xs, b)
		s := append([]float64(nil), xs...)
		sort.Float64s(s)
		return pa <= pb+1e-9 && pa >= s[0]-1e-9 && pb <= s[len(s)-1]+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
