package main

import (
	"flag"
	"fmt"
	"os"

	"hostprof/internal/benchfmt"
)

// cmdBenchDiff compares two benchmark-results JSON files (as written
// by `make bench-json`) and fails when any benchmark regressed beyond
// the tolerance — the CI perf gate. Benchmarks present on only one
// side are listed but never fail the gate, so renaming or adding
// benchmarks stays cheap.
func cmdBenchDiff(args []string) error {
	fs := flag.NewFlagSet("bench-diff", flag.ExitOnError)
	metric := fs.String("metric", "ns/op", "benchmark metric to compare")
	tolerance := fs.Float64("tolerance", 0.25, "allowed relative growth before a benchmark counts as regressed (0.25 = +25%)")
	floor := fs.Float64("floor", 1000, "skip benchmarks whose base value is below this (noise); negative compares everything")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: hostprof bench-diff [flags] <base.json> <head.json>")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		fs.Usage()
		return fmt.Errorf("expected exactly two result files, got %d", fs.NArg())
	}
	base, err := benchfmt.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	head, err := benchfmt.ReadFile(fs.Arg(1))
	if err != nil {
		return err
	}
	rep := benchfmt.Diff(base, head, benchfmt.DiffConfig{
		Metric:    *metric,
		Tolerance: *tolerance,
		Floor:     *floor,
	})
	rep.Write(os.Stdout)
	// Different GOMAXPROCS means the runs keyed apart and nothing was
	// compared — a passing gate over zero comparisons is the silent
	// failure mode of capturing base and head on different machines.
	// Warn loudly, but do not fail: a deliberate hardware change must
	// still be able to re-baseline.
	if n := len(rep.ProcsMismatches); n > 0 {
		fmt.Fprintf(os.Stderr, "warning: %d benchmark(s) captured at different GOMAXPROCS in base vs head; their values were not compared\n", n)
	}
	if rep.Regressions > 0 {
		return fmt.Errorf("%d benchmark(s) regressed beyond %+.0f%% on %s",
			rep.Regressions, *tolerance*100, *metric)
	}
	fmt.Printf("no regressions beyond %+.0f%% on %s (%d compared)\n",
		*tolerance*100, *metric, len(rep.Deltas))
	return nil
}
