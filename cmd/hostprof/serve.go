package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hostprof/internal/ads"
	"hostprof/internal/core"
	"hostprof/internal/obs"
	"hostprof/internal/obs/tracer"
	"hostprof/internal/ontology"
	"hostprof/internal/server"
	"hostprof/internal/store"
)

// cmdServe runs the profiling/ad back-end over artefacts produced by
// `hostprof gen` (ontology + blocklist); the ad inventory is built from
// the ontology's labelled hosts, as the paper built its database from
// ads collected on labelled landing pages.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8420", "listen address")
	ontPath := fs.String("ontology", "", "ontology labels JSONL (required)")
	blPath := fs.String("blocklist", "", "optional hosts-format blocklist")
	dim := fs.Int("dim", 64, "embedding dimensionality")
	epochs := fs.Int("epochs", 5, "training epochs per retrain")
	n := fs.Int("n", 40, "profiler neighbourhood size N")
	indexWorkers := fs.Int("index-workers", 0, "goroutines per similarity-index query (0 = GOMAXPROCS)")
	profileCache := fs.Int("profile-cache", 4096, "session-profile LRU entries, invalidated on retrain (0 disables)")
	adsSeed := fs.Uint64("ads-seed", 1, "ad inventory seed")
	withPprof := fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	dataDir := fs.String("data-dir", "", "durable store directory (WAL + snapshots); empty keeps visits in memory only")
	fsync := fs.String("fsync", "interval", "WAL fsync policy: always, interval or never")
	snapEvery := fs.Duration("snapshot-interval", 10*time.Minute, "periodic snapshot cadence with -data-dir (0 disables the timer)")
	retrainTimeout := fs.Duration("retrain-timeout", 0, "abort a retrain past this deadline (0 = unbounded)")
	maxInflight := fs.Int("max-inflight-reports", 1024, "concurrent /v1/report requests before shedding with 429 (0 = unlimited)")
	maxHosts := fs.Int("max-hosts-per-report", 1024, "hostnames accepted per report before rejecting with 400")
	httpTimeout := fs.Duration("http-timeout", time.Minute, "HTTP read/write timeout (idle timeout is 4x this)")
	traceSample := fs.Float64("trace-sample", 1, "request-trace head-sampling rate in [0,1]; errored traces are always kept; 0 disables tracing")
	traceBuffer := fs.Int("trace-buffer", 256, "completed traces retained for /debug/traces")
	slowReq := fs.Duration("slow-request", time.Second, "log one structured warning per request slower than this (negative disables)")
	logf := addLogFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := logf.setup(); err != nil {
		return err
	}
	if *ontPath == "" {
		return fmt.Errorf("-ontology is required")
	}
	fsyncPolicy, err := store.ParseFsync(*fsync)
	if err != nil {
		return err
	}
	trc := tracer.New(tracer.Config{
		Service:      "hostprof-serve",
		SampleRate:   *traceSample,
		BufferTraces: *traceBuffer,
		Metrics:      obs.Default,
	})

	tax := ontology.NewTaxonomy()
	of, err := os.Open(*ontPath)
	if err != nil {
		return err
	}
	ont, err := ontology.ReadJSONL(tax, of)
	of.Close()
	if err != nil {
		return err
	}

	var bl *ontology.Blocklist
	if *blPath != "" {
		bf, err := os.Open(*blPath)
		if err != nil {
			return err
		}
		bl = ontology.NewBlocklist()
		if _, err := bl.ParseHostsFile(bf); err != nil {
			bf.Close()
			return err
		}
		bf.Close()
	}

	db := ads.BuildFromOntology(ont, ads.BuildConfig{Seed: *adsSeed})
	backend, err := server.New(server.Config{
		Ontology:      ont,
		AdDB:          db,
		Blocklist:     bl,
		Train:         core.TrainConfig{Dim: *dim, Epochs: *epochs},
		Profile:       core.ProfilerConfig{N: *n, Agg: core.AggIDF, IndexWorkers: *indexWorkers},
		ProfileCache:  *profileCache,
		Metrics:       obs.Default,
		DataDir:       *dataDir,
		Fsync:         fsyncPolicy,
		SnapshotEvery: *snapEvery,

		RetrainTimeout:     *retrainTimeout,
		MaxInflightReports: *maxInflight,
		MaxHostsPerReport:  *maxHosts,
		Tracer:             trc,
		SlowRequest:        *slowReq,
	})
	if err != nil {
		return err
	}

	handler := backend.Handler()
	if *withPprof {
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
	}

	slog.Info("backend listening",
		slog.String("addr", "http://"+*addr),
		slog.Int("labelled_hosts", ont.Len()),
		slog.Int("ads", db.Len()),
		slog.Float64("trace_sample", *traceSample))
	slog.Info("endpoints: POST /v1/report /v1/profile/batch /v1/feedback /v1/retrain[?async=1]; GET /v1/stats /metrics /varz /healthz /debug/traces")
	if *withPprof {
		slog.Info("profiling: GET /debug/pprof/")
	}

	// Serve until SIGTERM/SIGINT, then drain in-flight requests and shut
	// the store down cleanly: flush the WAL and snapshot, so the next
	// start recovers instantly instead of replaying the whole log.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	// Slow-client protection: a stalled reader or writer cannot pin a
	// connection (and, on /v1/report, an admission slot) forever.
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadTimeout:       *httpTimeout,
		ReadHeaderTimeout: *httpTimeout,
		WriteTimeout:      *httpTimeout,
		IdleTimeout:       4 * *httpTimeout,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.ListenAndServe() }()
	select {
	case err := <-serveErr:
		backend.Close()
		return err
	case <-ctx.Done():
		slog.Info("shutting down: draining requests, flushing store")
		shCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := srv.Shutdown(shCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			backend.Close()
			return err
		}
		return backend.Close()
	}
}
