package hostprof_test

import (
	"fmt"

	"hostprof"
	"hostprof/internal/sniffer"
	statspkg "hostprof/internal/stats"
)

// Example_profiling trains hostname embeddings on observed request
// sequences and profiles a session consisting of a single unlabelled API
// hostname: the embedding transfers the travel label from the sites the
// API is co-requested with.
func Example_profiling() {
	corpus := [][]string{
		{"flights.example", "api.hotels.example", "hotels.example", "flights.example"},
		{"hotels.example", "api.hotels.example", "flights.example", "hotels.example"},
		{"kick.example", "goal.example", "score.example", "kick.example"},
		{"goal.example", "score.example", "kick.example", "goal.example"},
	}
	model, err := hostprof.Train(corpus, hostprof.TrainConfig{
		Dim: 16, MinCount: 1, Epochs: 40, Workers: 1, Seed: 7, Subsample: -1,
	})
	if err != nil {
		panic(err)
	}

	tax := hostprof.NewTaxonomy()
	ont := hostprof.NewOntology(tax)
	travel, _ := tax.IDByName("Travel / Air Travel")
	v := tax.NewVector()
	v[travel] = 1
	ont.Add("flights.example", v)
	soccer, _ := tax.IDByName("Sports / Soccer")
	w := tax.NewVector()
	w[soccer] = 1
	ont.Add("score.example", w)

	profiler := hostprof.NewProfiler(model, ont, hostprof.ProfilerConfig{N: 3})
	profile, err := profiler.ProfileSession([]string{"api.hotels.example"})
	if err != nil {
		panic(err)
	}
	best := 0
	for id := range profile {
		if profile[id] > profile[best] {
			best = id
		}
	}
	fmt.Println(tax.Category(best).Name)
	// Output: Travel / Air Travel
}

// ExampleParseSNI shows the hostname leak a network observer exploits:
// the server name sits in cleartext at the front of every TLS connection.
func ExampleParseSNI() {
	rng := statspkg.NewRNG(1)
	stream := sniffer.BuildClientHello("secret-hobby.example", rng)
	host, err := hostprof.ParseSNI(stream)
	if err != nil {
		panic(err)
	}
	fmt.Println(host)
	// Output: secret-hobby.example
}

// ExampleParseQUICInitialSNI decrypts a QUIC v1 Initial the way an
// on-path observer can: the protection keys derive from the packet's own
// Destination Connection ID (RFC 9001), so "encrypted" Initials hide
// nothing from the network.
func ExampleParseQUICInitialSNI() {
	rng := statspkg.NewRNG(2)
	datagram, err := sniffer.BuildQUICInitial("video-site.example", rng)
	if err != nil {
		panic(err)
	}
	host, err := hostprof.ParseQUICInitialSNI(datagram)
	if err != nil {
		panic(err)
	}
	fmt.Println(host)
	// Output: video-site.example
}
