package trace

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"
)

func sampleTrace() *Trace {
	return New([]Visit{
		{User: 2, Time: 100, Host: "b.example"},
		{User: 1, Time: 50, Host: "a.example"},
		{User: 1, Time: 90000, Host: "c.example"}, // day 1
		{User: 1, Time: 60, Host: "a.example"},
		{User: 2, Time: 86399, Host: "d.example"}, // day 0 edge
	})
}

func TestTraceSortsByTime(t *testing.T) {
	tr := sampleTrace()
	vs := tr.Visits()
	for i := 1; i < len(vs); i++ {
		if vs[i].Time < vs[i-1].Time {
			t.Fatalf("not sorted at %d", i)
		}
	}
	if vs[0].Time != 50 || vs[len(vs)-1].Time != 90000 {
		t.Fatalf("unexpected order %v", vs)
	}
}

func TestTraceAppendResorts(t *testing.T) {
	tr := New(nil)
	tr.Append(Visit{User: 1, Time: 100, Host: "x"})
	tr.Append(Visit{User: 1, Time: 10, Host: "y"})
	vs := tr.Visits()
	if vs[0].Host != "y" {
		t.Fatal("Append did not re-sort")
	}
}

func TestTraceUsersHostsDays(t *testing.T) {
	tr := sampleTrace()
	if got := tr.Users(); !reflect.DeepEqual(got, []int{1, 2}) {
		t.Fatalf("Users = %v", got)
	}
	hosts := tr.Hosts()
	if len(hosts) != 4 || hosts[0] != "a.example" {
		t.Fatalf("Hosts = %v", hosts)
	}
	if tr.Days() != 2 {
		t.Fatalf("Days = %d", tr.Days())
	}
	if New(nil).Days() != 0 {
		t.Fatal("empty trace Days != 0")
	}
	if tr.Len() != 5 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestDaySlice(t *testing.T) {
	tr := sampleTrace()
	d0 := tr.DaySlice(0)
	if len(d0) != 4 {
		t.Fatalf("day 0 has %d visits", len(d0))
	}
	d1 := tr.DaySlice(1)
	if len(d1) != 1 || d1[0].Host != "c.example" {
		t.Fatalf("day 1 = %v", d1)
	}
	if len(tr.DaySlice(5)) != 0 {
		t.Fatal("future day not empty")
	}
}

func TestVisitDay(t *testing.T) {
	if (Visit{Time: 0}).Day() != 0 || (Visit{Time: 86400}).Day() != 1 || (Visit{Time: 86399}).Day() != 0 {
		t.Fatal("Day boundaries wrong")
	}
}

func TestDailySequences(t *testing.T) {
	tr := sampleTrace()
	seqs := tr.DailySequences(0)
	if len(seqs) != 2 {
		t.Fatalf("got %d sequences", len(seqs))
	}
	// User 1 first (ascending ID): visits at 50, 60.
	if !reflect.DeepEqual(seqs[0], []string{"a.example", "a.example"}) {
		t.Fatalf("user-1 seq = %v", seqs[0])
	}
	if !reflect.DeepEqual(seqs[1], []string{"b.example", "d.example"}) {
		t.Fatalf("user-2 seq = %v", seqs[1])
	}
}

func TestAllSequences(t *testing.T) {
	tr := sampleTrace()
	seqs := tr.AllSequences()
	if len(seqs) != 3 { // 2 on day 0, 1 on day 1
		t.Fatalf("got %d sequences", len(seqs))
	}
}

func TestSessionWindow(t *testing.T) {
	tr := New([]Visit{
		{User: 1, Time: 100, Host: "a"},
		{User: 1, Time: 500, Host: "b"},
		{User: 2, Time: 600, Host: "x"},
		{User: 1, Time: 700, Host: "c"},
		{User: 1, Time: 1500, Host: "d"},
	})
	// Window (500, 1300] for user 1: hosts at 700 only.
	got := tr.Session(1, 1300, 800)
	if !reflect.DeepEqual(got, []string{"c"}) {
		t.Fatalf("Session = %v", got)
	}
	// Window covering everything.
	got = tr.Session(1, 2000, 10000)
	if !reflect.DeepEqual(got, []string{"a", "b", "c", "d"}) {
		t.Fatalf("Session = %v", got)
	}
	// Boundary: visit exactly at end is included; at end-window excluded.
	got = tr.Session(1, 700, 200)
	if !reflect.DeepEqual(got, []string{"c"}) {
		t.Fatalf("boundary Session = %v", got)
	}
	if got := tr.Session(3, 1000, 1000); got != nil {
		t.Fatalf("unknown user Session = %v", got)
	}
}

func TestFilterHosts(t *testing.T) {
	tr := sampleTrace()
	f := tr.FilterHosts(func(h string) bool { return h != "a.example" })
	if f.Len() != 3 {
		t.Fatalf("filtered Len = %d", f.Len())
	}
	for _, v := range f.Visits() {
		if v.Host == "a.example" {
			t.Fatal("filtered host survived")
		}
	}
}

func TestPerUserVisits(t *testing.T) {
	tr := sampleTrace()
	per := tr.PerUserVisits()
	if len(per[1]) != 3 || len(per[2]) != 2 {
		t.Fatalf("per-user sizes %d/%d", len(per[1]), len(per[2]))
	}
	for i := 1; i < len(per[1]); i++ {
		if per[1][i].Time < per[1][i-1].Time {
			t.Fatal("per-user visits not ordered")
		}
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Visits(), tr.Visits()) {
		t.Fatalf("round trip mismatch:\n%v\n%v", got.Visits(), tr.Visits())
	}
}

func TestReadJSONLBad(t *testing.T) {
	if _, err := ReadJSONL(bytes.NewReader([]byte("{bad json\n"))); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestReadJSONLSkipsBlankLines(t *testing.T) {
	src := "{\"user\":1,\"time\":5,\"host\":\"h\"}\n\n"
	tr, err := ReadJSONL(bytes.NewReader([]byte(src)))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

// Property: Session output is always a subsequence of the user's visits
// within (end-window, end].
func TestSessionPropertyQuick(t *testing.T) {
	f := func(times []uint16, endRaw, winRaw uint16) bool {
		visits := make([]Visit, len(times))
		for i, tm := range times {
			visits[i] = Visit{User: 1, Time: int64(tm), Host: "h"}
		}
		tr := New(visits)
		end := int64(endRaw)
		win := int64(winRaw%1000) + 1
		got := tr.Session(1, end, win)
		want := 0
		for _, v := range tr.Visits() {
			if v.Time > end-win && v.Time <= end {
				want++
			}
		}
		return len(got) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
