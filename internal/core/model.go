package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hostprof/internal/fault"
	"hostprof/internal/index"
	"hostprof/internal/stats"
)

// TrainConfig holds the SKIPGRAM hyperparameters. The defaults mirror the
// gensim defaults the paper used (Section 5.4): d=100, window 5 (m=2),
// K=5 negative samples.
type TrainConfig struct {
	// Dim is the embedding dimensionality d. Default 100.
	Dim int
	// Window is the half window m: context positions up to m before and
	// after the centre are predicted (window length 2m+1 = 5 in the
	// paper). Per the original word2vec, the effective half window for
	// each centre is drawn uniformly from [1, Window]. Default 2.
	Window int
	// Negative is K, the number of negative samples per context pair,
	// drawn from the empirical unigram distribution P_D raised to
	// UnigramPower. Default 5.
	Negative int
	// UnigramPower is the exponent applied to unigram counts for the
	// noise distribution. Default 0.75.
	UnigramPower float64
	// Subsample is the frequent-host subsampling threshold (gensim's
	// `sample`); 0 disables. Default 1e-3.
	Subsample float64
	// MinCount drops hostnames seen fewer times. Default 5.
	MinCount int
	// Epochs is the number of passes over the corpus. Default 5.
	Epochs int
	// LR and MinLR bound the linearly decayed learning rate.
	// Defaults 0.025 and 1e-4.
	LR, MinLR float64
	// Workers is the number of concurrent trainer goroutines. With more
	// than one worker, weight updates follow the standard lock-free
	// Hogwild scheme used by word2vec/gensim: concurrent updates may
	// race benignly, trading bit-level determinism for throughput.
	// Default 1 (fully deterministic).
	Workers int
	// Seed seeds all training randomness.
	Seed uint64
	// Progress, when non-nil, is called once after every completed
	// epoch, from the goroutine running Train, with all workers
	// quiesced. Setting it also enables loss tracking, which costs one
	// log evaluation per trained pair.
	Progress func(EpochStats)
}

// EpochStats describes one completed training epoch, as reported to
// TrainConfig.Progress.
type EpochStats struct {
	// Epoch is the 0-based index of the completed epoch; Epochs is the
	// configured total.
	Epoch, Epochs int
	// Loss is the mean negative-sampling loss (Equation 2) per
	// (centre, context) pair over the epoch.
	Loss float64
	// Pairs is the number of positive pairs trained in the epoch.
	Pairs int64
	// Duration is the epoch's wall-clock time.
	Duration time.Duration
}

// withDefaults returns cfg with zero fields replaced by defaults.
func (c TrainConfig) withDefaults() TrainConfig {
	if c.Dim <= 0 {
		c.Dim = 100
	}
	if c.Window <= 0 {
		c.Window = 2
	}
	if c.Negative <= 0 {
		c.Negative = 5
	}
	if c.UnigramPower == 0 {
		c.UnigramPower = 0.75
	}
	if c.Subsample == 0 {
		c.Subsample = 1e-3
	}
	if c.MinCount <= 0 {
		c.MinCount = 5
	}
	if c.Epochs <= 0 {
		c.Epochs = 5
	}
	if c.LR <= 0 {
		c.LR = 0.025
	}
	if c.MinLR <= 0 {
		c.MinLR = 1e-4
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// Model holds the learned hostname representations: the central embeddings
// W (paper's h) and the context embeddings W' (paper's h'). Central
// embeddings are what downstream profiling consumes.
type Model struct {
	vocab *Vocab
	dim   int
	in    []float64 // |H| × dim central representations, row-major
	out   []float64 // |H| × dim context representations, row-major

	// normed caches unit-normalized central vectors for the serial
	// float64 similarity scan; built lazily by ensureIndex.
	normed   []float64
	normOnce sync.Once

	// fastIdx is the packed float32 similarity index over the central
	// embeddings; built lazily by SimilarityIndex, once per model.
	fastIdx  *index.Index
	fastOnce sync.Once
}

// ErrEmptyCorpus is returned when no trainable sequences remain after
// vocabulary pruning.
var ErrEmptyCorpus = errors.New("core: empty corpus after vocabulary pruning")

// lossEps keeps the tracked loss finite when a sigmoid saturates.
const lossEps = 1e-12

// Train learns hostname embeddings from a corpus of request sequences
// (one sequence per user per collection interval) by minimizing the
// negative-sampling objective of Equation (2) with SGD.
func Train(corpus [][]string, cfg TrainConfig) (*Model, error) {
	return TrainContext(context.Background(), corpus, cfg)
}

// TrainContext is Train with cooperative cancellation: ctx is checked
// at every epoch boundary and, within an epoch, by every worker before
// each sequence, so a production-sized retrain stops well under one
// epoch after cancellation. On cancellation the partially trained model
// is discarded and ctx.Err() is returned (wrapped; test with
// errors.Is).
func TrainContext(ctx context.Context, corpus [][]string, cfg TrainConfig) (*Model, error) {
	cfg = cfg.withDefaults()
	vocab := BuildVocab(corpus, cfg.MinCount)
	if vocab.Len() == 0 {
		return nil, ErrEmptyCorpus
	}

	// Re-encode the corpus as dense IDs, dropping out-of-vocab tokens.
	encoded := make([][]int32, 0, len(corpus))
	var tokens int64
	for _, seq := range corpus {
		ids := make([]int32, 0, len(seq))
		for _, h := range seq {
			if id, ok := vocab.ID(h); ok {
				ids = append(ids, int32(id))
			}
		}
		if len(ids) >= 2 {
			encoded = append(encoded, ids)
			tokens += int64(len(ids))
		}
	}
	if len(encoded) == 0 {
		return nil, ErrEmptyCorpus
	}

	m := &Model{vocab: vocab, dim: cfg.Dim}
	m.in = make([]float64, vocab.Len()*cfg.Dim)
	m.out = make([]float64, vocab.Len()*cfg.Dim)
	init := stats.NewRNG(cfg.Seed)
	for i := range m.in {
		m.in[i] = (init.Float64() - 0.5) / float64(cfg.Dim)
	}

	// Noise distribution: counts^power, sampled by binary search over
	// the CDF (equivalent to word2vec's unigram table, exact instead of
	// discretized).
	noise := make([]float64, vocab.Len())
	for i := range noise {
		noise[i] = math.Pow(float64(vocab.Count(i)), cfg.UnigramPower)
	}

	// Subsampling keep-probabilities (word2vec formula).
	keep := make([]float64, vocab.Len())
	for i := range keep {
		if cfg.Subsample <= 0 {
			keep[i] = 1
			continue
		}
		f := float64(vocab.Count(i)) / float64(vocab.Total())
		p := (math.Sqrt(f/cfg.Subsample) + 1) * cfg.Subsample / f
		if p > 1 {
			p = 1
		}
		keep[i] = p
	}

	totalWork := tokens * int64(cfg.Epochs)
	var done atomic.Int64

	workers := cfg.Workers
	if workers > len(encoded) {
		workers = len(encoded)
	}
	if raceDetectorEnabled {
		// Hogwild's benign weight races trip the race detector; run
		// single-threaded under -race (see race_on.go).
		workers = 1
	}
	trainers := make([]*trainer, workers)
	for w := range trainers {
		trainers[w] = &trainer{
			m:         m,
			cfg:       cfg,
			rng:       stats.NewRNG(cfg.Seed ^ (0x9e37*uint64(w) + 1)),
			noise:     stats.NewWeighted(stats.NewRNG(cfg.Seed+uint64(w)*7919+13), noise),
			keep:      keep,
			neu1e:     make([]float64, cfg.Dim),
			trackLoss: cfg.Progress != nil,
		}
	}
	// Epochs are barriered: all workers finish epoch e before any starts
	// e+1, so Progress observes a quiesced model. Per worker, the
	// sequence order and RNG consumption match the pre-barrier scheme.
	cancelled := ctx.Done()
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("core: training cancelled before epoch %d: %w", epoch, err)
		}
		if err := fault.Inject(fault.TrainEpoch); err != nil {
			return nil, fmt.Errorf("core: epoch %d: %w", epoch, err)
		}
		start := time.Now()
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(tr *trainer, w int) {
				defer wg.Done()
				for s := w; s < len(encoded); s += workers {
					select {
					case <-cancelled:
						return
					default:
					}
					seq := encoded[s]
					progress := float64(done.Add(int64(len(seq)))) / float64(totalWork)
					lr := cfg.LR * (1 - progress)
					if lr < cfg.MinLR {
						lr = cfg.MinLR
					}
					tr.trainSequence(seq, lr)
				}
			}(trainers[w], w)
		}
		wg.Wait()
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("core: training cancelled in epoch %d: %w", epoch, err)
		}
		if cfg.Progress != nil {
			var lossSum float64
			var pairs int64
			for _, tr := range trainers {
				lossSum += tr.lossSum
				pairs += tr.lossPairs
				tr.lossSum, tr.lossPairs = 0, 0
			}
			loss := 0.0
			if pairs > 0 {
				loss = lossSum / float64(pairs)
			}
			cfg.Progress(EpochStats{
				Epoch:    epoch,
				Epochs:   cfg.Epochs,
				Loss:     loss,
				Pairs:    pairs,
				Duration: time.Since(start),
			})
		}
	}
	return m, nil
}

// trainer holds per-worker training state.
type trainer struct {
	m     *Model
	cfg   TrainConfig
	rng   *stats.RNG
	noise *stats.Weighted
	keep  []float64
	neu1e []float64 // gradient accumulator for the centre vector

	// Loss accounting, only maintained when trackLoss is set; read by
	// the Train goroutine at epoch barriers.
	trackLoss bool
	lossSum   float64
	lossPairs int64
}

// trainSequence applies one pass of skip-gram negative sampling over a
// single encoded sequence at learning rate lr.
func (t *trainer) trainSequence(seq []int32, lr float64) {
	// Subsample frequent hosts first, as word2vec does, so the window
	// spans the retained subsequence.
	kept := seq
	if t.cfg.Subsample > 0 {
		kept = kept[:0:0]
		for _, id := range seq {
			if t.keep[id] >= 1 || t.rng.Float64() < t.keep[id] {
				kept = append(kept, id)
			}
		}
		if len(kept) < 2 {
			return
		}
	}
	dim := t.m.dim
	for c := range kept {
		centre := int(kept[c])
		// Random window shrink: uniform in [1, Window].
		b := 1 + t.rng.Intn(t.cfg.Window)
		lo := c - b
		if lo < 0 {
			lo = 0
		}
		hi := c + b
		if hi >= len(kept) {
			hi = len(kept) - 1
		}
		cvec := t.m.in[centre*dim : centre*dim+dim]
		for j := lo; j <= hi; j++ {
			if j == c {
				continue
			}
			ctx := int(kept[j])
			for i := range t.neu1e {
				t.neu1e[i] = 0
			}
			// One positive pair plus K negatives.
			for k := 0; k <= t.cfg.Negative; k++ {
				var target int
				var label float64
				if k == 0 {
					target, label = ctx, 1
				} else {
					target = t.noise.Draw()
					if target == ctx {
						continue
					}
					label = 0
				}
				ovec := t.m.out[target*dim : target*dim+dim]
				y := stats.Sigmoid(stats.Dot(cvec, ovec))
				if t.trackLoss {
					// Negative-sampling objective of Equation (2):
					// -log σ(x) for the pair, -log σ(-x) per negative.
					if label == 1 {
						t.lossSum -= math.Log(y + lossEps)
						t.lossPairs++
					} else {
						t.lossSum -= math.Log(1 - y + lossEps)
					}
				}
				g := (label - y) * lr
				stats.AXPY(g, ovec, t.neu1e)
				stats.AXPY(g, cvec, ovec)
			}
			stats.AXPY(1, t.neu1e, cvec)
		}
	}
}

// Vocab returns the model's vocabulary.
func (m *Model) Vocab() *Vocab { return m.vocab }

// Dim returns the embedding dimensionality d.
func (m *Model) Dim() int { return m.dim }

// Vector returns the central embedding of host. The returned slice aliases
// model storage and must not be modified.
func (m *Model) Vector(host string) ([]float64, bool) {
	id, ok := m.vocab.ID(host)
	if !ok {
		return nil, false
	}
	return m.in[id*m.dim : id*m.dim+m.dim], true
}

// VectorByID returns the central embedding for a vocabulary index. The
// returned slice aliases model storage and must not be modified.
func (m *Model) VectorByID(id int) []float64 {
	return m.in[id*m.dim : id*m.dim+m.dim]
}

// ContextVectorByID returns the context embedding h' for a vocabulary
// index; exposed for tests and diagnostics.
func (m *Model) ContextVectorByID(id int) []float64 {
	return m.out[id*m.dim : id*m.dim+m.dim]
}

// ensureIndex builds the unit-normalized copy of the central embeddings
// used by similarity search.
func (m *Model) ensureIndex() {
	m.normOnce.Do(func() {
		m.normed = append([]float64(nil), m.in...)
		for id := 0; id < m.vocab.Len(); id++ {
			stats.Normalize(m.normed[id*m.dim : id*m.dim+m.dim])
		}
	})
}

// SimilarityIndex returns the packed float32 top-k similarity index over
// the central embeddings, building it on first use. The index is
// immutable — models are frozen after training — so every profiler over
// this model shares one copy.
func (m *Model) SimilarityIndex() *index.Index {
	m.fastOnce.Do(func() {
		m.fastIdx = index.New(m.in, m.vocab.Len(), m.dim, index.Config{})
	})
	return m.fastIdx
}

// Similarity returns the cosine similarity between the embeddings of two
// hosts, or an error if either is out of vocabulary.
func (m *Model) Similarity(a, b string) (float64, error) {
	va, ok := m.Vector(a)
	if !ok {
		return 0, fmt.Errorf("core: host %q not in vocabulary", a)
	}
	vb, ok := m.Vector(b)
	if !ok {
		return 0, fmt.Errorf("core: host %q not in vocabulary", b)
	}
	return stats.Cosine(va, vb), nil
}

// Neighbour is one result of a nearest-neighbour query.
type Neighbour struct {
	ID     int
	Host   string
	Cosine float64
}

// worseNeighbour reports whether a ranks strictly below b under the
// result order shared with internal/index: lower cosine, ties broken by
// higher ID. Applying this total order at every heap comparison — not
// just the final sort — makes the serial scan's kept set deterministic,
// so the equivalence suite can compare it position-by-position against
// the parallel index.
func worseNeighbour(a, b Neighbour) bool {
	return a.Cosine < b.Cosine || (a.Cosine == b.Cosine && a.ID > b.ID)
}

// NearestToVector returns the k vocabulary hosts whose central embeddings
// have the highest cosine similarity to query, in decreasing order (ties
// broken by ascending vocabulary ID). exclude, if non-nil, suppresses
// specific vocabulary IDs (e.g. the query host itself).
//
// This is the single-threaded float64 reference scan; hot paths go
// through SimilarityIndex, which is rank-equivalent (see internal/index).
func (m *Model) NearestToVector(query []float64, k int, exclude map[int]bool) []Neighbour {
	if k <= 0 {
		return nil
	}
	m.ensureIndex()
	qn := append([]float64(nil), query...)
	if stats.Normalize(qn) == 0 {
		return nil
	}
	// Bounded min-heap rooted at the worst kept neighbour.
	h := make([]Neighbour, 0, k+1)
	push := func(n Neighbour) {
		h = append(h, n)
		// Sift up.
		i := len(h) - 1
		for i > 0 {
			p := (i - 1) / 2
			if !worseNeighbour(h[i], h[p]) {
				break
			}
			h[p], h[i] = h[i], h[p]
			i = p
		}
	}
	pop := func() {
		n := len(h) - 1
		h[0] = h[n]
		h = h[:n]
		i := 0
		for {
			l, r := 2*i+1, 2*i+2
			s := i
			if l < n && worseNeighbour(h[l], h[s]) {
				s = l
			}
			if r < n && worseNeighbour(h[r], h[s]) {
				s = r
			}
			if s == i {
				break
			}
			h[i], h[s] = h[s], h[i]
			i = s
		}
	}
	for id := 0; id < m.vocab.Len(); id++ {
		if exclude != nil && exclude[id] {
			continue
		}
		cos := stats.Dot(qn, m.normed[id*m.dim:id*m.dim+m.dim])
		cand := Neighbour{ID: id, Cosine: cos}
		if len(h) < k {
			push(cand)
		} else if worseNeighbour(h[0], cand) {
			pop()
			push(cand)
		}
	}
	sort.Slice(h, func(i, j int) bool { return worseNeighbour(h[j], h[i]) })
	for i := range h {
		h[i].Host = m.vocab.Host(h[i].ID)
	}
	return h
}

// MostSimilar returns the k nearest hosts to the given host, excluding the
// host itself. It queries the packed similarity index; cosines are
// float32-rounded accordingly.
func (m *Model) MostSimilar(host string, k int) ([]Neighbour, error) {
	id, ok := m.vocab.ID(host)
	if !ok {
		return nil, fmt.Errorf("core: host %q not in vocabulary", host)
	}
	res := m.SimilarityIndex().SearchAppend(nil, m.VectorByID(id), k, 0, int32(id))
	ns := make([]Neighbour, len(res))
	for i, r := range res {
		ns[i] = Neighbour{ID: int(r.ID), Host: m.vocab.Host(int(r.ID)), Cosine: float64(r.Score)}
	}
	return ns, nil
}

// NewModelFromVectors assembles a frozen Model directly from a host list
// and a row-major central-embedding matrix of len(hosts)×dim, for tools,
// benchmarks and tests that need a model without running training. Hosts
// must be unique; each gets a uniform count of 1 and the context matrix
// is left empty.
func NewModelFromVectors(hosts []string, dim int, in []float64) (*Model, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("core: non-positive dimensionality %d", dim)
	}
	if len(in) != len(hosts)*dim {
		return nil, fmt.Errorf("core: matrix length %d != %d hosts x dim %d", len(in), len(hosts), dim)
	}
	v := &Vocab{
		hosts:  append([]string(nil), hosts...),
		index:  make(map[string]int, len(hosts)),
		counts: make([]int64, len(hosts)),
		total:  int64(len(hosts)),
	}
	for i, h := range hosts {
		if _, dup := v.index[h]; dup {
			return nil, fmt.Errorf("core: duplicate host %q", h)
		}
		v.index[h] = i
		v.counts[i] = 1
	}
	return &Model{vocab: v, dim: dim, in: append([]float64(nil), in...)}, nil
}
