// Package ontology models the categorization service the paper relies on
// (Google Adwords' Display Planner): a two-level topic taxonomy, per-host
// category-weight vectors, and the tracker blocklists used to filter
// advertising hostnames out of browsing sequences (paper Section 5.4).
//
// The paper cut the Adwords hierarchy at its second level, obtaining 328
// categories under 34 top-level topics; only 10.6% of observed hostnames
// were covered. This package reproduces exactly that shape.
package ontology

import (
	"fmt"
	"sort"
)

// topSpec pins a top-level topic name to its number of second-level
// categories and a few curated subcategory names (the remainder are
// generated). The names mirror the topics visible in Figure 6 of the
// paper; the counts sum to 328 across 34 topics, matching the paper's
// second-level cut.
type topSpec struct {
	name  string
	count int
	seeds []string
}

var topSpecs = []topSpec{
	{"Online Communities", 8, []string{"Social Networks", "Forums & Chats", "Dating", "Photo & Video Sharing"}},
	{"Arts & Entertainment", 24, []string{"Music & Audio", "Movies", "TV Shows", "Celebrities", "Comics & Animation", "Performing Arts"}},
	{"People & Society", 12, []string{"Religion & Belief", "Family & Relationships", "Social Issues"}},
	{"Jobs & Education", 8, []string{"Job Listings", "Universities", "Training & Certification"}},
	{"Games", 16, []string{"Video Games", "Online Games", "Board Games", "Gambling"}},
	{"Internet & Telecom", 2, []string{"Service Providers", "Web Services"}},
	{"Computers & Electronics", 26, []string{"Software", "Hardware", "Consumer Electronics", "Programming", "Networking", "Mobile Phones"}},
	{"Shopping", 20, []string{"Apparel", "Consumer Resources", "Auctions", "Coupons & Discounts"}},
	{"News", 8, []string{"World News", "Local News", "Politics", "Weather"}},
	{"Business & Industrial", 24, []string{"Advertising & Marketing", "Manufacturing", "Logistics", "Small Business"}},
	{"Reference", 6, []string{"Dictionaries & Encyclopedias", "Maps", "How-To"}},
	{"Books & Literature", 8, []string{"E-Books", "Poetry", "Fan Fiction"}},
	{"Sports", 24, []string{"Soccer", "Basketball", "Tennis", "Motor Sports", "Winter Sports", "Live Scores"}},
	{"Travel", 16, []string{"Air Travel", "Hotels & Accommodations", "Cruises & Charters", "Car Rental", "Tourist Destinations"}},
	{"Finance", 10, []string{"Banking", "Investing", "Insurance", "Credit & Lending"}},
	{"Health", 18, []string{"Medical Facilities", "Nutrition", "Mental Health", "Pharmacy"}},
	{"Real Estate", 4, []string{"Listings", "Property Management"}},
	{"Beauty & Fitness", 8, []string{"Cosmetics", "Fitness", "Hair Care"}},
	{"Autos & Vehicles", 10, []string{"Car Makes", "Motorcycles", "Vehicle Parts"}},
	{"Science", 8, []string{"Physics", "Biology", "Astronomy"}},
	{"Hobbies & Leisure", 14, []string{"Outdoors", "Crafts", "Photography", "Collecting"}},
	{"Food & Drink", 10, []string{"Recipes", "Restaurants", "Beverages"}},
	{"Law & Government", 8, []string{"Public Services", "Legal", "Military"}},
	{"Pets & Animals", 6, []string{"Dogs", "Cats", "Wildlife"}},
	{"Home & Garden", 10, []string{"Home Improvement", "Gardening", "Furniture"}},
	{"Sororities & Student Societies", 2, nil},
	{"Crime & Mystery Films", 2, nil},
	{"Awards & Prizes", 2, nil},
	{"Reviews & Comparisons", 3, nil},
	{"DIY & Expert Content", 2, nil},
	{"Jellies & Preserves", 2, nil},
	{"Cooktops & Ovens", 2, nil},
	{"Clubs & Nightlife", 3, nil},
	{"Scholarships & Financial Aid", 2, nil},
}

// NumTopLevel is the number of top-level topics (paper Section 6.3: 34).
const NumTopLevel = 34

// NumCategories is the number of second-level categories used for
// profiling (paper Section 5.4: 328, the set C of Section 4.1).
const NumCategories = 328

// Category is one second-level node of the taxonomy.
type Category struct {
	ID   int    // dense index in [0, NumCategories)
	Top  int    // index of the parent top-level topic in [0, NumTopLevel)
	Name string // full name "Top / Sub"
}

// Taxonomy is the two-level category hierarchy.
type Taxonomy struct {
	tops   []string
	cats   []Category
	byName map[string]int
	subs   [][]int // per top-level topic, IDs of its categories
}

// NewTaxonomy constructs the default 34/328 taxonomy. It is deterministic:
// two calls always yield identical IDs and names.
func NewTaxonomy() *Taxonomy {
	t := &Taxonomy{
		byName: make(map[string]int),
	}
	for ti, spec := range topSpecs {
		t.tops = append(t.tops, spec.name)
		ids := make([]int, 0, spec.count)
		for i := 0; i < spec.count; i++ {
			var sub string
			if i < len(spec.seeds) {
				sub = spec.seeds[i]
			} else {
				sub = fmt.Sprintf("Segment %d", i-len(spec.seeds)+1)
			}
			c := Category{
				ID:   len(t.cats),
				Top:  ti,
				Name: spec.name + " / " + sub,
			}
			t.byName[c.Name] = c.ID
			t.cats = append(t.cats, c)
			ids = append(ids, c.ID)
		}
		t.subs = append(t.subs, ids)
	}
	return t
}

// NumCategories returns the number of second-level categories.
func (t *Taxonomy) NumCategories() int { return len(t.cats) }

// NumTops returns the number of top-level topics.
func (t *Taxonomy) NumTops() int { return len(t.tops) }

// Category returns the category with the given dense ID.
func (t *Taxonomy) Category(id int) Category { return t.cats[id] }

// TopName returns the name of top-level topic ti.
func (t *Taxonomy) TopName(ti int) string { return t.tops[ti] }

// TopOf returns the top-level topic index of category id.
func (t *Taxonomy) TopOf(id int) int { return t.cats[id].Top }

// SubsOf returns the category IDs under top-level topic ti. The returned
// slice must not be modified.
func (t *Taxonomy) SubsOf(ti int) []int { return t.subs[ti] }

// IDByName returns the dense ID for a full category name.
func (t *Taxonomy) IDByName(name string) (int, bool) {
	id, ok := t.byName[name]
	return id, ok
}

// TopNames returns a copy of all top-level topic names in ID order.
func (t *Taxonomy) TopNames() []string {
	return append([]string(nil), t.tops...)
}

// Vector is a per-host category-weight vector c^h: one entry per
// second-level category, each in [0, 1]. As in the paper (footnote 2),
// it is not a probability distribution and does not sum to 1.
type Vector []float64

// NewVector returns a zero vector sized for taxonomy t.
func (t *Taxonomy) NewVector() Vector { return make(Vector, t.NumCategories()) }

// Clone returns a deep copy of v.
func (v Vector) Clone() Vector { return append(Vector(nil), v...) }

// Clamp forces every entry into [0, 1] in place.
func (v Vector) Clamp() {
	for i, x := range v {
		if x < 0 {
			v[i] = 0
		} else if x > 1 {
			v[i] = 1
		}
	}
}

// Valid reports whether every component lies in [0, 1].
func (v Vector) Valid() bool {
	for _, x := range v {
		if x < 0 || x > 1 {
			return false
		}
	}
	return true
}

// TopLevel folds v into a per-top-level-topic vector by taking, for each
// topic, the maximum weight among its second-level categories. Figure 6 of
// the paper reports top-level topics only.
func (v Vector) TopLevel(t *Taxonomy) []float64 {
	out := make([]float64, t.NumTops())
	for id, x := range v {
		ti := t.TopOf(id)
		if x > out[ti] {
			out[ti] = x
		}
	}
	return out
}

// Support returns the IDs of categories with weight above threshold,
// sorted ascending.
func (v Vector) Support(threshold float64) []int {
	var ids []int
	for id, x := range v {
		if x > threshold {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	return ids
}
