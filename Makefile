GO ?= go

.PHONY: all build test vet bench experiments experiments-small examples clean

all: vet test build

build:
	$(GO) build ./...

vet:
	gofmt -l . && $(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -benchtime 1x .

experiments:
	$(GO) run ./cmd/experiments -verbose -data-dir data

experiments-small:
	$(GO) run ./cmd/experiments -small -verbose

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/isp_observer
	$(GO) run ./examples/ad_campaign
	$(GO) run ./examples/streaming_detection
	$(GO) run ./examples/countermeasures

clean:
	$(GO) clean ./...
