package index

import (
	"math"
	"testing"
)

// FuzzANNBuild feeds arbitrary vector sets — empty, single row,
// duplicates, NaN/Inf payloads — through BuildANN and SearchAppend,
// asserting the pair never panics, returns at most k unique in-range
// IDs, keeps the (score desc, ID asc) order among finite scores, and
// rejects non-finite rows at insert.
func FuzzANNBuild(f *testing.F) {
	f.Add([]byte{})                                                                                      // empty matrix
	f.Add([]byte{4, 3, 2, 16})                                                                           // header only: single short row
	f.Add([]byte{1, 1, 1, 1, 0, 0, 0, 0})                                                                // dim 1, one zero row
	f.Add([]byte{2, 5, 4, 8, 1, 2, 3, 4, 1, 2, 3, 4, 1, 2, 3, 4})                                        // duplicate rows
	f.Add([]byte{3, 2, 2, 4, 0x7f, 0xc0, 0, 0, 0x7f, 0x80, 0, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}) // NaN and +Inf payloads
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			t.Skip("cap corpus growth")
		}
		dim, k, m, ef := 1, 1, 0, 0
		if len(data) >= 4 {
			dim = 1 + int(data[0])%16
			k = 1 + int(data[1])%32
			m = int(data[2]) % 9
			ef = int(data[3]) % 65
			data = data[4:]
		}
		// Remaining bytes become float32 rows bit for bit, so NaN, Inf
		// and denormal payloads all reach the build unlaundered.
		vals := len(data) / 4
		rows := vals / dim
		vecs := make([]float64, rows*dim)
		for i := 0; i < rows*dim; i++ {
			bits := uint32(data[4*i]) | uint32(data[4*i+1])<<8 |
				uint32(data[4*i+2])<<16 | uint32(data[4*i+3])<<24
			vecs[i] = float64(math.Float32frombits(bits))
		}
		ix := New(vecs, rows, dim, Config{BlockRows: 8})
		ann := ix.BuildANN(ANNConfig{M: m, EfConstruction: ef, Ef: ef, Seed: 42})

		st := ann.Stats()
		if st.GraphRows+st.Unindexed != rows {
			t.Fatalf("graph rows %d + unindexed %d != rows %d", st.GraphRows, st.Unindexed, rows)
		}
		// Rebuild determinism: the graph is a pure function of its input.
		if s2 := ix.BuildANN(ANNConfig{M: m, EfConstruction: ef, Ef: ef, Seed: 42}).Stats(); s2 != st {
			// BuildTime differs by nature; compare everything else.
			s2.BuildTime, st.BuildTime = 0, 0
			if s2 != st {
				t.Fatalf("rebuild changed the graph: %+v vs %+v", st, s2)
			}
		}

		query := make([]float64, dim)
		if rows > 0 {
			copy(query, vecs[:dim]) // aim at the first row
		} else {
			query[0] = 1
		}
		got, _ := ann.SearchAppend(nil, query, k, 0, 1, NoExclude)
		if len(got) > k {
			t.Fatalf("returned %d results for k=%d", len(got), k)
		}
		seen := make(map[int32]bool, len(got))
		for i, r := range got {
			if r.ID < 0 || int(r.ID) >= rows {
				t.Fatalf("result ID %d out of range [0,%d)", r.ID, rows)
			}
			if seen[r.ID] {
				t.Fatalf("duplicate ID %d in results", r.ID)
			}
			seen[r.ID] = true
			if i > 0 {
				prev, cur := got[i-1], r
				if !math.IsNaN(float64(prev.Score)) && !math.IsNaN(float64(cur.Score)) {
					if worse(entry{score: prev.Score, row: prev.ID}, entry{score: cur.Score, row: cur.ID}) {
						t.Fatalf("results out of (score desc, ID asc) order at %d: %v then %v", i, prev, cur)
					}
				}
			}
		}
		// Exclusion must hold under arbitrary input too.
		if rows > 0 {
			ex, _ := ann.SearchAppend(nil, query, k, 0, 1, 0)
			for _, r := range ex {
				if r.ID == 0 {
					t.Fatal("excluded ID 0 present in results")
				}
			}
		}
	})
}
