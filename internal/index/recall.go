package index

// RecallHits counts how many of the exact results' IDs appear in the
// approximate results — the numerator of recall@k. Both slices are ID
// sets for the count; ordering does not matter.
func RecallHits(exact, approx []Result) int {
	if len(exact) == 0 {
		return 0
	}
	seen := make(map[int32]struct{}, len(approx))
	for _, r := range approx {
		seen[r.ID] = struct{}{}
	}
	hits := 0
	for _, r := range exact {
		if _, ok := seen[r.ID]; ok {
			hits++
		}
	}
	return hits
}

// Recall returns the fraction of exact results recovered by the
// approximate results (recall@k with k = len(exact)). An empty exact
// set has recall 1: there was nothing to miss.
func Recall(exact, approx []Result) float64 {
	if len(exact) == 0 {
		return 1
	}
	return float64(RecallHits(exact, approx)) / float64(len(exact))
}
