package ads

import (
	"hostprof/internal/ontology"
	"hostprof/internal/stats"
	"hostprof/internal/synth"
)

// AdNetwork is the comparator of the paper's experiment: the "Original"
// ads served by the advertising ecosystem. Unlike the eavesdropper, the
// ad-network sees full URLs, cookies and cross-site identity, which we
// model as (noisy) direct access to the user's true interest profile. Its
// traffic mix follows Section 3: targeted ads based on the user profile,
// contextual ads based on the page being viewed, and premium/campaign ads
// that ignore both.
type AdNetwork struct {
	db  *DB
	tax *ontology.Taxonomy
	rng *stats.RNG

	// Mix probabilities; remainder after Targeted+Contextual is
	// premium/campaign.
	Targeted   float64
	Contextual float64
	// ProfileNoise blurs the network's knowledge of user interests.
	ProfileNoise float64

	// adsByTop indexes inventory by dominant top-level topic.
	adsByTop [][]int
	// campaign rotates daily over random ads (premium campaigns).
	campaignSeed uint64
}

// NewAdNetwork builds the comparator over the same inventory the
// eavesdropper uses (the paper's replacement database was harvested from
// ad-network ads, so the inventories coincide).
func NewAdNetwork(db *DB, seed uint64) *AdNetwork {
	n := &AdNetwork{
		db:           db,
		tax:          db.tax,
		rng:          stats.NewRNG(seed ^ 0xada0),
		Targeted:     0.35,
		Contextual:   0.25,
		ProfileNoise: 0.5,
		campaignSeed: seed,
	}
	n.adsByTop = make([][]int, db.tax.NumTops())
	for _, ad := range db.Ads() {
		top := stats.ArgMax(ad.TopLevel)
		if top >= 0 {
			n.adsByTop[top] = append(n.adsByTop[top], ad.ID)
		}
	}
	return n
}

// Serve picks one ad for user u viewing a page with the given ground
// truth top-level topic on the given day.
func (n *AdNetwork) Serve(u synth.User, pageTop int, day int) Ad {
	r := n.rng.Float64()
	switch {
	case r < n.Targeted:
		return n.serveTargeted(u)
	case r < n.Targeted+n.Contextual:
		return n.serveContextual(pageTop)
	default:
		return n.serveCampaign(day)
	}
}

// serveTargeted picks an ad matching a noisy view of the user's
// interests.
func (n *AdNetwork) serveTargeted(u synth.User) Ad {
	// Perturb interests, then sample a topic.
	w := make([]float64, len(u.Interests))
	var sum float64
	for i, x := range u.Interests {
		v := x + n.ProfileNoise*n.rng.Float64()/float64(len(w))
		w[i] = v
		sum += v
	}
	if sum == 0 {
		return n.randomAd()
	}
	topic := stats.NewWeighted(n.rng.Split(), w).Draw()
	return n.adForTopic(topic)
}

// serveContextual picks an ad matching the page's topic.
func (n *AdNetwork) serveContextual(pageTop int) Ad {
	if pageTop < 0 || pageTop >= len(n.adsByTop) {
		return n.randomAd()
	}
	return n.adForTopic(pageTop)
}

// serveCampaign returns one of the day's premium-campaign ads; campaigns
// change daily, which makes Figure 6b's topic mix drift over time.
func (n *AdNetwork) serveCampaign(day int) Ad {
	// A handful of campaign ads per day, chosen deterministically.
	dayRng := stats.NewRNG(n.campaignSeed ^ (0x9e3779b9*uint64(day) + 0x7f4a7c15))
	const campaigns = 5
	pick := dayRng.Uint64() >> 1 % uint64(campaigns)
	var id int
	for i := uint64(0); i <= pick; i++ {
		id = int(dayRng.Uint64() % uint64(n.db.Len()))
	}
	return n.db.Ad(id)
}

// adForTopic picks a random ad whose dominant topic matches, falling back
// to the whole inventory.
func (n *AdNetwork) adForTopic(topic int) Ad {
	if topic >= 0 && topic < len(n.adsByTop) && len(n.adsByTop[topic]) > 0 {
		ids := n.adsByTop[topic]
		return n.db.Ad(ids[n.rng.Intn(len(ids))])
	}
	return n.randomAd()
}

func (n *AdNetwork) randomAd() Ad {
	return n.db.Ad(n.rng.Intn(n.db.Len()))
}
