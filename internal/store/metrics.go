package store

import "hostprof/internal/obs"

// storeMetrics caches the store's registry handles. Every field is
// nil-safe (see internal/obs), so a store without a registry pays only
// dead branches.
type storeMetrics struct {
	appends          *obs.Counter
	appendErrors     *obs.Counter
	walBytes         *obs.Counter
	fsyncs           *obs.Counter
	rotations        *obs.Counter
	snapshots        *obs.Counter
	snapshotErrors   *obs.Counter
	snapshotSeconds  *obs.Histogram
	recoveryRecords  *obs.Counter
	recoveryTorn     *obs.Counter
	walReattaches    *obs.Counter
	walProbeFailures *obs.Counter
}

// snapshotBuckets spans in-memory toy stores to multi-gigabyte dumps.
var snapshotBuckets = obs.ExpBuckets(0.001, 4, 10)

func newStoreMetrics(reg *obs.Registry, s *Store) storeMetrics {
	reg.Describe("hostprof_store_appends_total", "visits appended to the sharded store")
	reg.Describe("hostprof_store_wal_bytes_total", "bytes written to the write-ahead log")
	reg.Describe("hostprof_store_fsyncs_total", "WAL fsync calls issued")
	reg.Describe("hostprof_store_segment_rotations_total", "WAL segment rotations (size bound or snapshot cut)")
	reg.Describe("hostprof_store_snapshots_total", "snapshots written successfully")
	reg.Describe("hostprof_store_snapshot_errors_total", "snapshot writes that failed")
	reg.Describe("hostprof_store_snapshot_seconds", "wall time of snapshot writes")
	reg.Describe("hostprof_store_recovery_records_total", "WAL records replayed during startup recovery")
	reg.Describe("hostprof_store_recovery_torn_tails_total", "torn WAL tails truncated during recovery")
	reg.Describe("hostprof_store_wal_probe_failures_total", "failed WAL re-attach probes while degraded")
	reg.Describe("hostprof_store_visits", "visits held in the store")
	reg.Describe("hostprof_store_users", "distinct users held in the store")
	reg.Describe("hostprof_store_degraded", "1 while the WAL is detached after a write failure and the store runs memory-only")
	reg.Describe("hostprof_store_append_errors_total", "WAL append failures (each one degrades the store)")
	reg.Describe("hostprof_store_wal_reattaches_total", "successful WAL re-attachments after degraded mode")
	reg.GaugeFunc("hostprof_store_visits", func() float64 { return float64(s.Len()) })
	reg.GaugeFunc("hostprof_store_users", func() float64 { return float64(len(s.Users())) })
	reg.GaugeFunc("hostprof_store_degraded", func() float64 {
		if s.Degraded() {
			return 1
		}
		return 0
	})
	return storeMetrics{
		appends:          reg.Counter("hostprof_store_appends_total"),
		appendErrors:     reg.Counter("hostprof_store_append_errors_total"),
		walBytes:         reg.Counter("hostprof_store_wal_bytes_total"),
		fsyncs:           reg.Counter("hostprof_store_fsyncs_total"),
		rotations:        reg.Counter("hostprof_store_segment_rotations_total"),
		snapshots:        reg.Counter("hostprof_store_snapshots_total"),
		snapshotErrors:   reg.Counter("hostprof_store_snapshot_errors_total"),
		snapshotSeconds:  reg.Histogram("hostprof_store_snapshot_seconds", snapshotBuckets),
		recoveryRecords:  reg.Counter("hostprof_store_recovery_records_total"),
		recoveryTorn:     reg.Counter("hostprof_store_recovery_torn_tails_total"),
		walReattaches:    reg.Counter("hostprof_store_wal_reattaches_total"),
		walProbeFailures: reg.Counter("hostprof_store_wal_probe_failures_total"),
	}
}
