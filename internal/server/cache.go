package server

import (
	"container/list"
	"sync"

	"hostprof/internal/obs"
	"hostprof/internal/ontology"
)

// profileCache is an LRU of session-profile outcomes keyed by
// core.Profiler.SessionKey. A cache belongs to exactly one profiler
// generation: retrains swap a fresh cache in together with the new
// profiler under the backend mutex, so a key can never resolve to a
// profile computed on a previous model (in-flight computations started
// before the swap insert into the orphaned old cache). Deterministic
// error outcomes (ErrNoLabels) are cached like values — an unlabelled
// session stays unlabelled until the model or ontology changes.
type profileCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	byKey map[string]*list.Element

	hits, misses, evictions *obs.Counter
}

// cacheEntry is one memoised profile outcome.
type cacheEntry struct {
	key string
	vec ontology.Vector
	err error
}

func newProfileCache(capacity int, reg *obs.Registry) *profileCache {
	if capacity <= 0 {
		return nil
	}
	reg.Describe("hostprof_profile_cache_hits_total", "Session profiles served from the LRU cache.")
	reg.Describe("hostprof_profile_cache_misses_total", "Session profiles computed because the LRU cache had no entry.")
	reg.Describe("hostprof_profile_cache_evictions_total", "Session profiles evicted from the LRU cache by capacity.")
	reg.Describe("hostprof_profile_cache_size", "Entries currently held by the session-profile cache.")
	return &profileCache{
		cap:       capacity,
		ll:        list.New(),
		byKey:     make(map[string]*list.Element, capacity),
		hits:      reg.Counter("hostprof_profile_cache_hits_total"),
		misses:    reg.Counter("hostprof_profile_cache_misses_total"),
		evictions: reg.Counter("hostprof_profile_cache_evictions_total"),
	}
}

// get returns the memoised outcome for key. The vector is cloned so
// callers can hold it across a later eviction or mutate it freely.
func (c *profileCache) get(key string) (ontology.Vector, error, bool) {
	c.mu.Lock()
	el, ok := c.byKey[key]
	if !ok {
		c.mu.Unlock()
		c.misses.Inc()
		return nil, nil, false
	}
	c.ll.MoveToFront(el)
	e := el.Value.(*cacheEntry)
	var vec ontology.Vector
	if e.vec != nil {
		vec = e.vec.Clone()
	}
	err := e.err
	c.mu.Unlock()
	c.hits.Inc()
	return vec, err, true
}

// put memoises one outcome, evicting the least recently used entry past
// capacity.
func (c *profileCache) put(key string, vec ontology.Vector, err error) {
	c.mu.Lock()
	if el, ok := c.byKey[key]; ok {
		c.ll.MoveToFront(el)
		e := el.Value.(*cacheEntry)
		e.vec, e.err = vec, err
		c.mu.Unlock()
		return
	}
	c.byKey[key] = c.ll.PushFront(&cacheEntry{key: key, vec: vec, err: err})
	var evicted bool
	if c.ll.Len() > c.cap {
		el := c.ll.Back()
		c.ll.Remove(el)
		delete(c.byKey, el.Value.(*cacheEntry).key)
		evicted = true
	}
	c.mu.Unlock()
	if evicted {
		c.evictions.Inc()
	}
}

// len returns the number of cached entries.
func (c *profileCache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
