// Package cluster is the horizontal axis of the profiling backend: a
// stateless gateway that consistent-hashes users across N backend
// shards, fans batch work out scatter-gather, and distributes one
// trained model cluster-wide as a versioned artifact.
//
// Scale rationale: the paper's observer watches entire populations (600M
// connections over six months, Section 3) — no single node ingests or
// serves that. The design keeps every hard problem in exactly one
// place:
//
//   - Placement is deterministic — a consistent-hash ring with virtual
//     nodes maps each user ID to one owning shard, so a user's visit
//     history accumulates on a single store and sessions never span
//     shards.
//   - The gateway is stateless — any number of gateways over the same
//     backend list compute identical placement; losing one loses
//     nothing.
//   - Model state is replicated, not partitioned — training happens on
//     a designated shard over its keyspace, and the resulting versioned
//     artifact (see store.ModelArtifact) is shipped to every peer, so
//     profile quality is uniform regardless of which shard answers.
//   - Failure is partial — a dead shard sheds exactly its keyspace
//     (reports for its users are refused with Retry-After, batch
//     results degrade per-session), and the cluster converges again
//     when it returns.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Ring is a consistent-hash ring with virtual nodes. Placement is a
// pure function of the member set: every gateway (and every test) that
// builds a ring over the same node names computes the same owner for
// every user, with no coordination. The ring is immutable after build —
// membership changes build a new ring via SetNodes — so reads are
// lock-free.
type Ring struct {
	vnodes int
	points []ringPoint // sorted by hash, ascending
	nodes  []string    // member names, sorted
}

type ringPoint struct {
	hash uint64
	node string
}

// DefaultVirtualNodes balances placement evenness against ring size:
// 128 vnodes keeps the per-shard keyspace share within a few percent of
// uniform for small clusters while the ring stays a few KiB.
const DefaultVirtualNodes = 128

// NewRing builds a ring over nodes with the given virtual-node count
// per member (<= 0 selects DefaultVirtualNodes). Node names must be
// unique and non-empty; order does not matter — placement depends only
// on the set.
func NewRing(nodes []string, vnodes int) (*Ring, error) {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	r := &Ring{vnodes: vnodes}
	if err := r.build(nodes); err != nil {
		return nil, err
	}
	return r, nil
}

func (r *Ring) build(nodes []string) error {
	seen := make(map[string]bool, len(nodes))
	for _, n := range nodes {
		if n == "" {
			return fmt.Errorf("cluster: empty node name")
		}
		if seen[n] {
			return fmt.Errorf("cluster: duplicate node %q", n)
		}
		seen[n] = true
	}
	r.nodes = append([]string(nil), nodes...)
	sort.Strings(r.nodes)
	r.points = make([]ringPoint, 0, len(nodes)*r.vnodes)
	for _, n := range r.nodes {
		for v := 0; v < r.vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: pointHash(n, v), node: n})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Equal hashes (vanishingly rare) tie-break by name so placement
		// stays deterministic across gateways.
		return r.points[i].node < r.points[j].node
	})
	return nil
}

// pointHash places virtual node v of a member on the ring: FNV-1a over
// "name#v" (stable across processes, architectures and restarts),
// finalized through mix64. The finalizer matters: near-identical names
// ("http://s1" vs "http://s2") leave FNV's sequential state correlated,
// which clusters the members' points into tight groups and hands one
// member most of the keyspace; the multiply-xorshift finalizer breaks
// that correlation.
func pointHash(node string, v int) uint64 {
	h := fnv.New64a()
	h.Write([]byte(node))
	h.Write([]byte{'#'})
	var buf [8]byte
	for i := range buf {
		buf[i] = byte(v >> (8 * i))
	}
	h.Write(buf[:])
	return mix64(h.Sum64())
}

// userHash spreads user IDs over the key space (splitmix64: sequential
// IDs — exactly what synth worlds and real install counters produce —
// land uniformly).
func userHash(user int) uint64 {
	return mix64(uint64(user) + 0x9e3779b97f4a7c15)
}

// mix64 is the splitmix64 finalizer, a fast bijective mixer whose
// output bits each depend on every input bit.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Owner returns the shard owning a user: the first ring point at or
// after the user's hash, wrapping at the top. ok is false only for an
// empty ring.
func (r *Ring) Owner(user int) (node string, ok bool) {
	if len(r.points) == 0 {
		return "", false
	}
	h := userHash(user)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].node, true
}

// OwnerOfHash returns the member owning a raw ring position: the first
// point at or after h, wrapping at the top. ok is false only for an
// empty ring.
func (r *Ring) OwnerOfHash(h uint64) (node string, ok bool) {
	if len(r.points) == 0 {
		return "", false
	}
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].node, true
}

// MovedRange is one keyspace arc whose owner differs between two rings:
// the half-open hash interval (Lo, Hi], owned by From in the old ring
// and To in the new one. Lo >= Hi means the arc wraps through zero.
type MovedRange struct {
	Lo, Hi   uint64
	From, To string
}

// Contains reports whether hash h falls inside the arc.
func (m MovedRange) Contains(h uint64) bool {
	if m.Lo < m.Hi {
		return h > m.Lo && h <= m.Hi
	}
	return h > m.Lo || h <= m.Hi
}

// DiffRings computes the keyspace a resize moves: the arcs of the hash
// circle whose owner under newRing differs from their owner under
// oldRing, with adjacent same-(From,To) arcs merged. The construction
// walks the sorted union of both rings' points — between two adjacent
// union points no point of either ring intervenes, so each ring's owner
// is constant across the arc and one probe per arc suffices. At most one
// returned range wraps through zero; together the ranges are disjoint
// and tile exactly the moved keyspace, so routing can answer "is this
// user migrating" with one range lookup.
func DiffRings(oldRing, newRing *Ring) []MovedRange {
	if oldRing == nil || newRing == nil || len(oldRing.points) == 0 || len(newRing.points) == 0 {
		return nil
	}
	union := make([]uint64, 0, len(oldRing.points)+len(newRing.points))
	for _, p := range oldRing.points {
		union = append(union, p.hash)
	}
	for _, p := range newRing.points {
		union = append(union, p.hash)
	}
	sort.Slice(union, func(i, j int) bool { return union[i] < union[j] })
	// Dedup: coincident points produce empty arcs.
	uniq := union[:0]
	for i, h := range union {
		if i == 0 || h != uniq[len(uniq)-1] {
			uniq = append(uniq, h)
		}
	}
	union = uniq

	var out []MovedRange
	for i, hi := range union {
		lo := union[(i+len(union)-1)%len(union)] // wraps for i == 0
		from, _ := oldRing.OwnerOfHash(hi)
		to, _ := newRing.OwnerOfHash(hi)
		if from == to {
			continue
		}
		// Merge with the previous range when the arcs are adjacent and
		// move between the same pair — but never into a full circle,
		// which Lo == Hi could not represent unambiguously.
		if n := len(out); n > 0 && out[n-1].Hi == lo &&
			out[n-1].From == from && out[n-1].To == to && n > 1 {
			out[n-1].Hi = hi
			continue
		}
		out = append(out, MovedRange{Lo: lo, Hi: hi, From: from, To: to})
	}
	// The wrap arc (built from i == 0) sits first; if the last range is
	// adjacent to it across zero and moves between the same pair, merge
	// them so the tiling has no artificial seam at the origin.
	if n := len(out); n > 2 && out[n-1].Hi == out[0].Lo &&
		out[n-1].From == out[0].From && out[n-1].To == out[0].To {
		out[n-1].Hi = out[0].Hi
		out = out[1:]
	}
	return out
}

// Nodes returns the sorted member set.
func (r *Ring) Nodes() []string {
	return append([]string(nil), r.nodes...)
}

// Len returns the member count.
func (r *Ring) Len() int { return len(r.nodes) }

// Equal reports whether the ring spans exactly the given node set.
func (r *Ring) Equal(nodes []string) bool {
	if len(nodes) != len(r.nodes) {
		return false
	}
	sorted := append([]string(nil), nodes...)
	sort.Strings(sorted)
	for i, n := range sorted {
		if r.nodes[i] != n {
			return false
		}
	}
	return true
}

// Spread counts, over users [0, n), how many keys each member owns —
// the placement-evenness diagnostic behind the vnode default and the
// ring tests.
func (r *Ring) Spread(n int) map[string]int {
	out := make(map[string]int, len(r.nodes))
	for u := 0; u < n; u++ {
		if node, ok := r.Owner(u); ok {
			out[node]++
		}
	}
	return out
}
