package core

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteText emits the central embeddings in the word2vec text format:
// a "count dim" header line followed by one "host v1 v2 ... vd" line per
// vocabulary entry, in vocabulary (frequency) order. The output loads
// directly into gensim's KeyedVectors.load_word2vec_format.
func (m *Model) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%d %d\n", m.vocab.Len(), m.dim); err != nil {
		return fmt.Errorf("core: writing text header: %w", err)
	}
	for id := 0; id < m.vocab.Len(); id++ {
		if _, err := bw.WriteString(m.vocab.Host(id)); err != nil {
			return fmt.Errorf("core: writing text row: %w", err)
		}
		vec := m.in[id*m.dim : id*m.dim+m.dim]
		for _, x := range vec {
			bw.WriteByte(' ')
			bw.Write(strconv.AppendFloat(nil, x, 'g', 9, 64))
		}
		if err := bw.WriteByte('\n'); err != nil {
			return fmt.Errorf("core: writing text row: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("core: flushing text: %w", err)
	}
	return nil
}

// ReadText parses embeddings in word2vec text format into a Model. Corpus
// frequencies are unavailable in this format, so every count is 1 and the
// model is suitable for similarity queries and profiling, not for resumed
// training.
func ReadText(r io.Reader) (*Model, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
	if !sc.Scan() {
		return nil, fmt.Errorf("core: empty text model: %w", io.ErrUnexpectedEOF)
	}
	header := strings.Fields(sc.Text())
	if len(header) != 2 {
		return nil, fmt.Errorf("core: bad text header %q", sc.Text())
	}
	n, err := strconv.Atoi(header[0])
	if err != nil || n < 0 {
		return nil, fmt.Errorf("core: bad vocab size %q", header[0])
	}
	dim, err := strconv.Atoi(header[1])
	if err != nil || dim <= 0 {
		return nil, fmt.Errorf("core: bad dimensionality %q", header[1])
	}
	v := &Vocab{index: make(map[string]int, n)}
	in := make([]float64, 0, n*dim)
	row := 0
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != dim+1 {
			return nil, fmt.Errorf("core: row %d has %d fields, want %d", row, len(fields), dim+1)
		}
		host := fields[0]
		if _, dup := v.index[host]; dup {
			return nil, fmt.Errorf("core: duplicate host %q at row %d", host, row)
		}
		v.index[host] = row
		v.hosts = append(v.hosts, host)
		v.counts = append(v.counts, 1)
		v.total++
		for _, f := range fields[1:] {
			x, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("core: row %d: %w", row, err)
			}
			in = append(in, x)
		}
		row++
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("core: reading text model: %w", err)
	}
	if row != n {
		return nil, fmt.Errorf("core: header promises %d rows, got %d", n, row)
	}
	return &Model{
		vocab: v,
		dim:   dim,
		in:    in,
		out:   make([]float64, len(in)),
	}, nil
}
