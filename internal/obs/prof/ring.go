package prof

import (
	"sync"
	"time"
)

// A Capture is one retained profile: pprof-gzip bytes plus the metadata
// needed to find it again (what kind, when, why, and — for
// slow-request triggers — which trace it explains).
type Capture struct {
	// ID is the ring-assigned handle, monotonically increasing; the
	// download URL is /debug/prof/<id>.
	ID uint64 `json:"id"`
	// Kind is the profile name: "cpu", "heap", "allocs", "mutex",
	// "block" or "goroutine".
	Kind string `json:"kind"`
	// Reason is "interval" for background captures and "slow-request"
	// for trigger captures.
	Reason string `json:"reason"`
	// TraceID links a slow-request capture to its /debug/traces entry;
	// empty for interval captures.
	TraceID string `json:"trace_id,omitempty"`
	// UnixNano is the capture completion time.
	UnixNano int64 `json:"unix_nano"`
	// Bytes is the gzipped pprof protobuf, as written by
	// runtime/pprof. Omitted from ring listings; served on download.
	Bytes []byte `json:"-"`
	// Size mirrors len(Bytes) for listings.
	Size int `json:"size"`
}

// A Ring is the bounded in-memory capture store: oldest-evicted, capped
// both by entry count and by total profile bytes, so an always-on
// profiler has a hard memory ceiling however large individual captures
// get. All methods are safe for concurrent use and on a nil receiver.
type Ring struct {
	mu       sync.Mutex
	maxCount int
	maxBytes int64
	total    int64
	nextID   uint64
	items    []*Capture // oldest first
}

// NewRing builds a ring holding at most maxCount captures and maxBytes
// total profile bytes. Non-positive caps select the defaults (64
// captures, 32 MiB).
func NewRing(maxCount int, maxBytes int64) *Ring {
	if maxCount <= 0 {
		maxCount = 64
	}
	if maxBytes <= 0 {
		maxBytes = 32 << 20
	}
	return &Ring{maxCount: maxCount, maxBytes: maxBytes}
}

// Add stores a capture, evicting oldest entries until both caps hold,
// and returns its assigned ID. A capture larger than the byte cap on
// its own is rejected with ID 0 rather than flushing the whole ring.
// Safe on a nil receiver (returns 0).
func (r *Ring) Add(c Capture) uint64 {
	if r == nil {
		return 0
	}
	c.Size = len(c.Bytes)
	if c.UnixNano == 0 {
		c.UnixNano = time.Now().UnixNano()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if int64(c.Size) > r.maxBytes {
		return 0
	}
	for len(r.items) > 0 && (len(r.items) >= r.maxCount || r.total+int64(c.Size) > r.maxBytes) {
		r.total -= int64(r.items[0].Size)
		r.items = r.items[1:]
	}
	r.nextID++
	c.ID = r.nextID
	r.items = append(r.items, &c)
	r.total += int64(c.Size)
	return c.ID
}

// Get returns the capture with the given ID, or nil if it was evicted
// or never existed. Safe on nil.
func (r *Ring) Get(id uint64) *Capture {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.items {
		if c.ID == id {
			return c
		}
	}
	return nil
}

// ByTrace returns the retained captures tagged with the given trace ID,
// oldest first. Safe on nil.
func (r *Ring) ByTrace(traceID string) []*Capture {
	if r == nil || traceID == "" {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []*Capture
	for _, c := range r.items {
		if c.TraceID == traceID {
			out = append(out, c)
		}
	}
	return out
}

// Snapshot lists the retained captures oldest first. The *Capture
// values are shared (their Bytes are immutable after Add). Safe on
// nil.
func (r *Ring) Snapshot() []*Capture {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Capture, len(r.items))
	copy(out, r.items)
	return out
}

// Len returns the number of retained captures. Safe on nil.
func (r *Ring) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.items)
}

// Bytes returns the total retained profile bytes. Safe on nil.
func (r *Ring) Bytes() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}
