// Package index implements an exact top-k cosine-similarity index over
// dense embedding matrices — the serving-side replacement for the
// single-threaded float64 vocabulary scan in core.Model.NearestToVector.
//
// The index packs unit-normalized central embeddings into a contiguous
// float32 matrix built once per trained model, halving memory traffic on
// the scan (the paper's Eq. (3) neighbourhood query runs over every
// vocabulary row per session, so the scan is bandwidth-bound). The row
// space is partitioned into cache-sized blocks claimed by a bounded set
// of scanners — the querying goroutine plus idle helpers from a
// process-wide pool — each folding its share into a bounded top-k heap;
// the per-scanner heaps are merged at the end under a total order
// (higher score first, ties broken by ascending ID), so results are
// reproducible across runs, worker counts and block partitions.
//
// Exactness: the index performs the same brute-force scan as the serial
// reference, only in float32. A dot product of two unit vectors of
// dimension d rounded to float32 differs from its float64 value by at
// most about (d+2)·2⁻²⁴ (≈ 8e-6 at d=128), so ranks agree with the
// float64 scan except between candidates whose true cosines are within
// that bound — where both orders are equally correct answers to Eq. (3).
// The equivalence suite in internal/core pins this down.
package index

import (
	"math"
	"runtime"
	"sync"
)

// NoExclude disables row exclusion in SearchAppend.
const NoExclude int32 = -1

// Config tunes an Index. The zero value selects sensible defaults.
type Config struct {
	// Workers caps the number of concurrent scanners per query,
	// including the calling goroutine. Zero selects GOMAXPROCS. A query
	// never blocks waiting for helpers: busy helpers simply leave more
	// blocks to the caller.
	Workers int
	// BlockRows is the claim granularity of the scan in rows. Zero
	// selects a block spanning roughly 256 KiB of packed matrix,
	// clamped to [64, 8192] rows, so a block stays cache-resident while
	// a scanner folds it into its heap.
	BlockRows int
}

// Result is one query answer: a row's original ID and its cosine
// similarity to the query.
type Result struct {
	ID    int32
	Score float32
}

// Index is an immutable packed similarity index. All methods are safe
// for concurrent use; queries never mutate shared state outside their
// pooled scratch.
type Index struct {
	dim  int
	rows int
	// packed holds the unit-normalized vectors, row-major float32.
	// Zero vectors stay zero (cosine 0 against everything), matching
	// the serial reference.
	packed []float32
	// ids maps row index to original vocabulary ID; nil means identity
	// (full-vocabulary index). Subset views keep ids sorted ascending
	// so the row-order tie-break equals the ID tie-break.
	ids []int32

	blockRows int
	blocks    int
	workers   int

	states sync.Pool // *queryState
}

// New builds an index over a row-major float64 matrix of rows×dim
// central embeddings. The matrix is copied and normalized; the source is
// not retained.
func New(vecs []float64, rows, dim int, cfg Config) *Index {
	if rows < 0 || dim <= 0 || len(vecs) < rows*dim {
		panic("index: matrix shorter than rows*dim")
	}
	ix := &Index{dim: dim, rows: rows, packed: make([]float32, rows*dim)}
	for r := 0; r < rows; r++ {
		src := vecs[r*dim : r*dim+dim]
		var norm float64
		for _, x := range src {
			norm += x * x
		}
		if norm == 0 || math.IsNaN(norm) || math.IsInf(norm, 0) {
			// Zero rows stay zero (cosine 0 against everything), and rows
			// with NaN/Inf components join them: their cosine is
			// undefined, the float64 serial reference already scores them
			// 0 via its rn > 0 guard, and a NaN packed value would poison
			// every heap comparison it ever takes part in.
			continue
		}
		inv := 1 / math.Sqrt(norm)
		dst := ix.packed[r*dim : r*dim+dim]
		for i, x := range src {
			dst[i] = float32(x * inv)
		}
	}
	ix.configure(cfg)
	return ix
}

// configure applies Config defaults and sizes the block partition.
func (ix *Index) configure(cfg Config) {
	ix.workers = cfg.Workers
	if ix.workers <= 0 {
		ix.workers = runtime.GOMAXPROCS(0)
	}
	ix.blockRows = cfg.BlockRows
	if ix.blockRows <= 0 {
		ix.blockRows = (256 << 10) / (4 * ix.dim)
		if ix.blockRows < 64 {
			ix.blockRows = 64
		}
		if ix.blockRows > 8192 {
			ix.blockRows = 8192
		}
	}
	ix.blocks = (ix.rows + ix.blockRows - 1) / ix.blockRows
	ix.states.New = func() any { return newQueryState(ix) }
}

// Subset returns a view restricted to the given original IDs, which must
// be sorted ascending and in range — e.g. the ontology-covered subset of
// the vocabulary for callers that only want labelled neighbours. The
// view copies the selected rows into its own packed matrix (the scan
// stays contiguous) and reports results under the original IDs.
func (ix *Index) Subset(origIDs []int) *Index {
	sub := &Index{
		dim:    ix.dim,
		rows:   len(origIDs),
		packed: make([]float32, len(origIDs)*ix.dim),
		ids:    make([]int32, len(origIDs)),
	}
	prev := -1
	for r, id := range origIDs {
		if id <= prev || id >= ix.rows {
			panic("index: subset IDs must be sorted ascending and in range")
		}
		prev = id
		sub.ids[r] = int32(id)
		copy(sub.packed[r*sub.dim:(r+1)*sub.dim], ix.packed[id*ix.dim:(id+1)*ix.dim])
	}
	sub.configure(Config{Workers: ix.workers, BlockRows: ix.blockRows})
	return sub
}

// Rows returns the number of indexed rows.
func (ix *Index) Rows() int { return ix.rows }

// Dim returns the embedding dimensionality.
func (ix *Index) Dim() int { return ix.dim }

// Blocks returns the number of scan blocks.
func (ix *Index) Blocks() int { return ix.blocks }

// Bytes returns the size of the packed matrix in bytes.
func (ix *Index) Bytes() int { return 4 * len(ix.packed) }

// Search returns the k rows most similar to query in decreasing cosine
// order (ties broken by ascending ID). It allocates the result slice;
// hot paths should use SearchAppend with a reused buffer.
func (ix *Index) Search(query []float64, k int) []Result {
	return ix.SearchAppend(nil, query, k, 0, NoExclude)
}

// SearchAppend appends the k rows most similar to query to dst and
// returns the extended slice, in decreasing cosine order with ties
// broken by ascending ID. workers caps scan parallelism for this query
// (0 selects the index default); exclude suppresses one original ID
// (NoExclude for none). A zero query has no defined neighbourhood and
// returns dst unchanged, like the serial reference.
//
// Steady state, the query allocates nothing: scratch comes from a pool
// sized on first use, and parallel scanning hands blocks to persistent
// helper goroutines rather than spawning new ones.
func (ix *Index) SearchAppend(dst []Result, query []float64, k, workers int, exclude int32) []Result {
	if k <= 0 || ix.rows == 0 {
		return dst
	}
	if len(query) != ix.dim {
		panic("index: query dimensionality mismatch")
	}
	if k > ix.rows {
		k = ix.rows
	}
	qs := ix.states.Get().(*queryState)
	if !qs.setQuery(query) {
		ix.states.Put(qs)
		return dst
	}
	qs.k = k
	qs.exclude = ix.rowOf(exclude)
	qs.next.Store(0)
	qs.slots.Store(0)
	qs.wg.Add(ix.blocks)
	epoch := qs.epoch.Add(1) // odd: query active, helpers may enter

	if w := ix.clampWorkers(workers); w > 1 {
		offerHelp(qs, epoch, w-1)
	}
	qs.scan(true)
	qs.wg.Wait()
	qs.epoch.Add(1) // even: query done, new helpers bounce
	for qs.active.Load() != 0 {
		// A helper that entered just before the epoch flip exits as soon
		// as it sees no blocks left; wait it out before touching heaps.
		runtime.Gosched()
	}
	dst = qs.merge(dst)
	ix.states.Put(qs)
	return dst
}

// clampWorkers resolves the per-query scanner budget.
func (ix *Index) clampWorkers(workers int) int {
	w := workers
	if w <= 0 {
		w = ix.workers
	}
	if w > ix.blocks {
		w = ix.blocks
	}
	if w < 1 {
		w = 1
	}
	return w
}

// rowOf maps an original ID to its row index, or -1 when absent.
func (ix *Index) rowOf(origID int32) int32 {
	if origID < 0 {
		return -1
	}
	if ix.ids == nil {
		if int(origID) >= ix.rows {
			return -1
		}
		return origID
	}
	lo, hi := 0, len(ix.ids)
	for lo < hi {
		mid := (lo + hi) / 2
		if ix.ids[mid] < origID {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(ix.ids) && ix.ids[lo] == origID {
		return int32(lo)
	}
	return -1
}

// scanBlock folds block b into heap h.
func (ix *Index) scanBlock(q []float32, b int, exclude int32, h *topk) {
	lo := b * ix.blockRows
	hi := lo + ix.blockRows
	if hi > ix.rows {
		hi = ix.rows
	}
	dim := ix.dim
	for r := lo; r < hi; r++ {
		if int32(r) == exclude {
			continue
		}
		s := dot32(q, ix.packed[r*dim:r*dim+dim])
		h.offer(entry{score: s, row: int32(r)})
	}
}

// dot32 returns the float32 inner product of two equal-length vectors,
// unrolled four-wide for instruction-level parallelism.
func dot32(a, b []float32) float32 {
	var s0, s1, s2, s3 float32
	n := len(a) &^ 3
	_ = b[len(a)-1]
	for i := 0; i < n; i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	for i := n; i < len(a); i++ {
		s0 += a[i] * b[i]
	}
	return s0 + s1 + s2 + s3
}
