package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"hostprof/internal/pcap"
	"hostprof/internal/sniffer"
	"hostprof/internal/synth"
)

// cmdGen generates a synthetic world and writes its artefacts.
func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	out := fs.String("out", "world", "output directory")
	sites := fs.Int("sites", 400, "number of first-party sites")
	users := fs.Int("users", 50, "number of users")
	days := fs.Int("days", 7, "days of browsing")
	coverage := fs.Float64("coverage", 0.106, "ontology coverage fraction")
	seed := fs.Uint64("seed", 1, "generation seed")
	channel := fs.String("channel", "mixed", "wire channel: tls, quic, dns, mixed")
	writePcap := fs.Bool("pcap", true, "also render the trace to capture.pcap")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}

	u := synth.NewUniverse(synth.UniverseConfig{Sites: *sites, Seed: *seed})
	ont := synth.BuildOntology(u, synth.OntologyConfig{Coverage: *coverage, Seed: *seed + 1})
	pop := synth.NewPopulation(u, synth.PopulationConfig{Users: *users, Days: *days, Seed: *seed + 2})
	tr := pop.Browse()

	// Trace JSONL.
	if err := writeFile(filepath.Join(*out, "trace.jsonl"), tr.WriteJSONL); err != nil {
		return err
	}
	// Ontology labels.
	if err := writeFile(filepath.Join(*out, "ontology.jsonl"), ont.WriteJSONL); err != nil {
		return err
	}
	// Blocklist in hosts-file format.
	bl := synth.BuildBlocklist(u, 1, *seed+3)
	blPath := filepath.Join(*out, "blocklist.hosts")
	f, err := os.Create(blPath)
	if err != nil {
		return err
	}
	fmt.Fprintln(f, "# synthetic tracker blocklist (adaway-style)")
	for _, hid := range u.TrackerIDs {
		fmt.Fprintf(f, "127.0.0.1 %s\n", u.Hosts[hid].Name)
	}
	if err := f.Close(); err != nil {
		return err
	}

	if *writePcap {
		ch, err := parseChannel(*channel)
		if err != nil {
			return err
		}
		syn := sniffer.NewSynthesizer(sniffer.WireConfig{Channel: ch, Seed: *seed + 4})
		cap, err := syn.SynthesizeTrace(tr)
		if err != nil {
			return err
		}
		pf, err := os.Create(filepath.Join(*out, "capture.pcap"))
		if err != nil {
			return err
		}
		w := pcap.NewWriter(pf)
		for i, frame := range cap.Packets {
			if err := w.WriteRecord(uint32(cap.Times[i]), 0, frame); err != nil {
				pf.Close()
				return err
			}
		}
		if err := pf.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %d packets to capture.pcap\n", cap.Len())
	}

	fmt.Printf("world: %d hosts (%d sites), %d users, %d days\n",
		len(u.Hosts), len(u.Sites), *users, *days)
	fmt.Printf("trace: %d visits; ontology: %d labelled hosts; blocklist: %d entries\n",
		tr.Len(), ont.Len(), bl.Len())
	fmt.Printf("artefacts in %s/\n", *out)
	return nil
}

func writeFile(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func parseChannel(s string) (sniffer.Channel, error) {
	switch s {
	case "tls":
		return sniffer.ChannelTLS, nil
	case "quic":
		return sniffer.ChannelQUIC, nil
	case "dns":
		return sniffer.ChannelDNS, nil
	case "mixed":
		return sniffer.ChannelMixed, nil
	default:
		return 0, fmt.Errorf("unknown channel %q", s)
	}
}
