package hostprof

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hostprof/internal/fault"
)

// trainedPipeline builds a pipeline with a seeded store and the given
// extra config mutation.
func retrainFixture(t *testing.T, mutate func(*PipelineConfig)) *Pipeline {
	t.Helper()
	_, ont, tr, _ := buildWorld(t)
	cfg := PipelineConfig{
		Ontology: ont,
		Train:    TrainConfig{Dim: 16, Epochs: 4, MinCount: 2, Workers: 1, Seed: 3, Subsample: -1},
	}
	if mutate != nil {
		mutate(&cfg)
	}
	p, err := NewPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range tr.Visits() {
		p.IngestVisit(v)
	}
	return p
}

func TestPipelineRetrainContextCancelled(t *testing.T) {
	p := retrainFixture(t, nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	err := p.RetrainContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("retrain with cancelled ctx = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancelled retrain took %v, want prompt return", elapsed)
	}
	if p.Ready() {
		t.Fatal("cancelled retrain installed a model")
	}
}

func TestPipelineRetrainTimeout(t *testing.T) {
	t.Cleanup(fault.Reset)
	p := retrainFixture(t, func(cfg *PipelineConfig) {
		cfg.RetrainTimeout = 30 * time.Millisecond
	})
	fault.Set(fault.TrainEpoch, fault.Latency(200*time.Millisecond))
	if err := p.Retrain(); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("retrain past deadline = %v, want context.DeadlineExceeded", err)
	}
	if p.Ready() {
		t.Fatal("timed-out retrain installed a model")
	}
}

// TestPipelineRetrainCoalesces: overlapping Retrain calls share one
// training run instead of fitting two models over the same corpus.
func TestPipelineRetrainCoalesces(t *testing.T) {
	t.Cleanup(fault.Reset)
	var starts atomic.Int64
	p := retrainFixture(t, func(cfg *PipelineConfig) {
		cfg.Train.Progress = func(e EpochStats) {
			if e.Epoch == 0 {
				starts.Add(1)
			}
		}
	})
	fault.Set(fault.TrainEpoch, fault.Latency(100*time.Millisecond))

	if p.RetrainRunning() {
		t.Fatal("retrain reported in flight before any call")
	}
	var wg sync.WaitGroup
	errs := make([]error, 2)
	wg.Add(1)
	go func() { defer wg.Done(); errs[0] = p.Retrain() }()
	// Fire the joiner only once the first run is provably inside Train.
	deadline := time.Now().Add(5 * time.Second)
	for fault.Hits(fault.TrainEpoch) == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if !p.RetrainRunning() {
		t.Fatal("RetrainRunning false while training is in flight")
	}
	wg.Add(1)
	go func() { defer wg.Done(); errs[1] = p.Retrain() }()
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("retrain %d: %v", i, err)
		}
	}
	if n := starts.Load(); n != 1 {
		t.Fatalf("training ran %d times for two overlapping calls, want 1", n)
	}
	if !p.Ready() {
		t.Fatal("pipeline not ready after coalesced retrain")
	}
}
