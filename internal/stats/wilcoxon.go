package stats

import (
	"errors"
	"math"
	"sort"
)

// WilcoxonResult reports the two-sided Wilcoxon signed-rank test (normal
// approximation with tie correction), the distribution-free counterpart
// of the paired t-test the paper uses in Section 6.4.
type WilcoxonResult struct {
	// W is the sum of ranks of positive differences (a - b).
	W float64
	// N is the number of non-zero differences used.
	N int
	// Z is the normal approximation statistic.
	Z float64
	// P is the two-sided p-value.
	P float64
}

// ErrWilcoxon is returned when the test is undefined for the inputs.
var ErrWilcoxon = errors.New("stats: Wilcoxon undefined for input")

// WilcoxonSignedRank tests whether the paired samples a and b differ in
// location. Zero differences are dropped (Wilcoxon's original
// treatment); ties among |differences| receive average ranks with the
// usual variance correction.
func WilcoxonSignedRank(a, b []float64) (WilcoxonResult, error) {
	if len(a) != len(b) {
		return WilcoxonResult{}, errors.Join(ErrWilcoxon, errors.New("length mismatch"))
	}
	type dr struct {
		abs float64
		pos bool
	}
	var ds []dr
	for i := range a {
		d := a[i] - b[i]
		if d == 0 {
			continue
		}
		ds = append(ds, dr{math.Abs(d), d > 0})
	}
	n := len(ds)
	if n < 2 {
		if n == 0 {
			// All pairs tied: no evidence of difference.
			return WilcoxonResult{W: 0, N: 0, Z: 0, P: 1}, nil
		}
		return WilcoxonResult{}, errors.Join(ErrWilcoxon, errors.New("too few non-zero differences"))
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i].abs < ds[j].abs })

	var wPlus float64
	var tieTerm float64
	for i := 0; i < n; {
		j := i
		for j < n && ds[j].abs == ds[i].abs {
			j++
		}
		avg := float64(i+j+1) / 2
		for k := i; k < j; k++ {
			if ds[k].pos {
				wPlus += avg
			}
		}
		t := float64(j - i)
		tieTerm += t*t*t - t
		i = j
	}
	nf := float64(n)
	mu := nf * (nf + 1) / 4
	sigma2 := nf*(nf+1)*(2*nf+1)/24 - tieTerm/48
	if sigma2 <= 0 {
		return WilcoxonResult{W: wPlus, N: n, Z: 0, P: 1}, nil
	}
	diff := wPlus - mu
	switch {
	case diff > 0.5:
		diff -= 0.5
	case diff < -0.5:
		diff += 0.5
	default:
		diff = 0
	}
	z := diff / math.Sqrt(sigma2)
	p := 2 * normalSF(math.Abs(z))
	if p > 1 {
		p = 1
	}
	return WilcoxonResult{W: wPlus, N: n, Z: z, P: p}, nil
}

// Significant reports whether the two-sided p-value falls below alpha.
func (r WilcoxonResult) Significant(alpha float64) bool { return r.P < alpha }
