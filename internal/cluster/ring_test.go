package cluster

import (
	"fmt"
	"testing"
)

// TestRingDeterministicPlacement: placement is a pure function of the
// member set — node order, ring instance, and process must not matter,
// or gateways would disagree on owners.
func TestRingDeterministicPlacement(t *testing.T) {
	a, err := NewRing([]string{"http://s1", "http://s2", "http://s3"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing([]string{"http://s3", "http://s1", "http://s2"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 10_000; u++ {
		oa, ok := a.Owner(u)
		ob, _ := b.Owner(u)
		if !ok || oa != ob {
			t.Fatalf("user %d: owner %q vs %q (ok=%v)", u, oa, ob, ok)
		}
	}
	if !a.Equal([]string{"http://s2", "http://s3", "http://s1"}) {
		t.Fatal("Equal rejects the same set in a different order")
	}
	if a.Equal([]string{"http://s1", "http://s2"}) {
		t.Fatal("Equal accepts a subset")
	}
}

// TestRingSpread: with the default vnode count, no shard's share of a
// 30k-user keyspace strays badly from uniform.
func TestRingSpread(t *testing.T) {
	nodes := []string{"http://s1", "http://s2", "http://s3"}
	r, err := NewRing(nodes, DefaultVirtualNodes)
	if err != nil {
		t.Fatal(err)
	}
	const users = 30_000
	spread := r.Spread(users)
	total := 0
	for _, n := range nodes {
		got := spread[n]
		total += got
		share := float64(got) / users
		if share < 0.15 || share > 0.55 {
			t.Errorf("%s owns %.1f%% of the keyspace; want roughly 33%%", n, share*100)
		}
	}
	if total != users {
		t.Fatalf("owners for %d of %d users", total, users)
	}
}

// TestRingStabilityOnMembershipChange is the consistent-hashing
// contract: removing a node moves exactly that node's keys (every
// other key keeps its owner), and adding a node steals only about
// 1/(n+1) of the keyspace.
func TestRingStabilityOnMembershipChange(t *testing.T) {
	three := []string{"http://s1", "http://s2", "http://s3"}
	r3, err := NewRing(three, 0)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewRing(three[:2], 0)
	if err != nil {
		t.Fatal(err)
	}
	const users = 20_000
	for u := 0; u < users; u++ {
		before, _ := r3.Owner(u)
		after, _ := r2.Owner(u)
		if before != "http://s3" && after != before {
			t.Fatalf("user %d moved %s → %s although its owner survived", u, before, after)
		}
	}

	r4, err := NewRing(append([]string{"http://s4"}, three...), 0)
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for u := 0; u < users; u++ {
		before, _ := r3.Owner(u)
		after, _ := r4.Owner(u)
		if after != before {
			if after != "http://s4" {
				t.Fatalf("user %d moved %s → %s, not to the new node", u, before, after)
			}
			moved++
		}
	}
	// Ideal is 25%; vnode granularity wobbles it. Well under half the
	// keyspace must stay put for "consistent" to mean anything.
	if frac := float64(moved) / users; frac < 0.10 || frac > 0.45 {
		t.Fatalf("adding a 4th node moved %.1f%% of keys; want ~25%%", frac*100)
	}
}

// TestRingValidation: duplicate or empty names fail construction, and
// an empty ring owns nothing rather than panicking.
func TestRingValidation(t *testing.T) {
	if _, err := NewRing([]string{"a", "a"}, 0); err == nil {
		t.Fatal("duplicate node accepted")
	}
	if _, err := NewRing([]string{"a", ""}, 0); err == nil {
		t.Fatal("empty node name accepted")
	}
	empty, err := NewRing(nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if owner, ok := empty.Owner(1); ok || owner != "" {
		t.Fatalf("empty ring returned owner %q", owner)
	}
}

func BenchmarkRingOwner(b *testing.B) {
	nodes := make([]string, 16)
	for i := range nodes {
		nodes[i] = fmt.Sprintf("http://shard-%d", i)
	}
	r, err := NewRing(nodes, DefaultVirtualNodes)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := r.Owner(i); !ok {
			b.Fatal("no owner")
		}
	}
}
