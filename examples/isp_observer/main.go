// isp_observer demonstrates the full network-observer story of the
// paper: a synthetic population browses a synthetic web; their visits are
// rendered to real packet bytes (TCP/TLS ClientHello, QUIC v1 Initials,
// DNS queries); an on-path observer reconstructs per-user hostname
// sequences from the wire, trains hostname embeddings and profiles every
// user — without ever seeing a URL or a payload byte.
package main

import (
	"fmt"
	"log"
	"sort"

	"hostprof"
	"hostprof/internal/sniffer"
	"hostprof/internal/synth"
)

func main() {
	// ---- The world the observer cannot see directly -----------------
	universe := synth.NewUniverse(synth.UniverseConfig{Sites: 120, Trackers: 20, Seed: 1})
	ontology := synth.BuildOntology(universe, synth.OntologyConfig{Coverage: 0.15, Seed: 2})
	population := synth.NewPopulation(universe, synth.PopulationConfig{
		Users: 10, Days: 3, Seed: 3,
	})
	browsing := population.Browse()

	// Render browsing to the wire: 70% TLS, 20% QUIC, 10% DNS.
	wire := sniffer.NewSynthesizer(sniffer.WireConfig{Channel: sniffer.ChannelMixed, Seed: 4})
	capture, err := wire.SynthesizeTrace(browsing)
	if err != nil {
		log.Fatalf("synthesizing packets: %v", err)
	}
	fmt.Printf("wire: %d packets for %d hostname requests\n", capture.Len(), browsing.Len())

	// ---- What the on-path observer does ------------------------------
	blocklist := synth.BuildBlocklist(universe, 1, 5)
	pipe, err := hostprof.NewPipeline(hostprof.PipelineConfig{
		Ontology:  ontology,
		Blocklist: blocklist,
		Train: hostprof.TrainConfig{
			Dim: 24, Epochs: 8, MinCount: 2, Workers: 1, Seed: 6, Subsample: -1,
		},
		Profile: hostprof.ProfilerConfig{N: 80, Agg: hostprof.AggIDF},
	})
	if err != nil {
		log.Fatalf("pipeline: %v", err)
	}

	for i, frame := range capture.Packets {
		pipe.Ingest(frame, capture.Times[i])
	}
	st := pipe.ObserverStats()
	fmt.Printf("observer: %d pkts → %d TLS + %d QUIC + %d DNS hostname leaks\n",
		st.Packets, st.TLSVisits, st.QUICVisits, st.DNSVisits)

	if err := pipe.Retrain(); err != nil {
		log.Fatalf("training: %v", err)
	}
	fmt.Printf("embedding: %d hostnames, %d dims\n",
		pipe.Model().Vocab().Len(), pipe.Model().Dim())

	// Profile each user at their last active moment and compare the top
	// inferred topic with the user's (hidden) ground-truth interests.
	tax := ontology.Taxonomy()
	lastSeen := make(map[int]int64)
	for _, v := range pipe.Trace().Visits() {
		lastSeen[v.User] = v.Time
	}
	hits := 0
	profiled := 0
	for _, user := range population.Users {
		now := lastSeen[user.ID]
		prof, err := pipe.ProfileUser(user.ID, now)
		if err != nil {
			continue
		}
		profiled++
		top := argmax(prof.TopLevel(tax))

		// Ground truth for this window: the topics of the sites the
		// user actually browsed in it (a session profiler is judged
		// against the session, not lifetime interests).
		var sessionTopics []int
		for _, host := range pipe.Trace().Session(user.ID, now, 20*60) {
			if h, ok := universe.HostByName(host); ok {
				if site := universe.SiteOfHost(h.ID); site != nil {
					sessionTopics = append(sessionTopics, site.Top)
				}
			}
		}
		match := contains(sessionTopics, top)
		if match {
			hits++
		}
		fmt.Printf("user %2d: inferred %-28q session topics %v match=%v\n",
			user.ID, tax.TopName(top), names(tax, dedup(sessionTopics)), match)
	}
	fmt.Printf("=> inferred top topic matches the browsed session for %d/%d users\n", hits, profiled)
}

func dedup(xs []int) []int {
	seen := map[int]bool{}
	var out []int
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}

func argmax(xs []float64) int {
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
	}
	return best
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

func names(tax *hostprof.Taxonomy, ids []int) []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = tax.TopName(id)
	}
	sort.Strings(out)
	return out
}
