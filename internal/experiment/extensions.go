package experiment

import (
	"fmt"

	"hostprof/internal/core"
	"hostprof/internal/ontology"
	"hostprof/internal/sniffer"
)

// ExtResult is the outcome of a Section 7.2 extension experiment: the
// observer consumed traffic under some degraded condition (ECH, NAT) and
// we measure how often a profiled user's dominant inferred topic matches
// the topics they actually browsed in the profiled window.
type ExtResult struct {
	// Profiled is the number of users (or NAT households) profiled.
	Profiled int
	// Matches is how many profiles hit a browsed topic.
	Matches int
	// FallbackShare is the fraction of observed visits that were
	// destination-IP fallbacks rather than readable hostnames.
	FallbackShare float64
	// ObservedVisits is the size of the observer's reconstruction.
	ObservedVisits int
}

// MatchRate returns Matches/Profiled (0 when nothing was profiled).
func (r ExtResult) MatchRate() float64 {
	if r.Profiled == 0 {
		return 0
	}
	return float64(r.Matches) / float64(r.Profiled)
}

// ExtConfig drives an extension run.
type ExtConfig struct {
	// Wire configures the traffic degradation under test.
	Wire sniffer.WireConfig
	// ResolveIPs augments the ontology with destination-IP labels for
	// every labelled hostname, modelling an observer that resolves the
	// labelled hostnames offline and recognizes their server addresses
	// (needed once SNI disappears under ECH).
	ResolveIPs bool
	// TrainEpochs overrides training passes (0 keeps the setup value).
	TrainEpochs int
	Seed        uint64
}

// RunExtension replays the end-to-end observer pipeline under cfg against
// the world of s: render the browsing trace to packets, observe it (with
// IP fallback enabled), train a fresh embedding on the observed visits,
// and profile every wire-level user at their last active moment.
func RunExtension(s *Setup, cfg ExtConfig) (ExtResult, error) {
	syn := sniffer.NewSynthesizer(cfg.Wire)
	capture, err := syn.SynthesizeTrace(s.Raw)
	if err != nil {
		return ExtResult{}, fmt.Errorf("experiment: extension wire: %w", err)
	}
	obs := sniffer.NewObserver(sniffer.ObserverConfig{IPFallback: true})
	observed := obs.ObserveAll(capture.Packets, capture.Times)
	// Blocklist filtering still applies to readable hostnames.
	observed = observed.FilterHosts(func(h string) bool { return !s.Blocklist.Contains(h) })
	if observed.Len() == 0 {
		return ExtResult{}, fmt.Errorf("experiment: observer reconstructed nothing")
	}

	res := ExtResult{ObservedVisits: observed.Len()}
	if st := obs.Stats(); st.TLSVisits+st.IPFallbacks > 0 {
		res.FallbackShare = float64(st.IPFallbacks) /
			float64(st.TLSVisits+st.QUICVisits+st.DNSVisits+st.IPFallbacks)
	}

	// The observer's ontology: the labelled hostnames, optionally plus
	// the IP pseudo-hostnames it can resolve them to.
	ont := s.Ontology
	if cfg.ResolveIPs {
		ont = ontology.New(s.Ontology.Taxonomy())
		for _, host := range s.Ontology.Hosts() {
			v, _ := s.Ontology.Lookup(host)
			ont.Add(host, v.Clone())
			// The observer resolves through the same co-hosting the
			// clients see; shared front IPs overwrite each other,
			// losing information exactly as in reality.
			ont.Add(sniffer.IPToken(hostAddr(host, cfg.Wire.CoHostIPs)), v.Clone())
		}
	}

	trainCfg := s.Config.Train
	if cfg.TrainEpochs > 0 {
		trainCfg.Epochs = cfg.TrainEpochs
	}
	trainCfg.Seed = cfg.Seed + 101
	model, err := core.Train(observed.AllSequences(), trainCfg)
	if err != nil {
		return ExtResult{}, fmt.Errorf("experiment: extension training: %w", err)
	}
	prof := core.NewProfiler(model, ont, core.ProfilerConfig{N: s.Config.ProfilerN, Agg: core.AggIDF})

	// Profile each wire user at their last visit; judge against the
	// ground-truth topics browsed (by any NATted member) in the window.
	lastSeen := make(map[int]int64)
	for _, v := range observed.Visits() {
		lastSeen[v.User] = v.Time
	}
	for _, wireUser := range observed.Users() {
		now := lastSeen[wireUser]
		session := observed.Session(wireUser, now, s.Config.SessionWindow)
		p, err := prof.ProfileSession(session)
		if err != nil {
			continue
		}
		res.Profiled++
		top := argmaxF(p.TopLevel(s.Universe.Tax))
		if top < 0 {
			continue
		}
		// Ground truth: what was actually browsed behind this wire
		// identity in the window (using the raw trace and the NAT
		// grouping).
		truth := s.groundTruthWindowTopics(wireUser, now, cfg.Wire.NATSize)
		if truth[top] {
			res.Matches++
		}
	}
	return res, nil
}

// groundTruthWindowTopics returns the set of site topics browsed in the
// session window by every real user mapped onto wireUser.
func (s *Setup) groundTruthWindowTopics(wireUser int, now int64, natSize int) map[int]bool {
	users := []int{wireUser}
	if natSize > 1 {
		users = users[:0]
		for u := wireUser; u < wireUser+natSize; u++ {
			users = append(users, u)
		}
	}
	topics := make(map[int]bool)
	for _, u := range users {
		for _, host := range s.Raw.Session(u, now, s.Config.SessionWindow) {
			if h, ok := s.Universe.HostByName(host); ok {
				if site := s.Universe.SiteOfHost(h.ID); site != nil {
					topics[site.Top] = true
				}
			}
		}
	}
	return topics
}

// hostAddr wraps the synthesizer's hostname→front-IP mapping in Packet
// address encoding.
func hostAddr(host string, coHostIPs int) [16]byte {
	v4 := sniffer.FrontAddr(host, coHostIPs)
	var a [16]byte
	copy(a[:4], v4[:])
	a[15] = 4
	return a
}

func argmaxF(xs []float64) int {
	if len(xs) == 0 {
		return -1
	}
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
	}
	return best
}
