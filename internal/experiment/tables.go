package experiment

import (
	"fmt"
)

// CoverageStats reproduces the corpus statistics of Section 4: ontology
// coverage and the fraction of contentless hostnames.
type CoverageStats struct {
	Hosts       int
	Labelled    int
	Coverage    float64
	Contentless float64
}

// TableCoverage measures the universe the way the paper measured its
// dataset.
func TableCoverage(s *Setup) CoverageStats {
	names := s.Universe.HostNames()
	return CoverageStats{
		Hosts:       len(names),
		Labelled:    s.Ontology.Len(),
		Coverage:    s.Ontology.Coverage(names),
		Contentless: s.Universe.ContentlessFraction(),
	}
}

// Rows renders the coverage statistics.
func (c CoverageStats) Rows() []Row {
	return []Row{{
		ID:    "COV",
		Name:  "Ontology coverage / contentless hosts",
		Paper: "Adwords labels 10.6% of 470K hostnames; 67% of hostnames serve no content",
		Measured: fmt.Sprintf("%d/%d hosts labelled (%.1f%%); %.0f%% contentless",
			c.Labelled, c.Hosts, 100*c.Coverage, 100*c.Contentless),
		Criterion: "coverage ~10% and a majority of hosts contentless",
		Pass:      c.Coverage > 0.05 && c.Coverage < 0.2 && c.Contentless > 0.5,
	}}
}

// TrackerStats reproduces the Section 5.4 filtering numbers.
type TrackerStats struct {
	BlockedHosts     int
	TotalConnections int
	TrackerHits      int
	Share            float64
}

// TableTrackerFilter measures blocklist impact on the raw trace.
func TableTrackerFilter(s *Setup) TrackerStats {
	st := TrackerStats{
		BlockedHosts:     s.Blocklist.Len(),
		TotalConnections: s.Raw.Len(),
	}
	for _, v := range s.Raw.Visits() {
		if s.Blocklist.Contains(v.Host) {
			st.TrackerHits++
		}
	}
	if st.TotalConnections > 0 {
		st.Share = float64(st.TrackerHits) / float64(st.TotalConnections)
	}
	return st
}

// Rows renders the tracker statistics.
func (t TrackerStats) Rows() []Row {
	return []Row{{
		ID:    "TRK",
		Name:  "Tracker filtering",
		Paper: "~3K blocklisted hostnames; 6.1M of 75M connections (8.1%) hit them",
		Measured: fmt.Sprintf("%d blocklisted hosts; %d/%d connections (%.1f%%)",
			t.BlockedHosts, t.TrackerHits, t.TotalConnections, 100*t.Share),
		Criterion: "trackers a visible minority of connections (2-40%)",
		Pass:      t.Share > 0.02 && t.Share < 0.4,
	}}
}

// AllResults bundles one complete evaluation run.
type AllResults struct {
	Fig2      DiversityResult
	Fig3      DiversityResult
	Fig4      Fig4Result
	Fig5      Fig5Result
	Campaign  CampaignResult
	Coverage  CoverageStats
	Trackers  TrackerStats
	Baselines BaselineStats
	Counters  CountermeasureResult
	Rows      []Row
}

// RunAll executes every experiment against the setup. tsneIters bounds
// the Figure 4 optimizer (0 selects 250).
func RunAll(s *Setup, tsneIters int) (*AllResults, error) {
	if tsneIters <= 0 {
		tsneIters = 250
	}
	res := &AllResults{}
	res.Fig2 = Fig2UserDiversityHostnames(s)
	res.Fig3 = Fig3UserDiversityCategories(s)
	var err error
	res.Fig4, err = Fig4TSNE(s, 0, tsneIters)
	if err != nil {
		return nil, err
	}
	res.Fig5 = Fig5ClusterPurity(s)
	res.Campaign, err = RunCampaign(s, s.Profiler, CampaignConfig{Seed: s.Config.Seed + 23})
	if err != nil {
		return nil, err
	}
	res.Coverage = TableCoverage(s)
	res.Trackers = TableTrackerFilter(s)
	res.Baselines, err = TableBaselines(s)
	if err != nil {
		return nil, err
	}
	res.Counters, err = RunCountermeasures(s)
	if err != nil {
		return nil, err
	}

	res.Rows = append(res.Rows, res.Fig2.Fig2Rows()...)
	res.Rows = append(res.Rows, res.Fig3.Fig3Rows()...)
	res.Rows = append(res.Rows, res.Fig4.Rows()...)
	res.Rows = append(res.Rows, res.Fig5.Rows()...)
	res.Rows = append(res.Rows, res.Campaign.Fig6Rows()...)
	res.Rows = append(res.Rows, res.Campaign.CTRRows()...)
	res.Rows = append(res.Rows, res.Coverage.Rows()...)
	res.Rows = append(res.Rows, res.Trackers.Rows()...)
	res.Rows = append(res.Rows, res.Baselines.Rows()...)
	res.Rows = append(res.Rows, res.Counters.Rows()...)
	return res, nil
}

// MarkdownReport renders all rows as the EXPERIMENTS.md table body.
func (a *AllResults) MarkdownReport() string {
	out := "| id | experiment | paper | measured | shape criterion | status |\n"
	out += "|---|---|---|---|---|---|\n"
	for _, r := range a.Rows {
		out += r.String() + "\n"
	}
	return out
}
