package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"hostprof/internal/obs"
	"hostprof/internal/trace"
)

func TestRecordRoundTrip(t *testing.T) {
	for _, v := range []trace.Visit{
		{User: 0, Time: 0, Host: ""},
		{User: 1, Time: 42, Host: "a.example"},
		{User: -7, Time: -1, Host: "negative.example"},
		{User: 1 << 30, Time: 1 << 40, Host: string(bytes.Repeat([]byte("x"), 300))},
	} {
		buf, err := appendRecord(nil, v)
		if err != nil {
			t.Fatalf("appendRecord(%+v): %v", v, err)
		}
		got, n, err := decodeRecord(buf)
		if err != nil {
			t.Fatalf("decodeRecord(%+v): %v", v, err)
		}
		if n != len(buf) || got != v {
			t.Fatalf("round trip: got %+v (%d bytes), want %+v (%d)", got, n, v, len(buf))
		}
	}
}

func TestRecordRejectsOversizedHost(t *testing.T) {
	v := trace.Visit{Host: string(bytes.Repeat([]byte("h"), maxRecordPayload))}
	if _, err := appendRecord(nil, v); err == nil {
		t.Fatal("oversized host accepted")
	}
}

func TestDecodeRecordErrors(t *testing.T) {
	good, _ := appendRecord(nil, trace.Visit{User: 3, Time: 9, Host: "ok.example"})

	for name, c := range map[string]struct {
		mutate func([]byte) []byte
		want   error
	}{
		"empty":          {func(b []byte) []byte { return nil }, ErrTornRecord},
		"short header":   {func(b []byte) []byte { return b[:5] }, ErrTornRecord},
		"torn payload":   {func(b []byte) []byte { return b[:len(b)-3] }, ErrTornRecord},
		"zero tail":      {func(b []byte) []byte { return make([]byte, 32) }, ErrTornRecord},
		"crc flip":       {func(b []byte) []byte { b[len(b)-1] ^= 0xff; return b }, ErrCorruptRecord},
		"header flip":    {func(b []byte) []byte { b[5] ^= 0xff; return b }, ErrCorruptRecord},
		"length too big": {func(b []byte) []byte { b[2] = 0xff; return b }, ErrCorruptRecord},
	} {
		b := c.mutate(append([]byte(nil), good...))
		if _, _, err := decodeRecord(b); !errors.Is(err, c.want) {
			t.Errorf("%s: err = %v, want %v", name, err, c.want)
		}
	}
}

// TestDecodeRecordTrailingGarbageInPayload: a payload longer than its
// varints describe must be rejected — otherwise corruption could smuggle
// bytes past the CRC boundary check.
func TestDecodeRecordTrailingGarbage(t *testing.T) {
	b, _ := appendRecord(nil, trace.Visit{User: 1, Time: 1, Host: "h"})
	// Extend payload by one byte and refresh length+CRC so only the
	// internal structure check can catch it.
	payload := append(append([]byte(nil), b[recordHeader:]...), 0xAA)
	full := make([]byte, recordHeader+len(payload))
	copy(full[recordHeader:], payload)
	putFrame(full, payload)
	if _, _, err := decodeRecord(full); !errors.Is(err, ErrCorruptRecord) {
		t.Fatalf("trailing garbage: err = %v, want ErrCorruptRecord", err)
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Config{Dir: dir, SegmentBytes: 64, Fsync: FsyncNever, Metrics: obs.NewRegistry()})
	for i := 0; i < 20; i++ {
		if err := s.Append(visit(i, int64(i), "rotate.example")); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("got %d segments, want rotation to produce several", len(segs))
	}
	if s.met.rotations.Value() == 0 {
		t.Fatal("segment_rotations_total = 0")
	}
	// All records must survive a reopen across segment boundaries.
	s.Close()
	s2 := mustOpen(t, Config{Dir: dir})
	if got := s2.Len(); got != 20 {
		t.Fatalf("reopened Len = %d, want 20", got)
	}
	if got := s2.Recovery().ReplayedRecords; got != 20 {
		t.Fatalf("ReplayedRecords = %d, want 20", got)
	}
}

func TestListSegmentsIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"wal-x.log", "snap-1.gob.tmp", "notes.txt", "wal-0000000000000003.log"} {
		if err := os.WriteFile(filepath.Join(dir, name), nil, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 || segs[0].seq != 3 {
		t.Fatalf("segments = %+v", segs)
	}
}

// putFrame rewrites the length+CRC header for payload into b.
func putFrame(b, payload []byte) {
	binary.LittleEndian.PutUint32(b, uint32(len(payload)))
	binary.LittleEndian.PutUint32(b[4:], crc32.Checksum(payload, crcTable))
}
