package index

import (
	"math"
	"math/rand"
	"reflect"
	"runtime"
	"sort"
	"sync"
	"testing"
)

// randMatrix returns a rows×dim row-major matrix with entries in
// [-1, 1), plus every index in zeroRows zeroed out.
func randMatrix(rng *rand.Rand, rows, dim int, zeroRows ...int) []float64 {
	m := make([]float64, rows*dim)
	for i := range m {
		m[i] = rng.Float64()*2 - 1
	}
	for _, r := range zeroRows {
		for i := 0; i < dim; i++ {
			m[r*dim+i] = 0
		}
	}
	return m
}

// refRank ranks every row by exact float64 cosine against query,
// descending, ties by ascending row. Zero rows and the excluded row are
// dropped, matching the index's contract.
func refRank(vecs []float64, rows, dim int, query []float64, exclude int) []Result {
	var qn float64
	for _, x := range query {
		qn += x * x
	}
	qn = math.Sqrt(qn)
	type scored struct {
		id  int
		cos float64
	}
	var all []scored
	for r := 0; r < rows; r++ {
		if r == exclude {
			continue
		}
		var dot, rn float64
		for i := 0; i < dim; i++ {
			dot += vecs[r*dim+i] * query[i]
			rn += vecs[r*dim+i] * vecs[r*dim+i]
		}
		cos := 0.0
		if rn > 0 && qn > 0 {
			cos = dot / (math.Sqrt(rn) * qn)
		}
		all = append(all, scored{r, cos})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].cos != all[j].cos {
			return all[i].cos > all[j].cos
		}
		return all[i].id < all[j].id
	})
	out := make([]Result, len(all))
	for i, s := range all {
		out[i] = Result{ID: int32(s.id), Score: float32(s.cos)}
	}
	return out
}

// assertRankEquiv checks got against the exact float64 ranking ref,
// allowing ID divergence only where the true cosines are within tol of
// each other (the float32 representation bound).
func assertRankEquiv(t *testing.T, got, ref []Result, tol float64) {
	t.Helper()
	if len(got) > len(ref) {
		t.Fatalf("got %d results, reference has %d", len(got), len(ref))
	}
	refCos := make(map[int32]float64, len(ref))
	for _, r := range ref {
		refCos[r.ID] = float64(r.Score)
	}
	for i, g := range got {
		if g.ID == ref[i].ID {
			continue
		}
		want, ok := refCos[g.ID]
		if !ok {
			t.Fatalf("rank %d: ID %d not in reference (zero row or excluded?)", i, g.ID)
		}
		if d := math.Abs(want - float64(ref[i].Score)); d > tol {
			t.Fatalf("rank %d: got ID %d (cos %g) want ID %d (cos %g), diff %g > tol %g",
				i, g.ID, want, ref[i].ID, ref[i].Score, d, tol)
		}
	}
}

const cosTol = 1e-4 // generous vs the ~(d+2)·2⁻²⁴ float32 bound

func TestSearchMatchesExactRanking(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, tc := range []struct{ rows, dim, k int }{
		{rows: 1, dim: 1, k: 1},
		{rows: 3, dim: 2, k: 5}, // k > rows
		{rows: 50, dim: 7, k: 10},
		{rows: 200, dim: 17, k: 25},
		{rows: 333, dim: 32, k: 333},
	} {
		vecs := randMatrix(rng, tc.rows, tc.dim)
		ix := New(vecs, tc.rows, tc.dim, Config{BlockRows: 64})
		q := randMatrix(rng, 1, tc.dim)
		got := ix.Search(q, tc.k)
		ref := refRank(vecs, tc.rows, tc.dim, q, -1)
		wantLen := tc.k
		if wantLen > tc.rows {
			wantLen = tc.rows
		}
		if len(got) != wantLen {
			t.Fatalf("rows=%d k=%d: got %d results, want %d", tc.rows, tc.k, len(got), wantLen)
		}
		assertRankEquiv(t, got, ref, cosTol)
	}
}

func TestSearchZeroRowsRankLast(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	vecs := randMatrix(rng, 20, 5, 3, 11)
	ix := New(vecs, 20, 5, Config{})
	got := ix.Search(randMatrix(rng, 1, 5), 20)
	if len(got) != 20 {
		t.Fatalf("got %d results, want 20", len(got))
	}
	// Zero rows score exactly 0 and must still be reported when k covers
	// the whole matrix.
	seen := map[int32]float32{}
	for _, r := range got {
		seen[r.ID] = r.Score
	}
	for _, zr := range []int32{3, 11} {
		if s, ok := seen[zr]; !ok || s != 0 {
			t.Fatalf("zero row %d: score %g, present %v; want 0, true", zr, s, ok)
		}
	}
}

func TestSearchEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	vecs := randMatrix(rng, 10, 4)
	ix := New(vecs, 10, 4, Config{})
	q := randMatrix(rng, 1, 4)

	if got := ix.Search(q, 0); got != nil {
		t.Fatalf("k=0: got %v, want nil", got)
	}
	if got := ix.Search(make([]float64, 4), 3); got != nil {
		t.Fatalf("zero query: got %v, want nil", got)
	}
	empty := New(nil, 0, 4, Config{})
	if got := empty.Search(q, 3); got != nil {
		t.Fatalf("empty index: got %v, want nil", got)
	}
	dst := []Result{{ID: 99, Score: 1}}
	out := ix.SearchAppend(dst, q, 2, 0, NoExclude)
	if len(out) != 3 || out[0] != dst[0] {
		t.Fatalf("SearchAppend must append after existing results: %v", out)
	}

	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("dim mismatch must panic")
			}
		}()
		ix.Search(make([]float64, 5), 1)
	}()
}

func TestSearchExclude(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	vecs := randMatrix(rng, 30, 6)
	ix := New(vecs, 30, 6, Config{})
	// Query with row 4 itself: the top hit would be row 4 (cosine 1);
	// excluding it must drop it everywhere.
	q := vecs[4*6 : 5*6]
	got := ix.SearchAppend(nil, q, 30, 0, 4)
	if len(got) != 29 {
		t.Fatalf("got %d results, want 29", len(got))
	}
	for _, r := range got {
		if r.ID == 4 {
			t.Fatal("excluded ID 4 present in results")
		}
	}
	ref := refRank(vecs, 30, 6, q, 4)
	assertRankEquiv(t, got, ref, cosTol)
}

func TestSearchTieBreakOnID(t *testing.T) {
	// Rows 2, 5 and 9 are identical: equal cosines must rank by
	// ascending ID regardless of block partitioning or worker count.
	rng := rand.New(rand.NewSource(11))
	dim := 8
	vecs := randMatrix(rng, 12, dim)
	for _, dup := range []int{5, 9} {
		copy(vecs[dup*dim:(dup+1)*dim], vecs[2*dim:3*dim])
	}
	ix := New(vecs, 12, dim, Config{BlockRows: 2})
	q := vecs[2*dim : 3*dim]
	for workers := 1; workers <= 6; workers++ {
		got := ix.SearchAppend(nil, q, 3, workers, NoExclude)
		ids := []int32{got[0].ID, got[1].ID, got[2].ID}
		if !reflect.DeepEqual(ids, []int32{2, 5, 9}) {
			t.Fatalf("workers=%d: tie order %v, want [2 5 9]", workers, ids)
		}
	}
}

func TestSearchDeterministicAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	rows, dim := 500, 16
	vecs := randMatrix(rng, rows, dim, 100, 200)
	ix := New(vecs, rows, dim, Config{BlockRows: 32})
	q := randMatrix(rng, 1, dim)
	want := ix.SearchAppend(nil, q, 40, 1, NoExclude)
	for workers := 2; workers <= 8; workers++ {
		for rep := 0; rep < 20; rep++ {
			got := ix.SearchAppend(nil, q, 40, workers, NoExclude)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("workers=%d rep=%d: results diverge from serial scan", workers, rep)
			}
		}
	}
}

func TestSearchConcurrentQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	rows, dim := 300, 12
	vecs := randMatrix(rng, rows, dim)
	ix := New(vecs, rows, dim, Config{BlockRows: 16})
	queries := make([][]float64, 8)
	wants := make([][]Result, len(queries))
	for i := range queries {
		queries[i] = randMatrix(rng, 1, dim)
		wants[i] = ix.SearchAppend(nil, queries[i], 15, 1, NoExclude)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < 30; rep++ {
				i := (g + rep) % len(queries)
				got := ix.SearchAppend(nil, queries[i], 15, 0, NoExclude)
				if !reflect.DeepEqual(got, wants[i]) {
					t.Errorf("goroutine %d rep %d: results diverge", g, rep)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestSubset(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	rows, dim := 40, 6
	vecs := randMatrix(rng, rows, dim)
	ix := New(vecs, rows, dim, Config{})
	keep := []int{1, 4, 7, 20, 39}
	sub := ix.Subset(keep)
	if sub.Rows() != len(keep) {
		t.Fatalf("subset rows = %d, want %d", sub.Rows(), len(keep))
	}
	q := randMatrix(rng, 1, dim)
	got := sub.Search(q, len(keep))
	if len(got) != len(keep) {
		t.Fatalf("got %d results, want %d", len(got), len(keep))
	}
	inKeep := map[int32]bool{}
	for _, id := range keep {
		inKeep[int32(id)] = true
	}
	for _, r := range got {
		if !inKeep[r.ID] {
			t.Fatalf("subset returned ID %d outside the view", r.ID)
		}
	}
	// Scores and relative order must match the full index restricted to
	// the kept IDs.
	full := ix.Search(q, rows)
	var restricted []Result
	for _, r := range full {
		if inKeep[r.ID] {
			restricted = append(restricted, r)
		}
	}
	if !reflect.DeepEqual(got, restricted) {
		t.Fatalf("subset ranking %v != restricted full ranking %v", got, restricted)
	}

	// Exclusion inside a subset maps through original IDs.
	ex := sub.SearchAppend(nil, q, len(keep), 0, 7)
	for _, r := range ex {
		if r.ID == 7 {
			t.Fatal("excluded ID 7 present in subset results")
		}
	}

	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("unsorted subset IDs must panic")
			}
		}()
		ix.Subset([]int{4, 1})
	}()
}

// TestSearchSteadyStateZeroAlloc pins the zero-allocation contract of
// the indexed hot path: after warm-up, a query with a reused result
// buffer must not allocate, even with parallel scanning engaged.
func TestSearchSteadyStateZeroAlloc(t *testing.T) {
	if raceDetectorEnabled {
		t.Skip("race detector instrumentation allocates")
	}
	if testing.Short() && runtime.GOMAXPROCS(0) < 1 {
		t.Skip("unreachable; keeps short-mode semantics explicit")
	}
	rng := rand.New(rand.NewSource(15))
	rows, dim := 2048, 24
	vecs := randMatrix(rng, rows, dim)
	ix := New(vecs, rows, dim, Config{BlockRows: 128})
	q := randMatrix(rng, 1, dim)
	var dst []Result
	for i := 0; i < 10; i++ { // warm the state pool and grow dst
		dst = ix.SearchAppend(dst[:0], q, 50, 0, NoExclude)
	}
	allocs := testing.AllocsPerRun(100, func() {
		dst = ix.SearchAppend(dst[:0], q, 50, 0, NoExclude)
	})
	if allocs != 0 {
		t.Fatalf("steady-state SearchAppend allocates %.1f times per query, want 0", allocs)
	}
}

func BenchmarkSearchAppend(b *testing.B) {
	rng := rand.New(rand.NewSource(16))
	rows, dim := 100_000, 128
	vecs := randMatrix(rng, rows, dim)
	ix := New(vecs, rows, dim, Config{})
	q := randMatrix(rng, 1, dim)
	var dst []Result
	b.ReportAllocs()
	b.SetBytes(int64(4 * rows * dim))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = ix.SearchAppend(dst[:0], q, 100, 0, NoExclude)
	}
}
