package sniffer

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestEthernetRoundTrip(t *testing.T) {
	e := Ethernet{
		Dst:       [6]byte{1, 2, 3, 4, 5, 6},
		Src:       [6]byte{7, 8, 9, 10, 11, 12},
		EtherType: EtherTypeIPv4,
	}
	payload := []byte("hello")
	wire := e.Append(nil, payload)
	var d Ethernet
	rest, err := d.Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if d != e {
		t.Fatalf("decoded %+v", d)
	}
	if !bytes.Equal(rest, payload) {
		t.Fatalf("payload %q", rest)
	}
}

func TestEthernetTruncated(t *testing.T) {
	var d Ethernet
	if _, err := d.Decode(make([]byte, 13)); !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v", err)
	}
}

func TestIPv4RoundTripAndChecksum(t *testing.T) {
	ip := IPv4{TTL: 64, Protocol: ProtoTCP, Src: [4]byte{10, 0, 0, 1}, Dst: [4]byte{93, 1, 2, 3}}
	payload := []byte("data!")
	wire := ip.Append(nil, payload)
	if !VerifyIPv4Checksum(wire) {
		t.Fatal("bad header checksum")
	}
	var d IPv4
	rest, err := d.Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if d.Src != ip.Src || d.Dst != ip.Dst || d.Protocol != ProtoTCP || d.TTL != 64 {
		t.Fatalf("decoded %+v", d)
	}
	if !bytes.Equal(rest, payload) {
		t.Fatalf("payload %q", rest)
	}
	if d.TotalLen != 25 {
		t.Fatalf("TotalLen = %d", d.TotalLen)
	}
}

func TestIPv4RejectsWrongVersion(t *testing.T) {
	wire := make([]byte, 20)
	wire[0] = 0x65 // version 6
	var d IPv4
	if _, err := d.Decode(wire); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("err = %v", err)
	}
}

func TestIPv4TrailingPaddingTrimmed(t *testing.T) {
	ip := IPv4{TTL: 64, Protocol: ProtoUDP, Src: [4]byte{1, 1, 1, 1}, Dst: [4]byte{2, 2, 2, 2}}
	wire := ip.Append(nil, []byte("abc"))
	wire = append(wire, 0, 0, 0) // Ethernet padding
	var d IPv4
	rest, err := d.Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if string(rest) != "abc" {
		t.Fatalf("payload %q, want trimmed to TotalLen", rest)
	}
}

func TestIPv6RoundTrip(t *testing.T) {
	var src, dst [16]byte
	src[0], dst[0] = 0x20, 0x20
	src[15], dst[15] = 1, 2
	ip := IPv6{NextHeader: ProtoUDP, HopLimit: 64, Src: src, Dst: dst}
	wire := ip.Append(nil, []byte("six"))
	var d IPv6
	rest, err := d.Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if d.Src != src || d.Dst != dst || d.NextHeader != ProtoUDP {
		t.Fatalf("decoded %+v", d)
	}
	if string(rest) != "six" {
		t.Fatalf("payload %q", rest)
	}
}

func TestTCPRoundTrip(t *testing.T) {
	tc := TCP{SrcPort: 40000, DstPort: 443, Seq: 7, Ack: 9, Flags: TCPFlagACK | TCPFlagPSH}
	src, dst := [4]byte{10, 0, 0, 1}, [4]byte{9, 9, 9, 9}
	wire := tc.Append(nil, src, dst, []byte("tls bytes"))
	var d TCP
	rest, err := d.Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if d.SrcPort != 40000 || d.DstPort != 443 || d.Seq != 7 || d.Ack != 9 || d.Flags != tc.Flags {
		t.Fatalf("decoded %+v", d)
	}
	if string(rest) != "tls bytes" {
		t.Fatalf("payload %q", rest)
	}
	// Verify transport checksum: recomputing over segment with the
	// checksum field in place must give 0 (complement sums to 0xffff).
	if cs := transportChecksum(src, dst, ProtoTCP, wire); cs != 0 {
		t.Fatalf("checksum verify = %#04x, want 0", cs)
	}
}

func TestUDPRoundTrip(t *testing.T) {
	u := UDP{SrcPort: 5353, DstPort: 53}
	src, dst := [4]byte{10, 0, 0, 2}, [4]byte{10, 0, 0, 53}
	wire := u.Append(nil, src, dst, []byte("query"))
	var d UDP
	rest, err := d.Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if d.SrcPort != 5353 || d.DstPort != 53 || d.Length != 13 {
		t.Fatalf("decoded %+v", d)
	}
	if string(rest) != "query" {
		t.Fatalf("payload %q", rest)
	}
	if cs := transportChecksum(src, dst, ProtoUDP, wire); cs != 0 {
		t.Fatalf("checksum verify = %#04x", cs)
	}
}

func TestDecodePacketFullStack(t *testing.T) {
	payload := []byte("application data")
	pkt := tcpFrame([4]byte{10, 1, 2, 1}, [4]byte{93, 0, 0, 1}, 50000, 443, 1, 2, TCPFlagACK, payload)
	var p Packet
	if err := DecodePacket(pkt, &p); err != nil {
		t.Fatal(err)
	}
	if p.IsV6 || p.Transport != ProtoTCP {
		t.Fatalf("stack: v6=%v proto=%d", p.IsV6, p.Transport)
	}
	if p.TCP.SrcPort != 50000 || p.TCP.DstPort != 443 {
		t.Fatalf("ports %d→%d", p.TCP.SrcPort, p.TCP.DstPort)
	}
	if !bytes.Equal(p.Payload, payload) {
		t.Fatalf("payload %q", p.Payload)
	}
	src := p.SrcAddr()
	if src[0] != 10 || src[1] != 1 || src[2] != 2 || src[15] != 4 {
		t.Fatalf("src addr %v", src)
	}
}

func TestDecodePacketIPv6UDP(t *testing.T) {
	var src6, dst6 [16]byte
	src6[0] = 0xfd
	dst6[0] = 0xfd
	dst6[15] = 9
	u := UDP{SrcPort: 1234, DstPort: 53}
	// IPv6 has no pseudo-header helper here; craft a zero-checksum UDP
	// header manually.
	seg := []byte{0x04, 0xd2, 0x00, 0x35, 0x00, 0x0b, 0x00, 0x00, 'h', 'i', '!'}
	_ = u
	ip := IPv6{NextHeader: ProtoUDP, HopLimit: 64, Src: src6, Dst: dst6}
	eth := Ethernet{EtherType: EtherTypeIPv6}
	wire := eth.Append(nil, ip.Append(nil, seg))
	var p Packet
	if err := DecodePacket(wire, &p); err != nil {
		t.Fatal(err)
	}
	if !p.IsV6 || p.Transport != ProtoUDP || p.UDP.DstPort != 53 {
		t.Fatalf("decoded %+v", p)
	}
	if string(p.Payload) != "hi!" {
		t.Fatalf("payload %q", p.Payload)
	}
	if p.SrcAddr() != src6 || p.DstAddr() != dst6 {
		t.Fatal("v6 addresses wrong")
	}
}

func TestDecodePacketUnsupported(t *testing.T) {
	eth := Ethernet{EtherType: 0x0806} // ARP
	wire := eth.Append(nil, make([]byte, 28))
	var p Packet
	if err := DecodePacket(wire, &p); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("err = %v", err)
	}
	// Unknown IP protocol.
	ip := IPv4{TTL: 1, Protocol: 47, Src: [4]byte{1, 0, 0, 1}, Dst: [4]byte{1, 0, 0, 2}}
	wire2 := frame(ip.Append(nil, []byte{1, 2, 3, 4}))
	if err := DecodePacket(wire2, &p); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("err = %v", err)
	}
}

func TestChecksumKnownVector(t *testing.T) {
	// RFC 1071 style example: header from Wikipedia's IPv4 checksum
	// article; checksum field (bytes 10-11) zeroed gives 0xb861.
	hdr := []byte{
		0x45, 0x00, 0x00, 0x73, 0x00, 0x00, 0x40, 0x00,
		0x40, 0x11, 0x00, 0x00, 0xc0, 0xa8, 0x00, 0x01,
		0xc0, 0xa8, 0x00, 0xc7,
	}
	if cs := headerChecksum(hdr); cs != 0xb861 {
		t.Fatalf("checksum = %#04x, want 0xb861", cs)
	}
}

// Property: decode(encode(x)) == x for TCP across arbitrary ports, seqs
// and payloads.
func TestTCPRoundTripQuick(t *testing.T) {
	f := func(sport, dport uint16, seq, ack uint32, payload []byte) bool {
		tc := TCP{SrcPort: sport, DstPort: dport, Seq: seq, Ack: ack, Flags: TCPFlagACK}
		wire := tc.Append(nil, [4]byte{1, 2, 3, 4}, [4]byte{5, 6, 7, 8}, payload)
		var d TCP
		rest, err := d.Decode(wire)
		if err != nil {
			return false
		}
		return d.SrcPort == sport && d.DstPort == dport && d.Seq == seq &&
			d.Ack == ack && bytes.Equal(rest, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
