package stats

import (
	"errors"
	"math"
)

// TTestResult reports the outcome of a paired two-tailed t-test.
type TTestResult struct {
	N        int     // number of pairs
	MeanDiff float64 // mean of (a - b)
	T        float64 // t statistic
	DF       float64 // degrees of freedom (n - 1)
	P        float64 // two-tailed p-value
}

// ErrTTest is returned when the test is undefined for the given inputs.
var ErrTTest = errors.New("stats: t-test undefined for input")

// PairedTTest performs the two-tailed paired Student t-test used by the
// paper (Section 6.4) to compare per-user CTR under the two ad sources.
// a and b must have equal length n >= 2. When every pairwise difference is
// zero, the result has T = 0 and P = 1.
func PairedTTest(a, b []float64) (TTestResult, error) {
	if len(a) != len(b) {
		return TTestResult{}, errors.Join(ErrTTest, errors.New("length mismatch"))
	}
	n := len(a)
	if n < 2 {
		return TTestResult{}, errors.Join(ErrTTest, errors.New("need at least 2 pairs"))
	}
	d := make([]float64, n)
	for i := range a {
		d[i] = a[i] - b[i]
	}
	md := Mean(d)
	sd := StdDev(d)
	if sd == 0 {
		if md == 0 {
			return TTestResult{N: n, MeanDiff: 0, T: 0, DF: float64(n - 1), P: 1}, nil
		}
		// Non-zero constant difference: infinitely significant.
		return TTestResult{N: n, MeanDiff: md, T: math.Inf(sign(md)), DF: float64(n - 1), P: 0}, nil
	}
	t := md / (sd / math.Sqrt(float64(n)))
	df := float64(n - 1)
	p := 2 * studentTSF(math.Abs(t), df)
	if p > 1 {
		p = 1
	}
	return TTestResult{N: n, MeanDiff: md, T: t, DF: df, P: p}, nil
}

// Significant reports whether the two-tailed p-value falls below alpha.
func (r TTestResult) Significant(alpha float64) bool { return r.P < alpha }

func sign(x float64) int {
	if x < 0 {
		return -1
	}
	return 1
}

// studentTSF returns P(T > t) for the Student t distribution with df
// degrees of freedom, t >= 0, via the regularized incomplete beta function:
// P(T > t) = I_{df/(df+t^2)}(df/2, 1/2) / 2.
func studentTSF(t, df float64) float64 {
	if math.IsInf(t, 1) {
		return 0
	}
	x := df / (df + t*t)
	return 0.5 * RegIncBeta(df/2, 0.5, x)
}

// RegIncBeta computes the regularized incomplete beta function I_x(a, b)
// using the continued-fraction expansion (Numerical Recipes betacf).
func RegIncBeta(a, b, x float64) float64 {
	switch {
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	lbeta, _ := math.Lgamma(a + b)
	la, _ := math.Lgamma(a)
	lb, _ := math.Lgamma(b)
	front := math.Exp(lbeta - la - lb + a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		return front * betacf(a, b, x) / a
	}
	return 1 - front*betacf(b, a, 1-x)/b
}

// betacf evaluates the continued fraction for the incomplete beta function
// by the modified Lentz method.
func betacf(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-14
		fpmin   = 1e-300
	)
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		m2 := float64(2 * m)
		fm := float64(m)
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}
