package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"hostprof/internal/fault"
	"hostprof/internal/stats"
)

func TestTrainContextCancelledBeforeStart(t *testing.T) {
	rng := stats.NewRNG(17)
	corpus, _, _ := topicCorpus(rng, 8, 100, 10)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	m, err := TrainContext(ctx, corpus, smallConfig())
	if m != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("TrainContext = (%v, %v), want context.Canceled", m, err)
	}
	// "Promptly" means well under one epoch of the full run.
	if d := time.Since(start); d > time.Second {
		t.Fatalf("cancelled training took %v", d)
	}
}

func TestTrainContextCancelMidTraining(t *testing.T) {
	rng := stats.NewRNG(19)
	corpus, _, _ := topicCorpus(rng, 10, 400, 12)
	cfg := smallConfig()
	cfg.Epochs = 50
	ctx, cancel := context.WithCancel(context.Background())
	epochs := 0
	cfg.Progress = func(e EpochStats) {
		epochs++
		if e.Epoch == 1 {
			cancel() // abort during the run, not before
		}
	}
	m, err := TrainContext(ctx, corpus, cfg)
	if m != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("TrainContext = (%v, %v), want context.Canceled", m, err)
	}
	if epochs >= cfg.Epochs {
		t.Fatalf("training ran all %d epochs despite cancellation", epochs)
	}
}

func TestTrainContextDeadline(t *testing.T) {
	rng := stats.NewRNG(23)
	corpus, _, _ := topicCorpus(rng, 10, 400, 12)
	cfg := smallConfig()
	cfg.Epochs = 1000
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	m, err := TrainContext(ctx, corpus, cfg)
	if m != nil || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("TrainContext = (%v, %v), want context.DeadlineExceeded", m, err)
	}
}

func TestTrainEpochFaultInjection(t *testing.T) {
	t.Cleanup(fault.Reset)
	rng := stats.NewRNG(29)
	corpus, _, _ := topicCorpus(rng, 8, 100, 10)
	boom := errors.New("injected epoch fault")
	fault.Set(fault.TrainEpoch, fault.Error(boom))
	m, err := Train(corpus, smallConfig())
	if m != nil || !errors.Is(err, boom) {
		t.Fatalf("Train = (%v, %v), want injected fault", m, err)
	}
	fault.Reset()
	if _, err := Train(corpus, smallConfig()); err != nil {
		t.Fatalf("Train after fault cleared: %v", err)
	}
}
