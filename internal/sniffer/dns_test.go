package sniffer

import (
	"errors"
	"testing"
)

func TestDNSQueryRoundTrip(t *testing.T) {
	for _, host := range []string{"example.com", "a.b.c.example", "x.io"} {
		q, err := BuildDNSQuery(host, 0x1234)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ParseDNSQueryName(q)
		if err != nil {
			t.Fatalf("%s: %v", host, err)
		}
		if got != host {
			t.Fatalf("got %q, want %q", got, host)
		}
	}
}

func TestDNSRejectsResponses(t *testing.T) {
	q, err := BuildDNSQuery("site.example", 7)
	if err != nil {
		t.Fatal(err)
	}
	q[2] |= 0x80 // QR bit
	if _, err := ParseDNSQueryName(q); !errors.Is(err, ErrNotDNSQuery) {
		t.Fatalf("err = %v", err)
	}
}

func TestDNSRejectsShortAndEmpty(t *testing.T) {
	if _, err := ParseDNSQueryName(make([]byte, 5)); !errors.Is(err, ErrNotDNSQuery) {
		t.Fatalf("err = %v", err)
	}
	// Zero questions.
	hdr := make([]byte, 12)
	if _, err := ParseDNSQueryName(hdr); !errors.Is(err, ErrNotDNSQuery) {
		t.Fatalf("err = %v", err)
	}
}

func TestDNSBadNames(t *testing.T) {
	if _, err := BuildDNSQuery("", 1); !errors.Is(err, ErrBadName) {
		t.Fatalf("err = %v", err)
	}
	long := make([]byte, 64)
	for i := range long {
		long[i] = 'a'
	}
	if _, err := BuildDNSQuery(string(long)+".example", 1); !errors.Is(err, ErrBadName) {
		t.Fatalf("err = %v", err)
	}
	if _, err := BuildDNSQuery("a..b", 1); !errors.Is(err, ErrBadName) {
		t.Fatalf("err = %v", err)
	}
}

func TestDNSNameCompressionRejected(t *testing.T) {
	q, err := BuildDNSQuery("comp.example", 9)
	if err != nil {
		t.Fatal(err)
	}
	q[12] = 0xc0 // compression pointer in QNAME
	if _, err := ParseDNSQueryName(q); !errors.Is(err, ErrBadName) {
		t.Fatalf("err = %v", err)
	}
}

func TestDNSUnterminatedName(t *testing.T) {
	q, err := BuildDNSQuery("cut.example", 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParseDNSQueryName(q[:14]); !errors.Is(err, ErrBadName) {
		t.Fatalf("err = %v", err)
	}
}
