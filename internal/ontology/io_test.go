package ontology

import (
	"bytes"
	"testing"
)

func TestOntologyJSONLRoundTrip(t *testing.T) {
	tax := NewTaxonomy()
	o := New(tax)
	v1 := tax.NewVector()
	v1[3], v1[100] = 0.8, 0.25
	o.Add("b.example", v1)
	v2 := tax.NewVector()
	v2[327] = 1
	o.Add("a.example", v2)

	var buf bytes.Buffer
	if err := o.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(tax, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Fatalf("len = %d", got.Len())
	}
	gv, ok := got.Lookup("b.example")
	if !ok || gv[3] != 0.8 || gv[100] != 0.25 {
		t.Fatalf("b.example = %v", gv.Support(0))
	}
	gv, _ = got.Lookup("a.example")
	if gv[327] != 1 {
		t.Fatal("a.example lost weight")
	}
}

func TestOntologyJSONLDeterministicOrder(t *testing.T) {
	tax := NewTaxonomy()
	o := New(tax)
	for _, h := range []string{"z.example", "a.example"} {
		v := tax.NewVector()
		v[0] = 0.5
		o.Add(h, v)
	}
	var b1, b2 bytes.Buffer
	if err := o.WriteJSONL(&b1); err != nil {
		t.Fatal(err)
	}
	if err := o.WriteJSONL(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("output not deterministic")
	}
	if bytes.Index(b1.Bytes(), []byte("a.example")) > bytes.Index(b1.Bytes(), []byte("z.example")) {
		t.Fatal("hosts not sorted")
	}
}

func TestOntologyReadJSONLErrors(t *testing.T) {
	tax := NewTaxonomy()
	if _, err := ReadJSONL(tax, bytes.NewReader([]byte("{bad\n"))); err == nil {
		t.Fatal("expected parse error")
	}
	if _, err := ReadJSONL(tax, bytes.NewReader([]byte(`{"host":"h","cats":[1],"weights":[0.5,0.6]}`+"\n"))); err == nil {
		t.Fatal("expected mismatch error")
	}
	if _, err := ReadJSONL(tax, bytes.NewReader([]byte(`{"host":"h","cats":[999],"weights":[0.5]}`+"\n"))); err == nil {
		t.Fatal("expected range error")
	}
}
