package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hostprof/internal/ads"
	"hostprof/internal/core"
	"hostprof/internal/server"
	"hostprof/internal/store"
	"hostprof/internal/synth"
)

// The cluster chaos test SIGKILLs a real shard process mid-traffic, so
// the test binary re-executes itself as shard children (the same
// pattern as the server package's WAL chaos test). TestMain dispatches
// on an env var: children serve one durable shard until killed, the
// parent runs the normal tests.
const (
	clusterChaosChildEnv = "HOSTPROF_CLUSTER_CHAOS_CHILD"
	clusterChaosDirEnv   = "HOSTPROF_CLUSTER_CHAOS_DIR"
	clusterChaosAddrEnv  = "HOSTPROF_CLUSTER_CHAOS_ADDR"
)

func TestMain(m *testing.M) {
	if os.Getenv(clusterChaosChildEnv) == "1" {
		clusterChaosChild()
		return
	}
	os.Exit(m.Run())
}

// clusterChaosChild serves one durable shard on a fixed address until
// the parent kills the process. The address is fixed (not :0) so a
// restarted shard rejoins the ring under the same name and recovers
// exactly its old keyspace.
func clusterChaosChild() {
	u := synth.NewUniverse(synth.UniverseConfig{Sites: 100, Trackers: 15, Seed: 3})
	ont := synth.BuildOntology(u, synth.OntologyConfig{Coverage: 0.2, Seed: 5})
	db := ads.BuildFromOntology(ont, ads.BuildConfig{Seed: 7})
	b, err := server.New(server.Config{
		Ontology: ont,
		AdDB:     db,
		Train:    core.TrainConfig{Dim: 16, Epochs: 2, MinCount: 1, Workers: 1, Seed: 11, Subsample: -1},
		Profile:  core.ProfilerConfig{N: 30, Agg: core.AggIDF},
		DataDir:  os.Getenv(clusterChaosDirEnv),
		Fsync:    store.FsyncAlways,
		Logger:   slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "chaos shard:", err)
		os.Exit(1)
	}
	ln, err := net.Listen("tcp", os.Getenv(clusterChaosAddrEnv))
	if err != nil {
		fmt.Fprintln(os.Stderr, "chaos shard:", err)
		os.Exit(1)
	}
	fmt.Printf("ADDR %s\n", ln.Addr())
	http.Serve(ln, b.Handler())
}

// spawnChaosShard launches one shard child on addr over dir and blocks
// until it reports itself listening.
func spawnChaosShard(t *testing.T, addr, dir string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(),
		clusterChaosChildEnv+"=1",
		clusterChaosDirEnv+"="+dir,
		clusterChaosAddrEnv+"="+addr)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cmd.Process.Kill(); cmd.Wait() })
	sc := bufio.NewScanner(stdout)
	got := ""
	for sc.Scan() {
		if rest, ok := strings.CutPrefix(sc.Text(), "ADDR "); ok {
			got = rest
			break
		}
	}
	if got == "" {
		t.Fatalf("shard child on %s never reported its address (scan err: %v)", addr, sc.Err())
	}
	go io.Copy(io.Discard, stdout)
	return cmd
}

// freeAddrs reserves n distinct loopback addresses by binding and
// releasing them. The tiny window between release and the child's bind
// is the standard fixed-port test tradeoff.
func freeAddrs(t *testing.T, n int) []string {
	t.Helper()
	out := make([]string, n)
	for i := range out {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		out[i] = ln.Addr().String()
		ln.Close()
	}
	return out
}

// TestChaosGatewayShardKillAndRecovery is the cluster's graceful-
// degradation acceptance test, run against real OS processes:
//
//  1. three durable shard processes serve behind one gateway; traffic
//     flows and one retrain converges every shard to one model version,
//  2. one shard is SIGKILLed mid-traffic — the gateway sheds exactly
//     that shard's keyspace (503 + Retry-After, or 502 in the transport
//     window) while every surviving shard's users are served without a
//     single failure, and batches degrade to partial results instead of
//     erroring,
//  3. the shard restarts on the same address over the same WAL — it
//     recovers its visits, the anti-entropy pass re-ships the model,
//     and the cluster converges again with the shed keyspace restored.
func TestChaosGatewayShardKillAndRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess chaos test skipped in -short")
	}
	addrs := freeAddrs(t, 3)
	dirs := make([]string, 3)
	urls := make([]string, 3)
	cmds := make([]*exec.Cmd, 3)
	for i := range addrs {
		dirs[i] = t.TempDir()
		urls[i] = "http://" + addrs[i]
		cmds[i] = spawnChaosShard(t, addrs[i], dirs[i])
	}

	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))
	gw, err := New(Config{
		Backends:        urls,
		HealthInterval:  -1, // tests drive probes explicitly
		ShardTimeout:    3 * time.Second,
		ShardBatchLimit: 8,
		FederationTTL:   time.Millisecond, // every scrape below sees live state
		Logger:          quiet,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()
	waitAlive := func(want int) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for {
			if got := gw.CheckHealth(context.Background()); got == want {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("cluster never reached %d alive shards: %+v", want, gw.ClusterStatus())
			}
			time.Sleep(50 * time.Millisecond)
		}
	}
	waitAlive(3)
	gwSrv := httptestServer(t, gw)

	// Seed traffic: every user reports one labelled session through the
	// gateway (503 pre-training is the ingested-but-untrained answer).
	u := synth.NewUniverse(synth.UniverseConfig{Sites: 100, Trackers: 15, Seed: 3})
	session := func(i int) []string {
		s := u.Sites[i%len(u.Sites)]
		hosts := []string{u.Hosts[s.Host].Name}
		for _, sup := range s.Support {
			hosts = append(hosts, u.Hosts[sup].Name)
		}
		return hosts
	}
	const users = 80
	for uid := 0; uid < users; uid++ {
		report(t, gwSrv, uid, session(uid), http.StatusOK, http.StatusServiceUnavailable)
	}

	// Cluster retrain: designated shard trains, everyone converges.
	resp, err := http.Post(gwSrv+"/v1/retrain", "application/json", bytes.NewReader([]byte("{}")))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("retrain → %d: %s", resp.StatusCode, raw)
	}
	var trained RetrainResponse
	if err := json.Unmarshal(raw, &trained); err != nil || trained.Version == "" || trained.Partial {
		t.Fatalf("retrain response %s (err %v)", raw, err)
	}
	waitAlive(3)
	if st := gw.ClusterStatus(); !st.Converged || st.ModelVersion != trained.Version {
		t.Fatalf("cluster not converged after retrain: %+v", st)
	}

	// Prime the federated view while all three shards answer, so the
	// victim has a last-good snapshot to degrade to after the kill.
	var cmBefore ClusterMetrics
	getJSON(t, gwSrv+"/v1/cluster/metrics", &cmBefore)
	for _, s := range cmBefore.Shards {
		if s.Status != "ok" {
			t.Fatalf("pre-kill federation not healthy: %+v", cmBefore.Shards)
		}
	}
	var evBefore struct {
		Events []Event `json:"events"`
		LastID int64   `json:"last_id"`
	}
	getJSON(t, gwSrv+"/v1/cluster/events", &evBefore)

	// Hammer the gateway from 4 workers while the kill lands. Users on
	// surviving shards must never see a failure; users on the victim
	// may see 502 (transport window) or 503 (shed).
	victim := urls[1]
	var survivorFails, victimRefusals atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	client := &http.Client{Timeout: 5 * time.Second}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				uid := (w*striders + i) % users
				owner, _ := gw.Ring().Owner(uid)
				body, _ := json.Marshal(server.ReportRequest{User: uid, Time: int64(1_000_000 + i), Hosts: session(uid)})
				resp, err := client.Post(gwSrv+"/v1/report", "application/json", bytes.NewReader(body))
				if err != nil {
					survivorFails.Add(1) // gateway itself must never drop
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				switch {
				case resp.StatusCode == http.StatusOK:
				case owner == victim &&
					(resp.StatusCode == http.StatusBadGateway || resp.StatusCode == http.StatusServiceUnavailable):
					victimRefusals.Add(1)
				default:
					t.Errorf("user %d (owner %s): HTTP %d during outage", uid, owner, resp.StatusCode)
					survivorFails.Add(1)
				}
			}
		}(w)
	}

	time.Sleep(150 * time.Millisecond) // traffic flowing against 3 healthy shards
	if err := cmds[1].Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmds[1].Wait()
	time.Sleep(500 * time.Millisecond) // mid-traffic outage window
	close(stop)
	wg.Wait()
	if survivorFails.Load() > 0 {
		t.Fatalf("%d requests for surviving shards failed during the outage", survivorFails.Load())
	}
	if victimRefusals.Load() == 0 {
		t.Fatal("no request ever hit the victim's keyspace; outage not exercised")
	}

	// The gateway saw the failure in-band; batches degrade, not die.
	waitAlive(2)
	if st := gw.ClusterStatus(); st.AliveShards != 2 {
		t.Fatalf("alive = %d after SIGKILL, want 2", st.AliveShards)
	}

	// Mid-outage observability: federation degrades the victim to its
	// last-good (stale) snapshot while the survivors scrape ok, and the
	// timeline records the liveness flap with a timestamp.
	var cmDuring ClusterMetrics
	getJSON(t, gwSrv+"/v1/cluster/metrics", &cmDuring)
	okShards := 0
	for _, s := range cmDuring.Shards {
		switch {
		case s.Backend == victim:
			if s.Status != "stale" || s.Error == "" {
				t.Fatalf("killed shard scraped as %q (err %q), want stale with error", s.Status, s.Error)
			}
		case s.Status == "ok":
			okShards++
		}
	}
	if okShards != 2 {
		t.Fatalf("federation sees %d healthy shards mid-outage, want 2: %+v", okShards, cmDuring.Shards)
	}
	if len(cmDuring.Metrics) == 0 {
		t.Fatal("federated view emptied out mid-outage")
	}
	var evDuring struct {
		Events []Event `json:"events"`
		LastID int64   `json:"last_id"`
	}
	getJSON(t, gwSrv+"/v1/cluster/events?since="+itoa(evBefore.LastID), &evDuring)
	sawDown := false
	for _, e := range evDuring.Events {
		if e.Type == EventShardDown && e.Shard == victim {
			if e.UnixNano <= 0 {
				t.Fatalf("shard_down event missing its timestamp: %+v", e)
			}
			sawDown = true
		}
	}
	if !sawDown {
		t.Fatalf("timeline recorded no shard_down for %s during the outage: %+v", victim, evDuring.Events)
	}
	var batch server.ProfileBatchResponse
	sessions := make([][]string, 24)
	for i := range sessions {
		sessions[i] = session(i)
	}
	body, _ := json.Marshal(server.ProfileBatchRequest{Sessions: sessions})
	resp, err = http.Post(gwSrv+"/v1/profile/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch with 2/3 shards → %d: %s", resp.StatusCode, raw)
	}
	if err := json.Unmarshal(raw, &batch); err != nil || len(batch.Profiles) != 24 {
		t.Fatalf("batch over survivors: %v (%d profiles)", err, len(batch.Profiles))
	}

	// Restart the victim on the same address over the same WAL: it
	// recovers its keyspace's visits, anti-entropy re-ships the model,
	// and the cluster converges again.
	cmds[1] = spawnChaosShard(t, addrs[1], dirs[1])
	waitAlive(3)
	gw.SyncModels(context.Background())
	waitAlive(3)
	st := gw.ClusterStatus()
	if !st.Converged || st.ModelVersion != trained.Version || st.ReadyShards != 3 {
		t.Fatalf("cluster did not reconverge after restart: %+v", st)
	}
	restarted := gw.shardSnapshot(victim)
	if restarted.visits == 0 {
		t.Fatal("restarted shard recovered no visits from its WAL")
	}
	// The shed keyspace serves again.
	served := 0
	for uid := 0; uid < users; uid++ {
		if owner, _ := gw.Ring().Owner(uid); owner != victim {
			continue
		}
		report(t, gwSrv, uid, session(uid), http.StatusOK)
		served++
	}
	if served == 0 {
		t.Fatal("victim owned no users; test world degenerate")
	}
	t.Logf("victim refusals during outage: %d; victim users served after recovery: %d; visits recovered: %d",
		victimRefusals.Load(), served, restarted.visits)
}

// striders decorrelates the per-worker user walk.
const striders = 17

// httptestServer serves the gateway over a real listener for the
// duration of the test.
func httptestServer(t *testing.T, gw *Gateway) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: gw.Handler()}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return "http://" + ln.Addr().String()
}

// report posts one report and requires one of the allowed statuses.
func report(t *testing.T, baseURL string, user int, hosts []string, allowed ...int) {
	t.Helper()
	body, _ := json.Marshal(server.ReportRequest{User: user, Time: 500_000, Hosts: hosts})
	resp, err := http.Post(baseURL+"/v1/report", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, code := range allowed {
		if resp.StatusCode == code {
			return
		}
	}
	t.Fatalf("report user %d → %d (allowed %v): %s", user, resp.StatusCode, allowed, raw)
}
