package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"hostprof/internal/cluster"
	"hostprof/internal/obs"
)

// cmdStatus renders a one-page operator dashboard for a running
// gateway: cluster membership and health (/v1/cluster), the federated
// metrics view (/v1/cluster/metrics), the gateway's own SLO gauges
// (/varz) and the newest timeline events (/v1/cluster/events). With
// -watch it refreshes in place until interrupted.
func cmdStatus(args []string) error {
	fs := flag.NewFlagSet("status", flag.ExitOnError)
	addr := fs.String("addr", "http://127.0.0.1:8410", "gateway base URL")
	watch := fs.Duration("watch", 0, "refresh cadence (0 renders once and exits)")
	events := fs.Int("events", 12, "timeline events shown")
	timeout := fs.Duration("timeout", 5*time.Second, "per-request deadline")
	if err := fs.Parse(args); err != nil {
		return err
	}
	base := strings.TrimSuffix(strings.TrimSpace(*addr), "/")
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	client := &http.Client{}

	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	for {
		page, err := renderStatus(ctx, client, base, *events, *timeout)
		if err != nil {
			return err
		}
		if *watch > 0 {
			// Home + clear so the page repaints in place.
			fmt.Print("\033[H\033[2J")
		}
		fmt.Print(page)
		if *watch <= 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return nil
		case <-time.After(*watch):
		}
	}
}

// statusGet fetches one gateway endpoint into out.
func statusGet(ctx context.Context, client *http.Client, url string, timeout time.Duration, out any) error {
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: HTTP %d", url, resp.StatusCode)
	}
	return json.NewDecoder(io.LimitReader(resp.Body, 32<<20)).Decode(out)
}

// renderStatus assembles the dashboard text. /v1/cluster is required;
// the other panes degrade to a notice when their fetch fails, so a
// half-up cluster still renders.
func renderStatus(ctx context.Context, client *http.Client, base string, eventCount int, timeout time.Duration) (string, error) {
	var st cluster.ClusterStatus
	if err := statusGet(ctx, client, base+"/v1/cluster", timeout, &st); err != nil {
		return "", fmt.Errorf("gateway unreachable: %w", err)
	}
	var cm cluster.ClusterMetrics
	cmErr := statusGet(ctx, client, base+"/v1/cluster/metrics", timeout, &cm)
	var ev struct {
		Events []cluster.Event `json:"events"`
		LastID int64           `json:"last_id"`
	}
	evErr := statusGet(ctx, client, base+"/v1/cluster/events", timeout, &ev)
	var varz []obs.MetricSnapshot
	varzErr := statusGet(ctx, client, base+"/varz", timeout, &varz)

	var b strings.Builder
	fmt.Fprintf(&b, "hostprof cluster · %s · %s\n\n", base, time.Now().Format("2006-01-02 15:04:05"))

	conv := "mixed model versions"
	if st.Converged {
		conv = "converged @ " + shortVersion(st.ModelVersion)
	}
	fmt.Fprintf(&b, "backends %d · alive %d · ready %d · %s\n",
		st.Backends, st.AliveShards, st.ReadyShards, conv)
	if m := st.Migration; m != nil {
		fmt.Fprintf(&b, "migration: %s · ranges %d/%d done (%d aborted) · %d records copied\n",
			m.State, m.RangesDone, m.Ranges, m.RangesAborted, m.RecordsCopied)
	}

	// Shard table, joined with the federation scrape ledger.
	scrape := map[string]cluster.ShardScrapeStatus{}
	for _, s := range cm.Shards {
		scrape[s.Backend] = s
	}
	fmt.Fprintf(&b, "\n%-34s %-8s %-14s %9s  %s\n", "SHARD", "STATE", "MODEL", "VISITS", "SCRAPE")
	for _, sh := range st.Shards {
		state := "down"
		switch {
		case sh.Ready && sh.Degraded:
			state = "degraded"
		case sh.Ready:
			state = "ready"
		case sh.Alive:
			state = "alive"
		}
		sc := "-"
		if s, ok := scrape[sh.Backend]; ok {
			sc = s.Status
			if s.Status != "missing" {
				sc = fmt.Sprintf("%s (%.1fs, %d series)", s.Status, s.AgeSeconds, s.Series)
			}
		}
		fmt.Fprintf(&b, "%-34s %-8s %-14s %9d  %s\n",
			sh.Backend, state, shortVersion(sh.ModelVersion), sh.Visits, sc)
	}

	// Cluster totals from the merged (summed) counters.
	if cmErr != nil {
		fmt.Fprintf(&b, "\nfederated metrics unavailable: %v\n", cmErr)
	} else {
		totals := counterTotals(cm.Metrics, "hostprof_http_requests_total")
		if len(totals) > 0 {
			fmt.Fprintf(&b, "\ncluster requests (all shards): %s\n", totals)
		}
		if burns := shardBurnRates(cm.Metrics); burns != "" {
			fmt.Fprintf(&b, "shard SLO burn rates: %s\n", burns)
		}
	}

	// Gateway-side SLOs from its own gauges.
	if varzErr == nil {
		if line := gatewaySLOLine(varz); line != "" {
			fmt.Fprintf(&b, "gateway SLOs: %s\n", line)
		}
	}

	if evErr != nil {
		fmt.Fprintf(&b, "\nevents unavailable: %v\n", evErr)
	} else {
		fmt.Fprintf(&b, "\nEVENTS (newest last, cursor %d)\n", ev.LastID)
		evs := ev.Events
		if len(evs) > eventCount {
			evs = evs[len(evs)-eventCount:]
		}
		if len(evs) == 0 {
			fmt.Fprintln(&b, "  (none)")
		}
		for _, e := range evs {
			ts := time.Unix(0, e.UnixNano).Format("15:04:05")
			shard := e.Shard
			if shard == "" {
				shard = "-"
			}
			fmt.Fprintf(&b, "  %s  %-16s %-34s %s%s\n", ts, e.Type, shard, e.Msg, formatEventAttrs(e.Attrs))
		}
	}
	return b.String(), nil
}

func shortVersion(v string) string {
	if v == "" {
		return "-"
	}
	if len(v) > 12 {
		return v[:12]
	}
	return v
}

// counterTotals sums a merged counter family by its endpoint label,
// rendering "report=123 profile_batch=4".
func counterTotals(ms []obs.MetricSnapshot, family string) string {
	sums := map[string]float64{}
	for _, m := range ms {
		if m.Name != family || m.Kind != "counter" {
			continue
		}
		key := m.Labels["endpoint"]
		if key == "" {
			key = "total"
		}
		sums[key] += m.Value
	}
	if len(sums) == 0 {
		return ""
	}
	keys := make([]string, 0, len(sums))
	for k := range sums {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%.0f", k, sums[k]))
	}
	return strings.Join(parts, " ")
}

// shardBurnRates renders the per-shard hostprof_slo_burn_rate gauges
// from the merged view: "shardA report=0.0; shardB report=2.1".
func shardBurnRates(ms []obs.MetricSnapshot) string {
	type key struct{ shard, endpoint string }
	rates := map[key]float64{}
	for _, m := range ms {
		if m.Name != "hostprof_slo_burn_rate" {
			continue
		}
		rates[key{m.Labels["shard"], m.Labels["endpoint"]}] = m.Value
	}
	if len(rates) == 0 {
		return ""
	}
	keys := make([]key, 0, len(rates))
	for k := range rates {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].shard != keys[j].shard {
			return keys[i].shard < keys[j].shard
		}
		return keys[i].endpoint < keys[j].endpoint
	})
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s %s=%.2f", k.shard, k.endpoint, rates[k]))
	}
	return strings.Join(parts, "; ")
}

// gatewaySLOLine renders the gateway's own hostprof_gateway_slo_*
// gauges: "report p99=12ms burn=0.00 (n=42)".
func gatewaySLOLine(varz []obs.MetricSnapshot) string {
	type slo struct {
		p99, burn, n float64
	}
	slos := map[string]*slo{}
	get := func(endpoint string) *slo {
		s, ok := slos[endpoint]
		if !ok {
			s = &slo{}
			slos[endpoint] = s
		}
		return s
	}
	for _, m := range varz {
		ep := m.Labels["endpoint"]
		switch m.Name {
		case "hostprof_gateway_slo_burn_rate":
			get(ep).burn = m.Value
		case "hostprof_gateway_slo_window_requests":
			get(ep).n = m.Value
		case "hostprof_gateway_slo_latency_seconds":
			if m.Labels["quantile"] == "0.99" {
				get(ep).p99 = m.Value
			}
		}
	}
	if len(slos) == 0 {
		return ""
	}
	keys := make([]string, 0, len(slos))
	for k := range slos {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		s := slos[k]
		parts = append(parts, fmt.Sprintf("%s p99=%s burn=%.2f (n=%.0f)",
			k, time.Duration(s.p99*float64(time.Second)).Round(time.Millisecond), s.burn, s.n))
	}
	return strings.Join(parts, "; ")
}

func formatEventAttrs(attrs map[string]string) string {
	if len(attrs) == 0 {
		return ""
	}
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(" [")
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(attrs[k])
	}
	b.WriteByte(']')
	return b.String()
}
