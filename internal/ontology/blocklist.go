package ontology

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// Blocklist is a set of advertising/tracking hostnames to exclude from
// profiling input. The paper merges three public lists (adaway.org,
// hosts-file.net, pgl.yoyo.org); roughly 3K listed hostnames appeared in
// their traces and accounted for more than 8% of connections (Section 5.4).
type Blocklist struct {
	hosts map[string]struct{}
}

// NewBlocklist returns an empty blocklist.
func NewBlocklist() *Blocklist {
	return &Blocklist{hosts: make(map[string]struct{})}
}

// Add inserts a hostname (lower-cased) into the list.
func (b *Blocklist) Add(host string) {
	h := strings.ToLower(strings.TrimSpace(host))
	if h != "" {
		b.hosts[h] = struct{}{}
	}
}

// Contains reports whether host is blocked. Matching is exact and
// case-insensitive.
func (b *Blocklist) Contains(host string) bool {
	_, ok := b.hosts[strings.ToLower(host)]
	return ok
}

// Len returns the number of blocked hostnames.
func (b *Blocklist) Len() int { return len(b.hosts) }

// Merge adds every entry of other into b.
func (b *Blocklist) Merge(other *Blocklist) {
	for h := range other.hosts {
		b.hosts[h] = struct{}{}
	}
}

// Filter returns the subsequence of hosts not present in the blocklist,
// preserving order. It also returns the number of removed entries.
func (b *Blocklist) Filter(hosts []string) (kept []string, removed int) {
	kept = make([]string, 0, len(hosts))
	for _, h := range hosts {
		if b.Contains(h) {
			removed++
			continue
		}
		kept = append(kept, h)
	}
	return kept, removed
}

// ParseHostsFile reads blocklist entries from r. Two formats found in the
// wild are accepted, matching the paper's three sources:
//
//   - "hosts" format: lines like "127.0.0.1 ads.example.com" or
//     "0.0.0.0 tracker.example.net" (adaway.org, hosts-file.net, yoyo's
//     hosts output); the IP column is discarded.
//   - plain format: one hostname per line.
//
// Comments beginning with '#' and blank lines are ignored. It returns the
// number of entries added.
func (b *Blocklist) ParseHostsFile(r io.Reader) (int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	added := 0
	for sc.Scan() {
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		var host string
		switch len(fields) {
		case 0:
			continue
		case 1:
			host = fields[0]
		default:
			// hosts format: "<ip> <host> [aliases...]" — take the
			// second column and any aliases.
			if !looksLikeIP(fields[0]) {
				host = fields[0]
			} else {
				for _, h := range fields[1:] {
					if h != "localhost" && !looksLikeIP(h) {
						b.Add(h)
						added++
					}
				}
				continue
			}
		}
		if host == "localhost" || looksLikeIP(host) {
			continue
		}
		b.Add(host)
		added++
	}
	if err := sc.Err(); err != nil {
		return added, fmt.Errorf("ontology: parsing hosts file: %w", err)
	}
	return added, nil
}

// looksLikeIP is a cheap structural test good enough to discard the IP
// column of hosts files (it does not validate octet ranges).
func looksLikeIP(s string) bool {
	if strings.Count(s, ":") >= 2 {
		return true // IPv6-ish
	}
	dots := 0
	for _, r := range s {
		switch {
		case r == '.':
			dots++
		case r >= '0' && r <= '9':
		default:
			return false
		}
	}
	return dots == 3
}
