package sniffer

import (
	"errors"
	"strings"
	"testing"

	"hostprof/internal/stats"
	"hostprof/internal/trace"
)

func TestBuildClientHelloECHHasNoSNI(t *testing.T) {
	rng := stats.NewRNG(1)
	rec := BuildClientHelloECH(rng)
	if _, err := ParseSNI(rec); !errors.Is(err, ErrNoSNI) {
		t.Fatalf("err = %v, want ErrNoSNI", err)
	}
}

func TestObserverIPFallbackOnECH(t *testing.T) {
	tr := trace.New([]trace.Visit{
		{User: 2, Time: 10, Host: "hidden.example"},
		{User: 2, Time: 20, Host: "hidden.example"},
		{User: 3, Time: 30, Host: "other.example"},
	})
	syn := NewSynthesizer(WireConfig{Channel: ChannelECH, Seed: 5})
	cap, err := syn.SynthesizeTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	obs := NewObserver(ObserverConfig{IPFallback: true})
	got := obs.ObserveAll(cap.Packets, cap.Times)
	if got.Len() != 3 {
		t.Fatalf("recovered %d visits, want 3", got.Len())
	}
	if obs.Stats().IPFallbacks != 3 || obs.Stats().TLSVisits != 0 {
		t.Fatalf("stats %+v", obs.Stats())
	}
	vs := got.Visits()
	// Same hidden hostname → same IP token, different hostname → other.
	if !strings.HasPrefix(vs[0].Host, "ip-") {
		t.Fatalf("host %q not an IP token", vs[0].Host)
	}
	if vs[0].Host != vs[1].Host {
		t.Fatal("same server produced different IP tokens")
	}
	if vs[0].Host == vs[2].Host {
		t.Fatal("different servers collided on one IP token")
	}
	// Token matches the deterministic resolver view.
	want := IPToken(addr16(ServerAddr("hidden.example")))
	if vs[0].Host != want {
		t.Fatalf("token %q, want %q", vs[0].Host, want)
	}
}

func addr16(v4 [4]byte) [16]byte {
	var a [16]byte
	copy(a[:4], v4[:])
	a[15] = 4
	return a
}

func TestObserverECHIgnoredWithoutFallback(t *testing.T) {
	tr := trace.New([]trace.Visit{{User: 1, Time: 5, Host: "hidden.example"}})
	syn := NewSynthesizer(WireConfig{Channel: ChannelECH, Seed: 7})
	cap, err := syn.SynthesizeTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	obs := NewObserver(ObserverConfig{})
	if got := obs.ObserveAll(cap.Packets, cap.Times); got.Len() != 0 {
		t.Fatalf("recovered %d visits without fallback", got.Len())
	}
}

func TestECHProbMixes(t *testing.T) {
	var visits []trace.Visit
	for i := 0; i < 120; i++ {
		visits = append(visits, trace.Visit{User: 1, Time: int64(i), Host: "p.example"})
	}
	syn := NewSynthesizer(WireConfig{Channel: ChannelTLS, ECHProb: 0.5, Seed: 9})
	cap, err := syn.SynthesizeTrace(trace.New(visits))
	if err != nil {
		t.Fatal(err)
	}
	obs := NewObserver(ObserverConfig{IPFallback: true})
	got := obs.ObserveAll(cap.Packets, cap.Times)
	if got.Len() != 120 {
		t.Fatalf("recovered %d visits", got.Len())
	}
	if obs.Stats().TLSVisits == 0 || obs.Stats().IPFallbacks == 0 {
		t.Fatalf("mix degenerate: %+v", obs.Stats())
	}
	frac := float64(obs.Stats().IPFallbacks) / 120
	if frac < 0.3 || frac > 0.7 {
		t.Fatalf("ECH fraction %.2f, want ~0.5", frac)
	}
}

func TestNATCollapsesUsers(t *testing.T) {
	tr := trace.New([]trace.Visit{
		{User: 0, Time: 1, Host: "a.example"},
		{User: 1, Time: 2, Host: "b.example"},
		{User: 2, Time: 3, Host: "c.example"},
		{User: 3, Time: 4, Host: "d.example"},
		{User: 4, Time: 5, Host: "e.example"},
	})
	syn := NewSynthesizer(WireConfig{Channel: ChannelTLS, NATSize: 2, Seed: 11})
	cap, err := syn.SynthesizeTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	obs := NewObserver(ObserverConfig{})
	got := obs.ObserveAll(cap.Packets, cap.Times)
	if got.Len() != 5 {
		t.Fatalf("recovered %d visits", got.Len())
	}
	users := got.Users()
	// Users {0,1}→0, {2,3}→2, {4}→4.
	if len(users) != 3 || users[0] != 0 || users[1] != 2 || users[2] != 4 {
		t.Fatalf("wire users = %v", users)
	}
}

func TestIPToken(t *testing.T) {
	var v4 [16]byte
	v4[0], v4[1], v4[2], v4[3], v4[15] = 93, 1, 2, 3, 4
	if got := IPToken(v4); got != "ip-93.1.2.3" {
		t.Fatalf("v4 token %q", got)
	}
	var v6 [16]byte
	v6[0] = 0xfd
	if got := IPToken(v6); !strings.HasPrefix(got, "ip6-") {
		t.Fatalf("v6 token %q", got)
	}
}
