// Command experiments regenerates every table and figure of the paper's
// evaluation (Figures 2-6, the CTR comparison of Section 6.4 and the
// corpus statistics of Sections 4 and 5.4) against the synthetic
// substrate and prints the EXPERIMENTS.md comparison table, plus the raw
// series behind each figure when -verbose is set.
package main

import (
	"flag"
	"fmt"
	"log"
	"log/slog"
	"os"
	"sort"

	"hostprof/internal/core"
	"hostprof/internal/experiment"
	"hostprof/internal/obs"
	"hostprof/internal/obs/tracer"
	"hostprof/internal/stats"
)

func main() {
	small := flag.Bool("small", false, "use the fast test-sized configuration")
	seed := flag.Uint64("seed", 1234, "experiment seed")
	tsneIters := flag.Int("tsne-iters", 250, "t-SNE iterations for Figure 4")
	verbose := flag.Bool("verbose", false, "print per-figure series")
	outPath := flag.String("out", "", "also write the markdown table to this file")
	dataDir := flag.String("data-dir", "", "write per-figure CSV series to this directory")
	logFormat := flag.String("log-format", "text", "log output format: text or json")
	logLevel := flag.String("log-level", "info", "log verbosity: debug, info, warn or error")
	flag.Parse()

	lg, err := tracer.NewLogger(os.Stderr, *logFormat, *logLevel)
	if err != nil {
		log.Fatal(err)
	}
	slog.SetDefault(lg)

	cfg := experiment.DefaultConfig(*seed)
	if *small {
		cfg = experiment.SmallConfig(*seed)
	}
	// Record every training run (the initial fit plus each extension
	// retrain) into a metrics registry, summarized at exit in -verbose
	// mode.
	reg := obs.NewRegistry()
	epochSeconds := reg.Histogram("hostprof_train_epoch_seconds", obs.ExpBuckets(0.01, 4, 10))
	epochLoss := reg.Gauge("hostprof_train_epoch_loss")
	epochs := reg.Counter("hostprof_train_epochs_total")
	trainings := reg.Counter("hostprof_trainings_total")
	cfg.Train.Progress = func(e core.EpochStats) {
		epochs.Inc()
		epochSeconds.Observe(e.Duration.Seconds())
		epochLoss.Set(e.Loss)
		if e.Epoch == 0 {
			trainings.Inc()
		}
	}
	slog.Info("building experiment world",
		slog.Int("sites", cfg.Universe.Sites),
		slog.Int("users", cfg.Population.Users),
		slog.Int("days", cfg.Population.Days),
		slog.Int("dim", cfg.Train.Dim))
	s, err := experiment.NewSetup(cfg)
	if err != nil {
		log.Fatal(err)
	}
	slog.Info("running experiments",
		slog.Int("visits", s.Filtered.Len()),
		slog.Int("vocab", s.Model.Vocab().Len()))

	all, err := experiment.RunAll(s, *tsneIters)
	if err != nil {
		log.Fatal(err)
	}

	md := all.MarkdownReport()
	fmt.Println(md)
	if *outPath != "" {
		if err := os.WriteFile(*outPath, []byte(md), 0o644); err != nil {
			log.Fatal(err)
		}
	}

	if *dataDir != "" {
		if err := writeDataDir(s, all, *dataDir); err != nil {
			log.Fatal(err)
		}
		slog.Info("figure data written", slog.String("dir", *dataDir))
	}

	if *verbose {
		printVerbose(s, all)
		fmt.Println("\n== Final metrics ==")
		if err := reg.WritePrometheus(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
}

func printVerbose(s *experiment.Setup, all *experiment.AllResults) {
	fmt.Println("\n== Figure 2: CCDF of distinct hostnames per user ==")
	for i, pts := range all.Fig2.OutsideCCDF {
		level := []int{80, 60, 40, 20}[i]
		fmt.Printf("outside Core %d (size %d): %s\n",
			level, all.Fig2.CoreSizes[i], ccdfSummary(pts))
	}

	fmt.Println("\n== Figure 3: category cores ==")
	fmt.Printf("categories common to all users: %d\n", all.Fig3.CommonToAll)
	for i, f := range all.Fig3.ZeroOutsideFrac {
		level := []int{80, 60, 40, 20}[i]
		fmt.Printf("users with no category outside Core %d: %.1f%%\n", level, 100*f)
	}

	fmt.Println("\n== Figure 4: t-SNE coordinates (first 10 points) ==")
	for i, p := range all.Fig4.Points {
		if i >= 10 {
			break
		}
		topic := "-"
		if p.Topic >= 0 {
			topic = s.Universe.Tax.TopName(p.Topic)
		}
		fmt.Printf("%-28s (%7.2f, %7.2f) %s\n", p.Host, p.X, p.Y, topic)
	}
	fmt.Printf("2-D 10-NN topic purity: %.3f\n", all.Fig4.Purity2D)

	fmt.Println("\n== Figure 5: per-topic embedding purity ==")
	type kv struct {
		name string
		p    float64
	}
	var ps []kv
	for name, p := range all.Fig5.PurityByTopic {
		ps = append(ps, kv{name, p})
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].p > ps[j].p })
	for _, e := range ps {
		fmt.Printf("%-32s %.3f\n", e.name, e.p)
	}
	fmt.Printf("mean %.3f vs chance %.3f\n", all.Fig5.MeanPurity, all.Fig5.Chance)

	fmt.Println("\n== Figure 6: daily dominant-topic shares ==")
	for d := 0; d < all.Campaign.Days; d++ {
		fmt.Printf("day %2d: web %s | adnet %s | eaves %s\n", d,
			topShare(s, all.Campaign.WebsiteTopics[d]),
			topShare(s, all.Campaign.AdNetTopics[d]),
			topShare(s, all.Campaign.EavesTopics[d]))
	}

	fmt.Println("\n== Baselines ==")
	for _, n := range []string{"embedding", "ontology-only", "oracle", "random"} {
		fmt.Printf("%-14s affinity %.3f  failures %d  ctr %.3f%%\n",
			n, all.Baselines.Affinity[n], all.Baselines.Failures[n], all.Baselines.CTRPercent[n])
	}

	fmt.Println("\n== Countermeasures (§7.4) ==")
	for _, n := range all.Counters.Order {
		fmt.Printf("%-14s match %.2f  ip-only %.2f\n",
			n, all.Counters.MatchRate[n], all.Counters.Fallback[n])
	}

	fmt.Println("\n== CTR ==")
	fmt.Printf("eavesdropper %.3f%% over %d impressions\n",
		all.Campaign.EavesCTR.Percent(), all.Campaign.EavesCTR.Impressions)
	fmt.Printf("ad-network   %.3f%% over %d impressions\n",
		all.Campaign.AdNetCTR.Percent(), all.Campaign.AdNetCTR.Impressions)
	fmt.Printf("paired t-test: t=%.3f df=%.0f p=%.4f (n=%d users); Wilcoxon z=%.3f p=%.4f\n",
		all.Campaign.TTest.T, all.Campaign.TTest.DF, all.Campaign.TTest.P, all.Campaign.TTest.N,
		all.Campaign.Wilcoxon.Z, all.Campaign.Wilcoxon.P)
}

// ccdfSummary renders a few anchor points of a CCDF.
func ccdfSummary(pts []stats.CCDFPoint) string {
	if len(pts) == 0 {
		return "empty"
	}
	at := func(frac float64) float64 {
		x := pts[0].X
		for _, p := range pts {
			if p.Frac >= frac {
				x = p.X
			}
		}
		return x
	}
	return fmt.Sprintf("P25>=%.0f P50>=%.0f P75>=%.0f max=%.0f",
		at(0.75), at(0.5), at(0.25), pts[len(pts)-1].X)
}

func topShare(s *experiment.Setup, row []float64) string {
	best, bestV := -1, 0.0
	for i, v := range row {
		if v > bestV {
			best, bestV = i, v
		}
	}
	if best < 0 {
		return "n/a"
	}
	return fmt.Sprintf("%s %.0f%%", s.Universe.Tax.TopName(best), 100*bestV)
}
