// live_backend runs the paper's experiment architecture for real: the
// profiling/ad back-end listens on localhost, a fleet of "extension"
// clients replays a synthetic population's browsing against it over
// HTTP (reporting every 10 minutes of trace time, exactly like the
// paper's Chrome extension), the back-end retrains between days, and
// campaign statistics are read off the /v1/stats endpoint at the end.
package main

import (
	"fmt"
	"log"
	"net"
	"net/http"

	"hostprof/internal/ads"
	"hostprof/internal/core"
	"hostprof/internal/server"
	"hostprof/internal/stats"
	"hostprof/internal/synth"
)

func main() {
	// World + back-end.
	universe := synth.NewUniverse(synth.UniverseConfig{Sites: 120, Trackers: 20, Seed: 21})
	ont := synth.BuildOntology(universe, synth.OntologyConfig{Coverage: 0.2, Seed: 23})
	db := ads.BuildFromOntology(ont, ads.BuildConfig{Seed: 25})
	backend, err := server.New(server.Config{
		Ontology:  ont,
		AdDB:      db,
		Blocklist: synth.BuildBlocklist(universe, 1, 27),
		Train:     core.TrainConfig{Dim: 24, Epochs: 6, MinCount: 2, Workers: 1, Seed: 29, Subsample: -1},
		Profile:   core.ProfilerConfig{N: 40, Agg: core.AggIDF},
	})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: backend.Handler()}
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()
	fmt.Printf("back-end listening on %s\n", base)

	// Population browsing, replayed through extension clients.
	population := synth.NewPopulation(universe, synth.PopulationConfig{
		Users: 12, Days: 3, Seed: 31,
	})
	browsing := population.Browse()
	per := browsing.PerUserVisits()
	rng := stats.NewRNG(33)

	clickBase, clickLift := 0.004, 0.2 // inflated rates: small demo
	var shown, clicked int
	days := browsing.Days()
	for day := 0; day < days; day++ {
		// The paper retrained each morning on the previous day.
		if day > 0 {
			ext := &server.Extension{BaseURL: base}
			if err := ext.Retrain(); err != nil {
				log.Fatalf("retrain before day %d: %v", day, err)
			}
		}
		for _, user := range population.Users {
			ext := &server.Extension{BaseURL: base, User: user.ID}
			var batch []string
			var batchStart int64 = -1
			flush := func(at int64) {
				if len(batch) == 0 {
					return
				}
				adsList, err := ext.Report(at, batch)
				if err != nil {
					// 503 on day 0 (untrained) is expected.
					batch = batch[:0]
					return
				}
				batch = batch[:0]
				// Simulate displaying up to 3 of the received ads.
				for i, ad := range adsList {
					if i >= 3 {
						break
					}
					full := db.Ad(ad.ID)
					p := clickBase + clickLift*user.AffinityTo(full.TopLevel)
					hit := rng.Float64() < p
					if err := ext.Feedback(ad.ID, "eavesdropper", hit); err != nil {
						log.Fatal(err)
					}
					shown++
					if hit {
						clicked++
					}
				}
			}
			for _, v := range per[user.ID] {
				if v.Day() != day {
					continue
				}
				if batchStart >= 0 && v.Time-batchStart > 600 {
					flush(v.Time)
					batchStart = -1
				}
				if batchStart < 0 {
					batchStart = v.Time
				}
				batch = append(batch, v.Host)
			}
			flush(batchStart + 600)
		}
	}

	st, err := (&server.Extension{BaseURL: base}).Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nback-end state after %d days:\n", days)
	fmt.Printf("  visits stored: %d across %d users; vocab %d\n", st.Visits, st.Users, st.VocabSize)
	fmt.Printf("  eavesdropper impressions: %d, clicks: %d (CTR %.2f%%)\n",
		st.Impressions["eavesdropper"], st.Clicks["eavesdropper"], st.CTRPercent["eavesdropper"])
	fmt.Printf("  (local tally agrees: %d shown, %d clicked)\n", shown, clicked)
	if st.Impressions["eavesdropper"] != int64(shown) || st.Clicks["eavesdropper"] != int64(clicked) {
		log.Fatal("back-end statistics diverge from client tally")
	}
	fmt.Println("=> the paper's extension/back-end loop, reproduced over real HTTP")
}
