package experiment

import (
	"fmt"
	"testing"
)

func TestCountermeasureLadder(t *testing.T) {
	s := testSetup(t)
	r, err := RunCountermeasures(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range r.Order {
		fmt.Printf("%-14s match=%.2f fallback=%.2f\n", n, r.MatchRate[n], r.Fallback[n])
	}
	row := r.Rows()[0]
	fmt.Println(row.Measured)
	if !row.Pass {
		t.Fatalf("countermeasure row failed: %+v", row)
	}
	// Destination-hiding scenarios sit at chance level, far below the
	// leaking scenarios. (tor-like vs cdn ordering is chance noise:
	// with one shared front label every user gets the same profile.)
	for _, weak := range []string{"ech+doh+cdn", "tor-like"} {
		for _, strong := range []string{"none", "doh", "ech+doh"} {
			if r.MatchRate[weak] >= r.MatchRate[strong] {
				t.Fatalf("%s (%.2f) not below %s (%.2f)",
					weak, r.MatchRate[weak], strong, r.MatchRate[strong])
			}
		}
	}
}
