package hostprof

import (
	"fmt"
	"sync"

	"hostprof/internal/core"
	"hostprof/internal/sniffer"
	"hostprof/internal/trace"
)

// PipelineConfig assembles a complete network-observer pipeline.
type PipelineConfig struct {
	// Observer configures packet decoding and user attribution.
	Observer ObserverConfig
	// Train configures embedding training; zero values select paper
	// defaults.
	Train TrainConfig
	// Profile configures session profiling; zero N selects the paper's
	// 1000.
	Profile ProfilerConfig
	// SessionWindow is the profiling window T in seconds (paper: 20
	// minutes). Zero selects 1200.
	SessionWindow int64
	// Blocklist, when non-nil, filters tracker hostnames before both
	// training and profiling, as Section 5.4 prescribes.
	Blocklist *Blocklist
	// Ontology supplies the labelled subset H_L.
	Ontology *Ontology
}

// Pipeline is the end-to-end eavesdropper: packets in, profiles and ads
// out. It is safe for use from a single goroutine; packet ingestion and
// (re)training may run concurrently only through the exported methods,
// which serialize on an internal lock.
type Pipeline struct {
	cfg PipelineConfig

	mu       sync.Mutex
	observer *Observer
	visits   *Trace
	model    *Model
	profiler *Profiler
}

// NewPipeline validates cfg and returns an empty pipeline.
func NewPipeline(cfg PipelineConfig) (*Pipeline, error) {
	if cfg.Ontology == nil {
		return nil, fmt.Errorf("hostprof: pipeline requires an ontology")
	}
	if cfg.SessionWindow <= 0 {
		cfg.SessionWindow = 20 * 60
	}
	return &Pipeline{
		cfg:      cfg,
		observer: sniffer.NewObserver(cfg.Observer),
		visits:   trace.New(nil),
	}, nil
}

// Ingest feeds one captured Ethernet frame taken at ts (seconds) to the
// observer; any extracted visit is recorded (unless blocklisted).
// It reports whether a hostname was extracted.
func (p *Pipeline) Ingest(frame []byte, ts int64) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	v, ok := p.observer.ProcessPacket(frame, ts)
	if !ok {
		return false
	}
	if p.cfg.Blocklist != nil && p.cfg.Blocklist.Contains(v.Host) {
		return false
	}
	p.visits.Append(v)
	return true
}

// IngestVisit records an already-extracted visit (e.g. replayed from a
// stored trace), subject to blocklist filtering.
func (p *Pipeline) IngestVisit(v Visit) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.cfg.Blocklist != nil && p.cfg.Blocklist.Contains(v.Host) {
		return false
	}
	p.visits.Append(v)
	return true
}

// Trace returns the accumulated visit trace. The returned value is the
// live trace; callers must not mutate it concurrently with Ingest.
func (p *Pipeline) Trace() *Trace {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.visits
}

// Retrain fits a fresh embedding on every per-user-day sequence observed
// so far and swaps it in, mirroring the paper's daily retraining
// (Section 5.4).
func (p *Pipeline) Retrain() error {
	p.mu.Lock()
	corpus := p.visits.AllSequences()
	p.mu.Unlock()

	model, err := core.Train(corpus, p.cfg.Train)
	if err != nil {
		return fmt.Errorf("hostprof: retraining: %w", err)
	}
	profiler := core.NewProfiler(model, p.cfg.Ontology, p.cfg.Profile)

	p.mu.Lock()
	p.model = model
	p.profiler = profiler
	p.mu.Unlock()
	return nil
}

// RetrainOnDay fits the embedding on a single day's sequences (the
// paper's "previous whole day") instead of the full history.
func (p *Pipeline) RetrainOnDay(day int) error {
	p.mu.Lock()
	corpus := p.visits.DailySequences(day)
	p.mu.Unlock()

	model, err := core.Train(corpus, p.cfg.Train)
	if err != nil {
		return fmt.Errorf("hostprof: retraining on day %d: %w", day, err)
	}
	profiler := core.NewProfiler(model, p.cfg.Ontology, p.cfg.Profile)

	p.mu.Lock()
	p.model = model
	p.profiler = profiler
	p.mu.Unlock()
	return nil
}

// ErrNotTrained is returned by profiling before the first Retrain.
var ErrNotTrained = fmt.Errorf("hostprof: pipeline model not trained yet")

// Model returns the current embedding model, or nil before training.
func (p *Pipeline) Model() *Model {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.model
}

// ProfileUser profiles the hostnames user requested in the window
// (now-T, now].
func (p *Pipeline) ProfileUser(user int, now int64) (Vector, error) {
	p.mu.Lock()
	profiler := p.profiler
	session := p.visits.Session(user, now, p.cfg.SessionWindow)
	p.mu.Unlock()
	if profiler == nil {
		return nil, ErrNotTrained
	}
	return profiler.ProfileSession(session)
}

// ProfileSession profiles an explicit hostname sequence.
func (p *Pipeline) ProfileSession(hosts []string) (Vector, error) {
	p.mu.Lock()
	profiler := p.profiler
	p.mu.Unlock()
	if profiler == nil {
		return nil, ErrNotTrained
	}
	return profiler.ProfileSession(hosts)
}

// ObserverStats returns packet-level counters.
func (p *Pipeline) ObserverStats() sniffer.ObserverStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.observer.Stats
}
