package main

import "testing"

func TestParseLine(t *testing.T) {
	r, ok := parseLine("BenchmarkTrain/workers=4-8   \t 10\t  11131 ns/op\t  42 B/op\t   2 allocs/op")
	if !ok {
		t.Fatal("benchmark line not recognized")
	}
	if r.Name != "Train/workers=4" || r.Procs != 8 || r.Iterations != 10 {
		t.Fatalf("parsed %+v", r)
	}
	want := map[string]float64{"ns/op": 11131, "B/op": 42, "allocs/op": 2}
	for k, v := range want {
		if r.Metrics[k] != v {
			t.Fatalf("metric %s = %v, want %v", k, r.Metrics[k], v)
		}
	}
}

func TestParseLineCustomMetric(t *testing.T) {
	r, ok := parseLine("BenchmarkObserve-2 100 5000 ns/op 12.5 visits/op")
	if !ok {
		t.Fatal("line not recognized")
	}
	if r.Metrics["visits/op"] != 12.5 {
		t.Fatalf("custom metric lost: %+v", r.Metrics)
	}
}

func TestParseLineRejectsNoise(t *testing.T) {
	for _, line := range []string{
		"goos: linux",
		"PASS",
		"ok  \thostprof\t1.2s",
		"BenchmarkBroken notanumber ns/op",
		"",
	} {
		if _, ok := parseLine(line); ok {
			t.Fatalf("line %q wrongly accepted", line)
		}
	}
}
