package tracer

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// ctxHandler decorates a slog.Handler so every record logged with a
// span-carrying context is stamped with trace_id/span_id — the join key
// between logs and /debug/traces.
type ctxHandler struct {
	inner slog.Handler
}

// WithTraceIDs wraps h so records carry trace_id/span_id attributes
// whenever their context holds a live span.
func WithTraceIDs(h slog.Handler) slog.Handler { return ctxHandler{inner: h} }

func (h ctxHandler) Enabled(ctx context.Context, level slog.Level) bool {
	return h.inner.Enabled(ctx, level)
}

func (h ctxHandler) Handle(ctx context.Context, r slog.Record) error {
	if s := FromContext(ctx); s != nil {
		r.AddAttrs(
			slog.String("trace_id", s.TraceIDString()),
			slog.String("span_id", s.SpanID().String()),
		)
	}
	return h.inner.Handle(ctx, r)
}

func (h ctxHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return ctxHandler{inner: h.inner.WithAttrs(attrs)}
}

func (h ctxHandler) WithGroup(name string) slog.Handler {
	return ctxHandler{inner: h.inner.WithGroup(name)}
}

// ParseLevel parses a -log-level flag value ("debug", "info", "warn",
// "error").
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug, nil
	case "info", "":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("unknown log level %q (want debug, info, warn or error)", s)
}

// NewLogger builds a trace-aware slog.Logger writing to w in the given
// format ("text" or "json") at the given level, with trace_id/span_id
// stamped from the logging context.
func NewLogger(w io.Writer, format, level string) (*slog.Logger, error) {
	lv, err := ParseLevel(level)
	if err != nil {
		return nil, err
	}
	opts := &slog.HandlerOptions{Level: lv}
	var h slog.Handler
	switch strings.ToLower(format) {
	case "json":
		h = slog.NewJSONHandler(w, opts)
	case "text", "":
		h = slog.NewTextHandler(w, opts)
	default:
		return nil, fmt.Errorf("unknown log format %q (want text or json)", format)
	}
	return slog.New(WithTraceIDs(h)), nil
}
