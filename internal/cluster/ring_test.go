package cluster

import (
	"fmt"
	"testing"
)

// TestRingDeterministicPlacement: placement is a pure function of the
// member set — node order, ring instance, and process must not matter,
// or gateways would disagree on owners.
func TestRingDeterministicPlacement(t *testing.T) {
	a, err := NewRing([]string{"http://s1", "http://s2", "http://s3"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing([]string{"http://s3", "http://s1", "http://s2"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 10_000; u++ {
		oa, ok := a.Owner(u)
		ob, _ := b.Owner(u)
		if !ok || oa != ob {
			t.Fatalf("user %d: owner %q vs %q (ok=%v)", u, oa, ob, ok)
		}
	}
	if !a.Equal([]string{"http://s2", "http://s3", "http://s1"}) {
		t.Fatal("Equal rejects the same set in a different order")
	}
	if a.Equal([]string{"http://s1", "http://s2"}) {
		t.Fatal("Equal accepts a subset")
	}
}

// TestRingSpread: with the default vnode count, no shard's share of a
// 30k-user keyspace strays badly from uniform.
func TestRingSpread(t *testing.T) {
	nodes := []string{"http://s1", "http://s2", "http://s3"}
	r, err := NewRing(nodes, DefaultVirtualNodes)
	if err != nil {
		t.Fatal(err)
	}
	const users = 30_000
	spread := r.Spread(users)
	total := 0
	for _, n := range nodes {
		got := spread[n]
		total += got
		share := float64(got) / users
		if share < 0.15 || share > 0.55 {
			t.Errorf("%s owns %.1f%% of the keyspace; want roughly 33%%", n, share*100)
		}
	}
	if total != users {
		t.Fatalf("owners for %d of %d users", total, users)
	}
}

// TestRingStabilityOnMembershipChange is the consistent-hashing
// contract: removing a node moves exactly that node's keys (every
// other key keeps its owner), and adding a node steals only about
// 1/(n+1) of the keyspace.
func TestRingStabilityOnMembershipChange(t *testing.T) {
	three := []string{"http://s1", "http://s2", "http://s3"}
	r3, err := NewRing(three, 0)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewRing(three[:2], 0)
	if err != nil {
		t.Fatal(err)
	}
	const users = 20_000
	for u := 0; u < users; u++ {
		before, _ := r3.Owner(u)
		after, _ := r2.Owner(u)
		if before != "http://s3" && after != before {
			t.Fatalf("user %d moved %s → %s although its owner survived", u, before, after)
		}
	}

	r4, err := NewRing(append([]string{"http://s4"}, three...), 0)
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for u := 0; u < users; u++ {
		before, _ := r3.Owner(u)
		after, _ := r4.Owner(u)
		if after != before {
			if after != "http://s4" {
				t.Fatalf("user %d moved %s → %s, not to the new node", u, before, after)
			}
			moved++
		}
	}
	// Ideal is 25%; vnode granularity wobbles it. Well under half the
	// keyspace must stay put for "consistent" to mean anything.
	if frac := float64(moved) / users; frac < 0.10 || frac > 0.45 {
		t.Fatalf("adding a 4th node moved %.1f%% of keys; want ~25%%", frac*100)
	}
}

// TestRingValidation: duplicate or empty names fail construction, and
// an empty ring owns nothing rather than panicking.
func TestRingValidation(t *testing.T) {
	if _, err := NewRing([]string{"a", "a"}, 0); err == nil {
		t.Fatal("duplicate node accepted")
	}
	if _, err := NewRing([]string{"a", ""}, 0); err == nil {
		t.Fatal("empty node name accepted")
	}
	empty, err := NewRing(nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if owner, ok := empty.Owner(1); ok || owner != "" {
		t.Fatalf("empty ring returned owner %q", owner)
	}
}

func BenchmarkRingOwner(b *testing.B) {
	nodes := make([]string, 16)
	for i := range nodes {
		nodes[i] = fmt.Sprintf("http://shard-%d", i)
	}
	r, err := NewRing(nodes, DefaultVirtualNodes)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := r.Owner(i); !ok {
			b.Fatal("no owner")
		}
	}
}

// TestRingMinimalMovementAcrossVnodeCounts: the consistent-hashing
// contract must hold at every vnode granularity a deployment might pick,
// not just the default — growing a cluster moves keys only TO the new
// node, shrinking moves only the removed node's keys, at vnodes 1, 8
// and 64.
func TestRingMinimalMovementAcrossVnodeCounts(t *testing.T) {
	const users = 20_000
	three := []string{"http://s1", "http://s2", "http://s3"}
	four := append([]string{"http://s4"}, three...)
	for _, vn := range []int{1, 8, 64} {
		r3, err := NewRing(three, vn)
		if err != nil {
			t.Fatal(err)
		}
		r4, err := NewRing(four, vn)
		if err != nil {
			t.Fatal(err)
		}
		grew := 0
		for u := 0; u < users; u++ {
			before, _ := r3.Owner(u)
			after, _ := r4.Owner(u)
			if after != before {
				if after != "http://s4" {
					t.Fatalf("vnodes=%d: user %d moved %s → %s, not to the joiner", vn, u, before, after)
				}
				grew++
			}
		}
		if grew == 0 {
			t.Fatalf("vnodes=%d: joiner received no keys", vn)
		}
		// Upper bound loosens with coarser rings: a single vnode per
		// member makes arc sizes very uneven, but even then the joiner
		// must not swallow a majority of the keyspace.
		if frac := float64(grew) / users; frac > 0.60 {
			t.Fatalf("vnodes=%d: grow moved %.1f%% of keys; want ~25%%", vn, frac*100)
		}
		shrunk := 0
		for u := 0; u < users; u++ {
			before, _ := r4.Owner(u)
			after, _ := r3.Owner(u)
			if before == "http://s4" {
				shrunk++
				continue
			}
			if after != before {
				t.Fatalf("vnodes=%d: user %d moved %s → %s although its owner survived the shrink", vn, u, before, after)
			}
		}
		if shrunk != grew {
			t.Fatalf("vnodes=%d: shrink moved %d keys, grow moved %d — not inverses", vn, shrunk, grew)
		}
	}
}

// TestDiffRingsTilesMovedKeyspace: DiffRings must agree exactly with
// brute-force owner comparison — a user's owner changed if and only if
// its hash falls in exactly one returned range, and that range's
// From/To name the old and new owners. Checked across vnode
// granularities and for both grow and shrink.
func TestDiffRingsTilesMovedKeyspace(t *testing.T) {
	const users = 20_000
	three := []string{"http://s1", "http://s2", "http://s3"}
	four := append([]string{"http://s4"}, three...)
	for _, vn := range []int{1, 8, 64} {
		for _, dir := range []struct {
			name     string
			old, new []string
		}{
			{"grow", three, four},
			{"shrink", four, three},
		} {
			oldRing, err := NewRing(dir.old, vn)
			if err != nil {
				t.Fatal(err)
			}
			newRing, err := NewRing(dir.new, vn)
			if err != nil {
				t.Fatal(err)
			}
			moved := DiffRings(oldRing, newRing)
			if len(moved) == 0 {
				t.Fatalf("vnodes=%d %s: no moved ranges for a membership change", vn, dir.name)
			}
			wraps := 0
			for _, r := range moved {
				if r.Lo >= r.Hi {
					wraps++
				}
				if r.From == r.To {
					t.Fatalf("vnodes=%d %s: range (%x,%x] moves %s to itself", vn, dir.name, r.Lo, r.Hi, r.From)
				}
			}
			if wraps > 1 {
				t.Fatalf("vnodes=%d %s: %d wrapping ranges, want at most 1", vn, dir.name, wraps)
			}
			for u := 0; u < users; u++ {
				h := userHash(u)
				before, _ := oldRing.Owner(u)
				after, _ := newRing.Owner(u)
				var hits []MovedRange
				for _, r := range moved {
					if r.Contains(h) {
						hits = append(hits, r)
					}
				}
				if len(hits) > 1 {
					t.Fatalf("vnodes=%d %s: user %d in %d ranges; ranges overlap", vn, dir.name, u, len(hits))
				}
				if (before != after) != (len(hits) == 1) {
					t.Fatalf("vnodes=%d %s: user %d moved=%v but diff covers=%v",
						vn, dir.name, u, before != after, len(hits) == 1)
				}
				if len(hits) == 1 && (hits[0].From != before || hits[0].To != after) {
					t.Fatalf("vnodes=%d %s: user %d range says %s→%s, owners say %s→%s",
						vn, dir.name, u, hits[0].From, hits[0].To, before, after)
				}
			}
		}
	}
}

// TestDiffRingsNoChange: identical membership diffs to nothing, and
// degenerate inputs answer nil instead of panicking.
func TestDiffRingsNoChange(t *testing.T) {
	nodes := []string{"http://s1", "http://s2"}
	a, err := NewRing(nodes, 8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing([]string{"http://s2", "http://s1"}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if moved := DiffRings(a, b); len(moved) != 0 {
		t.Fatalf("identical membership produced %d moved ranges", len(moved))
	}
	empty, err := NewRing(nil, 8)
	if err != nil {
		t.Fatal(err)
	}
	if moved := DiffRings(a, empty); moved != nil {
		t.Fatalf("diff against an empty ring produced %v", moved)
	}
	if moved := DiffRings(nil, a); moved != nil {
		t.Fatalf("diff against a nil ring produced %v", moved)
	}
}

// TestDiffRingsSingleNodeSwap: replacing the only member moves the whole
// circle; the diff must still avoid the ambiguous Lo == Hi full-circle
// range.
func TestDiffRingsSingleNodeSwap(t *testing.T) {
	a, err := NewRing([]string{"http://old"}, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing([]string{"http://new"}, 4)
	if err != nil {
		t.Fatal(err)
	}
	moved := DiffRings(a, b)
	if len(moved) < 2 {
		t.Fatalf("full-circle move produced %d ranges, want >= 2 (Lo == Hi is ambiguous)", len(moved))
	}
	for u := 0; u < 5_000; u++ {
		h := userHash(u)
		hits := 0
		for _, r := range moved {
			if r.Contains(h) {
				hits++
			}
		}
		if hits != 1 {
			t.Fatalf("user %d covered by %d ranges of a full-circle move, want exactly 1", u, hits)
		}
	}
}
