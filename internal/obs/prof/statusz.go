package prof

import (
	"encoding/json"
	"fmt"
	"html"
	"net/http"
	"runtime"
	"runtime/debug"
	"sync"
	"time"
)

// A Statusz is the single-page operational view: named sections whose
// bodies are computed at render time, served as HTML (each section a
// pretty-printed JSON block) or as one JSON object with ?format=json.
// Sections render in registration order. All methods are safe for
// concurrent use and on a nil receiver.
type Statusz struct {
	mu       sync.Mutex
	names    []string
	sections map[string]func() any
}

// NewStatusz returns a page pre-populated with a "build" section
// (module version, VCS revision, Go version, GOMAXPROCS, uptime).
func NewStatusz() *Statusz {
	s := &Statusz{sections: make(map[string]func() any)}
	start := time.Now()
	s.Section("build", func() any {
		info := map[string]any{
			"go_version": runtime.Version(),
			"gomaxprocs": runtime.GOMAXPROCS(0),
			"uptime":     time.Since(start).Round(time.Second).String(),
		}
		if bi, ok := debug.ReadBuildInfo(); ok {
			info["module"] = bi.Main.Path
			if bi.Main.Version != "" && bi.Main.Version != "(devel)" {
				info["version"] = bi.Main.Version
			}
			for _, kv := range bi.Settings {
				switch kv.Key {
				case "vcs.revision", "vcs.time", "vcs.modified":
					info[kv.Key] = kv.Value
				}
			}
		}
		return info
	})
	return s
}

// Section registers (or replaces) a named section. body is invoked per
// render, outside any page lock, and its return value must be
// JSON-marshalable. Safe on nil (no-op).
func (s *Statusz) Section(name string, body func() any) {
	if s == nil || body == nil {
		return
	}
	s.mu.Lock()
	if _, ok := s.sections[name]; !ok {
		s.names = append(s.names, name)
	}
	s.sections[name] = body
	s.mu.Unlock()
}

// render evaluates every section in registration order.
func (s *Statusz) render() ([]string, map[string]any) {
	s.mu.Lock()
	names := make([]string, len(s.names))
	copy(names, s.names)
	bodies := make([]func() any, len(names))
	for i, n := range names {
		bodies[i] = s.sections[n]
	}
	s.mu.Unlock()
	out := make(map[string]any, len(names))
	for i, n := range names {
		out[n] = bodies[i]()
	}
	return names, out
}

// Handler serves the page:
//
//	GET /debug/statusz              → HTML
//	GET /debug/statusz?format=json  → {"<section>": <body>, ...}
//
// Safe on a nil receiver (serves 404s).
func (s *Statusz) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s == nil {
			http.Error(w, "statusz disabled", http.StatusNotFound)
			return
		}
		names, sections := s.render()
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(sections)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprint(w, "<!DOCTYPE html><html><head><title>hostprof statusz</title></head><body><h1>statusz</h1>")
		fmt.Fprint(w, `<p><a href="/metrics">/metrics</a> · <a href="/varz">/varz</a> · <a href="/debug/traces">/debug/traces</a> · <a href="/debug/prof/">/debug/prof/</a></p>`)
		for _, n := range names {
			body, err := json.MarshalIndent(sections[n], "", "  ")
			if err != nil {
				body = []byte(fmt.Sprintf("render error: %v", err))
			}
			fmt.Fprintf(w, "<h2>%s</h2><pre>%s</pre>",
				html.EscapeString(n), html.EscapeString(string(body)))
		}
		fmt.Fprint(w, "</body></html>")
	})
}
