// Package tracer is a zero-dependency, context-propagated tracing
// subsystem layered on the obs metrics registry. It answers the
// question aggregate histograms cannot: why was *this* request slow?
//
// Model:
//
//   - A Span measures one operation. Spans form a tree via
//     context.Context: StartSpan under a context that carries a span
//     creates a child; under a bare context it starts a new trace.
//   - Trace and span IDs follow the W3C Trace Context format, so a
//     `traceparent` header carries causality across processes — the CLI
//     client and the serving backend join one trace.
//   - A deterministic head sampler decides per trace ID whether a trace
//     is kept; the decision is a pure function of (rate, trace ID), so
//     every process holding the same ID agrees without coordination.
//     Traces that record an error are kept regardless (tail retention).
//   - Completed traces land in a fixed-size ring buffer, exported at
//     /debug/traces as JSON or Chrome trace-event format (Perfetto).
//
// Cost contract (mirrors obs): every method is safe on a nil *Tracer
// and a nil *Span, and a disabled tracer (nil, or SampleRate 0) makes
// StartSpan a nil check returning the context unchanged — no
// allocation, so instrumentation can be wired unconditionally.
package tracer

import (
	"context"
	"encoding/binary"
	"encoding/hex"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"hostprof/internal/obs"
)

// A TraceID identifies one distributed trace (16 bytes, hex on the
// wire).
type TraceID [16]byte

// IsZero reports whether the ID is the invalid all-zero ID.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// String returns the 32-char lowercase hex form.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// A SpanID identifies one span within a trace (8 bytes, hex on the
// wire).
type SpanID [8]byte

// IsZero reports whether the ID is the invalid all-zero ID.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String returns the 16-char lowercase hex form.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// An Attr is one key/value annotation on a span.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// A SpanEvent is one timestamped point annotation within a span.
type SpanEvent struct {
	UnixNano int64  `json:"unix_nano"`
	Msg      string `json:"msg"`
}

// SpanData is the immutable record of a completed span — the unit
// stored in the trace buffer and exchanged over /debug/traces.
type SpanData struct {
	TraceID  string      `json:"trace_id"`
	SpanID   string      `json:"span_id"`
	ParentID string      `json:"parent_id,omitempty"`
	Service  string      `json:"service"`
	Name     string      `json:"name"`
	Start    int64       `json:"start_unix_nano"`
	Duration int64       `json:"duration_nano"`
	Attrs    []Attr      `json:"attrs,omitempty"`
	Events   []SpanEvent `json:"events,omitempty"`
	Error    string      `json:"error,omitempty"`
}

// Config assembles a Tracer.
type Config struct {
	// Service names this process in exported spans (e.g.
	// "hostprof-serve"). Default "hostprof".
	Service string
	// SampleRate is the head-sampling rate in [0, 1]. 0 disables
	// tracing entirely (StartSpan becomes a no-op); 1 keeps every
	// trace. Fractional rates keep a deterministic subset by trace ID,
	// plus every trace that records an error.
	SampleRate float64
	// BufferTraces is the completed-trace ring capacity. Default 256.
	BufferTraces int
	// Metrics, when non-nil, receives tracer counters
	// (hostprof_trace_* names).
	Metrics *obs.Registry
	// Seed fixes the ID sequence for tests; 0 seeds from the clock.
	Seed uint64
	// Sink, when non-nil, receives a copy of every kept trace's spans
	// at completion — the cross-process export hook a Pusher plugs into
	// so a shard's half of a distributed trace reaches the gateway's
	// collector. Called synchronously from the root span's End, so
	// implementations must not block (Pusher.Offer drops instead).
	Sink func(spans []SpanData)
}

// Tracer creates spans and retains completed traces. All methods are
// safe for concurrent use and on a nil receiver.
type Tracer struct {
	service string
	thresh  uint64 // head-sampling threshold over the ID's low 8 bytes
	idstate atomic.Uint64
	buf     ring
	sink    func([]SpanData)

	spans   *obs.Counter
	kept    *obs.Counter
	dropped *obs.Counter
}

// New builds a Tracer. A SampleRate of 0 still returns a usable (but
// fully disabled) tracer; callers wanting "no tracing" may equally pass
// a nil *Tracer around.
func New(cfg Config) *Tracer {
	if cfg.Service == "" {
		cfg.Service = "hostprof"
	}
	if cfg.BufferTraces <= 0 {
		cfg.BufferTraces = 256
	}
	t := &Tracer{
		service: cfg.Service,
		thresh:  sampleThreshold(cfg.SampleRate),
		buf:     ring{cap: cfg.BufferTraces, byID: make(map[TraceID]*traceData)},
		sink:    cfg.Sink,
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = uint64(time.Now().UnixNano())
	}
	t.idstate.Store(seed)
	if reg := cfg.Metrics; reg != nil {
		reg.Describe("hostprof_trace_spans_total", "spans recorded by the tracer")
		reg.Describe("hostprof_traces_kept_total", "completed traces retained in the trace buffer")
		reg.Describe("hostprof_traces_dropped_total", "completed traces discarded by the sampler")
		t.spans = reg.Counter("hostprof_trace_spans_total")
		t.kept = reg.Counter("hostprof_traces_kept_total")
		t.dropped = reg.Counter("hostprof_traces_dropped_total")
		reg.Describe("hostprof_trace_buffer_traces", "traces currently held in the ring buffer")
		reg.GaugeFunc("hostprof_trace_buffer_traces", func() float64 { return float64(t.buf.len()) })
	}
	return t
}

// sampleThreshold maps a rate in [0, 1] onto the uint64 space the
// sampler compares trace IDs against.
func sampleThreshold(rate float64) uint64 {
	switch {
	case rate <= 0 || math.IsNaN(rate):
		return 0
	case rate >= 1:
		return math.MaxUint64
	default:
		return uint64(rate * float64(math.MaxUint64))
	}
}

// Enabled reports whether StartSpan can create spans. Safe on nil.
func (t *Tracer) Enabled() bool { return t != nil && t.thresh > 0 }

// Service returns the tracer's service name. Safe on nil.
func (t *Tracer) Service() string {
	if t == nil {
		return ""
	}
	return t.service
}

// sampled is the deterministic head decision: a pure function of
// (threshold, trace ID), so every process agrees on the same ID.
func (t *Tracer) sampled(id TraceID) bool {
	if t == nil {
		return false
	}
	return binary.BigEndian.Uint64(id[8:]) <= t.thresh
}

// nextID advances the splitmix64 ID stream.
func (t *Tracer) nextID() uint64 {
	x := t.idstate.Add(0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	if x == 0 {
		x = 1
	}
	return x
}

func (t *Tracer) newTraceID() TraceID {
	var id TraceID
	binary.BigEndian.PutUint64(id[:8], t.nextID())
	binary.BigEndian.PutUint64(id[8:], t.nextID())
	return id
}

func (t *Tracer) newSpanID() SpanID {
	var id SpanID
	binary.BigEndian.PutUint64(id[:], t.nextID())
	return id
}

// traceData accumulates the completed spans of one trace; the ring
// buffer holds pointers, so spans ended after the root (stragglers)
// still surface in exports.
type traceData struct {
	id      TraceID
	sampled bool

	mu      sync.Mutex
	errored bool
	spans   []SpanData
}

// A Span is one live operation in a trace. A nil *Span is a valid
// no-op, so callers never need to check whether tracing is enabled.
type Span struct {
	tr     *Tracer
	td     *traceData
	parent *Span // nil for a local root
	name   string
	id     SpanID
	pid    SpanID // parent span ID (may be remote)
	start  time.Time

	mu     sync.Mutex
	ended  bool
	err    error
	attrs  []Attr
	events []SpanEvent
	stages []Stage
}

// A Stage is one completed child operation of a span — the raw material
// of the slow-request breakdown.
type Stage struct {
	Name     string
	Duration time.Duration
}

type spanKey struct{}

// ContextWithSpan returns a context carrying s; StartSpan under it
// creates children of s.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, s)
}

// FromContext returns the span carried by ctx, or nil.
func FromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

type remoteKey struct{}

// ContextWithRemote marks ctx with a remote parent (a parsed
// traceparent): the next StartSpan joins that trace instead of opening
// a new one.
func ContextWithRemote(ctx context.Context, sc SpanContext) context.Context {
	if sc.Trace.IsZero() {
		return ctx
	}
	return context.WithValue(ctx, remoteKey{}, sc)
}

func remoteFromContext(ctx context.Context) (SpanContext, bool) {
	sc, ok := ctx.Value(remoteKey{}).(SpanContext)
	return sc, ok
}

// StartSpan begins a span named name. Under a context carrying a span
// it creates a child; under a context marked with ContextWithRemote it
// joins the remote trace as a local root; otherwise it opens a new
// trace, head-sampled by ID. The returned context carries the new span.
// On a disabled tracer it returns (ctx, nil) without allocating.
func (t *Tracer) StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	if !t.Enabled() {
		return ctx, nil
	}
	s := &Span{tr: t, name: name, id: t.newSpanID(), start: time.Now()}
	if parent := FromContext(ctx); parent != nil {
		s.td, s.parent, s.pid = parent.td, parent, parent.id
	} else if rc, ok := remoteFromContext(ctx); ok {
		// The local head decision is ORed with the remote sampled flag:
		// deterministic-by-ID means both usually agree, and a sampling
		// upstream must not lose its server half.
		s.td = &traceData{id: rc.Trace, sampled: rc.Sampled || t.sampled(rc.Trace)}
		s.pid = rc.Span
	} else {
		id := t.newTraceID()
		s.td = &traceData{id: id, sampled: t.sampled(id)}
	}
	return context.WithValue(ctx, spanKey{}, s), s
}

// TraceID returns the span's trace ID (zero on nil).
func (s *Span) TraceID() TraceID {
	if s == nil {
		return TraceID{}
	}
	return s.td.id
}

// TraceIDString returns the hex trace ID, or "" on nil — the form
// histogram exemplars and log records want.
func (s *Span) TraceIDString() string {
	if s == nil {
		return ""
	}
	return s.td.id.String()
}

// SpanID returns the span's own ID (zero on nil).
func (s *Span) SpanID() SpanID {
	if s == nil {
		return SpanID{}
	}
	return s.id
}

// Recording reports whether the span is live (non-nil).
func (s *Span) Recording() bool { return s != nil }

// Traceparent renders the span as a W3C traceparent header value, or
// "" on nil.
func (s *Span) Traceparent() string {
	if s == nil {
		return ""
	}
	return FormatTraceparent(SpanContext{Trace: s.td.id, Span: s.id, Sampled: s.td.sampled})
}

// SetAttr annotates the span with a key/value pair.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// Event records a timestamped point annotation (e.g. one training
// epoch).
func (s *Span) Event(msg string) {
	if s == nil {
		return
	}
	ev := SpanEvent{UnixNano: time.Now().UnixNano(), Msg: msg}
	s.mu.Lock()
	s.events = append(s.events, ev)
	s.mu.Unlock()
}

// Error marks the span (and therefore its trace) failed. An errored
// trace is always retained, whatever the head sampler decided. A nil
// err is ignored.
func (s *Span) Error(err error) {
	if s == nil || err == nil {
		return
	}
	s.mu.Lock()
	s.err = err
	s.mu.Unlock()
	s.td.mu.Lock()
	s.td.errored = true
	s.td.mu.Unlock()
}

// addStage records a completed child on its parent.
func (s *Span) addStage(name string, d time.Duration) {
	s.mu.Lock()
	s.stages = append(s.stages, Stage{Name: name, Duration: d})
	s.mu.Unlock()
}

// Stages returns the completed direct children of the span, in
// completion order — the per-stage breakdown a slow-request log wants.
// The slice is a copy. Nil-safe.
func (s *Span) Stages() []Stage {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Stage, len(s.stages))
	copy(out, s.stages)
	return out
}

// End completes the span, appending its record to the trace; ending a
// local root offers the trace to the ring buffer (kept when sampled or
// errored). End is idempotent; the first call wins. Returns the span's
// elapsed time (0 on nil).
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	d := time.Since(s.start)
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return d
	}
	s.ended = true
	data := SpanData{
		TraceID:  s.td.id.String(),
		SpanID:   s.id.String(),
		Service:  s.tr.service,
		Name:     s.name,
		Start:    s.start.UnixNano(),
		Duration: int64(d),
		Attrs:    s.attrs,
		Events:   s.events,
	}
	if !s.pid.IsZero() {
		data.ParentID = s.pid.String()
	}
	if s.err != nil {
		data.Error = s.err.Error()
	}
	s.mu.Unlock()
	if s.parent != nil {
		s.parent.addStage(s.name, d)
	}
	s.td.mu.Lock()
	s.td.spans = append(s.td.spans, data)
	s.td.mu.Unlock()
	s.tr.spans.Inc()
	if s.parent == nil {
		s.tr.finish(s.td)
	}
	return d
}

// finish applies the keep decision to a completed trace.
func (t *Tracer) finish(td *traceData) {
	td.mu.Lock()
	keep := td.sampled || td.errored
	td.mu.Unlock()
	if !keep {
		t.dropped.Inc()
		return
	}
	t.kept.Inc()
	t.buf.add(td)
	if t.sink != nil {
		td.mu.Lock()
		spans := make([]SpanData, len(td.spans))
		copy(spans, td.spans)
		td.mu.Unlock()
		t.sink(spans)
	}
}

// ring is the completed-trace buffer: fixed capacity, oldest evicted
// first. It is locked only on trace completion and export, never per
// span.
type ring struct {
	mu   sync.Mutex
	cap  int
	buf  []*traceData
	next int // overwrite cursor once full
	byID map[TraceID]*traceData
}

func (r *ring) len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.buf)
}

// add inserts td, merging into an existing entry with the same trace ID
// (the cross-process push path) and evicting the oldest entry at
// capacity.
func (r *ring) add(td *traceData) {
	r.mu.Lock()
	if have, ok := r.byID[td.id]; ok && have != td {
		r.mu.Unlock()
		td.mu.Lock()
		spans := td.spans
		errored := td.errored
		td.mu.Unlock()
		have.mu.Lock()
		have.spans = append(have.spans, spans...)
		have.errored = have.errored || errored
		have.mu.Unlock()
		return
	}
	if len(r.buf) < r.cap {
		r.buf = append(r.buf, td)
	} else {
		delete(r.byID, r.buf[r.next].id)
		r.buf[r.next] = td
		r.next = (r.next + 1) % r.cap
	}
	r.byID[td.id] = td
	r.mu.Unlock()
}

// snapshot returns the retained traces oldest-first.
func (r *ring) snapshot() []*traceData {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*traceData, 0, len(r.buf))
	if len(r.buf) < r.cap {
		out = append(out, r.buf...)
	} else {
		out = append(out, r.buf[r.next:]...)
		out = append(out, r.buf[:r.next]...)
	}
	return out
}

func (r *ring) get(id TraceID) *traceData {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.byID[id]
}
