// countermeasures quantifies paper Section 7.4: which user-side defences
// actually stop a network observer from profiling. The same observer
// pipeline (SNI extraction, QUIC decryption, DNS learning, IP fallback,
// embedding training) runs against five traffic conditions, from plain
// HTTPS to a Tor-like tunnel, and reports how often its inferred top
// topic still matches what the user really browsed.
package main

import (
	"fmt"
	"log"

	"hostprof/internal/experiment"
)

func main() {
	cfg := experiment.SmallConfig(4242)
	fmt.Println("building world and baseline pipeline...")
	setup, err := experiment.NewSetup(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("running the countermeasure ladder (each step replays the full")
	fmt.Println("packet pipeline: synthesize wire -> observe -> train -> profile)...")
	fmt.Println()
	res, err := experiment.RunCountermeasures(setup)
	if err != nil {
		log.Fatal(err)
	}

	explain := map[string]string{
		"none":        "plain HTTPS + clear DNS",
		"doh":         "DNS-over-HTTPS (queries hidden, SNI still visible)",
		"ech+doh":     "encrypted ClientHello + DoH (only destination IPs left)",
		"ech+doh+cdn": "+ CDN co-hosting: sites share 4 front IPs",
		"tor-like":    "everything tunnelled to a single relay IP",
	}
	fmt.Printf("%-14s %-55s %8s %10s\n", "defence", "what the observer still sees", "profiled", "ip-only")
	for _, n := range res.Order {
		fmt.Printf("%-14s %-55s %7.0f%% %9.0f%%\n",
			n, explain[n], 100*res.MatchRate[n], 100*res.Fallback[n])
	}
	fmt.Println()
	fmt.Println("reading: 'profiled' is how often the observer's inferred top topic")
	fmt.Println("matches the user's actual browsing. Ad-blockers and DNS privacy do")
	fmt.Println("not appear on this ladder at all — they never touch what the network")
	fmt.Println("sees. Only destination-hiding (co-hosting at scale, Tor) degrades the")
	fmt.Println("attack to chance, which is the paper's closing argument.")
}
