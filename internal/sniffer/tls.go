package sniffer

import (
	"encoding/binary"
	"errors"
	"fmt"

	"hostprof/internal/stats"
)

// TLS constants relevant to ClientHello/SNI handling.
const (
	tlsRecordHandshake    = 0x16
	tlsHandshakeClientHi  = 0x01
	tlsExtServerName      = 0x0000
	tlsExtSupportedGroups = 0x000a
	tlsExtALPN            = 0x0010
	tlsExtSupportedVers   = 0x002b
	tlsSNIHostName        = 0x00
)

// TLS parse errors.
var (
	// ErrNeedMore signals that the byte stream does not yet contain a
	// complete ClientHello; callers buffer more segments and retry.
	ErrNeedMore = errors.New("sniffer: need more data")
	// ErrNotClientHello marks a stream that cannot begin with a TLS
	// ClientHello, so buffering more data is pointless.
	ErrNotClientHello = errors.New("sniffer: not a TLS ClientHello")
	// ErrNoSNI marks a well-formed ClientHello without a server_name
	// extension (the observer falls back to IP addresses, paper §7.2).
	ErrNoSNI = errors.New("sniffer: ClientHello carries no SNI")
)

// BuildClientHelloECH renders a ClientHello with an encrypted_client_hello
// extension and *no* server_name — what a TLS-1.3+ECH client sends. The
// inner (encrypted) hello is opaque random bytes: an observer cannot read
// the hostname from it, which is exactly the failure mode paper Section
// 7.2 discusses (the destination IP still leaks).
func BuildClientHelloECH(rng *stats.RNG) []byte {
	return buildClientHello("", true, rng)
}

// BuildClientHello renders a TLS 1.2/1.3-style ClientHello record carrying
// the server_name extension for sni, with plausible cipher suites and
// companion extensions. rng randomizes the client random and session ID.
func BuildClientHello(sni string, rng *stats.RNG) []byte {
	return buildClientHello(sni, false, rng)
}

// tlsExtECH is the encrypted_client_hello extension codepoint (draft-ietf-
// tls-esni).
const tlsExtECH = 0xfe0d

func buildClientHello(sni string, ech bool, rng *stats.RNG) []byte {
	body := make([]byte, 0, 256+len(sni))

	// legacy_version TLS 1.2.
	body = append(body, 0x03, 0x03)
	// random (32 bytes).
	for i := 0; i < 4; i++ {
		body = binary.BigEndian.AppendUint64(body, rng.Uint64())
	}
	// legacy_session_id (32 bytes).
	body = append(body, 32)
	for i := 0; i < 4; i++ {
		body = binary.BigEndian.AppendUint64(body, rng.Uint64())
	}
	// cipher_suites.
	suites := []uint16{0x1301, 0x1302, 0x1303, 0xc02b, 0xc02f, 0x009e}
	body = binary.BigEndian.AppendUint16(body, uint16(2*len(suites)))
	for _, s := range suites {
		body = binary.BigEndian.AppendUint16(body, s)
	}
	// legacy_compression_methods: null only.
	body = append(body, 1, 0)

	// Extensions.
	ext := make([]byte, 0, 128+len(sni))
	if ech {
		// encrypted_client_hello: opaque payload standing in for the
		// HPKE-sealed inner hello.
		payload := make([]byte, 64)
		for i := 0; i+8 <= len(payload); i += 8 {
			binary.BigEndian.PutUint64(payload[i:], rng.Uint64())
		}
		ext = binary.BigEndian.AppendUint16(ext, tlsExtECH)
		ext = binary.BigEndian.AppendUint16(ext, uint16(len(payload)))
		ext = append(ext, payload...)
	} else {
		ext = appendSNIExtension(ext, sni)
	}
	// supported_groups: x25519, secp256r1.
	ext = binary.BigEndian.AppendUint16(ext, tlsExtSupportedGroups)
	ext = binary.BigEndian.AppendUint16(ext, 6)
	ext = binary.BigEndian.AppendUint16(ext, 4)
	ext = binary.BigEndian.AppendUint16(ext, 0x001d)
	ext = binary.BigEndian.AppendUint16(ext, 0x0017)
	// ALPN: h2, http/1.1.
	alpn := []byte{0x02, 'h', '2', 0x08, 'h', 't', 't', 'p', '/', '1', '.', '1'}
	ext = binary.BigEndian.AppendUint16(ext, tlsExtALPN)
	ext = binary.BigEndian.AppendUint16(ext, uint16(2+len(alpn)))
	ext = binary.BigEndian.AppendUint16(ext, uint16(len(alpn)))
	ext = append(ext, alpn...)
	// supported_versions: 1.3, 1.2.
	ext = binary.BigEndian.AppendUint16(ext, tlsExtSupportedVers)
	ext = binary.BigEndian.AppendUint16(ext, 5)
	ext = append(ext, 4, 0x03, 0x04, 0x03, 0x03)

	body = binary.BigEndian.AppendUint16(body, uint16(len(ext)))
	body = append(body, ext...)

	// Handshake header.
	hs := make([]byte, 0, 4+len(body))
	hs = append(hs, tlsHandshakeClientHi, byte(len(body)>>16), byte(len(body)>>8), byte(len(body)))
	hs = append(hs, body...)

	// Record header.
	rec := make([]byte, 0, 5+len(hs))
	rec = append(rec, tlsRecordHandshake, 0x03, 0x01)
	rec = binary.BigEndian.AppendUint16(rec, uint16(len(hs)))
	return append(rec, hs...)
}

// appendSNIExtension appends a server_name extension for host.
func appendSNIExtension(ext []byte, host string) []byte {
	ext = binary.BigEndian.AppendUint16(ext, tlsExtServerName)
	ext = binary.BigEndian.AppendUint16(ext, uint16(5+len(host)))
	ext = binary.BigEndian.AppendUint16(ext, uint16(3+len(host))) // server_name_list
	ext = append(ext, tlsSNIHostName)
	ext = binary.BigEndian.AppendUint16(ext, uint16(len(host)))
	return append(ext, host...)
}

// ParseSNI extracts the server_name from the beginning of a TLS stream.
// The stream may be incomplete (ErrNeedMore) or split across multiple
// records; handshake fragments are reassembled. It returns the hostname
// on success.
func ParseSNI(stream []byte) (string, error) {
	hs, err := reassembleHandshake(stream)
	if err != nil {
		return "", err
	}
	return parseClientHelloSNI(hs)
}

// reassembleHandshake concatenates the payloads of leading handshake
// records until a complete ClientHello message is available.
func reassembleHandshake(stream []byte) ([]byte, error) {
	var hs []byte
	rest := stream
	for {
		if len(rest) < 5 {
			if hsComplete(hs) {
				return hs, nil
			}
			return nil, ErrNeedMore
		}
		if rest[0] != tlsRecordHandshake {
			if len(hs) == 0 {
				return nil, ErrNotClientHello
			}
			if hsComplete(hs) {
				return hs, nil
			}
			return nil, ErrNotClientHello
		}
		if rest[1] != 0x03 {
			return nil, fmt.Errorf("%w: record version %#02x", ErrNotClientHello, rest[1])
		}
		rl := int(binary.BigEndian.Uint16(rest[3:5]))
		if rl == 0 || rl > 1<<14+256 {
			return nil, fmt.Errorf("%w: record length %d", ErrNotClientHello, rl)
		}
		if len(rest) < 5+rl {
			// Partial record: keep what we have; if the handshake
			// message is already complete we are done.
			hs = append(hs, rest[5:]...)
			if hsComplete(hs) {
				return hs, nil
			}
			return nil, ErrNeedMore
		}
		hs = append(hs, rest[5:5+rl]...)
		rest = rest[5+rl:]
		if hsComplete(hs) {
			return hs, nil
		}
	}
}

// hsComplete reports whether hs holds a full handshake message.
func hsComplete(hs []byte) bool {
	if len(hs) < 4 {
		return false
	}
	l := int(hs[1])<<16 | int(hs[2])<<8 | int(hs[3])
	return len(hs) >= 4+l
}

// parseClientHelloSNI walks a complete handshake message and pulls the
// server_name extension.
func parseClientHelloSNI(hs []byte) (string, error) {
	if len(hs) < 4 {
		return "", ErrNeedMore
	}
	if hs[0] != tlsHandshakeClientHi {
		return "", fmt.Errorf("%w: handshake type %d", ErrNotClientHello, hs[0])
	}
	l := int(hs[1])<<16 | int(hs[2])<<8 | int(hs[3])
	body := hs[4:]
	if len(body) < l {
		return "", ErrNeedMore
	}
	body = body[:l]

	// client_version(2) random(32).
	if len(body) < 34 {
		return "", fmt.Errorf("%w: short body", ErrNotClientHello)
	}
	off := 34
	// session_id.
	if off+1 > len(body) {
		return "", fmt.Errorf("%w: session id", ErrNotClientHello)
	}
	off += 1 + int(body[off])
	// cipher_suites.
	if off+2 > len(body) {
		return "", fmt.Errorf("%w: cipher suites", ErrNotClientHello)
	}
	off += 2 + int(binary.BigEndian.Uint16(body[off:]))
	// compression_methods.
	if off+1 > len(body) {
		return "", fmt.Errorf("%w: compression", ErrNotClientHello)
	}
	off += 1 + int(body[off])
	// extensions.
	if off+2 > len(body) {
		return "", ErrNoSNI // legal pre-extension ClientHello
	}
	extLen := int(binary.BigEndian.Uint16(body[off:]))
	off += 2
	if off+extLen > len(body) {
		return "", fmt.Errorf("%w: extensions overflow", ErrNotClientHello)
	}
	ext := body[off : off+extLen]
	for len(ext) >= 4 {
		typ := binary.BigEndian.Uint16(ext[0:2])
		el := int(binary.BigEndian.Uint16(ext[2:4]))
		if 4+el > len(ext) {
			return "", fmt.Errorf("%w: extension overflow", ErrNotClientHello)
		}
		if typ == tlsExtServerName {
			return parseSNIExtension(ext[4 : 4+el])
		}
		ext = ext[4+el:]
	}
	return "", ErrNoSNI
}

// parseSNIExtension decodes the server_name extension payload.
func parseSNIExtension(p []byte) (string, error) {
	if len(p) < 2 {
		return "", fmt.Errorf("%w: sni list", ErrNotClientHello)
	}
	listLen := int(binary.BigEndian.Uint16(p[0:2]))
	p = p[2:]
	if listLen > len(p) {
		return "", fmt.Errorf("%w: sni list overflow", ErrNotClientHello)
	}
	p = p[:listLen]
	for len(p) >= 3 {
		typ := p[0]
		nl := int(binary.BigEndian.Uint16(p[1:3]))
		if 3+nl > len(p) {
			return "", fmt.Errorf("%w: sni name overflow", ErrNotClientHello)
		}
		if typ == tlsSNIHostName {
			if nl == 0 {
				return "", ErrNoSNI
			}
			return string(p[3 : 3+nl]), nil
		}
		p = p[3+nl:]
	}
	return "", ErrNoSNI
}
