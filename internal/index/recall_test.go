package index

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// clusteredMatrix draws rows around nClusters centroids with isotropic
// noise, plus a uniform tail — the shape trained embeddings actually
// take (topical clusters plus long-tail hosts), and the regime where
// graph search must navigate rather than luck into neighbours. Cluster
// membership is r % nClusters (tail rows are r % 5 == 4), so tests can
// assemble same-topic row sets deterministically.
func clusteredMatrix(rng *rand.Rand, rows, dim, nClusters int, noise float64) []float64 {
	centroids := randMatrix(rng, nClusters, dim)
	m := make([]float64, rows*dim)
	for r := 0; r < rows; r++ {
		if r%5 == 4 { // uniform tail: 20% of rows
			for i := 0; i < dim; i++ {
				m[r*dim+i] = rng.Float64()*2 - 1
			}
			continue
		}
		c := r % nClusters
		for i := 0; i < dim; i++ {
			m[r*dim+i] = centroids[c*dim+i] + rng.NormFloat64()*noise
		}
	}
	return m
}

// sessionQuery builds an Eq.(3)-shaped query: an IDF-ish weighted sum
// of a few same-cluster rows (the topical session) plus one uniform
// tail row (the tracker everyone embeds), lightly perturbed.
func sessionQuery(rng *rand.Rand, vecs []float64, rows, dim, nClusters int) []float64 {
	q := make([]float64, dim)
	anchor := rng.Intn(rows)
	for anchor%5 == 4 {
		anchor = rng.Intn(rows)
	}
	hosts := 3 + rng.Intn(6)
	for h := 0; h < hosts; h++ {
		r := (anchor + h*nClusters) % rows // same cluster, different hosts
		if r%5 == 4 {
			r = (r + nClusters) % rows
		}
		w := 0.3 + rng.Float64()
		for i := 0; i < dim; i++ {
			q[i] += w * vecs[r*dim+i]
		}
	}
	tail := rng.Intn(rows/5)*5 + 4
	for i := 0; i < dim; i++ {
		q[i] += 0.3 * vecs[tail*dim+i]
		q[i] += (rng.Float64()*2 - 1) * 0.05
	}
	return q
}

// TestANNRecallGate is the CI recall gate: over a clustered corpus
// shaped like trained embeddings, queried with session-shaped weighted
// host mixtures (the Eq.(3) workload), ANN recall@10 against the exact
// index must stay at or above 0.95 at the default ef. Fully seeded, so
// a failure is a real regression, not flake.
func TestANNRecallGate(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	rows, dim := 12_000, 64
	const nClusters = 150
	vecs := clusteredMatrix(rng, rows, dim, nClusters, 0.35)
	ix := New(vecs, rows, dim, Config{})
	ann := ix.BuildANN(ANNConfig{Seed: 17})

	const queries, k = 100, 10
	var exact, approx []Result
	hits, want := 0, 0
	fallbacks := 0
	for qi := 0; qi < queries; qi++ {
		q := sessionQuery(rng, vecs, rows, dim, nClusters)
		exact = ix.SearchAppend(exact[:0], q, k, 0, NoExclude)
		var fb bool
		approx, fb = ann.SearchAppend(approx[:0], q, k, 0, 0, NoExclude)
		if fb {
			fallbacks++
		}
		hits += RecallHits(exact, approx)
		want += len(exact)
	}
	recall := float64(hits) / float64(want)
	t.Logf("recall@%d = %.4f over %d queries (%d fallbacks)", k, recall, queries, fallbacks)
	if recall < 0.95 {
		t.Fatalf("recall@%d = %.4f, gate requires >= 0.95", k, recall)
	}
	if fallbacks == queries {
		t.Fatal("every query fell back to exact; the gate never exercised the graph")
	}
}

// TestANNRecallProperty is the property harness of the ISSUE: for any
// corpus shape, worker count and ef, the ANN is deterministic, every
// returned ID appears in the exact top-(k+slack), and returned items
// carry bit-exact exact-index scores in (score desc, ID asc) order.
func TestANNRecallProperty(t *testing.T) {
	prop := func(seed int64, rowsRaw, dimRaw, kRaw, efRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 300 + int(rowsRaw)*2 // 300..810
		dim := 8 + int(dimRaw)%25    // 8..32
		k := 1 + int(kRaw)%20        // 1..20
		ef := 8 + int(efRaw)%57      // 8..64
		vecs := clusteredMatrix(rng, rows, dim, 10, 0.3)
		ix := New(vecs, rows, dim, Config{BlockRows: 64})
		ann := ix.BuildANN(ANNConfig{Ef: ef, Seed: uint64(seed)})
		q := randMatrix(rng, 1, dim)

		base, baseFB := ann.SearchAppend(nil, q, k, ef, 1, NoExclude)
		for workers := 2; workers <= 4; workers++ {
			got, fb := ann.SearchAppend(nil, q, k, ef, workers, NoExclude)
			if fb != baseFB || !reflect.DeepEqual(got, base) {
				t.Logf("seed=%d: non-deterministic across workers", seed)
				return false
			}
		}

		// Containment: ANN answers live in the exact top-(k+slack). The
		// searched beam holds ef candidates, so slack = ef bounds how far
		// down the exact ranking any returned row can sit.
		slack := ef
		exact := ix.SearchAppend(nil, q, k+slack, 1, NoExclude)
		pos := make(map[int32]int, len(exact))
		for i, r := range exact {
			pos[r.ID] = i
		}
		prev := -1
		for _, r := range base {
			i, ok := pos[r.ID]
			if !ok {
				t.Logf("seed=%d: ID %d outside exact top-%d", seed, r.ID, k+slack)
				return false
			}
			if exact[i].Score != r.Score {
				t.Logf("seed=%d: ID %d score %g != exact %g", seed, r.ID, r.Score, exact[i].Score)
				return false
			}
			if i <= prev { // exact order is the shared total order
				t.Logf("seed=%d: results out of (score desc, ID asc) order", seed)
				return false
			}
			prev = i
		}
		return true
	}
	cfg := &quick.Config{
		MaxCount: 25,
		Rand:     rand.New(rand.NewSource(99)), // seeded: failures reproduce
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestRecallHelpers(t *testing.T) {
	ex := []Result{{ID: 1}, {ID: 2}, {ID: 3}, {ID: 4}}
	ap := []Result{{ID: 2}, {ID: 4}, {ID: 9}}
	if h := RecallHits(ex, ap); h != 2 {
		t.Fatalf("hits = %d, want 2", h)
	}
	if r := Recall(ex, ap); r != 0.5 {
		t.Fatalf("recall = %g, want 0.5", r)
	}
	if r := Recall(nil, ap); r != 1 {
		t.Fatalf("empty exact set: recall = %g, want 1", r)
	}
	if h := RecallHits(nil, ap); h != 0 {
		t.Fatalf("empty exact set: hits = %d, want 0", h)
	}
}
