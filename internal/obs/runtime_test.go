package obs

import (
	"strings"
	"testing"
)

func TestRegisterRuntimeMetrics(t *testing.T) {
	r := NewRegistry()
	RegisterRuntimeMetrics(r)
	RegisterRuntimeMetrics(r) // idempotent: re-registration must not panic

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, name := range []string{
		"hostprof_go_goroutines",
		"hostprof_go_gomaxprocs",
		"hostprof_go_heap_inuse_bytes",
		"hostprof_go_gc_pause_seconds_total",
		"hostprof_go_gc_runs_total",
	} {
		if !strings.Contains(out, name+" ") {
			t.Errorf("runtime metric %s missing from exposition", name)
		}
	}
	// The process has at least one goroutine and a positive GOMAXPROCS.
	for _, m := range r.Snapshot() {
		switch m.Name {
		case "hostprof_go_goroutines", "hostprof_go_gomaxprocs", "hostprof_go_heap_inuse_bytes":
			if m.Value <= 0 {
				t.Errorf("%s = %v, want > 0", m.Name, m.Value)
			}
		}
	}
	RegisterRuntimeMetrics(nil) // nil registry is a no-op
}
