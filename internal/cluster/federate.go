package cluster

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"hostprof/internal/obs"
)

// federator caches per-shard /varz scrapes behind a short TTL so the
// gateway can serve a whole-cluster metrics view on demand without
// hammering the shards: one scrape fan-out amortizes over every
// /v1/cluster/metrics and federated /metrics read inside the TTL.
// Nothing here runs unless a federation endpoint is actually read, so
// a gateway nobody scrapes pays zero.
type federator struct {
	ttl time.Duration

	mu      sync.Mutex
	last    time.Time
	scrapes map[string]*shardScrape
}

// shardScrape is the newest (or last good) view of one shard's /varz.
type shardScrape struct {
	at    time.Time // when snaps was fetched successfully
	err   string    // last scrape error, "" when the last scrape worked
	snaps []obs.MetricSnapshot
}

// ShardScrapeStatus is one shard's entry in the /v1/cluster/metrics
// body: ok (fresh), stale (scrape failing, last good snapshot served)
// or missing (never scraped successfully — no data from this shard).
type ShardScrapeStatus struct {
	Backend    string  `json:"backend"`
	Status     string  `json:"status"`
	AgeSeconds float64 `json:"age_seconds,omitempty"`
	Series     int     `json:"series,omitempty"`
	Error      string  `json:"error,omitempty"`
}

// ClusterMetrics is the GET /v1/cluster/metrics body: the per-shard
// scrape ledger plus the merged series. Partial scrapes degrade the
// shard entry, never the endpoint.
type ClusterMetrics struct {
	Shards  []ShardScrapeStatus  `json:"shards"`
	Metrics []obs.MetricSnapshot `json:"metrics"`
}

// federate returns the per-shard scrape set, refreshing it when the
// cache is older than the TTL. A shard that fails to answer keeps its
// previous snapshot (stale) rather than disappearing; a shard that
// never answered is reported missing. Refreshes are serialized: a
// second reader inside the refresh window reuses the first one's
// result.
func (g *Gateway) federate(ctx context.Context) map[string]*shardScrape {
	f := g.fed
	f.mu.Lock()
	if time.Since(f.last) < f.ttl && f.scrapes != nil {
		out := f.scrapes
		f.mu.Unlock()
		return out
	}
	f.mu.Unlock()

	g.mu.Lock()
	backends := append([]string(nil), g.backends...)
	g.mu.Unlock()

	type result struct {
		name  string
		snaps []obs.MetricSnapshot
		err   error
	}
	results := make(chan result, len(backends))
	var wg sync.WaitGroup
	for _, b := range backends {
		wg.Add(1)
		go func(b string) {
			defer wg.Done()
			snaps, err := g.scrapeVarz(ctx, b)
			results <- result{name: b, snaps: snaps, err: err}
		}(b)
	}
	wg.Wait()
	close(results)

	f.mu.Lock()
	defer f.mu.Unlock()
	next := make(map[string]*shardScrape, len(backends))
	for r := range results {
		prev := f.scrapes[r.name]
		if r.err == nil {
			next[r.name] = &shardScrape{at: time.Now(), snaps: r.snaps}
		} else if prev != nil && prev.snaps != nil {
			next[r.name] = &shardScrape{at: prev.at, err: r.err.Error(), snaps: prev.snaps}
		} else {
			next[r.name] = &shardScrape{err: r.err.Error()}
		}
	}
	f.scrapes = next
	f.last = time.Now()
	return next
}

// cached returns the scrape set without refreshing — what a GaugeFunc
// evaluated during the gateway's own /metrics render may safely read.
func (f *federator) cached() map[string]*shardScrape {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.scrapes
}

// scrapeVarz fetches one shard's /varz snapshot.
func (g *Gateway) scrapeVarz(ctx context.Context, backend string) ([]obs.MetricSnapshot, error) {
	ctx, cancel := context.WithTimeout(ctx, g.cfg.ShardTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, backend+"/varz", nil)
	if err != nil {
		return nil, err
	}
	resp, err := g.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var snaps []obs.MetricSnapshot
	if err := json.NewDecoder(io.LimitReader(resp.Body, 16<<20)).Decode(&snaps); err != nil {
		return nil, err
	}
	return snaps, nil
}

// seriesKey is benchfmt-style series identity: family name plus the
// sorted label pairs, one string so map lookups are one hash.
func seriesKey(name string, labels map[string]string) string {
	if len(labels) == 0 {
		return name
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(name)
	for _, k := range keys {
		b.WriteByte('\x00')
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(labels[k])
	}
	return b.String()
}

// mergeScrapes folds every shard's snapshot into one cluster view:
//
//   - counters with the same (name, labels) sum across shards;
//   - gauges stay per-shard, distinguished by an added shard label
//     (summing a shard-local level like heap bytes would lie);
//   - histograms with the same identity merge by bucket bound: counts
//     add per LE (bounds are unioned when shards disagree), sum and
//     count add, exemplars are dropped (they are per-shard evidence).
//
// Output is sorted by (name, shard label, label signature), so the
// body is deterministic given the same scrape set.
func mergeScrapes(scrapes map[string]*shardScrape) []obs.MetricSnapshot {
	type histAcc struct {
		buckets map[float64]int64
		count   int64
		sum     float64
	}
	counters := make(map[string]*obs.MetricSnapshot)
	hists := make(map[string]*histAcc)
	histProto := make(map[string]obs.MetricSnapshot)
	var gauges []obs.MetricSnapshot

	names := make([]string, 0, len(scrapes))
	for name := range scrapes {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, shard := range names {
		sc := scrapes[shard]
		if sc == nil || sc.snaps == nil {
			continue
		}
		for _, s := range sc.snaps {
			key := seriesKey(s.Name, s.Labels)
			switch s.Kind {
			case "counter":
				if have, ok := counters[key]; ok {
					have.Value += s.Value
				} else {
					cp := s
					cp.Labels = copyLabels(s.Labels)
					counters[key] = &cp
				}
			case "histogram":
				acc, ok := hists[key]
				if !ok {
					acc = &histAcc{buckets: make(map[float64]int64)}
					hists[key] = acc
					proto := s
					proto.Labels = copyLabels(s.Labels)
					proto.Buckets = nil
					histProto[key] = proto
				}
				// Snapshot buckets are cumulative; de-accumulate per
				// bound so bounds union correctly, re-accumulate below.
				var prev int64
				for _, b := range s.Buckets {
					acc.buckets[b.LE] += b.Count - prev
					prev = b.Count
				}
				acc.count += s.Count
				acc.sum += s.Sum
			default: // gauge
				cp := s
				cp.Labels = copyLabels(s.Labels)
				if cp.Labels == nil {
					cp.Labels = make(map[string]string, 1)
				}
				cp.Labels["shard"] = shard
				gauges = append(gauges, cp)
			}
		}
	}

	out := make([]obs.MetricSnapshot, 0, len(counters)+len(hists)+len(gauges))
	for _, c := range counters {
		out = append(out, *c)
	}
	for key, acc := range hists {
		s := histProto[key]
		bounds := make([]float64, 0, len(acc.buckets))
		for le := range acc.buckets {
			bounds = append(bounds, le)
		}
		sort.Float64s(bounds)
		var cum int64
		s.Buckets = make([]obs.BucketSnapshot, len(bounds))
		for i, le := range bounds {
			cum += acc.buckets[le]
			s.Buckets[i] = obs.BucketSnapshot{LE: le, Count: cum}
		}
		s.Count = acc.count
		s.Sum = acc.sum
		out = append(out, s)
	}
	out = append(out, gauges...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		if si, sj := out[i].Labels["shard"], out[j].Labels["shard"]; si != sj {
			return si < sj
		}
		return seriesKey("", out[i].Labels) < seriesKey("", out[j].Labels)
	})
	return out
}

func copyLabels(in map[string]string) map[string]string {
	if in == nil {
		return nil
	}
	out := make(map[string]string, len(in))
	for k, v := range in {
		out[k] = v
	}
	return out
}

// scrapeStatuses renders the per-shard ledger, sorted by backend.
func scrapeStatuses(scrapes map[string]*shardScrape) []ShardScrapeStatus {
	out := make([]ShardScrapeStatus, 0, len(scrapes))
	for name, sc := range scrapes {
		st := ShardScrapeStatus{Backend: name, Error: sc.err}
		switch {
		case sc.snaps == nil:
			st.Status = "missing"
		case sc.err != "":
			st.Status = "stale"
		default:
			st.Status = "ok"
		}
		if sc.snaps != nil {
			st.AgeSeconds = time.Since(sc.at).Seconds()
			st.Series = len(sc.snaps)
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Backend < out[j].Backend })
	return out
}

// handleClusterMetrics serves GET /v1/cluster/metrics: the merged
// cluster view. The endpoint never fails on partial scrapes — a shard
// that does not answer degrades to stale or missing in the ledger and
// the merge covers whoever did answer.
func (g *Gateway) handleClusterMetrics(w http.ResponseWriter, r *http.Request) {
	scrapes := g.federate(r.Context())
	writeJSON(w, http.StatusOK, ClusterMetrics{
		Shards:  scrapeStatuses(scrapes),
		Metrics: mergeScrapes(scrapes),
	})
}

// federatedMetricsHandler serves the gateway's /metrics: its own
// registry first, then every federated shard series re-exposed with a
// shard="<backend>" label. Families the gateway itself exports (its
// own tracer/log counters share names with the shards') are skipped in
// the federated block so each # TYPE header appears once.
func (g *Gateway) federatedMetricsHandler() http.Handler {
	own := g.reg.MetricsHandler()
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		own.ServeHTTP(w, r)
		scrapes := g.federate(r.Context())
		names := make([]string, 0, len(scrapes))
		for name := range scrapes {
			names = append(names, name)
		}
		sort.Strings(names)
		// One WriteSnapshots call over all shards, so each federated
		// family gets exactly one # TYPE header.
		var combined []obs.MetricSnapshot
		for _, shard := range names {
			sc := scrapes[shard]
			if sc == nil || sc.snaps == nil {
				continue
			}
			for _, s := range sc.snaps {
				s.Labels = copyLabels(s.Labels)
				if s.Labels == nil {
					s.Labels = make(map[string]string, 1)
				}
				s.Labels["shard"] = shard
				combined = append(combined, s)
			}
		}
		local := g.reg.Families()
		obs.WriteSnapshots(w, combined, nil,
			func(family string) bool { return local[family] })
	})
}

// worstShardBurnRate is the rollup behind
// hostprof_gateway_worst_shard_burn_rate: the maximum
// hostprof_slo_burn_rate any shard reported in the cached federation
// view. Reads the cache only (never scrapes), so the gauge is free
// until something exercises federation and self-consistent with the
// rest of the scrape that reads it.
func (g *Gateway) worstShardBurnRate() float64 {
	worst := 0.0
	for _, sc := range g.fed.cached() {
		if sc == nil {
			continue
		}
		for _, s := range sc.snaps {
			if s.Name == "hostprof_slo_burn_rate" && s.Value > worst {
				worst = s.Value
			}
		}
	}
	return worst
}
