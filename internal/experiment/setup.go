// Package experiment reproduces every figure and table of the paper's
// evaluation (Section 6) on the synthetic substrate: user diversity over
// hostnames (Figure 2) and categories (Figure 3), embedding visualization
// and cluster quality (Figures 4 and 5), topic mixes of visited sites and
// served ads (Figure 6a-c), and the CTR comparison with its paired t-test
// (Section 6.4), plus the corpus statistics quoted in Sections 4 and 5.4.
//
// Each harness returns a typed result plus a Row for EXPERIMENTS.md
// recording the paper's value next to the measured one.
package experiment

import (
	"fmt"

	"hostprof/internal/ads"
	"hostprof/internal/core"
	"hostprof/internal/ontology"
	"hostprof/internal/synth"
	"hostprof/internal/trace"
)

// SetupConfig sizes a full end-to-end experiment run.
type SetupConfig struct {
	Universe   synth.UniverseConfig
	Population synth.PopulationConfig
	Ontology   synth.OntologyConfig
	Train      core.TrainConfig
	// ProfilerN is the N of Section 4.1 (default 1000, capped by vocab).
	ProfilerN int
	// SessionWindow is T in seconds (paper: 20 minutes).
	SessionWindow int64
	// ReportEvery is the extension's reporting period in seconds
	// (paper: 10 minutes).
	ReportEvery int64
	// Seed drives every stage unless overridden per-stage.
	Seed uint64
}

// SmallConfig returns a configuration sized for unit tests and CI: a few
// hundred hosts, a handful of users, fast training.
func SmallConfig(seed uint64) SetupConfig {
	return SetupConfig{
		Universe:   synth.UniverseConfig{Sites: 150, Trackers: 25, Seed: seed},
		Population: synth.PopulationConfig{Users: 30, Days: 6, PopularBias: 0.25, Seed: seed + 1},
		Ontology:   synth.OntologyConfig{Coverage: 0.106, Seed: seed + 2},
		Train: core.TrainConfig{
			Dim: 32, Epochs: 15, MinCount: 2, Workers: 1, Seed: seed + 3,
			// Subsampling disabled: on a corpus this small the 1e-3
			// threshold would discard most site-host occurrences.
			Subsample: -1,
		},
		ProfilerN:     40,
		SessionWindow: 20 * 60,
		ReportEvery:   10 * 60,
		Seed:          seed,
	}
}

// DefaultConfig returns the configuration used by cmd/experiments: large
// enough for stable statistics, small enough for a laptop.
func DefaultConfig(seed uint64) SetupConfig {
	return SetupConfig{
		Universe:   synth.UniverseConfig{Sites: 1200, Trackers: 120, Seed: seed},
		Population: synth.PopulationConfig{Users: 150, Days: 14, PopularBias: 0.25, Seed: seed + 1},
		Ontology:   synth.OntologyConfig{Coverage: 0.106, Seed: seed + 2},
		Train: core.TrainConfig{
			Dim: 64, Epochs: 4, MinCount: 3, Workers: 0, Seed: seed + 3,
		},
		ProfilerN:     40,
		SessionWindow: 20 * 60,
		ReportEvery:   10 * 60,
		Seed:          seed,
	}
}

// Setup bundles the trained pipeline all experiments share.
type Setup struct {
	Config     SetupConfig
	Universe   *synth.Universe
	Population *synth.Population
	// Raw is the full trace including tracker requests; Filtered has
	// blocklisted hosts removed (the profiling input, Section 5.4).
	Raw, Filtered *trace.Trace
	Ontology      *ontology.Ontology
	Blocklist     *ontology.Blocklist
	Model         *core.Model
	Profiler      *core.Profiler
	AdDB          *ads.DB
	Selector      *ads.Selector
	AdNetwork     *ads.AdNetwork
	Clicks        *ads.ClickModel
}

// NewSetup generates the universe and population, simulates browsing,
// filters trackers, trains the embedding on all per-user-day sequences
// and wires up profiler and ad machinery.
func NewSetup(cfg SetupConfig) (*Setup, error) {
	u := synth.NewUniverse(cfg.Universe)
	pop := synth.NewPopulation(u, cfg.Population)
	raw := pop.Browse()
	if raw.Len() == 0 {
		return nil, fmt.Errorf("experiment: empty browsing trace")
	}
	bl := synth.BuildBlocklist(u, 1, cfg.Seed+11)
	filtered := raw.FilterHosts(func(h string) bool { return !bl.Contains(h) })
	ont := synth.BuildOntology(u, cfg.Ontology)

	model, err := core.Train(filtered.AllSequences(), cfg.Train)
	if err != nil {
		return nil, fmt.Errorf("experiment: training: %w", err)
	}
	prof := core.NewProfiler(model, ont, core.ProfilerConfig{N: cfg.ProfilerN, Agg: core.AggIDF})

	db := ads.BuildFromOntology(ont, ads.BuildConfig{Seed: cfg.Seed + 13})
	sel, err := ads.NewSelector(db, ont, 20)
	if err != nil {
		return nil, fmt.Errorf("experiment: ad selector: %w", err)
	}
	return &Setup{
		Config:     cfg,
		Universe:   u,
		Population: pop,
		Raw:        raw,
		Filtered:   filtered,
		Ontology:   ont,
		Blocklist:  bl,
		Model:      model,
		Profiler:   prof,
		AdDB:       db,
		Selector:   sel,
		AdNetwork:  ads.NewAdNetwork(db, cfg.Seed+17),
		Clicks:     ads.NewClickModel(0, 0, cfg.Seed+19),
	}, nil
}

// Row is one line of EXPERIMENTS.md: the paper's reported value next to
// what this reproduction measures, with a pass/fail on the *shape*
// criterion (absolute numbers are not comparable across substrates).
type Row struct {
	ID        string // experiment id, e.g. "FIG2"
	Name      string
	Paper     string // the paper's claim
	Measured  string // this run's measurement
	Criterion string // what "shape holds" means here
	Pass      bool
}

// String renders the row as a markdown table line.
func (r Row) String() string {
	status := "FAIL"
	if r.Pass {
		status = "ok"
	}
	return fmt.Sprintf("| %s | %s | %s | %s | %s | %s |",
		r.ID, r.Name, r.Paper, r.Measured, r.Criterion, status)
}
