package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"os/exec"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hostprof/internal/server"
	"hostprof/internal/synth"
)

// shardDigestCounts reads record counts for a user set straight off one
// shard process's export surface.
func shardDigestCounts(t *testing.T, shardURL string, users []int) map[int]int {
	t.Helper()
	out := make(map[int]int, len(users))
	const batch = 64
	for start := 0; start < len(users); start += batch {
		end := start + batch
		if end > len(users) {
			end = len(users)
		}
		q := ""
		for i, u := range users[start:end] {
			if i > 0 {
				q += ","
			}
			q += strconv.Itoa(u)
		}
		resp, err := http.Get(shardURL + "/v1/export/digest?users=" + q)
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("digest on %s → %d: %s", shardURL, resp.StatusCode, raw)
		}
		var dr server.DigestResponse
		if err := json.Unmarshal(raw, &dr); err != nil {
			t.Fatal(err)
		}
		for k, d := range dr.Digests {
			u, err := strconv.Atoi(k)
			if err != nil {
				t.Fatalf("bad digest key %q", k)
			}
			out[u] = d.Count
		}
	}
	return out
}

// resizeViaHTTP posts a resize and requires one of the allowed
// statuses, returning the response status string.
func resizeViaHTTP(t *testing.T, gwURL string, backends []string, allowed ...int) string {
	t.Helper()
	body, _ := json.Marshal(ResizeRequest{Backends: backends})
	resp, err := http.Post(gwURL+"/v1/cluster/resize", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	ok := false
	for _, code := range allowed {
		if resp.StatusCode == code {
			ok = true
		}
	}
	if !ok {
		t.Fatalf("resize → %d (allowed %v): %s", resp.StatusCode, allowed, raw)
	}
	var rr ResizeResponse
	if err := json.Unmarshal(raw, &rr); err != nil {
		t.Fatalf("resize body: %v: %s", err, raw)
	}
	return rr.Status
}

// waitMigrationState polls the gateway until the installed (or last)
// migration reaches the wanted state.
func waitMigrationState(t *testing.T, gw *Gateway, want string, timeout time.Duration) *MigrationStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		st := gw.ClusterStatus()
		if st.Migration != nil && st.Migration.State == want {
			return st.Migration
		}
		if st.Migration != nil && terminalPhase(st.Migration.State) && st.Migration.State != want {
			t.Fatalf("migration reached %q, want %q: %+v", st.Migration.State, want, st.Migration)
		}
		if time.Now().After(deadline) {
			t.Fatalf("migration never reached %q: %+v", want, st.Migration)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestChaosClusterResizeGrowShrink is the tentpole acceptance test
// against real shard processes: grow 3→4 and then shrink 4→3, each
// under sustained report traffic, and prove zero loss — every acked
// visit is on exactly the shard the final ring names, and nowhere else
// among the members.
func TestChaosClusterResizeGrowShrink(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess chaos test skipped in -short")
	}
	addrs := freeAddrs(t, 4)
	urls := make([]string, 4)
	cmds := make([]*exec.Cmd, 4)
	for i := 0; i < 3; i++ {
		urls[i] = "http://" + addrs[i]
		cmds[i] = spawnChaosShard(t, addrs[i], t.TempDir())
	}
	urls[3] = "http://" + addrs[3]

	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))
	gw, err := New(Config{
		Backends:       urls[:3],
		VirtualNodes:   8, // few, coarse ranges: fast migrations, real wraps
		HealthInterval: -1,
		ShardTimeout:   3 * time.Second,
		Logger:         quiet,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()
	waitAlive := func(want int) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for gw.CheckHealth(context.Background()) != want {
			if time.Now().After(deadline) {
				t.Fatalf("cluster never reached %d alive shards: %+v", want, gw.ClusterStatus())
			}
			time.Sleep(50 * time.Millisecond)
		}
	}
	waitAlive(3)
	gwSrv := httptestServer(t, gw)

	u := synth.NewUniverse(synth.UniverseConfig{Sites: 100, Trackers: 15, Seed: 3})
	session := func(i int) []string {
		s := u.Sites[i%len(u.Sites)]
		hosts := []string{u.Hosts[s.Host].Name}
		for _, sup := range s.Support {
			hosts = append(hosts, u.Hosts[sup].Name)
		}
		return hosts
	}
	const users = 80
	allUsers := make([]int, users)
	for uid := 0; uid < users; uid++ {
		allUsers[uid] = uid
		report(t, gwSrv, uid, session(uid), http.StatusOK, http.StatusServiceUnavailable)
	}
	resp, err := http.Post(gwSrv+"/v1/retrain", "application/json", bytes.NewReader([]byte("{}")))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("retrain → %d", resp.StatusCode)
	}

	// Calibrate per-user records-per-report (the blocklist drops tracker
	// hosts, so len(session) is not it): after one seed report each,
	// whatever the owner holds for the user IS one report's worth.
	perReport := make([]int, users)
	acked := make([]atomic.Int64, users) // seed + traffic acks, per user
	{
		byOwner := map[string][]int{}
		for uid := 0; uid < users; uid++ {
			owner, _ := gw.Ring().Owner(uid)
			byOwner[owner] = append(byOwner[owner], uid)
		}
		for owner, us := range byOwner {
			for uid, n := range shardDigestCounts(t, owner, us) {
				perReport[uid] = n
			}
		}
		for uid := 0; uid < users; uid++ {
			if perReport[uid] == 0 {
				t.Fatalf("user %d seeded zero records; test world degenerate", uid)
			}
			acked[uid].Store(1)
		}
	}

	// verifyExact: every member shard holds exactly acked × perReport
	// records for the users the ring assigns it, zero for everyone else.
	// Only called with traffic stopped.
	verifyExact := func(phase string, members []string) {
		t.Helper()
		for _, member := range members {
			counts := shardDigestCounts(t, member, allUsers)
			for uid := 0; uid < users; uid++ {
				owner, _ := gw.Ring().Owner(uid)
				want := 0
				if owner == member {
					want = int(acked[uid].Load()) * perReport[uid]
				}
				if counts[uid] != want {
					t.Fatalf("%s: shard %s holds %d records for user %d, want %d (owner %s, acked %d)",
						phase, member, counts[uid], uid, want, owner, acked[uid].Load())
				}
			}
		}
	}

	// trafficDuring runs sustained reports from 4 workers while fn
	// executes, then stops them and waits. Only 200 counts as acked; a
	// 429 was shed before ingest; anything else fails the test.
	var tick atomic.Int64
	trafficDuring := func(fn func()) {
		t.Helper()
		stop := make(chan struct{})
		var wg sync.WaitGroup
		client := &http.Client{Timeout: 5 * time.Second}
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					uid := (w*striders + i) % users
					ts := 1_000_000 + tick.Add(1)
					body, _ := json.Marshal(server.ReportRequest{User: uid, Time: ts, Hosts: session(uid)})
					resp, err := client.Post(gwSrv+"/v1/report", "application/json", bytes.NewReader(body))
					if err != nil {
						t.Errorf("report user %d during resize: %v", uid, err)
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					switch resp.StatusCode {
					case http.StatusOK:
						acked[uid].Add(1)
					case http.StatusTooManyRequests:
						// shed before ingest; not acked, nothing stored
					default:
						t.Errorf("report user %d during resize → %d", uid, resp.StatusCode)
						return
					}
				}
			}(w)
		}
		fn()
		close(stop)
		wg.Wait()
	}

	// Grow 3→4 under traffic. spawnChaosShard blocks until the joiner
	// listens; the resize plan probes it before routing to it.
	cmds[3] = spawnChaosShard(t, addrs[3], t.TempDir())
	trafficDuring(func() {
		if got := resizeViaHTTP(t, gwSrv, urls, http.StatusAccepted); got != "started" {
			t.Fatalf("grow resize answered %q", got)
		}
		waitMigrationState(t, gw, "done", 60*time.Second)
	})
	if !gw.Ring().Equal(urls) {
		t.Fatalf("ring after grow: %v", gw.Ring().Nodes())
	}
	verifyExact("after grow", urls)

	// Shrink 4→3 under traffic: the joiner leaves again, handing its
	// keyspace back.
	trafficDuring(func() {
		if got := resizeViaHTTP(t, gwSrv, urls[:3], http.StatusAccepted); got != "started" {
			t.Fatalf("shrink resize answered %q", got)
		}
		waitMigrationState(t, gw, "done", 60*time.Second)
	})
	if !gw.Ring().Equal(urls[:3]) {
		t.Fatalf("ring after shrink: %v", gw.Ring().Nodes())
	}
	// The leaver keeps its stale copy (it left; purging it is pointless)
	// — exactness is asserted over the members.
	verifyExact("after shrink", urls[:3])

	totalAcked := int64(0)
	for uid := range acked {
		totalAcked += acked[uid].Load()
	}
	t.Logf("grow+shrink under traffic: %d acked reports across %d users, zero lost", totalAcked, users)
}

// TestChaosClusterResizeSourceKill SIGKILLs a migration source
// mid-copy: the dying source's ranges abort (roll back), the migration
// parks as failed while survivors keep serving, and — after the source
// restarts over its WAL — re-POSTing the same resize resumes to
// completion with exact final placement.
func TestChaosClusterResizeSourceKill(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess chaos test skipped in -short")
	}
	addrs := freeAddrs(t, 4)
	urls := make([]string, 4)
	dirs := make([]string, 4)
	cmds := make([]*exec.Cmd, 4)
	for i := 0; i < 4; i++ {
		urls[i] = "http://" + addrs[i]
		dirs[i] = t.TempDir()
		cmds[i] = spawnChaosShard(t, addrs[i], dirs[i])
	}

	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))
	gw, err := New(Config{
		Backends:          urls[:3],
		VirtualNodes:      8,
		HealthInterval:    -1,
		ShardTimeout:      3 * time.Second,
		MigrationThrottle: 2 * time.Millisecond, // hold the copy open for the kill
		MigrationChunk:    8,
		MigrationWorkers:  1,
		Logger:            quiet,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()
	waitAlive := func(want int) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for gw.CheckHealth(context.Background()) != want {
			if time.Now().After(deadline) {
				t.Fatalf("cluster never reached %d alive shards: %+v", want, gw.ClusterStatus())
			}
			time.Sleep(50 * time.Millisecond)
		}
	}
	waitAlive(3)
	gwSrv := httptestServer(t, gw)

	u := synth.NewUniverse(synth.UniverseConfig{Sites: 100, Trackers: 15, Seed: 3})
	session := func(i int) []string {
		s := u.Sites[i%len(u.Sites)]
		hosts := []string{u.Hosts[s.Host].Name}
		for _, sup := range s.Support {
			hosts = append(hosts, u.Hosts[sup].Name)
		}
		return hosts
	}
	const users = 60
	allUsers := make([]int, users)
	for uid := 0; uid < users; uid++ {
		allUsers[uid] = uid
		report(t, gwSrv, uid, session(uid), http.StatusOK, http.StatusServiceUnavailable)
	}
	// Per-user expected records (one seed report each), read per owner.
	expected := make([]int, users)
	{
		byOwner := map[string][]int{}
		for uid := 0; uid < users; uid++ {
			owner, _ := gw.Ring().Owner(uid)
			byOwner[owner] = append(byOwner[owner], uid)
		}
		for owner, us := range byOwner {
			for uid, n := range shardDigestCounts(t, owner, us) {
				expected[uid] = n
			}
		}
	}
	oldRing := gw.Ring()

	// Start the grow, wait for the copy to demonstrably run, then
	// SIGKILL the source of a range that is still copying.
	if got := resizeViaHTTP(t, gwSrv, urls, http.StatusAccepted); got != "started" {
		t.Fatalf("resize answered %q", got)
	}
	var victimURL string
	deadline := time.Now().Add(30 * time.Second)
	for victimURL == "" {
		if time.Now().After(deadline) {
			t.Fatalf("copy never started: %+v", gw.ClusterStatus().Migration)
		}
		st := gw.ClusterStatus().Migration
		if st != nil && st.RecordsCopied > 0 {
			for _, r := range st.RangeDetail {
				if r.State == "copying" || r.State == "pending" {
					victimURL = r.From
					break
				}
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	victim := -1
	for i, url := range urls {
		if url == victimURL {
			victim = i
		}
	}
	if victim < 0 || victim == 3 {
		t.Fatalf("victim %q is not an old member", victimURL)
	}
	if err := cmds[victim].Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmds[victim].Wait()

	failed := waitMigrationState(t, gw, "failed", 60*time.Second)
	if failed.RangesAborted == 0 {
		t.Fatalf("source died but no range aborted: %+v", failed)
	}
	// Survivors keep serving their keyspaces; the ring is still the old
	// one (no cutover happened for the whole membership).
	if !gw.Ring().Equal(urls[:3]) {
		t.Fatalf("ring changed after failed migration: %v", gw.Ring().Nodes())
	}
	servedOK := 0
	for uid := 0; uid < users; uid++ {
		owner, _ := oldRing.Owner(uid)
		if owner == urls[victim] {
			continue // shed or routed to a done range's target; not this assertion
		}
		report(t, gwSrv, uid, session(uid), http.StatusOK, http.StatusServiceUnavailable)
		servedOK++
	}
	if servedOK == 0 {
		t.Fatal("survivors owned no users; test world degenerate")
	}
	// These post-failure reports changed survivors' counts; fold them in.
	for uid := 0; uid < users; uid++ {
		owner, _ := oldRing.Owner(uid)
		if owner != urls[victim] {
			expected[uid] *= 2 // seed + post-failure report, identical host lists
		}
	}

	// Restart the victim over its WAL, then resume with the same target
	// membership.
	cmds[victim] = spawnChaosShard(t, addrs[victim], dirs[victim])
	waitAlive(4) // three old members plus the joiner the plan registered
	if got := resizeViaHTTP(t, gwSrv, urls, http.StatusAccepted); got != "resumed" {
		t.Fatalf("re-POST answered %q, want resumed", got)
	}
	done := waitMigrationState(t, gw, "done", 60*time.Second)
	if done.Resumes != 1 {
		t.Fatalf("resumes = %d, want 1", done.Resumes)
	}
	if !gw.Ring().Equal(urls) {
		t.Fatalf("ring after resumed grow: %v", gw.Ring().Nodes())
	}
	// Exact placement: every member holds precisely its ring-assigned
	// users' records — the WAL restart lost nothing (fsync=always), the
	// aborted ranges were recopied, sources purged.
	for _, member := range urls {
		counts := shardDigestCounts(t, member, allUsers)
		for uid := 0; uid < users; uid++ {
			owner, _ := gw.Ring().Owner(uid)
			want := 0
			if owner == member {
				want = expected[uid]
			}
			if counts[uid] != want {
				t.Fatalf("shard %s holds %d records for user %d, want %d (owner %s)",
					member, counts[uid], uid, want, owner)
			}
		}
	}
	t.Logf("source %d killed mid-copy and resumed: %d ranges, %d aborted on failure, %d records copied",
		victim, done.Ranges, failed.RangesAborted, done.RecordsCopied)
}
