package synth

import (
	"math"
	"testing"
)

func TestBuildOntologyCoverage(t *testing.T) {
	u := NewUniverse(UniverseConfig{Sites: 400, Seed: 31})
	ont := BuildOntology(u, OntologyConfig{Coverage: 0.106, Seed: 33})
	cov := ont.Coverage(u.HostNames())
	if math.Abs(cov-0.106) > 0.03 {
		t.Fatalf("coverage = %.3f, want ~0.106", cov)
	}
}

func TestBuildOntologyLabelsAreTruthful(t *testing.T) {
	u := smallUniverse()
	ont := BuildOntology(u, OntologyConfig{Coverage: 0.3, Noise: -1, Seed: 35})
	checked := 0
	for _, host := range ont.Hosts() {
		h, ok := u.HostByName(host)
		if !ok {
			t.Fatalf("labelled host %q not in universe", host)
		}
		truth := u.GroundTruthCategories(h.ID)
		if truth == nil {
			t.Fatalf("labelled host %q has no ground truth (kind %v)", host, h.Kind)
		}
		v, _ := ont.Lookup(host)
		for i := range v {
			if (v[i] > 0) != (truth[i] > 0) {
				t.Fatalf("label support differs from truth for %q", host)
			}
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no labels to check")
	}
}

func TestBuildOntologyPrefersPopularSites(t *testing.T) {
	u := NewUniverse(UniverseConfig{Sites: 400, Seed: 37})
	ont := BuildOntology(u, OntologyConfig{Coverage: 0.05, Seed: 39})
	var labPop, unlabPop float64
	var nLab, nUnlab int
	for _, s := range u.Sites {
		if ont.Covered(u.Hosts[s.Host].Name) {
			labPop += u.Popularity[s.ID]
			nLab++
		} else {
			unlabPop += u.Popularity[s.ID]
			nUnlab++
		}
	}
	if nLab == 0 || nUnlab == 0 {
		t.Skip("degenerate labelling")
	}
	if labPop/float64(nLab) <= unlabPop/float64(nUnlab) {
		t.Fatal("labelled sites are not more popular on average")
	}
}

func TestBuildOntologyNeverLabelsTrackers(t *testing.T) {
	u := smallUniverse()
	ont := BuildOntology(u, OntologyConfig{Coverage: 0.9, Seed: 41})
	for _, hid := range u.TrackerIDs {
		if ont.Covered(u.Hosts[hid].Name) {
			t.Fatal("tracker labelled")
		}
	}
	for _, hid := range u.SharedCDNIDs {
		if ont.Covered(u.Hosts[hid].Name) {
			t.Fatal("shared CDN labelled")
		}
	}
}

func TestBuildOntologyVectorsValid(t *testing.T) {
	u := smallUniverse()
	ont := BuildOntology(u, OntologyConfig{Coverage: 0.2, Noise: 0.2, Seed: 43})
	for _, host := range ont.Hosts() {
		v, _ := ont.Lookup(host)
		if !v.Valid() {
			t.Fatalf("noisy label out of [0,1] for %q", host)
		}
	}
}

func TestBuildBlocklistFull(t *testing.T) {
	u := smallUniverse()
	b := BuildBlocklist(u, 1, 45)
	if b.Len() != len(u.TrackerIDs) {
		t.Fatalf("blocklist has %d entries, want %d", b.Len(), len(u.TrackerIDs))
	}
	for _, hid := range u.TrackerIDs {
		if !b.Contains(u.Hosts[hid].Name) {
			t.Fatal("tracker missing from full blocklist")
		}
	}
}

func TestBuildBlocklistPartial(t *testing.T) {
	u := NewUniverse(UniverseConfig{Sites: 100, Trackers: 200, Seed: 47})
	b := BuildBlocklist(u, 0.5, 49)
	frac := float64(b.Len()) / float64(len(u.TrackerIDs))
	if frac < 0.35 || frac > 0.65 {
		t.Fatalf("partial blocklist covers %.2f, want ~0.5", frac)
	}
	// Out-of-range coverage falls back to full.
	if BuildBlocklist(u, 1.5, 51).Len() != 200 {
		t.Fatal("coverage > 1 should mean full")
	}
}
