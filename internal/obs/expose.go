package obs

import (
	"bufio"
	"io"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered metric in the Prometheus
// text exposition format (version 0.0.4): families sorted by name, one
// # HELP / # TYPE header per family, histogram buckets cumulative with
// a trailing +Inf. Callback gauges are evaluated without the registry
// lock held.
func (r *Registry) WritePrometheus(w io.Writer) error {
	ms, help := r.collect()
	bw := bufio.NewWriter(w)
	prev := ""
	for _, m := range ms {
		if m.name != prev {
			prev = m.name
			if h := help[m.name]; h != "" {
				bw.WriteString("# HELP ")
				bw.WriteString(m.name)
				bw.WriteByte(' ')
				bw.WriteString(escapeHelp(h))
				bw.WriteByte('\n')
			}
			bw.WriteString("# TYPE ")
			bw.WriteString(m.name)
			bw.WriteByte(' ')
			bw.WriteString(m.kind.String())
			bw.WriteByte('\n')
		}
		switch m.kind {
		case kindCounter:
			writeSample(bw, m.name, "", m.labels, "", formatInt(m.counter.Value()))
		case kindGauge:
			writeSample(bw, m.name, "", m.labels, "", formatFloat(m.gauge.Value()))
		case kindGaugeFunc:
			writeSample(bw, m.name, "", m.labels, "", formatFloat(m.fn()))
		case kindHistogram:
			h := m.hist
			var cum int64
			for i, ub := range h.upper {
				cum += h.counts[i].Load()
				writeSample(bw, m.name, "_bucket", m.labels, formatFloat(ub), formatInt(cum))
			}
			// The +Inf bucket equals the total count by construction.
			writeSample(bw, m.name, "_bucket", m.labels, "+Inf", formatInt(h.Count()))
			writeSample(bw, m.name, "_sum", m.labels, "", formatFloat(h.Sum()))
			writeSample(bw, m.name, "_count", m.labels, "", formatInt(h.Count()))
		}
	}
	return bw.Flush()
}

// writeSample emits one exposition line: name+suffix{labels[,le=le]} value.
func writeSample(bw *bufio.Writer, name, suffix string, labels []Label, le, value string) {
	bw.WriteString(name)
	bw.WriteString(suffix)
	if len(labels) > 0 || le != "" {
		bw.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				bw.WriteByte(',')
			}
			bw.WriteString(l.Name)
			bw.WriteString(`="`)
			bw.WriteString(escapeLabel(l.Value))
			bw.WriteByte('"')
		}
		if le != "" {
			if len(labels) > 0 {
				bw.WriteByte(',')
			}
			bw.WriteString(`le="`)
			bw.WriteString(le)
			bw.WriteByte('"')
		}
		bw.WriteByte('}')
	}
	bw.WriteByte(' ')
	bw.WriteString(value)
	bw.WriteByte('\n')
}

func formatInt(v int64) string { return strconv.FormatInt(v, 10) }

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// escapeLabel escapes a label value per the exposition format:
// backslash, double quote and newline.
func escapeLabel(s string) string { return labelEscaper.Replace(s) }

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

// escapeHelp escapes HELP text (backslash and newline only).
func escapeHelp(s string) string { return helpEscaper.Replace(s) }

// BucketSnapshot is one cumulative histogram bucket in a snapshot. The
// implicit +Inf bucket is omitted; Count covers all observations.
type BucketSnapshot struct {
	LE    float64 `json:"le"`
	Count int64   `json:"count"`
}

// MetricSnapshot is one metric series in a point-in-time snapshot.
type MetricSnapshot struct {
	Name   string            `json:"name"`
	Kind   string            `json:"kind"`
	Labels map[string]string `json:"labels,omitempty"`
	// Value is set for counters and gauges.
	Value float64 `json:"value"`
	// Count, Sum and Buckets are set for histograms.
	Count   int64            `json:"count,omitempty"`
	Sum     float64          `json:"sum,omitempty"`
	Buckets []BucketSnapshot `json:"buckets,omitempty"`
}

// Snapshot returns every registered metric with its current value, in
// the same deterministic order as WritePrometheus. Callback gauges are
// evaluated without the registry lock held.
func (r *Registry) Snapshot() []MetricSnapshot {
	ms, _ := r.collect()
	out := make([]MetricSnapshot, 0, len(ms))
	for _, m := range ms {
		s := MetricSnapshot{Name: m.name, Kind: m.kind.String()}
		if len(m.labels) > 0 {
			s.Labels = make(map[string]string, len(m.labels))
			for _, l := range m.labels {
				s.Labels[l.Name] = l.Value
			}
		}
		switch m.kind {
		case kindCounter:
			s.Value = float64(m.counter.Value())
		case kindGauge:
			s.Value = m.gauge.Value()
		case kindGaugeFunc:
			s.Value = m.fn()
		case kindHistogram:
			h := m.hist
			s.Count = h.Count()
			s.Sum = h.Sum()
			s.Buckets = make([]BucketSnapshot, len(h.upper))
			var cum int64
			for i, ub := range h.upper {
				cum += h.counts[i].Load()
				s.Buckets[i] = BucketSnapshot{LE: ub, Count: cum}
			}
		}
		out = append(out, s)
	}
	return out
}
