// Command hostprof is the end-to-end CLI for the network-observer
// profiling pipeline:
//
//	hostprof gen        generate a synthetic world: trace, pcap, ontology, blocklist
//	hostprof sniff      extract a hostname trace from a pcap capture
//	hostprof train      train hostname embeddings from a trace
//	hostprof profile    profile a user's recent session with a trained model
//	hostprof similar    query nearest hostnames in embedding space
//	hostprof export     dump embeddings in word2vec text format
//	hostprof serve      run the profiling/ad back-end over HTTP
//	hostprof gateway    run the cluster router in front of N serve shards
//	hostprof report     post one traced session report to a running backend
//	hostprof status     render a one-page cluster dashboard from a gateway
//	hostprof bench-diff compare two bench-json files, failing on perf regressions
//
// Every subcommand accepts -h for its flags. A typical session:
//
//	hostprof gen -out /tmp/world
//	hostprof sniff -pcap /tmp/world/capture.pcap -out /tmp/world/sniffed.jsonl
//	hostprof train -trace /tmp/world/sniffed.jsonl -model /tmp/world/model.bin
//	hostprof profile -model /tmp/world/model.bin -ontology /tmp/world/ontology.jsonl \
//	    -trace /tmp/world/sniffed.jsonl -user 3
package main

import (
	"fmt"
	"os"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "gen":
		err = cmdGen(os.Args[2:])
	case "sniff":
		err = cmdSniff(os.Args[2:])
	case "train":
		err = cmdTrain(os.Args[2:])
	case "profile":
		err = cmdProfile(os.Args[2:])
	case "similar":
		err = cmdSimilar(os.Args[2:])
	case "export":
		err = cmdExport(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "gateway":
		err = cmdGateway(os.Args[2:])
	case "report":
		err = cmdReport(os.Args[2:])
	case "status":
		err = cmdStatus(os.Args[2:])
	case "bench-diff":
		err = cmdBenchDiff(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "hostprof: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "hostprof %s: %v\n", os.Args[1], err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: hostprof <command> [flags]

commands:
  gen       generate a synthetic world (trace, pcap, ontology, blocklist)
  sniff     extract hostname visits from a pcap file
  train     train hostname embeddings from a JSONL trace
  profile   profile a user session with a trained model
  similar   list nearest hostnames in embedding space
  export    dump a model in word2vec text format
  serve     run the profiling/ad back-end over HTTP
  gateway   run the cluster router (consistent-hash + scatter-gather) over serve shards
  report    post one traced session report to a running backend
  status    render a one-page cluster dashboard (health, federated metrics, events)
  bench-diff  compare two bench-json result files; non-zero exit on regression`)
}
