package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"strconv"
	"strings"
	"time"

	"hostprof/internal/obs/tracer"
)

// Extension is the client side of the experiment: the paper's Chrome
// extension, which reported the user's hostname sequence every 10
// minutes, received replacement ads, and posted back what was displayed
// and clicked.
type Extension struct {
	// BaseURL of the backend, e.g. "http://127.0.0.1:8420".
	BaseURL string
	// User is the random install ID (the paper assigned one per
	// installation and stored nothing else about the user).
	User int
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
	// Tracer, when non-nil and enabled, wraps every call in a client
	// span and sends a W3C traceparent header, so the backend's handler
	// spans join the client's trace.
	Tracer *tracer.Tracer
	// MaxRetries re-sends a request the backend shed (429, always) or
	// declined with an explicit Retry-After on 503 — the two answers
	// that mean "come back later", not "this request is wrong". Each
	// retry waits per RetryDelay: the server's Retry-After when given,
	// exponential backoff otherwise, both capped at RetryMax. A 503
	// without Retry-After (e.g. model-not-trained, where the report's
	// visits were already ingested) is never retried. 0 disables
	// retries — every call maps to exactly one HTTP exchange.
	MaxRetries int
	// RetryBase seeds the exponential backoff (default 100ms).
	RetryBase time.Duration
	// RetryMax caps every retry wait, including server-requested ones
	// (default 2s) — a misbehaving Retry-After cannot stall the client.
	RetryMax time.Duration
}

func (e *Extension) client() *http.Client {
	if e.HTTPClient != nil {
		return e.HTTPClient
	}
	return http.DefaultClient
}

// post sends a JSON body and decodes a JSON response into out (nil out
// accepts 2xx with any body). The call is wrapped in a span named op
// and carries the span's traceparent. Shed answers are retried per
// MaxRetries; the span covers every attempt.
func (e *Extension) post(ctx context.Context, op, path string, in, out any) error {
	ctx, span := e.Tracer.StartSpan(ctx, op)
	defer span.End()
	span.SetAttr("path", path)
	body, err := json.Marshal(in)
	if err != nil {
		err = fmt.Errorf("server client: encoding %s: %w", path, err)
		span.Error(err)
		return err
	}
	for attempt := 0; ; attempt++ {
		err := e.postOnce(ctx, span, path, body, out)
		var apiErr *APIError
		if err == nil || attempt >= e.MaxRetries || !errors.As(err, &apiErr) || !apiErr.Retryable() {
			if err != nil {
				span.Error(err)
			}
			return err
		}
		delay := RetryDelay(apiErr.RetryAfter, attempt, e.retryBase(), e.retryMax())
		span.Event(fmt.Sprintf("retry %d after %s (HTTP %d, Retry-After %q)",
			attempt+1, delay, apiErr.Status, apiErr.RetryAfter))
		timer := time.NewTimer(delay)
		select {
		case <-ctx.Done():
			timer.Stop()
			span.Error(ctx.Err())
			return ctx.Err()
		case <-timer.C:
		}
	}
}

func (e *Extension) retryBase() time.Duration {
	if e.RetryBase > 0 {
		return e.RetryBase
	}
	return 100 * time.Millisecond
}

func (e *Extension) retryMax() time.Duration {
	if e.RetryMax > 0 {
		return e.RetryMax
	}
	return 2 * time.Second
}

// postOnce is one HTTP exchange of post's retry loop.
func (e *Extension) postOnce(ctx context.Context, span *tracer.Span, path string, body []byte, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, e.BaseURL+path, bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("server client: %s: %w", path, err)
	}
	req.Header.Set("Content-Type", "application/json")
	if tp := span.Traceparent(); tp != "" {
		req.Header.Set("traceparent", tp)
	}
	resp, err := e.client().Do(req)
	if err != nil {
		return fmt.Errorf("server client: %s: %w", path, err)
	}
	defer resp.Body.Close()
	span.SetAttr("code", fmt.Sprint(resp.StatusCode))
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		apiErr := &APIError{Status: resp.StatusCode}
		// The backend wraps errors as {"error": "..."}; fall back to the
		// raw body for proxies and older servers.
		var eb errorBody
		if json.Unmarshal(raw, &eb) == nil && eb.Error != "" {
			apiErr.Message = eb.Error
		} else {
			apiErr.Message = string(bytes.TrimSpace(raw))
		}
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			apiErr.RetryAfter = ra
		}
		return apiErr
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("server client: decoding %s: %w", path, err)
	}
	return nil
}

// RetryDelay computes how long to wait before retry number attempt
// (0-based): the server's Retry-After when it parses to a positive
// duration, jittered exponential backoff from base otherwise — both
// capped at max, so neither a hostile header nor deep backoff can stall
// a caller. The exponential path uses equal jitter — uniform in
// [d/2, d] where d = base<<attempt — so a population of clients shed at
// the same instant (one overloaded shard refusing a burst) does not
// retry in lockstep and re-create the burst; a server-scheduled
// Retry-After is honored exactly, since the server already chose the
// time. Shared by the Extension client and the cluster gateway's shard
// retries.
func RetryDelay(retryAfter string, attempt int, base, max time.Duration) time.Duration {
	if secs, err := strconv.Atoi(strings.TrimSpace(retryAfter)); err == nil && secs > 0 {
		d := time.Duration(secs) * time.Second
		if d > max {
			return max
		}
		return d
	}
	d := base << attempt
	if d > max || d <= 0 { // <<-overflow guard
		d = max
	}
	half := d / 2
	return half + rand.N(d-half+1)
}

// APIError is a non-2xx backend answer.
type APIError struct {
	Status  int
	Message string
	// RetryAfter echoes the Retry-After header when the backend shed the
	// request (429), so callers can back off as instructed.
	RetryAfter string
}

// Error implements error.
func (e *APIError) Error() string {
	return fmt.Sprintf("server client: HTTP %d: %s", e.Status, e.Message)
}

// Retryable reports whether the answer means "come back later": a shed
// request (429) or an explicitly scheduled 503 (Retry-After present).
// A bare 503 is a state answer (model not trained, shard down hard) —
// retrying it blind would duplicate work the backend already did, so it
// is surfaced instead.
func (e *APIError) Retryable() bool {
	switch e.Status {
	case http.StatusTooManyRequests:
		return true
	case http.StatusServiceUnavailable:
		return e.RetryAfter != ""
	}
	return false
}

// Report sends the hostnames observed since the last report and returns
// the backend's replacement-ad list (empty when the backend cannot
// profile the session yet).
func (e *Extension) Report(now int64, hosts []string) ([]WireAd, error) {
	return e.ReportContext(context.Background(), now, hosts)
}

// ReportContext is Report under a caller context: cancellation applies
// to the HTTP exchange, and a span carried by ctx becomes the parent of
// the client span (and, through traceparent, of the server's handler
// span).
func (e *Extension) ReportContext(ctx context.Context, now int64, hosts []string) ([]WireAd, error) {
	var resp ReportResponse
	err := e.post(ctx, "client.report", "/v1/report",
		ReportRequest{User: e.User, Time: now, Hosts: hosts}, &resp)
	if err != nil {
		return nil, err
	}
	return resp.Ads, nil
}

// ProfileBatch profiles many sessions in one round trip, returning one
// result per session in request order. Individual sessions can fail
// (empty, nothing labelled reachable) without failing the batch; those
// results carry Error instead of Categories.
func (e *Extension) ProfileBatch(ctx context.Context, sessions [][]string) ([]ProfileResult, error) {
	var resp ProfileBatchResponse
	err := e.post(ctx, "client.profile_batch", "/v1/profile/batch",
		ProfileBatchRequest{Sessions: sessions}, &resp)
	if err != nil {
		return nil, err
	}
	return resp.Profiles, nil
}

// Feedback reports one displayed ad and whether it was clicked.
func (e *Extension) Feedback(adID int, source string, clicked bool) error {
	return e.FeedbackContext(context.Background(), adID, source, clicked)
}

// FeedbackContext is Feedback under a caller context.
func (e *Extension) FeedbackContext(ctx context.Context, adID int, source string, clicked bool) error {
	return e.post(ctx, "client.feedback", "/v1/feedback", FeedbackRequest{
		User: e.User, AdID: adID, Source: source, Clicked: clicked,
	}, nil)
}

// Retrain asks the backend to refit its model on everything reported so
// far (operator endpoint; the paper ran this daily). The call blocks
// until the retrain — possibly one already in flight that this request
// joined — finishes.
func (e *Extension) Retrain() error {
	return e.RetrainContext(context.Background())
}

// RetrainContext is Retrain under a caller context.
func (e *Extension) RetrainContext(ctx context.Context) error {
	return e.post(ctx, "client.retrain", "/v1/retrain", struct{}{}, nil)
}

// RetrainAsync kicks off a background retrain and returns as soon as the
// backend accepts it (202). Poll Stats().Trained or the
// hostprof_retrain_state gauge for completion.
func (e *Extension) RetrainAsync() error {
	return e.post(context.Background(), "client.retrain_async", "/v1/retrain?async=1", struct{}{}, nil)
}

// PushTrace posts locally captured span records to the backend's
// /debug/traces collector, so a distributed trace can be inspected in
// one place. Spans keep their trace IDs; the server merges them with
// its own half of each trace.
func (e *Extension) PushTrace(ctx context.Context, spans []tracer.SpanData) error {
	body, err := json.Marshal(map[string][]tracer.SpanData{"spans": spans})
	if err != nil {
		return fmt.Errorf("server client: encoding spans: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		e.BaseURL+"/debug/traces", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("server client: pushing trace: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := e.client().Do(req)
	if err != nil {
		return fmt.Errorf("server client: pushing trace: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return &APIError{Status: resp.StatusCode, Message: "trace push rejected"}
	}
	return nil
}

// Stats fetches the backend's aggregate statistics.
func (e *Extension) Stats() (Stats, error) {
	return e.StatsContext(context.Background())
}

// StatsContext is Stats under a caller context.
func (e *Extension) StatsContext(ctx context.Context) (Stats, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, e.BaseURL+"/v1/stats", nil)
	if err != nil {
		return Stats{}, fmt.Errorf("server client: stats: %w", err)
	}
	resp, err := e.client().Do(req)
	if err != nil {
		return Stats{}, fmt.Errorf("server client: stats: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return Stats{}, &APIError{Status: resp.StatusCode}
	}
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return Stats{}, fmt.Errorf("server client: decoding stats: %w", err)
	}
	return st, nil
}
