package ontology

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// labelRecord is the JSONL form of one labelled host: category IDs with
// non-zero weight only, to keep files small.
type labelRecord struct {
	Host    string    `json:"host"`
	Cats    []int     `json:"cats"`
	Weights []float64 `json:"weights"`
}

// WriteJSONL streams the ontology's labels to w, one host per line,
// sorted by hostname for reproducible output.
func (o *Ontology) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	hosts := make([]string, 0, len(o.labels))
	for h := range o.labels {
		hosts = append(hosts, h)
	}
	sort.Strings(hosts)
	for _, h := range hosts {
		v := o.labels[h]
		rec := labelRecord{Host: h}
		for i, x := range v {
			if x > 0 {
				rec.Cats = append(rec.Cats, i)
				rec.Weights = append(rec.Weights, x)
			}
		}
		if err := enc.Encode(rec); err != nil {
			return fmt.Errorf("ontology: encoding %q: %w", h, err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("ontology: flushing: %w", err)
	}
	return nil
}

// ReadJSONL parses labels written by WriteJSONL into a fresh ontology
// over tax.
func ReadJSONL(tax *Taxonomy, r io.Reader) (*Ontology, error) {
	o := New(tax)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rec labelRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return nil, fmt.Errorf("ontology: line %d: %w", line, err)
		}
		if len(rec.Cats) != len(rec.Weights) {
			return nil, fmt.Errorf("ontology: line %d: cats/weights mismatch", line)
		}
		v := tax.NewVector()
		for i, c := range rec.Cats {
			if c < 0 || c >= len(v) {
				return nil, fmt.Errorf("ontology: line %d: category %d out of range", line, c)
			}
			v[c] = rec.Weights[i]
		}
		o.Add(rec.Host, v)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("ontology: reading: %w", err)
	}
	return o, nil
}
