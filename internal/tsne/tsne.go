// Package tsne implements exact t-distributed Stochastic Neighbor
// Embedding (van der Maaten & Hinton, 2008), the dimensionality-reduction
// algorithm the paper uses to visualize hostname embeddings (Figures 4
// and 5), plus the neighbourhood-purity metric that turns the paper's
// visual cluster argument into a number.
package tsne

import (
	"errors"
	"fmt"
	"math"

	"hostprof/internal/stats"
)

// Config tunes the embedding.
type Config struct {
	// Perplexity is the effective number of neighbours per point.
	// Default 30 (clamped to (n-1)/3 when the dataset is small).
	Perplexity float64
	// Iterations of gradient descent. Default 400.
	Iterations int
	// LearningRate of the gradient step. Default max(10, n/12) — the
	// n/early-exaggeration heuristic of openTSNE/scikit-learn, which
	// prevents over-expansion on small datasets.
	LearningRate float64
	// EarlyExaggeration multiplies P for the first quarter of the
	// iterations. Default 12.
	EarlyExaggeration float64
	// OutDims is the output dimensionality. Default 2.
	OutDims int
	// Seed drives the random initialization.
	Seed uint64
}

func (c Config) withDefaults(n int) Config {
	if c.Perplexity <= 0 {
		c.Perplexity = 30
	}
	if maxP := float64(n-1) / 3; c.Perplexity > maxP && maxP >= 2 {
		c.Perplexity = maxP
	}
	if c.Iterations <= 0 {
		c.Iterations = 400
	}
	if c.EarlyExaggeration <= 0 {
		c.EarlyExaggeration = 12
	}
	if c.LearningRate <= 0 {
		c.LearningRate = float64(n) / c.EarlyExaggeration
		if c.LearningRate < 10 {
			c.LearningRate = 10
		}
	}
	if c.OutDims <= 0 {
		c.OutDims = 2
	}
	return c
}

// ErrTooFewPoints is returned for datasets smaller than 4 points.
var ErrTooFewPoints = errors.New("tsne: need at least 4 points")

// Embed maps the n input vectors to n OutDims-dimensional points.
func Embed(x [][]float64, cfg Config) ([][]float64, error) {
	n := len(x)
	if n < 4 {
		return nil, ErrTooFewPoints
	}
	dim := len(x[0])
	for i, row := range x {
		if len(row) != dim {
			return nil, fmt.Errorf("tsne: row %d has dim %d, want %d", i, len(row), dim)
		}
	}
	cfg = cfg.withDefaults(n)

	// Pairwise squared Euclidean distances.
	d2 := squaredDistances(x)

	// Conditional probabilities via per-point precision search.
	p := condProbabilities(d2, cfg.Perplexity)

	// Symmetrize and normalize: P = (P + Pᵀ) / 2n.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := (p[i][j] + p[j][i]) / (2 * float64(n))
			if v < 1e-12 {
				v = 1e-12
			}
			p[i][j], p[j][i] = v, v
		}
		p[i][i] = 0
	}

	// Gradient descent with momentum and early exaggeration.
	rng := stats.NewRNG(cfg.Seed ^ 0x75e)
	y := make([][]float64, n)
	vel := make([][]float64, n)
	for i := range y {
		y[i] = make([]float64, cfg.OutDims)
		vel[i] = make([]float64, cfg.OutDims)
		for d := range y[i] {
			y[i][d] = 1e-4 * rng.NormFloat64()
		}
	}
	exaggerationEnd := cfg.Iterations / 4
	grad := make([][]float64, n)
	for i := range grad {
		grad[i] = make([]float64, cfg.OutDims)
	}
	q := make([][]float64, n)
	for i := range q {
		q[i] = make([]float64, n)
	}

	for iter := 0; iter < cfg.Iterations; iter++ {
		exag := 1.0
		if iter < exaggerationEnd {
			exag = cfg.EarlyExaggeration
		}
		momentum := 0.5
		if iter >= cfg.Iterations/2 {
			momentum = 0.8
		}

		// Student-t affinities in the embedding.
		var qsum float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				var s float64
				for d := 0; d < cfg.OutDims; d++ {
					diff := y[i][d] - y[j][d]
					s += diff * diff
				}
				v := 1 / (1 + s)
				q[i][j], q[j][i] = v, v
				qsum += 2 * v
			}
		}
		if qsum < 1e-12 {
			qsum = 1e-12
		}

		// Gradient: 4 Σ_j (p_ij·exag − q_ij/qsum) · (1+|y_i−y_j|²)⁻¹ (y_i−y_j).
		for i := 0; i < n; i++ {
			for d := 0; d < cfg.OutDims; d++ {
				grad[i][d] = 0
			}
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				mult := 4 * (exag*p[i][j] - q[i][j]/qsum) * q[i][j]
				for d := 0; d < cfg.OutDims; d++ {
					grad[i][d] += mult * (y[i][d] - y[j][d])
				}
			}
		}
		for i := 0; i < n; i++ {
			for d := 0; d < cfg.OutDims; d++ {
				vel[i][d] = momentum*vel[i][d] - cfg.LearningRate*grad[i][d]
				y[i][d] += vel[i][d]
			}
		}
		centerColumns(y)
	}
	return y, nil
}

// squaredDistances returns the dense pairwise squared-distance matrix.
func squaredDistances(x [][]float64) [][]float64 {
	n := len(x)
	d2 := make([][]float64, n)
	for i := range d2 {
		d2[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			var s float64
			for k := range x[i] {
				diff := x[i][k] - x[j][k]
				s += diff * diff
			}
			d2[i][j], d2[j][i] = s, s
		}
	}
	return d2
}

// condProbabilities binary-searches the Gaussian precision of each point
// so its conditional distribution has the target perplexity.
func condProbabilities(d2 [][]float64, perplexity float64) [][]float64 {
	n := len(d2)
	target := math.Log(perplexity)
	p := make([][]float64, n)
	for i := range p {
		p[i] = make([]float64, n)
		beta := 1.0
		betaMin := math.Inf(-1)
		betaMax := math.Inf(1)
		var h float64
		for tries := 0; tries < 50; tries++ {
			h = rowEntropy(d2[i], p[i], i, beta)
			diff := h - target
			if math.Abs(diff) < 1e-5 {
				break
			}
			if diff > 0 {
				betaMin = beta
				if math.IsInf(betaMax, 1) {
					beta *= 2
				} else {
					beta = (beta + betaMax) / 2
				}
			} else {
				betaMax = beta
				if math.IsInf(betaMin, -1) {
					beta /= 2
				} else {
					beta = (beta + betaMin) / 2
				}
			}
		}
	}
	return p
}

// rowEntropy fills row with the conditional distribution at precision
// beta and returns its Shannon entropy (natural log).
func rowEntropy(d2row, row []float64, i int, beta float64) float64 {
	var sum float64
	for j := range row {
		if j == i {
			row[j] = 0
			continue
		}
		v := math.Exp(-d2row[j] * beta)
		row[j] = v
		sum += v
	}
	if sum == 0 {
		return 0
	}
	var h float64
	for j := range row {
		if j == i || row[j] == 0 {
			continue
		}
		row[j] /= sum
		h -= row[j] * math.Log(row[j])
	}
	return h
}

// centerColumns subtracts the column means, keeping the embedding
// centred.
func centerColumns(y [][]float64) {
	if len(y) == 0 {
		return
	}
	dims := len(y[0])
	means := make([]float64, dims)
	for _, row := range y {
		for d, v := range row {
			means[d] += v
		}
	}
	for d := range means {
		means[d] /= float64(len(y))
	}
	for _, row := range y {
		for d := range row {
			row[d] -= means[d]
		}
	}
}

// Divergence computes the t-SNE objective KL(P‖Q) between the
// high-dimensional affinities of x (at the given perplexity) and the
// Student-t affinities of the embedding y. Lower is better; it quantifies
// how faithfully a 2-D map preserves structure and lets callers compare
// embeddings of the same data.
func Divergence(x, y [][]float64, perplexity float64) (float64, error) {
	n := len(x)
	if n < 4 || len(y) != n {
		return 0, ErrTooFewPoints
	}
	if perplexity <= 0 {
		perplexity = 30
	}
	if maxP := float64(n-1) / 3; perplexity > maxP && maxP >= 2 {
		perplexity = maxP
	}
	d2 := squaredDistances(x)
	p := condProbabilities(d2, perplexity)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := (p[i][j] + p[j][i]) / (2 * float64(n))
			if v < 1e-12 {
				v = 1e-12
			}
			p[i][j], p[j][i] = v, v
		}
		p[i][i] = 0
	}
	// Student-t affinities of y.
	var qsum float64
	q := squaredDistances(y)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := 1 / (1 + q[i][j])
			q[i][j], q[j][i] = v, v
			qsum += 2 * v
		}
		q[i][i] = 0
	}
	if qsum < 1e-12 {
		qsum = 1e-12
	}
	var kl float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			qij := q[i][j] / qsum
			if qij < 1e-12 {
				qij = 1e-12
			}
			kl += p[i][j] * math.Log(p[i][j]/qij)
		}
	}
	return kl, nil
}

// NeighbourPurity computes, for each point, the fraction of its k nearest
// neighbours (Euclidean, in the given space) sharing its label, and
// returns the mean over all points. Labels < 0 are excluded from both
// query and neighbour sets. It quantifies Figure 5's visual claim.
func NeighbourPurity(points [][]float64, labels []int, k int) float64 {
	if len(points) != len(labels) || k <= 0 {
		return 0
	}
	var idx []int
	for i, l := range labels {
		if l >= 0 {
			idx = append(idx, i)
		}
	}
	if len(idx) < 2 {
		return 0
	}
	var total float64
	var counted int
	for _, i := range idx {
		type nd struct {
			j int
			d float64
		}
		var ds []nd
		for _, j := range idx {
			if j == i {
				continue
			}
			ds = append(ds, nd{j, stats.Euclidean(points[i], points[j])})
		}
		kk := k
		if kk > len(ds) {
			kk = len(ds)
		}
		// Partial selection sort for the k smallest.
		for a := 0; a < kk; a++ {
			best := a
			for b := a + 1; b < len(ds); b++ {
				if ds[b].d < ds[best].d {
					best = b
				}
			}
			ds[a], ds[best] = ds[best], ds[a]
		}
		same := 0
		for _, nb := range ds[:kk] {
			if labels[nb.j] == labels[i] {
				same++
			}
		}
		total += float64(same) / float64(kk)
		counted++
	}
	return total / float64(counted)
}
