package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"hostprof/internal/fault"
	"hostprof/internal/trace"
)

// The write-ahead log is a sequence of append-only segment files named
// wal-<seq>.log with strictly increasing 16-digit sequence numbers.
// Records never span segments. A snapshot taken at cut sequence S makes
// every segment with seq <= S redundant; recovery loads the newest
// snapshot and replays only segments with seq > S, in order.

const (
	walPrefix  = "wal-"
	walSuffix  = ".log"
	snapPrefix = "snap-"
	snapSuffix = ".gob"
)

func walPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%016d%s", walPrefix, seq, walSuffix))
}

// walWriter appends framed records to the current segment, rotating by
// size and fsyncing per the configured policy. All methods are safe for
// concurrent use.
type walWriter struct {
	dir      string
	policy   FsyncPolicy
	segBytes int64
	met      *storeMetrics

	mu    sync.Mutex
	f     *os.File
	seq   uint64 // sequence of the open segment
	size  int64
	dirty bool // bytes written since the last fsync
	buf   []byte
}

// openWAL starts a fresh segment with the given sequence number.
func openWAL(dir string, seq uint64, policy FsyncPolicy, segBytes int64, met *storeMetrics) (*walWriter, error) {
	w := &walWriter{dir: dir, policy: policy, segBytes: segBytes, met: met, seq: seq}
	if err := w.openSegment(); err != nil {
		return nil, err
	}
	return w, nil
}

func (w *walWriter) openSegment() error {
	f, err := os.OpenFile(walPath(w.dir, w.seq), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("store: opening wal segment: %w", err)
	}
	w.f = f
	w.size = 0
	w.dirty = false
	return nil
}

// Append frames v and writes it to the current segment, rotating first
// if the segment has reached its size bound.
func (w *walWriter) Append(v trace.Visit) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	buf, err := appendRecord(w.buf[:0], v)
	if err != nil {
		return err
	}
	w.buf = buf
	if err := fault.Inject(fault.StoreWALAppend); err != nil {
		return fmt.Errorf("store: wal append: %w", err)
	}
	if w.size > 0 && w.size+int64(len(buf)) > w.segBytes {
		if err := w.rotateLocked(); err != nil {
			return err
		}
	}
	if _, err := w.f.Write(buf); err != nil {
		return fmt.Errorf("store: wal append: %w", err)
	}
	w.size += int64(len(buf))
	w.dirty = true
	w.met.walBytes.Add(int64(len(buf)))
	if w.policy == FsyncAlways {
		return w.syncLocked()
	}
	return nil
}

func (w *walWriter) syncLocked() error {
	if !w.dirty || w.f == nil {
		return nil
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("store: wal fsync: %w", err)
	}
	w.dirty = false
	w.met.fsyncs.Inc()
	return nil
}

// Sync flushes outstanding writes to stable storage (no-op if clean).
func (w *walWriter) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.syncLocked()
}

// rotateLocked seals the current segment and starts the next one.
func (w *walWriter) rotateLocked() error {
	if err := w.syncLocked(); err != nil {
		return err
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("store: closing wal segment: %w", err)
	}
	w.seq++
	w.met.rotations.Inc()
	return w.openSegment()
}

// Cut seals the current segment and starts a new one, returning the
// sealed segment's sequence number: the snapshot that triggered the cut
// covers every segment with seq <= the returned value. The caller must
// guarantee no concurrent Appends (the store holds its append gate).
func (w *walWriter) Cut() (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	cut := w.seq
	if err := w.rotateLocked(); err != nil {
		return 0, err
	}
	return cut, nil
}

// Close flushes and closes the current segment.
func (w *walWriter) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.syncLocked(); err != nil {
		return err
	}
	if w.f == nil {
		return nil
	}
	return w.f.Close()
}

// reattach recovers the WAL after an append failure: the failed segment
// is truncated back to its last fully acknowledged record (w.size only
// advances on complete writes, so this removes any partial frame a
// failed append left behind — keeping the segment replayable once it is
// no longer the final one) and closed, and a fresh segment is opened at
// the next sequence number. The store's degraded-mode prober calls this
// with appends suppressed; the lock makes it safe regardless. The
// injection probe up front means an armed wal-append fault also keeps
// re-attachment failing until the fault clears.
func (w *walWriter) reattach() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := fault.Inject(fault.StoreWALAppend); err != nil {
		return fmt.Errorf("store: wal reattach probe: %w", err)
	}
	if w.f != nil {
		// Best effort: a medium so broken that even truncate fails will
		// surface as corruption on the next recovery, which is the
		// honest outcome.
		w.f.Truncate(w.size)
		w.f.Close()
		w.f = nil
		w.dirty = false
	}
	w.seq++
	return w.openSegment()
}

// parseSeq extracts the sequence number from a wal/snapshot file name.
func parseSeq(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	seq, err := strconv.ParseUint(name[len(prefix):len(name)-len(suffix)], 10, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// segInfo is one WAL segment found on disk.
type segInfo struct {
	seq  uint64
	path string
}

// listSegments returns the WAL segments under dir in ascending sequence
// order.
func listSegments(dir string) ([]segInfo, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: listing wal dir: %w", err)
	}
	var segs []segInfo
	for _, e := range entries {
		if seq, ok := parseSeq(e.Name(), walPrefix, walSuffix); ok {
			segs = append(segs, segInfo{seq: seq, path: filepath.Join(dir, e.Name())})
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].seq < segs[j].seq })
	return segs, nil
}

// replaySegment decodes every record in the segment at path, calling
// apply for each. final marks the newest segment, whose tail may be torn
// by a crash: the torn suffix is truncated away (so a later replay sees
// a clean segment) and reported, not treated as an error. A decode
// failure anywhere else means real corruption and fails the replay.
func replaySegment(path string, final bool, apply func(trace.Visit)) (records int, torn bool, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, false, fmt.Errorf("store: reading wal segment: %w", err)
	}
	off := 0
	for off < len(data) {
		v, n, derr := decodeRecord(data[off:])
		if derr != nil {
			if final {
				if terr := os.Truncate(path, int64(off)); terr != nil {
					return records, true, fmt.Errorf("store: truncating torn wal tail: %w", terr)
				}
				return records, true, nil
			}
			return records, false, fmt.Errorf("store: segment %s at offset %d: %w", filepath.Base(path), off, derr)
		}
		apply(v)
		records++
		off += n
	}
	return records, false, nil
}
