package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	netpprof "net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"hostprof/internal/cluster"
	"hostprof/internal/obs"
	"hostprof/internal/obs/prof"
	"hostprof/internal/obs/tracer"
)

// cmdGateway runs the stateless cluster router in front of N `hostprof
// serve` shards: consistent-hash routing for per-user traffic,
// scatter-gather for batch profiling, and versioned model distribution
// after retrains.
func cmdGateway(args []string) error {
	fs := flag.NewFlagSet("gateway", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8410", "listen address")
	backends := fs.String("backends", "", "comma-separated shard base URLs, e.g. http://127.0.0.1:8421,http://127.0.0.1:8422 (required)")
	vnodes := fs.Int("vnodes", cluster.DefaultVirtualNodes, "virtual nodes per shard on the hash ring")
	shardTimeout := fs.Duration("shard-timeout", 5*time.Second, "per-shard request deadline (reports, batch chunks, probes)")
	retrainTimeout := fs.Duration("retrain-timeout", 10*time.Minute, "deadline for a retrain plus model distribution")
	healthEvery := fs.Duration("health-interval", 2*time.Second, "shard /readyz probe cadence (0 disables the loop)")
	shardRetries := fs.Int("shard-retries", 2, "re-sends per shard request the shard shed with 429/Retry-After")
	maxBatch := fs.Int("max-batch", 2048, "sessions accepted per /v1/profile/batch")
	chunk := fs.Int("shard-batch", 256, "sessions per shard chunk in scatter-gather")
	noSync := fs.Bool("no-model-sync", false, "disable health-loop model anti-entropy (re-shipping the model to shards that diverge)")
	migChunk := fs.Int("migrate-chunk", 0, "visits per export chunk during live resize (0 = default)")
	migThrottle := fs.Duration("migrate-throttle", 0, "pause between copy chunks during live resize (0 = full speed)")
	migWorkers := fs.Int("migrate-workers", 0, "concurrent range copiers during live resize (0 = default)")
	httpTimeout := fs.Duration("http-timeout", time.Minute, "HTTP read/write timeout (idle timeout is 4x this)")
	traceSample := fs.Float64("trace-sample", 1, "request-trace head-sampling rate in [0,1]; 0 disables tracing")
	traceBuffer := fs.Int("trace-buffer", 256, "completed traces retained for /debug/traces")
	withPprof := fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	slowReq := fs.Duration("slow-request", time.Second, "log one structured warning per gateway request slower than this, capture a goroutine+mutex profile tagged with its trace ID (0 disables)")
	sloReport := fs.Duration("slo-report", 250*time.Millisecond, "latency SLO target for /v1/report through the gateway: 99%% of windowed requests under this, burn rate on hostprof_gateway_slo_* (0 disables)")
	sloProfile := fs.Duration("slo-profile", 500*time.Millisecond, "latency SLO target for /v1/profile/batch through the gateway (0 disables)")
	fedTTL := fs.Duration("federate-ttl", 2*time.Second, "shard /varz scrape cache TTL behind /v1/cluster/metrics and the federated /metrics block")
	eventBuffer := fs.Int("event-buffer", 512, "cluster timeline events retained for /v1/cluster/events")
	logf := addLogFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := logf.setup(); err != nil {
		return err
	}
	if *backends == "" {
		return fmt.Errorf("-backends is required")
	}
	var list []string
	for _, b := range strings.Split(*backends, ",") {
		b = strings.TrimSuffix(strings.TrimSpace(b), "/")
		if b == "" {
			continue
		}
		if !strings.Contains(b, "://") {
			b = "http://" + b
		}
		list = append(list, b)
	}

	trc := tracer.New(tracer.Config{
		Service:      "hostprof-gateway",
		SampleRate:   *traceSample,
		BufferTraces: *traceBuffer,
		Metrics:      obs.Default,
	})
	// The profiler backs slow-request trigger captures and the
	// /debug/prof/ ring; the gateway skips the background cadence (its
	// load profile is fan-out I/O, not CPU) but keeps the trigger path.
	var profiler *prof.Profiler
	if *slowReq > 0 || *withPprof {
		profiler = prof.New(prof.Config{Interval: -1, Metrics: obs.Default})
		defer profiler.Stop()
	}
	sloTargets := make(map[string]time.Duration)
	if *sloReport > 0 {
		sloTargets["report"] = *sloReport
	}
	if *sloProfile > 0 {
		sloTargets["profile_batch"] = *sloProfile
	}
	gw, err := cluster.New(cluster.Config{
		Backends:            list,
		VirtualNodes:        *vnodes,
		ShardTimeout:        *shardTimeout,
		RetrainTimeout:      *retrainTimeout,
		HealthInterval:      *healthEvery,
		ShardRetries:        *shardRetries,
		MaxSessionsPerBatch: *maxBatch,
		ShardBatchLimit:     *chunk,
		NoAutoSync:          *noSync,
		MigrationChunk:      *migChunk,
		MigrationThrottle:   *migThrottle,
		MigrationWorkers:    *migWorkers,
		SLOTargets:          sloTargets,
		SlowRequest:         *slowReq,
		Profiler:            profiler,
		FederationTTL:       *fedTTL,
		EventBuffer:         *eventBuffer,
		Metrics:             obs.Default,
		Tracer:              trc,
		Logger:              slog.Default(),
	})
	if err != nil {
		return err
	}

	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	gw.Start(ctx)
	defer gw.Close()

	st := gw.ClusterStatus()
	slog.Info("gateway listening",
		slog.String("addr", "http://"+*addr),
		slog.Int("backends", st.Backends),
		slog.Int("alive", st.AliveShards),
		slog.Int("ready", st.ReadyShards))
	slog.Info("endpoints: POST /v1/report /v1/profile/batch /v1/feedback /v1/retrain /v1/cluster/resize; GET /v1/stats /v1/cluster /v1/cluster/metrics /v1/cluster/events /metrics /varz /healthz /readyz /debug/traces /debug/statusz")

	handler := gw.Handler()
	if *withPprof {
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", netpprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", netpprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", netpprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", netpprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", netpprof.Trace)
		// Named runtime profiles, mounted explicitly so the on-demand
		// heap/mutex/block/goroutine views work however the outer mux
		// routes (same block as serve -pprof).
		for _, name := range []string{"heap", "allocs", "mutex", "block", "goroutine", "threadcreate"} {
			mux.Handle("/debug/pprof/"+name, netpprof.Handler(name))
		}
		handler = mux
		slog.Info("profiling: GET /debug/pprof/ (incl. heap/allocs/mutex/block/goroutine)")
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadTimeout:       *httpTimeout,
		ReadHeaderTimeout: *httpTimeout,
		WriteTimeout:      *httpTimeout,
		IdleTimeout:       4 * *httpTimeout,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.ListenAndServe() }()
	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
		slog.Info("gateway shutting down: draining requests")
		shCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := srv.Shutdown(shCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			return err
		}
		return nil
	}
}
