package ads

import (
	"math"
	"testing"

	"hostprof/internal/ontology"
	"hostprof/internal/synth"
)

// adsFixture builds a small labelled universe plus inventory.
type adsFixture struct {
	u   *synth.Universe
	ont *ontology.Ontology
	db  *DB
}

func newAdsFixture(t *testing.T) *adsFixture {
	t.Helper()
	u := synth.NewUniverse(synth.UniverseConfig{Sites: 150, Seed: 61})
	ont := synth.BuildOntology(u, synth.OntologyConfig{Coverage: 0.2, Seed: 63})
	db := BuildFromOntology(ont, BuildConfig{Seed: 65})
	if db.Len() == 0 {
		t.Fatal("empty inventory")
	}
	return &adsFixture{u: u, ont: ont, db: db}
}

func TestBuildFromOntology(t *testing.T) {
	fx := newAdsFixture(t)
	for _, ad := range fx.db.Ads() {
		if !fx.ont.Covered(ad.LandingHost) {
			t.Fatalf("ad %d lands on unlabelled host %q", ad.ID, ad.LandingHost)
		}
		if len(ad.TopLevel) != fx.u.Tax.NumTops() {
			t.Fatal("top-level vector wrong size")
		}
		if ad.Size.W == 0 || ad.Size.H == 0 {
			t.Fatal("ad without size")
		}
	}
	// byHost index is consistent.
	for _, host := range fx.ont.Hosts() {
		for _, id := range fx.db.ByHost(host) {
			if fx.db.Ad(id).LandingHost != host {
				t.Fatal("byHost index broken")
			}
		}
	}
}

func TestSelectorPicksTopicallyNearAds(t *testing.T) {
	fx := newAdsFixture(t)
	sel, err := NewSelector(fx.db, fx.ont, 20)
	if err != nil {
		t.Fatal(err)
	}
	// Profile = exact category vector of one labelled host: its own
	// ads must rank first (distance 0).
	host := fx.ont.Hosts()[0]
	v, _ := fx.ont.Lookup(host)
	got := sel.Select(v, 5)
	if len(got) == 0 {
		t.Fatal("no ads selected")
	}
	if got[0].LandingHost != host {
		t.Fatalf("nearest ad lands on %q, want %q", got[0].LandingHost, host)
	}
}

func TestSelectorRespectsMaxAds(t *testing.T) {
	fx := newAdsFixture(t)
	sel, err := NewSelector(fx.db, fx.ont, 20)
	if err != nil {
		t.Fatal(err)
	}
	profile := fx.u.Tax.NewVector()
	got := sel.Select(profile, 7)
	if len(got) > 7 {
		t.Fatalf("selected %d ads, max 7", len(got))
	}
}

func TestSelectorDefaultK(t *testing.T) {
	fx := newAdsFixture(t)
	sel, err := NewSelector(fx.db, fx.ont, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sel.K() != 20 {
		t.Fatalf("default K = %d, want 20 (paper Section 5.4)", sel.K())
	}
}

func TestSelectorErrorsWithoutInventory(t *testing.T) {
	tax := ontology.NewTaxonomy()
	ont := ontology.New(tax)
	db := NewDB(tax)
	if _, err := NewSelector(db, ont, 20); err == nil {
		t.Fatal("expected error for empty inventory")
	}
}

func TestSelectorDeterministicOrder(t *testing.T) {
	fx := newAdsFixture(t)
	sel, _ := NewSelector(fx.db, fx.ont, 20)
	p := fx.u.Tax.NewVector()
	p[3] = 0.5
	a := sel.Select(p, 10)
	b := sel.Select(p, 10)
	if len(a) != len(b) {
		t.Fatal("nondeterministic selection size")
	}
	for i := range a {
		if a[i].ID != b[i].ID {
			t.Fatal("nondeterministic selection order")
		}
	}
}

func TestSizeMatch(t *testing.T) {
	if !SizeMatch(CreativeSize{300, 250}, CreativeSize{300, 250}) {
		t.Fatal("identical sizes must match")
	}
	if !SizeMatch(CreativeSize{300, 250}, CreativeSize{320, 230}) {
		t.Fatal("within 20% must match")
	}
	if SizeMatch(CreativeSize{300, 250}, CreativeSize{728, 90}) {
		t.Fatal("leaderboard should not match a rectangle")
	}
}

func TestClickModelAffinityMonotone(t *testing.T) {
	m := NewClickModel(0, 0, 71)
	nTops := 34
	interested := synth.User{Interests: make([]float64, nTops)}
	interested.Interests[3] = 1
	indifferent := synth.User{Interests: make([]float64, nTops)}
	indifferent.Interests[7] = 1

	ad := Ad{TopLevel: make([]float64, nTops)}
	ad.TopLevel[3] = 1

	pHigh := m.Prob(interested, ad)
	pLow := m.Prob(indifferent, ad)
	if pHigh <= pLow {
		t.Fatalf("affinity did not raise click probability: %v vs %v", pHigh, pLow)
	}
	if pLow != m.Base {
		t.Fatalf("zero-affinity probability %v != base %v", pLow, m.Base)
	}
}

func TestClickModelCTRRegime(t *testing.T) {
	// Random users on random ads should land in the paper's observed
	// CTR band (0.07%..0.84%, Section 6.4 discussion).
	fx := newAdsFixture(t)
	pop := synth.NewPopulation(fx.u, synth.PopulationConfig{Users: 20, Seed: 73})
	m := NewClickModel(0, 0, 75)
	var ctr CTR
	for i := 0; i < 40000; i++ {
		u := pop.Users[i%len(pop.Users)]
		ad := fx.db.Ad(i % fx.db.Len())
		ctr.Observe(m.Click(u, ad))
	}
	pct := ctr.Percent()
	if pct < 0.01 || pct > 1.5 {
		t.Fatalf("baseline CTR = %.3f%%, out of plausible band", pct)
	}
}

func TestCTRAccumulator(t *testing.T) {
	var c CTR
	if c.Rate() != 0 {
		t.Fatal("empty CTR should be 0")
	}
	c.Observe(true)
	c.Observe(false)
	c.Observe(false)
	c.Observe(false)
	if math.Abs(c.Rate()-0.25) > 1e-12 {
		t.Fatalf("rate = %v", c.Rate())
	}
	if math.Abs(c.Percent()-25) > 1e-9 {
		t.Fatalf("percent = %v", c.Percent())
	}
}

func TestAdNetworkServesAllMixModes(t *testing.T) {
	fx := newAdsFixture(t)
	net := NewAdNetwork(fx.db, 77)
	pop := synth.NewPopulation(fx.u, synth.PopulationConfig{Users: 5, Seed: 79})
	for i := 0; i < 500; i++ {
		ad := net.Serve(pop.Users[i%5], i%fx.u.Tax.NumTops(), i%30)
		if ad.LandingHost == "" {
			t.Fatal("empty ad served")
		}
	}
}

func TestAdNetworkTargetingBeatsRandom(t *testing.T) {
	// A purely targeted network should achieve higher expected affinity
	// than random selection.
	fx := newAdsFixture(t)
	net := NewAdNetwork(fx.db, 81)
	net.Targeted, net.Contextual = 1, 0
	pop := synth.NewPopulation(fx.u, synth.PopulationConfig{Users: 10, Seed: 83})

	var targeted, random float64
	const n = 3000
	for i := 0; i < n; i++ {
		u := pop.Users[i%len(pop.Users)]
		ad := net.Serve(u, 0, 0)
		targeted += u.AffinityTo(ad.TopLevel)
		rad := fx.db.Ad(i % fx.db.Len())
		random += u.AffinityTo(rad.TopLevel)
	}
	if targeted <= random {
		t.Fatalf("targeted affinity %.4f <= random %.4f", targeted/n, random/n)
	}
}

func TestAdNetworkCampaignsRotateDaily(t *testing.T) {
	fx := newAdsFixture(t)
	net := NewAdNetwork(fx.db, 85)
	net.Targeted, net.Contextual = 0, 0 // campaigns only
	u := synth.User{Interests: make([]float64, fx.u.Tax.NumTops())}
	day0 := make(map[int]bool)
	day9 := make(map[int]bool)
	for i := 0; i < 200; i++ {
		day0[net.Serve(u, 0, 0).ID] = true
		day9[net.Serve(u, 0, 9).ID] = true
	}
	if len(day0) > 5 || len(day9) > 5 {
		t.Fatalf("campaign pools too large: %d, %d", len(day0), len(day9))
	}
	same := 0
	for id := range day0 {
		if day9[id] {
			same++
		}
	}
	if same == len(day0) && same == len(day9) {
		t.Fatal("campaigns identical across days")
	}
}
