// Package trace defines the hostname-request records exchanged between
// the traffic sources (synthetic browser, packet sniffer) and the
// profiling pipeline, along with the windowing operations of paper
// Section 5.4: per-day training sequences and sliding T-minute sessions.
package trace

import (
	"sort"
)

// Visit is one observed hostname request: user (as distinguishable by the
// observer — MAC address, MSISDN, extension install ID…), time in seconds
// since the start of the observation, and the requested hostname.
type Visit struct {
	User int    `json:"user"`
	Time int64  `json:"time"`
	Host string `json:"host"`
}

// Day returns the zero-based day index of the visit.
func (v Visit) Day() int { return int(v.Time / 86400) }

// Trace is a time-ordered collection of visits.
type Trace struct {
	visits []Visit
	sorted bool
}

// New returns a Trace over the given visits. The slice is retained.
func New(visits []Visit) *Trace {
	t := &Trace{visits: visits}
	t.ensureSorted()
	return t
}

// Append adds visits to the trace, invalidating sort order until next use.
func (t *Trace) Append(vs ...Visit) {
	t.visits = append(t.visits, vs...)
	t.sorted = false
}

func (t *Trace) ensureSorted() {
	if t.sorted {
		return
	}
	sort.SliceStable(t.visits, func(i, j int) bool {
		if t.visits[i].Time != t.visits[j].Time {
			return t.visits[i].Time < t.visits[j].Time
		}
		return t.visits[i].User < t.visits[j].User
	})
	t.sorted = true
}

// Visits returns the time-ordered visit slice. Callers must not modify it.
func (t *Trace) Visits() []Visit {
	t.ensureSorted()
	return t.visits
}

// Len returns the number of visits.
func (t *Trace) Len() int { return len(t.visits) }

// Users returns the sorted distinct user IDs present in the trace.
func (t *Trace) Users() []int {
	set := make(map[int]bool)
	for _, v := range t.visits {
		set[v.User] = true
	}
	out := make([]int, 0, len(set))
	for u := range set {
		out = append(out, u)
	}
	sort.Ints(out)
	return out
}

// Days returns the number of days spanned (max day index + 1), or 0 for
// an empty trace.
func (t *Trace) Days() int {
	max := -1
	for _, v := range t.visits {
		if d := v.Day(); d > max {
			max = d
		}
	}
	return max + 1
}

// Hosts returns the sorted distinct hostnames in the trace.
func (t *Trace) Hosts() []string {
	set := make(map[string]bool)
	for _, v := range t.visits {
		set[v.Host] = true
	}
	out := make([]string, 0, len(set))
	for h := range set {
		out = append(out, h)
	}
	sort.Strings(out)
	return out
}

// FilterHosts returns a new trace without visits whose host is rejected
// by keep.
func (t *Trace) FilterHosts(keep func(host string) bool) *Trace {
	out := make([]Visit, 0, len(t.visits))
	for _, v := range t.visits {
		if keep(v.Host) {
			out = append(out, v)
		}
	}
	return New(out)
}

// DaySlice returns the visits of day d in time order.
func (t *Trace) DaySlice(d int) []Visit {
	t.ensureSorted()
	lo := sort.Search(len(t.visits), func(i int) bool {
		return t.visits[i].Time >= int64(d)*86400
	})
	hi := sort.Search(len(t.visits), func(i int) bool {
		return t.visits[i].Time >= int64(d+1)*86400
	})
	return t.visits[lo:hi]
}

// DailySequences returns, for day d, one hostname sequence per user in
// visit order — the training input of Section 5.4 ("the sequence of hosts
// visited by all the users during the whole previous day"). Users are
// emitted in ascending ID order for determinism.
func (t *Trace) DailySequences(d int) [][]string {
	day := t.DaySlice(d)
	perUser := make(map[int][]string)
	for _, v := range day {
		perUser[v.User] = append(perUser[v.User], v.Host)
	}
	users := make([]int, 0, len(perUser))
	for u := range perUser {
		users = append(users, u)
	}
	sort.Ints(users)
	out := make([][]string, 0, len(users))
	for _, u := range users {
		out = append(out, perUser[u])
	}
	return out
}

// AllSequences returns one sequence per (user, day) pair across the whole
// trace, suitable for one-shot model training.
func (t *Trace) AllSequences() [][]string {
	var out [][]string
	for d := 0; d < t.Days(); d++ {
		out = append(out, t.DailySequences(d)...)
	}
	return out
}

// Session returns the hostnames user requested in the window
// (end-T, end], in visit order — the s_u^T of Section 4.1 with T a time
// interval (the paper used T = 20 minutes).
func (t *Trace) Session(user int, end int64, window int64) []string {
	t.ensureSorted()
	lo := sort.Search(len(t.visits), func(i int) bool {
		return t.visits[i].Time > end-window
	})
	var hosts []string
	for _, v := range t.visits[lo:] {
		if v.Time > end {
			break
		}
		if v.User == user {
			hosts = append(hosts, v.Host)
		}
	}
	return hosts
}

// PerUserVisits groups the trace by user, each group in time order.
func (t *Trace) PerUserVisits() map[int][]Visit {
	t.ensureSorted()
	out := make(map[int][]Visit)
	for _, v := range t.visits {
		out[v.User] = append(out[v.User], v)
	}
	return out
}
