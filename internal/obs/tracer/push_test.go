package tracer

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"hostprof/internal/obs"
)

// mkSpan builds one externally-shaped span record.
func mkSpan(traceID, spanID, parentID, service, name string) SpanData {
	return SpanData{
		TraceID:  traceID,
		SpanID:   spanID,
		ParentID: parentID,
		Service:  service,
		Name:     name,
		Start:    1_000_000,
		Duration: 2_000,
	}
}

// collectorValue snapshots one counter series from a registry.
func counterValue(t *testing.T, reg *obs.Registry, name, outcome string) float64 {
	t.Helper()
	for _, m := range reg.Snapshot() {
		if m.Name == name && m.Labels["outcome"] == outcome {
			return m.Value
		}
	}
	return 0
}

// TestPusherBatchesToCollector proves the happy path: offered traces
// arrive at the collector as POST /debug/traces payloads, and the
// queued/ok counters account for them.
func TestPusherBatchesToCollector(t *testing.T) {
	var mu sync.Mutex
	var got []SpanData
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var body struct {
			Spans []SpanData `json:"spans"`
		}
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			t.Errorf("collector decode: %v", err)
		}
		mu.Lock()
		got = append(got, body.Spans...)
		mu.Unlock()
	}))
	defer srv.Close()

	reg := obs.NewRegistry()
	p := NewPusher(PushConfig{
		URL:           srv.URL,
		FlushInterval: 5 * time.Millisecond,
		Metrics:       reg,
		Logger:        slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	id := "0102030405060708090a0b0c0d0e0f10"
	p.Offer([]SpanData{
		mkSpan(id, "0000000000000001", "", "shard", "http.report"),
		mkSpan(id, "0000000000000002", "0000000000000001", "shard", "store.ingest"),
	})
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("collector received %d spans, want 2", n)
		}
		time.Sleep(5 * time.Millisecond)
	}
	p.Close()
	if q := counterValue(t, reg, "hostprof_trace_push_spans_total", "queued"); q != 2 {
		t.Fatalf("queued counter = %v, want 2", q)
	}
	if ok := counterValue(t, reg, "hostprof_trace_push_batches_total", "ok"); ok == 0 {
		t.Fatal("no batch counted as ok")
	}
	// Close is idempotent and Offer after close must not panic the
	// channel (nil pusher contract covers the disabled path).
	p.Close()
	var nilP *Pusher
	nilP.Offer([]SpanData{mkSpan(id, "03", "", "s", "n")})
	nilP.Close()
}

// TestPusherDropsOnBackpressure fills the bounded queue against a
// stalled collector: Offer must never block, the overflow is counted
// as dropped, and Close still returns once the stall clears.
func TestPusherDropsOnBackpressure(t *testing.T) {
	release := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release
	}))
	defer srv.Close()
	defer close(release)

	reg := obs.NewRegistry()
	p := NewPusher(PushConfig{
		URL:         srv.URL,
		QueueTraces: 1,
		BatchSpans:  1, // first trace goes straight into a (stalled) send
		Timeout:     100 * time.Millisecond,
		Metrics:     reg,
		Logger:      slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			p.Offer([]SpanData{mkSpan("0102030405060708090a0b0c0d0e0f10",
				fmt.Sprintf("%016x", i+1), "", "shard", "span")})
		}
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Offer blocked on a full queue")
	}
	deadline := time.Now().Add(2 * time.Second)
	for counterValue(t, reg, "hostprof_trace_push_spans_total", "dropped") == 0 {
		if time.Now().After(deadline) {
			t.Fatal("nothing counted as dropped under backpressure")
		}
		time.Sleep(5 * time.Millisecond)
	}
	p.Close() // sends time out (100ms each) rather than hanging on the stall
	if e := counterValue(t, reg, "hostprof_trace_push_batches_total", "error"); e == 0 {
		t.Fatal("stalled collector produced no error batches")
	}
}

// TestNewPusherDisabled pins the disabled constructor: no URL, no
// pusher, and the nil result is safe everywhere it is handed out.
func TestNewPusherDisabled(t *testing.T) {
	if p := NewPusher(PushConfig{}); p != nil {
		t.Fatal("empty URL must return the nil (disabled) pusher")
	}
}

// TestIngestConcurrentPushers is the cross-process merge contract
// under -race: the gateway's own spans and two shards' pushes for the
// same trace ID land concurrently, and the collector ends up with one
// trace holding every span.
func TestIngestConcurrentPushers(t *testing.T) {
	collector := New(Config{Service: "gateway", SampleRate: 1, BufferTraces: 8})
	const traceID = "0102030405060708090a0b0c0d0e0f10"
	batches := [][]SpanData{
		{
			mkSpan(traceID, "0000000000000001", "", "gateway", "gw.report"),
			mkSpan(traceID, "0000000000000002", "0000000000000001", "gateway", "shard.report"),
		},
		{
			mkSpan(traceID, "0000000000000003", "0000000000000002", "shard-a", "http.report"),
			mkSpan(traceID, "0000000000000004", "0000000000000003", "shard-a", "store.ingest"),
		},
		{
			mkSpan(traceID, "0000000000000005", "0000000000000002", "shard-b", "http.report"),
		},
	}
	var wg sync.WaitGroup
	for _, b := range batches {
		wg.Add(1)
		go func(b []SpanData) {
			defer wg.Done()
			if n := collector.Ingest(b); n != len(b) {
				t.Errorf("Ingest accepted %d of %d spans", n, len(b))
			}
		}(b)
	}
	wg.Wait()

	tr, ok := collector.TraceByID(traceID)
	if !ok {
		t.Fatal("merged trace not retrievable by ID")
	}
	if len(tr.Spans) != 5 {
		t.Fatalf("merged trace has %d spans, want 5: %+v", len(tr.Spans), tr.Spans)
	}
	if !tr.Sampled {
		t.Fatal("pushed trace must be retained (sampled)")
	}
	services := make(map[string]int)
	for _, sp := range tr.Spans {
		if sp.TraceID != traceID {
			t.Fatalf("span %s under wrong trace: %s", sp.Name, sp.TraceID)
		}
		services[sp.Service]++
	}
	if services["gateway"] != 2 || services["shard-a"] != 2 || services["shard-b"] != 1 {
		t.Fatalf("span distribution by service = %v", services)
	}
	// Exactly one retained trace: three concurrent pushes of one ID
	// must not fan out into three buffer entries.
	if n := len(collector.Traces()); n != 1 {
		t.Fatalf("buffer holds %d traces, want 1", n)
	}

	// Malformed IDs are skipped, not fatal.
	if n := collector.Ingest([]SpanData{mkSpan("zz", "01", "", "s", "bad")}); n != 0 {
		t.Fatalf("malformed trace ID accepted: %d", n)
	}
}
