package core

import (
	"testing"
	"testing/quick"
)

func TestBuildVocabCountsAndOrder(t *testing.T) {
	corpus := [][]string{
		{"a.example", "b.example", "a.example"},
		{"a.example", "c.example", "b.example"},
	}
	v := BuildVocab(corpus, 1)
	if v.Len() != 3 {
		t.Fatalf("Len = %d", v.Len())
	}
	// a appears 3x, b 2x, c 1x; ordering by decreasing count.
	if v.Host(0) != "a.example" || v.Host(1) != "b.example" || v.Host(2) != "c.example" {
		t.Fatalf("order = %v", v.Hosts())
	}
	if v.Count(0) != 3 || v.Count(1) != 2 || v.Count(2) != 1 {
		t.Fatal("counts wrong")
	}
	if v.Total() != 6 {
		t.Fatalf("total = %d", v.Total())
	}
	id, ok := v.ID("b.example")
	if !ok || id != 1 {
		t.Fatalf("ID(b) = %d,%v", id, ok)
	}
	if _, ok := v.ID("missing.example"); ok {
		t.Fatal("missing host found")
	}
}

func TestBuildVocabMinCount(t *testing.T) {
	corpus := [][]string{{"x", "x", "x", "y", "y", "z"}}
	v := BuildVocab(corpus, 2)
	if v.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (z pruned)", v.Len())
	}
	if _, ok := v.ID("z"); ok {
		t.Fatal("rare host not pruned")
	}
}

func TestBuildVocabTieBreakLexicographic(t *testing.T) {
	corpus := [][]string{{"b", "a", "c"}}
	v := BuildVocab(corpus, 1)
	if v.Host(0) != "a" || v.Host(1) != "b" || v.Host(2) != "c" {
		t.Fatalf("tie order = %v", v.Hosts())
	}
}

func TestBuildVocabEmpty(t *testing.T) {
	v := BuildVocab(nil, 1)
	if v.Len() != 0 || v.Total() != 0 {
		t.Fatal("empty corpus should give empty vocab")
	}
}

func TestVocabValidate(t *testing.T) {
	v := BuildVocab([][]string{{"a", "b"}}, 1)
	if err := v.validate(); err != nil {
		t.Fatal(err)
	}
}

// Property: every host with frequency >= minCount is present and IDs
// round-trip.
func TestVocabRoundTripQuick(t *testing.T) {
	f := func(tokens []uint8) bool {
		seq := make([]string, len(tokens))
		for i, b := range tokens {
			seq[i] = string(rune('a' + b%8))
		}
		v := BuildVocab([][]string{seq}, 1)
		for id := 0; id < v.Len(); id++ {
			got, ok := v.ID(v.Host(id))
			if !ok || got != id {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
