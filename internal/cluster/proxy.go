package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"time"

	"hostprof/internal/obs"
	"hostprof/internal/obs/tracer"
	"hostprof/internal/server"
)

// maxProxyBody caps a forwarded client request (reports and batches,
// not model artifacts).
const maxProxyBody = 4 << 20

// shedRetryAfter is the Retry-After the gateway attaches when refusing
// a down shard's keyspace: a little beyond the health-probe cadence, so
// a retrying client lands after the gateway could have noticed the
// shard's return.
const shedRetryAfter = "2"

// PartialHeader marks a scatter-gather response in which at least one
// shard's chunk failed and was degraded to per-session errors.
const PartialHeader = "X-Hostprof-Partial"

// shardAnswer is one proxied exchange, body fully read.
type shardAnswer struct {
	status int
	body   []byte
	header http.Header
}

// doShard performs one HTTP exchange with a shard, recording per-shard
// metrics and propagating the current span's traceparent so the shard's
// handler span joins the caller's trace. A transport-level failure
// marks the shard dead (routing stops before the next health probe).
func (g *Gateway) doShard(ctx context.Context, method, shard, path string, hdr map[string]string, body []byte) (shardAnswer, error) {
	ctx, cancel := context.WithTimeout(ctx, g.cfg.ShardTimeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, shard+path, rd)
	if err != nil {
		return shardAnswer{}, fmt.Errorf("cluster: building %s %s: %w", method, path, err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	if tp := tracer.FromContext(ctx).Traceparent(); tp != "" {
		req.Header.Set("traceparent", tp)
	}
	start := time.Now()
	resp, err := g.client.Do(req)
	g.reg.Histogram("hostprof_gateway_shard_request_seconds", nil, obs.L("backend", shard)).
		Observe(time.Since(start).Seconds())
	if err != nil {
		g.reg.Counter("hostprof_gateway_shard_errors_total", obs.L("backend", shard)).Inc()
		g.markDead(shard, err)
		return shardAnswer{}, fmt.Errorf("cluster: %s %s on %s: %w", method, path, shard, err)
	}
	defer resp.Body.Close()
	g.reg.Counter("hostprof_gateway_shard_requests_total",
		obs.L("backend", shard), obs.L("code", strconv.Itoa(resp.StatusCode))).Inc()
	ans := shardAnswer{status: resp.StatusCode, header: resp.Header}
	ans.body, err = io.ReadAll(resp.Body)
	if err != nil {
		g.reg.Counter("hostprof_gateway_shard_errors_total", obs.L("backend", shard)).Inc()
		return shardAnswer{}, fmt.Errorf("cluster: reading %s %s from %s: %w", method, path, shard, err)
	}
	return ans, nil
}

// forwardWithRetry is doShard plus the shed-retry loop: an answer that
// means "come back later" (429, or 503 with Retry-After — the same
// contract the Extension client honors) is retried up to ShardRetries
// times with RetryDelay backoff before being relayed to the client.
func (g *Gateway) forwardWithRetry(ctx context.Context, method, shard, path string, hdr map[string]string, body []byte) (shardAnswer, error) {
	for attempt := 0; ; attempt++ {
		ans, err := g.doShard(ctx, method, shard, path, hdr, body)
		if err != nil {
			return ans, err
		}
		apiErr := &server.APIError{Status: ans.status, RetryAfter: ans.header.Get("Retry-After")}
		if attempt >= g.cfg.ShardRetries || !apiErr.Retryable() {
			return ans, nil
		}
		g.met.retries.Inc()
		delay := server.RetryDelay(apiErr.RetryAfter, attempt, g.cfg.RetryBase, g.cfg.RetryMax)
		if sp := tracer.FromContext(ctx); sp.Recording() {
			sp.Event(fmt.Sprintf("shard retry %d after %s (HTTP %d from %s)", attempt+1, delay, ans.status, shard))
		}
		timer := time.NewTimer(delay)
		select {
		case <-ctx.Done():
			timer.Stop()
			return ans, ctx.Err()
		case <-timer.C:
		}
	}
}

// relay writes a shard's answer back to the client unchanged (status,
// JSON body, Retry-After), so talking to the gateway is
// wire-indistinguishable from talking to the shard.
func relay(w http.ResponseWriter, ans shardAnswer) {
	if ct := ans.header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if ra := ans.header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.WriteHeader(ans.status)
	w.Write(ans.body)
}

// routeUser is the single-user forwarding path shared by /v1/report and
// /v1/feedback: hash the user onto the ring, shed if the owner is down,
// forward otherwise.
//
// While a migration is installed the route consults it: a user in a
// moved range is served by the old owner until the range cuts over, by
// the new owner after. During the copy window (report != nil — feedback
// mutates campaign tallies, not the visit store, and is not
// double-written) an accepted report is additionally imported into the
// target; the range's write gate is held shared across both round
// trips, which is what lets the migration freeze the range with no
// write in flight. A failed target import marks the range dirty — the
// client's ack stands (the source has the visit), and the migration
// repairs the target by reset + recopy before it can ever cut over.
func (g *Gateway) routeUser(w http.ResponseWriter, r *http.Request, path string, user int, raw []byte, report *server.ReportRequest) {
	g.migBarrier.RLock()
	defer g.migBarrier.RUnlock()
	owner, ok := g.Ring().Owner(user)
	if !ok {
		writeError(w, http.StatusServiceUnavailable, "cluster: empty ring")
		return
	}
	var doubleTo string
	var rg *migRange
	if mig := g.migration.Load(); mig != nil {
		if mr := mig.rangeFor(userHash(user)); mr != nil {
			mr.gate.RLock()
			switch mr.st() {
			case rangeDone:
				owner = mr.To
				mr.gate.RUnlock()
			case rangeAborted:
				owner = mr.From
				mr.gate.RUnlock()
			default: // pending, copying, draining
				owner = mr.From
				if report != nil {
					// Hold the gate across the write(s). For a pending range
					// this is what makes the freeze exact: the freeze's
					// exclusive acquire waits for this report to land, so the
					// C0 capture counts it. Once the freeze has run the state
					// reads copying/draining and the write is also mirrored.
					rg = mr
					if s := mr.st(); s == rangeCopying || s == rangeDraining {
						doubleTo = mr.To
					}
				} else {
					mr.gate.RUnlock()
				}
			}
		}
	}
	if rg != nil {
		defer rg.gate.RUnlock()
	}
	if sp := tracer.FromContext(r.Context()); sp.Recording() {
		sp.SetAttr("shard", owner)
		sp.SetAttr("user", strconv.Itoa(user))
		if doubleTo != "" {
			sp.SetAttr("double_write", doubleTo)
		}
	}
	if st := g.shardSnapshot(owner); !st.alive {
		// The owning shard is down: its keyspace is shed, everyone
		// else's is unaffected. No failover — the user's history lives
		// only on the owner, and writing elsewhere would corrupt
		// placement.
		g.met.shed.Inc()
		g.noteShed(owner)
		w.Header().Set("Retry-After", shedRetryAfter)
		writeError(w, http.StatusServiceUnavailable,
			fmt.Sprintf("cluster: shard %s (owner of user %d) is down; retry later", owner, user))
		return
	}
	ans, err := g.forwardWithRetry(r.Context(), http.MethodPost, owner, path,
		map[string]string{"Content-Type": "application/json"}, raw)
	if err != nil {
		w.Header().Set("Retry-After", shedRetryAfter)
		writeError(w, http.StatusBadGateway, err.Error())
		return
	}
	if doubleTo != "" && ans.status < 300 {
		g.doubleWrite(r.Context(), doubleTo, rg, report)
	}
	relay(w, ans)
}

// doubleWrite mirrors an accepted report's visits into the migration
// target via /v1/import — the raw ingest path, which applies the same
// blocklist the source's report handler applied and skips profiling, so
// the target ends up byte-for-byte equivalent without paying for ads it
// will never serve. Failure marks the range dirty; the source ack is
// already safe.
func (g *Gateway) doubleWrite(ctx context.Context, target string, rg *migRange, report *server.ReportRequest) {
	visits := make([]server.WireVisit, len(report.Hosts))
	for i, h := range report.Hosts {
		visits[i] = server.WireVisit{User: report.User, Time: report.Time, Host: h}
	}
	body, err := json.Marshal(server.ImportRequest{Visits: visits})
	if err == nil {
		var ans shardAnswer
		ans, err = g.doShard(ctx, http.MethodPost, target, "/v1/import",
			map[string]string{"Content-Type": "application/json"}, body)
		if err == nil && ans.status != http.StatusOK {
			err = fmt.Errorf("cluster: double-write to %s answered HTTP %d", target, ans.status)
		}
	}
	if err != nil {
		rg.dirty.Store(true)
		g.met.doubleWriteErrs.Inc()
		if sp := tracer.FromContext(ctx); sp.Recording() {
			sp.Event("double-write failed: " + err.Error())
		}
		return
	}
	g.met.doubleWrites.Inc()
}

func (g *Gateway) handleReport(w http.ResponseWriter, r *http.Request) {
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxProxyBody))
	if err != nil {
		writeError(w, http.StatusRequestEntityTooLarge, "cluster: report too large")
		return
	}
	var req server.ReportRequest
	if err := json.Unmarshal(raw, &req); err != nil {
		writeError(w, http.StatusBadRequest, "cluster: invalid JSON: "+err.Error())
		return
	}
	g.routeUser(w, r, "/v1/report", req.User, raw, &req)
}

func (g *Gateway) handleFeedback(w http.ResponseWriter, r *http.Request) {
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxProxyBody))
	if err != nil {
		writeError(w, http.StatusRequestEntityTooLarge, "cluster: feedback too large")
		return
	}
	var req server.FeedbackRequest
	if err := json.Unmarshal(raw, &req); err != nil {
		writeError(w, http.StatusBadRequest, "cluster: invalid JSON: "+err.Error())
		return
	}
	g.routeUser(w, r, "/v1/feedback", req.User, raw, nil)
}

// handleProfileBatch scatter-gathers a batch across every ready shard.
// Sessions are standalone host lists (not user-keyed) and every ready
// shard serves the same model generation, so any shard can profile any
// session: the gateway chunks the batch, spreads chunks round-robin,
// and merges results in request order. A chunk whose shard fails
// degrades to per-session errors instead of failing the batch —
// responses with any degraded chunk carry the X-Hostprof-Partial
// header.
func (g *Gateway) handleProfileBatch(w http.ResponseWriter, r *http.Request) {
	var req server.ProfileBatchRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxProxyBody)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "cluster: invalid JSON: "+err.Error())
		return
	}
	if len(req.Sessions) > g.cfg.MaxSessionsPerBatch {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("cluster: %d sessions exceeds limit %d", len(req.Sessions), g.cfg.MaxSessionsPerBatch))
		return
	}
	shards := g.readyShards()
	if len(shards) == 0 {
		w.Header().Set("Retry-After", shedRetryAfter)
		writeError(w, http.StatusServiceUnavailable, "cluster: no ready shards")
		return
	}
	if sp := tracer.FromContext(r.Context()); sp.Recording() {
		sp.SetAttr("sessions", strconv.Itoa(len(req.Sessions)))
		sp.SetAttr("shards", strconv.Itoa(len(shards)))
	}

	type chunk struct {
		start, end int
		shard      string
	}
	var chunks []chunk
	for i, start := 0, 0; start < len(req.Sessions); i, start = i+1, start+g.cfg.ShardBatchLimit {
		end := start + g.cfg.ShardBatchLimit
		if end > len(req.Sessions) {
			end = len(req.Sessions)
		}
		chunks = append(chunks, chunk{start: start, end: end, shard: shards[i%len(shards)]})
	}

	results := make([]server.ProfileResult, len(req.Sessions))
	var (
		wg      sync.WaitGroup
		partial sync.Once
		degrade bool
	)
	for _, c := range chunks {
		wg.Add(1)
		go func(c chunk) {
			defer wg.Done()
			body, err := json.Marshal(server.ProfileBatchRequest{Sessions: req.Sessions[c.start:c.end]})
			if err == nil {
				var ans shardAnswer
				ans, err = g.forwardWithRetry(r.Context(), http.MethodPost, c.shard, "/v1/profile/batch",
					map[string]string{"Content-Type": "application/json"}, body)
				if err == nil && ans.status != http.StatusOK {
					err = fmt.Errorf("cluster: shard %s answered HTTP %d", c.shard, ans.status)
				}
				if err == nil {
					var resp server.ProfileBatchResponse
					if jerr := json.Unmarshal(ans.body, &resp); jerr != nil {
						err = fmt.Errorf("cluster: decoding batch from %s: %w", c.shard, jerr)
					} else if len(resp.Profiles) != c.end-c.start {
						err = fmt.Errorf("cluster: shard %s returned %d profiles for %d sessions",
							c.shard, len(resp.Profiles), c.end-c.start)
					} else {
						copy(results[c.start:c.end], resp.Profiles)
						return
					}
				}
			}
			// Degrade this chunk only: the sessions the other shards
			// handled still come back profiled.
			partial.Do(func() { degrade = true })
			for i := c.start; i < c.end; i++ {
				results[i] = server.ProfileResult{Error: err.Error()}
			}
		}(c)
	}
	wg.Wait()
	if degrade {
		g.met.batchPartial.Inc()
		w.Header().Set(PartialHeader, "1")
		if sp := tracer.FromContext(r.Context()); sp.Recording() {
			sp.Event("partial batch: at least one shard chunk degraded")
		}
	}
	writeJSON(w, http.StatusOK, server.ProfileBatchResponse{Profiles: results})
}

// RetrainResponse is the gateway's /v1/retrain body: which shard
// trained, the resulting model version, and how distribution went.
type RetrainResponse struct {
	TrainedOn   string            `json:"trained_on"`
	Version     string            `json:"version"`
	Distributed []string          `json:"distributed"`       // peers now at Version (includes already-converged)
	Failed      map[string]string `json:"failed,omitempty"`  // peer → error
	Partial     bool              `json:"partial,omitempty"` // some peer failed to install
}

// handleRetrain implements cluster-wide training: the designated shard
// (first alive backend in configured order) retrains over its own
// keyspace, then the gateway pulls the versioned artifact once and
// pushes it to every other alive shard. The call is synchronous; 200
// means the cluster converged, 207-style partial success is flagged in
// the body and by a 200 + "partial": true (failed peers converge later
// via the health loop's anti-entropy).
func (g *Gateway) handleRetrain(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := context.WithTimeout(r.Context(), g.cfg.RetrainTimeout)
	defer cancel()
	trainer := g.trainNode()
	if trainer == "" {
		w.Header().Set("Retry-After", shedRetryAfter)
		writeError(w, http.StatusServiceUnavailable, "cluster: no alive shard to train on")
		return
	}
	if sp := tracer.FromContext(ctx); sp.Recording() {
		sp.SetAttr("trainer", trainer)
	}
	// The retrain itself ignores ShardTimeout — training legitimately
	// takes longer than a serving request — so it bypasses doShard.
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, trainer+"/v1/retrain", bytes.NewReader([]byte("{}")))
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	req.Header.Set("Content-Type", "application/json")
	if tp := tracer.FromContext(ctx).Traceparent(); tp != "" {
		req.Header.Set("traceparent", tp)
	}
	start := time.Now()
	resp, err := g.client.Do(req)
	if err != nil {
		g.markDead(trainer, err)
		writeError(w, http.StatusBadGateway, fmt.Sprintf("cluster: retrain on %s: %v", trainer, err))
		return
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	g.reg.Counter("hostprof_gateway_shard_requests_total",
		obs.L("backend", trainer), obs.L("code", strconv.Itoa(resp.StatusCode))).Inc()
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		relay(w, shardAnswer{status: resp.StatusCode, body: body, header: resp.Header})
		return
	}
	g.log.Info("cluster retrain finished",
		slog.String("trainer", trainer), slog.Duration("took", time.Since(start)))

	out, err := g.distributeModel(ctx, trainer)
	if err != nil {
		writeError(w, http.StatusBadGateway, err.Error())
		return
	}
	// Refresh health state so /v1/cluster reflects convergence
	// immediately rather than after the next probe tick.
	g.CheckHealth(ctx)
	writeJSON(w, http.StatusOK, out)
}

// distributeModel pulls the artifact from one shard and pushes it to
// every other alive shard that is not already at that version.
func (g *Gateway) distributeModel(ctx context.Context, from string) (RetrainResponse, error) {
	version, data, err := g.fetchModel(ctx, from)
	if err != nil {
		return RetrainResponse{}, fmt.Errorf("cluster: pulling model from %s: %w", from, err)
	}
	out := RetrainResponse{TrainedOn: from, Version: version, Failed: map[string]string{}}
	for _, peer := range g.aliveShards() {
		if peer == from {
			continue
		}
		if g.shardSnapshot(peer).modelVersion == version {
			out.Distributed = append(out.Distributed, peer)
			continue
		}
		if err := g.pushModel(ctx, peer, version, data); err != nil {
			out.Failed[peer] = err.Error()
			out.Partial = true
			g.met.pushErrors.Inc()
			g.log.Warn("model push failed", slog.String("peer", peer), slog.String("err", err.Error()))
			continue
		}
		out.Distributed = append(out.Distributed, peer)
		g.met.modelPushes.Inc()
	}
	if len(out.Failed) == 0 {
		out.Failed = nil
	}
	return out, nil
}

// fetchModel GETs a shard's model artifact, using the gateway's cached
// copy when the shard still serves the cached version (If-None-Match →
// 304 spares re-transferring a multi-MB artifact every sync tick).
func (g *Gateway) fetchModel(ctx context.Context, from string) (version string, data []byte, err error) {
	g.mu.Lock()
	cachedVersion, cachedData := g.modelVersion, g.modelData
	g.mu.Unlock()
	hdr := map[string]string{}
	if cachedVersion != "" {
		hdr["If-None-Match"] = `"` + cachedVersion + `"`
	}
	ans, err := g.doShard(ctx, http.MethodGet, from, "/v1/model", hdr, nil)
	if err != nil {
		return "", nil, err
	}
	switch ans.status {
	case http.StatusNotModified:
		return cachedVersion, cachedData, nil
	case http.StatusOK:
		version = ans.header.Get(server.ModelVersionHeader)
		if version == "" {
			return "", nil, fmt.Errorf("shard %s served a model without a version header", from)
		}
		g.mu.Lock()
		g.modelVersion, g.modelData = version, ans.body
		g.mu.Unlock()
		return version, ans.body, nil
	default:
		return "", nil, fmt.Errorf("shard %s answered HTTP %d to GET /v1/model", from, ans.status)
	}
}

// pushModel PUTs an artifact to a peer with its version header, so the
// peer verifies content integrity before installing.
func (g *Gateway) pushModel(ctx context.Context, peer, version string, data []byte) error {
	ans, err := g.doShard(ctx, http.MethodPut, peer, "/v1/model", map[string]string{
		"Content-Type":            "application/octet-stream",
		server.ModelVersionHeader: version,
	}, data)
	if err != nil {
		return err
	}
	if ans.status != http.StatusNoContent {
		return fmt.Errorf("peer %s answered HTTP %d to PUT /v1/model: %s",
			peer, ans.status, bytes.TrimSpace(ans.body))
	}
	return nil
}

// SyncModels is the health loop's anti-entropy pass: when alive shards
// disagree on model version (a restarted shard that recovered an older
// generation, a peer that missed a distribution), re-ship the
// designated source's artifact until everyone matches. The source is
// the first alive configured backend serving any model — the same
// order retrain uses, so sync and retrain never fight. Returns the
// number of pushes performed.
func (g *Gateway) SyncModels(ctx context.Context) int {
	var source, want string
	g.mu.Lock()
	for _, name := range g.backends {
		if s := g.shards[name]; s != nil && s.alive && s.modelVersion != "" {
			source, want = name, s.modelVersion
			break
		}
	}
	if source == "" {
		g.mu.Unlock()
		return 0
	}
	var stale []string
	for _, name := range g.backends {
		if s := g.shards[name]; s != nil && s.alive && s.modelVersion != want {
			stale = append(stale, name)
		}
	}
	g.mu.Unlock()
	if len(stale) == 0 {
		return 0
	}
	version, data, err := g.fetchModel(ctx, source)
	if err != nil {
		g.log.Warn("model sync: fetch failed", slog.String("source", source), slog.String("err", err.Error()))
		return 0
	}
	pushed := 0
	for _, peer := range stale {
		if err := g.pushModel(ctx, peer, version, data); err != nil {
			g.met.pushErrors.Inc()
			g.log.Warn("model sync: push failed", slog.String("peer", peer), slog.String("err", err.Error()))
			continue
		}
		g.met.modelPushes.Inc()
		pushed++
		g.mu.Lock()
		if s := g.shards[peer]; s != nil {
			s.modelVersion = version
			s.ready = s.alive && !s.degraded
		}
		g.mu.Unlock()
		g.log.Info("model sync: peer converged", slog.String("peer", peer), slog.String("version", version))
	}
	return pushed
}

// handleStats aggregates /v1/stats across alive shards: visit and user
// counts sum (placement partitions users), impression and click maps
// merge, CTR is recomputed from the merged totals, and Trained reports
// whether every alive shard serves a model.
func (g *Gateway) handleStats(w http.ResponseWriter, r *http.Request) {
	shards := g.aliveShards()
	if len(shards) == 0 {
		writeError(w, http.StatusServiceUnavailable, "cluster: no alive shards")
		return
	}
	type answer struct {
		st  server.Stats
		err error
	}
	answers := make([]answer, len(shards))
	var wg sync.WaitGroup
	for i, shard := range shards {
		wg.Add(1)
		go func(i int, shard string) {
			defer wg.Done()
			ans, err := g.doShard(r.Context(), http.MethodGet, shard, "/v1/stats", nil, nil)
			if err == nil && ans.status != http.StatusOK {
				err = fmt.Errorf("HTTP %d", ans.status)
			}
			if err == nil {
				err = json.Unmarshal(ans.body, &answers[i].st)
			}
			answers[i].err = err
		}(i, shard)
	}
	wg.Wait()

	agg := server.Stats{Trained: true, Impressions: map[string]int64{}, Clicks: map[string]int64{}, CTRPercent: map[string]float64{}}
	reached := 0
	for _, a := range answers {
		if a.err != nil {
			continue
		}
		reached++
		agg.Visits += a.st.Visits
		agg.Users += a.st.Users
		agg.Trained = agg.Trained && a.st.Trained
		if a.st.VocabSize > agg.VocabSize {
			agg.VocabSize = a.st.VocabSize
		}
		for k, v := range a.st.Impressions {
			agg.Impressions[k] += v
		}
		for k, v := range a.st.Clicks {
			agg.Clicks[k] += v
		}
	}
	if reached == 0 {
		writeError(w, http.StatusBadGateway, "cluster: no shard answered stats")
		return
	}
	for k, imp := range agg.Impressions {
		if imp > 0 {
			agg.CTRPercent[k] = 100 * float64(agg.Clicks[k]) / float64(imp)
		}
	}
	if reached < len(shards) {
		w.Header().Set(PartialHeader, "1")
	}
	writeJSON(w, http.StatusOK, agg)
}

// handleCluster serves the operator view: ring membership, per-shard
// health and model versions, convergence.
func (g *Gateway) handleCluster(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, g.ClusterStatus())
}
