// Package benchfmt parses `go test -bench` output into structured
// results and diffs two result sets against a tolerance — the shared
// core behind `make bench-json` (cmd/benchjson) and the CI
// perf-regression gate (`hostprof bench-diff`).
package benchfmt

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name       string             `json:"name"`
	Procs      int                `json:"procs"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Key identifies a benchmark across runs: the name plus the GOMAXPROCS
// suffix, so workers=4 on 8 procs never diffs against the same bench
// on 2 procs.
func (r Result) Key() string {
	return fmt.Sprintf("%s-%d", r.Name, r.Procs)
}

// ParseLine parses one "Benchmark..." output line; ok is false for
// non-benchmark lines (headers, PASS, ok, etc.).
func ParseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	procs := 1
	if i := strings.LastIndex(name, "-"); i >= 0 {
		if p, err := strconv.Atoi(name[i+1:]); err == nil {
			procs = p
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: name, Procs: procs, Iterations: iters,
		Metrics: make(map[string]float64)}
	// The remainder alternates value, unit.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		r.Metrics[fields[i+1]] = v
	}
	return r, true
}

// Parse reads `go test -bench` output and returns every benchmark
// line, in order. The returned slice is never nil.
func Parse(r io.Reader) ([]Result, error) {
	results := []Result{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if res, ok := ParseLine(sc.Text()); ok {
			results = append(results, res)
		}
	}
	return results, sc.Err()
}

// ReadFile loads a benchmark-results JSON file as written by
// cmd/benchjson (a top-level array of Result).
func ReadFile(path string) ([]Result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var results []Result
	if err := json.NewDecoder(f).Decode(&results); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return results, nil
}
