package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"hostprof/internal/core"
	"hostprof/internal/ontology"
	"hostprof/internal/trace"
)

// cmdProfile profiles one user's recent session.
func cmdProfile(args []string) error {
	fs := flag.NewFlagSet("profile", flag.ExitOnError)
	modelPath := fs.String("model", "", "trained model (required)")
	ontPath := fs.String("ontology", "", "ontology labels JSONL (required)")
	tracePath := fs.String("trace", "", "trace JSONL (required)")
	user := fs.Int("user", 0, "user ID to profile")
	at := fs.Int64("at", -1, "profile instant in trace seconds (-1 = user's last visit)")
	window := fs.Int64("window", 1200, "session window T in seconds (paper: 1200)")
	n := fs.Int("n", 1000, "nearest hostnames N (paper: 1000)")
	top := fs.Int("top", 10, "categories to print")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *modelPath == "" || *ontPath == "" || *tracePath == "" {
		return fmt.Errorf("-model, -ontology and -trace are required")
	}

	model, err := core.LoadFile(*modelPath)
	if err != nil {
		return err
	}
	tax := ontology.NewTaxonomy()
	of, err := os.Open(*ontPath)
	if err != nil {
		return err
	}
	ont, err := ontology.ReadJSONL(tax, of)
	of.Close()
	if err != nil {
		return err
	}
	tf, err := os.Open(*tracePath)
	if err != nil {
		return err
	}
	tr, err := trace.ReadJSONL(tf)
	tf.Close()
	if err != nil {
		return err
	}

	now := *at
	if now < 0 {
		for _, v := range tr.Visits() {
			if v.User == *user {
				now = v.Time
			}
		}
		if now < 0 {
			return fmt.Errorf("user %d has no visits", *user)
		}
	}
	session := tr.Session(*user, now, *window)
	fmt.Printf("user %d at t=%d: %d hostnames in last %d s\n",
		*user, now, len(session), *window)

	profiler := core.NewProfiler(model, ont, core.ProfilerConfig{N: *n})
	prof, err := profiler.ProfileSession(session)
	if err != nil {
		return err
	}

	type kv struct {
		id int
		w  float64
	}
	var ranked []kv
	for id, w := range prof {
		if w > 0 {
			ranked = append(ranked, kv{id, w})
		}
	}
	sort.Slice(ranked, func(i, j int) bool { return ranked[i].w > ranked[j].w })
	fmt.Println("profile:")
	for i, e := range ranked {
		if i >= *top {
			break
		}
		fmt.Printf("  %.4f  %s\n", e.w, tax.Category(e.id).Name)
	}
	return nil
}

// cmdSimilar prints nearest hostnames in embedding space.
func cmdSimilar(args []string) error {
	fs := flag.NewFlagSet("similar", flag.ExitOnError)
	modelPath := fs.String("model", "", "trained model (required)")
	host := fs.String("host", "", "query hostname (required)")
	k := fs.Int("k", 10, "neighbours to print")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *modelPath == "" || *host == "" {
		return fmt.Errorf("-model and -host are required")
	}
	model, err := core.LoadFile(*modelPath)
	if err != nil {
		return err
	}
	nbs, err := model.MostSimilar(*host, *k)
	if err != nil {
		return err
	}
	for _, nb := range nbs {
		fmt.Printf("%.4f  %s\n", nb.Cosine, nb.Host)
	}
	return nil
}

// cmdExport writes a trained model in word2vec text format.
func cmdExport(args []string) error {
	fs := flag.NewFlagSet("export", flag.ExitOnError)
	modelPath := fs.String("model", "", "trained model (required)")
	out := fs.String("out", "-", "output path ('-' for stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *modelPath == "" {
		return fmt.Errorf("-model is required")
	}
	model, err := core.LoadFile(*modelPath)
	if err != nil {
		return err
	}
	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return model.WriteText(w)
}
